// esdsynth: synthesize a bug-bound execution from a coredump (§8).
//
//   esdsynth <program.esd> <coredump> [-o exec.out] [--time-cap SECONDS]
//            [--jobs N] [--cooperative | --race-portfolio]
//            [--with-race-det] [--no-proximity]
//            [--no-intermediate-goals] [--no-critical-edges] [--seed N]
//            [--dedup | --no-dedup] [--dedup-private] [--no-sleep-sets]
//            [--no-store-buffer]
//            [--no-solver-rewrite] [--no-solver-slice] [--no-solver-range]
//            [--no-solver-incremental] [--no-solver-pipeline]
//            [--solver-cache-shared | --solver-cache-private] [--counters]
//            [--no-ir-opt] [--print-passes]
//
// Reads the program and the coredump, synthesizes an execution that
// reproduces the reported bug, and writes the execution file for esdplay.
#include <cstdlib>
#include <iostream>
#include <string>

#include "src/core/synthesizer.h"
#include "src/replay/execution_file.h"
#include "src/report/coredump.h"
#include "tools/tool_common.h"

namespace {

void Usage(std::ostream& os = std::cerr) {
  os << "usage: esdsynth <program.esd> <coredump> [options]\n"
     << "\n"
     << "Synthesizes an execution that reproduces the bug reported in the\n"
     << "coredump and writes an execution file for esdplay.\n"
     << "\n"
     << "options:\n"
     << "  -o FILE                 output execution file"
     << " (default execution.esdx)\n"
     << "  --time-cap SECONDS      give up after this much wall-clock time"
     << " (default 180)\n"
     << "  --jobs N                run N parallel search workers.\n"
     << "                          1 = classic single-threaded engine\n"
     << "  --cooperative           with --jobs N: all workers drain one\n"
     << "                          work-stealing frontier — forks are routed\n"
     << "                          by fingerprint ownership, idle workers\n"
     << "                          steal from busy peers (default for N > 1)\n"
     << "  --race-portfolio        with --jobs N: race N independent\n"
     << "                          frontiers with diversified strategies;\n"
     << "                          first to the goal wins\n"
     << "  --seed N                search RNG seed (default 1)\n"
     << "  --with-race-det         run the lockset race detector even for\n"
     << "                          non-race bug classes\n"
     << "  --dedup / --no-dedup    state deduplication: drop schedule forks\n"
     << "                          whose fingerprint (pcs, memory, sync\n"
     << "                          state, constraints) was already explored\n"
     << "                          (default on)\n"
     << "  --dedup-private         with --jobs N: per-worker fingerprint\n"
     << "                          tables instead of one shared table\n"
     << "                          (race-portfolio mode only; cooperative\n"
     << "                          mode always shares the table)\n"
     << "  --no-store-buffer       ablation: commit atomic stores in program\n"
     << "                          order instead of buffering relaxed stores\n"
     << "                          per thread (TSO store-buffer reordering,\n"
     << "                          default on)\n"
     << "  --no-sleep-sets         disable sleep-set pruning of redundant\n"
     << "                          schedule forks (default on)\n"
     << "  --no-solver-rewrite     disable the canonicalizing expression\n"
     << "                          rewriter (solver pipeline stage 1)\n"
     << "  --no-solver-slice       disable independence partitioning of\n"
     << "                          queries into components (stage 2)\n"
     << "  --no-solver-range       disable the interval value-range\n"
     << "                          discharge of guard constraints (stage 0)\n"
     << "  --no-solver-incremental disable the assumption-based incremental\n"
     << "                          SAT session (stage 4)\n"
     << "  --no-solver-pipeline    disable all of the above and the\n"
     << "                          shared solver cache\n"
     << "  --no-ir-opt             search the original module instead of a\n"
     << "                          pre-optimized copy (constant folding,\n"
     << "                          branch elision, DCE, goal-directed\n"
     << "                          slicing; default on)\n"
     << "  --print-passes          print the per-pass IR pipeline log and\n"
     << "                          rewrite counts\n"
     << "  --solver-cache-shared / --solver-cache-private\n"
     << "                          with --jobs N: one solver query cache\n"
     << "                          shared by all workers (default) or\n"
     << "                          per-worker caches only\n"
     << "  --counters              print the hot-path event counters (state\n"
     << "                          forks, COW page copies, frontier traffic,\n"
     << "                          solver calls; summed across workers)\n"
     << "  --no-proximity          ablation: disable proximity-guided search\n"
     << "  --no-intermediate-goals ablation: disable static anchor points\n"
     << "  --no-critical-edges     ablation: disable path abandonment\n"
     << "  -h, --help              show this help\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace esd;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      Usage(std::cout);
      return 0;
    }
  }
  if (argc < 3) {
    Usage();
    return 2;
  }
  std::string program_path = argv[1];
  std::string dump_path = argv[2];
  std::string out_path = "execution.esdx";
  bool print_counters = false;
  core::SynthesisOptions options;
  for (int i = 3; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "-o" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--time-cap" && i + 1 < argc) {
      options.time_cap_seconds = std::atof(argv[++i]);
    } else if (arg == "--seed" && i + 1 < argc) {
      options.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--jobs" && i + 1 < argc) {
      const char* text = argv[++i];
      char* end = nullptr;
      unsigned long long jobs = std::strtoull(text, &end, 10);
      if (end == text || *end != '\0' || jobs == 0 || jobs > 256) {
        std::cerr << "error: --jobs must be an integer in [1, 256], got '"
                  << text << "'\n";
        return 2;
      }
      options.jobs = static_cast<size_t>(jobs);
    } else if (arg == "--cooperative") {
      options.cooperative = true;
    } else if (arg == "--race-portfolio") {
      options.cooperative = false;
    } else if (arg == "--with-race-det") {
      options.enable_race_detection = true;
    } else if (arg == "--dedup") {
      options.dedup = true;
    } else if (arg == "--no-dedup") {
      options.dedup = false;
    } else if (arg == "--dedup-private") {
      options.dedup_shared = false;
    } else if (arg == "--no-store-buffer") {
      options.store_buffer = false;
    } else if (arg == "--no-sleep-sets") {
      options.sleep_sets = false;
    } else if (arg == "--no-solver-rewrite") {
      options.solver_rewrite = false;
    } else if (arg == "--no-solver-slice") {
      options.solver_slice = false;
    } else if (arg == "--no-solver-range") {
      options.solver_range = false;
    } else if (arg == "--no-solver-incremental") {
      options.solver_incremental = false;
    } else if (arg == "--no-solver-pipeline") {
      options.solver_rewrite = false;
      options.solver_slice = false;
      options.solver_range = false;
      options.solver_incremental = false;
      options.solver_cache_shared = false;
    } else if (arg == "--no-ir-opt") {
      options.ir_opt = false;
    } else if (arg == "--print-passes") {
      options.print_passes = true;
    } else if (arg == "--solver-cache-shared") {
      options.solver_cache_shared = true;
    } else if (arg == "--solver-cache-private") {
      options.solver_cache_shared = false;
    } else if (arg == "--counters") {
      print_counters = true;
    } else if (arg == "--no-proximity") {
      options.use_proximity = false;
    } else if (arg == "--no-intermediate-goals") {
      options.use_intermediate_goals = false;
    } else if (arg == "--no-critical-edges") {
      options.use_critical_edges = false;
    } else {
      std::cerr << "error: unknown option or missing argument: '" << arg << "' (try --help)\n";
      return 2;
    }
  }

  if (!options.dedup_shared && options.jobs > 1 && options.cooperative) {
    std::cerr << "esdsynth: warning: --dedup-private is ignored in cooperative "
                 "mode (the work-stealing frontier shares one fingerprint "
                 "table); combine it with --race-portfolio to take effect\n";
  }

  auto module = tools::LoadProgram(program_path);
  if (module == nullptr) {
    return 1;
  }
  auto dump_text = tools::ReadFile(dump_path);
  if (!dump_text.has_value()) {
    std::cerr << "error: cannot read '" << dump_path << "'\n";
    return 1;
  }
  std::string error;
  auto dump = report::ParseCoreDump(*module, *dump_text, &error);
  if (!dump.has_value()) {
    std::cerr << "error: " << dump_path << ": " << error << "\n";
    return 1;
  }

  std::cout << "esdsynth: goal class '" << vm::BugKindName(dump->kind) << "' at "
            << module->Describe(dump->fault_pc) << "\n";
  core::Synthesizer synthesizer(module.get(), options);
  core::SynthesisResult result = synthesizer.Synthesize(*dump);
  for (const std::string& other : result.other_bugs) {
    std::cout << "esdsynth: note: discovered a different bug on the way: " << other
              << "\n";
  }
  if (!result.success) {
    std::cerr << "esdsynth: synthesis failed: " << result.failure_reason << "\n";
    return 1;
  }
  std::cout << "esdsynth: synthesized in " << result.seconds << "s ("
            << result.instructions << " instructions, " << result.states_created
            << " states, " << result.states_deduped << " deduped, "
            << result.sleep_set_skips << " sleep-set skips, "
            << result.intermediate_goals << " intermediate goals)\n";
  const auto& ss = result.solver;
  std::cout << "esdsynth: solver: " << ss.queries << " queries, "
            << ss.cache_hits << " cache hits, " << ss.cex_hits << " cex hits, "
            << ss.shared_hits << " shared hits, " << ss.sat_calls
            << " SAT calls over " << ss.components << " components ("
            << ss.rewrites << " rewrites)\n"
            << "esdsynth: solver: SAT effort: " << ss.sat_conflicts
            << " conflicts, " << ss.sat_decisions << " decisions, "
            << ss.sat_propagations << " propagations, " << ss.sat_learned
            << " learned clauses\n"
            << "esdsynth: solver: range stage: " << ss.range_discharged
            << "/" << ss.range_checked << " components discharged ("
            << ss.range_unsat << " unsat)\n";
  if (options.ir_opt) {
    const auto& ps = result.pass_stats;
    std::cout << "esdsynth: ir-opt: " << ps.folded_operands << " folds, "
              << ps.elided_branches << " branch elisions, "
              << ps.neutralized_insts << " neutralized, "
              << ps.emptied_blocks << " emptied blocks, " << ps.sliced_funcs
              << " sliced functions in " << ps.rounds << " rounds\n";
  }
  if (options.print_passes && !result.pass_log.empty()) {
    std::cout << "esdsynth: pass log:\n" << result.pass_log;
  }
  if (print_counters) {
    std::cout << "esdsynth: counters:";
    EventCounters::ForEachField(
        [&](std::string_view name, uint64_t EventCounters::*field) {
          std::cout << " " << name << "=" << result.counters.*field;
        });
    std::cout << "\n";
  }
  for (size_t w = 0; w < result.workers.size(); ++w) {
    const core::WorkerReport& wr = result.workers[w];
    std::cout << "esdsynth:   worker " << w << " [" << wr.strategy << "] "
              << wr.status << (wr.winner ? " *winner*" : "") << ": "
              << wr.instructions << " instructions, " << wr.states_created
              << " states (" << wr.states_deduped << " deduped, "
              << wr.sleep_set_skips << " sleep-set skips), "
              << wr.solver_queries << " solver queries ("
              << wr.solver_shared_hits << " shared hits, " << wr.sat_conflicts
              << " conflicts) in " << wr.seconds << "s";
    if (wr.counters.states_handed_off != 0 || wr.counters.steals != 0) {
      std::cout << " [coop: " << wr.counters.states_handed_off << " handed off, "
                << wr.counters.steals << " steals]";
    }
    std::cout << "\n";
  }
  std::cout << "esdsynth: inferred " << result.file.inputs.size()
            << " program inputs and a schedule with " << result.file.strict.size()
            << " switch points\n";
  if (!tools::WriteFile(out_path, replay::ExecutionFileToText(result.file))) {
    std::cerr << "error: cannot write '" << out_path << "'\n";
    return 1;
  }
  std::cout << "esdsynth: wrote " << out_path << "\n";
  return 0;
}

// esdplay: deterministically play back a synthesized execution (§8).
//
//   esdplay <program.esd> <exec file> [--hb] [--trace] [--max-steps N]
//
// Replays the execution file against the program. With --trace, prints each
// executed instruction (thread, location, text) — the "step through it in
// your debugger" experience. With --hb, uses the happens-before schedule
// instead of the strict serial one.
#include <cstdlib>
#include <iostream>
#include <string>

#include "src/ir/printer.h"
#include "src/replay/replayer.h"
#include "src/solver/solver.h"
#include "tools/tool_common.h"

namespace {

void Usage(std::ostream& os = std::cerr) {
  os << "usage: esdplay <program.esd> <exec file> [options]\n"
     << "\n"
     << "Deterministically plays back an execution file synthesized by\n"
     << "esdsynth, re-manifesting the recorded bug.\n"
     << "\n"
     << "options:\n"
     << "  --hb            enforce the happens-before schedule (natural\n"
     << "                  parallelism) instead of the strict serial one\n"
     << "  --trace         print every executed instruction (thread,\n"
     << "                  location, text) while replaying\n"
     << "  --max-steps N   abort after N instructions (default 10000000)\n"
     << "  -h, --help      show this help\n";
}

// A step-by-step replay that prints every executed instruction.
int TraceReplay(const esd::ir::Module& module, const esd::replay::ExecutionFile& file,
                uint64_t max_steps) {
  using namespace esd;
  solver::ConstraintSolver solver;
  replay::FileInputProvider inputs(&file);
  replay::StrictReplayPolicy policy(&file);
  vm::Interpreter::Options options;
  options.input_provider = &inputs;
  options.policy = &policy;
  vm::Interpreter interpreter(&module, &solver, options);
  auto main_fn = module.FindFunction("main");
  if (!main_fn.has_value()) {
    std::cerr << "error: no main function\n";
    return 1;
  }
  vm::StatePtr state = interpreter.MakeInitialState(*main_fn, 0);
  for (uint64_t i = 0; i < max_steps; ++i) {
    const vm::Thread& t = state->CurrentThread();
    ir::InstRef pc = t.Pc();
    const ir::Instruction* inst = module.InstAt(pc);
    if (inst != nullptr) {
      std::cout << "T" << t.id << "  " << module.Describe(pc) << "  "
                << ir::PrintInstruction(module, module.Func(pc.func), *inst) << "\n";
    }
    vm::StepResult step = interpreter.Step(*state);
    if (step.state_done) {
      if (step.bug.IsBug()) {
        std::cout << "== bug manifested: " << vm::BugKindName(step.bug.kind) << " at "
                  << module.Describe(step.bug.pc) << " (" << step.bug.message
                  << ") ==\n";
      } else {
        std::cout << "== program exited normally ==\n";
      }
      return 0;
    }
  }
  std::cout << "== trace budget exhausted ==\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace esd;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      Usage(std::cout);
      return 0;
    }
  }
  if (argc < 3) {
    Usage();
    return 2;
  }
  std::string program_path = argv[1];
  std::string exec_path = argv[2];
  bool hb = false;
  bool trace = false;
  uint64_t max_steps = 10'000'000;
  for (int i = 3; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--hb") {
      hb = true;
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg == "--max-steps" && i + 1 < argc) {
      max_steps = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::cerr << "error: unknown option or missing argument: '" << arg << "' (try --help)\n";
      return 2;
    }
  }

  auto module = tools::LoadProgram(program_path);
  if (module == nullptr) {
    return 1;
  }
  auto exec_text = tools::ReadFile(exec_path);
  if (!exec_text.has_value()) {
    std::cerr << "error: cannot read '" << exec_path << "'\n";
    return 1;
  }
  std::string error;
  auto file = replay::ParseExecutionFile(*exec_text, &error);
  if (!file.has_value()) {
    std::cerr << "error: " << exec_path << ": " << error << "\n";
    return 1;
  }

  if (trace) {
    return TraceReplay(*module, *file, max_steps);
  }
  replay::ReplayResult result = replay::Replay(
      *module, *file, hb ? replay::ReplayMode::kHappensBefore
                         : replay::ReplayMode::kStrict,
      max_steps);
  if (!result.completed) {
    std::cerr << "esdplay: replay did not complete within the step budget\n";
    return 1;
  }
  // A schedule/flush inconsistency is a hard error, not a silent
  // misreplay: the file does not describe the program it was played
  // against (e.g. a flush step past the end of the schedule).
  if (!result.error.empty()) {
    std::cerr << "esdplay: " << exec_path << ": " << result.error << "\n";
    return 1;
  }
  if (!result.output.empty()) {
    std::cout << "-- program output --\n" << result.output << "\n--------------------\n";
  }
  if (result.bug_reproduced) {
    std::cout << "esdplay: bug reproduced deterministically: " << file->bug_kind
              << " (" << result.bug.message << ")\n";
    return 0;
  }
  std::cout << "esdplay: execution completed but the bug did not manifest ("
            << "got '" << vm::BugKindName(result.bug.kind) << "')\n";
  return 1;
}

// Shared helpers for the esdsynth / esdplay / esdrun command-line tools.
#ifndef ESD_TOOLS_TOOL_COMMON_H_
#define ESD_TOOLS_TOOL_COMMON_H_

#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "src/ir/parser.h"
#include "src/ir/verifier.h"
#include "src/workloads/workloads.h"

namespace esd::tools {

inline std::optional<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return std::nullopt;
  }
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

inline bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << content;
  return out.good();
}

// Loads a .esd program. If the file does not declare the standard externs
// itself, the standard preamble is prepended.
inline std::shared_ptr<ir::Module> LoadProgram(const std::string& path) {
  auto text = ReadFile(path);
  if (!text.has_value()) {
    std::cerr << "error: cannot read '" << path << "'\n";
    return nullptr;
  }
  std::string source = *text;
  if (source.find("extern @getchar") == std::string::npos) {
    source = std::string(workloads::ExternsPreamble()) + source;
  }
  auto module = std::make_shared<ir::Module>();
  ir::ParseResult r = ir::ParseModule(source, module.get());
  if (!r.ok) {
    std::cerr << "error: " << path << ": " << r.error << "\n";
    return nullptr;
  }
  auto errors = ir::Verify(*module);
  if (!errors.empty()) {
    std::cerr << "error: " << path << ": " << errors[0] << "\n";
    return nullptr;
  }
  return module;
}

}  // namespace esd::tools

#endif  // ESD_TOOLS_TOOL_COMMON_H_

// esdfuzz: scenario fuzzing for the synthesis engine.
//
//   esdfuzz [--seeds N] [--seed-base S] [--kind deadlock|race|crash|mixed]
//           [--jobs N] [--cooperative | --race-portfolio]
//           [--time-cap SECONDS] [--no-ablations] [--no-ir-opt]
//           [--no-store-buffer] [--shrink] [--out-dir DIR]
//           [--inject-kind-mismatch] [--emit-corpus DIR]
//
// Expands each seed into a random concurrent program with a planted bug
// (src/fuzz/generator.h), then runs the differential oracle: full-engine
// synthesis must find the planted bug, the execution file must replay
// deterministically, and the pruning/solver ablations must agree on
// feasibility. Any failing scenario is a real engine (or generator) bug;
// its self-contained repro is written to --out-dir, delta-debugged to a
// near-minimal program first when --shrink is given.
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "src/fuzz/generator.h"
#include "src/fuzz/oracle.h"
#include "src/fuzz/shrinker.h"
#include "src/replay/execution_file.h"
#include "src/report/coredump.h"
#include "tools/tool_common.h"

namespace {

void Usage(std::ostream& os = std::cerr) {
  os << "usage: esdfuzz [options]\n"
     << "\n"
     << "Sweeps randomly generated concurrent programs with planted bugs\n"
     << "through the full synthesis engine and checks the oracle\n"
     << "invariants: planted bug found, execution file replays\n"
     << "deterministically, pruning/solver ablations agree.\n"
     << "\n"
     << "options:\n"
     << "  --seeds N          scenarios to run (default 20)\n"
     << "  --seed-base S      first seed; scenario i uses seed S+i\n"
     << "                     (default 1)\n"
     << "  --kind K           deadlock | race | crash | rwlock-upgrade |\n"
     << "                     sem-lost-signal | barrier-mismatch |\n"
     << "                     treiber-aba | spsc-fence | mixed\n"
     << "                     (default mixed: kind cycles with the seed)\n"
     << "  --jobs N           portfolio width for each synthesis run\n"
     << "                     (default 1)\n"
     << "  --cooperative      with --jobs N: cooperative work-stealing\n"
     << "                     portfolio (default for N > 1)\n"
     << "  --race-portfolio   with --jobs N: racing portfolio instead\n"
     << "  --time-cap SECONDS per-synthesis budget (default 30)\n"
     << "  --no-ablations     skip the pruning-off / solver-pipeline-off /\n"
     << "                     ir-opt-off agreement runs\n"
     << "  --no-ir-opt        run the whole sweep without the pre-synthesis\n"
     << "                     IR pass pipeline (the CI ablation job runs the\n"
     << "                     corpus both ways and diffs the verdicts)\n"
     << "  --no-store-buffer  sequentially consistent atomics: no TSO\n"
     << "                     store-buffer reordering (the spsc-fence kind's\n"
     << "                     planted bug becomes unreachable)\n"
     << "  --shrink           delta-debug failing scenarios to a minimal\n"
     << "                     repro before writing it\n"
     << "  --out-dir DIR      where failure repros are written (default .)\n"
     << "  --inject-kind-mismatch\n"
     << "                     fault injection: expect the wrong bug kind,\n"
     << "                     so every scenario fails (exercises the\n"
     << "                     failure path and --shrink)\n"
     << "  --emit-corpus DIR  do not run the oracle; write each scenario's\n"
     << "                     program (.esd) + coredump (.core) to DIR along\n"
     << "                     with a corpus.jobs manifest for esdserved\n"
     << "  -h, --help         show this help\n";
}

// A wrong-but-valid kind for fault injection: anything differing from the
// planted kind fails the oracle's kind check.
esd::vm::BugInfo::Kind MismatchedKind(esd::vm::BugInfo::Kind planted) {
  return planted == esd::vm::BugInfo::Kind::kDeadlock
             ? esd::vm::BugInfo::Kind::kAssertFail
             : esd::vm::BugInfo::Kind::kDeadlock;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace esd;
  uint64_t seeds = 20;
  uint64_t seed_base = 1;
  std::string kind_arg = "mixed";
  bool shrink = false;
  bool inject_mismatch = false;
  std::string out_dir = ".";
  std::string emit_corpus_dir;
  fuzz::OracleOptions oracle;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      Usage(std::cout);
      return 0;
    } else if (arg == "--seeds" && i + 1 < argc) {
      seeds = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--seed-base" && i + 1 < argc) {
      seed_base = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--kind" && i + 1 < argc) {
      kind_arg = argv[++i];
      if (kind_arg != "mixed" && !fuzz::ParseBugKindName(kind_arg).has_value()) {
        std::cerr << "error: --kind must be deadlock, race, crash, "
                  << "rwlock-upgrade, sem-lost-signal, barrier-mismatch, "
                  << "treiber-aba, spsc-fence or mixed, got '" << kind_arg
                  << "'\n";
        return 2;
      }
    } else if (arg == "--jobs" && i + 1 < argc) {
      oracle.jobs = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
      if (oracle.jobs == 0 || oracle.jobs > 256) {
        std::cerr << "error: --jobs must be in [1, 256]\n";
        return 2;
      }
    } else if (arg == "--cooperative") {
      oracle.cooperative = true;
    } else if (arg == "--race-portfolio") {
      oracle.cooperative = false;
    } else if (arg == "--time-cap" && i + 1 < argc) {
      oracle.time_cap_seconds = std::atof(argv[++i]);
    } else if (arg == "--no-ablations") {
      oracle.check_ablations = false;
    } else if (arg == "--no-ir-opt") {
      oracle.ir_opt = false;
    } else if (arg == "--no-store-buffer") {
      oracle.store_buffer = false;
    } else if (arg == "--shrink") {
      shrink = true;
    } else if (arg == "--out-dir" && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (arg == "--inject-kind-mismatch") {
      inject_mismatch = true;
    } else if (arg == "--emit-corpus" && i + 1 < argc) {
      emit_corpus_dir = argv[++i];
    } else {
      std::cerr << "error: unknown option or missing argument: '" << arg << "' (try --help)\n";
      return 2;
    }
  }

  // Corpus emission: generate the scenarios and write each as a synthesis
  // job (program + coredump) plus a manifest esdserved consumes directly —
  // the input set for the daemon smoke test and bench_served.
  if (!emit_corpus_dir.empty()) {
    std::string manifest;
    uint64_t emitted = 0;
    for (uint64_t i = 0; i < seeds; ++i) {
      uint64_t seed = seed_base + i;
      fuzz::GeneratorParams params;
      params.seed = seed;
      if (kind_arg == "mixed") {
        params.kind = static_cast<fuzz::BugKind>(seed % fuzz::kNumBugKinds);
      } else {
        params.kind = *fuzz::ParseBugKindName(kind_arg);
      }
      fuzz::GeneratedProgram program = fuzz::Generate(params);
      auto dump = fuzz::MakeReport(program);
      if (!dump.has_value()) {
        std::cerr << "esdfuzz: seed " << seed
                  << ": planted bug did not manifest concretely; skipped\n";
        continue;
      }
      std::string prefix = emit_corpus_dir + "/seed" + std::to_string(seed);
      if (!tools::WriteFile(prefix + ".esd", fuzz::ReproText(program)) ||
          !tools::WriteFile(prefix + ".core",
                            report::CoreDumpToText(*program.module, *dump))) {
        std::cerr << "error: cannot write corpus files '" << prefix << ".*'\n";
        return 1;
      }
      manifest += prefix + ".esd " + prefix + ".core\n";
      ++emitted;
    }
    if (!tools::WriteFile(emit_corpus_dir + "/corpus.jobs", manifest)) {
      std::cerr << "error: cannot write '" << emit_corpus_dir
                << "/corpus.jobs'\n";
      return 1;
    }
    std::cout << "esdfuzz: corpus of " << emitted << " jobs written to "
              << emit_corpus_dir << "/corpus.jobs\n";
    return 0;
  }

  uint64_t failures = 0;
  uint64_t passed = 0;
  for (uint64_t i = 0; i < seeds; ++i) {
    uint64_t seed = seed_base + i;
    fuzz::GeneratorParams params;
    params.seed = seed;
    if (kind_arg == "mixed") {
      params.kind = static_cast<fuzz::BugKind>(seed % fuzz::kNumBugKinds);
    } else {
      params.kind = *fuzz::ParseBugKindName(kind_arg);
    }
    fuzz::GeneratedProgram program = fuzz::Generate(params);
    fuzz::OracleOptions options = oracle;
    if (inject_mismatch) {
      options.expect_kind_override = MismatchedKind(program.expected_kind);
    }
    fuzz::OracleVerdict verdict = fuzz::CheckScenario(program, options);
    if (verdict.ok) {
      ++passed;
      std::cout << "esdfuzz: seed " << seed << " ["
                << fuzz::BugKindName(params.kind) << "] ok: "
                << verdict.result.states_created << " states, "
                << verdict.result.solver.queries << " solver queries, "
                << "fingerprint " << replay::Fingerprint(verdict.result.file)
                << "\n";
      continue;
    }
    ++failures;
    std::cout << "esdfuzz: seed " << seed << " ["
              << fuzz::BugKindName(params.kind) << "] FAIL at stage '"
              << verdict.stage << "': " << verdict.failure << "\n";
    fuzz::GeneratedProgram repro = program;
    if (shrink) {
      fuzz::ShrinkStats stats;
      repro = fuzz::ShrinkFailingScenario(program, options, &stats);
      std::cout << "esdfuzz: shrunk seed " << seed << " from "
                << stats.stmts_before << " to " << stats.stmts_after
                << " statements (" << stats.attempts << " attempts, "
                << stats.rounds << " rounds)\n";
    }
    std::string prefix = out_dir + "/esdfuzz_seed" + std::to_string(seed);
    if (!tools::WriteFile(prefix + ".esd", fuzz::ReproText(repro))) {
      std::cerr << "error: cannot write '" << prefix << ".esd'\n";
      return 1;
    }
    std::cout << "esdfuzz: repro written to " << prefix << ".esd";
    auto dump = fuzz::MakeReport(repro);
    if (dump.has_value() &&
        tools::WriteFile(prefix + ".core",
                         report::CoreDumpToText(*repro.module, *dump))) {
      std::cout << " (+ " << prefix << ".core for esdsynth)";
    }
    std::cout << "\n";
  }
  std::cout << "esdfuzz: " << passed << "/" << seeds << " scenarios passed, "
            << failures << " failed\n";
  return failures == 0 ? 0 : 1;
}

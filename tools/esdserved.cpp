// esdserved: the persistent synthesis service (batch daemon).
//
//   esdserved [--cache-dir DIR] [--jobs N] [--threads N] [--once]
//             [--out-dir DIR] [--no-reuse-results] [--time-cap SECONDS]
//             [--solver-cache-mb N] [MANIFEST...]
//
// Accepts a stream of synthesis jobs — each a module plus a bug report —
// through manifest files and/or stdin, one job per line:
//
//   <module.esd> <report.core> [out.exec]
//
// Jobs are routed through a module-digest-sharded queue to synthesis
// workers. The daemon keeps the solver query cache, the distance tables,
// and the execution-fingerprint corpus warm across jobs on the same module
// and, with --cache-dir, across restarts (crash-safe versioned cache files;
// a corrupted file is quarantined and regenerated, never trusted).
// A re-submitted (report, module) pair answers from the stored verdict;
// a known report against a *patched* module seeds the new search from the
// previously synthesized execution (incremental re-synthesis).
//
// SIGINT (or end of input with --once) drains the queue, flushes every
// cache to disk, prints the reuse summary, and exits 0.
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/serve/job_queue.h"
#include "src/serve/server.h"
#include "tools/tool_common.h"

namespace {

void Usage(std::ostream& os = std::cerr) {
  os << "usage: esdserved [options] [MANIFEST...]\n"
     << "\n"
     << "Persistent synthesis service: reads jobs (one per line:\n"
     << "  <module.esd> <report.core> [out.exec]\n"
     << ") from the given manifest files, then from stdin unless --once.\n"
     << "Caches survive across jobs and, with --cache-dir, restarts.\n"
     << "\n"
     << "options:\n"
     << "  --cache-dir DIR    persist caches + verdicts under DIR\n"
     << "  --jobs N           portfolio width per synthesis (default 1)\n"
     << "  --threads N        concurrent synthesis workers (default 1)\n"
     << "  --once             exit after the manifests; do not read stdin\n"
     << "  --out-dir DIR      write <job>.exec files for reproduced bugs\n"
     << "  --no-reuse-results re-run exact duplicate (report, module) jobs\n"
     << "  --time-cap SECONDS per-job search budget (default 30)\n"
     << "  --solver-cache-mb N  byte budget per module solver cache\n"
     << "                     (default 64)\n"
     << "  -h, --help         show this help\n";
}

// SIGINT flips this; installed without SA_RESTART so a blocking stdin read
// is interrupted and the read loop exits to the drain + flush path.
volatile std::sig_atomic_t g_interrupted = 0;
void HandleSigint(int) { g_interrupted = 1; }

std::mutex g_print_mu;

}  // namespace

int main(int argc, char** argv) {
  using namespace esd;
  serve::ServerOptions options;
  options.synthesis.time_cap_seconds = 30.0;
  size_t threads = 1;
  bool once = false;
  std::string out_dir;
  std::vector<std::string> manifests;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      Usage(std::cout);
      return 0;
    } else if (arg == "--cache-dir" && i + 1 < argc) {
      options.cache_dir = argv[++i];
    } else if (arg == "--jobs" && i + 1 < argc) {
      options.synthesis.jobs =
          static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
      if (options.synthesis.jobs == 0 || options.synthesis.jobs > 256) {
        std::cerr << "error: --jobs must be in [1, 256]\n";
        return 2;
      }
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
      if (threads == 0 || threads > 256) {
        std::cerr << "error: --threads must be in [1, 256]\n";
        return 2;
      }
    } else if (arg == "--once") {
      once = true;
    } else if (arg == "--out-dir" && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (arg == "--no-reuse-results") {
      options.reuse_results = false;
    } else if (arg == "--time-cap" && i + 1 < argc) {
      options.synthesis.time_cap_seconds = std::atof(argv[++i]);
    } else if (arg == "--solver-cache-mb" && i + 1 < argc) {
      options.solver_cache_bytes =
          static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10)) << 20;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "error: unknown option or missing argument: '" << arg
                << "' (try --help)\n";
      return 2;
    } else {
      manifests.push_back(arg);
    }
  }

  struct sigaction sa = {};
  sa.sa_handler = HandleSigint;
  sigaction(SIGINT, &sa, nullptr);  // No SA_RESTART: interrupt blocking reads.

  serve::Server server(std::move(options));
  serve::JobQueue queue(threads);
  uint64_t next_id = 0;

  // Parses one manifest line into a queued job. Loading the module here
  // (not in the worker) lets the queue route by module digest for cache
  // affinity; parse failures are reported immediately and skipped.
  auto submit = [&](const std::string& line, const std::string& origin) {
    std::istringstream ls(line);
    std::string module_path, report_path, out_path;
    ls >> module_path >> report_path >> out_path;
    if (module_path.empty() || module_path[0] == '#') {
      return;  // Blank or comment line.
    }
    serve::Job job;
    job.id = ++next_id;
    job.module_path = module_path;
    job.report_path = report_path;
    job.out_path = out_path;
    auto module_text = tools::ReadFile(module_path);
    auto report_text =
        report_path.empty() ? std::nullopt : tools::ReadFile(report_path);
    if (!module_text.has_value() || !report_text.has_value()) {
      std::lock_guard<std::mutex> lock(g_print_mu);
      std::cerr << "esdserved: " << origin << ": cannot read '"
                << (!module_text.has_value() ? module_path : report_path)
                << "' — job " << job.id << " dropped\n";
      return;
    }
    job.module_text = std::move(*module_text);
    job.report_text = std::move(*report_text);
    // Digest of the raw text is enough for routing affinity (jobs with
    // byte-identical modules co-locate); the server re-digests canonically.
    uint64_t route = 0xcbf29ce484222325ull;
    for (unsigned char c : job.module_text) {
      route = (route ^ c) * 0x100000001b3ull;
    }
    queue.Push(std::move(job), route);
  };

  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (size_t w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      while (auto job = queue.Pop(w)) {
        serve::JobResult r = server.Process(*job);
        if (r.reproduced && !r.exec_text.empty()) {
          std::string out_path = job->out_path;
          if (out_path.empty() && !out_dir.empty()) {
            out_path = out_dir + "/job" + std::to_string(r.job_id) + ".exec";
          }
          if (!out_path.empty() && !tools::WriteFile(out_path, r.exec_text)) {
            std::lock_guard<std::mutex> lock(g_print_mu);
            std::cerr << "esdserved: job " << r.job_id << ": cannot write '"
                      << out_path << "'\n";
          }
        }
        std::lock_guard<std::mutex> lock(g_print_mu);
        for (const std::string& e : server.TakeLoadErrors()) {
          std::cerr << "esdserved: cache: " << e << "\n";
        }
        if (!r.ok) {
          std::cout << "job " << r.job_id << " error: " << r.error << "\n";
        } else if (r.reproduced) {
          std::cout << "job " << r.job_id << " reproduced fingerprint "
                    << r.fingerprint << " source " << r.source
                    << (r.duplicate_bug ? " duplicate-bug" : "");
          if (r.seed_switches > 0) {
            std::cout << " seed-prefix " << r.seed_best_prefix << "/"
                      << r.seed_switches;
          }
          std::cout << "\n";
        } else {
          std::cout << "job " << r.job_id << " not-reproduced source "
                    << r.source << ": " << r.failure_reason << "\n";
        }
        std::cout.flush();
      }
    });
  }

  for (const std::string& path : manifests) {
    auto text = tools::ReadFile(path);
    if (!text.has_value()) {
      std::cerr << "esdserved: error: cannot read manifest '" << path << "'\n";
      queue.Close();
      for (std::thread& t : workers) t.join();
      return 1;
    }
    std::istringstream is(*text);
    std::string line;
    while (!g_interrupted && std::getline(is, line)) {
      submit(line, path);
    }
  }
  if (!once) {
    std::string line;
    while (!g_interrupted && std::getline(std::cin, line)) {
      submit(line, "stdin");
    }
  }

  // Normal end of input or SIGINT: drain what is queued, then flush.
  queue.Close();
  for (std::thread& t : workers) {
    t.join();
  }
  server.FlushAll();

  serve::Server::Stats stats = server.stats();
  serve::JobQueue::Stats qstats = queue.stats();
  std::cout << "esdserved: " << stats.jobs << " jobs (" << stats.reproduced
            << " reproduced, " << stats.verdict_cache_hits << " verdict-cache, "
            << stats.incremental << " incremental, " << stats.duplicate_bugs
            << " duplicate-bug), " << stats.solver_shared_hits
            << " solver cache hits, " << stats.distance_tables_restored
            << " distance tables restored, " << stats.solver_entries_preloaded
            << " solver entries + " << stats.corpus_preloaded
            << " corpus fingerprints preloaded, " << qstats.stolen
            << " jobs stolen\n";
  std::cout << "esdserved: caches flushed\n";
  return 0;
}

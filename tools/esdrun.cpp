// esdrun: run a program concretely and capture a coredump on failure.
//
//   esdrun <program.esd> [--input name=value]... [--seed N] [--dump out.core]
//          [--max-steps N]
//
// This is the "end user side" of the paper's workflow: the program runs
// normally (no tracing, no instrumentation); if it fails, the coredump that
// a production crash handler would produce is written for esdsynth.
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>

#include "src/report/coredump.h"
#include "src/solver/solver.h"
#include "src/vm/engine.h"
#include "src/workloads/trigger.h"
#include "tools/tool_common.h"

namespace {

void Usage(std::ostream& os = std::cerr) {
  os << "usage: esdrun <program.esd> [options]\n"
     << "\n"
     << "Runs the program concretely (the \"end user side\": no tracing, no\n"
     << "instrumentation). If it fails, writes the coredump a production\n"
     << "crash handler would produce, ready for esdsynth.\n"
     << "\n"
     << "options:\n"
     << "  --input name=value  fix the program input with this name prefix\n"
     << "                      (e.g. --input getchar=109); repeatable. When\n"
     << "                      absent, inputs are drawn randomly from --seed\n"
     << "  --seed N            RNG seed for random inputs and the schedule\n"
     << "                      (default 0)\n"
     << "  --dump FILE         coredump output path (default core.txt)\n"
     << "  --max-steps N       abort after N instructions (default 5000000)\n"
     << "  -h, --help          show this help\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace esd;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      Usage(std::cout);
      return 0;
    }
  }
  if (argc < 2) {
    Usage();
    return 2;
  }
  std::string program_path = argv[1];
  std::map<std::string, uint64_t> inputs;
  uint64_t seed = 0;
  bool random = true;
  std::string dump_path = "core.txt";
  uint64_t max_steps = 5'000'000;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--input" && i + 1 < argc) {
      std::string kv = argv[++i];
      size_t eq = kv.find('=');
      if (eq == std::string::npos) {
        std::cerr << "error: --input expects name=value, got '" << kv << "'\n";
        return 2;
      }
      inputs[kv.substr(0, eq)] = std::strtoull(kv.c_str() + eq + 1, nullptr, 0);
      random = false;
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--dump" && i + 1 < argc) {
      dump_path = argv[++i];
    } else if (arg == "--max-steps" && i + 1 < argc) {
      max_steps = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::cerr << "error: unknown option or missing argument: '" << arg << "' (try --help)\n";
      return 2;
    }
  }

  auto module = tools::LoadProgram(program_path);
  if (module == nullptr) {
    return 1;
  }

  solver::ConstraintSolver solver;
  workloads::PrefixInputProvider fixed(inputs);
  workloads::RandomInputProvider rnd(seed + 1);
  workloads::RandomSchedulePolicy sched(seed);
  vm::Interpreter::Options options;
  options.input_provider =
      random ? static_cast<vm::InputProvider*>(&rnd) : &fixed;
  options.policy = &sched;
  vm::Interpreter interpreter(module.get(), &solver, options);

  auto main_fn = module->FindFunction("main");
  if (!main_fn.has_value()) {
    std::cerr << "error: no main function\n";
    return 1;
  }
  vm::StatePtr state = interpreter.MakeInitialState(*main_fn, 0);
  vm::SingleRunResult run = vm::RunToCompletion(interpreter, *state, max_steps);
  if (!state->output.empty()) {
    std::cout << state->output << "\n";
  }
  if (!run.completed) {
    std::cerr << "esdrun: step budget exhausted\n";
    return 1;
  }
  if (!run.bug.IsBug()) {
    std::cout << "esdrun: exited normally (" << run.instructions
              << " instructions)\n";
    return 0;
  }
  report::CoreDump dump = report::CaptureCoreDump(*state, run.bug);
  std::cout << "esdrun: FAILURE: " << vm::BugKindName(run.bug.kind) << " at "
            << module->Describe(run.bug.pc) << " (" << run.bug.message << ")\n";
  if (!tools::WriteFile(dump_path, report::CoreDumpToText(*module, dump))) {
    std::cerr << "error: cannot write '" << dump_path << "'\n";
    return 1;
  }
  std::cout << "esdrun: coredump written to " << dump_path << "\n";
  return 1;
}

// esdcheck: static lock-order analysis with ESD-backed validation (§8).
//
//   esdcheck <program.esd> [--time-cap SECONDS] [--static-only]
//
// Runs the RacerX-style lock-order checker, then validates each warning by
// asking ESD to synthesize an execution that actually deadlocks at the two
// reported acquisition sites. Warnings ESD cannot realize are reported as
// probable false positives.
#include <cstdlib>
#include <iostream>
#include <string>

#include "src/analysis/lock_order.h"
#include "src/core/warning_validation.h"
#include "tools/tool_common.h"

namespace {

void Usage(std::ostream& os = std::cerr) {
  os << "usage: esdcheck <program.esd> [options]\n"
     << "\n"
     << "Runs the RacerX-style static lock-order checker, then validates\n"
     << "each warning by asking ESD to synthesize an execution that actually\n"
     << "deadlocks at the reported acquisition sites. Warnings ESD cannot\n"
     << "realize are reported as probable false positives.\n"
     << "\n"
     << "options:\n"
     << "  --time-cap SECONDS  synthesis budget per warning (default 30)\n"
     << "  --static-only       report the static warnings without ESD\n"
     << "                      validation\n"
     << "  -h, --help          show this help\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace esd;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      Usage(std::cout);
      return 0;
    }
  }
  if (argc < 2) {
    Usage();
    return 2;
  }
  std::string program_path = argv[1];
  bool static_only = false;
  core::SynthesisOptions options;
  options.time_cap_seconds = 30.0;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--time-cap" && i + 1 < argc) {
      options.time_cap_seconds = std::atof(argv[++i]);
    } else if (arg == "--static-only") {
      static_only = true;
    } else {
      std::cerr << "error: unknown option or missing argument: '" << arg << "' (try --help)\n";
      return 2;
    }
  }

  auto module = tools::LoadProgram(program_path);
  if (module == nullptr) {
    return 1;
  }

  auto warnings = analysis::FindLockOrderWarnings(*module);
  std::cout << "esdcheck: static analysis found " << warnings.size()
            << " potential lock-order inversion(s)\n";
  for (size_t i = 0; i < warnings.size(); ++i) {
    const analysis::LockOrderWarning& w = warnings[i];
    std::cout << "  [" << i << "] " << module->GlobalAt(w.ab.first_mutex_global).name
              << " -> " << module->GlobalAt(w.ab.second_mutex_global).name << " at "
              << module->Describe(w.ab.acquire_site) << "  vs  "
              << module->GlobalAt(w.ba.first_mutex_global).name << " -> "
              << module->GlobalAt(w.ba.second_mutex_global).name << " at "
              << module->Describe(w.ba.acquire_site) << "\n";
  }
  if (static_only || warnings.empty()) {
    return 0;
  }

  std::cout << "\nesdcheck: validating each warning with execution synthesis...\n";
  auto validated = core::ValidateLockOrderWarnings(*module, options);
  int confirmed = 0;
  for (size_t i = 0; i < validated.size(); ++i) {
    const core::ValidatedWarning& v = validated[i];
    if (v.confirmed) {
      ++confirmed;
      std::cout << "  [" << i << "] TRUE POSITIVE: deadlock synthesized in "
                << v.synthesis.seconds << "s (fingerprint "
                << replay::Fingerprint(v.synthesis.file) << ")\n";
    } else {
      std::cout << "  [" << i << "] probable false positive: no execution found ("
                << v.synthesis.failure_reason << ")\n";
    }
  }
  std::cout << "\nesdcheck: " << confirmed << "/" << validated.size()
            << " warnings confirmed as real deadlocks\n";
  return 0;
}

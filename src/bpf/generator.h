// ESD BPF: the §7.3 microbenchmark program generator.
//
// "BPF produces synthetic programs that hang and/or crash. These programs
// have conditional branch instructions that depend on program inputs. When
// using more than one thread, the crash/hang scenarios depend on both the
// thread schedule and program inputs. BPF allows direct control of five
// parameters: number of program inputs, number of total branches, number of
// branches depending on inputs, number of threads, and number of shared
// locks. There is one deadlock bug in each generated program."
//
// Generated shape: main reads the inputs into globals and spawns
// `num_threads` workers. Each worker walks a chain of guard branches over
// the inputs; a failed guard diverts into input-dependent filler code that
// terminates the thread. Only the all-guards-pass path reaches the lock
// section, where the first and last workers acquire two of the locks in
// opposite orders (the planted deadlock).
#ifndef ESD_SRC_BPF_GENERATOR_H_
#define ESD_SRC_BPF_GENERATOR_H_

#include <cstdint>
#include <memory>

#include "src/ir/module.h"
#include "src/workloads/trigger.h"

namespace esd::bpf {

struct BpfParams {
  uint32_t num_inputs = 4;
  uint32_t num_branches = 16;        // Total conditional branches to emit.
  uint32_t input_dependent = 16;     // How many depend on inputs (<= total).
  uint32_t num_threads = 2;          // Worker threads.
  uint32_t num_locks = 2;
  uint64_t seed = 1;
};

struct BpfProgram {
  BpfParams params;
  std::shared_ptr<ir::Module> module;
  // A trigger that manifests the deadlock (for coredump capture).
  workloads::Trigger trigger;
  // Rough source-size estimate (the paper's Figure 4 x-axis): one IR
  // instruction per "line of code".
  double kloc = 0.0;
};

BpfProgram Generate(const BpfParams& params);

}  // namespace esd::bpf

#endif  // ESD_SRC_BPF_GENERATOR_H_

#include "src/bpf/generator.h"

#include <algorithm>
#include <random>
#include <sstream>

#include "src/ir/parser.h"
#include "src/ir/verifier.h"
#include "src/workloads/workloads.h"

namespace esd::bpf {
namespace {

// Emits the guard chain + filler structure for one worker. Returns the
// number of conditional branches emitted.
uint32_t EmitWorker(std::ostringstream& os, uint32_t t, const BpfParams& p,
                    uint32_t guards, uint32_t filler_len, std::mt19937_64& rng,
                    bool lock_forward) {
  uint32_t branches = 0;
  os << "func @worker" << t << "(%arg: ptr) : void {\n";
  os << "entry:\n";
  os << "  %acc = alloca 4\n";
  os << "  store i32 1, %acc\n";
  os << "  br g0\n";
  for (uint32_t g = 0; g < guards; ++g) {
    uint32_t input = static_cast<uint32_t>(rng() % p.num_inputs);
    uint32_t threshold = 10 + static_cast<uint32_t>(rng() % 190);
    std::string next = g + 1 == guards ? "locks" : "g" + std::to_string(g + 1);
    os << "g" << g << ":\n";
    os << "  %v" << g << " = load i32, $in" << input << "\n";
    os << "  %c" << g << " = icmp ugt %v" << g << ", i32 " << threshold << "\n";
    os << "  condbr %c" << g << ", " << next << ", f" << g << "_0\n";
    ++branches;
    // Filler: its own input-dependent branch chain that terminates the
    // thread without reaching the lock section.
    for (uint32_t f = 0; f < filler_len; ++f) {
      uint32_t fin = static_cast<uint32_t>(rng() % p.num_inputs);
      uint32_t fth = 5 + static_cast<uint32_t>(rng() % 240);
      std::string fnext =
          f + 1 == filler_len ? "fdone" + std::to_string(g)
                              : "f" + std::to_string(g) + "_" + std::to_string(f + 1);
      os << "f" << g << "_" << f << ":\n";
      os << "  %fv" << g << "_" << f << " = load i32, $in" << fin << "\n";
      os << "  %fc" << g << "_" << f << " = icmp ult %fv" << g << "_" << f << ", i32 "
         << fth << "\n";
      os << "  condbr %fc" << g << "_" << f << ", fh" << g << "_" << f << ", "
         << fnext << "\n";
      ++branches;
      os << "fh" << g << "_" << f << ":\n";
      os << "  %fa" << g << "_" << f << " = load i32, %acc\n";
      os << "  %fm" << g << "_" << f << " = mul %fa" << g << "_" << f << ", i32 "
         << (3 + 2 * f) << "\n";
      os << "  store %fm" << g << "_" << f << ", %acc\n";
      os << "  br " << fnext << "\n";
    }
    os << "fdone" << g << ":\n";
    os << "  ret\n";
  }
  // The lock section: first and last workers invert the order of locks 0
  // and 1; others touch their own lock.
  os << "locks:\n";
  uint32_t first = lock_forward ? 0 : 1;
  uint32_t second = lock_forward ? 1 : 0;
  if (p.num_locks >= 2) {
    os << "  call @mutex_lock($lock" << first << ")\n";
    os << "  call @mutex_lock($lock" << second << ")\n";
    os << "  %shared = load i32, $shared_counter\n";
    os << "  %bumped = add %shared, i32 1\n";
    os << "  store %bumped, $shared_counter\n";
    os << "  call @mutex_unlock($lock" << second << ")\n";
    os << "  call @mutex_unlock($lock" << first << ")\n";
  } else {
    os << "  call @mutex_lock($lock0)\n";
    os << "  call @mutex_unlock($lock0)\n";
  }
  os << "  ret\n";
  os << "}\n";
  return branches;
}

}  // namespace

BpfProgram Generate(const BpfParams& params) {
  BpfParams p = params;
  p.num_inputs = std::max<uint32_t>(1, p.num_inputs);
  p.num_threads = std::max<uint32_t>(2, p.num_threads);
  p.num_locks = std::max<uint32_t>(1, p.num_locks);
  p.input_dependent = std::min(p.input_dependent, p.num_branches);

  std::mt19937_64 rng(p.seed);
  std::ostringstream os;

  for (uint32_t i = 0; i < p.num_inputs; ++i) {
    os << "global $in" << i << " = zero 4\n";
    os << "global $in" << i << "_name = str \"bpf_in" << i << "\"\n";
  }
  for (uint32_t l = 0; l < p.num_locks; ++l) {
    os << "global $lock" << l << " = zero 8\n";
  }
  os << "global $shared_counter = zero 4\n";

  // Distribute the branch budget: each worker gets a guard chain; each
  // failed guard leads into a filler chain.
  uint32_t per_worker = std::max<uint32_t>(1, p.num_branches / p.num_threads);
  uint32_t guards = std::max<uint32_t>(1, per_worker / 4);
  guards = std::min<uint32_t>(guards, 32);  // Keep the bug path bounded.
  uint32_t filler_len =
      std::max<uint32_t>(1, (per_worker - guards) / std::max<uint32_t>(1, guards));

  uint32_t emitted = 0;
  for (uint32_t t = 0; t < p.num_threads; ++t) {
    bool lock_forward = t + 1 != p.num_threads;  // Last worker inverts.
    emitted += EmitWorker(os, t, p, guards, filler_len, rng, lock_forward);
  }

  os << "func @main() : i32 {\n";
  os << "entry:\n";
  for (uint32_t i = 0; i < p.num_inputs; ++i) {
    os << "  %r" << i << "x = call @esd_input_i32($in" << i << "_name)\n";
    os << "  store %r" << i << "x, $in" << i << "\n";
  }
  for (uint32_t t = 0; t < p.num_threads; ++t) {
    os << "  %t" << t << " = call @thread_create(@worker" << t << ", null)\n";
  }
  for (uint32_t t = 0; t < p.num_threads; ++t) {
    os << "  call @thread_join(%t" << t << ")\n";
  }
  os << "  ret i32 0\n";
  os << "}\n";

  BpfProgram program;
  program.params = p;
  program.module = workloads::ParseWorkload(os.str());
  program.kloc = static_cast<double>(program.module->TotalInstructions()) / 1000.0;
  // Trigger: every input large enough to pass all guards; the first worker
  // takes lock0 and is preempted, the last worker takes lock1 and blocks.
  for (uint32_t i = 0; i < p.num_inputs; ++i) {
    program.trigger.inputs["bpf_in" + std::to_string(i)] = 260;
  }
  uint32_t first_tid = 1;
  uint32_t last_tid = p.num_threads;
  program.trigger.schedule = {{first_tid, 1, last_tid}, {last_tid, 1, first_tid}};
  (void)emitted;
  return program;
}

}  // namespace esd::bpf

#include "src/baseline/kc.h"

#include <memory>

#include "src/solver/solver.h"
#include "src/vm/engine.h"
#include "src/vm/searcher.h"

namespace esd::baseline {

void PreemptionBoundingPolicy::BeforeSyncOp(vm::EngineServices& services,
                                            vm::ExecutionState& state,
                                            const vm::SyncOp& op) {
  // The op is about to execute: wake sleeping operations it interferes with
  // (no-op unless sleep sets are enabled and populated).
  WakeSleepers(state, op);
  if (state.preemptions >= bound_) {
    return;
  }
  for (const vm::Thread& t : state.threads) {
    if (t.id == state.current_tid || t.status != vm::ThreadStatus::kRunnable ||
        ShouldSkipFork(state, t.id)) {
      continue;
    }
    vm::StatePtr variant = services.ForkState(state);
    variant->current_tid = t.id;
    ++variant->preemptions;
    variant->RecordEvent(vm::SchedEvent::Kind::kSwitch, t.id, 0, t.Pc());
    RecordPreempted(*variant, state.current_tid, op);
    if (!services.AddState(variant)) {
      continue;  // Deduped: an identical variant is already explored.
    }
    ++schedule_forks_;
    ++state.depth;  // The continuing state also descends in the fork tree.
  }
}

KcResult RunKc(const ir::Module& module, const core::Goal& goal,
               const KcOptions& options) {
  KcResult result;
  solver::ConstraintSolver solver;
  PreemptionBoundingPolicy policy(options.preemption_bound);
  policy.set_sleep_sets(options.sleep_sets);

  std::unique_ptr<vm::Searcher> searcher;
  if (options.strategy == KcOptions::Strategy::kDfs) {
    searcher = std::make_unique<vm::DfsSearcher>();
  } else {
    searcher = std::make_unique<vm::RandomPathSearcher>(options.seed);
  }

  vm::Interpreter::Options iopts;
  iopts.policy = &policy;
  vm::Interpreter interpreter(&module, &solver, iopts);

  auto main_fn = module.FindFunction("main");
  if (!main_fn.has_value()) {
    return result;
  }

  vm::FingerprintTable visited;
  vm::Engine::Options eopts;
  eopts.time_cap_seconds = options.time_cap_seconds;
  eopts.max_instructions = options.max_instructions;
  eopts.max_states = options.max_states;
  if (options.dedup) {
    eopts.visited = &visited;
  }
  vm::Engine engine(&interpreter, searcher.get(), eopts);
  engine.Start(interpreter.MakeInitialState(*main_fn, interpreter.AllocStateId()));

  vm::Engine::Result run = engine.Run(
      [&goal](const vm::ExecutionState& state, const vm::BugInfo& bug) {
        return core::GoalMatches(goal, state, bug);
      });
  result.found = run.status == vm::Engine::Result::Status::kGoalFound;
  result.timed_out = run.status == vm::Engine::Result::Status::kLimitReached;
  result.seconds = run.seconds;
  result.instructions = run.instructions;
  result.states_created = run.states_created;
  result.states_deduped = run.states_deduped;
  result.sleep_set_skips = policy.sleep_set_skips();
  return result;
}

}  // namespace esd::baseline

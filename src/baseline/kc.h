// ESD baseline: KC, the Klee+Chess hybrid of §7.2.
//
// "We extended Klee with support for multi-threading and implemented Chess's
// preemption-bounding approach ... We compare ESD to two different KC search
// strategies inherited directly from Klee: DFS, which can be thought of as
// equivalent to an exhaustive search, and RandomPath, a quasi-random
// strategy meant to maximize global path coverage. We augmented the
// corresponding strategies to encompass all active threads and limit
// preemptions to two."
//
// KC gets the same goal matcher as ESD (it is told which bug to look for)
// but none of the guidance: no proximity queues, no critical-edge pruning,
// no intermediate goals, no deadlock/race strategy — just exhaustive or
// random exploration with Chess-style bounded preemption at sync ops.
#ifndef ESD_SRC_BASELINE_KC_H_
#define ESD_SRC_BASELINE_KC_H_

#include <cstdint>

#include "src/core/goal.h"
#include "src/ir/module.h"
#include "src/vm/schedule_policy.h"

namespace esd::baseline {

// Chess-style iterative-context-bounding policy: at every synchronization
// operation, fork one schedule variant per other runnable thread, as long as
// the state has used fewer than `bound` forced preemptions.
class PreemptionBoundingPolicy : public vm::SchedulePolicy {
 public:
  explicit PreemptionBoundingPolicy(uint32_t bound) : bound_(bound) {}

  void BeforeSyncOp(vm::EngineServices& services, vm::ExecutionState& state,
                    const vm::SyncOp& op) override;

  uint64_t schedule_forks() const { return schedule_forks_; }

 private:
  uint32_t bound_;
  uint64_t schedule_forks_ = 0;
};

struct KcOptions {
  enum class Strategy { kDfs, kRandomPath };
  Strategy strategy = Strategy::kDfs;
  uint32_t preemption_bound = 2;
  double time_cap_seconds = 3600.0;
  uint64_t max_instructions = 500'000'000;
  size_t max_states = 500'000;
  uint64_t seed = 1;
  // Redundant-interleaving pruning (off by default so the baseline stays
  // the literal Klee+Chess reference point; the pruning benches flip these
  // to measure the same machinery under KC).
  bool sleep_sets = false;
  bool dedup = false;
};

struct KcResult {
  bool found = false;
  bool timed_out = false;
  double seconds = 0.0;
  uint64_t instructions = 0;
  uint64_t states_created = 0;
  uint64_t states_deduped = 0;
  uint64_t sleep_set_skips = 0;
};

// Searches `module` for an execution manifesting `goal`.
KcResult RunKc(const ir::Module& module, const core::Goal& goal,
               const KcOptions& options);

}  // namespace esd::baseline

#endif  // ESD_SRC_BASELINE_KC_H_

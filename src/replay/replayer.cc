#include "src/replay/replayer.h"

#include "src/solver/solver.h"

namespace esd::replay {

std::optional<uint32_t> StrictReplayPolicy::ForceSwitch(
    const vm::ExecutionState& state) {
  // The next instruction attempt has index state.steps (steps attempts are
  // already done). The thread to run is given by the last switch point at or
  // before that index; before any switch point, thread 0 runs.
  uint32_t tid = 0;
  for (const SwitchPoint& sp : file_->strict) {
    if (sp.step <= state.steps) {
      tid = sp.tid;
    } else {
      break;
    }
  }
  return tid;
}

std::optional<uint32_t> HbReplayPolicy::ForceSwitch(const vm::ExecutionState& state) {
  // Consume newly recorded sync events that match the expected sequence.
  for (; trace_seen_ < state.sched_trace.size(); ++trace_seen_) {
    const vm::SchedEvent& ev = state.sched_trace[trace_seen_];
    if (ev.kind == vm::SchedEvent::Kind::kSwitch) {
      continue;  // Switches are incidental in happens-before mode.
    }
    if (next_event_ < file_->happens_before.size() &&
        file_->happens_before[next_event_].kind == ev.kind &&
        file_->happens_before[next_event_].tid == ev.tid) {
      ++next_event_;
    }
  }
  if (next_event_ >= file_->happens_before.size()) {
    return std::nullopt;  // All orderings satisfied; run freely.
  }
  const HbEvent& next = file_->happens_before[next_event_];
  if (next.kind == vm::SchedEvent::Kind::kThreadCreate) {
    // A create event names the spawned thread, but it is *performed* by
    // the creator (recorded in addr; 0 = main in legacy files). Forcing
    // the not-yet-existing spawned tid would fall through to whatever
    // thread happens to be current, letting it run past operations the
    // trace orders after the create.
    return static_cast<uint32_t>(next.addr);
  }
  return next.tid;
}

ReplayResult Replay(const ir::Module& module, const ExecutionFile& file,
                    ReplayMode mode, uint64_t max_instructions) {
  ReplayResult result;
  solver::ConstraintSolver solver;
  FileInputProvider inputs(&file);
  StrictReplayPolicy strict(&file);
  HbReplayPolicy hb(&file);

  vm::Interpreter::Options options;
  options.input_provider = &inputs;
  options.policy = mode == ReplayMode::kStrict
                       ? static_cast<vm::SchedulePolicy*>(&strict)
                       : static_cast<vm::SchedulePolicy*>(&hb);
  vm::Interpreter interpreter(&module, &solver, options);

  auto main_fn = module.FindFunction("main");
  if (!main_fn.has_value()) {
    result.bug.message = "no main function";
    return result;
  }
  vm::StatePtr state = interpreter.MakeInitialState(*main_fn, 0);
  vm::SingleRunResult run = RunToCompletion(interpreter, *state, max_instructions);
  result.completed = run.completed;
  result.bug = run.bug;
  result.output = state->output;
  result.instructions = run.instructions;
  result.bug_reproduced =
      run.completed && vm::BugKindName(run.bug.kind) == file.bug_kind;
  return result;
}

}  // namespace esd::replay

#include "src/replay/replayer.h"

#include "src/solver/solver.h"

namespace esd::replay {

void StrictReplayPolicy::BeforeStep(vm::ExecutionState& state) {
  // Apply every recorded flush due at or before this step. A flush recorded
  // at step S was committed by a drain fork just before the instruction at
  // S+1 (the fork rewinds the child's step counter), which is exactly where
  // this hook runs. By then the store is guaranteed buffered — its atomic
  // store executed at an earlier step under the same switch schedule — so
  // a failed commit means the record came from an organic drain (release /
  // RMW / fence / exit) that the replayed instruction already performed
  // itself; skip it rather than stall the cursor.
  while (next_flush_ < file_->flushes.size() &&
         file_->flushes[next_flush_].step <= state.steps) {
    const FlushPoint& fp = file_->flushes[next_flush_];
    if (!state.CommitBufferedStore(fp.tid, fp.addr) && error_.empty()) {
      // Distinguish the organic-drain case (the thread did buffer a store
      // to this address at an earlier step; the replayed instruction drained
      // it itself) from a flush record for a store that was never buffered
      // at all — the latter means the file's schedule does not describe
      // this module, and skipping it silently would misreplay.
      bool ever_buffered = false;
      for (const vm::SchedEvent& ev : state.sched_trace) {
        if (ev.kind == vm::SchedEvent::Kind::kAtomicStore && ev.tid == fp.tid &&
            ev.addr == fp.addr && ev.step <= fp.step) {
          ever_buffered = true;
          break;
        }
      }
      if (!ever_buffered) {
        error_ = "flush at step " + std::to_string(fp.step) +
                 " for never-buffered store (tid " + std::to_string(fp.tid) +
                 ", addr " + std::to_string(fp.addr) + ")";
      }
    }
    ++next_flush_;
  }
}

std::string StrictReplayPolicy::FinalError(
    const vm::ExecutionState& state) const {
  if (!error_.empty()) {
    return error_;
  }
  if (next_flush_ < file_->flushes.size()) {
    const FlushPoint& fp = file_->flushes[next_flush_];
    return "flush at step " + std::to_string(fp.step) +
           " past end of schedule (replay ended at step " +
           std::to_string(state.steps) + ")";
  }
  return "";
}

std::optional<uint32_t> StrictReplayPolicy::ForceSwitch(
    const vm::ExecutionState& state) {
  // The next instruction attempt has index state.steps (steps attempts are
  // already done). The thread to run is given by the last switch point at or
  // before that index; before any switch point, thread 0 runs.
  uint32_t tid = 0;
  for (const SwitchPoint& sp : file_->strict) {
    if (sp.step <= state.steps) {
      tid = sp.tid;
    } else {
      break;
    }
  }
  return tid;
}

void HbReplayPolicy::Consume(const vm::ExecutionState& state) {
  // Consume newly recorded sync events that match the expected sequence.
  for (; trace_seen_ < state.sched_trace.size(); ++trace_seen_) {
    const vm::SchedEvent& ev = state.sched_trace[trace_seen_];
    if (ev.kind == vm::SchedEvent::Kind::kSwitch) {
      continue;  // Switches are incidental in happens-before mode.
    }
    if (next_event_ < file_->happens_before.size() &&
        file_->happens_before[next_event_].kind == ev.kind &&
        file_->happens_before[next_event_].tid == ev.tid) {
      ++next_event_;
    }
  }
}

void HbReplayPolicy::BeforeStep(vm::ExecutionState& state) {
  Consume(state);
  // When the next expected event is a flush, apply it now rather than
  // waiting for the owner thread: the owner drains its buffer in program
  // order (at release points or on exit), and the tid-matched consumption
  // above would accept that sequence even where the recording flushed out
  // of order. If the store is not buffered yet, ForceSwitch keeps forcing
  // the owner until it is.
  while (next_event_ < file_->happens_before.size()) {
    const HbEvent& next = file_->happens_before[next_event_];
    if (next.kind != vm::SchedEvent::Kind::kAtomicFlush) {
      break;
    }
    if (!state.CommitBufferedStore(next.tid, next.addr)) {
      break;
    }
    // CommitBufferedStore recorded the matching at-flush trace event;
    // consume it so the cursor moves past the applied flush.
    Consume(state);
  }
}

std::string HbReplayPolicy::FinalError(const vm::ExecutionState& state) const {
  if (next_event_ < file_->happens_before.size() &&
      file_->happens_before[next_event_].kind ==
          vm::SchedEvent::Kind::kAtomicFlush) {
    const HbEvent& ev = file_->happens_before[next_event_];
    return "at-flush event for tid " + std::to_string(ev.tid) + ", addr " +
           std::to_string(ev.addr) + " never applied (replay ended at step " +
           std::to_string(state.steps) + ")";
  }
  return "";
}

std::optional<uint32_t> HbReplayPolicy::ForceSwitch(const vm::ExecutionState& state) {
  Consume(state);
  if (next_event_ >= file_->happens_before.size()) {
    return std::nullopt;  // All orderings satisfied; run freely.
  }
  const HbEvent& next = file_->happens_before[next_event_];
  if (next.kind == vm::SchedEvent::Kind::kThreadCreate) {
    // A create event names the spawned thread, but it is *performed* by
    // the creator (recorded in addr; 0 = main in legacy files). Forcing
    // the not-yet-existing spawned tid would fall through to whatever
    // thread happens to be current, letting it run past operations the
    // trace orders after the create.
    return static_cast<uint32_t>(next.addr);
  }
  return next.tid;
}

ReplayResult Replay(const ir::Module& module, const ExecutionFile& file,
                    ReplayMode mode, uint64_t max_instructions) {
  ReplayResult result;
  solver::ConstraintSolver solver;
  FileInputProvider inputs(&file);
  StrictReplayPolicy strict(&file);
  HbReplayPolicy hb(&file);

  vm::Interpreter::Options options;
  options.input_provider = &inputs;
  options.policy = mode == ReplayMode::kStrict
                       ? static_cast<vm::SchedulePolicy*>(&strict)
                       : static_cast<vm::SchedulePolicy*>(&hb);
  vm::Interpreter interpreter(&module, &solver, options);

  auto main_fn = module.FindFunction("main");
  if (!main_fn.has_value()) {
    result.bug.message = "no main function";
    return result;
  }
  vm::StatePtr state = interpreter.MakeInitialState(*main_fn, 0);
  vm::SingleRunResult run = RunToCompletion(interpreter, *state, max_instructions);
  result.completed = run.completed;
  result.bug = run.bug;
  result.output = state->output;
  result.instructions = run.instructions;
  result.error = mode == ReplayMode::kStrict ? strict.FinalError(*state)
                                             : hb.FinalError(*state);
  // A flush-record mismatch means whatever just executed was not the
  // recorded execution: even a matching bug kind is a coincidence, not a
  // reproduction.
  result.bug_reproduced = result.error.empty() && run.completed &&
                          vm::BugKindName(run.bug.kind) == file.bug_kind;
  return result;
}

}  // namespace esd::replay

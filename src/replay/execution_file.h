// ESD replay: the synthesized execution file (§5.1).
//
// Holds everything playback needs: concrete values for all program inputs
// (solved from the goal state's path constraints), and the thread schedule
// in two forms:
//   - a strict schedule: the exact step counts at which the scheduler
//     switched threads ("enforce literally a serial execution");
//   - happens-before events: the order of synchronization operations, which
//     lets playback run with natural parallelism while preserving the
//     orderings that matter.
//
// On-disk format (text, line-oriented; written by ExecutionFileToText and
// read back by ParseExecutionFile):
//
//   execution v1                      mandatory header, exact match
//   bug <kind>                        bug kind name (see vm::BugKindName),
//                                     e.g. "deadlock" or "null-deref"
//   description <free text>           human-readable one-liner (may be empty)
//   input <name> = <value>            one line per program input; <name> is
//                                     the symbolic input name (e.g.
//                                     "getchar#3"), <value> a decimal u64.
//                                     Zero or more, sorted by name.
//   switch <step> <tid>               strict schedule: after <step>
//                                     instruction attempts, thread <tid>
//                                     runs. Zero or more, in step order.
//   flush <step> <tid> <addr>         store-buffer flush: at step <step>,
//                                     thread <tid>'s oldest buffered atomic
//                                     store to <addr> became globally
//                                     visible. Zero or more, in step order;
//                                     absent from pre-atomics files. Both
//                                     replay modes re-apply these (strict
//                                     by step, hb eagerly at its event
//                                     position) — without them a weak-memory
//                                     execution would drain in program
//                                     order and miss the stale read.
//   hb <kind> <tid> <addr> <site>     happens-before event: <kind> is one of
//                                     switch | lock | unlock | cond-wait |
//                                     cond-wake | create | exit (plus the
//                                     later extensions, e.g. rd-lock,
//                                     sem-wait, try-fail, and the atomics
//                                     at-load | at-store | at-rmw |
//                                     at-fence | at-flush); <addr> the
//                                     mutex/condvar address (decimal, 0 when
//                                     unused); <site> a "func:block:inst"
//                                     location. Zero or more, in trace order.
//
// Unknown directives are a parse error; blank lines are ignored. The
// `switch`+`flush` and `hb` sections are independent encodings of the same
// schedule — esdplay picks one (strict by default, `--hb` for the latter).
#ifndef ESD_SRC_REPLAY_EXECUTION_FILE_H_
#define ESD_SRC_REPLAY_EXECUTION_FILE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/ir/module.h"
#include "src/solver/solver.h"
#include "src/vm/interpreter.h"
#include "src/vm/state.h"

namespace esd::replay {

// Upper bound on thread ids accepted from parsed schedules: synthesis
// creates at most a handful of threads, so a larger tid marks a corrupt
// (or hostile) file rather than a plausible schedule.
inline constexpr uint32_t kMaxScheduleTid = 1u << 20;

// "After `step` instruction attempts, thread `tid` runs."
struct SwitchPoint {
  uint64_t step = 0;
  uint32_t tid = 0;
};

struct HbEvent {
  vm::SchedEvent::Kind kind;
  uint32_t tid = 0;
  uint64_t addr = 0;
  std::string site;  // "func:block:inst" rendering.
};

// "At `step`, thread `tid`'s oldest buffered store to `addr` flushed."
struct FlushPoint {
  uint64_t step = 0;
  uint32_t tid = 0;
  uint64_t addr = 0;
};

struct ExecutionFile {
  std::string bug_kind;
  std::string description;
  // Input name (e.g. "getchar#3") -> concrete value.
  std::map<std::string, uint64_t> inputs;
  std::vector<SwitchPoint> strict;
  // Recorded store-buffer flushes, step-ordered (strict replay's weak-memory
  // companion to `strict`; empty for executions without atomics).
  std::vector<FlushPoint> flushes;
  std::vector<HbEvent> happens_before;
};

// Builds the execution file from the synthesized goal state: solves the
// accumulated constraints to concrete input values and serializes the
// schedule trace.
ExecutionFile BuildExecutionFile(const ir::Module& module,
                                 const vm::ExecutionState& state,
                                 const vm::BugInfo& bug, const solver::Model& model);

std::string ExecutionFileToText(const ExecutionFile& file);
std::optional<ExecutionFile> ParseExecutionFile(const std::string& text,
                                                std::string* error);

// Canonical fingerprint for automated bug triage (§8): "ESD can be used to
// automatically identify reports of the same bug: if two synthesized
// executions are identical, then they correspond to the same bug." The
// fingerprint covers the bug kind, the inferred inputs, and the schedule.
std::string Fingerprint(const ExecutionFile& file);

}  // namespace esd::replay

#endif  // ESD_SRC_REPLAY_EXECUTION_FILE_H_

#include "src/replay/execution_file.h"

#include <set>
#include <sstream>

namespace esd::replay {
namespace {

std::string_view EventKindName(vm::SchedEvent::Kind kind) {
  switch (kind) {
    case vm::SchedEvent::Kind::kSwitch:
      return "switch";
    case vm::SchedEvent::Kind::kMutexLock:
      return "lock";
    case vm::SchedEvent::Kind::kMutexUnlock:
      return "unlock";
    case vm::SchedEvent::Kind::kCondWait:
      return "cond-wait";
    case vm::SchedEvent::Kind::kCondWake:
      return "cond-wake";
    case vm::SchedEvent::Kind::kThreadCreate:
      return "create";
    case vm::SchedEvent::Kind::kThreadExit:
      return "exit";
    case vm::SchedEvent::Kind::kRwRdLock:
      return "rd-lock";
    case vm::SchedEvent::Kind::kRwWrLock:
      return "wr-lock";
    case vm::SchedEvent::Kind::kRwUnlock:
      return "rw-unlock";
    case vm::SchedEvent::Kind::kSemWait:
      return "sem-wait";
    case vm::SchedEvent::Kind::kSemPost:
      return "sem-post";
    case vm::SchedEvent::Kind::kBarrierWait:
      return "barrier";
    case vm::SchedEvent::Kind::kTryFail:
      return "try-fail";
    case vm::SchedEvent::Kind::kAtomicLoad:
      return "at-load";
    case vm::SchedEvent::Kind::kAtomicStore:
      return "at-store";
    case vm::SchedEvent::Kind::kAtomicRmw:
      return "at-rmw";
    case vm::SchedEvent::Kind::kAtomicFence:
      return "at-fence";
    case vm::SchedEvent::Kind::kAtomicFlush:
      return "at-flush";
  }
  return "?";
}

// Name-based lookup keeps old files parseable unchanged: the v1 event names
// retain their meaning, and the rwlock/semaphore/barrier names are a pure
// extension (files that never use them serialize byte-identically to
// before).
std::optional<vm::SchedEvent::Kind> ParseEventKind(std::string_view s) {
  for (int k = 0; k <= static_cast<int>(vm::SchedEvent::Kind::kAtomicFlush); ++k) {
    auto kind = static_cast<vm::SchedEvent::Kind>(k);
    if (EventKindName(kind) == s) {
      return kind;
    }
  }
  return std::nullopt;
}

// Input names come from program str globals and may legally contain
// whitespace, which would shear the token-based `input <name> = <value>`
// record (or, with a newline, smuggle a bogus extra line). Percent-escape
// the offenders on write and decode on parse: replay still looks names up
// by their exact original bytes, and the escaping is canonical so the
// serialize -> parse -> serialize round trip stays byte-identical.
std::string EscapeName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (unsigned char c : name) {
    if (c == '%' || c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02x", c);
      out += buf;
    } else {
      out += static_cast<char>(c);
    }
  }
  return out;
}

std::string UnescapeName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (size_t i = 0; i < name.size(); ++i) {
    if (name[i] == '%' && i + 2 < name.size()) {
      auto hex = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        return -1;
      };
      int hi = hex(name[i + 1]), lo = hex(name[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out += static_cast<char>(hi * 16 + lo);
        i += 2;
        continue;
      }
    }
    out += name[i];
  }
  return out;
}

}  // namespace

ExecutionFile BuildExecutionFile(const ir::Module& module,
                                 const vm::ExecutionState& state,
                                 const vm::BugInfo& bug, const solver::Model& model) {
  ExecutionFile file;
  file.bug_kind = std::string(vm::BugKindName(bug.kind));
  file.description = bug.message;
  for (const auto& [name, var] : state.inputs) {
    file.inputs[name] = solver::EvalExpr(var, model.values);
  }
  for (const vm::SchedEvent& ev : state.sched_trace) {
    if (ev.kind == vm::SchedEvent::Kind::kSwitch) {
      file.strict.push_back(SwitchPoint{ev.step, ev.tid});
    } else {
      if (ev.kind == vm::SchedEvent::Kind::kAtomicFlush) {
        // Flushes feed both encodings: strict replay re-applies them by
        // step; hb replay orders them among the other sync events.
        file.flushes.push_back(FlushPoint{ev.step, ev.tid, ev.addr});
      }
      HbEvent hb;
      hb.kind = ev.kind;
      hb.tid = ev.tid;
      hb.addr = ev.addr;
      hb.site = module.Describe(ev.site);
      file.happens_before.push_back(std::move(hb));
    }
  }
  return file;
}

std::string ExecutionFileToText(const ExecutionFile& file) {
  std::ostringstream os;
  os << "execution v1\n";
  os << "bug " << file.bug_kind << "\n";
  // The description is free text (bug messages); the format is
  // line-oriented and the parser reads the rest of this one line, so any
  // embedded line break would silently corrupt the records that follow.
  // Flatten to spaces — the parse -> serialize round trip is then
  // byte-stable.
  std::string description = file.description;
  for (char& c : description) {
    if (c == '\n' || c == '\r') {
      c = ' ';
    }
  }
  os << "description " << description << "\n";
  for (const auto& [name, value] : file.inputs) {
    os << "input " << EscapeName(name) << " = " << value << "\n";
  }
  for (const SwitchPoint& sp : file.strict) {
    os << "switch " << sp.step << " " << sp.tid << "\n";
  }
  for (const FlushPoint& fp : file.flushes) {
    os << "flush " << fp.step << " " << fp.tid << " " << fp.addr << "\n";
  }
  for (const HbEvent& hb : file.happens_before) {
    os << "hb " << EventKindName(hb.kind) << " " << hb.tid << " " << hb.addr << " "
       << hb.site << "\n";
  }
  return os.str();
}

std::optional<ExecutionFile> ParseExecutionFile(const std::string& text,
                                                std::string* error) {
  auto fail = [&](const std::string& msg) -> std::optional<ExecutionFile> {
    if (error != nullptr) {
      *error = msg;
    }
    return std::nullopt;
  };
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line != "execution v1") {
    return fail("missing 'execution v1' header");
  }
  ExecutionFile file;
  size_t line_no = 1;
  // A record whose line carries extra tokens is as untrustworthy as one
  // missing fields: the writer and this parser disagree about the format.
  auto trailing = [](std::istringstream& ls) {
    std::string extra;
    return static_cast<bool>(ls >> extra);
  };
  auto at = [&line_no] { return " (line " + std::to_string(line_no) + ")"; };
  std::set<uint32_t> created_tids;
  while (std::getline(is, line)) {
    ++line_no;
    std::istringstream ls(line);
    std::string word;
    ls >> word;
    if (word.empty()) {
      continue;
    }
    if (word == "bug") {
      if (!(ls >> file.bug_kind)) {
        return fail("truncated bug record" + at());
      }
      if (trailing(ls)) {
        return fail("trailing garbage after bug kind" + at());
      }
    } else if (word == "description") {
      std::string rest;
      std::getline(ls, rest);
      if (!rest.empty() && rest[0] == ' ') {
        rest.erase(0, 1);
      }
      file.description = rest;
    } else if (word == "input") {
      std::string name, eq;
      uint64_t value;
      if (!(ls >> name >> eq)) {
        return fail("truncated input record" + at());
      }
      if (eq != "=" || !(ls >> value)) {
        return fail("malformed input line" + at());
      }
      if (trailing(ls)) {
        return fail("trailing garbage after input value" + at());
      }
      name = UnescapeName(name);
      if (!file.inputs.emplace(name, value).second) {
        return fail("duplicate input '" + name + "'" + at());
      }
    } else if (word == "switch") {
      SwitchPoint sp;
      if (!(ls >> sp.step >> sp.tid)) {
        return fail("truncated switch record" + at());
      }
      if (trailing(ls)) {
        return fail("trailing garbage after switch record" + at());
      }
      if (sp.tid > kMaxScheduleTid) {
        return fail("switch tid " + std::to_string(sp.tid) + " out of range" + at());
      }
      // Steps must be non-decreasing. Equal steps are legitimate: a
      // schedule fork created before its thread's first instruction puts
      // two switches at the same step, and strict replay correctly lets
      // the later one win.
      if (!file.strict.empty() && sp.step < file.strict.back().step) {
        return fail("switch points out of step order" + at());
      }
      file.strict.push_back(sp);
    } else if (word == "flush") {
      FlushPoint fp;
      if (!(ls >> fp.step >> fp.tid >> fp.addr)) {
        return fail("truncated flush record" + at());
      }
      if (trailing(ls)) {
        return fail("trailing garbage after flush record" + at());
      }
      if (fp.tid > kMaxScheduleTid) {
        return fail("flush tid " + std::to_string(fp.tid) + " out of range" + at());
      }
      if (!file.flushes.empty() && fp.step < file.flushes.back().step) {
        return fail("flush points out of step order" + at());
      }
      // One step commits at most one buffered store per (thread, address):
      // a second identical record is writer/parser disagreement, and strict
      // replay would silently commit a *different* (younger) buffered store
      // when re-applying it. Flushes are step-ordered, so any duplicate
      // sits in the trailing run of equal steps.
      for (auto it = file.flushes.rbegin();
           it != file.flushes.rend() && it->step == fp.step; ++it) {
        if (it->tid == fp.tid && it->addr == fp.addr) {
          return fail("duplicate flush at step " + std::to_string(fp.step) +
                      " (tid " + std::to_string(fp.tid) + ", addr " +
                      std::to_string(fp.addr) + ")" + at());
        }
      }
      file.flushes.push_back(fp);
    } else if (word == "hb") {
      std::string kind_word;
      HbEvent hb;
      if (!(ls >> kind_word >> hb.tid >> hb.addr >> hb.site)) {
        return fail("truncated hb record" + at());
      }
      if (trailing(ls)) {
        return fail("trailing garbage after hb record" + at());
      }
      auto kind = ParseEventKind(kind_word);
      if (!kind.has_value()) {
        return fail("bad hb event kind '" + kind_word + "'" + at());
      }
      hb.kind = *kind;
      if (hb.tid > kMaxScheduleTid) {
        return fail("hb tid " + std::to_string(hb.tid) + " out of range" + at());
      }
      if (hb.kind == vm::SchedEvent::Kind::kThreadCreate) {
        // `create` events name the spawned thread; the main thread (tid 0)
        // is never created and no tid can be created twice.
        if (hb.tid == 0) {
          return fail("hb create of thread 0 (main is never created)" + at());
        }
        if (!created_tids.insert(hb.tid).second) {
          return fail("duplicate hb create of thread " + std::to_string(hb.tid) +
                      at());
        }
      }
      file.happens_before.push_back(std::move(hb));
    } else {
      return fail("unknown directive '" + word + "'" + at());
    }
  }
  return file;
}

std::string Fingerprint(const ExecutionFile& file) {
  // FNV-1a over the canonical serialization, minus the free-form
  // description line.
  uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](const std::string& s) {
    for (unsigned char c : s) {
      h = (h ^ c) * 0x100000001b3ull;
    }
    h = (h ^ '\n') * 0x100000001b3ull;
  };
  mix(file.bug_kind);
  for (const auto& [name, value] : file.inputs) {
    mix(name + "=" + std::to_string(value));
  }
  for (const SwitchPoint& sp : file.strict) {
    mix(std::to_string(sp.step) + ":" + std::to_string(sp.tid));
  }
  for (const FlushPoint& fp : file.flushes) {
    mix(std::to_string(fp.step) + ":" + std::to_string(fp.tid) + "@" +
        std::to_string(fp.addr));
  }
  for (const HbEvent& hb : file.happens_before) {
    mix(std::string(EventKindName(hb.kind)) + ":" + std::to_string(hb.tid) + ":" +
        hb.site);
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace esd::replay

#include "src/replay/execution_file.h"

#include <sstream>

namespace esd::replay {
namespace {

std::string_view EventKindName(vm::SchedEvent::Kind kind) {
  switch (kind) {
    case vm::SchedEvent::Kind::kSwitch:
      return "switch";
    case vm::SchedEvent::Kind::kMutexLock:
      return "lock";
    case vm::SchedEvent::Kind::kMutexUnlock:
      return "unlock";
    case vm::SchedEvent::Kind::kCondWait:
      return "cond-wait";
    case vm::SchedEvent::Kind::kCondWake:
      return "cond-wake";
    case vm::SchedEvent::Kind::kThreadCreate:
      return "create";
    case vm::SchedEvent::Kind::kThreadExit:
      return "exit";
  }
  return "?";
}

std::optional<vm::SchedEvent::Kind> ParseEventKind(std::string_view s) {
  for (int k = 0; k <= static_cast<int>(vm::SchedEvent::Kind::kThreadExit); ++k) {
    auto kind = static_cast<vm::SchedEvent::Kind>(k);
    if (EventKindName(kind) == s) {
      return kind;
    }
  }
  return std::nullopt;
}

}  // namespace

ExecutionFile BuildExecutionFile(const ir::Module& module,
                                 const vm::ExecutionState& state,
                                 const vm::BugInfo& bug, const solver::Model& model) {
  ExecutionFile file;
  file.bug_kind = std::string(vm::BugKindName(bug.kind));
  file.description = bug.message;
  for (const auto& [name, var] : state.inputs) {
    file.inputs[name] = solver::EvalExpr(var, model.values);
  }
  for (const vm::SchedEvent& ev : state.sched_trace) {
    if (ev.kind == vm::SchedEvent::Kind::kSwitch) {
      file.strict.push_back(SwitchPoint{ev.step, ev.tid});
    } else {
      HbEvent hb;
      hb.kind = ev.kind;
      hb.tid = ev.tid;
      hb.addr = ev.addr;
      hb.site = module.Describe(ev.site);
      file.happens_before.push_back(std::move(hb));
    }
  }
  return file;
}

std::string ExecutionFileToText(const ExecutionFile& file) {
  std::ostringstream os;
  os << "execution v1\n";
  os << "bug " << file.bug_kind << "\n";
  os << "description " << file.description << "\n";
  for (const auto& [name, value] : file.inputs) {
    os << "input " << name << " = " << value << "\n";
  }
  for (const SwitchPoint& sp : file.strict) {
    os << "switch " << sp.step << " " << sp.tid << "\n";
  }
  for (const HbEvent& hb : file.happens_before) {
    os << "hb " << EventKindName(hb.kind) << " " << hb.tid << " " << hb.addr << " "
       << hb.site << "\n";
  }
  return os.str();
}

std::optional<ExecutionFile> ParseExecutionFile(const std::string& text,
                                                std::string* error) {
  auto fail = [&](const std::string& msg) -> std::optional<ExecutionFile> {
    if (error != nullptr) {
      *error = msg;
    }
    return std::nullopt;
  };
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line != "execution v1") {
    return fail("missing 'execution v1' header");
  }
  ExecutionFile file;
  while (std::getline(is, line)) {
    std::istringstream ls(line);
    std::string word;
    ls >> word;
    if (word.empty()) {
      continue;
    }
    if (word == "bug") {
      ls >> file.bug_kind;
    } else if (word == "description") {
      std::string rest;
      std::getline(ls, rest);
      if (!rest.empty() && rest[0] == ' ') {
        rest.erase(0, 1);
      }
      file.description = rest;
    } else if (word == "input") {
      std::string name, eq;
      uint64_t value;
      ls >> name >> eq >> value;
      if (eq != "=") {
        return fail("malformed input line");
      }
      file.inputs[name] = value;
    } else if (word == "switch") {
      SwitchPoint sp;
      ls >> sp.step >> sp.tid;
      file.strict.push_back(sp);
    } else if (word == "hb") {
      std::string kind_word;
      HbEvent hb;
      ls >> kind_word >> hb.tid >> hb.addr >> hb.site;
      auto kind = ParseEventKind(kind_word);
      if (!kind.has_value()) {
        return fail("bad hb event kind '" + kind_word + "'");
      }
      hb.kind = *kind;
      file.happens_before.push_back(std::move(hb));
    } else {
      return fail("unknown directive '" + word + "'");
    }
  }
  return file;
}

std::string Fingerprint(const ExecutionFile& file) {
  // FNV-1a over the canonical serialization, minus the free-form
  // description line.
  uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](const std::string& s) {
    for (unsigned char c : s) {
      h = (h ^ c) * 0x100000001b3ull;
    }
    h = (h ^ '\n') * 0x100000001b3ull;
  };
  mix(file.bug_kind);
  for (const auto& [name, value] : file.inputs) {
    mix(name + "=" + std::to_string(value));
  }
  for (const SwitchPoint& sp : file.strict) {
    mix(std::to_string(sp.step) + ":" + std::to_string(sp.tid));
  }
  for (const HbEvent& hb : file.happens_before) {
    mix(std::string(EventKindName(hb.kind)) + ":" + std::to_string(hb.tid) + ":" +
        hb.site);
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace esd::replay

// ESD replay: deterministic playback (§5.2).
//
// Plays a synthesized execution file back against the program: inputs come
// from the file (input playback), and the schedule is enforced either
// strictly (exact step counts — "one single thread runs at a time, and all
// instructions execute in the exact same order as during synthesis") or via
// happens-before events (threads run freely between synchronization
// operations, which must occur in the recorded order). The replayed state
// can be stepped one instruction at a time, which is what the esdplay CLI
// exposes for use under a debugger.
#ifndef ESD_SRC_REPLAY_REPLAYER_H_
#define ESD_SRC_REPLAY_REPLAYER_H_

#include <memory>
#include <string>

#include "src/replay/execution_file.h"
#include "src/vm/engine.h"
#include "src/vm/schedule_policy.h"

namespace esd::replay {

// Input playback: serves the concrete values recorded in the file.
class FileInputProvider : public vm::InputProvider {
 public:
  explicit FileInputProvider(const ExecutionFile* file) : file_(file) {}
  uint64_t GetValue(const std::string& name, uint32_t /*width*/) override {
    auto it = file_->inputs.find(name);
    return it == file_->inputs.end() ? 0 : it->second;
  }

 private:
  const ExecutionFile* file_;
};

// Strict schedule playback: before every instruction, the thread dictated
// by the recorded switch points must be running.
class StrictReplayPolicy : public vm::SchedulePolicy {
 public:
  explicit StrictReplayPolicy(const ExecutionFile* file) : file_(file) {}
  // Re-applies recorded store-buffer flushes by step count, so buffered
  // atomic stores become visible exactly where synthesis made them visible
  // (possibly out of program order).
  void BeforeStep(vm::ExecutionState& state) override;
  std::optional<uint32_t> ForceSwitch(const vm::ExecutionState& state) override;

  // One-line description of the first flush-record mismatch observed, or
  // empty. Checked during BeforeStep (a flush whose store was never even
  // buffered by its thread) and at end of run via FinalError (flush records
  // left unapplied because their step lies past the end of the schedule).
  // A non-empty error means the file does not describe this module's
  // execution — replay must report it, never silently misreplay.
  std::string FinalError(const vm::ExecutionState& state) const;

 private:
  const ExecutionFile* file_;
  size_t next_flush_ = 0;  // Cursor into file_->flushes.
  std::string error_;      // First never-buffered-store mismatch.
};

// Happens-before playback: the thread owning the next unconsumed sync event
// is preferred; consumption is detected by watching the state's schedule
// trace grow. Once all events are consumed, scheduling is unconstrained.
class HbReplayPolicy : public vm::SchedulePolicy {
 public:
  explicit HbReplayPolicy(const ExecutionFile* file) : file_(file) {}
  // Applies an expected at-flush event as soon as its store is buffered.
  // Eager application matters: left to the owner thread, the buffer would
  // drain in program (FIFO) order at the next flush point or exit, and the
  // tolerant event consumption (kind+tid, no addr) would accept that
  // sequence even where the recording flushed out of order — silently
  // replaying a different (non-buggy) execution.
  void BeforeStep(vm::ExecutionState& state) override;
  std::optional<uint32_t> ForceSwitch(const vm::ExecutionState& state) override;

  // One-line description of a recorded at-flush event that was never
  // applied by the end of the run (its store never became buffered), or
  // empty.
  std::string FinalError(const vm::ExecutionState& state) const;

 private:
  // Consumes newly recorded trace events that match the expected sequence.
  void Consume(const vm::ExecutionState& state);

  const ExecutionFile* file_;
  size_t next_event_ = 0;
  size_t trace_seen_ = 0;
};

enum class ReplayMode { kStrict, kHappensBefore };

struct ReplayResult {
  bool completed = false;
  bool bug_reproduced = false;  // Bug kind matches the file's bug kind.
  vm::BugInfo bug;
  std::string output;
  uint64_t instructions = 0;
  // Non-empty when the schedule's flush records could not be faithfully
  // re-applied (step past the end of the schedule, or a flush for a store
  // the thread never buffered). bug_reproduced is forced false: whatever
  // executed was not the recorded execution.
  std::string error;
};

// One-shot playback of `file` against `module`, starting at "main".
ReplayResult Replay(const ir::Module& module, const ExecutionFile& file,
                    ReplayMode mode, uint64_t max_instructions = 10'000'000);

}  // namespace esd::replay

#endif  // ESD_SRC_REPLAY_REPLAYER_H_

// ESD VM: the instruction interpreter.
//
// One interpreter serves both modes the paper needs:
//   - symbolic execution (synthesis): inputs are fresh symbolic variables,
//     symbolic branches fork states, scheduling hooks fire at preemption
//     points;
//   - concrete execution (stress testing and deterministic playback): an
//     InputProvider supplies input values, every expression stays constant,
//     and a replay policy enforces the recorded schedule.
// Using a single code path removes divergence between what synthesis
// explored and what playback executes.
#ifndef ESD_SRC_VM_INTERPRETER_H_
#define ESD_SRC_VM_INTERPRETER_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/ir/module.h"
#include "src/solver/solver.h"
#include "src/vm/race_detector.h"
#include "src/vm/schedule_policy.h"
#include "src/vm/state.h"

namespace esd::vm {

struct BugInfo {
  enum class Kind : uint8_t {
    kNone,
    kNullDeref,
    kOutOfBounds,
    kUseAfterFree,
    kInvalidFree,
    kDoubleFree,
    kAssertFail,
    kDivByZero,
    kDeadlock,
    kAbort,
    kUnreachable,
    kInvalidSync,
    kInternalError,
  };
  Kind kind = Kind::kNone;
  ir::InstRef pc;
  uint32_t tid = 0;
  uint64_t fault_addr = 0;
  std::string message;

  bool IsBug() const { return kind != Kind::kNone; }
};

std::string_view BugKindName(BugInfo::Kind kind);

// External functions handled by the VM (the paper's environment model plus
// the POSIX-thread layer of §6.1: mutexes, condvars, reader-writer locks,
// counting semaphores, barriers, and thread lifecycle).
enum class ExternalId : uint8_t {
  kGetchar,
  kGetenv,
  kInputI32,
  kInputI64,
  kInputBytes,
  kMalloc,
  kFree,
  kMemset,
  kMemcpy,
  kStrlen,
  kPrintStr,
  kPrintI64,
  kExit,
  kAbort,
  kAssert,
  kThreadCreate,
  kThreadJoin,
  kMutexInit,
  kMutexLock,
  kMutexTryLock,
  kMutexUnlock,
  kCondInit,
  kCondWait,
  kCondSignal,
  kCondBroadcast,
  kRwLockInit,
  kRwRdLock,
  kRwTryRdLock,
  kRwWrLock,
  kRwTryWrLock,
  kRwUnlock,
  kSemInit,
  kSemWait,
  kSemTryWait,
  kSemPost,
  kBarrierInit,
  kBarrierWait,
  kYield,
  // C11 atomics. The last i32 argument carries the memory order in C11
  // numbering (0 relaxed, 2 acquire, 3 release, 4 acq_rel, 5 seq_cst); see
  // "Atomics & the TSO store buffer" in docs/ARCHITECTURE.md.
  kAtomicLoad,
  kAtomicStore,
  kAtomicExchange,
  kAtomicFetchAdd,
  kAtomicCas,
  kAtomicFence,
  kUnknown,
};

// Resolves an external function name (e.g. "rwlock_rdlock") to its id;
// kUnknown for unmodeled names.
ExternalId LookupExternal(const std::string& name);

// The one mapping from externals to synchronization operations: used both
// to announce preemption points to schedule policies and to mark
// StepResult::sync_point for the engine's dedup — a single table so the
// two can never drift. Try variants map to their blocking siblings' kinds
// (same object, same dependency footprint). nullopt for non-sync externals
// (including the *_init calls, which touch no other thread).
std::optional<SyncOp::Kind> SyncKindOf(ExternalId id);

struct StepResult {
  // New states created by this step (branch forks and schedule variants).
  std::vector<StatePtr> forks;
  // Set when the stepped state is finished (normal exit, infeasible path,
  // or a bug in this state).
  bool state_done = false;
  // The step executed a synchronization call: interleavings of independent
  // operations reconverge at these boundaries, so the engine's state
  // deduplication fingerprints the state here.
  bool sync_point = false;
  BugInfo bug;  // kNone unless a bug terminated the state.
};

// Supplies concrete input values during playback / stress runs.
class InputProvider {
 public:
  virtual ~InputProvider() = default;
  virtual uint64_t GetValue(const std::string& name, uint32_t width) = 0;
};

class Interpreter {
 public:
  // One synchronization-external call, as handed to a SyncHandler: the
  // resolved id, the call instruction (for result plumbing), its site, and
  // the pre-evaluated arguments.
  struct SyncCall {
    ExternalId ext;
    const ir::Instruction& inst;
    ir::InstRef site;
    const std::vector<solver::ExprRef>& args;
  };
  // Table-driven sync dispatch: every synchronization external resolves to
  // one of these through the table in interpreter.cc, instead of growing
  // the ExecExternal switch per primitive. The handlers are public only so
  // the table can name them; call through Step(), never directly.
  using SyncHandler = StepResult (Interpreter::*)(ExecutionState&, const SyncCall&);
  StepResult ExecThreadCreate(ExecutionState& state, const SyncCall& call);
  StepResult ExecThreadJoin(ExecutionState& state, const SyncCall& call);
  StepResult ExecSyncObjectInit(ExecutionState& state, const SyncCall& call);
  StepResult ExecMutexLock(ExecutionState& state, const SyncCall& call);
  StepResult ExecMutexUnlock(ExecutionState& state, const SyncCall& call);
  StepResult ExecCondWait(ExecutionState& state, const SyncCall& call);
  StepResult ExecCondWake(ExecutionState& state, const SyncCall& call);
  StepResult ExecRwLock(ExecutionState& state, const SyncCall& call);
  StepResult ExecRwUnlock(ExecutionState& state, const SyncCall& call);
  StepResult ExecSemWait(ExecutionState& state, const SyncCall& call);
  StepResult ExecSemPost(ExecutionState& state, const SyncCall& call);
  StepResult ExecBarrierWait(ExecutionState& state, const SyncCall& call);
  StepResult ExecYield(ExecutionState& state, const SyncCall& call);
  StepResult ExecAtomicLoad(ExecutionState& state, const SyncCall& call);
  StepResult ExecAtomicStore(ExecutionState& state, const SyncCall& call);
  StepResult ExecAtomicRmw(ExecutionState& state, const SyncCall& call);
  StepResult ExecAtomicFence(ExecutionState& state, const SyncCall& call);

  struct Options {
    // Concrete mode when set: inputs come from the provider, no forking.
    InputProvider* input_provider = nullptr;
    SchedulePolicy* policy = nullptr;        // May be null (no schedule forks).
    EngineServices* services = nullptr;      // Required when policy forks.
    RaceDetector* race_detector = nullptr;   // Enables §4.2 lockset tracking.
    // Branch-edge filter for the paper's critical-edge pruning: return false
    // to forbid following edge (branch site -> target block).
    std::function<bool(const ExecutionState&, ir::InstRef, uint32_t)> branch_filter;
    // Upper bound for symbolic-buffer helpers (getenv and friends).
    uint32_t env_string_len = 8;
    // Canonicalize path constraints at AddConstraint time (stage 1 of the
    // solver pipeline; see SynthesisOptions::solver_rewrite).
    bool rewrite_constraints = true;
    // Model TSO store-buffer reordering: relaxed atomic stores park in a
    // per-thread buffer and drain points fork extra schedule variants.
    // Off: every atomic store writes through in program order (the
    // --no-store-buffer ablation). Drain forks only ever fire in symbolic
    // mode; concrete playback applies the recorded flushes instead.
    bool store_buffer = true;
  };

  Interpreter(const ir::Module* module, solver::ConstraintSolver* solver,
              Options options);

  // Builds the initial state: one thread running `entry` (usually "main").
  StatePtr MakeInitialState(uint32_t entry_func, uint64_t state_id) const;

  // Executes one instruction of `state`'s current thread (or resolves
  // blocking/scheduling if it cannot run).
  StepResult Step(ExecutionState& state);

  const ir::Module& module() const { return *module_; }

  // Hands out process-unique state ids (used for branch forks here and for
  // schedule forks in the engine).
  uint64_t AllocStateId() {
    uint64_t id = next_state_id_;
    next_state_id_ += state_id_stride_;
    return id;
  }

  // Cooperative portfolio: worker w of N allocates ids w+1, w+1+N, w+1+2N, …
  // so ids stay unique across workers even when states migrate between
  // frontiers. The default (first=1, stride=1) is the classic sequence.
  void ConfigureStateIds(uint64_t first, uint64_t stride) {
    next_state_id_ = first;
    state_id_stride_ = stride;
  }

  // Wired by the Engine at construction so schedule policies can fork.
  void set_services(EngineServices* services) { options_.services = services; }

  struct Stats {
    uint64_t instructions = 0;
    uint64_t branch_forks = 0;
    uint64_t concretizations = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  // --- Value plumbing ---
  solver::ExprRef EvalValue(const ExecutionState& state, const StackFrame& frame,
                            const ir::Value& v) const;
  static uint32_t TypeWidth(ir::Type t) { return ir::BitWidth(t); }

  // --- Memory access helpers (set `bug` and return false on failure) ---
  bool ConcretizeU64(ExecutionState& state, const solver::ExprRef& e, uint64_t* out);
  bool CheckAccess(ExecutionState& state, uint64_t ptr, uint32_t bytes, bool is_write,
                   ir::InstRef site, BugInfo* bug);
  bool LoadBytes(ExecutionState& state, uint64_t ptr, uint32_t bytes,
                 solver::ExprRef* out, ir::InstRef site, BugInfo* bug);
  bool StoreBytes(ExecutionState& state, uint64_t ptr, const solver::ExprRef& value,
                  ir::InstRef site, BugInfo* bug);
  // Reads a NUL-terminated concrete string (concretizing symbolic bytes).
  bool ReadCString(ExecutionState& state, uint64_t ptr, std::string* out,
                   ir::InstRef site, BugInfo* bug);

  // --- Inputs ---
  solver::ExprRef MakeInput(ExecutionState& state, const std::string& base,
                            uint32_t width);

  // --- Scheduling ---
  // Switches to thread `tid`, recording a schedule event.
  void SwitchTo(ExecutionState& state, uint32_t tid);
  // Picks and switches to a runnable thread; returns false if none exists.
  bool ScheduleNext(ExecutionState& state);
  // Detects a circular wait in the resource-allocation graph [22] spanning
  // mutexes and rwlocks (a blocked writer waits on every current holder, so
  // any directed cycle is a genuine deadlock). Semaphore and barrier waits
  // have no owner and contribute no edges; those deadlocks surface through
  // the global no-runnable-thread check instead.
  bool HasSyncCycle(const ExecutionState& state) const;
  BugInfo MakeDeadlockBug(const ExecutionState& state) const;

  // --- Instruction execution ---
  StepResult ExecInstruction(ExecutionState& state, const ir::Instruction& inst,
                             ir::InstRef site);
  StepResult ExecCondBr(ExecutionState& state, const ir::Instruction& inst,
                        ir::InstRef site);
  StepResult ExecCall(ExecutionState& state, const ir::Instruction& inst,
                      ir::InstRef site);
  StepResult ExecRet(ExecutionState& state, const ir::Instruction& inst);
  StepResult ExecExternal(ExecutionState& state, const ir::Instruction& inst,
                          uint32_t callee_index, ir::InstRef site);
  // Shared tail for every blocking sync path: with the thread already
  // marked blocked, run the cycle detector and schedule the next runnable
  // thread (reporting a deadlock when none exists).
  StepResult BlockCurrentThread(ExecutionState& state);
  void PushFrame(ExecutionState& state, uint32_t func,
                 const std::vector<solver::ExprRef>& args, int32_t ret_reg);
  void PopFrame(ExecutionState& state, const solver::ExprRef& ret_value);
  // Thread's bottom frame returned / thread exited.
  StepResult FinishThread(ExecutionState& state);

  void AdvancePc(ExecutionState& state) { ++state.CurrentFrame().inst; }

  // Fires policy.BeforeSyncOp if the instruction is a preemption point.
  void MaybePreemptionPoint(ExecutionState& state, const ir::Instruction& inst,
                            ir::InstRef site);

  // --- Store-buffer helpers (see "C11 atomics" in interpreter.cc) ---
  // Forks one schedule variant per eligible buffered store; each child
  // commits that entry with the pc unchanged so the atomic op re-executes.
  void MaybeDrainForks(ExecutionState& state, StepResult* result);
  // 4-byte memory access bypassing the race detector (atomics synchronize,
  // they do not race) but waking dependent sleep-set entries.
  solver::ExprRef AtomicReadMem(ExecutionState& state, uint64_t addr);
  void AtomicWriteMem(ExecutionState& state, uint64_t addr,
                      const solver::ExprRef& value);

  // LookupExternal(Func(i).name), memoized per function index: the
  // string-keyed lookup sits on the per-instruction hot path (every
  // external call and preemption point resolves it).
  ExternalId ExternalIdOf(uint32_t func_index);

  const ir::Module* module_;
  solver::ConstraintSolver* solver_;
  Options options_;
  Stats stats_;
  uint64_t next_state_id_ = 1;
  uint64_t state_id_stride_ = 1;
  std::vector<uint8_t> external_ids_;  // Lazily filled by ExternalIdOf.
};

// Encodes function index `f` as a runtime function-pointer value.
constexpr uint32_t kFunctionObjectBase = 0x40000000u;
constexpr uint64_t FunctionPointer(uint32_t func_index) {
  return MakePointer(kFunctionObjectBase + func_index, 0);
}
constexpr bool IsFunctionPointer(uint64_t ptr) {
  return PointerObject(ptr) >= kFunctionObjectBase && PointerOffset(ptr) == 0;
}
constexpr uint32_t FunctionIndexOf(uint64_t ptr) {
  return PointerObject(ptr) - kFunctionObjectBase;
}

}  // namespace esd::vm

#endif  // ESD_SRC_VM_INTERPRETER_H_

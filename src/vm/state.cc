#include "src/vm/state.h"

#include <algorithm>

#include "src/core/arena.h"
#include "src/core/event_counters.h"
#include "src/solver/rewrite.h"
#include "src/vm/fingerprint.h"

namespace esd::vm {
namespace {

constexpr auto Mix64 = FingerprintMix64;

// Order-sensitive fold (sequences where order matters must not XOR-cancel).
uint64_t Fold(uint64_t h, uint64_t v) { return Mix64(h ^ Mix64(v)); }

uint64_t HashInstRef(ir::InstRef r) {
  return (uint64_t{r.func} << 40) ^ (uint64_t{r.block} << 20) ^ r.inst;
}

bool IsRacy(SyncOp::Kind k) {
  return k == SyncOp::Kind::kRacyLoad || k == SyncOp::Kind::kRacyStore;
}

// Conservative wake rule: does executing `op` interfere with sleeping `e`?
bool Dependent(const SyncOp& e, const SyncOp& op) {
  if (IsRacy(e.kind) && IsRacy(op.kind)) {
    // Two data accesses: dependent when they may touch the same data and at
    // least one writes. Addresses are compared at *object* granularity
    // (multi-byte accesses at different offsets of one object can overlap;
    // byte-exact comparison would leave a conflicting entry asleep), and an
    // address of 0 means the pointer was symbolic at the preemption point —
    // independence cannot be shown, so it conflicts with everything.
    if (e.addr == 0 || op.addr == 0) {
      return true;
    }
    return PointerObject(e.addr) == PointerObject(op.addr) &&
           (e.kind == SyncOp::Kind::kRacyStore ||
            op.kind == SyncOp::Kind::kRacyStore);
  }
  if (op.kind == SyncOp::Kind::kYield || e.kind == SyncOp::Kind::kYield) {
    return false;  // Yields order nothing.
  }
  auto is_atomic = [](SyncOp::Kind k) {
    return k == SyncOp::Kind::kAtomicLoad || k == SyncOp::Kind::kAtomicStore ||
           k == SyncOp::Kind::kAtomicRmw || k == SyncOp::Kind::kAtomicFence;
  };
  if (is_atomic(e.kind) || is_atomic(op.kind)) {
    // A fence drains the executing thread's store buffer, changing what
    // every other thread may read next: conservatively dependent on any
    // atomic or plain data access (it carries no address to compare).
    if (e.kind == SyncOp::Kind::kAtomicFence ||
        op.kind == SyncOp::Kind::kAtomicFence) {
      return true;
    }
    if ((is_atomic(e.kind) || IsRacy(e.kind)) &&
        (is_atomic(op.kind) || IsRacy(op.kind))) {
      // Atomic/atomic and mixed atomic/plain pairs behave like data
      // accesses: object-granularity overlap with at least one writer.
      // Two atomic loads commute.
      if (e.addr == 0 || op.addr == 0) {
        return true;
      }
      auto writes = [](SyncOp::Kind k) {
        return k == SyncOp::Kind::kRacyStore ||
               k == SyncOp::Kind::kAtomicStore || k == SyncOp::Kind::kAtomicRmw;
      };
      return PointerObject(e.addr) == PointerObject(op.addr) &&
             (writes(e.kind) || writes(op.kind));
    }
    // Atomic vs. a blocking sync-object operation: the sync object's word
    // may live inside the atomically-accessed object, so compare at object
    // granularity.
    return e.addr == 0 || op.addr == 0 ||
           PointerObject(e.addr) == PointerObject(op.addr);
  }
  // Sync-object operations: same address interferes. Condvar and
  // thread-lifecycle operations change wakeup/thread structure in ways the
  // address alone does not capture, so they wake everything (conservative;
  // mutex-only code keeps its pruning).
  auto broad = [](SyncOp::Kind k) {
    return k == SyncOp::Kind::kCondWait || k == SyncOp::Kind::kCondSignal ||
           k == SyncOp::Kind::kCondBroadcast || k == SyncOp::Kind::kThreadCreate ||
           k == SyncOp::Kind::kThreadJoin;
  };
  if (broad(op.kind) || broad(e.kind)) {
    return true;
  }
  if (IsRacy(e.kind) || IsRacy(op.kind)) {
    // Mixed data/sync pair: the lock word lives inside an object a data
    // access may touch, so compare at object granularity (and a symbolic
    // address conflicts with everything).
    return e.addr == 0 || op.addr == 0 ||
           PointerObject(e.addr) == PointerObject(op.addr);
  }
  // Sync object vs. sync object (mutex / rwlock / semaphore / barrier
  // operations alike): the exact address identifies the object; a zero
  // address means the pointer was symbolic at the preemption point, so
  // independence cannot be shown and the pair conservatively conflicts.
  // Note two rdlocks of the same rwlock are treated as dependent even
  // though both can hold simultaneously — their order still decides when an
  // upgrading writer may proceed, so commuting them is not sound.
  if (e.addr == 0 || op.addr == 0) {
    return true;
  }
  return e.addr == op.addr;
}

}  // namespace

StatePtr ExecutionState::Fork(uint64_t new_id) const {
  CountEvent(&EventCounters::state_forks);
  auto child = std::allocate_shared<ExecutionState>(
      core::ArenaAllocator<ExecutionState>(), *this);
  child->id = new_id;
  child->parent_id = id;
  child->depth = depth + 1;
  return child;
}

solver::ExprRef ExecutionState::NewInput(const std::string& name, uint32_t width) {
  uint64_t var_id = next_var_id++;
  std::string unique = name + "#" + std::to_string(var_id);
  solver::ExprRef var = solver::MakeVar(var_id, width, unique);
  inputs.emplace_back(unique, var);
  return var;
}

void ExecutionState::AddConstraint(solver::ExprRef c) {
  if (rewrite_constraints) {
    c = solver::RewriteExpr(c);
    if (c->IsTrue()) {
      return;  // Trivially true: never reaches the solver or the digest.
    }
  }
  constraints_digest = Fold(constraints_digest, static_cast<uint64_t>(c->hash()));
  constraints.push_back(std::move(c));
}

bool ExecutionState::SleepSetBlocks(uint32_t tid) const {
  for (const SleepEntry& e : sleep_set) {
    if (e.tid != tid) {
      continue;
    }
    for (const Thread& t : threads) {
      if (t.id == tid) {
        // Only a thread still parked at the recorded site is asleep; if it
        // has moved, the entry is stale (dropped lazily by SleepSetWake).
        return t.Pc() == e.op.site;
      }
    }
  }
  return false;
}

void ExecutionState::SleepSetInsert(uint32_t tid, const SyncOp& op) {
  sleep_set.push_back(SleepEntry{tid, op});
}

void ExecutionState::SleepSetWake(const SyncOp& op) {
  if (sleep_set.empty()) {
    return;
  }
  auto stale = [this](const SleepEntry& e) {
    if (e.tid == current_tid) {
      return true;  // Its thread is running: the parked continuation is live.
    }
    for (const Thread& t : threads) {
      if (t.id == e.tid) {
        return t.Pc() != e.op.site;
      }
    }
    return true;  // Thread gone.
  };
  sleep_set.erase(std::remove_if(sleep_set.begin(), sleep_set.end(),
                                 [&](const SleepEntry& e) {
                                   return stale(e) || Dependent(e.op, op);
                                 }),
                  sleep_set.end());
}

void ExecutionState::SleepSetWakeAccess(uint64_t addr, bool is_write) {
  if (sleep_set.empty()) {
    return;
  }
  SyncOp op;
  op.kind = is_write ? SyncOp::Kind::kRacyStore : SyncOp::Kind::kRacyLoad;
  op.addr = addr;
  sleep_set.erase(std::remove_if(sleep_set.begin(), sleep_set.end(),
                                 [&](const SleepEntry& e) {
                                   return Dependent(e.op, op);
                                 }),
                  sleep_set.end());
}

bool ExecutionState::CommitBufferedStore(uint32_t tid, uint64_t addr) {
  Thread* t = FindThread(tid);
  if (t == nullptr) {
    return false;
  }
  auto it = std::find_if(
      t->store_buffer.begin(), t->store_buffer.end(),
      [&](const PendingStore& p) { return p.addr == addr; });
  if (it == t->store_buffer.end()) {
    return false;
  }
  PendingStore p = std::move(*it);
  t->store_buffer.erase(it);
  MemoryObject* obj = mem.FindWritable(PointerObject(p.addr));
  uint64_t offset = PointerOffset(p.addr);
  if (obj != nullptr && !obj->freed && offset + p.width <= obj->size) {
    for (uint32_t i = 0; i < p.width; ++i) {
      mem.WriteByte(obj, static_cast<uint32_t>(offset) + i,
                    solver::MakeExtract(p.value, i * 8, 8));
    }
  }
  RecordEvent(SchedEvent::Kind::kAtomicFlush, tid, p.addr, p.site);
  SleepSetWakeAccess(p.addr, /*is_write=*/true);
  return true;
}

void ExecutionState::DrainStoreBuffer(Thread& t) {
  while (!t.store_buffer.empty()) {
    CommitBufferedStore(t.id, t.store_buffer.front().addr);
  }
}

uint64_t ExecutionState::Fingerprint() const {
  uint64_t h = 0x2545f4914f6cdd1dull;
  // Control state: which thread runs, per-thread stacks and registers.
  h = Fold(h, current_tid);
  h = Fold(h, next_tid);
  h = Fold(h, preemptions);  // KC bounding: budgets left must match to merge.
  for (const Thread& t : threads) {
    uint64_t th = Fold(uint64_t{t.id} << 8, static_cast<uint64_t>(t.status));
    th = Fold(th, t.wait_mutex);
    th = Fold(th, t.wait_cond);
    th = Fold(th, t.cond_saved_mutex ^ (t.cond_signaled ? 1u : 0u));
    th = Fold(th, t.join_tid);
    th = Fold(th, t.wait_sync ^ (t.barrier_released ? 2u : 0u));
    // Pending (unflushed) atomic stores are future memory writes: a state
    // whose buffer still holds a store must never merge with the state
    // where it already drained. Order-sensitive fold — same-address
    // entries drain FIFO, so buffer order is behavior. An empty buffer
    // contributes nothing (pre-atomic states fingerprint as before).
    for (const PendingStore& p : t.store_buffer) {
      th = Fold(th, Fold(Fold(p.addr, p.width),
                         static_cast<uint64_t>(p.value->hash())));
    }
    for (const StackFrame& f : t.frames) {
      th = Fold(th, HashInstRef(ir::InstRef{f.func, f.block, f.inst}));
      for (size_t r = 0; r < f.regs.size(); ++r) {
        if (f.regs[r] != nullptr) {
          th = Fold(th, (uint64_t{static_cast<uint32_t>(r)} << 32) ^
                            static_cast<uint64_t>(f.regs[r]->hash()));
        }
      }
    }
    h ^= Mix64(th);  // XOR-fold across threads (id-keyed, order-free).
  }
  // Memory: incremental content hash maintained by the address space.
  h = Fold(h, mem.content_hash());
  // Sync objects: a pure XOR aggregate, memoized — recomputed only after a
  // mutation through a mutable_* accessor invalidated it.
  if (!sync_fold_valid_) {
    sync_fold_ = SyncFold();
    sync_fold_valid_ = true;
    CountEvent(&EventCounters::sync_fold_recomputes);
  } else {
    CountEvent(&EventCounters::sync_fold_reuses);
  }
  h ^= sync_fold_;
  // Symbolic state: the rolling constraint digest (maintained by
  // AddConstraint) and input counter. Different path conditions must never
  // be merged.
  h = Fold(h, next_var_id);
  h = Fold(h, constraints_digest);
  // Active sleep entries. A state whose sleep set suppresses forks must not
  // be merged with (or cover) one that would still fork them — the classic
  // sleep-sets-plus-state-caching unsoundness: the suppressed interleaving
  // would be explored by neither. Only *active* entries matter (thread
  // still parked at the recorded site and not currently scheduled); stale
  // entries influence nothing and would just block legitimate merges.
  // Wrapping addition keeps the fold order-free without letting duplicate
  // entries cancel.
  for (const SleepEntry& e : sleep_set) {
    if (e.tid == current_tid) {
      continue;
    }
    for (const Thread& t : threads) {
      if (t.id == e.tid && t.Pc() == e.op.site) {
        h += Mix64(Fold(Fold(uint64_t{e.tid} << 8 | static_cast<uint64_t>(e.op.kind),
                             e.op.addr),
                        HashInstRef(e.op.site)));
        break;
      }
    }
  }
  return h;
}


uint64_t ExecutionState::SyncFold() const {
  uint64_t sf = 0;
  // An unlocked mutex contributes nothing, so "never locked" and "locked
  // then unlocked" states agree.
  for (const auto& [addr, m] : mutexes_) {
    if (m.locked) {
      sf ^= Mix64(Fold(Fold(addr, m.holder), HashInstRef(m.acquired_at)));
    }
  }
  for (const auto& [addr, waiters] : cond_waiters_) {
    uint64_t ch = addr;
    for (uint32_t w : waiters) {
      ch = Fold(ch, w);
    }
    if (!waiters.empty()) {
      sf ^= Mix64(ch);
    }
  }
  // Rwlocks: a fully free lock contributes nothing, so "never used" and
  // "acquired then released" agree. Readers fold order-free (wrapping add of
  // mixed entries) — the hold multiset, not the acquisition order, is what
  // determines future behavior.
  for (const auto& [addr, rw] : rwlocks_) {
    if (rw.Free()) {
      continue;
    }
    uint64_t rh = Fold(addr, rw.writer);
    uint64_t readers = 0;
    for (uint32_t r : rw.readers) {
      readers += Mix64(uint64_t{r} + 0x9e3779b97f4a7c15ull);
    }
    rh = Fold(rh, readers);
    if (rw.writer != ir::kInvalidIndex) {
      rh = Fold(rh, HashInstRef(rw.acquired_at));
    }
    sf ^= Mix64(rh);
  }
  // Semaphores: count 0 behaves exactly like an absent entry (both block).
  for (const auto& [addr, sem] : semaphores_) {
    if (sem.count != 0) {
      sf ^= Mix64(Fold(addr, sem.count));
    }
  }
  // Barriers: the required count matters even with nobody waiting (it
  // decides how many future arrivals release), so every initialized barrier
  // contributes. Waiters fold order-free — releases are all-at-once.
  for (const auto& [addr, bar] : barriers_) {
    if (bar.required == 0 && bar.waiting.empty()) {
      continue;
    }
    uint64_t bh = Fold(addr, bar.required);
    uint64_t waiting = 0;
    for (uint32_t w : bar.waiting) {
      waiting += Mix64(uint64_t{w} + 0x9e3779b97f4a7c15ull);
    }
    bh = Fold(bh, waiting);
    sf ^= Mix64(bh);
  }
  return sf;
}

}  // namespace esd::vm

#include "src/vm/state.h"

namespace esd::vm {

StatePtr ExecutionState::Fork(uint64_t new_id) const {
  auto child = std::make_shared<ExecutionState>(*this);
  child->id = new_id;
  child->parent_id = id;
  child->depth = depth + 1;
  return child;
}

solver::ExprRef ExecutionState::NewInput(const std::string& name, uint32_t width) {
  uint64_t var_id = next_var_id++;
  std::string unique = name + "#" + std::to_string(var_id);
  solver::ExprRef var = solver::MakeVar(var_id, width, unique);
  inputs.emplace_back(unique, var);
  return var;
}

}  // namespace esd::vm

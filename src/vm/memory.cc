#include "src/vm/memory.h"

#include "src/vm/fingerprint.h"

namespace esd::vm {
namespace {

constexpr auto Mix64 = FingerprintMix64;

// Contribution of one byte to the address-space content hash. A zero
// constant contributes nothing, so untouched (zero-filled) bytes are free.
uint64_t ByteHash(uint32_t obj_id, uint32_t offset, const solver::ExprRef& v) {
  if (v == nullptr || v->IsConstValue(0)) {
    return 0;
  }
  return Mix64((uint64_t{obj_id} << 32 | offset) ^
               Mix64(static_cast<uint64_t>(v->hash())));
}

constexpr uint64_t kFreedSalt = 0x9e3779b97f4a7c15ull;

}  // namespace

uint32_t AddressSpace::Allocate(uint32_t size, ObjectKind kind, std::string name) {
  auto obj = std::make_shared<MemoryObject>();
  obj->id = next_id_++;
  obj->size = size;
  obj->kind = kind;
  obj->name = std::move(name);
  obj->bytes.assign(size, solver::MakeConst(8, 0));
  uint32_t id = obj->id;
  objects_.emplace(id, std::move(obj));
  return id;
}

uint32_t AddressSpace::AllocateInit(uint32_t size, ObjectKind kind, std::string name,
                                    const std::vector<uint8_t>& init) {
  uint32_t id = Allocate(size, kind, std::move(name));
  MemoryObject* obj = FindWritable(id);
  for (size_t i = 0; i < init.size() && i < obj->bytes.size(); ++i) {
    WriteByte(obj, static_cast<uint32_t>(i), solver::MakeConst(8, init[i]));
  }
  return id;
}

bool AddressSpace::Free(uint32_t id) {
  auto it = objects_.find(id);
  if (it == objects_.end() || it->second->freed) {
    return false;
  }
  MemoryObject* obj = FindWritable(id);
  obj->freed = true;
  content_hash_ ^= Mix64(uint64_t{id} ^ kFreedSalt);
  return true;
}

const MemoryObject* AddressSpace::Find(uint32_t id) const {
  auto it = objects_.find(id);
  return it == objects_.end() ? nullptr : it->second.get();
}

MemoryObject* AddressSpace::FindWritable(uint32_t id) {
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return nullptr;
  }
  if (it->second.use_count() > 1) {
    it->second = std::make_shared<MemoryObject>(*it->second);
  }
  return it->second.get();
}

void AddressSpace::WriteByte(MemoryObject* obj, uint32_t offset,
                             solver::ExprRef value) {
  content_hash_ ^= ByteHash(obj->id, offset, obj->bytes[offset]) ^
                   ByteHash(obj->id, offset, value);
  obj->bytes[offset] = std::move(value);
}

}  // namespace esd::vm

#include "src/vm/memory.h"

#include "src/core/arena.h"
#include "src/core/event_counters.h"
#include "src/vm/fingerprint.h"

namespace esd::vm {
namespace {

constexpr auto Mix64 = FingerprintMix64;

// Contribution of one byte to the page and address-space content hashes. A
// zero constant (or a never-written null slot) contributes nothing, so
// untouched bytes are free.
uint64_t ByteHash(uint32_t obj_id, uint32_t offset, const solver::ExprRef& v) {
  if (v == nullptr || v->IsConstValue(0)) {
    return 0;
  }
  return Mix64((uint64_t{obj_id} << 32 | offset) ^
               Mix64(static_cast<uint64_t>(v->hash())));
}

constexpr uint64_t kFreedSalt = 0x9e3779b97f4a7c15ull;

}  // namespace

const solver::ExprRef& ZeroByte() {
  static const solver::ExprRef kZero = solver::MakeConst(8, 0);
  return kZero;
}

uint32_t AddressSpace::Allocate(uint32_t size, ObjectKind kind, std::string name) {
  auto obj = std::make_shared<MemoryObject>();
  obj->id = static_cast<uint32_t>(objects_.size()) + 1;
  obj->size = size;
  obj->kind = kind;
  obj->name = std::move(name);
  obj->pages.resize((size + kPageSize - 1) >> kPageSizeLog2);  // All zero pages.
  uint32_t id = obj->id;
  objects_.push_back(std::move(obj));
  return id;
}

uint32_t AddressSpace::AllocateInit(uint32_t size, ObjectKind kind, std::string name,
                                    const std::vector<uint8_t>& init) {
  uint32_t id = Allocate(size, kind, std::move(name));
  MemoryObject* obj = FindWritable(id);
  for (size_t i = 0; i < init.size() && i < size; ++i) {
    WriteByte(obj, static_cast<uint32_t>(i), solver::MakeConst(8, init[i]));
  }
  return id;
}

bool AddressSpace::Free(uint32_t id) {
  const MemoryObject* obj = Find(id);
  if (obj == nullptr || obj->freed) {
    return false;
  }
  MemoryObject* writable = FindWritable(id);
  writable->freed = true;
  content_hash_ ^= Mix64(uint64_t{id} ^ kFreedSalt);
  return true;
}

const MemoryObject* AddressSpace::Find(uint32_t id) const {
  if (id == 0 || id > objects_.size()) {
    return nullptr;
  }
  return objects_[id - 1].get();
}

MemoryObject* AddressSpace::FindWritable(uint32_t id) {
  if (id == 0 || id > objects_.size()) {
    return nullptr;
  }
  std::shared_ptr<MemoryObject>& slot = objects_[id - 1];
  if (slot.use_count() > 1) {
    slot = std::make_shared<MemoryObject>(*slot);  // Pages stay shared.
  }
  return slot.get();
}

void AddressSpace::WriteByte(MemoryObject* obj, uint32_t offset,
                             solver::ExprRef value) {
  PageRef& page = obj->pages[offset >> kPageSizeLog2];
  if (page == nullptr) {
    page = std::allocate_shared<MemoryPage>(core::ArenaAllocator<MemoryPage>());
    CountEvent(&EventCounters::pages_copied);
  } else if (page.use_count() > 1) {
    // Hash carried over by the copy, no re-walk.
    page = std::allocate_shared<MemoryPage>(core::ArenaAllocator<MemoryPage>(), *page);
    CountEvent(&EventCounters::pages_copied);
  }
  solver::ExprRef& slot = page->bytes[offset & (kPageSize - 1)];
  uint64_t delta = ByteHash(obj->id, offset, slot) ^ ByteHash(obj->id, offset, value);
  page->hash ^= delta;
  content_hash_ ^= delta;
  CountEvent(&EventCounters::bytes_hashed);
  slot = std::move(value);
}

}  // namespace esd::vm

#include "src/vm/memory.h"

namespace esd::vm {

uint32_t AddressSpace::Allocate(uint32_t size, ObjectKind kind, std::string name) {
  auto obj = std::make_shared<MemoryObject>();
  obj->id = next_id_++;
  obj->size = size;
  obj->kind = kind;
  obj->name = std::move(name);
  obj->bytes.assign(size, solver::MakeConst(8, 0));
  uint32_t id = obj->id;
  objects_.emplace(id, std::move(obj));
  return id;
}

uint32_t AddressSpace::AllocateInit(uint32_t size, ObjectKind kind, std::string name,
                                    const std::vector<uint8_t>& init) {
  uint32_t id = Allocate(size, kind, std::move(name));
  MemoryObject* obj = FindWritable(id);
  for (size_t i = 0; i < init.size() && i < obj->bytes.size(); ++i) {
    obj->bytes[i] = solver::MakeConst(8, init[i]);
  }
  return id;
}

bool AddressSpace::Free(uint32_t id) {
  auto it = objects_.find(id);
  if (it == objects_.end() || it->second->freed) {
    return false;
  }
  MemoryObject* obj = FindWritable(id);
  obj->freed = true;
  return true;
}

const MemoryObject* AddressSpace::Find(uint32_t id) const {
  auto it = objects_.find(id);
  return it == objects_.end() ? nullptr : it->second.get();
}

MemoryObject* AddressSpace::FindWritable(uint32_t id) {
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return nullptr;
  }
  if (it->second.use_count() > 1) {
    it->second = std::make_shared<MemoryObject>(*it->second);
  }
  return it->second.get();
}

}  // namespace esd::vm

// ESD VM: Eraser-style lockset data-race detection (§4.2).
//
// Tracks, per shared memory word, the set of locks consistently held across
// accesses. When the candidate set becomes empty and at least two threads
// touched the word with at least one write, the access sites are flagged as
// a potential (harmful) data race; the race schedule strategy then inserts
// preemption points at those sites. Because ESD drives the detector from
// symbolic execution, it observes many paths, not just one workload (§4.2).
#ifndef ESD_SRC_VM_RACE_DETECTOR_H_
#define ESD_SRC_VM_RACE_DETECTOR_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "src/ir/instruction.h"
#include "src/vm/state.h"

namespace esd::vm {

struct RaceReport {
  uint64_t addr = 0;
  ir::InstRef first_site;
  ir::InstRef second_site;
  bool second_is_write = false;
};

class RaceDetector {
 public:
  // Reports an access; returns a newly flagged race, if any. `held_locks`
  // are the mutex addresses the accessing thread currently holds.
  std::optional<RaceReport> OnAccess(uint64_t addr, uint32_t tid, bool is_write,
                                     ir::InstRef site,
                                     const std::set<uint64_t>& held_locks);

  // Sites flagged as potential races (preemption points for the strategy).
  const std::set<ir::InstRef>& FlaggedSites() const { return flagged_sites_; }
  const std::vector<RaceReport>& Races() const { return races_; }

  // Computes the lock addresses held by `tid` in `state`: mutexes plus
  // write-held rwlocks (both exclude every conflicting access).
  static std::set<uint64_t> HeldLocks(const ExecutionState& state, uint32_t tid);

  // The Eraser rwlock refinement: for the lockset protecting an *access*,
  // a write-held rwlock always counts, while a read-held rwlock counts
  // only for reads — a read lock orders the access against writers (who
  // must hold the write side), but two read-holding writers would still
  // race. Semaphores contribute nothing: they provide ordering, not
  // mutual exclusion over a region.
  static std::set<uint64_t> HeldLocksForAccess(const ExecutionState& state,
                                               uint32_t tid, bool is_write);

 private:
  enum class WordState : uint8_t { kVirgin, kExclusive, kShared, kSharedModified };

  struct WordInfo {
    WordState st = WordState::kVirgin;
    uint32_t first_tid = 0;
    std::set<uint64_t> lockset;  // Candidate lockset C(v).
    ir::InstRef last_site;
    bool reported = false;
  };

  std::map<uint64_t, WordInfo> words_;
  std::set<ir::InstRef> flagged_sites_;
  std::vector<RaceReport> races_;
};

}  // namespace esd::vm

#endif  // ESD_SRC_VM_RACE_DETECTOR_H_

// ESD VM: the cooperative portfolio's shared partitioned frontier.
//
// In cooperative mode (SynthesisOptions::cooperative, jobs > 1) the N
// portfolio workers drain ONE logical frontier instead of racing N
// decorrelated copies of the same search. The frontier is partitioned by
// fork-fingerprint ownership hashing: when a worker registers a schedule or
// branch fork, the child's 64-bit state fingerprint mod N names its home
// worker, and children whose home is another worker are handed off through
// that worker's deque. Each worker owns one deque: the owner absorbs it
// wholesale into its prioritized searcher at the hot end (newest first, so
// absorption behaves like a LIFO pop burst), while an idle worker whose own
// partition is empty steals the oldest entry (FIFO, the cold end — the
// shallowest state, hence the largest unexplored subtree) from a random
// victim. Because the shared FingerprintTable admits each interleaving
// class once and the hash routes every class to one home, the portfolio
// explores each class roughly once instead of jobs times.
//
// Termination detection: an atomic in-flight count tracks every state that
// has been registered anywhere (kept locally, handed off, or being stepped)
// and not yet finished. An idle worker that finds every deque empty may
// only exit when the count is zero; a nonzero count with empty deques means
// some peer is mid-step and may still publish forks, so the worker spins
// (AcquireResult::kRetry). The count is incremented before a state becomes
// reachable by any peer and decremented only after its forks were absorbed,
// so it cannot transiently read zero while work remains.
//
// The interface is abstract so tests can instrument the steal protocol
// (tests/portfolio_test.cc drives a barrier-instrumented fake through the
// steal-race window); SharedFrontier is the production implementation.
#ifndef ESD_SRC_VM_WORK_QUEUE_H_
#define ESD_SRC_VM_WORK_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <random>
#include <vector>

#include "src/vm/state.h"

namespace esd::vm {

// Cross-worker state-transfer surface for the cooperative portfolio. All
// methods are thread-safe; `worker` parameters name the calling worker.
class WorkQueue {
 public:
  // Outcome of an idle worker's attempt to acquire more work.
  enum class AcquireResult : uint8_t {
    kGot,      // `out` holds one or more states (own partition or stolen).
    kRetry,    // Every deque is empty but peers still hold in-flight
               // states that may fork: spin and try again.
    kDrained,  // Global frontier empty and nothing in flight: terminate.
    kAbort,    // A peer stopped on a budget limit: stop idling, report
               // kLimitReached instead of spinning until the time cap.
  };

  virtual ~WorkQueue() = default;

  // Routes a fork to its home worker's deque. Called by the worker that
  // created (and fingerprint-registered) the fork; `home` != the caller.
  // Counts the state in flight.
  virtual void PushRemote(size_t home, StatePtr state) = 0;

  // Accounts a fork the creating worker keeps in its own searcher (home ==
  // creator, no deque trip). Counts the state in flight.
  virtual void NoteLocalKeep() = 0;

  // Moves every state currently routed to `worker` into `out` (newest
  // last). Returns false without locking when the deque is empty — cheap
  // enough for the engine to poll every iteration.
  virtual bool TryDrainOwn(size_t worker, std::vector<StatePtr>* out) = 0;

  // Idle-worker path: drain own deque, else steal the oldest state from a
  // random victim, else report why nothing was acquired (see AcquireResult).
  virtual AcquireResult Acquire(size_t worker, std::vector<StatePtr>* out) = 0;

  // A state finished (ran to completion, was pruned at a sync point, or
  // hit a bug): removes it from the in-flight count.
  virtual void FinishOne() = 0;

  // The calling worker is exiting on a budget limit with states possibly
  // still queued; idle peers must stop spinning (Acquire returns kAbort).
  virtual void NoteLimit() = 0;

  // In-flight count, for tests and diagnostics.
  virtual uint64_t InFlight() const = 0;
};

// Production frontier: one mutex-protected deque per worker plus the
// atomic in-flight count. Deque mutexes are uncontended in steady state
// (the owner absorbs in bursts; remote pushes touch only the home's lock).
class SharedFrontier : public WorkQueue {
 public:
  explicit SharedFrontier(size_t workers, uint64_t seed = 0x9e3779b97f4a7c15ull);

  void PushRemote(size_t home, StatePtr state) override;
  void NoteLocalKeep() override;
  bool TryDrainOwn(size_t worker, std::vector<StatePtr>* out) override;
  AcquireResult Acquire(size_t worker, std::vector<StatePtr>* out) override;
  void FinishOne() override;
  void NoteLimit() override;
  uint64_t InFlight() const override;

 private:
  struct Partition {
    std::mutex mu;
    std::deque<StatePtr> queue;
    // Lock-free emptiness probe for the owner's per-iteration poll.
    std::atomic<size_t> size{0};
    // Victim-order randomization; touched only by the owning worker's
    // Acquire calls, so it needs no lock.
    std::mt19937_64 rng;
  };

  std::vector<std::unique_ptr<Partition>> partitions_;
  std::atomic<uint64_t> in_flight_{0};
  std::atomic<bool> limit_{false};
};

}  // namespace esd::vm

#endif  // ESD_SRC_VM_WORK_QUEUE_H_

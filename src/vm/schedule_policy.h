// ESD VM: scheduling policy hooks.
//
// The paper treats the scheduler's decisions as symbolic (§4): every
// preemption point may fork states that differ only in which thread runs
// next. The interpreter announces preemption points through this interface;
// policies implement the paper's strategies:
//   - core/deadlock_strategy.h: the §4.1 inner/outer-lock heuristic;
//   - core/race_strategy.h: the §4.2 lockset + common-stack-prefix heuristic;
//   - baseline/kc.h: Chess-style bounded preemption at every sync op;
//   - replay/replayer.h: deterministic enforcement of a recorded schedule.
#ifndef ESD_SRC_VM_SCHEDULE_POLICY_H_
#define ESD_SRC_VM_SCHEDULE_POLICY_H_

#include <cstdint>
#include <optional>

#include "src/ir/instruction.h"
#include "src/vm/state.h"

namespace esd::vm {

// SyncOp is defined in state.h (the state's sleep set records them); it is
// re-exported here for policy implementations.

// Services the engine exposes to policies (forking schedule variants and
// re-prioritizing states whose schedule distance changed).
class EngineServices {
 public:
  virtual ~EngineServices() = default;
  // Clones `state` (fresh id) without adding it to the searcher.
  virtual StatePtr ForkState(const ExecutionState& state) = 0;
  // Hands a forked state to the searcher. Returns false if the engine
  // dropped it instead (state deduplication: an identical state was already
  // explored) — callers must not keep references expecting it to be
  // searched or reprioritized.
  virtual bool AddState(StatePtr state) = 0;
  // Tells the searcher that `state`'s priority inputs changed.
  virtual void Reprioritize(const StatePtr& state) = 0;
  // Looks up the live StatePtr for a state reference (for snapshots).
  virtual StatePtr SharedRef(const ExecutionState& state) = 0;
};

class SchedulePolicy {
 public:
  virtual ~SchedulePolicy() = default;

  // Called at the top of every Step, before ForceSwitch, with mutable
  // access to the state. Replay policies apply recorded store-buffer
  // flushes here (ExecutionState::CommitBufferedStore) so out-of-order
  // flush points land at their recorded positions regardless of which
  // thread is scheduled next.
  virtual void BeforeStep(ExecutionState& /*state*/) {}

  // Consulted before every instruction: a forced thread switch (replay).
  virtual std::optional<uint32_t> ForceSwitch(const ExecutionState& /*state*/) {
    return std::nullopt;
  }

  // Whether loads/stores at `site` should be treated as preemption points
  // (set by the race strategy for flagged potential races).
  virtual bool IsPreemptionAccess(const ExecutionState& /*state*/, ir::InstRef /*site*/) {
    return false;
  }

  // Called before a preemption-point operation executes. The policy may fork
  // schedule variants (states where another thread runs instead).
  virtual void BeforeSyncOp(EngineServices& /*services*/, ExecutionState& /*state*/,
                            const SyncOp& /*op*/) {}

  // Called after the current thread acquired mutex `addr`.
  virtual void OnLockAcquired(EngineServices& /*services*/, ExecutionState& /*state*/,
                              uint64_t /*addr*/, ir::InstRef /*site*/) {}

  // Called when the current thread blocked on mutex `addr` held by `holder`
  // (also fired for rwlock blocking, with the writer / a remaining reader
  // as the holder).
  virtual void OnLockBlocked(EngineServices& /*services*/, ExecutionState& /*state*/,
                             uint64_t /*addr*/, uint32_t /*holder*/) {}

  // Called after mutex `addr` was released.
  virtual void OnUnlock(EngineServices& /*services*/, ExecutionState& /*state*/,
                        uint64_t /*addr*/) {}

  // Picks the next thread when the current one cannot continue. Returning
  // nullopt selects the lowest-id runnable thread.
  virtual std::optional<uint32_t> PickNextThread(const ExecutionState& /*state*/) {
    return std::nullopt;
  }

  // ---- Sleep sets (shared by every forking policy) ----
  //
  // When enabled, a policy about to fork schedule variants at a preemption
  // point should:
  //   1. call WakeSleepers(state, op) first (the op is about to execute and
  //      may interfere with sleeping operations);
  //   2. skip forking to any thread for which ShouldSkipFork returns true —
  //      the continuation it would create is covered by an earlier sibling
  //      and nothing dependent has happened since;
  //   3. record the preempted thread in each child with RecordPreempted.
  void set_sleep_sets(bool enabled) { sleep_sets_ = enabled; }
  bool sleep_sets_enabled() const { return sleep_sets_; }
  uint64_t sleep_set_skips() const { return sleep_skips_; }

 protected:
  void WakeSleepers(ExecutionState& state, const SyncOp& op) {
    if (sleep_sets_) {
      state.SleepSetWake(op);
    }
  }

  bool ShouldSkipFork(const ExecutionState& state, uint32_t tid) {
    if (!sleep_sets_ || !state.SleepSetBlocks(tid)) {
      return false;
    }
    ++sleep_skips_;
    return true;
  }

  void RecordPreempted(ExecutionState& child, uint32_t preempted_tid,
                       const SyncOp& op) {
    if (sleep_sets_) {
      child.SleepSetInsert(preempted_tid, op);
    }
  }

 private:
  bool sleep_sets_ = false;
  uint64_t sleep_skips_ = 0;
};

}  // namespace esd::vm

#endif  // ESD_SRC_VM_SCHEDULE_POLICY_H_

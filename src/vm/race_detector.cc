#include "src/vm/race_detector.h"

#include <algorithm>

namespace esd::vm {

std::set<uint64_t> RaceDetector::HeldLocks(const ExecutionState& state, uint32_t tid) {
  std::set<uint64_t> held;
  for (const auto& [addr, mutex] : state.mutexes()) {
    if (mutex.locked && mutex.holder == tid) {
      held.insert(addr);
    }
  }
  for (const auto& [addr, rw] : state.rwlocks()) {
    if (rw.writer == tid) {
      held.insert(addr);
    }
  }
  return held;
}

std::set<uint64_t> RaceDetector::HeldLocksForAccess(const ExecutionState& state,
                                                    uint32_t tid, bool is_write) {
  std::set<uint64_t> held = HeldLocks(state, tid);
  if (!is_write) {
    for (const auto& [addr, rw] : state.rwlocks()) {
      if (rw.ReaderCount(tid) > 0) {
        held.insert(addr);
      }
    }
  }
  return held;
}

std::optional<RaceReport> RaceDetector::OnAccess(uint64_t addr, uint32_t tid,
                                                 bool is_write, ir::InstRef site,
                                                 const std::set<uint64_t>& held_locks) {
  WordInfo& w = words_[addr];
  switch (w.st) {
    case WordState::kVirgin:
      w.st = WordState::kExclusive;
      w.first_tid = tid;
      w.lockset = held_locks;
      w.last_site = site;
      return std::nullopt;
    case WordState::kExclusive:
      if (tid == w.first_tid) {
        w.last_site = site;
        return std::nullopt;
      }
      w.st = is_write ? WordState::kSharedModified : WordState::kShared;
      break;
    case WordState::kShared:
      if (is_write) {
        w.st = WordState::kSharedModified;
      }
      break;
    case WordState::kSharedModified:
      break;
  }
  // Refine the candidate lockset on every shared access.
  std::set<uint64_t> intersection;
  std::set_intersection(w.lockset.begin(), w.lockset.end(), held_locks.begin(),
                        held_locks.end(),
                        std::inserter(intersection, intersection.begin()));
  ir::InstRef prev_site = w.last_site;
  w.lockset = std::move(intersection);
  w.last_site = site;
  if (w.st == WordState::kSharedModified && w.lockset.empty() && !w.reported) {
    w.reported = true;
    flagged_sites_.insert(prev_site);
    flagged_sites_.insert(site);
    RaceReport report{addr, prev_site, site, is_write};
    races_.push_back(report);
    return report;
  }
  return std::nullopt;
}

}  // namespace esd::vm

// ESD VM: execution states.
//
// An execution state is the paper's unit of search: program counters and
// stacks for every thread, a copy-on-write address space, the accumulated
// path constraints, synchronization bookkeeping, and the schedule trace that
// becomes the synthesized execution file. States fork at symbolic branches
// and at scheduling decisions.
#ifndef ESD_SRC_VM_STATE_H_
#define ESD_SRC_VM_STATE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/ir/instruction.h"
#include "src/solver/expr.h"
#include "src/vm/memory.h"

namespace esd::vm {

class ExecutionState;
using StatePtr = std::shared_ptr<ExecutionState>;

struct StackFrame {
  uint32_t func = ir::kInvalidIndex;
  uint32_t block = 0;
  uint32_t inst = 0;
  std::vector<solver::ExprRef> regs;
  // Register in the caller's frame receiving the return value (-1: none).
  int32_t ret_reg = -1;
  // Stack objects to release when this frame pops.
  std::vector<uint32_t> allocas;
};

enum class ThreadStatus : uint8_t {
  kRunnable,
  kBlockedMutex,
  kBlockedCond,
  kBlockedJoin,
  kExited,
  kBlockedRwRead,   // Waiting to read-acquire a reader-writer lock.
  kBlockedRwWrite,  // Waiting to write-acquire (possibly an upgrade).
  kBlockedSem,      // Waiting for a semaphore count to become positive.
  kBlockedBarrier,  // Arrived at a barrier that is not yet full.
};

inline bool IsBlockedStatus(ThreadStatus s) {
  return s != ThreadStatus::kRunnable && s != ThreadStatus::kExited;
}

// An atomic store parked in its thread's TSO store buffer: globally
// invisible until a flush point (release/seq_cst store, RMW, fence, thread
// exit) drains it or a drain fork commits it out of order. The owning
// thread's atomic loads still see it (store-to-load forwarding).
struct PendingStore {
  uint64_t addr = 0;
  uint32_t width = 0;  // Bytes.
  solver::ExprRef value;
  ir::InstRef site;  // The buffering store's call site (for the flush event).
};

// Per-thread store-buffer capacity; a relaxed store into a full buffer
// force-drains the oldest entry first (hardware buffers are finite too).
inline constexpr size_t kStoreBufferCap = 8;

struct Thread {
  uint32_t id = 0;
  ThreadStatus status = ThreadStatus::kRunnable;
  std::vector<StackFrame> frames;
  uint64_t wait_mutex = 0;        // Address when kBlockedMutex.
  uint64_t wait_cond = 0;         // Address when kBlockedCond.
  uint64_t cond_saved_mutex = 0;  // Mutex to reacquire after cond wakeup.
  bool cond_signaled = false;     // Woken, waiting to reacquire the mutex.
  uint32_t join_tid = ir::kInvalidIndex;  // Target when kBlockedJoin.
  // Rwlock / semaphore / barrier address when blocked on one of them.
  uint64_t wait_sync = 0;
  // Released from a barrier; the re-executed barrier_wait completes.
  bool barrier_released = false;
  // Pending atomic stores, oldest first. Entries for one address keep FIFO
  // order (a later store to the same address can never pass an earlier
  // one); entries for different addresses may drain in any order — the
  // relaxed-store reordering that makes stale-read interleavings reachable.
  std::vector<PendingStore> store_buffer;

  ir::InstRef Pc() const {
    if (frames.empty()) {
      return {};
    }
    const StackFrame& f = frames.back();
    return ir::InstRef{f.func, f.block, f.inst};
  }
};

struct MutexState {
  bool locked = false;
  uint32_t holder = ir::kInvalidIndex;
  // Call site of the current holder's acquisition; the deadlock strategy
  // compares this against the reported threads' inner-lock sites (§4.1).
  ir::InstRef acquired_at;
};

// Reader-writer lock. Write acquisition by the sole reader upgrades in
// place; with other readers present the writer blocks until they drain —
// which is exactly the schedule-dependent upgrade deadlock when two readers
// both try to upgrade. Read acquisition is recursive (counting): a tid may
// appear in `readers` more than once.
struct RwLockState {
  uint32_t writer = ir::kInvalidIndex;  // kInvalidIndex: no active writer.
  std::vector<uint32_t> readers;        // Multiset of read-holding tids.
  ir::InstRef acquired_at;              // The active writer's acquisition site.

  bool Free() const { return writer == ir::kInvalidIndex && readers.empty(); }
  uint32_t ReaderCount(uint32_t tid) const {
    uint32_t n = 0;
    for (uint32_t r : readers) {
      n += r == tid ? 1 : 0;
    }
    return n;
  }
};

// Counting semaphore. A nonexistent entry behaves as count 0.
struct SemState {
  uint32_t count = 0;
};

// Barrier: `required` arrivals release everyone. `required == 0` means
// uninitialized (barrier_wait on it blocks forever and barrier_init rejects
// a zero count as invalid-sync).
struct BarrierState {
  uint32_t required = 0;
  std::vector<uint32_t> waiting;  // Tids parked at the barrier.
};

// One entry of the serialized schedule trace; used both to detect the goal
// interleaving and to emit the execution file for playback.
struct SchedEvent {
  enum class Kind : uint8_t {
    kSwitch,       // Scheduler switched to thread `tid` at step `step`.
    kMutexLock,    // `tid` acquired mutex `addr` (lock or successful trylock).
    kMutexUnlock,
    kCondWait,
    kCondWake,
    kThreadCreate,  // `tid` = new thread id.
    kThreadExit,
    // Appended after kThreadExit so the text names above keep their
    // numeric positions (the on-disk format is name-based; see
    // replay/execution_file.cc for the names).
    kRwRdLock,    // `tid` read-acquired rwlock `addr` (incl. tryrdlock).
    kRwWrLock,    // `tid` write-acquired rwlock `addr` (incl. upgrade).
    kRwUnlock,
    kSemWait,     // `tid` decremented semaphore `addr` (incl. trywait).
    kSemPost,
    kBarrierWait,  // `tid` passed barrier `addr`.
    // A try operation (mutex_trylock, rwlock_try*, sem_trywait) observed
    // the object busy/empty and failed without blocking. Recorded so
    // happens-before replay can order the failed attempt inside the
    // contention window that made it fail — without it the attempt leaves
    // no trace and the window is unreproducible from hb events alone.
    kTryFail,
    // C11 atomics (appended after kTryFail; the on-disk format is
    // name-based, see replay/execution_file.cc). `addr` is the accessed
    // location; the memory order is not recorded — the event sequence
    // already pins the interleaving.
    kAtomicLoad,   // `tid` atomically read `addr`.
    kAtomicStore,  // `tid` issued an atomic store to `addr` (any order).
    kAtomicRmw,    // exchange / fetch_add / cas by `tid` on `addr`.
    kAtomicFence,  // `tid` executed an atomic_fence.
    // `tid`'s buffered store to `addr` became globally visible. Flush
    // events are what make weak-memory executions replayable: strict and
    // happens-before replay re-apply them at the recorded points instead
    // of letting the buffer drain in program order.
    kAtomicFlush,
  };
  Kind kind;
  uint32_t tid = 0;
  uint64_t addr = 0;
  uint64_t step = 0;
  ir::InstRef site;
};

// Append-only schedule trace with copy-on-write chunk sharing. Forking a
// state used to deep-copy the whole trace — O(events executed so far) per
// fork, the dominant fork cost on long executions. Instead the trace is a
// list of fixed-size chunks held by shared_ptr: a fork copies only the
// chunk-pointer vector, and the first append after a fork clones just the
// (partially filled) last chunk. Every chunk except the last is full, so
// indexing stays O(1). The interface is the subset of std::vector the
// trace's consumers use (append, size, operator[], range-for).
class SchedTrace {
 public:
  void push_back(const SchedEvent& ev) {
    if (chunks_.empty() || chunks_.back()->size() == kChunk) {
      chunks_.push_back(std::make_shared<std::vector<SchedEvent>>());
      chunks_.back()->reserve(kChunk);
    } else if (chunks_.back().use_count() > 1) {
      // Shared with a fork sibling: clone the tail chunk before appending.
      chunks_.back() = std::make_shared<std::vector<SchedEvent>>(*chunks_.back());
    }
    chunks_.back()->push_back(ev);
    ++size_;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const SchedEvent& operator[](size_t i) const {
    return (*chunks_[i >> kChunkLog2])[i & (kChunk - 1)];
  }

  class const_iterator {
   public:
    const_iterator(const SchedTrace* trace, size_t index)
        : trace_(trace), index_(index) {}
    const SchedEvent& operator*() const { return (*trace_)[index_]; }
    const_iterator& operator++() {
      ++index_;
      return *this;
    }
    bool operator!=(const const_iterator& other) const {
      return index_ != other.index_;
    }

   private:
    const SchedTrace* trace_;
    size_t index_;
  };
  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const { return {this, size_}; }

 private:
  static constexpr size_t kChunkLog2 = 6;
  static constexpr size_t kChunk = size_t{1} << kChunkLog2;

  std::vector<std::shared_ptr<std::vector<SchedEvent>>> chunks_;
  size_t size_ = 0;
};

// Schedule-distance classification used by the deadlock strategy (§4.1):
// states believed to be one context switch away from the reported deadlock
// are "near" and get strong search priority.
inline constexpr double kScheduleFar = 1.0;
inline constexpr double kScheduleNear = 0.0;

// A synchronization (or flagged racy) operation announced to schedule
// policies at preemption points. Lives here (not in schedule_policy.h) so
// the state's sleep set can record them.
struct SyncOp {
  enum class Kind : uint8_t {
    kMutexLock,  // Also announced for mutex_trylock (same object, same
                 // dependency footprint whether or not it would block).
    kMutexUnlock,
    kCondWait,
    kCondSignal,
    kCondBroadcast,
    kThreadCreate,
    kThreadJoin,
    kRacyLoad,
    kRacyStore,
    kYield,
    kRwRdLock,  // Also announced for the try variants.
    kRwWrLock,
    kRwUnlock,
    kSemWait,   // Also announced for sem_trywait.
    kSemPost,
    kBarrierWait,
    kAtomicLoad,   // Atomic read of `addr` (any memory order).
    kAtomicStore,  // Atomic write of `addr` (any memory order).
    kAtomicRmw,    // exchange / fetch_add / cas on `addr`.
    kAtomicFence,  // No address; orders the thread's own buffered stores.
  };
  Kind kind;
  uint64_t addr = 0;  // Mutex / condvar / memory address, when applicable.
  ir::InstRef site;
};

// One sleeping operation: thread `tid` was parked at `op.site`, about to
// perform `op`, when a schedule fork chose to run another thread instead.
// The continuation that lets `tid` proceed immediately is covered by the
// fork's sibling, so re-forking back to `tid` is redundant until some
// dependent operation executes (see ExecutionState::SleepSetWake).
struct SleepEntry {
  uint32_t tid = 0;
  SyncOp op;
};

class ExecutionState {
 public:
  ExecutionState() = default;

  // Deep-copies control state; shares memory objects copy-on-write.
  StatePtr Fork(uint64_t new_id) const;

  Thread& CurrentThread() { return threads[current_tid]; }
  const Thread& CurrentThread() const { return threads[current_tid]; }
  StackFrame& CurrentFrame() { return CurrentThread().frames.back(); }

  Thread* FindThread(uint32_t tid) {
    for (Thread& t : threads) {
      if (t.id == tid) {
        return &t;
      }
    }
    return nullptr;
  }

  int RunnableCount() const {
    int n = 0;
    for (const Thread& t : threads) {
      n += t.status == ThreadStatus::kRunnable ? 1 : 0;
    }
    return n;
  }

  bool AllExited() const {
    for (const Thread& t : threads) {
      if (t.status != ThreadStatus::kExited) {
        return false;
      }
    }
    return true;
  }

  void RecordEvent(SchedEvent::Kind kind, uint32_t tid, uint64_t addr,
                   ir::InstRef site) {
    sched_trace.push_back(SchedEvent{kind, tid, addr, steps, site});
  }

  // Allocates a fresh symbolic variable and remembers it as a program input.
  solver::ExprRef NewInput(const std::string& name, uint32_t width);

  // Appends a path constraint, keeping the rolling constraint digest the
  // fingerprint folds in current (O(1) instead of rehashing the whole
  // vector per fingerprint). All constraint appends must go through here —
  // a direct push to `constraints` would silently stale the digest.
  //
  // When `rewrite_constraints` is set (the default; gated by the solver
  // pipeline's rewrite stage), the constraint is canonicalized first —
  // solver::RewriteExpr — so the stored set, the digest, and every
  // downstream solver query all see the same canonical form, and a
  // constraint that rewrites to the constant true is dropped outright.
  void AddConstraint(solver::ExprRef c);

  // ---- Redundancy pruning (sleep sets + state fingerprint) ----

  // True if thread `tid` is asleep here: a sleep entry records it parked at
  // exactly its current pc. Schedule policies skip forking to such threads.
  bool SleepSetBlocks(uint32_t tid) const;
  // Records that `tid` (about to perform `op`) was the not-chosen side of a
  // schedule fork in this state.
  void SleepSetInsert(uint32_t tid, const SyncOp& op);
  // An operation is about to execute in this state: wake (drop) every sleep
  // entry dependent on it — same memory address with a write involved for
  // racy pairs, same address for sync objects, and conservatively any
  // condvar/thread-lifecycle operation. Entries of the current thread and
  // entries whose thread moved past the recorded site are dropped as stale.
  void SleepSetWake(const SyncOp& op);
  // A plain (unflagged) load or store at `addr`: wakes dependent entries.
  // Cheap no-op while the sleep set is empty.
  void SleepSetWakeAccess(uint64_t addr, bool is_write);

  // ---- TSO store buffer ----

  // Makes thread `tid`'s oldest buffered store to `addr` globally visible:
  // writes it through to memory (silently dropped if the object was freed
  // meanwhile — the parked store has nowhere to land), records a
  // kAtomicFlush event, and wakes dependent sleep entries. Returns false
  // if the thread has no pending store to `addr`. Shared by the
  // interpreter's flush points and the replayer's recorded-flush
  // application, so both sides commit identically.
  bool CommitBufferedStore(uint32_t tid, uint64_t addr);
  // Drains every pending store of `t`, oldest first (program order).
  void DrainStoreBuffer(Thread& t);

  // 64-bit fingerprint of everything that determines this state's future
  // behavior: per-thread stacks / registers / blocking state, the memory
  // content hash maintained incrementally by AddressSpace, sync-object
  // state, the path-constraint digest, and the scheduled thread. States
  // reached through different interleavings of independent operations
  // collide (that is the point); states differing in any behavior-relevant
  // component do not (modulo 64-bit hash collisions). Traces, priorities,
  // and other search metadata are excluded.
  uint64_t Fingerprint() const;

  // ---- Identity & bookkeeping ----
  uint64_t id = 0;
  uint64_t steps = 0;        // Instructions executed in this state's history.
  uint64_t depth = 0;        // Fork depth (for tree searchers).
  uint64_t parent_id = 0;
  uint32_t preemptions = 0;  // Forced context switches (KC bounding).

  // ---- Program state ----
  AddressSpace mem;
  std::vector<Thread> threads;
  uint32_t current_tid = 0;
  uint32_t next_tid = 1;

  // ---- Symbolic state ----
  std::vector<solver::ExprRef> constraints;  // Append via AddConstraint.
  // Rolling order-sensitive digest of `constraints` (structural hashes),
  // maintained by AddConstraint and copied with the state on fork.
  uint64_t constraints_digest = 0;
  // Canonicalize constraints at append time (set from
  // Interpreter::Options::rewrite_constraints on the initial state and
  // inherited by forks).
  bool rewrite_constraints = true;
  uint64_t next_var_id = 1;
  // Input registry in creation order: (name, var expr).
  std::vector<std::pair<std::string, solver::ExprRef>> inputs;

  // ---- Synchronization ----
  // The five sync-object maps live behind paired accessors: readers use the
  // const form; writers must go through the mutable_* form, which
  // invalidates the memoized sync fold the fingerprint reuses (the compiler
  // enforces that no mutation can skip the invalidation). Keyed by the sync
  // object's address; cond_waiters maps condvar address -> waiting tids.
  const std::map<uint64_t, MutexState>& mutexes() const { return mutexes_; }
  const std::map<uint64_t, std::vector<uint32_t>>& cond_waiters() const {
    return cond_waiters_;
  }
  const std::map<uint64_t, RwLockState>& rwlocks() const { return rwlocks_; }
  const std::map<uint64_t, SemState>& semaphores() const { return semaphores_; }
  const std::map<uint64_t, BarrierState>& barriers() const { return barriers_; }
  std::map<uint64_t, MutexState>& mutable_mutexes() {
    sync_fold_valid_ = false;
    return mutexes_;
  }
  std::map<uint64_t, std::vector<uint32_t>>& mutable_cond_waiters() {
    sync_fold_valid_ = false;
    return cond_waiters_;
  }
  std::map<uint64_t, RwLockState>& mutable_rwlocks() {
    sync_fold_valid_ = false;
    return rwlocks_;
  }
  std::map<uint64_t, SemState>& mutable_semaphores() {
    sync_fold_valid_ = false;
    return semaphores_;
  }
  std::map<uint64_t, BarrierState>& mutable_barriers() {
    sync_fold_valid_ = false;
    return barriers_;
  }

  // ---- Traces & strategy metadata ----
  SchedTrace sched_trace;
  std::string output;  // Concatenated print_* output.
  // The paper's K_S map: mutex address -> snapshot state forked just before
  // that mutex was acquired (deadlock schedule synthesis, §4.1).
  std::map<uint64_t, StatePtr> lock_snapshots;
  double schedule_distance = kScheduleFar;
  bool is_schedule_snapshot = false;
  // Sleeping (thread, operation) pairs; forks copy it with the state.
  std::vector<SleepEntry> sleep_set;

 private:
  // XOR aggregate of the sync-object contributions to the fingerprint.
  uint64_t SyncFold() const;

  std::map<uint64_t, MutexState> mutexes_;
  std::map<uint64_t, std::vector<uint32_t>> cond_waiters_;
  std::map<uint64_t, RwLockState> rwlocks_;
  std::map<uint64_t, SemState> semaphores_;
  std::map<uint64_t, BarrierState> barriers_;
  // Memoized SyncFold(): sync objects change only at sync operations, while
  // the fingerprint is taken at every sync point and schedule fork — so the
  // fold is reused across the (frequent) fingerprints between (rare)
  // mutations. Forks inherit the cache with the state.
  mutable uint64_t sync_fold_ = 0;
  mutable bool sync_fold_valid_ = false;
};

}  // namespace esd::vm

#endif  // ESD_SRC_VM_STATE_H_

// ESD VM: execution states.
//
// An execution state is the paper's unit of search: program counters and
// stacks for every thread, a copy-on-write address space, the accumulated
// path constraints, synchronization bookkeeping, and the schedule trace that
// becomes the synthesized execution file. States fork at symbolic branches
// and at scheduling decisions.
#ifndef ESD_SRC_VM_STATE_H_
#define ESD_SRC_VM_STATE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/ir/instruction.h"
#include "src/solver/expr.h"
#include "src/vm/memory.h"

namespace esd::vm {

class ExecutionState;
using StatePtr = std::shared_ptr<ExecutionState>;

struct StackFrame {
  uint32_t func = ir::kInvalidIndex;
  uint32_t block = 0;
  uint32_t inst = 0;
  std::vector<solver::ExprRef> regs;
  // Register in the caller's frame receiving the return value (-1: none).
  int32_t ret_reg = -1;
  // Stack objects to release when this frame pops.
  std::vector<uint32_t> allocas;
};

enum class ThreadStatus : uint8_t {
  kRunnable,
  kBlockedMutex,
  kBlockedCond,
  kBlockedJoin,
  kExited,
};

struct Thread {
  uint32_t id = 0;
  ThreadStatus status = ThreadStatus::kRunnable;
  std::vector<StackFrame> frames;
  uint64_t wait_mutex = 0;        // Address when kBlockedMutex.
  uint64_t wait_cond = 0;         // Address when kBlockedCond.
  uint64_t cond_saved_mutex = 0;  // Mutex to reacquire after cond wakeup.
  bool cond_signaled = false;     // Woken, waiting to reacquire the mutex.
  uint32_t join_tid = ir::kInvalidIndex;  // Target when kBlockedJoin.

  ir::InstRef Pc() const {
    if (frames.empty()) {
      return {};
    }
    const StackFrame& f = frames.back();
    return ir::InstRef{f.func, f.block, f.inst};
  }
};

struct MutexState {
  bool locked = false;
  uint32_t holder = ir::kInvalidIndex;
  // Call site of the current holder's acquisition; the deadlock strategy
  // compares this against the reported threads' inner-lock sites (§4.1).
  ir::InstRef acquired_at;
};

// One entry of the serialized schedule trace; used both to detect the goal
// interleaving and to emit the execution file for playback.
struct SchedEvent {
  enum class Kind : uint8_t {
    kSwitch,       // Scheduler switched to thread `tid` at step `step`.
    kMutexLock,    // `tid` acquired mutex `addr`.
    kMutexUnlock,
    kCondWait,
    kCondWake,
    kThreadCreate,  // `tid` = new thread id.
    kThreadExit,
  };
  Kind kind;
  uint32_t tid = 0;
  uint64_t addr = 0;
  uint64_t step = 0;
  ir::InstRef site;
};

// Schedule-distance classification used by the deadlock strategy (§4.1):
// states believed to be one context switch away from the reported deadlock
// are "near" and get strong search priority.
inline constexpr double kScheduleFar = 1.0;
inline constexpr double kScheduleNear = 0.0;

class ExecutionState {
 public:
  ExecutionState() = default;

  // Deep-copies control state; shares memory objects copy-on-write.
  StatePtr Fork(uint64_t new_id) const;

  Thread& CurrentThread() { return threads[current_tid]; }
  const Thread& CurrentThread() const { return threads[current_tid]; }
  StackFrame& CurrentFrame() { return CurrentThread().frames.back(); }

  Thread* FindThread(uint32_t tid) {
    for (Thread& t : threads) {
      if (t.id == tid) {
        return &t;
      }
    }
    return nullptr;
  }

  int RunnableCount() const {
    int n = 0;
    for (const Thread& t : threads) {
      n += t.status == ThreadStatus::kRunnable ? 1 : 0;
    }
    return n;
  }

  bool AllExited() const {
    for (const Thread& t : threads) {
      if (t.status != ThreadStatus::kExited) {
        return false;
      }
    }
    return true;
  }

  void RecordEvent(SchedEvent::Kind kind, uint32_t tid, uint64_t addr,
                   ir::InstRef site) {
    sched_trace.push_back(SchedEvent{kind, tid, addr, steps, site});
  }

  // Allocates a fresh symbolic variable and remembers it as a program input.
  solver::ExprRef NewInput(const std::string& name, uint32_t width);

  // ---- Identity & bookkeeping ----
  uint64_t id = 0;
  uint64_t steps = 0;        // Instructions executed in this state's history.
  uint64_t depth = 0;        // Fork depth (for tree searchers).
  uint64_t parent_id = 0;
  uint32_t preemptions = 0;  // Forced context switches (KC bounding).

  // ---- Program state ----
  AddressSpace mem;
  std::vector<Thread> threads;
  uint32_t current_tid = 0;
  uint32_t next_tid = 1;

  // ---- Symbolic state ----
  std::vector<solver::ExprRef> constraints;
  uint64_t next_var_id = 1;
  // Input registry in creation order: (name, var expr).
  std::vector<std::pair<std::string, solver::ExprRef>> inputs;

  // ---- Synchronization ----
  std::map<uint64_t, MutexState> mutexes;          // Keyed by mutex address.
  std::map<uint64_t, std::vector<uint32_t>> cond_waiters;  // cond addr -> tids.

  // ---- Traces & strategy metadata ----
  std::vector<SchedEvent> sched_trace;
  std::string output;  // Concatenated print_* output.
  // The paper's K_S map: mutex address -> snapshot state forked just before
  // that mutex was acquired (deadlock schedule synthesis, §4.1).
  std::map<uint64_t, StatePtr> lock_snapshots;
  double schedule_distance = kScheduleFar;
  bool is_schedule_snapshot = false;
};

}  // namespace esd::vm

#endif  // ESD_SRC_VM_STATE_H_

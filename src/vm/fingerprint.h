// ESD VM: the visited-fingerprint table for state deduplication.
//
// A set of 64-bit state fingerprints (ExecutionState::Fingerprint) recording
// which states the search has already queued or passed through a
// synchronization point. The engine drops schedule forks and prunes running
// states whose fingerprint is already present — two interleavings of
// independent operations reconverge to the same fingerprint, so only one
// representative keeps exploring.
//
// Each shard is an open-addressing table (linear probing over a power-of-two
// flat array, empty slot = 0, the fingerprint 0 itself tracked by a side
// flag), so an InsertIfAbsent is a cache-friendly probe with no per-element
// node allocation — the only allocation is the amortized table doubling.
//
// The table is sharded by fingerprint so a parallel portfolio can share one
// instance: each shard has its own mutex, and InsertIfAbsent touches exactly
// one shard. With `jobs == 1` (or per-worker tables) the mutexes are
// uncontended. bench_pruning measures the shared-table and per-worker-table
// configurations against each other.
#ifndef ESD_SRC_VM_FINGERPRINT_H_
#define ESD_SRC_VM_FINGERPRINT_H_

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "src/core/event_counters.h"

namespace esd::vm {

// SplitMix64 finalizer: the full-avalanche 64-bit mix every fingerprint
// component goes through. Shared by the state fingerprint (state.cc) and
// the memory content hash (memory.cc) — the two must stay bit-identical,
// since the state fingerprint folds in the hash memory.cc maintains.
inline uint64_t FingerprintMix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

class FingerprintTable {
 public:
  explicit FingerprintTable(size_t shards = 16) : shards_(shards) {}

  // Returns true if `fp` was absent (and is now recorded); false if some
  // state with this fingerprint was already seen.
  bool InsertIfAbsent(uint64_t fp) {
    CountEvent(&EventCounters::fingerprint_probes);
    Shard& shard = shards_[(fp >> 48) % shards_.size()];
    std::lock_guard<std::mutex> lock(shard.mu);
    return shard.Insert(fp);
  }

  size_t Size() const {
    size_t n = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      n += shard.used + (shard.has_zero ? 1 : 0);
    }
    return n;
  }

  // Exports every recorded fingerprint, sorted (deterministic across shard
  // counts and insertion orders: serialize -> Preload -> Snapshot is
  // byte-stable). Used by the synthesis service to persist the cross-run
  // bug-triage corpus of execution-file fingerprints — NOT to carry
  // visited-state sets across jobs, which would unsoundly prune states the
  // new job has never explored.
  std::vector<uint64_t> Snapshot() const {
    std::vector<uint64_t> fps;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      if (shard.has_zero) {
        fps.push_back(0);
      }
      for (uint64_t fp : shard.slots) {
        if (fp != 0) {
          fps.push_back(fp);
        }
      }
    }
    std::sort(fps.begin(), fps.end());
    return fps;
  }

  // Seeds the table from a parsed snapshot (duplicates are absorbed).
  void Preload(const std::vector<uint64_t>& fps) {
    for (uint64_t fp : fps) {
      (void)InsertIfAbsent(fp);
    }
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    // Flat open-addressing array; 0 marks an empty slot. Sized lazily on
    // first insert, doubled at 3/4 occupancy.
    std::vector<uint64_t> slots;
    size_t used = 0;
    bool has_zero = false;

    bool Insert(uint64_t fp) {
      if (fp == 0) {
        if (has_zero) {
          return false;
        }
        has_zero = true;
        return true;
      }
      if (slots.empty()) {
        slots.assign(kInitialSlots, 0);
      } else if (used * 4 >= slots.size() * 3) {  // Keep load under 3/4.
        Grow();
      }
      uint64_t* slot = Probe(slots, fp);
      if (*slot == fp) {
        return false;
      }
      *slot = fp;
      ++used;
      return true;
    }

    // First slot holding `fp` or the empty slot where it belongs. The
    // fingerprint is already avalanche-mixed, so low bits index directly.
    static uint64_t* Probe(std::vector<uint64_t>& table, uint64_t fp) {
      size_t mask = table.size() - 1;
      size_t i = static_cast<size_t>(fp) & mask;
      while (table[i] != 0 && table[i] != fp) {
        i = (i + 1) & mask;
      }
      return &table[i];
    }

    void Grow() {
      std::vector<uint64_t> bigger(slots.size() * 2, 0);
      for (uint64_t fp : slots) {
        if (fp != 0) {
          *Probe(bigger, fp) = fp;
        }
      }
      slots = std::move(bigger);
    }

    static constexpr size_t kInitialSlots = 1024;
  };
  std::vector<Shard> shards_;
};

}  // namespace esd::vm

#endif  // ESD_SRC_VM_FINGERPRINT_H_

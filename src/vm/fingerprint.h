// ESD VM: the visited-fingerprint table for state deduplication.
//
// A set of 64-bit state fingerprints (ExecutionState::Fingerprint) recording
// which states the search has already queued or passed through a
// synchronization point. The engine drops schedule forks and prunes running
// states whose fingerprint is already present — two interleavings of
// independent operations reconverge to the same fingerprint, so only one
// representative keeps exploring.
//
// The table is sharded by fingerprint so a parallel portfolio can share one
// instance: each shard has its own mutex, and InsertIfAbsent touches exactly
// one shard. With `jobs == 1` (or per-worker tables) the mutexes are
// uncontended. bench_pruning measures the shared-table and per-worker-table
// configurations against each other.
#ifndef ESD_SRC_VM_FINGERPRINT_H_
#define ESD_SRC_VM_FINGERPRINT_H_

#include <cstdint>
#include <mutex>
#include <unordered_set>
#include <vector>

namespace esd::vm {

// SplitMix64 finalizer: the full-avalanche 64-bit mix every fingerprint
// component goes through. Shared by the state fingerprint (state.cc) and
// the memory content hash (memory.cc) — the two must stay bit-identical,
// since the state fingerprint folds in the hash memory.cc maintains.
inline uint64_t FingerprintMix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

class FingerprintTable {
 public:
  explicit FingerprintTable(size_t shards = 16) : shards_(shards) {}

  // Returns true if `fp` was absent (and is now recorded); false if some
  // state with this fingerprint was already seen.
  bool InsertIfAbsent(uint64_t fp) {
    Shard& shard = shards_[(fp >> 48) % shards_.size()];
    std::lock_guard<std::mutex> lock(shard.mu);
    return shard.set.insert(fp).second;
  }

  size_t Size() const {
    size_t n = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      n += shard.set.size();
    }
    return n;
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_set<uint64_t> set;
  };
  std::vector<Shard> shards_;
};

}  // namespace esd::vm

#endif  // ESD_SRC_VM_FINGERPRINT_H_

#include "src/vm/interpreter.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <map>
#include <sstream>

namespace esd::vm {

std::optional<SyncOp::Kind> SyncKindOf(ExternalId id) {
  switch (id) {
    case ExternalId::kMutexLock:
    case ExternalId::kMutexTryLock:
      return SyncOp::Kind::kMutexLock;
    case ExternalId::kMutexUnlock:
      return SyncOp::Kind::kMutexUnlock;
    case ExternalId::kCondWait:
      return SyncOp::Kind::kCondWait;
    case ExternalId::kCondSignal:
      return SyncOp::Kind::kCondSignal;
    case ExternalId::kCondBroadcast:
      return SyncOp::Kind::kCondBroadcast;
    case ExternalId::kThreadCreate:
      return SyncOp::Kind::kThreadCreate;
    case ExternalId::kThreadJoin:
      return SyncOp::Kind::kThreadJoin;
    case ExternalId::kRwRdLock:
    case ExternalId::kRwTryRdLock:
      return SyncOp::Kind::kRwRdLock;
    case ExternalId::kRwWrLock:
    case ExternalId::kRwTryWrLock:
      return SyncOp::Kind::kRwWrLock;
    case ExternalId::kRwUnlock:
      return SyncOp::Kind::kRwUnlock;
    case ExternalId::kSemWait:
    case ExternalId::kSemTryWait:
      return SyncOp::Kind::kSemWait;
    case ExternalId::kSemPost:
      return SyncOp::Kind::kSemPost;
    case ExternalId::kBarrierWait:
      return SyncOp::Kind::kBarrierWait;
    case ExternalId::kYield:
      return SyncOp::Kind::kYield;
    case ExternalId::kAtomicLoad:
      return SyncOp::Kind::kAtomicLoad;
    case ExternalId::kAtomicStore:
      return SyncOp::Kind::kAtomicStore;
    case ExternalId::kAtomicExchange:
    case ExternalId::kAtomicFetchAdd:
    case ExternalId::kAtomicCas:
      return SyncOp::Kind::kAtomicRmw;
    case ExternalId::kAtomicFence:
      return SyncOp::Kind::kAtomicFence;
    default:
      return std::nullopt;
  }
}

ExternalId LookupExternal(const std::string& name) {
  static const std::map<std::string, ExternalId> kMap = {
      {"getchar", ExternalId::kGetchar},
      {"getenv", ExternalId::kGetenv},
      {"esd_input_i32", ExternalId::kInputI32},
      {"esd_input_i64", ExternalId::kInputI64},
      {"esd_input_bytes", ExternalId::kInputBytes},
      {"malloc", ExternalId::kMalloc},
      {"free", ExternalId::kFree},
      {"memset", ExternalId::kMemset},
      {"memcpy", ExternalId::kMemcpy},
      {"strlen", ExternalId::kStrlen},
      {"print_str", ExternalId::kPrintStr},
      {"print_i64", ExternalId::kPrintI64},
      {"exit", ExternalId::kExit},
      {"abort", ExternalId::kAbort},
      {"esd_assert", ExternalId::kAssert},
      {"thread_create", ExternalId::kThreadCreate},
      {"thread_join", ExternalId::kThreadJoin},
      {"mutex_init", ExternalId::kMutexInit},
      {"mutex_lock", ExternalId::kMutexLock},
      {"mutex_trylock", ExternalId::kMutexTryLock},
      {"mutex_unlock", ExternalId::kMutexUnlock},
      {"cond_init", ExternalId::kCondInit},
      {"cond_wait", ExternalId::kCondWait},
      {"cond_signal", ExternalId::kCondSignal},
      {"cond_broadcast", ExternalId::kCondBroadcast},
      {"rwlock_init", ExternalId::kRwLockInit},
      {"rwlock_rdlock", ExternalId::kRwRdLock},
      {"rwlock_tryrdlock", ExternalId::kRwTryRdLock},
      {"rwlock_wrlock", ExternalId::kRwWrLock},
      {"rwlock_trywrlock", ExternalId::kRwTryWrLock},
      {"rwlock_unlock", ExternalId::kRwUnlock},
      {"sem_init", ExternalId::kSemInit},
      {"sem_wait", ExternalId::kSemWait},
      {"sem_trywait", ExternalId::kSemTryWait},
      {"sem_post", ExternalId::kSemPost},
      {"barrier_init", ExternalId::kBarrierInit},
      {"barrier_wait", ExternalId::kBarrierWait},
      {"yield", ExternalId::kYield},
      {"sleep_ms", ExternalId::kYield},
      {"atomic_load", ExternalId::kAtomicLoad},
      {"atomic_store", ExternalId::kAtomicStore},
      {"atomic_exchange", ExternalId::kAtomicExchange},
      {"atomic_fetch_add", ExternalId::kAtomicFetchAdd},
      {"atomic_cas", ExternalId::kAtomicCas},
      {"atomic_fence", ExternalId::kAtomicFence},
  };
  auto it = kMap.find(name);
  return it == kMap.end() ? ExternalId::kUnknown : it->second;
}

ExternalId Interpreter::ExternalIdOf(uint32_t func_index) {
  constexpr uint8_t kUnresolved = 0xff;
  static_assert(static_cast<uint8_t>(ExternalId::kUnknown) < kUnresolved);
  if (external_ids_.empty()) {
    external_ids_.assign(module_->NumFunctions(), kUnresolved);
  }
  uint8_t& slot = external_ids_[func_index];
  if (slot == kUnresolved) {
    slot = static_cast<uint8_t>(LookupExternal(module_->Func(func_index).name));
  }
  return static_cast<ExternalId>(slot);
}

namespace {

using solver::ExprRef;

bool IsSyncExternal(ExternalId id) { return SyncKindOf(id).has_value(); }

// The sync-dispatch table. Includes the *_init calls (object bookkeeping
// belongs with its primitive) even though they are not preemption points.
const Interpreter::SyncHandler* FindSyncHandler(ExternalId id) {
  static const std::map<ExternalId, Interpreter::SyncHandler> kTable = {
      {ExternalId::kThreadCreate, &Interpreter::ExecThreadCreate},
      {ExternalId::kThreadJoin, &Interpreter::ExecThreadJoin},
      {ExternalId::kMutexInit, &Interpreter::ExecSyncObjectInit},
      {ExternalId::kCondInit, &Interpreter::ExecSyncObjectInit},
      {ExternalId::kRwLockInit, &Interpreter::ExecSyncObjectInit},
      {ExternalId::kSemInit, &Interpreter::ExecSyncObjectInit},
      {ExternalId::kBarrierInit, &Interpreter::ExecSyncObjectInit},
      {ExternalId::kMutexLock, &Interpreter::ExecMutexLock},
      {ExternalId::kMutexTryLock, &Interpreter::ExecMutexLock},
      {ExternalId::kMutexUnlock, &Interpreter::ExecMutexUnlock},
      {ExternalId::kCondWait, &Interpreter::ExecCondWait},
      {ExternalId::kCondSignal, &Interpreter::ExecCondWake},
      {ExternalId::kCondBroadcast, &Interpreter::ExecCondWake},
      {ExternalId::kRwRdLock, &Interpreter::ExecRwLock},
      {ExternalId::kRwTryRdLock, &Interpreter::ExecRwLock},
      {ExternalId::kRwWrLock, &Interpreter::ExecRwLock},
      {ExternalId::kRwTryWrLock, &Interpreter::ExecRwLock},
      {ExternalId::kRwUnlock, &Interpreter::ExecRwUnlock},
      {ExternalId::kSemWait, &Interpreter::ExecSemWait},
      {ExternalId::kSemTryWait, &Interpreter::ExecSemWait},
      {ExternalId::kSemPost, &Interpreter::ExecSemPost},
      {ExternalId::kBarrierWait, &Interpreter::ExecBarrierWait},
      {ExternalId::kYield, &Interpreter::ExecYield},
      {ExternalId::kAtomicLoad, &Interpreter::ExecAtomicLoad},
      {ExternalId::kAtomicStore, &Interpreter::ExecAtomicStore},
      {ExternalId::kAtomicExchange, &Interpreter::ExecAtomicRmw},
      {ExternalId::kAtomicFetchAdd, &Interpreter::ExecAtomicRmw},
      {ExternalId::kAtomicCas, &Interpreter::ExecAtomicRmw},
      {ExternalId::kAtomicFence, &Interpreter::ExecAtomicFence},
  };
  auto it = kTable.find(id);
  return it == kTable.end() ? nullptr : &it->second;
}

// Minimum argument count each external requires. A module may declare its
// own extern signatures (bypassing the canonical preamble), and the
// verifier only checks calls against the module's declarations — so a
// short call must fail as a malformed-module error here rather than read
// args[] out of bounds.
size_t MinArgsOf(ExternalId id) {
  switch (id) {
    case ExternalId::kGetchar:
    case ExternalId::kExit:
    case ExternalId::kAbort:
    case ExternalId::kYield:
    case ExternalId::kUnknown:
      return 0;
    case ExternalId::kInputBytes:
    case ExternalId::kMemset:
    case ExternalId::kMemcpy:
    case ExternalId::kAtomicStore:
    case ExternalId::kAtomicExchange:
    case ExternalId::kAtomicFetchAdd:
      return 3;
    case ExternalId::kAtomicCas:
      return 4;
    case ExternalId::kCondWait:
    case ExternalId::kSemInit:
    case ExternalId::kBarrierInit:
    case ExternalId::kAtomicLoad:
      return 2;
    default:
      return 1;
  }
}

BugInfo MakeBug(BugInfo::Kind kind, ir::InstRef pc, uint32_t tid, uint64_t addr,
                std::string message) {
  BugInfo bug;
  bug.kind = kind;
  bug.pc = pc;
  bug.tid = tid;
  bug.fault_addr = addr;
  bug.message = std::move(message);
  return bug;
}

}  // namespace

std::string_view BugKindName(BugInfo::Kind kind) {
  switch (kind) {
    case BugInfo::Kind::kNone:
      return "none";
    case BugInfo::Kind::kNullDeref:
      return "null-deref";
    case BugInfo::Kind::kOutOfBounds:
      return "out-of-bounds";
    case BugInfo::Kind::kUseAfterFree:
      return "use-after-free";
    case BugInfo::Kind::kInvalidFree:
      return "invalid-free";
    case BugInfo::Kind::kDoubleFree:
      return "double-free";
    case BugInfo::Kind::kAssertFail:
      return "assert-fail";
    case BugInfo::Kind::kDivByZero:
      return "div-by-zero";
    case BugInfo::Kind::kDeadlock:
      return "deadlock";
    case BugInfo::Kind::kAbort:
      return "abort";
    case BugInfo::Kind::kUnreachable:
      return "unreachable";
    case BugInfo::Kind::kInvalidSync:
      return "invalid-sync";
    case BugInfo::Kind::kInternalError:
      return "internal-error";
  }
  return "?";
}

Interpreter::Interpreter(const ir::Module* module, solver::ConstraintSolver* solver,
                         Options options)
    : module_(module), solver_(solver), options_(std::move(options)) {}

StatePtr Interpreter::MakeInitialState(uint32_t entry_func, uint64_t state_id) const {
  auto state = std::make_shared<ExecutionState>();
  state->id = state_id;
  state->rewrite_constraints = options_.rewrite_constraints;
  // Globals are allocated first, in order, so global index g lives in memory
  // object g+1 (see EvalValue's kGlobalRef case).
  for (uint32_t g = 0; g < module_->NumGlobals(); ++g) {
    const ir::Global& gl = module_->GlobalAt(g);
    uint32_t obj = state->mem.AllocateInit(gl.size, ObjectKind::kGlobal, gl.name,
                                           gl.init);
    (void)obj;
    assert(obj == g + 1);
  }
  Thread main_thread;
  main_thread.id = 0;
  const ir::Function& entry = module_->Func(entry_func);
  StackFrame frame;
  frame.func = entry_func;
  frame.regs.assign(entry.num_regs, nullptr);
  // Entry parameters default to zero (workloads use input externals instead).
  for (size_t i = 0; i < entry.params.size(); ++i) {
    frame.regs[i] = solver::MakeConst(TypeWidth(entry.params[i]), 0);
  }
  main_thread.frames.push_back(std::move(frame));
  state->threads.push_back(std::move(main_thread));
  state->current_tid = 0;
  return state;
}

ExprRef Interpreter::EvalValue(const ExecutionState& /*state*/, const StackFrame& frame,
                               const ir::Value& v) const {
  switch (v.kind) {
    case ir::Value::Kind::kReg:
      assert(v.index < frame.regs.size() && frame.regs[v.index] != nullptr);
      return frame.regs[v.index];
    case ir::Value::Kind::kConst:
      if (v.type == ir::Type::kVoid) {
        return solver::MakeConst(1, 0);
      }
      return solver::MakeConst(TypeWidth(v.type), v.imm);
    case ir::Value::Kind::kFuncRef:
      return solver::MakeConst(64, FunctionPointer(v.index));
    case ir::Value::Kind::kGlobalRef:
      return solver::MakeConst(64, MakePointer(v.index + 1, 0));
    case ir::Value::Kind::kNone:
      break;
  }
  assert(false && "invalid operand");
  return solver::MakeConst(1, 0);
}

bool Interpreter::ConcretizeU64(ExecutionState& state, const ExprRef& e,
                                uint64_t* out) {
  if (e->IsConst()) {
    *out = e->aux();
    return true;
  }
  ++stats_.concretizations;
  solver::Model model;
  if (!solver_->IsSatisfiable(state.constraints, &model)) {
    return false;  // Infeasible path; caller terminates the state.
  }
  uint64_t value = solver::EvalExpr(e, model.values);
  state.AddConstraint(solver::MakeEq(e, solver::MakeConst(e->width(), value)));
  *out = value;
  return true;
}

bool Interpreter::CheckAccess(ExecutionState& state, uint64_t ptr, uint32_t bytes,
                              bool is_write, ir::InstRef site, BugInfo* bug) {
  uint32_t obj_id = PointerObject(ptr);
  uint32_t offset = PointerOffset(ptr);
  if (obj_id == 0) {
    *bug = MakeBug(BugInfo::Kind::kNullDeref, site, state.current_tid, ptr,
                   "dereference of null/invalid pointer");
    return false;
  }
  const MemoryObject* obj = state.mem.Find(obj_id);
  if (obj == nullptr) {
    *bug = MakeBug(BugInfo::Kind::kNullDeref, site, state.current_tid, ptr,
                   "dereference of dangling object id");
    return false;
  }
  if (obj->freed) {
    *bug = MakeBug(BugInfo::Kind::kUseAfterFree, site, state.current_tid, ptr,
                   "access to freed object '" + obj->name + "'");
    return false;
  }
  if (offset + bytes > obj->size) {
    *bug = MakeBug(BugInfo::Kind::kOutOfBounds, site, state.current_tid, ptr,
                   "out-of-bounds " + std::string(is_write ? "write" : "read") +
                       " of object '" + obj->name + "'");
    return false;
  }
  return true;
}

bool Interpreter::LoadBytes(ExecutionState& state, uint64_t ptr, uint32_t bytes,
                            ExprRef* out, ir::InstRef site, BugInfo* bug) {
  if (!CheckAccess(state, ptr, bytes, /*is_write=*/false, site, bug)) {
    return false;
  }
  const MemoryObject* obj = state.mem.Find(PointerObject(ptr));
  uint32_t offset = PointerOffset(ptr);
  // Little-endian: byte at offset is least significant.
  ExprRef value = obj->ByteAt(offset);
  for (uint32_t i = 1; i < bytes; ++i) {
    value = solver::MakeConcat(obj->ByteAt(offset + i), value);
  }
  *out = value;
  // Even unflagged reads can interfere with a sleeping racy store.
  state.SleepSetWakeAccess(MakePointer(PointerObject(ptr), offset),
                           /*is_write=*/false);
  if (options_.race_detector != nullptr) {
    auto held = RaceDetector::HeldLocksForAccess(state, state.current_tid,
                                                 /*is_write=*/false);
    options_.race_detector->OnAccess(MakePointer(PointerObject(ptr), offset),
                                     state.current_tid, /*is_write=*/false, site,
                                     held);
  }
  return true;
}

bool Interpreter::StoreBytes(ExecutionState& state, uint64_t ptr, const ExprRef& value,
                             ir::InstRef site, BugInfo* bug) {
  uint32_t bytes = value->width() / 8;
  if (value->width() == 1) {
    bytes = 1;
  }
  if (!CheckAccess(state, ptr, bytes, /*is_write=*/true, site, bug)) {
    return false;
  }
  MemoryObject* obj = state.mem.FindWritable(PointerObject(ptr));
  uint32_t offset = PointerOffset(ptr);
  ExprRef wide = value->width() == 1 ? solver::MakeZExt(value, 8) : value;
  for (uint32_t i = 0; i < bytes; ++i) {
    // WriteByte keeps the address space's incremental content hash current.
    state.mem.WriteByte(obj, offset + i, solver::MakeExtract(wide, i * 8, 8));
  }
  // Even unflagged writes can interfere with a sleeping racy access.
  state.SleepSetWakeAccess(MakePointer(PointerObject(ptr), offset),
                           /*is_write=*/true);
  if (options_.race_detector != nullptr) {
    auto held = RaceDetector::HeldLocksForAccess(state, state.current_tid,
                                                 /*is_write=*/true);
    options_.race_detector->OnAccess(MakePointer(PointerObject(ptr), offset),
                                     state.current_tid, /*is_write=*/true, site, held);
  }
  return true;
}

bool Interpreter::ReadCString(ExecutionState& state, uint64_t ptr, std::string* out,
                              ir::InstRef site, BugInfo* bug) {
  out->clear();
  for (uint32_t i = 0;; ++i) {
    uint64_t addr = ptr + i;
    ExprRef byte;
    if (!LoadBytes(state, addr, 1, &byte, site, bug)) {
      return false;
    }
    uint64_t value;
    if (!ConcretizeU64(state, byte, &value)) {
      *bug = MakeBug(BugInfo::Kind::kInternalError, site, state.current_tid, addr,
                     "infeasible constraints while reading string");
      return false;
    }
    if (value == 0) {
      return true;
    }
    out->push_back(static_cast<char>(value));
    if (out->size() > 4096) {
      *bug = MakeBug(BugInfo::Kind::kOutOfBounds, site, state.current_tid, ptr,
                     "unterminated string");
      return false;
    }
  }
}

ExprRef Interpreter::MakeInput(ExecutionState& state, const std::string& base,
                               uint32_t width) {
  if (options_.input_provider == nullptr) {
    return state.NewInput(base, width);
  }
  // Concrete mode: consume the same name sequence the symbolic run produced
  // so the execution file's input names resolve.
  uint64_t var_id = state.next_var_id++;
  std::string unique = base + "#" + std::to_string(var_id);
  uint64_t value = options_.input_provider->GetValue(unique, width);
  ExprRef c = solver::MakeConst(width, value);
  state.inputs.emplace_back(unique, c);
  return c;
}

void Interpreter::SwitchTo(ExecutionState& state, uint32_t tid) {
  if (state.current_tid == tid) {
    return;
  }
  state.current_tid = tid;
  state.RecordEvent(SchedEvent::Kind::kSwitch, tid, 0, state.CurrentThread().Pc());
}

bool Interpreter::ScheduleNext(ExecutionState& state) {
  if (options_.policy != nullptr) {
    if (auto pick = options_.policy->PickNextThread(state)) {
      Thread* t = state.FindThread(*pick);
      if (t != nullptr && t->status == ThreadStatus::kRunnable) {
        SwitchTo(state, *pick);
        return true;
      }
    }
  }
  // Round-robin starting after the current thread.
  size_t n = state.threads.size();
  for (size_t i = 1; i <= n; ++i) {
    const Thread& t = state.threads[(state.current_tid + i) % n];
    if (t.status == ThreadStatus::kRunnable) {
      SwitchTo(state, t.id);
      return true;
    }
  }
  return false;
}

bool Interpreter::HasSyncCycle(const ExecutionState& state) const {
  // Wait-for edges: a blocked thread -> every thread that must release the
  // contended object before it can proceed. A mutex waiter has one such
  // edge (the holder); an rwlock write waiter needs the writer *and* every
  // other reader gone, so any single cycle through one of those edges is
  // already a genuine deadlock (all edges are conjunctive). Edges live in
  // one flat list scanned per node: the graph has at most a handful of
  // threads, and this runs on every blocking operation.
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  for (const Thread& t : state.threads) {
    if (t.status == ThreadStatus::kBlockedMutex) {
      auto it = state.mutexes().find(t.wait_mutex);
      if (it != state.mutexes().end() && it->second.locked) {
        edges.emplace_back(t.id, it->second.holder);
      }
    } else if (t.status == ThreadStatus::kBlockedRwRead ||
               t.status == ThreadStatus::kBlockedRwWrite) {
      auto it = state.rwlocks().find(t.wait_sync);
      if (it == state.rwlocks().end()) {
        continue;
      }
      if (it->second.writer != ir::kInvalidIndex) {
        edges.emplace_back(t.id, it->second.writer);
      }
      if (t.status == ThreadStatus::kBlockedRwWrite) {
        for (uint32_t reader : it->second.readers) {
          if (reader != t.id) {
            edges.emplace_back(t.id, reader);
          }
        }
      }
    }
    // Semaphore and barrier waits have no owner: no edges.
  }
  if (edges.empty()) {
    return false;
  }
  // DFS cycle detection over the (multi-edge) wait-for graph. Colors keyed
  // by tid in a flat sorted list of the tids appearing in any edge.
  std::vector<uint32_t> tids;
  for (const auto& [from, to] : edges) {
    tids.push_back(from);
    tids.push_back(to);
  }
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  std::vector<uint8_t> color(tids.size(), 0);  // 0 unvisited, 1 on stack, 2 done.
  struct Dfs {
    const std::vector<std::pair<uint32_t, uint32_t>>& edges;
    const std::vector<uint32_t>& tids;
    std::vector<uint8_t>& color;
    bool Run(size_t u) {
      color[u] = 1;
      for (const auto& [from, to] : edges) {
        if (from != tids[u]) {
          continue;
        }
        size_t v = static_cast<size_t>(
            std::lower_bound(tids.begin(), tids.end(), to) - tids.begin());
        if (color[v] == 1 || (color[v] == 0 && Run(v))) {
          return true;
        }
      }
      color[u] = 2;
      return false;
    }
  };
  Dfs dfs{edges, tids, color};
  for (size_t u = 0; u < tids.size(); ++u) {
    if (color[u] == 0 && dfs.Run(u)) {
      return true;
    }
  }
  return false;
}

BugInfo Interpreter::MakeDeadlockBug(const ExecutionState& state) const {
  std::ostringstream os;
  os << "deadlock:";
  for (const Thread& t : state.threads) {
    os << " T" << t.id << "=";
    switch (t.status) {
      case ThreadStatus::kBlockedMutex:
        os << "mutex@" << t.wait_mutex;
        break;
      case ThreadStatus::kBlockedCond:
        os << "cond@" << t.wait_cond;
        break;
      case ThreadStatus::kBlockedJoin:
        os << "join(T" << t.join_tid << ")";
        break;
      case ThreadStatus::kBlockedRwRead:
        os << "rwlock-rd@" << t.wait_sync;
        break;
      case ThreadStatus::kBlockedRwWrite:
        os << "rwlock-wr@" << t.wait_sync;
        break;
      case ThreadStatus::kBlockedSem:
        os << "sem@" << t.wait_sync;
        break;
      case ThreadStatus::kBlockedBarrier:
        os << "barrier@" << t.wait_sync;
        break;
      case ThreadStatus::kExited:
        os << "exited";
        break;
      case ThreadStatus::kRunnable:
        os << "runnable";
        break;
    }
  }
  BugInfo bug = MakeBug(BugInfo::Kind::kDeadlock, {}, state.current_tid, 0, os.str());
  // Use the first lock-blocked thread's pc as the representative location
  // (mutex waiters first to keep legacy report shapes stable, then rwlock
  // waiters — both name the contended object in fault_addr).
  for (const Thread& t : state.threads) {
    if (t.status == ThreadStatus::kBlockedMutex) {
      bug.pc = t.Pc();
      bug.tid = t.id;
      bug.fault_addr = t.wait_mutex;
      return bug;
    }
  }
  for (const Thread& t : state.threads) {
    if (t.status == ThreadStatus::kBlockedRwRead ||
        t.status == ThreadStatus::kBlockedRwWrite ||
        t.status == ThreadStatus::kBlockedSem ||
        t.status == ThreadStatus::kBlockedBarrier) {
      bug.pc = t.Pc();
      bug.tid = t.id;
      bug.fault_addr = t.wait_sync;
      return bug;
    }
  }
  return bug;
}

void Interpreter::MaybePreemptionPoint(ExecutionState& state,
                                       const ir::Instruction& inst, ir::InstRef site) {
  if (options_.policy == nullptr || options_.services == nullptr) {
    return;
  }
  SyncOp op;
  op.site = site;
  if (inst.op == ir::Opcode::kLoad || inst.op == ir::Opcode::kStore) {
    if (!options_.policy->IsPreemptionAccess(state, site)) {
      return;
    }
    op.kind = inst.op == ir::Opcode::kLoad ? SyncOp::Kind::kRacyLoad
                                           : SyncOp::Kind::kRacyStore;
    const StackFrame& frame = state.CurrentThread().frames.back();
    ExprRef ptr = EvalValue(state, frame, inst.operands[inst.op == ir::Opcode::kLoad
                                                            ? 0
                                                            : 1]);
    if (ptr->IsConst()) {
      op.addr = ptr->aux();
    }
    options_.policy->BeforeSyncOp(*options_.services, state, op);
    return;
  }
  if (inst.op != ir::Opcode::kCall || inst.callee == ir::kInvalidIndex) {
    return;
  }
  const ir::Function& callee = module_->Func(inst.callee);
  if (!callee.is_external) {
    return;
  }
  std::optional<SyncOp::Kind> kind = SyncKindOf(ExternalIdOf(inst.callee));
  if (!kind.has_value()) {
    return;
  }
  op.kind = *kind;
  if (!inst.operands.empty()) {
    const StackFrame& frame = state.CurrentThread().frames.back();
    ExprRef a0 = EvalValue(state, frame, inst.operands[0]);
    if (a0->IsConst()) {
      op.addr = a0->aux();
    }
  }
  options_.policy->BeforeSyncOp(*options_.services, state, op);
}

StepResult Interpreter::Step(ExecutionState& state) {
  if (options_.policy != nullptr) {
    // Replay policies apply recorded store-buffer flushes here, before the
    // forced switch, so a flush due at this step lands no matter which
    // thread runs next.
    options_.policy->BeforeStep(state);
    if (auto forced = options_.policy->ForceSwitch(state)) {
      Thread* t = state.FindThread(*forced);
      if (t != nullptr && t->status == ThreadStatus::kRunnable) {
        SwitchTo(state, *forced);
      }
    }
  }
  if (state.CurrentThread().status != ThreadStatus::kRunnable) {
    StepResult result;
    if (!ScheduleNext(state)) {
      result.state_done = true;
      if (!state.AllExited()) {
        result.bug = MakeDeadlockBug(state);
      }
      return result;
    }
    // Fall through: execute one instruction of the newly scheduled thread.
  }
  Thread& thread = state.CurrentThread();
  assert(!thread.frames.empty());
  StackFrame& frame = thread.frames.back();
  ir::InstRef site{frame.func, frame.block, frame.inst};
  const ir::Instruction* inst = module_->InstAt(site);
  if (inst == nullptr) {
    StepResult result;
    result.state_done = true;
    result.bug = MakeBug(BugInfo::Kind::kInternalError, site, thread.id, 0,
                         "pc out of range");
    return result;
  }
  MaybePreemptionPoint(state, *inst, site);
  ++stats_.instructions;
  ++state.steps;
  // StepResult::sync_point is set by ExecExternal for synchronization calls
  // (including ones reached through an indirect call).
  return ExecInstruction(state, *inst, site);
}

StepResult Interpreter::ExecInstruction(ExecutionState& state,
                                        const ir::Instruction& inst, ir::InstRef site) {
  StepResult result;
  Thread& thread = state.CurrentThread();
  StackFrame& frame = thread.frames.back();

  auto set_result = [&](const ExprRef& v) {
    if (inst.result >= 0) {
      frame.regs[static_cast<size_t>(inst.result)] = v;
    }
  };

  switch (inst.op) {
    case ir::Opcode::kAdd:
    case ir::Opcode::kSub:
    case ir::Opcode::kMul:
    case ir::Opcode::kAnd:
    case ir::Opcode::kOr:
    case ir::Opcode::kXor:
    case ir::Opcode::kShl:
    case ir::Opcode::kLShr:
    case ir::Opcode::kAShr: {
      ExprRef a = EvalValue(state, frame, inst.operands[0]);
      ExprRef b = EvalValue(state, frame, inst.operands[1]);
      switch (inst.op) {
        case ir::Opcode::kAdd: set_result(solver::MakeAdd(a, b)); break;
        case ir::Opcode::kSub: set_result(solver::MakeSub(a, b)); break;
        case ir::Opcode::kMul: set_result(solver::MakeMul(a, b)); break;
        case ir::Opcode::kAnd: set_result(solver::MakeAnd(a, b)); break;
        case ir::Opcode::kOr: set_result(solver::MakeOr(a, b)); break;
        case ir::Opcode::kXor: set_result(solver::MakeXor(a, b)); break;
        case ir::Opcode::kShl: set_result(solver::MakeShl(a, b)); break;
        case ir::Opcode::kLShr: set_result(solver::MakeLShr(a, b)); break;
        default: set_result(solver::MakeAShr(a, b)); break;
      }
      AdvancePc(state);
      return result;
    }
    case ir::Opcode::kUDiv:
    case ir::Opcode::kSDiv:
    case ir::Opcode::kURem:
    case ir::Opcode::kSRem: {
      ExprRef a = EvalValue(state, frame, inst.operands[0]);
      ExprRef b = EvalValue(state, frame, inst.operands[1]);
      if (b->IsConstValue(0)) {
        result.state_done = true;
        result.bug = MakeBug(BugInfo::Kind::kDivByZero, site, thread.id, 0,
                             "division by zero");
        return result;
      }
      if (!b->IsConst()) {
        // Constrain the divisor away from zero; if that is infeasible the
        // division faults on every input reaching here.
        ExprRef nonzero = solver::MakeNe(b, solver::MakeConst(b->width(), 0));
        if (!solver_->MayBeTrue(state.constraints, nonzero)) {
          result.state_done = true;
          result.bug = MakeBug(BugInfo::Kind::kDivByZero, site, thread.id, 0,
                               "division by zero (symbolic divisor)");
          return result;
        }
        state.AddConstraint(nonzero);
      }
      switch (inst.op) {
        case ir::Opcode::kUDiv: set_result(solver::MakeUDiv(a, b)); break;
        case ir::Opcode::kSDiv: set_result(solver::MakeSDiv(a, b)); break;
        case ir::Opcode::kURem: set_result(solver::MakeURem(a, b)); break;
        default: set_result(solver::MakeSRem(a, b)); break;
      }
      AdvancePc(state);
      return result;
    }
    case ir::Opcode::kICmp: {
      ExprRef a = EvalValue(state, frame, inst.operands[0]);
      ExprRef b = EvalValue(state, frame, inst.operands[1]);
      ExprRef r;
      switch (inst.pred) {
        case ir::CmpPred::kEq: r = solver::MakeEq(a, b); break;
        case ir::CmpPred::kNe: r = solver::MakeNe(a, b); break;
        case ir::CmpPred::kUlt: r = solver::MakeUlt(a, b); break;
        case ir::CmpPred::kUle: r = solver::MakeUle(a, b); break;
        case ir::CmpPred::kUgt: r = solver::MakeUlt(b, a); break;
        case ir::CmpPred::kUge: r = solver::MakeUle(b, a); break;
        case ir::CmpPred::kSlt: r = solver::MakeSlt(a, b); break;
        case ir::CmpPred::kSle: r = solver::MakeSle(a, b); break;
        case ir::CmpPred::kSgt: r = solver::MakeSlt(b, a); break;
        case ir::CmpPred::kSge: r = solver::MakeSle(b, a); break;
      }
      set_result(r);
      AdvancePc(state);
      return result;
    }
    case ir::Opcode::kNot:
      set_result(solver::MakeNot(EvalValue(state, frame, inst.operands[0])));
      AdvancePc(state);
      return result;
    case ir::Opcode::kZExt:
      set_result(solver::MakeZExt(EvalValue(state, frame, inst.operands[0]),
                                  TypeWidth(inst.type)));
      AdvancePc(state);
      return result;
    case ir::Opcode::kSExt:
      set_result(solver::MakeSExt(EvalValue(state, frame, inst.operands[0]),
                                  TypeWidth(inst.type)));
      AdvancePc(state);
      return result;
    case ir::Opcode::kTrunc:
      set_result(solver::MakeExtract(EvalValue(state, frame, inst.operands[0]), 0,
                                     TypeWidth(inst.type)));
      AdvancePc(state);
      return result;
    case ir::Opcode::kSelect: {
      ExprRef c = EvalValue(state, frame, inst.operands[0]);
      ExprRef a = EvalValue(state, frame, inst.operands[1]);
      ExprRef b = EvalValue(state, frame, inst.operands[2]);
      set_result(solver::MakeIte(c, a, b));
      AdvancePc(state);
      return result;
    }
    case ir::Opcode::kAlloca: {
      uint32_t obj = state.mem.Allocate(static_cast<uint32_t>(inst.imm),
                                        ObjectKind::kStack,
                                        module_->Func(frame.func).name + ":alloca");
      frame.allocas.push_back(obj);
      set_result(solver::MakeConst(64, MakePointer(obj, 0)));
      AdvancePc(state);
      return result;
    }
    case ir::Opcode::kLoad: {
      ExprRef ptr_expr = EvalValue(state, frame, inst.operands[0]);
      uint64_t ptr;
      if (!ConcretizeU64(state, ptr_expr, &ptr)) {
        result.state_done = true;  // Infeasible path.
        return result;
      }
      uint32_t bytes = TypeWidth(inst.type) / 8;
      if (bytes == 0) {
        bytes = 1;  // i1 loads one byte.
      }
      ExprRef value;
      if (!LoadBytes(state, ptr, bytes, &value, site, &result.bug)) {
        result.state_done = true;
        return result;
      }
      if (inst.type == ir::Type::kI1) {
        value = solver::MakeExtract(value, 0, 1);
      }
      set_result(value);
      AdvancePc(state);
      return result;
    }
    case ir::Opcode::kStore: {
      ExprRef value = EvalValue(state, frame, inst.operands[0]);
      ExprRef ptr_expr = EvalValue(state, frame, inst.operands[1]);
      uint64_t ptr;
      if (!ConcretizeU64(state, ptr_expr, &ptr)) {
        result.state_done = true;
        return result;
      }
      if (!StoreBytes(state, ptr, value, site, &result.bug)) {
        result.state_done = true;
        return result;
      }
      AdvancePc(state);
      return result;
    }
    case ir::Opcode::kGep: {
      ExprRef base = EvalValue(state, frame, inst.operands[0]);
      ExprRef index = EvalValue(state, frame, inst.operands[1]);
      ExprRef wide = index->width() < 64 ? solver::MakeZExt(index, 64) : index;
      ExprRef scaled = solver::MakeMul(wide, solver::MakeConst(64, inst.imm));
      set_result(solver::MakeAdd(base, scaled));
      AdvancePc(state);
      return result;
    }
    case ir::Opcode::kBr: {
      if (options_.branch_filter &&
          !options_.branch_filter(state, site, inst.succ_true)) {
        result.state_done = true;  // Pruned: cannot reach the goal.
        return result;
      }
      frame.block = inst.succ_true;
      frame.inst = 0;
      return result;
    }
    case ir::Opcode::kCondBr:
      return ExecCondBr(state, inst, site);
    case ir::Opcode::kCall:
      return ExecCall(state, inst, site);
    case ir::Opcode::kRet:
      return ExecRet(state, inst);
    case ir::Opcode::kUnreachable:
      result.state_done = true;
      result.bug = MakeBug(BugInfo::Kind::kUnreachable, site, thread.id, 0,
                           "reached 'unreachable'");
      return result;
  }
  result.state_done = true;
  result.bug = MakeBug(BugInfo::Kind::kInternalError, site, thread.id, 0,
                       "unhandled opcode");
  return result;
}

StepResult Interpreter::ExecCondBr(ExecutionState& state, const ir::Instruction& inst,
                                   ir::InstRef site) {
  StepResult result;
  StackFrame& frame = state.CurrentThread().frames.back();
  ExprRef cond = EvalValue(state, frame, inst.operands[0]);

  bool allow_true = !options_.branch_filter ||
                    options_.branch_filter(state, site, inst.succ_true);
  bool allow_false = !options_.branch_filter ||
                     options_.branch_filter(state, site, inst.succ_false);

  if (cond->IsConst()) {
    uint32_t target = cond->aux() ? inst.succ_true : inst.succ_false;
    bool allowed = cond->aux() ? allow_true : allow_false;
    if (!allowed) {
      result.state_done = true;
      return result;
    }
    frame.block = target;
    frame.inst = 0;
    return result;
  }

  bool feasible_true = allow_true && solver_->MayBeTrue(state.constraints, cond);
  bool feasible_false = allow_false && solver_->MayBeFalse(state.constraints, cond);

  if (feasible_true && feasible_false) {
    ++stats_.branch_forks;
    StatePtr child = state.Fork(AllocStateId());
    // Child takes the false edge.
    StackFrame& child_frame = child->CurrentThread().frames.back();
    child->AddConstraint(solver::MakeLogicalNot(cond));
    child_frame.block = inst.succ_false;
    child_frame.inst = 0;
    result.forks.push_back(std::move(child));
    // Parent takes the true edge. Both sides of a fork descend one level in
    // the execution tree (KLEE's process-tree semantics; RandomPath weights
    // depend on this).
    ++state.depth;
    state.AddConstraint(cond);
    frame.block = inst.succ_true;
    frame.inst = 0;
    return result;
  }
  if (feasible_true || feasible_false) {
    state.AddConstraint(feasible_true ? cond : solver::MakeLogicalNot(cond));
    frame.block = feasible_true ? inst.succ_true : inst.succ_false;
    frame.inst = 0;
    return result;
  }
  // Neither edge is feasible (or both are pruned): abandon the path.
  result.state_done = true;
  return result;
}

void Interpreter::PushFrame(ExecutionState& state, uint32_t func,
                            const std::vector<ExprRef>& args, int32_t ret_reg) {
  const ir::Function& callee = module_->Func(func);
  StackFrame frame;
  frame.func = func;
  frame.regs.assign(callee.num_regs, nullptr);
  for (size_t i = 0; i < args.size(); ++i) {
    frame.regs[i] = args[i];
  }
  frame.ret_reg = ret_reg;
  state.CurrentThread().frames.push_back(std::move(frame));
}

void Interpreter::PopFrame(ExecutionState& state, const ExprRef& ret_value) {
  Thread& thread = state.CurrentThread();
  StackFrame frame = std::move(thread.frames.back());
  thread.frames.pop_back();
  for (uint32_t obj : frame.allocas) {
    state.mem.Free(obj);
  }
  if (!thread.frames.empty() && frame.ret_reg >= 0 && ret_value != nullptr) {
    thread.frames.back().regs[static_cast<size_t>(frame.ret_reg)] = ret_value;
  }
}

StepResult Interpreter::FinishThread(ExecutionState& state) {
  StepResult result;
  Thread& thread = state.CurrentThread();
  // A thread's buffered stores become globally visible no later than its
  // exit (flush events precede the exit event in the trace).
  state.DrainStoreBuffer(thread);
  thread.status = ThreadStatus::kExited;
  state.RecordEvent(SchedEvent::Kind::kThreadExit, thread.id, 0, {});
  // Wake joiners.
  for (Thread& t : state.threads) {
    if (t.status == ThreadStatus::kBlockedJoin && t.join_tid == thread.id) {
      t.status = ThreadStatus::kRunnable;
      t.join_tid = ir::kInvalidIndex;
    }
  }
  if (thread.id == 0) {
    // Returning from main exits the program.
    result.state_done = true;
    return result;
  }
  if (!ScheduleNext(state)) {
    result.state_done = true;
    if (!state.AllExited()) {
      result.bug = MakeDeadlockBug(state);
    }
  }
  return result;
}

StepResult Interpreter::ExecRet(ExecutionState& state, const ir::Instruction& inst) {
  Thread& thread = state.CurrentThread();
  ExprRef ret_value;
  if (!inst.operands.empty()) {
    ret_value = EvalValue(state, thread.frames.back(), inst.operands[0]);
  }
  PopFrame(state, ret_value);
  if (thread.frames.empty()) {
    return FinishThread(state);
  }
  return {};
}

StepResult Interpreter::ExecCall(ExecutionState& state, const ir::Instruction& inst,
                                 ir::InstRef site) {
  StepResult result;
  Thread& thread = state.CurrentThread();
  StackFrame& frame = thread.frames.back();

  uint32_t callee_index = inst.callee;
  size_t first_arg = 0;
  if (callee_index == ir::kInvalidIndex) {
    // Indirect call: decode the function pointer.
    ExprRef fp = EvalValue(state, frame, inst.operands[0]);
    uint64_t ptr;
    if (!ConcretizeU64(state, fp, &ptr)) {
      result.state_done = true;
      return result;
    }
    if (ptr == 0) {
      result.state_done = true;
      result.bug = MakeBug(BugInfo::Kind::kNullDeref, site, thread.id, 0,
                           "indirect call through null function pointer");
      return result;
    }
    if (!IsFunctionPointer(ptr) || FunctionIndexOf(ptr) >= module_->NumFunctions()) {
      result.state_done = true;
      result.bug = MakeBug(BugInfo::Kind::kInternalError, site, thread.id, ptr,
                           "indirect call to a non-function address");
      return result;
    }
    callee_index = FunctionIndexOf(ptr);
    first_arg = 1;
  }

  const ir::Function& callee = module_->Func(callee_index);
  if (callee.is_external) {
    return ExecExternal(state, inst, callee_index, site);
  }

  std::vector<ExprRef> args;
  for (size_t i = first_arg; i < inst.operands.size(); ++i) {
    args.push_back(EvalValue(state, frame, inst.operands[i]));
  }
  AdvancePc(state);  // Return resumes after the call.
  PushFrame(state, callee_index, args, inst.result);
  return result;
}

StepResult Interpreter::ExecExternal(ExecutionState& state, const ir::Instruction& inst,
                                     uint32_t callee_index, ir::InstRef site) {
  StepResult result;
  const ir::Function& callee = module_->Func(callee_index);
  Thread& thread = state.CurrentThread();
  StackFrame& frame = thread.frames.back();

  std::vector<ExprRef> args;
  for (const ir::Value& v : inst.operands) {
    args.push_back(EvalValue(state, frame, v));
  }
  auto set_result = [&](const ExprRef& v) {
    if (inst.result >= 0) {
      frame.regs[static_cast<size_t>(inst.result)] = v;
    }
  };
  auto fail = [&](BugInfo bug) {
    result.state_done = true;
    result.bug = std::move(bug);
  };

  // Resolve the external once; every case below (and the sync_point flag
  // the engine's dedup relies on) reuses it.
  const ExternalId ext = ExternalIdOf(callee_index);
  result.sync_point = IsSyncExternal(ext);
  if (args.size() < MinArgsOf(ext)) {
    fail(MakeBug(BugInfo::Kind::kInternalError, site, thread.id, 0,
                 "external '" + callee.name + "' called with too few arguments"));
    return result;
  }

  // Synchronization externals dispatch through the handler table; only the
  // environment-model externals remain in the switch below.
  if (const SyncHandler* handler = FindSyncHandler(ext)) {
    SyncCall call{ext, inst, site, args};
    StepResult sync_result = (this->*(*handler))(state, call);
    sync_result.sync_point = result.sync_point;
    return sync_result;
  }

  switch (ext) {
    case ExternalId::kGetchar: {
      ExprRef v = MakeInput(state, "getchar", 32);
      if (!v->IsConst()) {
        // getchar() yields an unsigned char (EOF excluded for simplicity).
        state.AddConstraint(solver::MakeUle(v, solver::MakeConst(32, 255)));
      }
      set_result(v);
      AdvancePc(state);
      return result;
    }
    case ExternalId::kGetenv: {
      uint64_t name_ptr;
      if (!ConcretizeU64(state, args[0], &name_ptr)) {
        result.state_done = true;
        return result;
      }
      std::string name;
      BugInfo bug;
      if (!ReadCString(state, name_ptr, &name, site, &bug)) {
        fail(std::move(bug));
        return result;
      }
      uint32_t len = options_.env_string_len;
      uint32_t obj = state.mem.Allocate(len, ObjectKind::kHeap, "env:" + name);
      MemoryObject* mem = state.mem.FindWritable(obj);
      for (uint32_t i = 0; i + 1 < len; ++i) {
        state.mem.WriteByte(
            mem, i, MakeInput(state, "env:" + name + "[" + std::to_string(i) + "]", 8));
      }
      state.mem.WriteByte(mem, len - 1, solver::MakeConst(8, 0));
      set_result(solver::MakeConst(64, MakePointer(obj, 0)));
      AdvancePc(state);
      return result;
    }
    case ExternalId::kInputI32:
    case ExternalId::kInputI64: {
      uint64_t name_ptr;
      std::string name = "input";
      BugInfo bug;
      if (ConcretizeU64(state, args[0], &name_ptr) &&
          !ReadCString(state, name_ptr, &name, site, &bug)) {
        fail(std::move(bug));
        return result;
      }
      uint32_t width = ext == ExternalId::kInputI32 ? 32 : 64;
      set_result(MakeInput(state, name, width));
      AdvancePc(state);
      return result;
    }
    case ExternalId::kInputBytes: {
      uint64_t buf, len, name_ptr;
      std::string name = "bytes";
      BugInfo bug;
      if (!ConcretizeU64(state, args[0], &buf) ||
          !ConcretizeU64(state, args[1], &len) ||
          !ConcretizeU64(state, args[2], &name_ptr)) {
        result.state_done = true;
        return result;
      }
      if (!ReadCString(state, name_ptr, &name, site, &bug)) {
        fail(std::move(bug));
        return result;
      }
      for (uint64_t i = 0; i < len; ++i) {
        ExprRef byte = MakeInput(state, name + "[" + std::to_string(i) + "]", 8);
        if (!StoreBytes(state, buf + i, byte, site, &bug)) {
          fail(std::move(bug));
          return result;
        }
      }
      AdvancePc(state);
      return result;
    }
    case ExternalId::kMalloc: {
      uint64_t size;
      if (!ConcretizeU64(state, args[0], &size)) {
        result.state_done = true;
        return result;
      }
      if (size == 0) {
        size = 1;
      }
      if (size > (uint64_t{1} << 24)) {
        set_result(solver::MakeConst(64, 0));  // Simulated allocation failure.
        AdvancePc(state);
        return result;
      }
      uint32_t obj =
          state.mem.Allocate(static_cast<uint32_t>(size), ObjectKind::kHeap, "malloc");
      set_result(solver::MakeConst(64, MakePointer(obj, 0)));
      AdvancePc(state);
      return result;
    }
    case ExternalId::kFree: {
      uint64_t ptr;
      if (!ConcretizeU64(state, args[0], &ptr)) {
        result.state_done = true;
        return result;
      }
      if (ptr == 0) {
        AdvancePc(state);  // free(NULL) is a no-op.
        return result;
      }
      const MemoryObject* obj = state.mem.Find(PointerObject(ptr));
      if (obj == nullptr || PointerOffset(ptr) != 0 || obj->kind != ObjectKind::kHeap) {
        fail(MakeBug(BugInfo::Kind::kInvalidFree, site, thread.id, ptr,
                     "free of a non-heap or interior pointer"));
        return result;
      }
      if (obj->freed) {
        fail(MakeBug(BugInfo::Kind::kDoubleFree, site, thread.id, ptr, "double free"));
        return result;
      }
      state.mem.Free(PointerObject(ptr));
      AdvancePc(state);
      return result;
    }
    case ExternalId::kMemset: {
      uint64_t ptr, len, value;
      if (!ConcretizeU64(state, args[0], &ptr) ||
          !ConcretizeU64(state, args[2], &len) ||
          !ConcretizeU64(state, args[1], &value)) {
        result.state_done = true;
        return result;
      }
      BugInfo bug;
      for (uint64_t i = 0; i < len; ++i) {
        if (!StoreBytes(state, ptr + i, solver::MakeConst(8, value & 0xff), site,
                        &bug)) {
          fail(std::move(bug));
          return result;
        }
      }
      AdvancePc(state);
      return result;
    }
    case ExternalId::kMemcpy: {
      uint64_t dst, src, len;
      if (!ConcretizeU64(state, args[0], &dst) ||
          !ConcretizeU64(state, args[1], &src) ||
          !ConcretizeU64(state, args[2], &len)) {
        result.state_done = true;
        return result;
      }
      BugInfo bug;
      for (uint64_t i = 0; i < len; ++i) {
        ExprRef byte;
        if (!LoadBytes(state, src + i, 1, &byte, site, &bug) ||
            !StoreBytes(state, dst + i, byte, site, &bug)) {
          fail(std::move(bug));
          return result;
        }
      }
      AdvancePc(state);
      return result;
    }
    case ExternalId::kStrlen: {
      uint64_t ptr;
      if (!ConcretizeU64(state, args[0], &ptr)) {
        result.state_done = true;
        return result;
      }
      std::string s;
      BugInfo bug;
      if (!ReadCString(state, ptr, &s, site, &bug)) {
        fail(std::move(bug));
        return result;
      }
      set_result(solver::MakeConst(64, s.size()));
      AdvancePc(state);
      return result;
    }
    case ExternalId::kPrintStr: {
      uint64_t ptr;
      if (!ConcretizeU64(state, args[0], &ptr)) {
        result.state_done = true;
        return result;
      }
      std::string s;
      BugInfo bug;
      if (!ReadCString(state, ptr, &s, site, &bug)) {
        fail(std::move(bug));
        return result;
      }
      state.output += s;
      AdvancePc(state);
      return result;
    }
    case ExternalId::kPrintI64: {
      uint64_t v;
      if (!ConcretizeU64(state, args[0], &v)) {
        result.state_done = true;
        return result;
      }
      state.output += std::to_string(static_cast<int64_t>(v));
      AdvancePc(state);
      return result;
    }
    case ExternalId::kExit:
      result.state_done = true;
      return result;
    case ExternalId::kAbort:
      fail(MakeBug(BugInfo::Kind::kAbort, site, thread.id, 0, "abort() called"));
      return result;
    case ExternalId::kAssert: {
      ExprRef cond = args[0];
      if (cond->IsConst()) {
        if (cond->aux()) {
          AdvancePc(state);
        } else {
          fail(MakeBug(BugInfo::Kind::kAssertFail, site, thread.id, 0,
                       "assertion failed"));
        }
        return result;
      }
      bool may_fail = solver_->MayBeFalse(state.constraints, cond);
      bool may_pass = solver_->MayBeTrue(state.constraints, cond);
      if (may_fail && may_pass) {
        // Fork the passing continuation; this state manifests the failure.
        StatePtr child = state.Fork(AllocStateId());
        child->AddConstraint(cond);
        ++child->CurrentThread().frames.back().inst;
        result.forks.push_back(std::move(child));
        ++state.depth;
      }
      if (may_fail) {
        state.AddConstraint(solver::MakeLogicalNot(cond));
        fail(MakeBug(BugInfo::Kind::kAssertFail, site, thread.id, 0,
                     "assertion failed (symbolic)"));
      } else {
        state.AddConstraint(cond);
        AdvancePc(state);
      }
      return result;
    }
    default:
      break;  // kUnknown, plus sync ids (already dispatched above).
  }
  result.state_done = true;
  result.bug = MakeBug(BugInfo::Kind::kInternalError, site, thread.id, 0,
                       "call to unmodeled external '" + callee.name + "'");
  return result;
}

// ---- Synchronization handlers (table-driven; see FindSyncHandler) ----

StepResult Interpreter::BlockCurrentThread(ExecutionState& state) {
  StepResult result;
  if (HasSyncCycle(state)) {
    result.state_done = true;
    result.bug = MakeDeadlockBug(state);
    return result;
  }
  if (!ScheduleNext(state)) {
    result.state_done = true;
    result.bug = MakeDeadlockBug(state);
  }
  return result;
}

StepResult Interpreter::ExecThreadCreate(ExecutionState& state, const SyncCall& call) {
  StepResult result;
  Thread& thread = state.CurrentThread();
  uint64_t fp;
  if (!ConcretizeU64(state, call.args[0], &fp)) {
    result.state_done = true;
    return result;
  }
  if (!IsFunctionPointer(fp) || FunctionIndexOf(fp) >= module_->NumFunctions()) {
    result.state_done = true;
    result.bug = MakeBug(BugInfo::Kind::kInternalError, call.site, thread.id, fp,
                         "thread_create with a non-function pointer");
    return result;
  }
  uint32_t func = FunctionIndexOf(fp);
  Thread new_thread;
  new_thread.id = state.next_tid++;
  const ir::Function& fn = module_->Func(func);
  StackFrame tf;
  tf.func = func;
  tf.regs.assign(fn.num_regs, nullptr);
  if (!fn.params.empty()) {
    tf.regs[0] = call.args.size() > 1 ? call.args[1] : solver::MakeConst(64, 0);
  }
  new_thread.frames.push_back(std::move(tf));
  uint32_t new_tid = new_thread.id;
  // push_back may reallocate `state.threads`, so the current thread (and
  // its result register) must be re-resolved afterwards, never cached.
  const uint32_t creator_tid = thread.id;
  state.threads.push_back(std::move(new_thread));
  // The event names the spawned thread; `addr` carries the *creator* so
  // happens-before replay knows which thread must run to perform the
  // create (legacy files carry 0 there — main — which is what they meant).
  state.RecordEvent(SchedEvent::Kind::kThreadCreate, new_tid, creator_tid,
                    call.site);
  if (call.inst.result >= 0) {
    state.CurrentThread().frames.back().regs[static_cast<size_t>(call.inst.result)] =
        solver::MakeConst(32, new_tid);
  }
  AdvancePc(state);
  return result;
}

StepResult Interpreter::ExecThreadJoin(ExecutionState& state, const SyncCall& call) {
  StepResult result;
  Thread& thread = state.CurrentThread();
  uint64_t tid;
  if (!ConcretizeU64(state, call.args[0], &tid)) {
    result.state_done = true;
    return result;
  }
  Thread* target = state.FindThread(static_cast<uint32_t>(tid));
  if (target == nullptr || target->status == ThreadStatus::kExited) {
    AdvancePc(state);
    return result;
  }
  thread.status = ThreadStatus::kBlockedJoin;
  thread.join_tid = static_cast<uint32_t>(tid);
  return BlockCurrentThread(state);
}

StepResult Interpreter::ExecSyncObjectInit(ExecutionState& state, const SyncCall& call) {
  StepResult result;
  Thread& thread = state.CurrentThread();
  uint64_t addr;
  if (!ConcretizeU64(state, call.args[0], &addr)) {
    result.state_done = true;
    return result;
  }
  BugInfo bug;
  if (!CheckAccess(state, addr, 1, /*is_write=*/true, call.site, &bug)) {
    result.state_done = true;
    result.bug = std::move(bug);
    return result;
  }
  switch (call.ext) {
    case ExternalId::kMutexInit:
      state.mutable_mutexes()[addr] = MutexState{};
      break;
    case ExternalId::kCondInit:
      state.mutable_cond_waiters()[addr].clear();
      break;
    case ExternalId::kRwLockInit:
      state.mutable_rwlocks()[addr] = RwLockState{};
      break;
    case ExternalId::kSemInit: {
      uint64_t count;
      if (!ConcretizeU64(state, call.args[1], &count)) {
        result.state_done = true;
        return result;
      }
      state.mutable_semaphores()[addr] = SemState{static_cast<uint32_t>(count)};
      break;
    }
    case ExternalId::kBarrierInit: {
      uint64_t count;
      if (!ConcretizeU64(state, call.args[1], &count)) {
        result.state_done = true;
        return result;
      }
      if (count == 0) {
        result.state_done = true;
        result.bug = MakeBug(BugInfo::Kind::kInvalidSync, call.site, thread.id, addr,
                             "barrier_init with a zero participant count");
        return result;
      }
      state.mutable_barriers()[addr] = BarrierState{static_cast<uint32_t>(count), {}};
      break;
    }
    default:
      break;
  }
  AdvancePc(state);
  return result;
}

StepResult Interpreter::ExecMutexLock(ExecutionState& state, const SyncCall& call) {
  StepResult result;
  Thread& thread = state.CurrentThread();
  const bool try_only = call.ext == ExternalId::kMutexTryLock;
  uint64_t addr;
  if (!ConcretizeU64(state, call.args[0], &addr)) {
    result.state_done = true;
    return result;
  }
  BugInfo bug;
  if (!CheckAccess(state, addr, 1, /*is_write=*/true, call.site, &bug)) {
    result.state_done = true;
    result.bug = std::move(bug);
    return result;
  }
  auto set_try_result = [&](uint64_t v) {
    if (call.inst.result >= 0) {
      thread.frames.back().regs[static_cast<size_t>(call.inst.result)] =
          solver::MakeConst(32, v);
    }
  };
  MutexState& m = state.mutable_mutexes()[addr];
  if (!m.locked) {
    m.locked = true;
    m.holder = thread.id;
    m.acquired_at = call.site;
    state.RecordEvent(SchedEvent::Kind::kMutexLock, thread.id, addr, call.site);
    if (try_only) {
      set_try_result(1);
    }
    AdvancePc(state);
    if (options_.policy != nullptr && options_.services != nullptr) {
      options_.policy->OnLockAcquired(*options_.services, state, addr, call.site);
    }
    return result;
  }
  if (try_only) {
    // Contended (or already self-held): fail without blocking. The
    // kTryFail event orders the failed attempt inside the holder's
    // critical section for happens-before replay.
    state.RecordEvent(SchedEvent::Kind::kTryFail, thread.id, addr, call.site);
    set_try_result(0);
    AdvancePc(state);
    return result;
  }
  if (m.holder == thread.id) {
    // Non-recursive mutex relocked by its holder: self-deadlock.
    result.state_done = true;
    result.bug = MakeBug(BugInfo::Kind::kDeadlock, call.site, thread.id, addr,
                         "thread relocked a mutex it already holds");
    return result;
  }
  thread.status = ThreadStatus::kBlockedMutex;
  thread.wait_mutex = addr;
  if (options_.policy != nullptr && options_.services != nullptr) {
    options_.policy->OnLockBlocked(*options_.services, state, addr, m.holder);
  }
  return BlockCurrentThread(state);
}

StepResult Interpreter::ExecMutexUnlock(ExecutionState& state, const SyncCall& call) {
  StepResult result;
  Thread& thread = state.CurrentThread();
  uint64_t addr;
  if (!ConcretizeU64(state, call.args[0], &addr)) {
    result.state_done = true;
    return result;
  }
  auto it = state.mutable_mutexes().find(addr);
  if (it == state.mutable_mutexes().end() || !it->second.locked ||
      it->second.holder != thread.id) {
    result.state_done = true;
    result.bug = MakeBug(BugInfo::Kind::kInvalidSync, call.site, thread.id, addr,
                         "unlock of a mutex not held by this thread");
    return result;
  }
  it->second.locked = false;
  it->second.holder = ir::kInvalidIndex;
  // Wake all waiters; they re-execute their lock call and race for it.
  for (Thread& t : state.threads) {
    if (t.status == ThreadStatus::kBlockedMutex && t.wait_mutex == addr) {
      t.status = ThreadStatus::kRunnable;
      t.wait_mutex = 0;
    }
  }
  state.RecordEvent(SchedEvent::Kind::kMutexUnlock, thread.id, addr, call.site);
  AdvancePc(state);
  if (options_.policy != nullptr && options_.services != nullptr) {
    options_.policy->OnUnlock(*options_.services, state, addr);
  }
  return result;
}

StepResult Interpreter::ExecCondWait(ExecutionState& state, const SyncCall& call) {
  StepResult result;
  Thread& thread = state.CurrentThread();
  uint64_t cond_addr, mutex_addr;
  if (!ConcretizeU64(state, call.args[0], &cond_addr) ||
      !ConcretizeU64(state, call.args[1], &mutex_addr)) {
    result.state_done = true;
    return result;
  }
  if (!thread.cond_signaled) {
    // Phase 1: release the mutex and sleep on the condvar.
    auto it = state.mutable_mutexes().find(mutex_addr);
    if (it == state.mutable_mutexes().end() || !it->second.locked ||
        it->second.holder != thread.id) {
      result.state_done = true;
      result.bug = MakeBug(BugInfo::Kind::kInvalidSync, call.site, thread.id,
                           mutex_addr, "cond_wait without holding the mutex");
      return result;
    }
    it->second.locked = false;
    it->second.holder = ir::kInvalidIndex;
    for (Thread& t : state.threads) {
      if (t.status == ThreadStatus::kBlockedMutex && t.wait_mutex == mutex_addr) {
        t.status = ThreadStatus::kRunnable;
        t.wait_mutex = 0;
      }
    }
    thread.status = ThreadStatus::kBlockedCond;
    thread.wait_cond = cond_addr;
    thread.cond_saved_mutex = mutex_addr;
    state.mutable_cond_waiters()[cond_addr].push_back(thread.id);
    state.RecordEvent(SchedEvent::Kind::kCondWait, thread.id, cond_addr, call.site);
    if (!ScheduleNext(state)) {
      result.state_done = true;
      result.bug = MakeDeadlockBug(state);
    }
    return result;
  }
  // Phase 2 (signaled): reacquire the mutex.
  MutexState& m = state.mutable_mutexes()[mutex_addr];
  if (!m.locked) {
    m.locked = true;
    m.holder = thread.id;
    m.acquired_at = call.site;
    thread.cond_signaled = false;
    thread.cond_saved_mutex = 0;
    state.RecordEvent(SchedEvent::Kind::kCondWake, thread.id, cond_addr, call.site);
    AdvancePc(state);
    if (options_.policy != nullptr && options_.services != nullptr) {
      options_.policy->OnLockAcquired(*options_.services, state, mutex_addr,
                                      call.site);
    }
    return result;
  }
  thread.status = ThreadStatus::kBlockedMutex;
  thread.wait_mutex = mutex_addr;
  return BlockCurrentThread(state);
}

StepResult Interpreter::ExecCondWake(ExecutionState& state, const SyncCall& call) {
  StepResult result;
  uint64_t cond_addr;
  if (!ConcretizeU64(state, call.args[0], &cond_addr)) {
    result.state_done = true;
    return result;
  }
  auto& waiters = state.mutable_cond_waiters()[cond_addr];
  const bool broadcast = call.ext == ExternalId::kCondBroadcast;
  // Single-waiter semantics, pinned: a signal wakes exactly one *eligible*
  // waiter (thread still alive and still blocked on this condvar). Stale
  // entries — e.g. a waiter that exited while parked — are dropped rather
  // than silently consuming the signal, and a broadcast wakes every
  // eligible waiter, never more.
  size_t budget = broadcast ? waiters.size() : 1;
  size_t i = 0;
  while (i < waiters.size() && budget > 0) {
    Thread* t = state.FindThread(waiters[i]);
    if (t == nullptr || t->status != ThreadStatus::kBlockedCond ||
        t->wait_cond != cond_addr) {
      waiters.erase(waiters.begin() + static_cast<ptrdiff_t>(i));
      continue;  // Stale entry: drop it without spending the wake budget.
    }
    t->status = ThreadStatus::kRunnable;
    t->wait_cond = 0;
    t->cond_signaled = true;
    waiters.erase(waiters.begin() + static_cast<ptrdiff_t>(i));
    --budget;
  }
  AdvancePc(state);
  return result;
}

StepResult Interpreter::ExecRwLock(ExecutionState& state, const SyncCall& call) {
  StepResult result;
  Thread& thread = state.CurrentThread();
  const bool want_write = call.ext == ExternalId::kRwWrLock ||
                          call.ext == ExternalId::kRwTryWrLock;
  const bool try_only = call.ext == ExternalId::kRwTryRdLock ||
                        call.ext == ExternalId::kRwTryWrLock;
  uint64_t addr;
  if (!ConcretizeU64(state, call.args[0], &addr)) {
    result.state_done = true;
    return result;
  }
  BugInfo bug;
  if (!CheckAccess(state, addr, 1, /*is_write=*/true, call.site, &bug)) {
    result.state_done = true;
    result.bug = std::move(bug);
    return result;
  }
  auto set_try_result = [&](uint64_t v) {
    if (call.inst.result >= 0) {
      thread.frames.back().regs[static_cast<size_t>(call.inst.result)] =
          solver::MakeConst(32, v);
    }
  };
  RwLockState& rw = state.mutable_rwlocks()[addr];
  if (rw.writer == thread.id) {
    if (try_only) {
      // A try operation never blocks: the writer's own re-request simply
      // fails (POSIX EBUSY/EDEADLK), like mutex_trylock on a self-held
      // mutex.
      state.RecordEvent(SchedEvent::Kind::kTryFail, thread.id, addr, call.site);
      set_try_result(0);
      AdvancePc(state);
      return result;
    }
    // The active writer blocking on either mode can never proceed.
    result.state_done = true;
    result.bug = MakeBug(BugInfo::Kind::kDeadlock, call.site, thread.id, addr,
                         "thread re-acquired an rwlock it holds for writing");
    return result;
  }
  const uint32_t own_reads = rw.ReaderCount(thread.id);
  bool acquirable;
  if (want_write) {
    // Write acquisition: free, or an upgrade by the sole reader. With other
    // readers present the writer must wait for them to drain — the
    // schedule-dependent upgrade-deadlock window.
    acquirable = rw.writer == ir::kInvalidIndex &&
                 rw.readers.size() == own_reads;
  } else {
    // Read acquisition: any number of readers share; only an active writer
    // excludes. Recursive read re-acquisition is allowed (counting).
    acquirable = rw.writer == ir::kInvalidIndex;
  }
  if (acquirable) {
    if (want_write) {
      // An upgrade consumes the thread's read holds.
      rw.readers.erase(std::remove(rw.readers.begin(), rw.readers.end(), thread.id),
                       rw.readers.end());
      rw.writer = thread.id;
      rw.acquired_at = call.site;
      state.RecordEvent(SchedEvent::Kind::kRwWrLock, thread.id, addr, call.site);
    } else {
      rw.readers.push_back(thread.id);
      state.RecordEvent(SchedEvent::Kind::kRwRdLock, thread.id, addr, call.site);
    }
    if (try_only) {
      set_try_result(1);
    }
    AdvancePc(state);
    if (options_.policy != nullptr && options_.services != nullptr) {
      options_.policy->OnLockAcquired(*options_.services, state, addr, call.site);
    }
    return result;
  }
  if (try_only) {
    state.RecordEvent(SchedEvent::Kind::kTryFail, thread.id, addr, call.site);
    set_try_result(0);
    AdvancePc(state);
    return result;
  }
  thread.status = want_write ? ThreadStatus::kBlockedRwWrite
                             : ThreadStatus::kBlockedRwRead;
  thread.wait_sync = addr;
  if (options_.policy != nullptr && options_.services != nullptr) {
    // The blocking "holder": the active writer, else the first other
    // reader (an upgrade wait is a wait on the remaining readers).
    uint32_t holder = rw.writer;
    if (holder == ir::kInvalidIndex) {
      for (uint32_t reader : rw.readers) {
        if (reader != thread.id) {
          holder = reader;
          break;
        }
      }
    }
    if (holder != ir::kInvalidIndex) {
      options_.policy->OnLockBlocked(*options_.services, state, addr, holder);
    }
  }
  return BlockCurrentThread(state);
}

StepResult Interpreter::ExecRwUnlock(ExecutionState& state, const SyncCall& call) {
  StepResult result;
  Thread& thread = state.CurrentThread();
  uint64_t addr;
  if (!ConcretizeU64(state, call.args[0], &addr)) {
    result.state_done = true;
    return result;
  }
  auto it = state.mutable_rwlocks().find(addr);
  if (it == state.mutable_rwlocks().end() ||
      (it->second.writer != thread.id && it->second.ReaderCount(thread.id) == 0)) {
    result.state_done = true;
    result.bug = MakeBug(BugInfo::Kind::kInvalidSync, call.site, thread.id, addr,
                         "rwlock_unlock of a lock not held by this thread");
    return result;
  }
  RwLockState& rw = it->second;
  if (rw.writer == thread.id) {
    rw.writer = ir::kInvalidIndex;
    rw.acquired_at = {};
  } else {
    // Drop one read hold (recursive reads release one level at a time).
    auto pos = std::find(rw.readers.begin(), rw.readers.end(), thread.id);
    rw.readers.erase(pos);
  }
  // Wake every thread blocked on this rwlock; each re-executes its lock
  // call and re-evaluates acquirability (readers may now share, an
  // upgrading writer may now be the sole reader).
  for (Thread& t : state.threads) {
    if ((t.status == ThreadStatus::kBlockedRwRead ||
         t.status == ThreadStatus::kBlockedRwWrite) &&
        t.wait_sync == addr) {
      t.status = ThreadStatus::kRunnable;
      t.wait_sync = 0;
    }
  }
  state.RecordEvent(SchedEvent::Kind::kRwUnlock, thread.id, addr, call.site);
  AdvancePc(state);
  if (rw.Free() && options_.policy != nullptr && options_.services != nullptr) {
    options_.policy->OnUnlock(*options_.services, state, addr);
  }
  return result;
}

StepResult Interpreter::ExecSemWait(ExecutionState& state, const SyncCall& call) {
  StepResult result;
  Thread& thread = state.CurrentThread();
  const bool try_only = call.ext == ExternalId::kSemTryWait;
  uint64_t addr;
  if (!ConcretizeU64(state, call.args[0], &addr)) {
    result.state_done = true;
    return result;
  }
  BugInfo bug;
  if (!CheckAccess(state, addr, 1, /*is_write=*/true, call.site, &bug)) {
    result.state_done = true;
    result.bug = std::move(bug);
    return result;
  }
  auto set_try_result = [&](uint64_t v) {
    if (call.inst.result >= 0) {
      thread.frames.back().regs[static_cast<size_t>(call.inst.result)] =
          solver::MakeConst(32, v);
    }
  };
  SemState& sem = state.mutable_semaphores()[addr];
  if (sem.count > 0) {
    --sem.count;
    state.RecordEvent(SchedEvent::Kind::kSemWait, thread.id, addr, call.site);
    if (try_only) {
      set_try_result(1);
    }
    AdvancePc(state);
    if (options_.policy != nullptr && options_.services != nullptr) {
      options_.policy->OnLockAcquired(*options_.services, state, addr, call.site);
    }
    return result;
  }
  if (try_only) {
    state.RecordEvent(SchedEvent::Kind::kTryFail, thread.id, addr, call.site);
    set_try_result(0);
    AdvancePc(state);
    return result;
  }
  thread.status = ThreadStatus::kBlockedSem;
  thread.wait_sync = addr;
  return BlockCurrentThread(state);
}

StepResult Interpreter::ExecSemPost(ExecutionState& state, const SyncCall& call) {
  StepResult result;
  Thread& thread = state.CurrentThread();
  uint64_t addr;
  if (!ConcretizeU64(state, call.args[0], &addr)) {
    result.state_done = true;
    return result;
  }
  BugInfo bug;
  if (!CheckAccess(state, addr, 1, /*is_write=*/true, call.site, &bug)) {
    result.state_done = true;
    result.bug = std::move(bug);
    return result;
  }
  ++state.mutable_semaphores()[addr].count;
  // Wake every waiter; they re-execute sem_wait and race for the count.
  for (Thread& t : state.threads) {
    if (t.status == ThreadStatus::kBlockedSem && t.wait_sync == addr) {
      t.status = ThreadStatus::kRunnable;
      t.wait_sync = 0;
    }
  }
  state.RecordEvent(SchedEvent::Kind::kSemPost, thread.id, addr, call.site);
  AdvancePc(state);
  if (options_.policy != nullptr && options_.services != nullptr) {
    options_.policy->OnUnlock(*options_.services, state, addr);
  }
  return result;
}

StepResult Interpreter::ExecBarrierWait(ExecutionState& state, const SyncCall& call) {
  StepResult result;
  Thread& thread = state.CurrentThread();
  uint64_t addr;
  if (!ConcretizeU64(state, call.args[0], &addr)) {
    result.state_done = true;
    return result;
  }
  BugInfo bug;
  if (!CheckAccess(state, addr, 1, /*is_write=*/true, call.site, &bug)) {
    result.state_done = true;
    result.bug = std::move(bug);
    return result;
  }
  if (thread.barrier_released) {
    // Re-executed after the release: the wait completes.
    thread.barrier_released = false;
    state.RecordEvent(SchedEvent::Kind::kBarrierWait, thread.id, addr, call.site);
    AdvancePc(state);
    return result;
  }
  BarrierState& bar = state.mutable_barriers()[addr];
  if (bar.required != 0 && bar.waiting.size() + 1 >= bar.required) {
    // Last arrival: release everyone. The released threads re-execute
    // barrier_wait and complete via the barrier_released flag; this thread
    // passes immediately. A count mismatch (required never reached) leaves
    // the arrivals parked forever — the global no-progress check reports
    // the deadlock.
    for (uint32_t waiting_tid : bar.waiting) {
      Thread* t = state.FindThread(waiting_tid);
      if (t != nullptr && t->status == ThreadStatus::kBlockedBarrier) {
        t->status = ThreadStatus::kRunnable;
        t->wait_sync = 0;
        t->barrier_released = true;
      }
    }
    bar.waiting.clear();
    state.RecordEvent(SchedEvent::Kind::kBarrierWait, thread.id, addr, call.site);
    AdvancePc(state);
    return result;
  }
  bar.waiting.push_back(thread.id);
  thread.status = ThreadStatus::kBlockedBarrier;
  thread.wait_sync = addr;
  return BlockCurrentThread(state);
}

StepResult Interpreter::ExecYield(ExecutionState& state, const SyncCall& /*call*/) {
  StepResult result;
  AdvancePc(state);
  ScheduleNext(state);
  return result;
}

// ---- C11 atomics & the TSO store buffer ----
//
// Memory orders use C11 numbering: 0 relaxed, 1 consume, 2 acquire,
// 3 release, 4 acq_rel, 5 seq_cst. A store with order < 3 parks in the
// issuing thread's buffer; release-or-stronger stores, every RMW, fences
// with order >= 3, and thread exit drain the thread's own buffer. Buffered
// entries drain out of order across addresses (same-address entries stay
// FIFO) — looser than strict x86-TSO, which is what lets a later
// flag-store become visible before an earlier data-store and makes
// missing-release-fence bugs reachable. Atomic accesses are synchronizing:
// they bypass the lockset race detector but still wake sleep-set entries.

namespace {
constexpr uint64_t kOrderRelease = 3;
constexpr uint32_t kAtomicBytes = 4;  // All atomics are 32-bit.
}  // namespace

void Interpreter::MaybeDrainForks(ExecutionState& state, StepResult* result) {
  // Every atomic operation is a flush choice point: fork one schedule
  // variant per eligible buffered store (the oldest pending entry of each
  // (thread, address) pair — per-address FIFO). The child commits that
  // entry with the pc unchanged, so the atomic op re-executes there and
  // enumerates the remaining drain orders recursively; fingerprint dedup
  // collapses commuting orders. Symbolic mode only — concrete playback
  // applies the recorded flushes instead.
  if (!options_.store_buffer || options_.input_provider != nullptr) {
    return;
  }
  for (const Thread& t : state.threads) {
    std::vector<uint64_t> seen;
    for (const PendingStore& p : t.store_buffer) {
      if (std::find(seen.begin(), seen.end(), p.addr) != seen.end()) {
        continue;  // A newer same-address entry cannot pass the oldest.
      }
      seen.push_back(p.addr);
      StatePtr child = state.Fork(AllocStateId());
      // Rewind the step the parent just spent reaching this op: the child
      // re-executes it, and strict replay (which never burns the aborted
      // attempt) must see the flush and the op at the same step indices
      // the child records.
      --child->steps;
      child->CommitBufferedStore(t.id, p.addr);
      child->is_schedule_snapshot = true;
      result->forks.push_back(std::move(child));
    }
  }
  if (!result->forks.empty()) {
    ++state.depth;
  }
}

ExprRef Interpreter::AtomicReadMem(ExecutionState& state, uint64_t addr) {
  const MemoryObject* obj = state.mem.Find(PointerObject(addr));
  uint32_t offset = PointerOffset(addr);
  ExprRef value = obj->ByteAt(offset);
  for (uint32_t i = 1; i < kAtomicBytes; ++i) {
    value = solver::MakeConcat(obj->ByteAt(offset + i), value);
  }
  state.SleepSetWakeAccess(MakePointer(PointerObject(addr), offset),
                           /*is_write=*/false);
  return value;
}

void Interpreter::AtomicWriteMem(ExecutionState& state, uint64_t addr,
                                 const ExprRef& value) {
  MemoryObject* obj = state.mem.FindWritable(PointerObject(addr));
  uint32_t offset = PointerOffset(addr);
  for (uint32_t i = 0; i < kAtomicBytes; ++i) {
    state.mem.WriteByte(obj, offset + i, solver::MakeExtract(value, i * 8, 8));
  }
  state.SleepSetWakeAccess(MakePointer(PointerObject(addr), offset),
                           /*is_write=*/true);
}

StepResult Interpreter::ExecAtomicLoad(ExecutionState& state, const SyncCall& call) {
  StepResult result;
  MaybeDrainForks(state, &result);
  Thread& thread = state.CurrentThread();
  uint64_t addr;
  if (!ConcretizeU64(state, call.args[0], &addr)) {
    result.state_done = true;
    return result;
  }
  BugInfo bug;
  if (!CheckAccess(state, addr, kAtomicBytes, /*is_write=*/false, call.site, &bug)) {
    result.state_done = true;
    result.bug = std::move(bug);
    return result;
  }
  // Store-to-load forwarding: the thread's own newest pending store to this
  // address wins over memory (TSO — a thread always sees its own stores).
  ExprRef value;
  for (auto it = thread.store_buffer.rbegin(); it != thread.store_buffer.rend();
       ++it) {
    if (it->addr == addr) {
      value = it->value;
      break;
    }
  }
  if (value == nullptr) {
    value = AtomicReadMem(state, addr);
  }
  state.RecordEvent(SchedEvent::Kind::kAtomicLoad, thread.id, addr, call.site);
  if (call.inst.result >= 0) {
    thread.frames.back().regs[static_cast<size_t>(call.inst.result)] = value;
  }
  AdvancePc(state);
  return result;
}

StepResult Interpreter::ExecAtomicStore(ExecutionState& state, const SyncCall& call) {
  StepResult result;
  MaybeDrainForks(state, &result);
  Thread& thread = state.CurrentThread();
  uint64_t addr, order;
  if (!ConcretizeU64(state, call.args[0], &addr) ||
      !ConcretizeU64(state, call.args[2], &order)) {
    result.state_done = true;
    return result;
  }
  BugInfo bug;
  if (!CheckAccess(state, addr, kAtomicBytes, /*is_write=*/true, call.site, &bug)) {
    result.state_done = true;
    result.bug = std::move(bug);
    return result;
  }
  ExprRef value = call.args[1];
  if (value->width() < 32) {
    value = solver::MakeZExt(value, 32);
  } else if (value->width() > 32) {
    value = solver::MakeExtract(value, 0, 32);
  }
  if (options_.store_buffer && order < kOrderRelease) {
    if (thread.store_buffer.size() >= kStoreBufferCap) {
      // Full buffer: hardware would stall; drain the oldest entry instead.
      state.CommitBufferedStore(thread.id, thread.store_buffer.front().addr);
    }
    state.CurrentThread().store_buffer.push_back(
        PendingStore{addr, kAtomicBytes, value, call.site});
  } else {
    // Release-or-stronger (or the --no-store-buffer ablation): nothing
    // issued before may be reordered past this store, so drain everything
    // pending, then write through.
    state.DrainStoreBuffer(state.CurrentThread());
    AtomicWriteMem(state, addr, value);
  }
  state.RecordEvent(SchedEvent::Kind::kAtomicStore, state.current_tid, addr,
                    call.site);
  AdvancePc(state);
  return result;
}

StepResult Interpreter::ExecAtomicRmw(ExecutionState& state, const SyncCall& call) {
  StepResult result;
  MaybeDrainForks(state, &result);
  Thread& thread = state.CurrentThread();
  uint64_t addr;
  if (!ConcretizeU64(state, call.args[0], &addr)) {
    result.state_done = true;
    return result;
  }
  BugInfo bug;
  if (!CheckAccess(state, addr, kAtomicBytes, /*is_write=*/true, call.site, &bug)) {
    result.state_done = true;
    result.bug = std::move(bug);
    return result;
  }
  // Every RMW is a full flush point regardless of its order annotation
  // (x86 lock-prefixed ops drain the store buffer).
  state.DrainStoreBuffer(thread);
  ExprRef old = AtomicReadMem(state, addr);
  ExprRef arg = call.args[1];
  if (arg->width() < 32) {
    arg = solver::MakeZExt(arg, 32);
  } else if (arg->width() > 32) {
    arg = solver::MakeExtract(arg, 0, 32);
  }
  ExprRef next;
  switch (call.ext) {
    case ExternalId::kAtomicExchange:
      next = arg;
      break;
    case ExternalId::kAtomicFetchAdd:
      next = solver::MakeAdd(old, arg);
      break;
    default: {  // kAtomicCas: args are (ptr, expected, desired, order).
      ExprRef desired = call.args[2];
      if (desired->width() < 32) {
        desired = solver::MakeZExt(desired, 32);
      } else if (desired->width() > 32) {
        desired = solver::MakeExtract(desired, 0, 32);
      }
      // Ite keeps a symbolic comparison in-expression instead of forking;
      // the caller's own compare of the returned old value forks the path.
      next = solver::MakeIte(solver::MakeEq(old, arg), desired, old);
      break;
    }
  }
  AtomicWriteMem(state, addr, next);
  state.RecordEvent(SchedEvent::Kind::kAtomicRmw, thread.id, addr, call.site);
  if (call.inst.result >= 0) {
    thread.frames.back().regs[static_cast<size_t>(call.inst.result)] = old;
  }
  AdvancePc(state);
  return result;
}

StepResult Interpreter::ExecAtomicFence(ExecutionState& state, const SyncCall& call) {
  StepResult result;
  MaybeDrainForks(state, &result);
  uint64_t order;
  if (!ConcretizeU64(state, call.args[0], &order)) {
    result.state_done = true;
    return result;
  }
  if (order >= kOrderRelease) {
    state.DrainStoreBuffer(state.CurrentThread());
  }
  state.RecordEvent(SchedEvent::Kind::kAtomicFence, state.current_tid, 0, call.site);
  AdvancePc(state);
  return result;
}

}  // namespace esd::vm

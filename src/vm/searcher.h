// ESD VM: search strategies over execution states.
//
// The engine holds live states in a Searcher; every step it asks the
// searcher which state to advance. ESD's proximity-guided searcher lives in
// src/core/; this header provides the interface plus the baseline strategies
// the paper compares against (§7.2): DFS ("equivalent to an exhaustive
// search") and RandomPath ("a quasi-random strategy meant to maximize global
// path coverage"), plus BFS and uniform-random for tests.
#ifndef ESD_SRC_VM_SEARCHER_H_
#define ESD_SRC_VM_SEARCHER_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <random>
#include <vector>

#include "src/vm/state.h"

namespace esd::vm {

class Searcher {
 public:
  virtual ~Searcher() = default;
  virtual void Add(StatePtr state) = 0;
  virtual void Remove(const StatePtr& state) = 0;
  // Returns the state to step next (without removing it). Null when empty.
  virtual StatePtr Select() = 0;
  virtual bool Empty() const = 0;
  // Notifies that `state`'s position/priority may have changed.
  virtual void Update(const StatePtr& /*state*/) {}
  virtual size_t Size() const = 0;
};

// LIFO: dives down one path until it terminates. With loops this can
// wander forever down a single subtree, which is exactly the pathology the
// paper's evaluation shows.
class DfsSearcher : public Searcher {
 public:
  void Add(StatePtr state) override { stack_.push_back(std::move(state)); }
  void Remove(const StatePtr& state) override;
  StatePtr Select() override { return stack_.empty() ? nullptr : stack_.back(); }
  bool Empty() const override { return stack_.empty(); }
  size_t Size() const override { return stack_.size(); }

 private:
  std::vector<StatePtr> stack_;
};

class BfsSearcher : public Searcher {
 public:
  void Add(StatePtr state) override { queue_.push_back(std::move(state)); }
  void Remove(const StatePtr& state) override;
  StatePtr Select() override { return queue_.empty() ? nullptr : queue_.front(); }
  bool Empty() const override { return queue_.empty(); }
  size_t Size() const override { return queue_.size(); }

 private:
  std::deque<StatePtr> queue_;
};

// KLEE-style RandomPath approximation: leaves are picked with probability
// proportional to 2^-depth, which biases toward shallow, less-explored
// regions of the execution tree (deep chains of forks do not dominate).
class RandomPathSearcher : public Searcher {
 public:
  explicit RandomPathSearcher(uint64_t seed) : rng_(seed) {}

  void Add(StatePtr state) override { states_.push_back(std::move(state)); }
  void Remove(const StatePtr& state) override;
  StatePtr Select() override;
  bool Empty() const override { return states_.empty(); }
  size_t Size() const override { return states_.size(); }

 private:
  std::vector<StatePtr> states_;
  std::vector<double> weights_;  // Select() scratch, reused across calls.
  std::mt19937_64 rng_;
};

// Uniform-random over live states.
class RandomStateSearcher : public Searcher {
 public:
  explicit RandomStateSearcher(uint64_t seed) : rng_(seed) {}

  void Add(StatePtr state) override { states_.push_back(std::move(state)); }
  void Remove(const StatePtr& state) override;
  StatePtr Select() override;
  bool Empty() const override { return states_.empty(); }
  size_t Size() const override { return states_.size(); }

 private:
  std::vector<StatePtr> states_;
  std::mt19937_64 rng_;
};

}  // namespace esd::vm

#endif  // ESD_SRC_VM_SEARCHER_H_

#include "src/vm/work_queue.h"

#include "src/core/event_counters.h"

namespace esd::vm {

SharedFrontier::SharedFrontier(size_t workers, uint64_t seed) {
  partitions_.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    auto p = std::make_unique<Partition>();
    p->rng.seed(seed + w * 0x9e3779b97f4a7c15ull);
    partitions_.push_back(std::move(p));
  }
}

void SharedFrontier::PushRemote(size_t home, StatePtr state) {
  // The increment must precede publication: once the state is in the deque
  // a peer can pop and finish it, and the matching FinishOne must never
  // drive the count below the states still queued.
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  Partition& p = *partitions_[home];
  std::lock_guard<std::mutex> lock(p.mu);
  p.queue.push_back(std::move(state));
  p.size.store(p.queue.size(), std::memory_order_relaxed);
}

void SharedFrontier::NoteLocalKeep() {
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
}

bool SharedFrontier::TryDrainOwn(size_t worker, std::vector<StatePtr>* out) {
  Partition& p = *partitions_[worker];
  if (p.size.load(std::memory_order_relaxed) == 0) {
    return false;
  }
  std::lock_guard<std::mutex> lock(p.mu);
  if (p.queue.empty()) {
    return false;
  }
  for (StatePtr& state : p.queue) {
    out->push_back(std::move(state));
  }
  p.queue.clear();
  p.size.store(0, std::memory_order_relaxed);
  return true;
}

WorkQueue::AcquireResult SharedFrontier::Acquire(size_t worker,
                                                 std::vector<StatePtr>* out) {
  if (TryDrainOwn(worker, out)) {
    return AcquireResult::kGot;
  }
  const size_t n = partitions_.size();
  if (n > 1) {
    // Steal FIFO from a random victim: scan every peer once starting at a
    // random offset, taking the oldest (shallowest) entry of the first
    // non-empty deque. Shallow states head the largest unexplored
    // subtrees, so one steal feeds the thief for a while.
    Partition& self = *partitions_[worker];
    size_t start = static_cast<size_t>(self.rng() % n);
    for (size_t i = 0; i < n; ++i) {
      size_t victim = (start + i) % n;
      if (victim == worker) {
        continue;
      }
      Partition& v = *partitions_[victim];
      if (v.size.load(std::memory_order_relaxed) == 0) {
        continue;
      }
      std::lock_guard<std::mutex> lock(v.mu);
      if (v.queue.empty()) {
        // Raced with the victim draining its own deque; keep scanning. The
        // single post-loop counter records the failed attempt — counting
        // here too would record N+1 failures for one fully-failed scan.
        continue;
      }
      out->push_back(std::move(v.queue.front()));
      v.queue.pop_front();
      v.size.store(v.queue.size(), std::memory_order_relaxed);
      CountEvent(&EventCounters::steals);
      return AcquireResult::kGot;
    }
    CountEvent(&EventCounters::steal_failures);
  }
  if (limit_.load(std::memory_order_acquire)) {
    return AcquireResult::kAbort;
  }
  if (in_flight_.load(std::memory_order_acquire) == 0) {
    return AcquireResult::kDrained;
  }
  return AcquireResult::kRetry;
}

void SharedFrontier::FinishOne() {
  in_flight_.fetch_sub(1, std::memory_order_acq_rel);
}

void SharedFrontier::NoteLimit() {
  limit_.store(true, std::memory_order_release);
}

uint64_t SharedFrontier::InFlight() const {
  return in_flight_.load(std::memory_order_acquire);
}

}  // namespace esd::vm

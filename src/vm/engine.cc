#include "src/vm/engine.h"

#include <algorithm>
#include <thread>

#include "src/core/event_counters.h"

namespace esd::vm {

Engine::Engine(Interpreter* interpreter, Searcher* searcher, Options options)
    : interpreter_(interpreter), searcher_(searcher), options_(options) {
  interpreter_->set_services(this);
}

void Engine::Register(const StatePtr& state) {
  live_.emplace(state.get(), state);
  ++states_created_;
  CountEventMax(&EventCounters::frontier_max_depth, state->depth);
  if (options_.shared_states != nullptr) {
    options_.shared_states->fetch_add(1, std::memory_order_relaxed);
  }
}

void Engine::Unregister(const StatePtr& state) {
  if (live_.erase(state.get()) > 0 && options_.shared_states != nullptr) {
    options_.shared_states->fetch_sub(1, std::memory_order_relaxed);
  }
}

bool Engine::AlreadyVisited(const ExecutionState& state) {
  if (options_.visited == nullptr) {
    return false;
  }
  if (options_.visited->InsertIfAbsent(state.Fingerprint())) {
    return false;
  }
  ++states_deduped_;
  return true;
}

void Engine::Start(StatePtr initial) {
  if (options_.visited != nullptr) {
    options_.visited->InsertIfAbsent(initial->Fingerprint());
  }
  if (Cooperative()) {
    options_.frontier->NoteLocalKeep();
  }
  Register(initial);
  searcher_->Add(std::move(initial));
}

StatePtr Engine::ForkState(const ExecutionState& state) {
  return state.Fork(interpreter_->AllocStateId());
}

bool Engine::AddState(StatePtr state) {
  uint64_t fp = 0;
  bool have_fp = false;
  if (options_.visited != nullptr) {
    fp = state->Fingerprint();
    have_fp = true;
    if (!options_.visited->InsertIfAbsent(fp)) {
      ++states_deduped_;
      return false;  // An identical state was already explored: drop the fork.
    }
  }
  if (Cooperative()) {
    // Ownership hashing: the fork's fingerprint names its home worker, so
    // each interleaving class lands on one worker's frontier. The
    // fingerprint was recorded in the shared table above (when dedup is
    // on), so the receiver adopts it without re-probing.
    if (!have_fp) {
      fp = state->Fingerprint();
    }
    const size_t home = static_cast<size_t>(fp % options_.workers);
    if (home != options_.worker) {
      CountEvent(&EventCounters::states_handed_off);
      options_.frontier->PushRemote(home, std::move(state));
      return true;
    }
    options_.frontier->NoteLocalKeep();
  }
  Register(state);
  searcher_->Add(std::move(state));
  return true;
}

void Engine::AdoptIncoming(std::vector<StatePtr>* incoming) {
  // TryDrainOwn yields oldest first; absorb in reverse so the hot end (the
  // most recently forked, deepest states) enters the searcher first — LIFO
  // for the plain queue searchers, irrelevant for the proximity searcher,
  // which re-scores every arrival against its own goal heaps.
  for (auto it = incoming->rbegin(); it != incoming->rend(); ++it) {
    Register(*it);
    searcher_->Add(std::move(*it));
  }
  incoming->clear();
}

void Engine::Reprioritize(const StatePtr& state) { searcher_->Update(state); }

StatePtr Engine::SharedRef(const ExecutionState& state) {
  auto it = live_.find(&state);
  return it == live_.end() ? nullptr : it->second;
}

Engine::Result Engine::Run(const BugMatcher& matcher) {
  Result result;
  auto start_time = std::chrono::steady_clock::now();
  uint64_t instructions = 0;
  auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_time)
        .count();
  };

  // Portfolio bookkeeping: instructions executed since the last flush into
  // the shared counter. Flushing in batches keeps the shared cacheline out
  // of the hot loop, but the batch must stay small relative to the shared
  // budget or the budget is never checked before the workers' local caps —
  // so the period shrinks to ~1/8 of a small budget.
  constexpr uint64_t kFlushPeriod = 256;
  uint64_t flush_period = kFlushPeriod;
  if (options_.shared_max_instructions != 0) {
    flush_period = std::min<uint64_t>(
        kFlushPeriod, std::max<uint64_t>(1, options_.shared_max_instructions / 8));
  }
  uint64_t unflushed = 0;
  bool shared_budget_hit = false;
  auto flush_shared = [&] {
    if (options_.shared_instructions != nullptr && unflushed > 0) {
      uint64_t total = options_.shared_instructions->fetch_add(
                           unflushed, std::memory_order_relaxed) +
                       unflushed;
      unflushed = 0;
      if (options_.shared_max_instructions != 0 &&
          total >= options_.shared_max_instructions) {
        shared_budget_hit = true;
      }
    }
  };
  // Budget probe for the cooperative idle path: while a worker spins
  // waiting for peers, `instructions` does not advance, so the batched
  // flush checks above never fire — read the shared counters directly.
  auto shared_budget_exceeded = [&] {
    if (shared_budget_hit) {
      return true;
    }
    if (options_.shared_instructions != nullptr &&
        options_.shared_max_instructions != 0 &&
        options_.shared_instructions->load(std::memory_order_relaxed) >=
            options_.shared_max_instructions) {
      return true;
    }
    return options_.shared_states != nullptr && options_.shared_max_states != 0 &&
           options_.shared_states->load(std::memory_order_relaxed) >=
               options_.shared_max_states;
  };

  const bool coop = Cooperative();
  std::vector<StatePtr> incoming;
  uint64_t idle_spins = 0;

  while (true) {
    if (coop && options_.frontier->TryDrainOwn(options_.worker, &incoming)) {
      AdoptIncoming(&incoming);
    }
    if (searcher_->Empty()) {
      if (!coop) {
        break;  // kExhausted: the lone frontier is empty.
      }
      switch (options_.frontier->Acquire(options_.worker, &incoming)) {
        case WorkQueue::AcquireResult::kGot:
          AdoptIncoming(&incoming);
          idle_spins = 0;
          continue;
        case WorkQueue::AcquireResult::kDrained:
          // Global frontier empty and nothing in flight anywhere: the
          // cooperative search space is exhausted.
          result.status = Result::Status::kExhausted;
          break;
        case WorkQueue::AcquireResult::kAbort:
          result.status = Result::Status::kLimitReached;
          break;
        case WorkQueue::AcquireResult::kRetry: {
          // Peers hold in-flight states that may still fork children into
          // our partition: spin, but keep honoring cancellation and the
          // budgets the per-step checks below can no longer reach.
          if (options_.cancel != nullptr &&
              options_.cancel->load(std::memory_order_relaxed)) {
            result.status = Result::Status::kCancelled;
            break;
          }
          flush_shared();
          if (shared_budget_exceeded() || elapsed() > options_.time_cap_seconds) {
            result.status = Result::Status::kLimitReached;
            break;
          }
          if (++idle_spins > 64) {
            std::this_thread::sleep_for(std::chrono::microseconds(50));
          } else {
            std::this_thread::yield();
          }
          continue;
        }
      }
      break;
    }
    idle_spins = 0;
    if (options_.cancel != nullptr &&
        options_.cancel->load(std::memory_order_relaxed)) {
      result.status = Result::Status::kCancelled;
      break;
    }
    if (instructions >= options_.max_instructions || live_.size() > options_.max_states) {
      result.status = Result::Status::kLimitReached;
      break;
    }
    if (unflushed >= flush_period) {
      flush_shared();
      if (shared_budget_hit ||
          (options_.shared_states != nullptr && options_.shared_max_states != 0 &&
           options_.shared_states->load(std::memory_order_relaxed) >=
               options_.shared_max_states)) {
        result.status = Result::Status::kLimitReached;
        break;
      }
    }
    if ((instructions & 0x3ff) == 0 && elapsed() > options_.time_cap_seconds) {
      result.status = Result::Status::kLimitReached;
      break;
    }
    StatePtr state = searcher_->Select();
    if (state == nullptr) {
      break;
    }
    StepResult step = interpreter_->Step(*state);
    ++instructions;
    ++unflushed;
    for (StatePtr& fork : step.forks) {
      AddState(std::move(fork));
    }
    if (!step.state_done && step.sync_point && AlreadyVisited(*state)) {
      // The state just completed a synchronization operation and landed on a
      // fingerprint some other interleaving already produced: everything it
      // could still do is covered by that state's exploration. Prune it.
      searcher_->Remove(state);
      Unregister(state);
      if (coop) {
        options_.frontier->FinishOne();
      }
      continue;
    }
    if (step.state_done) {
      searcher_->Remove(state);
      Unregister(state);
      if (coop) {
        options_.frontier->FinishOne();
      }
      if (step.bug.IsBug()) {
        if (matcher && matcher(*state, step.bug)) {
          result.status = Result::Status::kGoalFound;
          result.goal_state = state;
          result.bug = step.bug;
          break;
        }
        if (unexpected_cb_) {
          unexpected_cb_(*state, step.bug);
        }
      }
    } else {
      searcher_->Update(state);
    }
  }
  if (coop && result.status == Result::Status::kLimitReached) {
    // States may still sit in this worker's searcher; peers must not spin
    // for them until the time cap.
    options_.frontier->NoteLimit();
  }
  flush_shared();
  result.instructions = instructions;
  result.states_created = states_created_;
  result.states_deduped = states_deduped_;
  result.seconds = elapsed();
  return result;
}

SingleRunResult RunToCompletion(Interpreter& interpreter, ExecutionState& state,
                                uint64_t max_instructions) {
  SingleRunResult result;
  for (uint64_t i = 0; i < max_instructions; ++i) {
    StepResult step = interpreter.Step(state);
    ++result.instructions;
    if (step.state_done) {
      result.completed = true;
      result.bug = step.bug;
      return result;
    }
  }
  return result;
}

}  // namespace esd::vm

#include "src/vm/engine.h"

namespace esd::vm {

Engine::Engine(Interpreter* interpreter, Searcher* searcher, Options options)
    : interpreter_(interpreter), searcher_(searcher), options_(options) {
  interpreter_->set_services(this);
}

void Engine::Register(const StatePtr& state) {
  live_.emplace(state.get(), state);
  ++states_created_;
}

void Engine::Unregister(const StatePtr& state) { live_.erase(state.get()); }

void Engine::Start(StatePtr initial) {
  Register(initial);
  searcher_->Add(std::move(initial));
}

StatePtr Engine::ForkState(const ExecutionState& state) {
  return state.Fork(interpreter_->AllocStateId());
}

void Engine::AddState(StatePtr state) {
  Register(state);
  searcher_->Add(std::move(state));
}

void Engine::Reprioritize(const StatePtr& state) { searcher_->Update(state); }

StatePtr Engine::SharedRef(const ExecutionState& state) {
  auto it = live_.find(&state);
  return it == live_.end() ? nullptr : it->second;
}

Engine::Result Engine::Run(const BugMatcher& matcher) {
  Result result;
  auto start_time = std::chrono::steady_clock::now();
  uint64_t instructions = 0;
  auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_time)
        .count();
  };

  while (!searcher_->Empty()) {
    if (instructions >= options_.max_instructions || live_.size() > options_.max_states) {
      result.status = Result::Status::kLimitReached;
      break;
    }
    if ((instructions & 0x3ff) == 0 && elapsed() > options_.time_cap_seconds) {
      result.status = Result::Status::kLimitReached;
      break;
    }
    StatePtr state = searcher_->Select();
    if (state == nullptr) {
      break;
    }
    StepResult step = interpreter_->Step(*state);
    ++instructions;
    for (StatePtr& fork : step.forks) {
      Register(fork);
      searcher_->Add(std::move(fork));
    }
    if (step.state_done) {
      searcher_->Remove(state);
      Unregister(state);
      if (step.bug.IsBug()) {
        if (matcher && matcher(*state, step.bug)) {
          result.status = Result::Status::kGoalFound;
          result.goal_state = state;
          result.bug = step.bug;
          break;
        }
        if (unexpected_cb_) {
          unexpected_cb_(*state, step.bug);
        }
      }
    } else {
      searcher_->Update(state);
    }
  }
  result.instructions = instructions;
  result.states_created = states_created_;
  result.seconds = elapsed();
  return result;
}

SingleRunResult RunToCompletion(Interpreter& interpreter, ExecutionState& state,
                                uint64_t max_instructions) {
  SingleRunResult result;
  for (uint64_t i = 0; i < max_instructions; ++i) {
    StepResult step = interpreter.Step(state);
    ++result.instructions;
    if (step.state_done) {
      result.completed = true;
      result.bug = step.bug;
      return result;
    }
  }
  return result;
}

}  // namespace esd::vm

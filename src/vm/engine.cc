#include "src/vm/engine.h"

#include <algorithm>

namespace esd::vm {

Engine::Engine(Interpreter* interpreter, Searcher* searcher, Options options)
    : interpreter_(interpreter), searcher_(searcher), options_(options) {
  interpreter_->set_services(this);
}

void Engine::Register(const StatePtr& state) {
  live_.emplace(state.get(), state);
  ++states_created_;
  if (options_.shared_states != nullptr) {
    options_.shared_states->fetch_add(1, std::memory_order_relaxed);
  }
}

void Engine::Unregister(const StatePtr& state) {
  if (live_.erase(state.get()) > 0 && options_.shared_states != nullptr) {
    options_.shared_states->fetch_sub(1, std::memory_order_relaxed);
  }
}

bool Engine::AlreadyVisited(const ExecutionState& state) {
  if (options_.visited == nullptr) {
    return false;
  }
  if (options_.visited->InsertIfAbsent(state.Fingerprint())) {
    return false;
  }
  ++states_deduped_;
  return true;
}

void Engine::Start(StatePtr initial) {
  if (options_.visited != nullptr) {
    options_.visited->InsertIfAbsent(initial->Fingerprint());
  }
  Register(initial);
  searcher_->Add(std::move(initial));
}

StatePtr Engine::ForkState(const ExecutionState& state) {
  return state.Fork(interpreter_->AllocStateId());
}

bool Engine::AddState(StatePtr state) {
  if (AlreadyVisited(*state)) {
    return false;  // An identical state was already explored: drop the fork.
  }
  Register(state);
  searcher_->Add(std::move(state));
  return true;
}

void Engine::Reprioritize(const StatePtr& state) { searcher_->Update(state); }

StatePtr Engine::SharedRef(const ExecutionState& state) {
  auto it = live_.find(&state);
  return it == live_.end() ? nullptr : it->second;
}

Engine::Result Engine::Run(const BugMatcher& matcher) {
  Result result;
  auto start_time = std::chrono::steady_clock::now();
  uint64_t instructions = 0;
  auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_time)
        .count();
  };

  // Portfolio bookkeeping: instructions executed since the last flush into
  // the shared counter. Flushing in batches keeps the shared cacheline out
  // of the hot loop, but the batch must stay small relative to the shared
  // budget or the budget is never checked before the workers' local caps —
  // so the period shrinks to ~1/8 of a small budget.
  constexpr uint64_t kFlushPeriod = 256;
  uint64_t flush_period = kFlushPeriod;
  if (options_.shared_max_instructions != 0) {
    flush_period = std::min<uint64_t>(
        kFlushPeriod, std::max<uint64_t>(1, options_.shared_max_instructions / 8));
  }
  uint64_t unflushed = 0;
  bool shared_budget_hit = false;
  auto flush_shared = [&] {
    if (options_.shared_instructions != nullptr && unflushed > 0) {
      uint64_t total = options_.shared_instructions->fetch_add(
                           unflushed, std::memory_order_relaxed) +
                       unflushed;
      unflushed = 0;
      if (options_.shared_max_instructions != 0 &&
          total >= options_.shared_max_instructions) {
        shared_budget_hit = true;
      }
    }
  };

  while (!searcher_->Empty()) {
    if (options_.cancel != nullptr &&
        options_.cancel->load(std::memory_order_relaxed)) {
      result.status = Result::Status::kCancelled;
      break;
    }
    if (instructions >= options_.max_instructions || live_.size() > options_.max_states) {
      result.status = Result::Status::kLimitReached;
      break;
    }
    if (unflushed >= flush_period) {
      flush_shared();
      if (shared_budget_hit ||
          (options_.shared_states != nullptr && options_.shared_max_states != 0 &&
           options_.shared_states->load(std::memory_order_relaxed) >=
               options_.shared_max_states)) {
        result.status = Result::Status::kLimitReached;
        break;
      }
    }
    if ((instructions & 0x3ff) == 0 && elapsed() > options_.time_cap_seconds) {
      result.status = Result::Status::kLimitReached;
      break;
    }
    StatePtr state = searcher_->Select();
    if (state == nullptr) {
      break;
    }
    StepResult step = interpreter_->Step(*state);
    ++instructions;
    ++unflushed;
    for (StatePtr& fork : step.forks) {
      if (AlreadyVisited(*fork)) {
        continue;
      }
      Register(fork);
      searcher_->Add(std::move(fork));
    }
    if (!step.state_done && step.sync_point && AlreadyVisited(*state)) {
      // The state just completed a synchronization operation and landed on a
      // fingerprint some other interleaving already produced: everything it
      // could still do is covered by that state's exploration. Prune it.
      searcher_->Remove(state);
      Unregister(state);
      continue;
    }
    if (step.state_done) {
      searcher_->Remove(state);
      Unregister(state);
      if (step.bug.IsBug()) {
        if (matcher && matcher(*state, step.bug)) {
          result.status = Result::Status::kGoalFound;
          result.goal_state = state;
          result.bug = step.bug;
          break;
        }
        if (unexpected_cb_) {
          unexpected_cb_(*state, step.bug);
        }
      }
    } else {
      searcher_->Update(state);
    }
  }
  flush_shared();
  result.instructions = instructions;
  result.states_created = states_created_;
  result.states_deduped = states_deduped_;
  result.seconds = elapsed();
  return result;
}

SingleRunResult RunToCompletion(Interpreter& interpreter, ExecutionState& state,
                                uint64_t max_instructions) {
  SingleRunResult result;
  for (uint64_t i = 0; i < max_instructions; ++i) {
    StepResult step = interpreter.Step(state);
    ++result.instructions;
    if (step.state_done) {
      result.completed = true;
      result.bug = step.bug;
      return result;
    }
  }
  return result;
}

}  // namespace esd::vm

#include "src/vm/searcher.h"

#include <algorithm>
#include <cmath>

namespace esd::vm {
namespace {

void EraseState(std::vector<StatePtr>* v, const StatePtr& state) {
  v->erase(std::remove(v->begin(), v->end(), state), v->end());
}

}  // namespace

void DfsSearcher::Remove(const StatePtr& state) { EraseState(&stack_, state); }

void BfsSearcher::Remove(const StatePtr& state) {
  queue_.erase(std::remove(queue_.begin(), queue_.end(), state), queue_.end());
}

void RandomPathSearcher::Remove(const StatePtr& state) { EraseState(&states_, state); }

StatePtr RandomPathSearcher::Select() {
  if (states_.empty()) {
    return nullptr;
  }
  // Weight ~ 2^-depth, clamped so very deep states keep nonzero mass.
  uint64_t min_depth = UINT64_MAX;
  for (const StatePtr& s : states_) {
    min_depth = std::min(min_depth, s->depth);
  }
  double total = 0.0;
  std::vector<double> weights(states_.size());
  for (size_t i = 0; i < states_.size(); ++i) {
    double rel = static_cast<double>(states_[i]->depth - min_depth);
    weights[i] = std::pow(2.0, -std::min(rel, 48.0));
    total += weights[i];
  }
  std::uniform_real_distribution<double> dist(0.0, total);
  double pick = dist(rng_);
  for (size_t i = 0; i < states_.size(); ++i) {
    pick -= weights[i];
    if (pick <= 0.0) {
      return states_[i];
    }
  }
  return states_.back();
}

void RandomStateSearcher::Remove(const StatePtr& state) { EraseState(&states_, state); }

StatePtr RandomStateSearcher::Select() {
  if (states_.empty()) {
    return nullptr;
  }
  std::uniform_int_distribution<size_t> dist(0, states_.size() - 1);
  return states_[dist(rng_)];
}

}  // namespace esd::vm

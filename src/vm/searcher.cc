#include "src/vm/searcher.h"

#include <algorithm>
#include <cmath>

namespace esd::vm {
namespace {

void EraseState(std::vector<StatePtr>* v, const StatePtr& state) {
  v->erase(std::remove(v->begin(), v->end(), state), v->end());
}

// Draws in [0, 1) from the top 53 bits of one engine output. Used instead
// of std::uniform_real_distribution, whose draw sequence is
// implementation-defined — searches must be bit-reproducible across
// standard libraries and platforms for the same seed.
double UnitReal(std::mt19937_64& rng) {
  return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

}  // namespace

void DfsSearcher::Remove(const StatePtr& state) { EraseState(&stack_, state); }

void BfsSearcher::Remove(const StatePtr& state) {
  queue_.erase(std::remove(queue_.begin(), queue_.end(), state), queue_.end());
}

void RandomPathSearcher::Remove(const StatePtr& state) { EraseState(&states_, state); }

StatePtr RandomPathSearcher::Select() {
  if (states_.empty()) {
    return nullptr;
  }
  // Weight ~ 2^-depth, clamped so very deep states keep nonzero mass.
  uint64_t min_depth = UINT64_MAX;
  for (const StatePtr& s : states_) {
    min_depth = std::min(min_depth, s->depth);
  }
  double total = 0.0;
  weights_.assign(states_.size(), 0.0);
  for (size_t i = 0; i < states_.size(); ++i) {
    double rel = static_cast<double>(states_[i]->depth - min_depth);
    weights_[i] = std::pow(2.0, -std::min(rel, 48.0));
    total += weights_[i];
  }
  double pick = UnitReal(rng_) * total;
  for (size_t i = 0; i < states_.size(); ++i) {
    pick -= weights_[i];
    if (pick <= 0.0) {
      return states_[i];
    }
  }
  return states_.back();
}

void RandomStateSearcher::Remove(const StatePtr& state) { EraseState(&states_, state); }

StatePtr RandomStateSearcher::Select() {
  if (states_.empty()) {
    return nullptr;
  }
  // Modulo draw (not std::uniform_int_distribution, which is
  // implementation-defined): bias is negligible for live-set sizes and the
  // sequence is identical on every platform.
  return states_[rng_() % states_.size()];
}

}  // namespace esd::vm

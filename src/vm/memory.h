// ESD VM: copy-on-write symbolic memory.
//
// The address space is a map from object ids to immutable-until-written
// memory objects holding one width-8 Expr per byte. Pointers pack
// (object id, offset) into 64 bits: id in the high 32 bits (id 0 is the null
// object), offset in the low 32. Forked execution states share objects until
// one of them writes — the copy-on-write scheme §6.1 of the paper credits
// for ESD's scalability.
//
// The address space also maintains an incremental 64-bit content hash for
// the state-deduplication layer: every byte written through WriteByte XORs
// out the old byte's contribution and XORs in the new one, so the hash of
// the whole address space stays current at O(1) per store. Zero-valued
// constant bytes contribute nothing, which makes a freshly allocated
// (zero-filled) object hash-neutral and keeps allocation O(size) without a
// hashing pass. Byte contributions use the expression's structural hash, so
// two states that store equal values through different execution orders
// converge to the same content hash.
#ifndef ESD_SRC_VM_MEMORY_H_
#define ESD_SRC_VM_MEMORY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/solver/expr.h"

namespace esd::vm {

enum class ObjectKind : uint8_t { kGlobal, kStack, kHeap };

struct MemoryObject {
  uint32_t id = 0;
  uint32_t size = 0;
  ObjectKind kind = ObjectKind::kGlobal;
  bool freed = false;
  std::string name;  // Global name or allocation-site label, for diagnostics.
  std::vector<solver::ExprRef> bytes;
};

constexpr uint64_t MakePointer(uint32_t object_id, uint32_t offset) {
  return (uint64_t{object_id} << 32) | offset;
}
constexpr uint32_t PointerObject(uint64_t ptr) { return static_cast<uint32_t>(ptr >> 32); }
constexpr uint32_t PointerOffset(uint64_t ptr) { return static_cast<uint32_t>(ptr); }

class AddressSpace {
 public:
  AddressSpace() = default;
  // Copying shares all objects (copy-on-write) and inherits the content hash.
  AddressSpace(const AddressSpace&) = default;
  AddressSpace& operator=(const AddressSpace&) = default;

  // Allocates a zero-filled object; returns its id.
  uint32_t Allocate(uint32_t size, ObjectKind kind, std::string name);
  // Allocates and initializes from raw bytes (zero-filled beyond init).
  uint32_t AllocateInit(uint32_t size, ObjectKind kind, std::string name,
                        const std::vector<uint8_t>& init);

  // Marks an object freed. The object is retained so later accesses can be
  // diagnosed as use-after-free. Returns false if already freed or unknown.
  bool Free(uint32_t id);

  const MemoryObject* Find(uint32_t id) const;
  // Returns a uniquely-owned object for writing, cloning if shared.
  MemoryObject* FindWritable(uint32_t id);

  // Writes one byte, keeping the content hash current. `obj` must belong to
  // this address space (come from FindWritable) and `offset` be in bounds.
  void WriteByte(MemoryObject* obj, uint32_t offset, solver::ExprRef value);

  size_t NumObjects() const { return objects_.size(); }
  uint64_t content_hash() const { return content_hash_; }

 private:
  std::map<uint32_t, std::shared_ptr<MemoryObject>> objects_;
  uint32_t next_id_ = 1;
  uint64_t content_hash_ = 0;
};

}  // namespace esd::vm

#endif  // ESD_SRC_VM_MEMORY_H_

// ESD VM: copy-on-write symbolic memory, page-granular.
//
// The address space maps object ids to memory objects whose contents are
// split into fixed kPageSize-byte pages, each holding one width-8 Expr per
// byte. Pointers pack (object id, offset) into 64 bits: id in the high 32
// bits (id 0 is the null object), offset in the low 32. Forked execution
// states share objects — and, transitively, pages — until one of them
// writes: the copy-on-write scheme §6.1 of the paper credits for ESD's
// scalability. Cloning an object on first write copies page *references*
// (O(size / kPageSize)); the write itself materializes or clones exactly
// one page (O(kPageSize)). A null page reference denotes an all-zero page,
// so zero-fill allocation is O(size / kPageSize) null pointers and
// untouched pages cost nothing to share. Pages are deliberately small (16
// bytes): most objects in the workloads are sync words and counters of at
// most a few words, so a small page keeps the clone-one-page cost of a
// write comparable to the old whole-object clone even for them, while
// large buffers still fork by reference.
//
// The address space also maintains an incremental 64-bit content hash for
// the state-deduplication layer, recombined from per-page hashes: every
// byte written through WriteByte XORs the old byte's contribution out of
// and the new one into both its page hash and the space hash, so the hash
// of the whole address space stays current at O(1) per store and a page
// clone inherits its hash without any re-walk. Zero-valued constant bytes
// contribute nothing, which keeps freshly allocated (zero-filled) objects
// hash-neutral. Byte contributions use the expression's structural hash, so
// two states that store equal values through different execution orders
// converge to the same content hash.
#ifndef ESD_SRC_VM_MEMORY_H_
#define ESD_SRC_VM_MEMORY_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/solver/expr.h"

namespace esd::vm {

enum class ObjectKind : uint8_t { kGlobal, kStack, kHeap };

constexpr uint32_t kPageSizeLog2 = 4;
constexpr uint32_t kPageSize = 1u << kPageSizeLog2;  // 16 bytes.

// One COW unit of object contents. A null byte slot means a zero constant;
// `hash` is the XOR of this page's byte contributions to the space hash.
struct MemoryPage {
  std::array<solver::ExprRef, kPageSize> bytes;
  uint64_t hash = 0;
};
using PageRef = std::shared_ptr<MemoryPage>;

// The canonical zero byte returned for never-written slots.
const solver::ExprRef& ZeroByte();

struct MemoryObject {
  uint32_t id = 0;
  uint32_t size = 0;
  ObjectKind kind = ObjectKind::kGlobal;
  bool freed = false;
  std::string name;  // Global name or allocation-site label, for diagnostics.
  // ceil(size / kPageSize) entries; a null entry is an all-zero page.
  std::vector<PageRef> pages;

  // The byte at `offset` (must be < size); ZeroByte() for untouched slots.
  const solver::ExprRef& ByteAt(uint32_t offset) const {
    const PageRef& page = pages[offset >> kPageSizeLog2];
    if (page == nullptr) {
      return ZeroByte();
    }
    const solver::ExprRef& b = page->bytes[offset & (kPageSize - 1)];
    return b == nullptr ? ZeroByte() : b;
  }
};

constexpr uint64_t MakePointer(uint32_t object_id, uint32_t offset) {
  return (uint64_t{object_id} << 32) | offset;
}
constexpr uint32_t PointerObject(uint64_t ptr) { return static_cast<uint32_t>(ptr >> 32); }
constexpr uint32_t PointerOffset(uint64_t ptr) { return static_cast<uint32_t>(ptr); }

class AddressSpace {
 public:
  AddressSpace() = default;
  // Copying shares all objects (copy-on-write) and inherits the content hash.
  AddressSpace(const AddressSpace&) = default;
  AddressSpace& operator=(const AddressSpace&) = default;

  // Allocates a zero-filled object; returns its id. Ids are dense and
  // sequential from 1, so lookup is an index into objects_.
  uint32_t Allocate(uint32_t size, ObjectKind kind, std::string name);
  // Allocates and initializes from raw bytes (zero-filled beyond init).
  uint32_t AllocateInit(uint32_t size, ObjectKind kind, std::string name,
                        const std::vector<uint8_t>& init);

  // Marks an object freed. The object is retained so later accesses can be
  // diagnosed as use-after-free. Returns false if already freed or unknown.
  bool Free(uint32_t id);

  const MemoryObject* Find(uint32_t id) const;
  // Returns a uniquely-owned object for writing, cloning if shared. The
  // clone copies page references only; pages stay shared until WriteByte.
  MemoryObject* FindWritable(uint32_t id);

  // Writes one byte, keeping the page and content hashes current. `obj`
  // must belong to this address space (come from FindWritable) and
  // `offset` be in bounds. Materializes or clones the touched page.
  void WriteByte(MemoryObject* obj, uint32_t offset, solver::ExprRef value);

  size_t NumObjects() const { return objects_.size(); }
  uint64_t content_hash() const { return content_hash_; }

 private:
  // Indexed by id - 1; ids are allocated densely.
  std::vector<std::shared_ptr<MemoryObject>> objects_;
  uint64_t content_hash_ = 0;
};

}  // namespace esd::vm

#endif  // ESD_SRC_VM_MEMORY_H_

// ESD VM: the exploration engine.
//
// Drives the searcher/interpreter loop of §3.3: pick a state, execute one
// instruction, absorb forks, stop when a state manifests the goal bug (as
// judged by the caller's matcher) or the budget is exhausted. Implements
// EngineServices so schedule strategies can fork snapshot states and
// re-prioritize them (the K_S machinery of §4.1).
#ifndef ESD_SRC_VM_ENGINE_H_
#define ESD_SRC_VM_ENGINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <unordered_map>

#include "src/vm/fingerprint.h"
#include "src/vm/interpreter.h"
#include "src/vm/searcher.h"
#include "src/vm/work_queue.h"

namespace esd::vm {

class Engine : public EngineServices {
 public:
  struct Options {
    uint64_t max_instructions = 100'000'000;
    size_t max_states = 1'000'000;
    double time_cap_seconds = 3600.0;
    // ---- Cooperative portfolio controls (all optional) ----
    // Checked every step; when another worker sets it, Run returns
    // kCancelled. Null for standalone (single-engine) runs.
    const std::atomic<bool>* cancel = nullptr;
    // Portfolio-wide budgets shared by all racing workers. Instruction
    // counts are flushed into `shared_instructions` in batches of up to 256
    // (shrunk for small budgets, so the hot loop stays contention-free yet
    // the check still fires); when the sum crosses
    // `shared_max_instructions` (0 = unlimited) the run stops with
    // kLimitReached. `shared_states`/`shared_max_states` bound the total
    // number of *live* states across the portfolio the same way (the
    // counter is decremented when a state finishes, mirroring the local
    // live_.size() check).
    std::atomic<uint64_t>* shared_instructions = nullptr;
    uint64_t shared_max_instructions = 0;
    std::atomic<uint64_t>* shared_states = nullptr;
    uint64_t shared_max_states = 0;
    // ---- State deduplication (redundant-interleaving pruning) ----
    // When set, every newly registered state and every state passing a
    // synchronization point is fingerprinted; states whose fingerprint was
    // already seen are dropped and counted in Result::states_deduped. The
    // table may be private to this engine or shared by a portfolio (it is
    // internally sharded + locked). Null disables deduplication.
    FingerprintTable* visited = nullptr;
    // ---- Cooperative work-stealing frontier (src/vm/work_queue.h) ----
    // When set, this engine is worker `worker` of `workers` cooperative
    // peers draining one logical frontier: a newly registered fork whose
    // fingerprint mod `workers` names another worker is handed off through
    // the frontier instead of kept; an empty local searcher triggers
    // draining/stealing instead of exhaustion; and Run only returns
    // kExhausted once the frontier's global in-flight count is zero.
    // Null keeps the classic single-frontier behavior.
    WorkQueue* frontier = nullptr;
    size_t worker = 0;
    size_t workers = 1;
  };

  // Decides whether a bug terminating some state is the goal.
  using BugMatcher = std::function<bool(const ExecutionState&, const BugInfo&)>;
  // Invoked for bugs that do not match the goal ("ESD has discovered a
  // different bug. It records the information ... and resumes the search").
  using BugCallback = std::function<void(const ExecutionState&, const BugInfo&)>;

  Engine(Interpreter* interpreter, Searcher* searcher, Options options);

  void Start(StatePtr initial);

  struct Result {
    // kCancelled: another portfolio worker won the race (Options::cancel).
    enum class Status { kGoalFound, kExhausted, kLimitReached, kCancelled };
    Status status = Status::kExhausted;
    StatePtr goal_state;
    BugInfo bug;
    uint64_t instructions = 0;
    uint64_t states_created = 0;
    // States dropped (at fork registration or at a sync point) because an
    // identical state had already been explored. Zero when dedup is off.
    uint64_t states_deduped = 0;
    double seconds = 0.0;
  };

  Result Run(const BugMatcher& matcher);

  void set_unexpected_bug_callback(BugCallback cb) { unexpected_cb_ = std::move(cb); }

  // EngineServices:
  StatePtr ForkState(const ExecutionState& state) override;
  bool AddState(StatePtr state) override;
  void Reprioritize(const StatePtr& state) override;
  StatePtr SharedRef(const ExecutionState& state) override;

  Interpreter& interpreter() { return *interpreter_; }

 private:
  void Register(const StatePtr& state);
  void Unregister(const StatePtr& state);
  // True if `state`'s fingerprint was already visited (dedup enabled only);
  // records the fingerprint otherwise.
  bool AlreadyVisited(const ExecutionState& state);
  // Cooperative mode only: true when this engine participates in a shared
  // frontier (jobs > 1 with --cooperative).
  bool Cooperative() const {
    return options_.frontier != nullptr && options_.workers > 1;
  }
  // Registers a state that arrived from the shared frontier (handed off or
  // stolen): its fingerprint was recorded by the originating worker, so it
  // is admitted without a dedup probe and re-scored by the local searcher.
  void AdoptIncoming(std::vector<StatePtr>* incoming);

  Interpreter* interpreter_;
  Searcher* searcher_;
  Options options_;
  std::unordered_map<const ExecutionState*, StatePtr> live_;
  BugCallback unexpected_cb_;
  uint64_t states_created_ = 0;
  uint64_t states_deduped_ = 0;
};

// Runs a single state to completion without a searcher (concrete stress runs
// and playback). Branch forks are not expected (concrete conditions never
// fork); schedule forks require an engine and are likewise absent here.
struct SingleRunResult {
  bool completed = false;  // Ran to state_done within the budget.
  BugInfo bug;
  uint64_t instructions = 0;
};
SingleRunResult RunToCompletion(Interpreter& interpreter, ExecutionState& state,
                                uint64_t max_instructions);

}  // namespace esd::vm

#endif  // ESD_SRC_VM_ENGINE_H_

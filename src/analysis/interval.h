// Unsigned interval domain for value-range analysis.
//
// An Interval is a contiguous unsigned range [lo, hi] of `width`-bit values
// (lo <= hi; no wraparound representation — an operation whose result could
// wrap returns the full range instead). The domain is deliberately simple:
// it exists to statically discharge the guard chains the fuzzer plants
// (mul/add/icmp-vs-magic-constant pyramids) and the solver's re-queries of
// pinned variables, both of which are exact-point computations where the
// no-wrap transfer functions stay tight.
//
// Soundness invariant (checked by interval_test.cc property tests): for any
// concrete inputs within the argument intervals, the concrete result of the
// matching IR/Expr operation lies within the result interval.
#ifndef ESD_SRC_ANALYSIS_INTERVAL_H_
#define ESD_SRC_ANALYSIS_INTERVAL_H_

#include <algorithm>
#include <cstdint>
#include <optional>

namespace esd::analysis {

struct Interval {
  uint64_t lo = 0;
  uint64_t hi = 0;

  friend bool operator==(const Interval&, const Interval&) = default;

  bool IsPoint() const { return lo == hi; }
  bool Contains(uint64_t v) const { return lo <= v && v <= hi; }
};

inline uint64_t IntervalMask(uint32_t width) {
  return width >= 64 ? ~uint64_t{0} : (uint64_t{1} << width) - 1;
}

inline Interval FullInterval(uint32_t width) {
  return Interval{0, IntervalMask(width)};
}

inline Interval PointInterval(uint64_t v, uint32_t width) {
  v &= IntervalMask(width);
  return Interval{v, v};
}

inline bool IsFullInterval(const Interval& a, uint32_t width) {
  return a.lo == 0 && a.hi == IntervalMask(width);
}

// Lattice join (range union hull) and meet. Meet returns nullopt when the
// ranges are disjoint (the refinement is contradictory).
inline Interval IntervalUnion(const Interval& a, const Interval& b) {
  return Interval{std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

inline std::optional<Interval> IntervalIntersect(const Interval& a,
                                                 const Interval& b) {
  uint64_t lo = std::max(a.lo, b.lo);
  uint64_t hi = std::min(a.hi, b.hi);
  if (lo > hi) {
    return std::nullopt;
  }
  return Interval{lo, hi};
}

namespace interval_detail {

// Signed view of an interval endpoint at `width`.
inline int64_t ToSigned(uint64_t v, uint32_t width) {
  if (width < 64 && ((v >> (width - 1)) & 1) != 0) {
    return static_cast<int64_t>(v | (~uint64_t{0} << width));
  }
  return static_cast<int64_t>(v);
}

// True when every value in `a` has the same sign bit (so the unsigned order
// of the endpoints is also the signed order).
inline bool SameSign(const Interval& a, uint32_t width) {
  if (width >= 64) {
    return (a.lo >> 63) == (a.hi >> 63);
  }
  uint64_t sign = uint64_t{1} << (width - 1);
  return (a.lo & sign) == (a.hi & sign);
}

}  // namespace interval_detail

// --- Transfer functions ---------------------------------------------------
// Each returns the tightest no-wrap range it can prove, falling back to the
// full range when the result could wrap or the shape is not tracked.

inline Interval IntervalAdd(const Interval& a, const Interval& b,
                            uint32_t width) {
  uint64_t mask = IntervalMask(width);
  // Wraps iff the max endpoint sum exceeds the mask (check in 128 bits when
  // width is 64 so the probe itself cannot overflow).
  if (width >= 64) {
    unsigned __int128 hi =
        static_cast<unsigned __int128>(a.hi) + static_cast<unsigned __int128>(b.hi);
    if (hi > mask) {
      return FullInterval(width);
    }
  } else if (a.hi + b.hi > mask) {
    return FullInterval(width);
  }
  return Interval{a.lo + b.lo, a.hi + b.hi};
}

inline Interval IntervalSub(const Interval& a, const Interval& b,
                            uint32_t width) {
  if (a.lo < b.hi) {
    return FullInterval(width);  // Some pair borrows.
  }
  return Interval{a.lo - b.hi, a.hi - b.lo};
}

inline Interval IntervalMul(const Interval& a, const Interval& b,
                            uint32_t width) {
  unsigned __int128 hi =
      static_cast<unsigned __int128>(a.hi) * static_cast<unsigned __int128>(b.hi);
  if (hi > IntervalMask(width)) {
    return FullInterval(width);
  }
  return Interval{a.lo * b.lo, static_cast<uint64_t>(hi)};
}

// Division by zero evaluates to all-ones in this IR/Expr semantics, so any
// divisor range containing 0 forfeits the bound.
inline Interval IntervalUDiv(const Interval& a, const Interval& b,
                             uint32_t width) {
  if (b.lo == 0) {
    return FullInterval(width);
  }
  return Interval{a.lo / b.hi, a.hi / b.lo};
}

inline Interval IntervalURem(const Interval& a, const Interval& b,
                             uint32_t width) {
  if (b.lo == 0) {
    return FullInterval(width);
  }
  if (b.IsPoint() && a.hi < b.lo) {
    return a;  // Entirely below the modulus: identity.
  }
  return Interval{0, b.hi - 1};
}

inline Interval IntervalAnd(const Interval& a, const Interval& b,
                            uint32_t width) {
  (void)width;
  return Interval{0, std::min(a.hi, b.hi)};
}

inline Interval IntervalOr(const Interval& a, const Interval& b,
                           uint32_t width) {
  if (a.IsPoint() && b.IsPoint()) {
    uint64_t v = (a.lo | b.lo) & IntervalMask(width);
    return Interval{v, v};
  }
  return Interval{std::max(a.lo, b.lo), IntervalMask(width)};
}

inline Interval IntervalXor(const Interval& a, const Interval& b,
                            uint32_t width) {
  if (a.IsPoint() && b.IsPoint()) {
    uint64_t v = (a.lo ^ b.lo) & IntervalMask(width);
    return Interval{v, v};
  }
  return FullInterval(width);
}

inline Interval IntervalNot(const Interval& a, uint32_t width) {
  uint64_t mask = IntervalMask(width);
  return Interval{~a.hi & mask, ~a.lo & mask};  // Exact: ~ reverses order.
}

inline Interval IntervalShl(const Interval& a, const Interval& sh,
                            uint32_t width) {
  if (!sh.IsPoint() || sh.lo >= width) {
    return FullInterval(width);
  }
  unsigned __int128 hi = static_cast<unsigned __int128>(a.hi) << sh.lo;
  if (hi > IntervalMask(width)) {
    return FullInterval(width);
  }
  return Interval{a.lo << sh.lo, static_cast<uint64_t>(hi)};
}

inline Interval IntervalLShr(const Interval& a, const Interval& sh,
                             uint32_t width) {
  if (!sh.IsPoint() || sh.lo >= width) {
    return FullInterval(width);
  }
  return Interval{a.lo >> sh.lo, a.hi >> sh.lo};
}

inline Interval IntervalAShr(const Interval& a, const Interval& sh,
                             uint32_t width) {
  if (!sh.IsPoint() || sh.lo >= width ||
      !interval_detail::SameSign(a, width)) {
    return FullInterval(width);
  }
  uint64_t mask = IntervalMask(width);
  uint64_t lo = static_cast<uint64_t>(
                    interval_detail::ToSigned(a.lo, width) >> sh.lo) &
                mask;
  uint64_t hi = static_cast<uint64_t>(
                    interval_detail::ToSigned(a.hi, width) >> sh.lo) &
                mask;
  // Same sign throughout, so the shifted endpoints stay ordered.
  return Interval{lo, hi};
}

inline Interval IntervalZExt(const Interval& a, uint32_t from, uint32_t to) {
  (void)from;
  (void)to;
  return a;  // Values unchanged; the new width only widens headroom.
}

inline Interval IntervalSExt(const Interval& a, uint32_t from, uint32_t to) {
  if (!interval_detail::SameSign(a, from)) {
    return FullInterval(to);
  }
  uint64_t mask = IntervalMask(to);
  uint64_t lo = static_cast<uint64_t>(interval_detail::ToSigned(a.lo, from)) & mask;
  uint64_t hi = static_cast<uint64_t>(interval_detail::ToSigned(a.hi, from)) & mask;
  return Interval{lo, hi};
}

inline Interval IntervalTrunc(const Interval& a, uint32_t to) {
  uint64_t mask = IntervalMask(to);
  // Exact when the kept bits cannot wrap within the range: same high bits
  // at both endpoints.
  if ((a.lo & ~mask) == (a.hi & ~mask)) {
    return Interval{a.lo & mask, a.hi & mask};
  }
  return FullInterval(to);
}

// Comparison: a tri-state i1 interval. [1,1] = definitely true,
// [0,0] = definitely false, [0,1] = unknown.
inline Interval IntervalCmpResult(int tri) {
  if (tri > 0) {
    return Interval{1, 1};
  }
  if (tri == 0) {
    return Interval{0, 0};
  }
  return Interval{0, 1};
}

inline Interval IntervalEq(const Interval& a, const Interval& b) {
  if (a.IsPoint() && b.IsPoint()) {
    return IntervalCmpResult(a.lo == b.lo ? 1 : 0);
  }
  if (a.hi < b.lo || b.hi < a.lo) {
    return IntervalCmpResult(0);  // Disjoint: can never be equal.
  }
  return IntervalCmpResult(-1);
}

inline Interval IntervalUlt(const Interval& a, const Interval& b) {
  if (a.hi < b.lo) {
    return IntervalCmpResult(1);
  }
  if (a.lo >= b.hi) {
    return IntervalCmpResult(0);
  }
  return IntervalCmpResult(-1);
}

inline Interval IntervalUle(const Interval& a, const Interval& b) {
  if (a.hi <= b.lo) {
    return IntervalCmpResult(1);
  }
  if (a.lo > b.hi) {
    return IntervalCmpResult(0);
  }
  return IntervalCmpResult(-1);
}

inline Interval IntervalSlt(const Interval& a, const Interval& b,
                            uint32_t width) {
  using interval_detail::SameSign;
  using interval_detail::ToSigned;
  if (!SameSign(a, width) || !SameSign(b, width)) {
    return IntervalCmpResult(-1);
  }
  int64_t alo = ToSigned(a.lo, width), ahi = ToSigned(a.hi, width);
  int64_t blo = ToSigned(b.lo, width), bhi = ToSigned(b.hi, width);
  if (ahi < blo) {
    return IntervalCmpResult(1);
  }
  if (alo >= bhi) {
    return IntervalCmpResult(0);
  }
  return IntervalCmpResult(-1);
}

inline Interval IntervalSle(const Interval& a, const Interval& b,
                            uint32_t width) {
  using interval_detail::SameSign;
  using interval_detail::ToSigned;
  if (!SameSign(a, width) || !SameSign(b, width)) {
    return IntervalCmpResult(-1);
  }
  int64_t alo = ToSigned(a.lo, width), ahi = ToSigned(a.hi, width);
  int64_t blo = ToSigned(b.lo, width), bhi = ToSigned(b.hi, width);
  if (ahi <= blo) {
    return IntervalCmpResult(1);
  }
  if (alo > bhi) {
    return IntervalCmpResult(0);
  }
  return IntervalCmpResult(-1);
}

// select(c, a, b): pick the arm(s) `c` permits.
inline Interval IntervalSelect(const Interval& c, const Interval& a,
                               const Interval& b) {
  if (c.lo >= 1) {
    return a;
  }
  if (c.hi == 0) {
    return b;
  }
  return IntervalUnion(a, b);
}

}  // namespace esd::analysis

#endif  // ESD_SRC_ANALYSIS_INTERVAL_H_

#include "src/analysis/cfg.h"

namespace esd::analysis {

Cfg::Cfg(const ir::Module& module, uint32_t func_index) : func_index_(func_index) {
  const ir::Function& fn = module.Func(func_index);
  blocks_.resize(fn.blocks.size());
  for (uint32_t b = 0; b < fn.blocks.size(); ++b) {
    const ir::BasicBlock& bb = fn.blocks[b];
    if (bb.insts.empty()) {
      continue;
    }
    const ir::Instruction& term = bb.insts.back();
    if (term.op == ir::Opcode::kBr) {
      blocks_[b].succs.push_back(term.succ_true);
    } else if (term.op == ir::Opcode::kCondBr) {
      blocks_[b].succs.push_back(term.succ_true);
      if (term.succ_false != term.succ_true) {
        blocks_[b].succs.push_back(term.succ_false);
      }
    }
  }
  for (uint32_t b = 0; b < blocks_.size(); ++b) {
    for (uint32_t s : blocks_[b].succs) {
      blocks_[s].preds.push_back(b);
    }
  }
}

}  // namespace esd::analysis

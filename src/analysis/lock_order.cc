#include "src/analysis/lock_order.h"

#include <algorithm>
#include <set>

namespace esd::analysis {
namespace {

// Resolves a mutex_lock/mutex_unlock operand to a global index, if it is a
// direct global reference (the common case for library-wide mutexes).
bool GlobalMutexOperand(const ir::Instruction& inst, uint32_t* global_index) {
  if (inst.operands.empty() ||
      inst.operands[0].kind != ir::Value::Kind::kGlobalRef) {
    return false;
  }
  *global_index = inst.operands[0].index;
  return true;
}

class Walker {
 public:
  explicit Walker(const ir::Module& module) : module_(module) {}

  void WalkEntry(uint32_t func) {
    std::set<uint32_t> held;
    std::vector<uint32_t> call_stack;
    WalkFunction(func, &held, &call_stack);
  }

  std::vector<LockOrderEdge> TakeEdges() { return std::move(edges_); }

 private:
  // Path-insensitively walks blocks in order, maintaining the held set. A
  // block is visited at most once per (function, entry-held-set) pair to
  // bound the traversal.
  void WalkFunction(uint32_t func, std::set<uint32_t>* held,
                    std::vector<uint32_t>* call_stack) {
    const ir::Function& fn = module_.Func(func);
    if (fn.is_external || fn.blocks.empty()) {
      return;
    }
    if (std::find(call_stack->begin(), call_stack->end(), func) !=
        call_stack->end()) {
      return;  // Recursion: stop.
    }
    call_stack->push_back(func);
    // Worklist of (block, held-set at entry).
    std::vector<std::pair<uint32_t, std::set<uint32_t>>> work;
    std::set<std::pair<uint32_t, std::set<uint32_t>>> seen;
    work.emplace_back(0, *held);
    while (!work.empty()) {
      auto [b, entry_held] = work.back();
      work.pop_back();
      if (!seen.emplace(b, entry_held).second) {
        continue;
      }
      std::set<uint32_t> current = entry_held;
      const ir::BasicBlock& bb = fn.blocks[b];
      for (uint32_t i = 0; i < bb.insts.size(); ++i) {
        const ir::Instruction& inst = bb.insts[i];
        if (inst.op != ir::Opcode::kCall || inst.callee == ir::kInvalidIndex) {
          continue;
        }
        const ir::Function& callee = module_.Func(inst.callee);
        uint32_t mutex_global = 0;
        if (callee.is_external && callee.name == "mutex_lock" &&
            GlobalMutexOperand(inst, &mutex_global)) {
          for (uint32_t held_mutex : current) {
            if (held_mutex != mutex_global) {
              edges_.push_back(LockOrderEdge{held_mutex, mutex_global,
                                             ir::InstRef{func, b, i}});
            }
          }
          current.insert(mutex_global);
        } else if (callee.is_external && callee.name == "mutex_unlock" &&
                   GlobalMutexOperand(inst, &mutex_global)) {
          current.erase(mutex_global);
        } else if (!callee.is_external) {
          WalkFunction(inst.callee, &current, call_stack);
        }
      }
      if (!bb.insts.empty()) {
        const ir::Instruction& term = bb.insts.back();
        if (term.op == ir::Opcode::kBr) {
          work.emplace_back(term.succ_true, current);
        } else if (term.op == ir::Opcode::kCondBr) {
          work.emplace_back(term.succ_true, current);
          work.emplace_back(term.succ_false, current);
        }
      }
    }
    call_stack->pop_back();
  }

  const ir::Module& module_;
  std::vector<LockOrderEdge> edges_;
};

}  // namespace

std::vector<LockOrderEdge> CollectLockOrderEdges(const ir::Module& module) {
  Walker walker(module);
  // Thread entry points: main plus every address-taken function (candidate
  // thread start routines).
  std::set<uint32_t> entries;
  if (auto main_fn = module.FindFunction("main")) {
    entries.insert(*main_fn);
  }
  for (uint32_t f = 0; f < module.NumFunctions(); ++f) {
    const ir::Function& fn = module.Func(f);
    for (const ir::BasicBlock& bb : fn.blocks) {
      for (const ir::Instruction& inst : bb.insts) {
        for (const ir::Value& v : inst.operands) {
          if (v.kind == ir::Value::Kind::kFuncRef) {
            entries.insert(v.index);
          }
        }
      }
    }
  }
  for (uint32_t entry : entries) {
    walker.WalkEntry(entry);
  }
  return walker.TakeEdges();
}

std::vector<LockOrderWarning> FindLockOrderWarnings(const ir::Module& module) {
  std::vector<LockOrderEdge> edges = CollectLockOrderEdges(module);
  std::vector<LockOrderWarning> warnings;
  std::set<std::pair<uint64_t, uint64_t>> reported;
  auto site_key = [](const LockOrderEdge& e) {
    return (static_cast<uint64_t>(e.acquire_site.func) << 40) |
           (static_cast<uint64_t>(e.acquire_site.block) << 16) |
           e.acquire_site.inst;
  };
  for (size_t i = 0; i < edges.size(); ++i) {
    for (size_t j = i + 1; j < edges.size(); ++j) {
      if (edges[i].first_mutex_global != edges[j].second_mutex_global ||
          edges[i].second_mutex_global != edges[j].first_mutex_global) {
        continue;
      }
      // One warning per unordered pair of acquisition sites.
      uint64_t a = site_key(edges[i]);
      uint64_t b = site_key(edges[j]);
      if (!reported.emplace(std::min(a, b), std::max(a, b)).second) {
        continue;
      }
      warnings.push_back(LockOrderWarning{edges[i], edges[j]});
    }
  }
  return warnings;
}

}  // namespace esd::analysis

#include "src/analysis/lock_order.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>

namespace esd::analysis {
namespace {

// Resolves a sync call's lock operand to a global index, if it is a direct
// global reference (the common case for library-wide sync objects).
bool GlobalMutexOperand(const ir::Instruction& inst, uint32_t* global_index) {
  if (inst.operands.empty() ||
      inst.operands[0].kind != ir::Value::Kind::kGlobalRef) {
    return false;
  }
  *global_index = inst.operands[0].index;
  return true;
}

// How a sync external participates in the lock-order walk.
struct AcquireClass {
  bool acquires = false;  // Enters the held set.
  bool releases = false;  // Leaves the held set.
  bool blocking = false;  // A blocking acquire records an order edge.
  bool shared = false;    // Read-mode acquisition (rwlock_rdlock).
};

AcquireClass ClassifySyncCall(const std::string& name) {
  if (name == "mutex_lock") {
    return {true, false, true, false};
  }
  if (name == "mutex_trylock" || name == "rwlock_trywrlock") {
    return {true, false, false, false};  // Non-blocking: held, no edge.
  }
  if (name == "rwlock_tryrdlock") {
    return {true, false, false, true};
  }
  if (name == "rwlock_wrlock") {
    return {true, false, true, false};
  }
  if (name == "rwlock_rdlock") {
    return {true, false, true, true};
  }
  if (name == "sem_wait") {
    // Binary-semaphore-as-mutex usage: a blocking acquire of the sem
    // global, released by sem_post.
    return {true, false, true, false};
  }
  if (name == "mutex_unlock" || name == "rwlock_unlock" || name == "sem_post") {
    return {false, true, false, false};
  }
  return {};
}

class Walker {
 public:
  // Held set: global index -> held in shared (read) mode.
  using HeldSet = std::map<uint32_t, bool>;

  explicit Walker(const ir::Module& module) : module_(module) {}

  void WalkEntry(uint32_t func) {
    HeldSet held;
    std::vector<uint32_t> call_stack;
    WalkFunction(func, &held, &call_stack);
  }

  std::vector<LockOrderEdge> TakeEdges() { return std::move(edges_); }

 private:
  // Path-insensitively walks blocks in order, maintaining the held set. A
  // block is visited at most once per (function, entry-held-set) pair to
  // bound the traversal.
  void WalkFunction(uint32_t func, HeldSet* held,
                    std::vector<uint32_t>* call_stack) {
    const ir::Function& fn = module_.Func(func);
    if (fn.is_external || fn.blocks.empty()) {
      return;
    }
    if (std::find(call_stack->begin(), call_stack->end(), func) !=
        call_stack->end()) {
      return;  // Recursion: stop.
    }
    call_stack->push_back(func);
    // Worklist of (block, held-set at entry).
    std::vector<std::pair<uint32_t, HeldSet>> work;
    std::set<std::pair<uint32_t, HeldSet>> seen;
    work.emplace_back(0, *held);
    while (!work.empty()) {
      auto [b, entry_held] = work.back();
      work.pop_back();
      if (!seen.emplace(b, entry_held).second) {
        continue;
      }
      HeldSet current = entry_held;
      const ir::BasicBlock& bb = fn.blocks[b];
      for (uint32_t i = 0; i < bb.insts.size(); ++i) {
        const ir::Instruction& inst = bb.insts[i];
        if (inst.op != ir::Opcode::kCall || inst.callee == ir::kInvalidIndex) {
          continue;
        }
        const ir::Function& callee = module_.Func(inst.callee);
        if (!callee.is_external) {
          WalkFunction(inst.callee, &current, call_stack);
          continue;
        }
        AcquireClass cls = ClassifySyncCall(callee.name);
        uint32_t lock_global = 0;
        if ((!cls.acquires && !cls.releases) ||
            !GlobalMutexOperand(inst, &lock_global)) {
          continue;
        }
        if (cls.releases) {
          current.erase(lock_global);
          continue;
        }
        if (cls.blocking) {
          for (const auto& [held_lock, held_shared] : current) {
            if (held_lock != lock_global) {
              edges_.push_back(LockOrderEdge{held_lock, lock_global,
                                             ir::InstRef{func, b, i},
                                             held_shared, cls.shared});
            }
          }
        }
        // Strongest mode wins on re-acquisition: a read-to-write upgrade
        // must flip the held entry to exclusive, or the shared/shared
        // warning filter would suppress real inversions downstream.
        auto [entry, inserted] = current.emplace(lock_global, cls.shared);
        if (!inserted) {
          entry->second = entry->second && cls.shared;
        }
      }
      if (!bb.insts.empty()) {
        const ir::Instruction& term = bb.insts.back();
        if (term.op == ir::Opcode::kBr) {
          work.emplace_back(term.succ_true, current);
        } else if (term.op == ir::Opcode::kCondBr) {
          work.emplace_back(term.succ_true, current);
          work.emplace_back(term.succ_false, current);
        }
      }
    }
    call_stack->pop_back();
  }

  const ir::Module& module_;
  std::vector<LockOrderEdge> edges_;
};

}  // namespace

std::vector<LockOrderEdge> CollectLockOrderEdges(const ir::Module& module) {
  Walker walker(module);
  // Thread entry points: main plus every address-taken function (candidate
  // thread start routines).
  std::set<uint32_t> entries;
  if (auto main_fn = module.FindFunction("main")) {
    entries.insert(*main_fn);
  }
  for (uint32_t f = 0; f < module.NumFunctions(); ++f) {
    const ir::Function& fn = module.Func(f);
    for (const ir::BasicBlock& bb : fn.blocks) {
      for (const ir::Instruction& inst : bb.insts) {
        for (const ir::Value& v : inst.operands) {
          if (v.kind == ir::Value::Kind::kFuncRef) {
            entries.insert(v.index);
          }
        }
      }
    }
  }
  for (uint32_t entry : entries) {
    walker.WalkEntry(entry);
  }
  return walker.TakeEdges();
}

std::vector<LockOrderWarning> FindLockOrderWarnings(const ir::Module& module) {
  std::vector<LockOrderEdge> edges = CollectLockOrderEdges(module);
  std::vector<LockOrderWarning> warnings;
  std::set<std::pair<uint64_t, uint64_t>> reported;
  auto site_key = [](const LockOrderEdge& e) {
    return (static_cast<uint64_t>(e.acquire_site.func) << 40) |
           (static_cast<uint64_t>(e.acquire_site.block) << 16) |
           e.acquire_site.inst;
  };
  for (size_t i = 0; i < edges.size(); ++i) {
    for (size_t j = i + 1; j < edges.size(); ++j) {
      if (edges[i].first_mutex_global != edges[j].second_mutex_global ||
          edges[i].second_mutex_global != edges[j].first_mutex_global) {
        continue;
      }
      // Mode filter: the inversion deadlocks only if on *each* lock the
      // hold and the acquire conflict — shared/shared (two read holds of
      // one rwlock) never blocks, so such pairs are not warnings.
      bool lock_a_shared =
          edges[i].first_shared && edges[j].second_shared;
      bool lock_b_shared =
          edges[i].second_shared && edges[j].first_shared;
      if (lock_a_shared || lock_b_shared) {
        continue;
      }
      // One warning per unordered pair of acquisition sites.
      uint64_t a = site_key(edges[i]);
      uint64_t b = site_key(edges[j]);
      if (!reported.emplace(std::min(a, b), std::max(a, b)).second) {
        continue;
      }
      warnings.push_back(LockOrderWarning{edges[i], edges[j]});
    }
  }
  return warnings;
}

}  // namespace esd::analysis

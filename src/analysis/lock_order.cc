#include "src/analysis/lock_order.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <tuple>

#include "src/analysis/dataflow.h"

namespace esd::analysis {
namespace {

// Resolves a sync call's lock operand to a global index, if it is a direct
// global reference (the common case for library-wide sync objects).
bool GlobalMutexOperand(const ir::Instruction& inst, uint32_t* global_index) {
  if (inst.operands.empty() ||
      inst.operands[0].kind != ir::Value::Kind::kGlobalRef) {
    return false;
  }
  *global_index = inst.operands[0].index;
  return true;
}

// How a sync external participates in the lock-order walk.
struct AcquireClass {
  bool acquires = false;  // Enters the held set.
  bool releases = false;  // Leaves the held set.
  bool blocking = false;  // A blocking acquire records an order edge.
  bool shared = false;    // Read-mode acquisition (rwlock_rdlock).
};

AcquireClass ClassifySyncCall(const std::string& name) {
  if (name == "mutex_lock") {
    return {true, false, true, false};
  }
  if (name == "mutex_trylock" || name == "rwlock_trywrlock") {
    return {true, false, false, false};  // Non-blocking: held, no edge.
  }
  if (name == "rwlock_tryrdlock") {
    return {true, false, false, true};
  }
  if (name == "rwlock_wrlock") {
    return {true, false, true, false};
  }
  if (name == "rwlock_rdlock") {
    return {true, false, true, true};
  }
  if (name == "sem_wait") {
    // Binary-semaphore-as-mutex usage: a blocking acquire of the sem
    // global, released by sem_post.
    return {true, false, true, false};
  }
  if (name == "mutex_unlock" || name == "rwlock_unlock" || name == "sem_post") {
    return {false, true, false, false};
  }
  return {};
}

// Held set: global index -> held in shared (read) mode.
using HeldSet = std::map<uint32_t, bool>;

// Canonical, totally ordered edge identity for dedup and output ordering.
using EdgeKey =
    std::tuple<uint32_t, uint32_t, uint32_t, uint32_t, uint32_t, bool, bool>;

// Path-insensitive lock-order analysis on the generic dataflow framework.
// One forward DataflowEngine run per (function, entry-held-set) invocation;
// the abstract state at a block is the set of distinct held-lock maps that
// reach it (join = set union), which is exactly the set of (block, held)
// pairs the original hand-rolled walker enumerated. Internal calls recurse
// like the walker did: the callee is analyzed with the caller's held set at
// the call site, and its acquisitions do not flow back to the caller.
class LockOrderAnalyzer {
 public:
  LockOrderAnalyzer(const ir::Module& module, AnalysisContext* ctx)
      : module_(module), ctx_(ctx) {}

  void AnalyzeEntry(uint32_t func) {
    std::vector<uint32_t> call_stack;
    Walk(func, HeldSet{}, &call_stack);
  }

  std::vector<LockOrderEdge> TakeEdges() const {
    std::vector<LockOrderEdge> out;
    out.reserve(edges_.size());
    for (const EdgeKey& k : edges_) {
      out.push_back(LockOrderEdge{
          std::get<0>(k), std::get<1>(k),
          ir::InstRef{std::get<2>(k), std::get<3>(k), std::get<4>(k)},
          std::get<5>(k), std::get<6>(k)});
    }
    return out;
  }

 private:
  struct Policy {
    using State = std::set<HeldSet>;
    LockOrderAnalyzer* self;
    uint32_t func;
    const HeldSet* entry_held;
    std::vector<uint32_t>* call_stack;

    State InitialState(uint32_t block) const {
      return block == 0 ? State{*entry_held} : State{};
    }
    bool Join(State* into, const State& from) const {
      bool changed = false;
      for (const HeldSet& h : from) {
        changed |= into->insert(h).second;
      }
      return changed;
    }
    void Transfer(const ir::Instruction& inst, uint32_t b, uint32_t i,
                  State* state) const {
      if (inst.op != ir::Opcode::kCall || inst.callee == ir::kInvalidIndex ||
          state->empty()) {
        return;
      }
      State next;
      for (const HeldSet& held : *state) {
        HeldSet h = held;
        self->ApplyCall(inst, func, b, i, &h, call_stack);
        next.insert(std::move(h));
      }
      *state = std::move(next);
    }
  };

  void ApplyCall(const ir::Instruction& inst, uint32_t func, uint32_t b,
                 uint32_t i, HeldSet* held,
                 std::vector<uint32_t>* call_stack) {
    const ir::Function& callee = module_.Func(inst.callee);
    if (!callee.is_external) {
      // Analyze the callee under the held set at this call site. The
      // caller's set is deliberately left unchanged: callee-internal
      // acquisitions did not propagate back in the original walker either.
      Walk(inst.callee, *held, call_stack);
      return;
    }
    AcquireClass cls = ClassifySyncCall(callee.name);
    uint32_t lock_global = 0;
    if ((!cls.acquires && !cls.releases) ||
        !GlobalMutexOperand(inst, &lock_global)) {
      return;
    }
    if (cls.releases) {
      held->erase(lock_global);
      return;
    }
    if (cls.blocking) {
      for (const auto& [held_lock, held_shared] : *held) {
        if (held_lock != lock_global) {
          edges_.emplace(held_lock, lock_global, func, b, i, held_shared,
                         cls.shared);
        }
      }
    }
    // Strongest mode wins on re-acquisition: a read-to-write upgrade must
    // flip the held entry to exclusive, or the shared/shared warning filter
    // would suppress real inversions downstream.
    auto [entry, inserted] = held->emplace(lock_global, cls.shared);
    if (!inserted) {
      entry->second = entry->second && cls.shared;
    }
  }

  void Walk(uint32_t func, const HeldSet& entry_held,
            std::vector<uint32_t>* call_stack) {
    const ir::Function& fn = module_.Func(func);
    if (fn.is_external || fn.blocks.empty()) {
      return;
    }
    if (std::find(call_stack->begin(), call_stack->end(), func) !=
        call_stack->end()) {
      return;  // Recursion: stop.
    }
    // Edges recorded by an invocation depend only on (function, entry-held,
    // recursion cut), so identical invocations are walked once. The cut
    // context is part of the key: under a different call stack a callee
    // that was previously cut may contribute new edges.
    if (!visited_
             .emplace(func, entry_held,
                      std::vector<uint32_t>(*call_stack))
             .second) {
      return;
    }
    call_stack->push_back(func);
    Policy policy{this, func, &entry_held, call_stack};
    DataflowEngine<Policy> engine(fn, ctx_->GetCfg(func), Direction::kForward,
                                  &policy);
    engine.Run();
    call_stack->pop_back();
  }

  const ir::Module& module_;
  AnalysisContext* ctx_;
  std::set<std::tuple<uint32_t, HeldSet, std::vector<uint32_t>>> visited_;
  std::set<EdgeKey> edges_;
};

}  // namespace

std::vector<LockOrderEdge> CollectLockOrderEdges(const ir::Module& module,
                                                 AnalysisContext* ctx) {
  AnalysisContext local(&module);
  LockOrderAnalyzer analyzer(module, ctx != nullptr ? ctx : &local);
  // Thread entry points: main plus every address-taken function (candidate
  // thread start routines).
  std::set<uint32_t> entries;
  if (auto main_fn = module.FindFunction("main")) {
    entries.insert(*main_fn);
  }
  for (uint32_t f = 0; f < module.NumFunctions(); ++f) {
    const ir::Function& fn = module.Func(f);
    for (const ir::BasicBlock& bb : fn.blocks) {
      for (const ir::Instruction& inst : bb.insts) {
        for (const ir::Value& v : inst.operands) {
          if (v.kind == ir::Value::Kind::kFuncRef) {
            entries.insert(v.index);
          }
        }
      }
    }
  }
  for (uint32_t entry : entries) {
    analyzer.AnalyzeEntry(entry);
  }
  return analyzer.TakeEdges();
}

std::vector<LockOrderWarning> FindLockOrderWarnings(const ir::Module& module) {
  std::vector<LockOrderEdge> edges = CollectLockOrderEdges(module);
  std::vector<LockOrderWarning> warnings;
  std::set<std::pair<uint64_t, uint64_t>> reported;
  auto site_key = [](const LockOrderEdge& e) {
    return (static_cast<uint64_t>(e.acquire_site.func) << 40) |
           (static_cast<uint64_t>(e.acquire_site.block) << 16) |
           e.acquire_site.inst;
  };
  for (size_t i = 0; i < edges.size(); ++i) {
    for (size_t j = i + 1; j < edges.size(); ++j) {
      if (edges[i].first_mutex_global != edges[j].second_mutex_global ||
          edges[i].second_mutex_global != edges[j].first_mutex_global) {
        continue;
      }
      // Mode filter: the inversion deadlocks only if on *each* lock the
      // hold and the acquire conflict — shared/shared (two read holds of
      // one rwlock) never blocks, so such pairs are not warnings.
      bool lock_a_shared =
          edges[i].first_shared && edges[j].second_shared;
      bool lock_b_shared =
          edges[i].second_shared && edges[j].first_shared;
      if (lock_a_shared || lock_b_shared) {
        continue;
      }
      // One warning per unordered pair of acquisition sites.
      uint64_t a = site_key(edges[i]);
      uint64_t b = site_key(edges[j]);
      if (!reported.emplace(std::min(a, b), std::max(a, b)).second) {
        continue;
      }
      warnings.push_back(LockOrderWarning{edges[i], edges[j]});
    }
  }
  return warnings;
}

}  // namespace esd::analysis

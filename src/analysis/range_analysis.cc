#include "src/analysis/range_analysis.h"

#include "src/analysis/dataflow.h"

namespace esd::analysis {
namespace {

using State = RangeAnalysis::State;  // via friend RangePolicy below

Interval OperandRange(const State& s, const ir::Value& v) {
  uint32_t width = ir::BitWidth(v.type);
  if (width == 0) {
    width = 64;
  }
  switch (v.kind) {
    case ir::Value::Kind::kConst:
      return PointInterval(v.imm, width);
    case ir::Value::Kind::kReg: {
      auto it = s.regs.find(v.index);
      return it == s.regs.end() ? FullInterval(width) : it->second;
    }
    default:
      return FullInterval(width);  // Pointers: opaque runtime values.
  }
}

// Inverts a tri-state i1 interval (for kNe and the negated predicates).
Interval InvertCmp(const Interval& r) {
  if (r == Interval{1, 1}) {
    return Interval{0, 0};
  }
  if (r == Interval{0, 0}) {
    return Interval{1, 1};
  }
  return Interval{0, 1};
}

Interval CmpRange(ir::CmpPred pred, const Interval& a, const Interval& b,
                  uint32_t width) {
  switch (pred) {
    case ir::CmpPred::kEq:
      return IntervalEq(a, b);
    case ir::CmpPred::kNe:
      return InvertCmp(IntervalEq(a, b));
    case ir::CmpPred::kUlt:
      return IntervalUlt(a, b);
    case ir::CmpPred::kUle:
      return IntervalUle(a, b);
    case ir::CmpPred::kUgt:
      return IntervalUlt(b, a);
    case ir::CmpPred::kUge:
      return IntervalUle(b, a);
    case ir::CmpPred::kSlt:
      return IntervalSlt(a, b, width);
    case ir::CmpPred::kSle:
      return IntervalSle(a, b, width);
    case ir::CmpPred::kSgt:
      return IntervalSlt(b, a, width);
    case ir::CmpPred::kSge:
      return IntervalSle(b, a, width);
  }
  return Interval{0, 1};
}

Interval ResultRange(const ir::Instruction& inst, const State& s) {
  uint32_t w = ir::BitWidth(inst.type);
  if (w == 0) {
    w = 64;
  }
  auto op0 = [&] { return OperandRange(s, inst.operands[0]); };
  auto op1 = [&] { return OperandRange(s, inst.operands[1]); };
  switch (inst.op) {
    case ir::Opcode::kAdd:
      return IntervalAdd(op0(), op1(), w);
    case ir::Opcode::kSub:
      return IntervalSub(op0(), op1(), w);
    case ir::Opcode::kMul:
      return IntervalMul(op0(), op1(), w);
    case ir::Opcode::kUDiv:
      return IntervalUDiv(op0(), op1(), w);
    case ir::Opcode::kURem:
      return IntervalURem(op0(), op1(), w);
    case ir::Opcode::kAnd:
      return IntervalAnd(op0(), op1(), w);
    case ir::Opcode::kOr:
      return IntervalOr(op0(), op1(), w);
    case ir::Opcode::kXor:
      return IntervalXor(op0(), op1(), w);
    case ir::Opcode::kShl:
      return IntervalShl(op0(), op1(), w);
    case ir::Opcode::kLShr:
      return IntervalLShr(op0(), op1(), w);
    case ir::Opcode::kAShr:
      return IntervalAShr(op0(), op1(), w);
    case ir::Opcode::kNot:
      return IntervalNot(op0(), w);
    case ir::Opcode::kICmp:
      return CmpRange(inst.pred, op0(), op1(),
                      ir::BitWidth(inst.operands[0].type));
    case ir::Opcode::kZExt:
      return IntervalZExt(op0(), ir::BitWidth(inst.operands[0].type), w);
    case ir::Opcode::kSExt:
      return IntervalSExt(op0(), ir::BitWidth(inst.operands[0].type), w);
    case ir::Opcode::kTrunc:
      return IntervalTrunc(op0(), w);
    case ir::Opcode::kSelect:
      return IntervalSelect(op0(), op1(), OperandRange(s, inst.operands[2]));
    default:
      // Loads, calls, allocas, geps: environment-dependent.
      return FullInterval(w);
  }
}

}  // namespace

// Forward policy. Join is a plain per-register range union: registers are
// single-assignment and the IR has no phis, so a register's interval is the
// same along every path on which its unique definition executed — loops
// cannot grow an interval round after round (loop-carried values go through
// memory, which is full-range immediately), and the fixpoint terminates
// without widening.
struct RangePolicy {
  using State = RangeAnalysis::State;
  const ir::Function* fn;

  State InitialState(uint32_t block) const {
    State s;
    s.reachable = block == 0;  // Entry: params unconstrained, all else bottom.
    return s;
  }

  bool Join(State* into, const State& from) const {
    if (!from.reachable) {
      return false;
    }
    if (!into->reachable) {
      *into = from;
      return true;
    }
    bool changed = false;
    for (auto it = into->regs.begin(); it != into->regs.end();) {
      auto fit = from.regs.find(it->first);
      if (fit == from.regs.end()) {
        it = into->regs.erase(it);  // Full on the other path.
        changed = true;
        continue;
      }
      Interval u = IntervalUnion(it->second, fit->second);
      if (!(u == it->second)) {
        it->second = u;
        changed = true;
      }
      ++it;
    }
    return changed;
  }

  void Transfer(const ir::Instruction& inst, uint32_t /*block*/,
                uint32_t /*i*/, State* s) const {
    if (!s->reachable || inst.result < 0) {
      return;
    }
    uint32_t w = ir::BitWidth(inst.type);
    if (w == 0) {
      w = 64;
    }
    Interval r = ResultRange(inst, *s);
    if (IsFullInterval(r, w)) {
      s->regs.erase(static_cast<uint32_t>(inst.result));
    } else {
      s->regs[static_cast<uint32_t>(inst.result)] = r;
    }
  }
};

RangeAnalysis::RangeAnalysis(const ir::Function& fn, const Cfg& cfg) : fn_(fn) {
  block_start_.resize(fn.blocks.size(), 0);
  size_t total = 0;
  for (size_t b = 0; b < fn.blocks.size(); ++b) {
    block_start_[b] = total;
    total += fn.blocks[b].insts.size();
  }
  pre_.resize(total);
  if (fn.blocks.empty()) {
    return;
  }
  RangePolicy policy{&fn};
  DataflowEngine<RangePolicy> engine(fn, cfg, Direction::kForward, &policy);
  engine.Run();
  for (uint32_t b = 0; b < fn.blocks.size(); ++b) {
    size_t start = block_start_[b];
    size_t n = fn.blocks[b].insts.size();
    if (n == 0) {
      continue;
    }
    pre_[start] = engine.EntryState(b);
    engine.FoldBlock(b, [&](uint32_t i, const State& s) {
      if (i + 1 < n) {
        pre_[start + i + 1] = s;
      }
    });
  }
}

Interval RangeAnalysis::RegRange(uint32_t reg, uint32_t block,
                                 uint32_t inst) const {
  if (block >= block_start_.size()) {
    return FullInterval(64);
  }
  size_t idx = block_start_[block] + inst;
  if (idx >= pre_.size()) {
    return FullInterval(64);
  }
  const State& s = pre_[idx];
  auto it = s.regs.find(reg);
  return it == s.regs.end() ? FullInterval(64) : it->second;
}

Interval RangeAnalysis::RangeOf(const ir::Value& v, uint32_t block,
                                uint32_t inst) const {
  uint32_t width = ir::BitWidth(v.type);
  if (width == 0) {
    width = 64;
  }
  if (v.kind == ir::Value::Kind::kConst) {
    return PointInterval(v.imm, width);
  }
  if (v.kind != ir::Value::Kind::kReg) {
    return FullInterval(width);
  }
  Interval r = RegRange(v.index, block, inst);
  auto meet = IntervalIntersect(r, FullInterval(width));
  return meet.has_value() ? *meet : FullInterval(width);
}

}  // namespace esd::analysis

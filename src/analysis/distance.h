// ESD analysis: the proximity heuristic (paper Algorithm 1).
//
// Estimates, for an execution state, the least number of instructions that
// must execute before the state reaches a goal instruction. The estimate
// combines:
//   - intra-procedural shortest paths over the CFG, where a call instruction
//     costs 1 + the callee's min entry-to-return cost (lines 8-16);
//   - lifting over the call stack: the goal may be reached after returning
//     to a caller (lines 2-6, made cumulative across frames here);
//   - call-entry lifting: reaching a call site whose callee can reach the
//     goal counts as progress (the inter-procedural closure the paper's
//     prototype needs to guide a search that starts in main toward a goal
//     deep inside callees);
//   - recursion and unresolved indirect calls cost a fixed 1000 instructions
//     (§3.4).
// All tables are computed lazily per goal and cached — §6.2 calls this
// caching "crucial" since state selection happens at instruction granularity.
#ifndef ESD_SRC_ANALYSIS_DISTANCE_H_
#define ESD_SRC_ANALYSIS_DISTANCE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "src/analysis/cfg.h"
#include "src/analysis/context.h"
#include "src/ir/module.h"

namespace esd::analysis {

inline constexpr uint64_t kRecursionCost = 1000;

class DistanceCalculator {
 public:
  // When `ctx` is null the calculator owns a private AnalysisContext;
  // passing one in shares the per-module CFG cache with the other analyses.
  explicit DistanceCalculator(const ir::Module* module,
                              AnalysisContext* ctx = nullptr);

  // Min instructions from `func`'s entry to any of its returns (kInfDistance
  // if it cannot return).
  uint64_t FunctionCost(uint32_t func);

  // Min instructions from `at` to the nearest return of its function
  // (Algorithm 1, dist2ret).
  uint64_t Dist2Ret(ir::InstRef at);

  // Min instructions from `at` to `goal`, allowing descent into callees that
  // can reach the goal, but not returns (Algorithm 1 `distance`, plus
  // call-entry lifting).
  uint64_t Distance(ir::InstRef at, ir::InstRef goal);

  // Algorithm 1 top level: distance from a thread whose call stack is
  // `stack` (outermost first; back() is the current pc; caller frames hold
  // their return addresses) to `goal`.
  uint64_t ThreadDistance(const std::vector<ir::InstRef>& stack, ir::InstRef goal);

  // True if any path from `block` in `func` can still reach `goal`, either
  // intra-procedurally, by entering a callee, or by returning to an unknown
  // caller. With `allow_return=false` the return escape is not counted
  // (used for bottom frames, which have no caller).
  bool CanReachGoal(uint32_t func, uint32_t block, ir::InstRef goal,
                    bool allow_return);

  // Stack-aware variant used for the paper's path abandonment: can the
  // thread whose call stack is `stack` (outermost first; back() is the
  // current frame) still reach `goal` if its current frame continues from
  // `block`? Unlike CanReachGoal, returning is only an escape if some
  // *actual* caller frame can still reach the goal from its return address.
  bool ThreadCanReachGoal(const std::vector<ir::InstRef>& stack, uint32_t block,
                          ir::InstRef goal);

  const Cfg& GetCfg(uint32_t func);

  // The shared per-module analysis artifacts (CFGs, def indexes). Threaded
  // through every analysis that cooperates with this calculator.
  AnalysisContext& context() { return *ctx_; }

  // Populates every lazy cache reachable during a search over `goals`: CFGs
  // and cost tables for all defined functions, plus the per-goal entry
  // distances and goal tables. After Prewarm returns, queries for those
  // goals are pure cache reads — this is what lets the parallel portfolio
  // share one DistanceCalculator across workers (§6's static artifacts).
  //
  // Thread-safety contract: after the first Prewarm returns ("sealed"),
  // queries for prewarmed goals take a lock-free fast path — the sealed
  // caches are complete and never mutated again. Queries for goals *not*
  // passed to Prewarm fill *overflow* caches lazily under the internal
  // mutex, so they are safe from any thread (they serialize; the sealed
  // caches the fast path reads are untouched). Prewarm itself must finish
  // before concurrent queries start (the portfolio prewarms before
  // spawning workers).
  void Prewarm(const std::vector<ir::InstRef>& goals);

  struct Stats {
    // Atomic so concurrent (post-Prewarm) readers can count without racing.
    std::atomic<uint64_t> goal_tables{0};
    std::atomic<uint64_t> distance_queries{0};
  };
  const Stats& stats() const { return stats_; }

  struct FuncCosts {
    std::vector<uint64_t> inst_cost;    // Flattened per (block, inst).
    std::vector<uint64_t> inst_prefix;  // Sum of costs before inst (same layout).
    std::vector<uint64_t> block_cost;   // Sum of inst costs per block.
    std::vector<uint64_t> block_start;  // Offset of block b in inst_cost.
    std::vector<uint64_t> exit_dist;    // Min cost from block start to return.
  };

  // Per-goal tables for one function: min cost from block start to "goal
  // progress" (goal instruction or a call leading toward it).
  struct GoalTable {
    std::vector<uint64_t> goal_dist;  // Per block.
    // Min cost from each instruction (DistanceFrom's answer), flattened with
    // one extra end-of-block slot per block: block b occupies
    // [block_start[b] + b, block_start[b] + b + insts.size()], where the
    // last slot is the best distance via a successor block. Precomputed so
    // the per-instruction state-selection queries are single array reads
    // instead of a suffix scan over opportunity costs (§6.2).
    std::vector<uint64_t> inst_dist;
  };

  // Content digest of the module the tables are computed over (computed
  // once at construction; see ir::ModuleDigest). This is the
  // module-identity key for every exported or restored snapshot: two
  // modules with colliding function ids but different bodies digest
  // differently, so restoring one's tables into the other is rejected
  // instead of silently serving stale distances.
  uint64_t module_digest() const { return module_digest_; }

  // A serializable image of the primary distance caches, keyed by the
  // module digest they were computed over.
  struct Snapshot {
    uint64_t module_digest = 0;
    std::map<uint32_t, FuncCosts> costs;
    std::map<uint32_t, uint64_t> function_cost;
    std::map<ir::InstRef, std::map<uint32_t, GoalTable>> goal_tables;
    std::map<ir::InstRef, std::map<uint32_t, uint64_t>> entry_dists;
  };

  // Exports every computed table (primary and overflow merged). Safe after
  // the search finished (no concurrent fills).
  Snapshot Export() const;

  // Seeds the lazy caches from a snapshot, so a search over the same module
  // starts with its tables hot. Must run before any query or Prewarm (the
  // caches must still be cold). Returns false — restoring nothing — when
  // the snapshot's digest does not match this module: tables computed over
  // a different module would be stale, the exact bug this key prevents.
  bool Restore(const Snapshot& snapshot);

  // Tables restored by the last successful Restore (reuse reporting).
  uint64_t restored_tables() const { return restored_tables_; }

  // Cost of the "opportunity" at one instruction: 0 at the goal itself,
  // 1 + E(callee) at calls that lead toward the goal, infinite otherwise.
  // Public so the dataflow transfer policies (distance.cc) and the
  // port-equivalence reference implementation (tests/analysis_port_test.cc)
  // can evaluate it; call with the internal lock held or after Prewarm.
  uint64_t OpportunityCost(uint32_t func, uint32_t block, uint32_t inst,
                           ir::InstRef goal,
                           const std::map<uint32_t, uint64_t>& entry);

  // Test hooks for the port-equivalence suite: expose the fixpoint tables
  // so the pre-framework Dijkstra reference can be compared bit-for-bit.
  // Single-threaded use only (they take the fill lock like a cold query).
  const FuncCosts& CostsForTest(uint32_t func);
  const GoalTable& GoalTableForTest(uint32_t func, ir::InstRef goal);
  const std::map<uint32_t, uint64_t>& EntryDistancesForTest(ir::InstRef goal);

 private:
  const FuncCosts& Costs(uint32_t func);
  uint64_t InstCost(uint32_t func, const ir::Instruction& inst,
                    std::vector<uint32_t>* call_stack);
  void ComputeCosts(uint32_t func, std::vector<uint32_t>* call_stack);

  // Entry distance E(f): min cost from f's entry to the goal, via any mix of
  // intra paths and call entries. Computed as a fixed point over functions.
  const std::map<uint32_t, uint64_t>& EntryDistances(ir::InstRef goal);
  const GoalTable& GetGoalTable(uint32_t func, ir::InstRef goal);
  // Distance from a specific instruction using a goal table.
  uint64_t DistanceFrom(uint32_t func, uint32_t block, uint32_t inst,
                        ir::InstRef goal);

  std::vector<uint32_t> CallTargets(const ir::Instruction& inst) const;
  // Like CallTargets, but also treats thread_create(@fn, ...) as an entry
  // into @fn: spawning a thread is how execution "reaches" the code the
  // goal thread runs. Used for goal reachability, not for call costs.
  std::vector<uint32_t> EntryTargets(const ir::Instruction& inst) const;

  // True once Prewarm sealed the primary caches (then complete for every
  // function and every prewarmed goal, and read-only from there on).
  bool Sealed() const { return sealed_.load(std::memory_order_acquire); }
  // Lock-free fast path available: sealed, and `goal` was prewarmed.
  bool FastFor(const ir::InstRef& goal) const {
    return Sealed() && prewarmed_goals_.count(goal) > 0;
  }

  const ir::Module* module_;
  uint64_t module_digest_ = 0;
  uint64_t restored_tables_ = 0;
  // Shared analysis artifacts (CFG cache, def indexes). Owned when the
  // caller did not pass a context of its own.
  std::unique_ptr<AnalysisContext> owned_ctx_;
  AnalysisContext* ctx_;
  // Guards every lazy fill. Recursive because the fill paths are mutually
  // recursive (GetGoalTable -> EntryDistances -> Costs -> GetCfg). After
  // Prewarm seals the primary caches, queries for prewarmed goals bypass
  // it entirely; only queries for other goals (possible with malformed
  // coredumps) take it and fill the overflow caches.
  mutable std::recursive_mutex mu_;
  std::atomic<bool> sealed_{false};
  std::set<ir::InstRef> prewarmed_goals_;  // Read-only once sealed.
  std::map<uint32_t, FuncCosts> costs_;
  std::map<uint32_t, uint64_t> function_cost_;
  std::vector<uint32_t> address_taken_;  // Candidate indirect-call targets.
  // goal -> (function -> tables). Once sealed, new goals fill the overflow
  // maps (under mu_) so fast-path readers of the primary maps never race
  // with a rebalance.
  std::map<ir::InstRef, std::map<uint32_t, GoalTable>> goal_tables_;
  std::map<ir::InstRef, std::map<uint32_t, uint64_t>> entry_dists_;
  std::map<ir::InstRef, std::map<uint32_t, GoalTable>> overflow_goal_tables_;
  std::map<ir::InstRef, std::map<uint32_t, uint64_t>> overflow_entry_dists_;
  Stats stats_;
};

}  // namespace esd::analysis

#endif  // ESD_SRC_ANALYSIS_DISTANCE_H_

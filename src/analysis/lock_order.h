// ESD analysis: a static lock-order checker (the §8 synergy).
//
// A classic static deadlock detector in the RacerX [14] tradition: walk
// every function reachable from a thread entry point, track the set of
// global mutexes held along each CFG path (following calls), and record
// lock-order edges "acquired B while holding A". Two edges (A,B) and (B,A)
// form a potential deadlock warning.
//
// Like all such checkers it is intentionally path-insensitive: it ignores
// branch conditions and thread structure, so it reports false positives —
// inversions that no real execution can produce. That is exactly the gap
// §8 proposes ESD for: each warning converts to a synthesis goal, and a
// warning is a true positive iff ESD finds an execution reaching it
// (core/warning_validation.h).
#ifndef ESD_SRC_ANALYSIS_LOCK_ORDER_H_
#define ESD_SRC_ANALYSIS_LOCK_ORDER_H_

#include <cstdint>
#include <vector>

#include "src/analysis/context.h"
#include "src/ir/module.h"

namespace esd::analysis {

// One "acquired `second` while holding `first`" fact. The checker covers
// every blocking acquire over a global sync object: mutex_lock,
// rwlock_rdlock/wrlock (an rwlock participates in cycles like a mutex,
// modulo the shared-mode exception below), and sem_wait (the mutex-like
// binary-semaphore usage). mutex_trylock and the rwlock try variants add
// to the held set when walked but record no edge — a non-blocking acquire
// cannot close a circular wait.
struct LockOrderEdge {
  uint32_t first_mutex_global = 0;   // Global index of the held object.
  uint32_t second_mutex_global = 0;  // Global index of the acquired object.
  ir::InstRef acquire_site;          // The lock call acquiring `second`.
  // Shared (read) mode markers: a read-held rwlock does not block another
  // read acquisition, so inversions that are shared/shared on a lock
  // cannot deadlock and are filtered out of the warnings.
  bool first_shared = false;   // `first` was held in read mode.
  bool second_shared = false;  // `second` is acquired in read mode.
};

// A potential AB-BA deadlock: two edges with inverted order.
struct LockOrderWarning {
  LockOrderEdge ab;  // B acquired while holding A.
  LockOrderEdge ba;  // A acquired while holding B.
};

// All lock-order edges over global sync objects, from every thread entry
// point (main plus every address-taken function). The walk runs as a
// forward dataflow fixpoint on DataflowEngine (state: the set of held-lock
// maps reaching a block), one run per (function, entry-held-set) pair.
// Edges are deduplicated and returned in canonical order: sorted by
// (held global, acquired global, acquire site, modes). Pass `ctx` to share
// the per-module CFG cache; with nullptr a private context is built.
std::vector<LockOrderEdge> CollectLockOrderEdges(const ir::Module& module,
                                                 AnalysisContext* ctx = nullptr);

// Pairs inverted edges into warnings, dropping pairs whose modes cannot
// conflict (shared/shared on either lock).
std::vector<LockOrderWarning> FindLockOrderWarnings(const ir::Module& module);

}  // namespace esd::analysis

#endif  // ESD_SRC_ANALYSIS_LOCK_ORDER_H_

#include "src/analysis/context.h"

namespace esd::analysis {

const Cfg& AnalysisContext::GetCfg(uint32_t func) {
  std::unique_lock<std::mutex> lock(mu_, std::defer_lock);
  if (!Sealed()) {
    lock.lock();
  }
  auto it = cfgs_.find(func);
  if (it == cfgs_.end()) {
    it = cfgs_.emplace(func, std::make_unique<Cfg>(*module_, func)).first;
  }
  return *it->second;
}

const std::vector<AnalysisContext::DefSite>& AnalysisContext::Defs(
    uint32_t func) {
  std::unique_lock<std::mutex> lock(mu_, std::defer_lock);
  if (!Sealed()) {
    lock.lock();
  }
  auto it = defs_.find(func);
  if (it != defs_.end()) {
    return *it->second;
  }
  const ir::Function& fn = module_->Func(func);
  auto index = std::make_unique<std::vector<DefSite>>(fn.num_regs);
  for (uint32_t b = 0; b < fn.blocks.size(); ++b) {
    for (uint32_t i = 0; i < fn.blocks[b].insts.size(); ++i) {
      const ir::Instruction& inst = fn.blocks[b].insts[i];
      if (inst.result >= 0 &&
          static_cast<uint32_t>(inst.result) < index->size()) {
        DefSite& slot = (*index)[inst.result];
        slot.inst = &inst;
        slot.site = ir::InstRef{func, b, i};
      }
    }
  }
  return *defs_.emplace(func, std::move(index)).first->second;
}

void AnalysisContext::PrewarmAll() {
  for (uint32_t f = 0; f < module_->NumFunctions(); ++f) {
    (void)GetCfg(f);
    (void)Defs(f);
  }
  sealed_.store(true, std::memory_order_release);
}

}  // namespace esd::analysis

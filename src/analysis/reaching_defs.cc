#include "src/analysis/reaching_defs.h"

#include <optional>

#include "src/analysis/context.h"

namespace esd::analysis {
namespace {

// A memory location the branch condition depends on.
struct Location {
  bool is_global = false;
  uint32_t global_index = 0;
  ir::InstRef alloca_site;  // When !is_global.

  friend bool operator==(const Location&, const Location&) = default;
};

// The unique instruction defining `reg` in function `func` (registers are
// assigned once statically by the builder/parser). Served by the shared
// per-module definition index instead of the O(function) body scan the
// pre-framework implementation ran on every lookup.
const ir::Instruction* FindDef(AnalysisContext& ctx, uint32_t func,
                               uint32_t reg, ir::InstRef* site) {
  const std::vector<AnalysisContext::DefSite>& defs = ctx.Defs(func);
  if (reg >= defs.size() || defs[reg].inst == nullptr) {
    return nullptr;
  }
  if (site != nullptr) {
    *site = defs[reg].site;
  }
  return defs[reg].inst;
}

// Resolves a pointer operand to a trackable location.
std::optional<Location> ResolveLocation(AnalysisContext& ctx, uint32_t func,
                                        const ir::Value& ptr) {
  if (ptr.kind == ir::Value::Kind::kGlobalRef) {
    Location loc;
    loc.is_global = true;
    loc.global_index = ptr.index;
    return loc;
  }
  if (ptr.kind == ir::Value::Kind::kReg) {
    ir::InstRef site;
    const ir::Instruction* def = FindDef(ctx, func, ptr.index, &site);
    if (def != nullptr && def->op == ir::Opcode::kAlloca) {
      Location loc;
      loc.is_global = false;
      loc.alloca_site = site;
      return loc;
    }
  }
  return std::nullopt;
}

int64_t ToSigned(uint64_t v, uint32_t width) {
  if (width < 64 && (v >> (width - 1)) & 1) {
    return static_cast<int64_t>(v | (~uint64_t{0} << width));
  }
  return static_cast<int64_t>(v);
}

bool EvalCmp(ir::CmpPred pred, uint64_t a, uint64_t b, uint32_t width) {
  switch (pred) {
    case ir::CmpPred::kEq:
      return a == b;
    case ir::CmpPred::kNe:
      return a != b;
    case ir::CmpPred::kUlt:
      return a < b;
    case ir::CmpPred::kUle:
      return a <= b;
    case ir::CmpPred::kUgt:
      return a > b;
    case ir::CmpPred::kUge:
      return a >= b;
    case ir::CmpPred::kSlt:
      return ToSigned(a, width) < ToSigned(b, width);
    case ir::CmpPred::kSle:
      return ToSigned(a, width) <= ToSigned(b, width);
    case ir::CmpPred::kSgt:
      return ToSigned(a, width) > ToSigned(b, width);
    case ir::CmpPred::kSge:
      return ToSigned(a, width) >= ToSigned(b, width);
  }
  return false;
}

// Peels zext/sext/trunc wrappers off a register chain; returns the core def.
const ir::Instruction* PeelCasts(AnalysisContext& ctx, uint32_t func,
                                 const ir::Instruction* def) {
  while (def != nullptr &&
         (def->op == ir::Opcode::kZExt || def->op == ir::Opcode::kSExt ||
          def->op == ir::Opcode::kTrunc)) {
    const ir::Value& v = def->operands[0];
    if (v.kind != ir::Value::Kind::kReg) {
      return nullptr;
    }
    def = FindDef(ctx, func, v.index, nullptr);
  }
  return def;
}

// Handles one atomic comparison: icmp(load L, const C). Returns the stores
// that would force it to `want`.
std::vector<ir::InstRef> StoresSatisfying(const ir::Module& module,
                                          AnalysisContext& ctx,
                                          uint32_t func_index,
                                          const ir::Instruction& icmp, bool want) {
  // Identify which side is the loaded value and which is the constant.
  const ir::Value* reg_side = nullptr;
  const ir::Value* const_side = nullptr;
  bool swapped = false;
  if (icmp.operands[0].kind == ir::Value::Kind::kReg &&
      icmp.operands[1].kind == ir::Value::Kind::kConst) {
    reg_side = &icmp.operands[0];
    const_side = &icmp.operands[1];
  } else if (icmp.operands[1].kind == ir::Value::Kind::kReg &&
             icmp.operands[0].kind == ir::Value::Kind::kConst) {
    reg_side = &icmp.operands[1];
    const_side = &icmp.operands[0];
    swapped = true;
  } else {
    return {};
  }
  const ir::Instruction* def = PeelCasts(
      ctx, func_index, FindDef(ctx, func_index, reg_side->index, nullptr));
  if (def == nullptr || def->op != ir::Opcode::kLoad) {
    return {};
  }
  auto loc = ResolveLocation(ctx, func_index, def->operands[0]);
  if (!loc.has_value()) {
    return {};
  }
  uint32_t width = ir::BitWidth(reg_side->type);
  uint64_t c = const_side->imm;

  std::vector<ir::InstRef> stores;
  // Globals can be stored from any function; allocas only within `fn`.
  uint32_t f_begin = loc->is_global ? 0 : func_index;
  uint32_t f_end = loc->is_global ? static_cast<uint32_t>(module.NumFunctions())
                                  : func_index + 1;
  for (uint32_t f = f_begin; f < f_end; ++f) {
    const ir::Function& hf = module.Func(f);
    for (uint32_t b = 0; b < hf.blocks.size(); ++b) {
      for (uint32_t i = 0; i < hf.blocks[b].insts.size(); ++i) {
        const ir::Instruction& inst = hf.blocks[b].insts[i];
        if (inst.op != ir::Opcode::kStore) {
          continue;
        }
        if (inst.operands[0].kind != ir::Value::Kind::kConst) {
          continue;
        }
        auto store_loc = ResolveLocation(ctx, f, inst.operands[1]);
        if (!store_loc.has_value() || !(*store_loc == *loc)) {
          continue;
        }
        uint64_t v = inst.operands[0].imm;
        bool outcome = swapped ? EvalCmp(icmp.pred, c, v, width)
                               : EvalCmp(icmp.pred, v, c, width);
        if (outcome == want) {
          stores.push_back(ir::InstRef{f, b, i});
        }
      }
    }
  }
  return stores;
}

// Decomposes the branch condition register into atomic comparisons that must
// each hold (conjunctions recurse; other shapes are skipped).
void CollectConjuncts(AnalysisContext& ctx, uint32_t func, uint32_t reg,
                      bool want,
                      std::vector<std::pair<const ir::Instruction*, bool>>* out) {
  const ir::Instruction* def = FindDef(ctx, func, reg, nullptr);
  if (def == nullptr) {
    return;
  }
  if (def->op == ir::Opcode::kICmp) {
    out->emplace_back(def, want);
    return;
  }
  if (def->op == ir::Opcode::kNot && def->operands[0].kind == ir::Value::Kind::kReg) {
    CollectConjuncts(ctx, func, def->operands[0].index, !want, out);
    return;
  }
  // (a && b) must be true: both conjuncts must hold. A false conjunction is
  // a disjunction of failures, which we do not decompose.
  if (def->op == ir::Opcode::kAnd && want) {
    for (const ir::Value& v : def->operands) {
      if (v.kind == ir::Value::Kind::kReg) {
        CollectConjuncts(ctx, func, v.index, true, out);
      }
    }
  }
}

}  // namespace

std::vector<IntermediateGoalSet> DeriveIntermediateGoals(
    const ir::Module& module, DistanceCalculator& distances, ir::InstRef goal) {
  std::vector<IntermediateGoalSet> sets;
  AnalysisContext& ctx = distances.context();
  std::vector<CriticalEdge> edges = FindCriticalEdges(module, distances, goal);
  for (const CriticalEdge& edge : edges) {
    const ir::Instruction* branch = module.InstAt(edge.branch);
    if (branch == nullptr || branch->operands.empty() ||
        branch->operands[0].kind != ir::Value::Kind::kReg) {
      continue;
    }
    std::vector<std::pair<const ir::Instruction*, bool>> conjuncts;
    CollectConjuncts(ctx, edge.branch.func, branch->operands[0].index,
                     edge.required_value, &conjuncts);
    for (const auto& [icmp, want] : conjuncts) {
      IntermediateGoalSet set;
      set.edge = edge;
      set.stores = StoresSatisfying(module, ctx, edge.branch.func, *icmp, want);
      if (!set.stores.empty()) {
        sets.push_back(std::move(set));
      }
    }
  }
  return sets;
}

}  // namespace esd::analysis

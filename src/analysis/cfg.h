// ESD analysis: control-flow-graph utilities.
//
// Block-level successor/predecessor structure per function, plus the cost
// bookkeeping the distance heuristic needs: per-instruction costs (calls
// cost 1 + callee cost), block prefix sums, and min-cost-to-return tables.
#ifndef ESD_SRC_ANALYSIS_CFG_H_
#define ESD_SRC_ANALYSIS_CFG_H_

#include <cstdint>
#include <vector>

#include "src/ir/module.h"

namespace esd::analysis {

inline constexpr uint64_t kInfDistance = UINT64_MAX / 4;

struct BlockInfo {
  std::vector<uint32_t> succs;
  std::vector<uint32_t> preds;
};

// Per-function CFG at block granularity.
class Cfg {
 public:
  Cfg(const ir::Module& module, uint32_t func_index);

  const BlockInfo& Block(uint32_t b) const { return blocks_[b]; }
  size_t NumBlocks() const { return blocks_.size(); }
  uint32_t func_index() const { return func_index_; }

 private:
  uint32_t func_index_;
  std::vector<BlockInfo> blocks_;
};

}  // namespace esd::analysis

#endif  // ESD_SRC_ANALYSIS_CFG_H_

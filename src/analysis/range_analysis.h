// IR value-range analysis on the generic dataflow framework.
//
// A forward fixpoint computing, for every register, an unsigned interval
// guaranteed to contain its runtime value in every execution reaching its
// use. Registers are single-assignment and the IR has no phis, so the state
// maps register -> Interval, joined per-register by range-union; a register
// missing from the state is unconstrained (full width at its type).
//
// Consumers:
//   - the branch-elision pass (ir/passes): a kCondBr whose condition
//     interval is pinned to [1,1] or [0,0] always takes the same edge and
//     can be rewritten to kBr without changing any dynamic trace;
//   - interval_test.cc: soundness property tests (concrete VM evaluation
//     stays within the computed intervals).
//
// The analysis is intraprocedural and memory-oblivious: loads, call
// results, parameters, and pointers are full-range.
#ifndef ESD_SRC_ANALYSIS_RANGE_ANALYSIS_H_
#define ESD_SRC_ANALYSIS_RANGE_ANALYSIS_H_

#include <cstdint>
#include <map>

#include "src/analysis/cfg.h"
#include "src/analysis/interval.h"
#include "src/ir/module.h"

namespace esd::analysis {

// Register intervals proven on entry to no-instruction context: the result
// of running the fixpoint over one function. Query with RangeOf.
class RangeAnalysis {
 public:
  // Runs the fixpoint immediately; `fn` and `cfg` must outlive the object.
  RangeAnalysis(const ir::Function& fn, const Cfg& cfg);

  // The interval of `v` just before instruction (block, inst) executes.
  // Constants are points; unconstrained or untracked values are full-range.
  Interval RangeOf(const ir::Value& v, uint32_t block, uint32_t inst) const;

  // The interval of register `reg` at the fixpoint state before
  // (block, inst); full-range when nothing was proven.
  Interval RegRange(uint32_t reg, uint32_t block, uint32_t inst) const;

  // One program point's knowledge. `reachable == false` is the lattice
  // bottom (no path reaches the point yet); in a reachable state a register
  // missing from `regs` is unconstrained (full range at its type). Public
  // for the transfer policy in range_analysis.cc.
  struct State {
    bool reachable = false;
    std::map<uint32_t, Interval> regs;
  };

 private:
  const ir::Function& fn_;
  // Fixpoint state just before each (block, instruction) program point,
  // flattened: block b's instruction i occupies pre_[block_start_[b] + i].
  std::vector<State> pre_;
  std::vector<size_t> block_start_;
};

}  // namespace esd::analysis

#endif  // ESD_SRC_ANALYSIS_RANGE_ANALYSIS_H_

#include "src/analysis/distance.h"

#include <algorithm>
#include <cassert>

#include "src/analysis/dataflow.h"
#include "src/ir/printer.h"

namespace esd::analysis {
namespace {

uint64_t SatAdd(uint64_t a, uint64_t b) {
  if (a >= kInfDistance || b >= kInfDistance) {
    return kInfDistance;
  }
  uint64_t s = a + b;
  return s >= kInfDistance ? kInfDistance : s;
}

// Backward dataflow policy for min-cost-to-return: the state at a program
// point is the least remaining cost to a `ret` of this function. The
// fixpoint of this policy over the reverse CFG equals the Dijkstra
// relaxation it replaced: SatAdd distributes over min, so the worklist's
// maximum fixpoint is the meet-over-all-paths shortest-path solution.
struct ExitDistPolicy {
  using State = uint64_t;
  const std::vector<uint64_t>* inst_cost;
  const std::vector<uint64_t>* block_start;

  State InitialState(uint32_t) const { return kInfDistance; }
  bool Join(State* into, const State& from) const {
    if (from < *into) {
      *into = from;
      return true;
    }
    return false;
  }
  void Transfer(const ir::Instruction& inst, uint32_t block, uint32_t i,
                State* s) const {
    uint64_t c = (*inst_cost)[(*block_start)[block] + i];
    // A return ends the path here; anything else adds its cost to the
    // remaining distance flowing in from the successors.
    *s = inst.op == ir::Opcode::kRet ? c : SatAdd(c, *s);
  }
};

}  // namespace

// Backward dataflow policy for goal distance: the state is the least cost
// from the current program point to "goal progress" (the goal instruction
// itself, or a call whose callee can reach it — OpportunityCost). Defined
// outside the anonymous namespace so it can call the calculator's public
// OpportunityCost; used by GetGoalTable and the EntryDistances fixpoint.
struct GoalDistPolicy {
  using State = uint64_t;
  DistanceCalculator* calc;
  uint32_t func;
  ir::InstRef goal;
  const std::map<uint32_t, uint64_t>* entry;
  const std::vector<uint64_t>* inst_cost;
  const std::vector<uint64_t>* block_start;

  State InitialState(uint32_t) const { return kInfDistance; }
  bool Join(State* into, const State& from) const {
    if (from < *into) {
      *into = from;
      return true;
    }
    return false;
  }
  void Transfer(const ir::Instruction&, uint32_t b, uint32_t i,
                State* s) const {
    uint64_t c = (*inst_cost)[(*block_start)[b] + i];
    *s = std::min(calc->OpportunityCost(func, b, i, goal, *entry),
                  SatAdd(c, *s));
  }
};

DistanceCalculator::DistanceCalculator(const ir::Module* module,
                                       AnalysisContext* ctx)
    : module_(module), module_digest_(ir::ModuleDigest(*module)), ctx_(ctx) {
  if (ctx_ == nullptr) {
    owned_ctx_ = std::make_unique<AnalysisContext>(module);
    ctx_ = owned_ctx_.get();
  }
  // Collect address-taken functions (candidate indirect-call targets), as
  // the paper's alias-analysis fallback: average the cost across targets.
  for (uint32_t f = 0; f < module_->NumFunctions(); ++f) {
    const ir::Function& fn = module_->Func(f);
    for (const ir::BasicBlock& bb : fn.blocks) {
      for (const ir::Instruction& inst : bb.insts) {
        for (const ir::Value& v : inst.operands) {
          if (v.kind == ir::Value::Kind::kFuncRef) {
            address_taken_.push_back(v.index);
          }
        }
      }
    }
  }
}

const Cfg& DistanceCalculator::GetCfg(uint32_t func) {
  // The shared context serializes its own fills and is sealed by Prewarm.
  return ctx_->GetCfg(func);
}

std::vector<uint32_t> DistanceCalculator::CallTargets(const ir::Instruction& inst) const {
  if (inst.op != ir::Opcode::kCall) {
    return {};
  }
  if (inst.callee != ir::kInvalidIndex) {
    return {inst.callee};
  }
  // Indirect: the operand may be a direct function reference; otherwise fall
  // back to all address-taken functions.
  if (!inst.operands.empty() &&
      inst.operands[0].kind == ir::Value::Kind::kFuncRef) {
    return {inst.operands[0].index};
  }
  return address_taken_;
}

std::vector<uint32_t> DistanceCalculator::EntryTargets(
    const ir::Instruction& inst) const {
  if (inst.op == ir::Opcode::kCall && inst.callee != ir::kInvalidIndex) {
    const ir::Function& callee = module_->Func(inst.callee);
    if (callee.is_external && callee.name == "thread_create") {
      if (!inst.operands.empty() &&
          inst.operands[0].kind == ir::Value::Kind::kFuncRef) {
        return {inst.operands[0].index};
      }
      return address_taken_;
    }
  }
  return CallTargets(inst);
}

uint64_t DistanceCalculator::InstCost(uint32_t /*func*/, const ir::Instruction& inst,
                                      std::vector<uint32_t>* call_stack) {
  if (inst.op != ir::Opcode::kCall) {
    return 1;
  }
  std::vector<uint32_t> targets = CallTargets(inst);
  if (targets.empty()) {
    return 1 + kRecursionCost;  // Unresolvable indirect call (§3.4).
  }
  uint64_t total = 0;
  for (uint32_t g : targets) {
    if (std::find(call_stack->begin(), call_stack->end(), g) != call_stack->end()) {
      total = SatAdd(total, kRecursionCost);  // Recursion: fixed cost (§3.4).
      continue;
    }
    const ir::Function& callee = module_->Func(g);
    if (callee.is_external) {
      total = SatAdd(total, 1);
      continue;
    }
    call_stack->push_back(g);
    uint64_t c = function_cost_.count(g) ? function_cost_[g] : 0;
    if (!function_cost_.count(g)) {
      ComputeCosts(g, call_stack);
      c = function_cost_[g];
    }
    call_stack->pop_back();
    total = SatAdd(total, std::min<uint64_t>(c, kRecursionCost));
  }
  return 1 + total / targets.size();
}

void DistanceCalculator::ComputeCosts(uint32_t func, std::vector<uint32_t>* call_stack) {
  if (costs_.count(func)) {
    return;
  }
  const ir::Function& fn = module_->Func(func);
  FuncCosts fc;
  fc.block_start.resize(fn.blocks.size());
  fc.block_cost.resize(fn.blocks.size());
  for (uint32_t b = 0; b < fn.blocks.size(); ++b) {
    fc.block_start[b] = fc.inst_cost.size();
    uint64_t sum = 0;
    for (const ir::Instruction& inst : fn.blocks[b].insts) {
      uint64_t c = InstCost(func, inst, call_stack);
      fc.inst_prefix.push_back(sum);  // Cost of the block before this inst.
      fc.inst_cost.push_back(c);
      sum = SatAdd(sum, c);
    }
    fc.block_cost[b] = sum;
  }
  // exit_dist: min cost from block start to a return, as a backward
  // dataflow fixpoint over the shared CFG (a `ret` transfer seeds the path,
  // every other instruction adds its cost; see ExitDistPolicy).
  const Cfg& cfg = GetCfg(func);
  fc.exit_dist.assign(fn.blocks.size(), kInfDistance);
  if (!fn.blocks.empty()) {
    ExitDistPolicy policy{&fc.inst_cost, &fc.block_start};
    DataflowEngine<ExitDistPolicy> engine(fn, cfg, Direction::kBackward,
                                          &policy);
    engine.Run();
    for (uint32_t b = 0; b < fn.blocks.size(); ++b) {
      fc.exit_dist[b] = engine.ExitState(b);
    }
  }
  costs_.emplace(func, std::move(fc));
  // Function cost = min cost from the entry block to a return.
  function_cost_[func] =
      fn.blocks.empty() ? 1 : costs_[func].exit_dist[0];
}

const DistanceCalculator::FuncCosts& DistanceCalculator::Costs(uint32_t func) {
  auto it = costs_.find(func);
  if (it != costs_.end()) {
    return it->second;
  }
  std::vector<uint32_t> call_stack{func};
  ComputeCosts(func, &call_stack);
  return costs_.find(func)->second;
}

uint64_t DistanceCalculator::FunctionCost(uint32_t func) {
  const ir::Function& fn = module_->Func(func);
  if (fn.is_external) {
    return 1;
  }
  std::unique_lock<std::recursive_mutex> lock(mu_, std::defer_lock);
  if (!Sealed()) {
    lock.lock();
  }
  Costs(func);
  return function_cost_[func];
}

uint64_t DistanceCalculator::Dist2Ret(ir::InstRef at) {
  const ir::Function& fn = module_->Func(at.func);
  if (fn.is_external || at.block >= fn.blocks.size()) {
    return kInfDistance;
  }
  std::unique_lock<std::recursive_mutex> lock(mu_, std::defer_lock);
  if (!Sealed()) {
    lock.lock();
  }
  const FuncCosts& fc = Costs(at.func);
  size_t n = fn.blocks[at.block].insts.size();
  uint64_t prefix = at.inst >= n
                        ? fc.block_cost[at.block]
                        : fc.inst_prefix[fc.block_start[at.block] + at.inst];
  uint64_t e = fc.exit_dist[at.block];
  if (e >= kInfDistance) {
    return kInfDistance;
  }
  return e > prefix ? e - prefix : 0;
}

uint64_t DistanceCalculator::OpportunityCost(
    uint32_t func, uint32_t block, uint32_t inst, ir::InstRef goal,
    const std::map<uint32_t, uint64_t>& entry) {
  if (func == goal.func && block == goal.block && inst == goal.inst) {
    return 0;
  }
  const ir::Instruction* in = module_->Func(func).InstAt(block, inst);
  if (in == nullptr || in->op != ir::Opcode::kCall) {
    return kInfDistance;
  }
  uint64_t best = kInfDistance;
  for (uint32_t g : EntryTargets(*in)) {
    auto it = entry.find(g);
    if (it != entry.end()) {
      best = std::min(best, SatAdd(1, it->second));
    }
  }
  return best;
}

const DistanceCalculator::GoalTable& DistanceCalculator::GetGoalTable(
    uint32_t func, ir::InstRef goal) {
  auto pg = goal_tables_.find(goal);
  if (pg != goal_tables_.end()) {
    auto hit = pg->second.find(func);
    if (hit != pg->second.end()) {
      return hit->second;
    }
  }
  // Miss: un-prewarmed goal (mu_ held; see EntryDistances) or pre-seal
  // lazy fill. Sealed fills go to the overflow map.
  auto& per_goal = (Sealed() ? overflow_goal_tables_ : goal_tables_)[goal];
  auto it = per_goal.find(func);
  if (it != per_goal.end()) {
    return it->second;
  }
  stats_.goal_tables.fetch_add(1, std::memory_order_relaxed);
  const std::map<uint32_t, uint64_t>& entry = EntryDistances(goal);
  const ir::Function& fn = module_->Func(func);
  const FuncCosts& fc = Costs(func);
  const Cfg& cfg = GetCfg(func);

  // One backward dataflow run computes both tables: the per-block fixpoint
  // snapshots are the end-of-block distances (min over successor blocks),
  // and folding each block from its snapshot yields the per-instruction
  // distances D[j] = min(opportunity(j), cost(j) + D[j+1]) that DistanceFrom
  // serves. SatAdd distributes over min, so the worklist fixpoint equals
  // the Dijkstra relaxation this replaced, bit for bit.
  GoalTable table;
  table.goal_dist.assign(fn.blocks.size(), kInfDistance);
  table.inst_dist.assign(fc.inst_cost.size() + fn.blocks.size(), kInfDistance);
  if (!fn.blocks.empty() && !fn.is_external) {
    GoalDistPolicy policy{this,   func,          goal,
                          &entry, &fc.inst_cost, &fc.block_start};
    DataflowEngine<GoalDistPolicy> engine(fn, cfg, Direction::kBackward,
                                          &policy);
    engine.Run();
    for (uint32_t b = 0; b < fn.blocks.size(); ++b) {
      size_t base = fc.block_start[b] + b;
      size_t n = fn.blocks[b].insts.size();
      // The flow-entry snapshot of a backward analysis is the state after
      // the terminator: the best distance via a successor block.
      table.inst_dist[base + n] = engine.EntryState(b);
      engine.FoldBlock(b, [&](uint32_t j, const uint64_t& s) {
        table.inst_dist[base + j] = s;
      });
      table.goal_dist[b] =
          n == 0 ? engine.EntryState(b) : table.inst_dist[base];
    }
  }
  return per_goal.emplace(func, std::move(table)).first->second;
}

const std::map<uint32_t, uint64_t>& DistanceCalculator::EntryDistances(
    ir::InstRef goal) {
  auto cached = entry_dists_.find(goal);
  if (cached != entry_dists_.end()) {
    return cached->second;
  }
  // Miss: the goal was not prewarmed, so mu_ is held (FastFor was false in
  // every public entry point). Once sealed, fill the overflow map so the
  // lock-free readers of the primary map never observe a rebalance.
  auto& store = Sealed() ? overflow_entry_dists_ : entry_dists_;
  if (Sealed()) {
    auto oc = store.find(goal);
    if (oc != store.end()) {
      return oc->second;
    }
  }
  std::map<uint32_t, uint64_t> entry;
  // Fixed point: E(f) can only shrink as more call-entry paths are found.
  size_t rounds = module_->NumFunctions() + 2;
  for (size_t round = 0; round < rounds; ++round) {
    bool changed = false;
    for (uint32_t f = 0; f < module_->NumFunctions(); ++f) {
      const ir::Function& fn = module_->Func(f);
      if (fn.is_external || fn.blocks.empty()) {
        continue;
      }
      // Uncached goal-distance fixpoint with the current E: the entry
      // block's end-to-end state is this function's candidate E(f).
      const FuncCosts& fc = Costs(f);
      const Cfg& cfg = GetCfg(f);
      GoalDistPolicy policy{this,   f,             goal,
                            &entry, &fc.inst_cost, &fc.block_start};
      DataflowEngine<GoalDistPolicy> engine(fn, cfg, Direction::kBackward,
                                            &policy);
      engine.Run();
      uint64_t e = engine.ExitState(0);
      auto it = entry.find(f);
      if (e < kInfDistance && (it == entry.end() || e < it->second)) {
        entry[f] = e;
        changed = true;
      }
    }
    if (!changed) {
      break;
    }
  }
  return store.emplace(goal, std::move(entry)).first->second;
}

void DistanceCalculator::Prewarm(const std::vector<ir::InstRef>& goals) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  // Seal the shared context first: every CFG and def index is built here,
  // so post-Prewarm context lookups are lock-free for all analyses.
  ctx_->PrewarmAll();
  // Every function — externals included, so a sealed-cache lookup can never
  // miss and fall into an unlocked fill (externals get empty CFG/cost
  // tables, matching their early-return query semantics).
  for (uint32_t f = 0; f < module_->NumFunctions(); ++f) {
    (void)Costs(f);
  }
  // Invalid targets (malformed coredumps produce them) are prewarmed too:
  // the critical-edge filter still issues queries for them, and a cache
  // miss during the parallel search would otherwise go through the locked
  // overflow path on every query.
  for (const ir::InstRef& goal : goals) {
    (void)EntryDistances(goal);
    for (uint32_t f = 0; f < module_->NumFunctions(); ++f) {
      (void)GetGoalTable(f, goal);
    }
  }
  if (!Sealed()) {
    prewarmed_goals_.insert(goals.begin(), goals.end());
    // Release-publish the now-complete primary caches: queries for these
    // goals bypass the mutex from here on. A second Prewarm call (none in
    // the current pipeline) warms the overflow caches under the lock
    // instead, since prewarmed_goals_ must stay frozen once readers may
    // exist.
    sealed_.store(true, std::memory_order_release);
  }
}

uint64_t DistanceCalculator::DistanceFrom(uint32_t func, uint32_t block, uint32_t inst,
                                          ir::InstRef goal) {
  stats_.distance_queries.fetch_add(1, std::memory_order_relaxed);
  const ir::Function& fn = module_->Func(func);
  if (fn.is_external || block >= fn.blocks.size()) {
    return kInfDistance;
  }
  const FuncCosts& fc = Costs(func);
  const GoalTable& table = GetGoalTable(func, goal);
  // Precomputed at table-build time: best opportunity at or after `inst`
  // within this block, or the remaining suffix plus a successor table.
  size_t n = fn.blocks[block].insts.size();
  size_t j = inst < n ? inst : n;
  return table.inst_dist[fc.block_start[block] + block + j];
}

uint64_t DistanceCalculator::Distance(ir::InstRef at, ir::InstRef goal) {
  std::unique_lock<std::recursive_mutex> lock(mu_, std::defer_lock);
  if (!FastFor(goal)) {
    lock.lock();
  }
  return DistanceFrom(at.func, at.block, at.inst, goal);
}

uint64_t DistanceCalculator::ThreadDistance(const std::vector<ir::InstRef>& stack,
                                            ir::InstRef goal) {
  std::unique_lock<std::recursive_mutex> lock(mu_, std::defer_lock);
  if (!FastFor(goal)) {
    lock.lock();
  }
  if (stack.empty()) {
    return kInfDistance;
  }
  // Line 1: the current frame may reach the goal directly.
  uint64_t dmin = Distance(stack.back(), goal);
  // Lines 2-6: or the goal is reached after returning to a caller. We make
  // the return cost cumulative across intermediate frames.
  uint64_t ret_cost = Dist2Ret(stack.back());
  for (size_t k = stack.size() - 1; k-- > 0;) {
    if (ret_cost >= kInfDistance) {
      break;
    }
    // stack[k] is the caller's return address (its pc was advanced past the
    // call before the callee frame was pushed).
    uint64_t cand = SatAdd(SatAdd(ret_cost, 1), Distance(stack[k], goal));
    dmin = std::min(dmin, cand);
    ret_cost = SatAdd(ret_cost, SatAdd(1, Dist2Ret(stack[k])));
  }
  return dmin;
}

bool DistanceCalculator::ThreadCanReachGoal(const std::vector<ir::InstRef>& stack,
                                            uint32_t block, ir::InstRef goal) {
  std::unique_lock<std::recursive_mutex> lock(mu_, std::defer_lock);
  if (!FastFor(goal)) {
    lock.lock();
  }
  if (stack.empty()) {
    return false;
  }
  uint32_t func = stack.back().func;
  const ir::Function& fn = module_->Func(func);
  if (fn.is_external || block >= fn.blocks.size()) {
    return false;
  }
  const GoalTable& table = GetGoalTable(func, goal);
  if (table.goal_dist[block] < kInfDistance) {
    return true;
  }
  // Escape by returning: walk the actual caller frames. Each must itself be
  // able to return (or reach the goal from its return address).
  if (Costs(func).exit_dist[block] >= kInfDistance) {
    return false;
  }
  for (size_t k = stack.size() - 1; k-- > 0;) {
    if (Distance(stack[k], goal) < kInfDistance) {
      return true;
    }
    if (Dist2Ret(stack[k]) >= kInfDistance) {
      return false;
    }
  }
  return false;
}

DistanceCalculator::Snapshot DistanceCalculator::Export() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  Snapshot snap;
  snap.module_digest = module_digest_;
  snap.costs = costs_;
  snap.function_cost = function_cost_;
  snap.goal_tables = goal_tables_;
  snap.entry_dists = entry_dists_;
  // Overflow tables (filled after sealing, for un-prewarmed goals) are real
  // computed results; merge them so the next run starts hot on them too.
  for (const auto& [goal, per_func] : overflow_goal_tables_) {
    auto& into = snap.goal_tables[goal];
    into.insert(per_func.begin(), per_func.end());
  }
  for (const auto& [goal, dists] : overflow_entry_dists_) {
    snap.entry_dists.emplace(goal, dists);
  }
  return snap;
}

bool DistanceCalculator::Restore(const Snapshot& snapshot) {
  if (snapshot.module_digest != module_digest_) {
    return false;  // Tables for a different module: stale, regenerate.
  }
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (Sealed()) {
    return false;  // Too late: queries may already be running lock-free.
  }
  costs_ = snapshot.costs;
  function_cost_ = snapshot.function_cost;
  goal_tables_ = snapshot.goal_tables;
  entry_dists_ = snapshot.entry_dists;
  restored_tables_ = 0;
  for (const auto& [goal, per_func] : goal_tables_) {
    restored_tables_ += per_func.size();
  }
  restored_tables_ += costs_.size();
  return true;
}

const DistanceCalculator::FuncCosts& DistanceCalculator::CostsForTest(
    uint32_t func) {
  std::unique_lock<std::recursive_mutex> lock(mu_, std::defer_lock);
  if (!Sealed()) {
    lock.lock();
  }
  return Costs(func);
}

const DistanceCalculator::GoalTable& DistanceCalculator::GoalTableForTest(
    uint32_t func, ir::InstRef goal) {
  std::unique_lock<std::recursive_mutex> lock(mu_, std::defer_lock);
  if (!FastFor(goal)) {
    lock.lock();
  }
  return GetGoalTable(func, goal);
}

const std::map<uint32_t, uint64_t>& DistanceCalculator::EntryDistancesForTest(
    ir::InstRef goal) {
  std::unique_lock<std::recursive_mutex> lock(mu_, std::defer_lock);
  if (!FastFor(goal)) {
    lock.lock();
  }
  return EntryDistances(goal);
}

bool DistanceCalculator::CanReachGoal(uint32_t func, uint32_t block, ir::InstRef goal,
                                      bool allow_return) {
  std::unique_lock<std::recursive_mutex> lock(mu_, std::defer_lock);
  if (!FastFor(goal)) {
    lock.lock();
  }
  const ir::Function& fn = module_->Func(func);
  if (fn.is_external || block >= fn.blocks.size()) {
    return false;
  }
  const GoalTable& table = GetGoalTable(func, goal);
  if (table.goal_dist[block] < kInfDistance) {
    return true;
  }
  if (allow_return) {
    const FuncCosts& fc = Costs(func);
    return fc.exit_dist[block] < kInfDistance;
  }
  return false;
}

}  // namespace esd::analysis

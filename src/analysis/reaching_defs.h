// ESD analysis: reaching definitions and intermediate goals (§3.2).
//
// For each critical edge, ESD inspects the branch condition, finds the
// memory locations (allocas / globals) it loads from, and looks for store
// instructions whose constant operand would statically force the branch
// condition to take the required value. The blocks containing such stores
// are "intermediate goals": blocks that must execute on the way to the goal.
// When multiple stores would satisfy the same condition they form a
// disjunctive set — reaching any one of them is progress.
#ifndef ESD_SRC_ANALYSIS_REACHING_DEFS_H_
#define ESD_SRC_ANALYSIS_REACHING_DEFS_H_

#include <vector>

#include "src/analysis/critical_edges.h"
#include "src/ir/module.h"

namespace esd::analysis {

// One disjunctive set of intermediate goals derived from one critical edge:
// any member makes the edge's condition attainable.
struct IntermediateGoalSet {
  CriticalEdge edge;
  std::vector<ir::InstRef> stores;  // Candidate defining stores.
};

// Derives intermediate goals for `goal` from its critical edges.
std::vector<IntermediateGoalSet> DeriveIntermediateGoals(
    const ir::Module& module, DistanceCalculator& distances, ir::InstRef goal);

}  // namespace esd::analysis

#endif  // ESD_SRC_ANALYSIS_REACHING_DEFS_H_

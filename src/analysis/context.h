// ESD analysis: per-module shared analysis artifacts.
//
// Every analysis used to rebuild its own CFG and rescan function bodies for
// register definitions. AnalysisContext caches both once per module:
//   - one analysis::Cfg per function, shared by the distance calculator,
//     the critical-edge walk, the lock-order checker, and the IR passes;
//   - one definition index per function (registers are statically assigned
//     once, so each register has a unique defining instruction), replacing
//     reaching_defs' O(function) linear def scans.
//
// Thread-safety mirrors DistanceCalculator's sealed-cache contract: fills
// are serialized by an internal mutex until PrewarmAll() builds every entry
// and seals the context, after which lookups are lock-free reads of
// immutable maps (the portfolio shares one context across workers).
#ifndef ESD_SRC_ANALYSIS_CONTEXT_H_
#define ESD_SRC_ANALYSIS_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "src/analysis/cfg.h"
#include "src/ir/module.h"

namespace esd::analysis {

class AnalysisContext {
 public:
  explicit AnalysisContext(const ir::Module* module) : module_(module) {}

  const ir::Module& module() const { return *module_; }

  // Shared per-function CFG (built lazily, cached for the module lifetime).
  const Cfg& GetCfg(uint32_t func);

  // The unique static definition of one register (parameters and undefined
  // registers have inst == nullptr).
  struct DefSite {
    const ir::Instruction* inst = nullptr;
    ir::InstRef site;
  };

  // Definition index for `func`, indexed by register number.
  const std::vector<DefSite>& Defs(uint32_t func);

  // Builds every CFG and def index, then seals: subsequent lookups are
  // lock-free. Must complete before concurrent readers start.
  void PrewarmAll();

 private:
  bool Sealed() const { return sealed_.load(std::memory_order_acquire); }

  const ir::Module* module_;
  std::mutex mu_;
  std::atomic<bool> sealed_{false};
  std::map<uint32_t, std::unique_ptr<Cfg>> cfgs_;
  std::map<uint32_t, std::unique_ptr<std::vector<DefSite>>> defs_;
};

}  // namespace esd::analysis

#endif  // ESD_SRC_ANALYSIS_CONTEXT_H_

// ESD analysis: generic fixed-point dataflow engine (ROADMAP item #1).
//
// Modeled on Rir's generic_static_analysis.h: an analysis is a small policy
// type supplying an abstract State, a merge (join) operator, and a
// per-instruction transfer function; the engine owns the worklist fixpoint
// over an `analysis::Cfg`, keeps one State snapshot per basic block at the
// block's *flow entry* (before the first instruction for forward analyses,
// after the terminator for backward ones), and reconstructs the state at any
// instruction on demand by re-applying transfers from the snapshot — the
// seek-to-instruction pattern that keeps memory at O(blocks) states instead
// of O(instructions).
//
// The Analysis policy type must provide:
//
//   using State = ...;                    // copyable abstract state
//   State InitialState(uint32_t block);   // flow-entry state before any join
//   bool Join(State* into, const State& from);   // true if *into changed
//   void Transfer(const ir::Instruction& inst, uint32_t block, uint32_t inst_index,
//                 State* state);          // may observe/record side facts
//
// Convergence requires the usual lattice conditions: Join computes an upper
// bound, Transfer is monotone, and chains are finite. When Transfer also
// distributes over Join (every analysis in this repo does), the fixpoint
// equals the meet-over-all-paths solution, which is what makes the ports of
// the Dijkstra-based distance tables bit-identical (distance.cc).
//
// Every block application is counted into EventCounters::dataflow_iterations
// so `esdsynth --counters` and BENCH_*.json expose fixed-point effort.
#ifndef ESD_SRC_ANALYSIS_DATAFLOW_H_
#define ESD_SRC_ANALYSIS_DATAFLOW_H_

#include <cstdint>
#include <vector>

#include "src/analysis/cfg.h"
#include "src/core/event_counters.h"
#include "src/ir/module.h"

namespace esd::analysis {

enum class Direction {
  kForward,   // States flow entry -> terminator, along succ edges.
  kBackward,  // States flow terminator -> entry, along pred edges.
};

template <typename Analysis>
class DataflowEngine {
 public:
  using State = typename Analysis::State;

  DataflowEngine(const ir::Function& fn, const Cfg& cfg, Direction direction,
                 Analysis* analysis)
      : fn_(fn), cfg_(cfg), direction_(direction), analysis_(analysis) {}

  // Runs the worklist to a fixpoint. Deterministic: the initial visit order
  // is flow order (entry-first for forward, exit-first for backward) and
  // re-queued blocks are processed LIFO, so repeated runs over the same
  // function produce identical state sequences and iteration counts.
  void Run() {
    const size_t n = cfg_.NumBlocks();
    entry_.clear();
    entry_.reserve(n);
    for (uint32_t b = 0; b < n; ++b) {
      entry_.push_back(analysis_->InitialState(b));
    }
    std::vector<char> queued(n, 1);
    std::vector<uint32_t> worklist;
    worklist.reserve(n);
    // Pushed in reverse flow order so pop_back() visits flow order first.
    if (direction_ == Direction::kForward) {
      for (uint32_t b = static_cast<uint32_t>(n); b-- > 0;) {
        worklist.push_back(b);
      }
    } else {
      for (uint32_t b = 0; b < n; ++b) {
        worklist.push_back(b);
      }
    }
    iterations_ = 0;
    while (!worklist.empty()) {
      uint32_t b = worklist.back();
      worklist.pop_back();
      queued[b] = 0;
      ++iterations_;
      State out = ApplyBlock(b);
      const BlockInfo& info = cfg_.Block(b);
      const std::vector<uint32_t>& targets =
          direction_ == Direction::kForward ? info.succs : info.preds;
      for (uint32_t t : targets) {
        if (analysis_->Join(&entry_[t], out) && !queued[t]) {
          queued[t] = 1;
          worklist.push_back(t);
        }
      }
    }
    CountEvent(&EventCounters::dataflow_iterations, iterations_);
  }

  // Fixpoint snapshot at the block's flow entry (before the first
  // instruction for forward analyses, after the terminator for backward).
  const State& EntryState(uint32_t block) const { return entry_[block]; }

  // Snapshot pushed through the whole block: the state at the block's flow
  // exit (after the terminator for forward, before the first instruction
  // for backward).
  State ExitState(uint32_t block) const { return ApplyBlock(block); }

  // Seek-to-instruction reconstruction from the block snapshot. Forward:
  // the state immediately *before* `inst` executes. Backward: the state
  // with `inst` and everything after it already applied.
  State StateAt(uint32_t block, uint32_t inst) const {
    State s = entry_[block];
    const std::vector<ir::Instruction>& insts = fn_.blocks[block].insts;
    if (direction_ == Direction::kForward) {
      for (uint32_t i = 0; i < inst && i < insts.size(); ++i) {
        analysis_->Transfer(insts[i], block, i, &s);
      }
    } else {
      for (uint32_t i = static_cast<uint32_t>(insts.size()); i-- > inst;) {
        analysis_->Transfer(insts[i], block, i, &s);
      }
    }
    return s;
  }

  // Walks the block once in flow order from the snapshot, invoking
  // visit(inst_index, state_after_transfer) after each instruction. One
  // O(block) sweep where per-instruction StateAt calls would be quadratic.
  template <typename Visit>
  void FoldBlock(uint32_t block, Visit&& visit) const {
    State s = entry_[block];
    const std::vector<ir::Instruction>& insts = fn_.blocks[block].insts;
    if (direction_ == Direction::kForward) {
      for (uint32_t i = 0; i < insts.size(); ++i) {
        analysis_->Transfer(insts[i], block, i, &s);
        visit(i, s);
      }
    } else {
      for (uint32_t i = static_cast<uint32_t>(insts.size()); i-- > 0;) {
        analysis_->Transfer(insts[i], block, i, &s);
        visit(i, s);
      }
    }
  }

  uint64_t iterations() const { return iterations_; }

 private:
  State ApplyBlock(uint32_t b) const {
    State s = entry_[b];
    const std::vector<ir::Instruction>& insts = fn_.blocks[b].insts;
    if (direction_ == Direction::kForward) {
      for (uint32_t i = 0; i < insts.size(); ++i) {
        analysis_->Transfer(insts[i], b, i, &s);
      }
    } else {
      for (uint32_t i = static_cast<uint32_t>(insts.size()); i-- > 0;) {
        analysis_->Transfer(insts[i], b, i, &s);
      }
    }
    return s;
  }

  const ir::Function& fn_;
  const Cfg& cfg_;
  Direction direction_;
  Analysis* analysis_;
  std::vector<State> entry_;  // Per-block flow-entry snapshots.
  uint64_t iterations_ = 0;
};

}  // namespace esd::analysis

#endif  // ESD_SRC_ANALYSIS_DATAFLOW_H_

#include "src/analysis/critical_edges.h"

namespace esd::analysis {

std::vector<CriticalEdge> FindCriticalEdges(const ir::Module& module,
                                            DistanceCalculator& distances,
                                            ir::InstRef goal) {
  std::vector<CriticalEdge> edges;
  if (goal.func >= module.NumFunctions()) {
    return edges;
  }
  const ir::Function& fn = module.Func(goal.func);
  if (fn.is_external || goal.block >= fn.blocks.size()) {
    return edges;
  }
  const Cfg& cfg = distances.GetCfg(goal.func);

  uint32_t current = goal.block;
  // Backward walk: follow unique predecessors (paper: stop at the first
  // block with multiple predecessors).
  while (cfg.Block(current).preds.size() == 1) {
    uint32_t pred = cfg.Block(current).preds[0];
    const ir::BasicBlock& pb = fn.blocks[pred];
    if (!pb.insts.empty() && pb.insts.back().op == ir::Opcode::kCondBr) {
      const ir::Instruction& term = pb.insts.back();
      CriticalEdge edge;
      edge.branch = ir::InstRef{goal.func, pred,
                                static_cast<uint32_t>(pb.insts.size() - 1)};
      edge.required_block = current;
      edge.required_value = term.succ_true == current;
      // Only critical if the other edge cannot reach the goal some other
      // way; the backward walk already implies a single path, but a loop
      // back-edge could still rejoin, so double-check with reachability.
      uint32_t other = term.succ_true == current ? term.succ_false : term.succ_true;
      if (other != current &&
          !distances.CanReachGoal(goal.func, other, goal, /*allow_return=*/false)) {
        edges.push_back(edge);
      }
    }
    if (pred == goal.block) {
      break;  // Looped all the way around.
    }
    current = pred;
  }
  return edges;
}

}  // namespace esd::analysis

// ESD analysis: critical edges (§3.2).
//
// A critical edge is a CFG edge that *must* be followed on any path to the
// goal. Identified exactly as the paper describes: starting from the goal
// block and walking backward; whenever the current block has a single
// predecessor ending in a conditional branch, the edge from that predecessor
// into the chain is critical (the other outgoing edge cannot be part of a
// path to the goal). The walk stops at the first block with multiple
// predecessors, matching the paper's "current version of ESD" behavior.
#ifndef ESD_SRC_ANALYSIS_CRITICAL_EDGES_H_
#define ESD_SRC_ANALYSIS_CRITICAL_EDGES_H_

#include <vector>

#include "src/analysis/distance.h"
#include "src/ir/module.h"

namespace esd::analysis {

struct CriticalEdge {
  ir::InstRef branch;       // The conditional branch instruction.
  uint32_t required_block;  // The successor that must be taken.
  bool required_value;      // Branch condition value taking that successor.
};

// Finds critical edges for `goal` within the goal's function.
std::vector<CriticalEdge> FindCriticalEdges(const ir::Module& module,
                                            DistanceCalculator& distances,
                                            ir::InstRef goal);

}  // namespace esd::analysis

#endif  // ESD_SRC_ANALYSIS_CRITICAL_EDGES_H_

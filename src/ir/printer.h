// ESD IR: textual printing. Output round-trips through ir::ParseModule.
#ifndef ESD_SRC_IR_PRINTER_H_
#define ESD_SRC_IR_PRINTER_H_

#include <string>

#include "src/ir/module.h"

namespace esd::ir {

std::string PrintModule(const Module& module);
std::string PrintFunction(const Module& module, uint32_t func_index);
std::string PrintInstruction(const Module& module, const Function& fn,
                             const Instruction& inst);

// Content digest of a module: FNV-1a over the canonical printed text. Two
// modules digest equal iff they print identically, which is exactly the
// "same program" notion the persistent caches key on — a patched module
// (even one that only renames a block) gets a new digest and therefore
// fresh tables instead of stale ones.
uint64_t ModuleDigest(const Module& module);

// 16-hex-digit rendering of ModuleDigest, used in cache file names and the
// `module <digest>` header line of the serve cache formats.
std::string ModuleDigestHex(const Module& module);

}  // namespace esd::ir

#endif  // ESD_SRC_IR_PRINTER_H_

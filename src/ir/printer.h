// ESD IR: textual printing. Output round-trips through ir::ParseModule.
#ifndef ESD_SRC_IR_PRINTER_H_
#define ESD_SRC_IR_PRINTER_H_

#include <string>

#include "src/ir/module.h"

namespace esd::ir {

std::string PrintModule(const Module& module);
std::string PrintFunction(const Module& module, uint32_t func_index);
std::string PrintInstruction(const Module& module, const Function& fn,
                             const Instruction& inst);

}  // namespace esd::ir

#endif  // ESD_SRC_IR_PRINTER_H_

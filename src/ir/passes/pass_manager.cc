#include <sstream>
#include <vector>

#include "src/core/event_counters.h"
#include "src/ir/passes/passes.h"
#include "src/ir/verifier.h"

namespace esd::ir::passes {
namespace {

// Per-block instruction counts for every function: the coordinate-stability
// fingerprint. Any deviation not covered by an exemption means a pass moved
// an instruction and the optimized module can no longer stand in for the
// original during search.
struct Shape {
  std::vector<std::vector<size_t>> block_sizes;  // [func][block]

  static Shape Of(const Module& m) {
    Shape s;
    s.block_sizes.resize(m.NumFunctions());
    for (uint32_t f = 0; f < m.NumFunctions(); ++f) {
      const Function& fn = m.Func(f);
      s.block_sizes[f].reserve(fn.blocks.size());
      for (const BasicBlock& bb : fn.blocks) {
        s.block_sizes[f].push_back(bb.insts.size());
      }
    }
    return s;
  }
};

// Checks `m` against the pre-pipeline shape, honoring the exemptions the
// passes declared. Returns an empty string when coordinates are intact.
std::string CheckShape(const Module& m, const Shape& before,
                       const ShapeExemptions& exempt) {
  if (m.NumFunctions() != before.block_sizes.size()) {
    return "function count changed";
  }
  for (uint32_t f = 0; f < m.NumFunctions(); ++f) {
    if (exempt.stubbed_funcs.count(f) > 0) {
      continue;
    }
    const Function& fn = m.Func(f);
    if (fn.blocks.size() != before.block_sizes[f].size()) {
      return "block count changed in " + fn.name;
    }
    for (uint32_t b = 0; b < fn.blocks.size(); ++b) {
      if (exempt.emptied_blocks.count({f, b}) > 0) {
        continue;
      }
      if (fn.blocks[b].insts.size() != before.block_sizes[f][b]) {
        return "instruction count changed in " + fn.name + " block " +
               std::to_string(b);
      }
    }
  }
  return {};
}

}  // namespace

PassManager::PassManager(const PassManagerOptions& options)
    : options_(options) {}

bool PassManager::Run(Module* m, const ProtectedSites& prot,
                      PassStats* stats) {
  PassStats local;
  if (stats == nullptr) {
    stats = &local;
  }
  log_.clear();
  std::ostringstream log;
  Shape before = Shape::Of(*m);
  ShapeExemptions exempt;

  struct Entry {
    const char* name;
    uint64_t (*run)(Module*, const ProtectedSites&, ShapeExemptions*,
                    PassStats*);
  };
  const Entry pipeline[] = {
      {"constant-fold",
       [](Module* m, const ProtectedSites& p, ShapeExemptions* e,
          PassStats* s) { return ConstantFoldPass(m, p, *e, s); }},
      {"branch-elide",
       [](Module* m, const ProtectedSites& p, ShapeExemptions* e,
          PassStats* s) { return BranchElidePass(m, p, *e, s); }},
      {"dce",
       [](Module* m, const ProtectedSites& p, ShapeExemptions* e,
          PassStats* s) { return DcePass(m, p, e, s); }},
      {"slice",
       [](Module* m, const ProtectedSites& p, ShapeExemptions* e,
          PassStats* s) { return SlicePass(m, p, e, s); }},
  };

  for (int round = 1; round <= options_.max_rounds; ++round) {
    uint64_t round_rewrites = 0;
    for (const Entry& pass : pipeline) {
      uint64_t n = pass.run(m, prot, &exempt, stats);
      CountEvent(&EventCounters::ir_passes_run);
      round_rewrites += n;
      log << "round " << round << ": " << pass.name << " " << n
          << " rewrite" << (n == 1 ? "" : "s") << "\n";
      if (n == 0) {
        continue;  // Nothing changed; checks below would be a no-op.
      }
      if (options_.verify_between) {
        std::vector<std::string> errors = Verify(*m);
        if (!errors.empty()) {
          log << "VERIFIER FAILED after " << pass.name << ": " << errors[0]
              << "\n";
          log_ = log.str();
          return false;
        }
      }
      std::string shape_err = CheckShape(*m, before, exempt);
      if (!shape_err.empty()) {
        log << "COORDINATE CHECK FAILED after " << pass.name << ": "
            << shape_err << "\n";
        log_ = log.str();
        return false;
      }
    }
    ++stats->rounds;
    if (round_rewrites == 0) {
      break;
    }
  }
  log_ = log.str();
  return true;
}

}  // namespace esd::ir::passes

// Pre-synthesis IR optimization pipeline.
//
// The synthesizer copies the module, optimizes the copy, and searches on
// it; the execution file it emits is replayed against the ORIGINAL module.
// Every pass therefore preserves two invariants:
//
//   1. Coordinate stability. The (function, block, instruction) address of
//      every surviving instruction is unchanged — execution files record
//      scheduler switches by step index and happens-before sites by
//      "func:block:inst" locator, and goals are extracted before
//      optimization. No pass inserts, removes, or reorders instructions in
//      code that can execute.
//   2. Trace equality. Any execution of the optimized module performs the
//      same dynamic instruction sequence (same (func, block, inst) at every
//      step) as the original. Passes only rewrite *within* instruction
//      slots: operands fold to the constants they provably equal, condbr
//      becomes br toward the edge it provably takes, dead arithmetic is
//      neutralized in place, and only code no execution can reach (dead
//      blocks, uncalled functions) is emptied.
//
// Pipeline order per round: constant folding -> branch elision -> dead-code
// neutralization (including dead-block emptying) -> goal-directed slicing,
// repeated to a fixpoint (bounded rounds). The pass manager verifies the
// module and checks the coordinate invariant between passes; any violation
// aborts the pipeline and the synthesizer falls back to the original
// module.
#ifndef ESD_SRC_IR_PASSES_PASSES_H_
#define ESD_SRC_IR_PASSES_PASSES_H_

#include <cstdint>
#include <set>
#include <string>

#include "src/ir/module.h"

namespace esd::ir::passes {

// Code the pipeline must keep intact: goal instructions (and any other
// sites an execution file may reference) plus the functions containing
// them and known thread roots.
struct ProtectedSites {
  std::set<uint32_t> funcs;  // Never sliced; their blocks never emptied away
                             // if they hold a protected site.
  std::set<InstRef> sites;   // Instructions left untouched by every pass.

  bool IsProtectedFunc(uint32_t f) const { return funcs.count(f) > 0; }
  bool IsProtectedSite(uint32_t f, uint32_t b, uint32_t i) const {
    return sites.count(InstRef{f, b, i}) > 0;
  }
  bool HasSiteIn(uint32_t f, uint32_t b) const {
    auto it = sites.lower_bound(InstRef{f, b, 0});
    return it != sites.end() && it->func == f && it->block == b;
  }
};

struct PassStats {
  uint64_t folded_operands = 0;    // Register operands rewritten to consts.
  uint64_t elided_branches = 0;    // kCondBr rewritten to kBr.
  uint64_t neutralized_insts = 0;  // Dead arithmetic re-pointed at zeros.
  uint64_t emptied_blocks = 0;     // Unreachable blocks -> [unreachable].
  uint64_t sliced_funcs = 0;       // Uncalled functions -> stub bodies.
  uint64_t rounds = 0;             // Pipeline rounds executed.

  uint64_t TotalRewrites() const {
    return folded_operands + elided_branches + neutralized_insts +
           emptied_blocks + sliced_funcs;
  }
};

// Blocks/functions whose shape legitimately changed (coordinate-check
// exemptions). Filled by the passes, consumed by the manager's checker.
struct ShapeExemptions {
  std::set<uint32_t> stubbed_funcs;
  std::set<std::pair<uint32_t, uint32_t>> emptied_blocks;  // (func, block)
};

// Each pass mutates `m` in place, bumps its PassStats categories, and
// returns the number of rewrites it performed.
uint64_t ConstantFoldPass(Module* m, const ProtectedSites& prot,
                          const ShapeExemptions& exempt, PassStats* stats);
uint64_t BranchElidePass(Module* m, const ProtectedSites& prot,
                         const ShapeExemptions& exempt, PassStats* stats);
uint64_t DcePass(Module* m, const ProtectedSites& prot,
                 ShapeExemptions* exempt, PassStats* stats);
uint64_t SlicePass(Module* m, const ProtectedSites& prot,
                   ShapeExemptions* exempt, PassStats* stats);

struct PassManagerOptions {
  int max_rounds = 4;         // Fixpoint bound; one round usually suffices.
  bool verify_between = true; // Run the IR verifier after every pass.
};

class PassManager {
 public:
  explicit PassManager(const PassManagerOptions& options = {});

  // Runs the pipeline. Returns true on success; false when a verifier or
  // coordinate-invariant failure aborted it (the module may then be
  // partially rewritten — callers should discard it and use the original).
  // `stats` (optional) accumulates rewrite counts; the human-readable
  // per-pass log is available from log() afterwards (--print-passes).
  bool Run(Module* m, const ProtectedSites& prot, PassStats* stats = nullptr);

  const std::string& log() const { return log_; }

 private:
  PassManagerOptions options_;
  std::string log_;
};

}  // namespace esd::ir::passes

#endif  // ESD_SRC_IR_PASSES_PASSES_H_

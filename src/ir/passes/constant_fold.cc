#include "src/analysis/cfg.h"
#include "src/analysis/range_analysis.h"
#include "src/ir/passes/passes.h"

namespace esd::ir::passes {

// Rewrites register operands to the constants the value-range analysis
// proves they always equal. Defining instructions are kept (trace equality:
// they still execute), which also keeps every register textually defined;
// defs made dead here are neutralized by the DCE pass in the same round.
uint64_t ConstantFoldPass(Module* m, const ProtectedSites& prot,
                          const ShapeExemptions& exempt, PassStats* stats) {
  uint64_t folded = 0;
  for (uint32_t f = 0; f < m->NumFunctions(); ++f) {
    Function& fn = m->Func(f);
    if (fn.is_external || fn.blocks.empty() ||
        exempt.stubbed_funcs.count(f) > 0) {
      continue;
    }
    analysis::Cfg cfg(*m, f);
    analysis::RangeAnalysis ranges(fn, cfg);
    for (uint32_t b = 0; b < fn.blocks.size(); ++b) {
      for (uint32_t i = 0; i < fn.blocks[b].insts.size(); ++i) {
        if (prot.IsProtectedSite(f, b, i)) {
          continue;
        }
        Instruction& inst = fn.blocks[b].insts[i];
        for (Value& v : inst.operands) {
          if (v.kind != Value::Kind::kReg || !IsInteger(v.type)) {
            continue;
          }
          analysis::Interval r = ranges.RangeOf(v, b, i);
          if (r.IsPoint()) {
            v = Value::Const(v.type, r.lo);
            ++folded;
          }
        }
      }
    }
  }
  stats->folded_operands += folded;
  return folded;
}

}  // namespace esd::ir::passes

#include <set>
#include <vector>

#include "src/ir/passes/passes.h"

namespace esd::ir::passes {
namespace {

// Pure register arithmetic that can be neutralized in place: no traps
// (div/rem can fault on zero), no memory, no control, no calls.
bool IsNeutralizable(Opcode op) {
  switch (op) {
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kLShr:
    case Opcode::kAShr:
    case Opcode::kICmp:
    case Opcode::kNot:
    case Opcode::kZExt:
    case Opcode::kSExt:
    case Opcode::kTrunc:
    case Opcode::kSelect:
    case Opcode::kGep:
      return true;
    default:
      return false;
  }
}

// Neutralizes dead register arithmetic: the result is used nowhere, so the
// instruction's operands are re-pointed at zeros of their types. The slot
// still executes (trace equality) but no longer keeps its inputs live —
// symbolic values feeding only dead arithmetic stop reaching the solver.
uint64_t NeutralizeDead(Function& fn, uint32_t f, const ProtectedSites& prot) {
  std::set<uint32_t> used;
  for (const BasicBlock& bb : fn.blocks) {
    for (const Instruction& inst : bb.insts) {
      for (const Value& v : inst.operands) {
        if (v.kind == Value::Kind::kReg) {
          used.insert(v.index);
        }
      }
    }
  }
  uint64_t neutralized = 0;
  for (uint32_t b = 0; b < fn.blocks.size(); ++b) {
    for (uint32_t i = 0; i < fn.blocks[b].insts.size(); ++i) {
      Instruction& inst = fn.blocks[b].insts[i];
      if (inst.result < 0 || !IsNeutralizable(inst.op) ||
          used.count(static_cast<uint32_t>(inst.result)) > 0 ||
          prot.IsProtectedSite(f, b, i)) {
        continue;
      }
      bool changed = false;
      for (Value& v : inst.operands) {
        if (v.kind != Value::Kind::kConst || v.imm != 0) {
          v = Value::Const(v.type, 0);
          changed = true;
        }
      }
      if (changed) {
        ++neutralized;
      }
    }
  }
  return neutralized;
}

// Empties blocks no execution can enter (unreachable from the entry over
// branch edges) down to a single `unreachable` terminator. Skipped when the
// block holds a protected site or defines a register some other block
// still names (the textual def must survive for the printer/parser
// round-trip and the verifier).
uint64_t EmptyDeadBlocks(Function& fn, uint32_t f, const ProtectedSites& prot,
                         ShapeExemptions* exempt, uint64_t* emptied) {
  size_t n = fn.blocks.size();
  std::vector<bool> reachable(n, false);
  std::vector<uint32_t> work{0};
  reachable[0] = true;
  while (!work.empty()) {
    uint32_t b = work.back();
    work.pop_back();
    for (const Instruction& inst : fn.blocks[b].insts) {
      if (inst.op == Opcode::kBr || inst.op == Opcode::kCondBr) {
        for (uint32_t s : {inst.succ_true, inst.succ_false}) {
          if (s != kInvalidIndex && s < n && !reachable[s]) {
            reachable[s] = true;
            work.push_back(s);
          }
        }
      }
    }
  }
  uint64_t changes = 0;
  for (uint32_t b = 1; b < n; ++b) {
    if (reachable[b] || prot.HasSiteIn(f, b)) {
      continue;
    }
    BasicBlock& bb = fn.blocks[b];
    if (bb.insts.size() == 1 && bb.insts[0].op == Opcode::kUnreachable) {
      continue;  // Already a tombstone.
    }
    bool defs_escape = false;
    for (const Instruction& inst : bb.insts) {
      if (inst.result < 0) {
        continue;
      }
      for (uint32_t ob = 0; ob < n && !defs_escape; ++ob) {
        if (ob == b) {
          continue;
        }
        for (const Instruction& other : fn.blocks[ob].insts) {
          for (const Value& v : other.operands) {
            if (v.kind == Value::Kind::kReg &&
                v.index == static_cast<uint32_t>(inst.result)) {
              defs_escape = true;
              break;
            }
          }
          if (defs_escape) {
            break;
          }
        }
      }
      if (defs_escape) {
        break;
      }
    }
    if (defs_escape) {
      continue;
    }
    Instruction tomb;
    tomb.op = Opcode::kUnreachable;
    bb.insts.assign(1, tomb);
    exempt->emptied_blocks.emplace(f, b);
    ++*emptied;
    ++changes;
  }
  return changes;
}

}  // namespace

uint64_t DcePass(Module* m, const ProtectedSites& prot,
                 ShapeExemptions* exempt, PassStats* stats) {
  uint64_t rewrites = 0;
  uint64_t emptied = 0;
  for (uint32_t f = 0; f < m->NumFunctions(); ++f) {
    Function& fn = m->Func(f);
    if (fn.is_external || fn.blocks.empty() ||
        exempt->stubbed_funcs.count(f) > 0) {
      continue;
    }
    uint64_t neutralized = NeutralizeDead(fn, f, prot);
    stats->neutralized_insts += neutralized;
    rewrites += neutralized;
    rewrites += EmptyDeadBlocks(fn, f, prot, exempt, &emptied);
  }
  stats->emptied_blocks += emptied;
  return rewrites;
}

}  // namespace esd::ir::passes

#include <set>
#include <vector>

#include "src/ir/passes/passes.h"

namespace esd::ir::passes {

// Goal-directed slicing at function granularity: functions unreachable from
// main and the protected (goal) functions — by direct call or by having
// their address taken anywhere reachable — can never execute, so their
// bodies are replaced by a one-instruction `[unreachable]` stub. Function
// indices and signatures are untouched (call sites in dead code keep
// verifying); only the body shrinks, which the coordinate checker is told
// about via the exemption set.
uint64_t SlicePass(Module* m, const ProtectedSites& prot,
                   ShapeExemptions* exempt, PassStats* stats) {
  std::set<uint32_t> reachable;
  std::vector<uint32_t> work;
  auto add = [&](uint32_t f) {
    if (f < m->NumFunctions() && reachable.insert(f).second) {
      work.push_back(f);
    }
  };
  if (auto main_fn = m->FindFunction("main")) {
    add(*main_fn);
  }
  for (uint32_t f : prot.funcs) {
    add(f);
  }
  while (!work.empty()) {
    uint32_t f = work.back();
    work.pop_back();
    const Function& fn = m->Func(f);
    if (fn.is_external || exempt->stubbed_funcs.count(f) > 0) {
      continue;
    }
    for (const BasicBlock& bb : fn.blocks) {
      for (const Instruction& inst : bb.insts) {
        if (inst.op == Opcode::kCall && inst.callee != kInvalidIndex) {
          add(inst.callee);
        }
        for (const Value& v : inst.operands) {
          if (v.kind == Value::Kind::kFuncRef) {
            add(v.index);
          }
        }
      }
    }
  }

  uint64_t sliced = 0;
  for (uint32_t f = 0; f < m->NumFunctions(); ++f) {
    Function& fn = m->Func(f);
    if (fn.is_external || fn.blocks.empty() || reachable.count(f) > 0 ||
        exempt->stubbed_funcs.count(f) > 0) {
      continue;
    }
    BasicBlock stub;
    stub.label = fn.blocks[0].label;
    Instruction tomb;
    tomb.op = Opcode::kUnreachable;
    stub.insts.push_back(tomb);
    fn.blocks.assign(1, std::move(stub));
    exempt->stubbed_funcs.insert(f);
    ++sliced;
  }
  stats->sliced_funcs += sliced;
  return sliced;
}

}  // namespace esd::ir::passes

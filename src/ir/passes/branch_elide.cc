#include "src/analysis/cfg.h"
#include "src/analysis/range_analysis.h"
#include "src/ir/passes/passes.h"

namespace esd::ir::passes {

// Rewrites kCondBr to kBr when the taken edge is statically known: the
// condition's range is pinned to a single boolean, or both edges lead to
// the same block. The branch instruction stays in its slot (one dynamic
// step either way), so traces are unchanged; the search, however, stops
// forking states at the dead edge.
uint64_t BranchElidePass(Module* m, const ProtectedSites& prot,
                         const ShapeExemptions& exempt, PassStats* stats) {
  uint64_t elided = 0;
  for (uint32_t f = 0; f < m->NumFunctions(); ++f) {
    Function& fn = m->Func(f);
    if (fn.is_external || fn.blocks.empty() ||
        exempt.stubbed_funcs.count(f) > 0) {
      continue;
    }
    analysis::Cfg cfg(*m, f);
    analysis::RangeAnalysis ranges(fn, cfg);
    for (uint32_t b = 0; b < fn.blocks.size(); ++b) {
      if (fn.blocks[b].insts.empty()) {
        continue;
      }
      uint32_t last = static_cast<uint32_t>(fn.blocks[b].insts.size() - 1);
      Instruction& term = fn.blocks[b].insts[last];
      if (term.op != Opcode::kCondBr || prot.IsProtectedSite(f, b, last)) {
        continue;
      }
      uint32_t target = kInvalidIndex;
      if (term.succ_true == term.succ_false) {
        target = term.succ_true;  // Degenerate: both edges agree.
      } else {
        analysis::Interval c = ranges.RangeOf(term.operands[0], b, last);
        if (c == analysis::Interval{1, 1}) {
          target = term.succ_true;
        } else if (c == analysis::Interval{0, 0}) {
          target = term.succ_false;
        }
      }
      if (target == kInvalidIndex) {
        continue;
      }
      term.op = Opcode::kBr;
      term.succ_true = target;
      term.succ_false = kInvalidIndex;
      term.operands.clear();
      ++elided;
    }
  }
  stats->elided_branches += elided;
  return elided;
}

}  // namespace esd::ir::passes

#include "src/ir/verifier.h"

#include <sstream>

namespace esd::ir {
namespace {

class FunctionVerifier {
 public:
  FunctionVerifier(const Module& module, uint32_t func_index,
                   std::vector<std::string>* errors)
      : module_(module), fn_(module.Func(func_index)), errors_(errors) {}

  void Run() {
    if (fn_.is_external) {
      if (!fn_.blocks.empty()) {
        Error("external function has a body");
      }
      return;
    }
    if (fn_.blocks.empty()) {
      Error("defined function has no blocks");
      return;
    }
    for (uint32_t b = 0; b < fn_.blocks.size(); ++b) {
      VerifyBlock(b);
    }
  }

 private:
  void Error(const std::string& message) {
    std::ostringstream os;
    os << fn_.name << ": " << message;
    errors_->push_back(os.str());
  }

  void ErrorAt(uint32_t block, uint32_t inst, const std::string& message) {
    std::ostringstream os;
    os << fn_.name << ":" << fn_.blocks[block].label << ":" << inst << ": " << message;
    errors_->push_back(os.str());
  }

  void VerifyBlock(uint32_t b) {
    const BasicBlock& bb = fn_.blocks[b];
    if (bb.insts.empty()) {
      Error("block '" + bb.label + "' is empty");
      return;
    }
    for (uint32_t i = 0; i < bb.insts.size(); ++i) {
      const Instruction& inst = bb.insts[i];
      bool last = i + 1 == bb.insts.size();
      if (inst.IsTerminator() != last) {
        ErrorAt(b, i, last ? "block does not end with a terminator"
                           : "terminator in the middle of a block");
      }
      VerifyInst(b, i, inst);
    }
  }

  bool CheckOperandCount(uint32_t b, uint32_t i, const Instruction& inst, size_t want) {
    if (inst.operands.size() != want) {
      std::ostringstream os;
      os << OpcodeName(inst.op) << " expects " << want << " operands, has "
         << inst.operands.size();
      ErrorAt(b, i, os.str());
      return false;
    }
    return true;
  }

  void CheckValue(uint32_t b, uint32_t i, const Value& v) {
    switch (v.kind) {
      case Value::Kind::kNone:
        ErrorAt(b, i, "operand is missing");
        break;
      case Value::Kind::kReg:
        if (v.index >= fn_.num_regs) {
          ErrorAt(b, i, "register index out of range");
        }
        break;
      case Value::Kind::kConst:
        break;
      case Value::Kind::kFuncRef:
        if (v.index >= module_.NumFunctions()) {
          ErrorAt(b, i, "function reference out of range");
        }
        break;
      case Value::Kind::kGlobalRef:
        if (v.index >= module_.NumGlobals()) {
          ErrorAt(b, i, "global reference out of range");
        }
        break;
    }
  }

  void CheckBranchTarget(uint32_t b, uint32_t i, uint32_t target) {
    if (target >= fn_.blocks.size()) {
      ErrorAt(b, i, "branch target out of range");
    }
  }

  void CheckResult(uint32_t b, uint32_t i, const Instruction& inst, bool want_result) {
    if (want_result) {
      if (inst.result < 0 || static_cast<uint32_t>(inst.result) >= fn_.num_regs) {
        ErrorAt(b, i, "missing or out-of-range result register");
      }
    } else if (inst.result >= 0) {
      ErrorAt(b, i, "instruction must not produce a result");
    }
  }

  void VerifyInst(uint32_t b, uint32_t i, const Instruction& inst) {
    for (const Value& v : inst.operands) {
      CheckValue(b, i, v);
    }
    switch (inst.op) {
      case Opcode::kAdd:
      case Opcode::kSub:
      case Opcode::kMul:
      case Opcode::kUDiv:
      case Opcode::kSDiv:
      case Opcode::kURem:
      case Opcode::kSRem:
      case Opcode::kAnd:
      case Opcode::kOr:
      case Opcode::kXor:
      case Opcode::kShl:
      case Opcode::kLShr:
      case Opcode::kAShr:
        if (CheckOperandCount(b, i, inst, 2)) {
          if (inst.operands[0].type != inst.operands[1].type ||
              inst.operands[0].type != inst.type) {
            ErrorAt(b, i, "binary operand/result type mismatch");
          }
        }
        CheckResult(b, i, inst, /*want_result=*/true);
        break;
      case Opcode::kICmp:
        if (CheckOperandCount(b, i, inst, 2)) {
          if (inst.operands[0].type != inst.operands[1].type) {
            ErrorAt(b, i, "icmp operand type mismatch");
          }
        }
        if (inst.type != Type::kI1) {
          ErrorAt(b, i, "icmp result must be i1");
        }
        CheckResult(b, i, inst, /*want_result=*/true);
        break;
      case Opcode::kNot:
        if (CheckOperandCount(b, i, inst, 1)) {
          if (inst.operands[0].type != inst.type) {
            ErrorAt(b, i, "not operand/result type mismatch");
          }
        }
        CheckResult(b, i, inst, /*want_result=*/true);
        break;
      case Opcode::kZExt:
      case Opcode::kSExt:
        if (CheckOperandCount(b, i, inst, 1)) {
          if (BitWidth(inst.operands[0].type) > BitWidth(inst.type)) {
            ErrorAt(b, i, "extension narrows the value");
          }
        }
        CheckResult(b, i, inst, /*want_result=*/true);
        break;
      case Opcode::kTrunc:
        if (CheckOperandCount(b, i, inst, 1)) {
          if (BitWidth(inst.operands[0].type) < BitWidth(inst.type)) {
            ErrorAt(b, i, "truncation widens the value");
          }
        }
        CheckResult(b, i, inst, /*want_result=*/true);
        break;
      case Opcode::kSelect:
        if (CheckOperandCount(b, i, inst, 3)) {
          if (inst.operands[0].type != Type::kI1) {
            ErrorAt(b, i, "select condition must be i1");
          }
          if (inst.operands[1].type != inst.operands[2].type ||
              inst.operands[1].type != inst.type) {
            ErrorAt(b, i, "select arm/result type mismatch");
          }
        }
        CheckResult(b, i, inst, /*want_result=*/true);
        break;
      case Opcode::kAlloca:
        CheckOperandCount(b, i, inst, 0);
        if (inst.imm == 0) {
          ErrorAt(b, i, "alloca of zero bytes");
        }
        CheckResult(b, i, inst, /*want_result=*/true);
        break;
      case Opcode::kLoad:
        if (CheckOperandCount(b, i, inst, 1)) {
          if (inst.operands[0].type != Type::kPtr) {
            ErrorAt(b, i, "load address must be ptr");
          }
        }
        if (inst.type == Type::kVoid) {
          ErrorAt(b, i, "load must have a result type");
        }
        CheckResult(b, i, inst, /*want_result=*/true);
        break;
      case Opcode::kStore:
        if (CheckOperandCount(b, i, inst, 2)) {
          if (inst.operands[1].type != Type::kPtr) {
            ErrorAt(b, i, "store address must be ptr");
          }
        }
        CheckResult(b, i, inst, /*want_result=*/false);
        break;
      case Opcode::kGep:
        if (CheckOperandCount(b, i, inst, 2)) {
          if (inst.operands[0].type != Type::kPtr) {
            ErrorAt(b, i, "gep base must be ptr");
          }
        }
        CheckResult(b, i, inst, /*want_result=*/true);
        break;
      case Opcode::kBr:
        CheckOperandCount(b, i, inst, 0);
        CheckBranchTarget(b, i, inst.succ_true);
        break;
      case Opcode::kCondBr:
        if (CheckOperandCount(b, i, inst, 1)) {
          if (inst.operands[0].type != Type::kI1) {
            ErrorAt(b, i, "condbr condition must be i1");
          }
        }
        CheckBranchTarget(b, i, inst.succ_true);
        CheckBranchTarget(b, i, inst.succ_false);
        break;
      case Opcode::kCall:
        VerifyCall(b, i, inst);
        break;
      case Opcode::kRet:
        if (fn_.ret_type == Type::kVoid) {
          CheckOperandCount(b, i, inst, 0);
        } else if (CheckOperandCount(b, i, inst, 1)) {
          if (inst.operands[0].type != fn_.ret_type) {
            ErrorAt(b, i, "return value type mismatch");
          }
        }
        break;
      case Opcode::kUnreachable:
        CheckOperandCount(b, i, inst, 0);
        break;
    }
  }

  void VerifyCall(uint32_t b, uint32_t i, const Instruction& inst) {
    if (inst.callee != kInvalidIndex) {
      if (inst.callee >= module_.NumFunctions()) {
        ErrorAt(b, i, "call target out of range");
        return;
      }
      const Function& callee = module_.Func(inst.callee);
      if (!callee.is_external && callee.blocks.empty()) {
        ErrorAt(b, i, "call to undefined function '" + callee.name + "'");
      }
      if (inst.operands.size() != callee.params.size()) {
        ErrorAt(b, i, "call arity mismatch for '" + callee.name + "'");
      } else {
        for (size_t a = 0; a < inst.operands.size(); ++a) {
          if (inst.operands[a].type != callee.params[a]) {
            ErrorAt(b, i, "call argument type mismatch for '" + callee.name + "'");
          }
        }
      }
      if (inst.type != callee.ret_type) {
        ErrorAt(b, i, "call return type mismatch for '" + callee.name + "'");
      }
    } else {
      if (inst.operands.empty() || inst.operands[0].type != Type::kPtr) {
        ErrorAt(b, i, "indirect call needs a ptr callee operand");
      }
    }
    if (inst.type != Type::kVoid) {
      CheckResult(b, i, inst, /*want_result=*/true);
    }
  }

  const Module& module_;
  const Function& fn_;
  std::vector<std::string>* errors_;
};

}  // namespace

std::vector<std::string> Verify(const Module& module) {
  std::vector<std::string> errors;
  for (uint32_t f = 0; f < module.NumFunctions(); ++f) {
    FunctionVerifier(module, f, &errors).Run();
  }
  return errors;
}

}  // namespace esd::ir

// ESD IR: operands, opcodes, instructions, and instruction addresses.
#ifndef ESD_SRC_IR_INSTRUCTION_H_
#define ESD_SRC_IR_INSTRUCTION_H_

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "src/ir/type.h"

namespace esd::ir {

inline constexpr uint32_t kInvalidIndex = std::numeric_limits<uint32_t>::max();

enum class Opcode : uint8_t {
  // Binary arithmetic / bitwise. Operands: lhs, rhs. Result: same type.
  kAdd,
  kSub,
  kMul,
  kUDiv,
  kSDiv,
  kURem,
  kSRem,
  kAnd,
  kOr,
  kXor,
  kShl,
  kLShr,
  kAShr,
  // Comparison. Operands: lhs, rhs. Result: i1. Predicate in `pred`.
  kICmp,
  // Unary bitwise complement.
  kNot,
  // Width conversions. Operand: value. Result type in `type`.
  kZExt,
  kSExt,
  kTrunc,
  // Ternary select. Operands: cond (i1), if_true, if_false.
  kSelect,
  // Stack allocation of `imm` bytes. Result: ptr. Freed on function return.
  kAlloca,
  // Memory. kLoad: operand ptr, result `type`. kStore: operands value, ptr.
  kLoad,
  kStore,
  // Pointer arithmetic: result = ptr + index * imm(scale). Operands: ptr, index.
  kGep,
  // Control flow. kBr: target in succ_true. kCondBr: operand cond (i1),
  // then-edge succ_true, else-edge succ_false.
  kBr,
  kCondBr,
  // Call. Direct: callee function index in `callee`, args in operands.
  // Indirect: operands[0] is the function pointer, args follow.
  kCall,
  // Return. Optional operand: return value.
  kRet,
  // Reaching this instruction is a program error (used for infeasible paths).
  kUnreachable,
};

enum class CmpPred : uint8_t {
  kEq,
  kNe,
  kUlt,
  kUle,
  kUgt,
  kUge,
  kSlt,
  kSle,
  kSgt,
  kSge,
};

std::string_view OpcodeName(Opcode op);
std::string_view CmpPredName(CmpPred pred);

// An instruction operand. Registers are function-local virtual registers
// (arguments occupy registers [0, num_params)). Constants carry an immediate.
// Function refs and global refs evaluate to pointers at runtime.
struct Value {
  enum class Kind : uint8_t { kNone, kReg, kConst, kFuncRef, kGlobalRef };

  Kind kind = Kind::kNone;
  Type type = Type::kVoid;
  uint32_t index = kInvalidIndex;  // Register / function / global index.
  uint64_t imm = 0;                // Constant payload (truncated to `type`).

  static Value Reg(uint32_t index, Type type) {
    return Value{Kind::kReg, type, index, 0};
  }
  static Value Const(Type type, uint64_t imm) {
    return Value{Kind::kConst, type, kInvalidIndex, TruncateToType(type, imm)};
  }
  static Value FuncRef(uint32_t func_index) {
    return Value{Kind::kFuncRef, Type::kPtr, func_index, 0};
  }
  static Value GlobalRef(uint32_t global_index) {
    return Value{Kind::kGlobalRef, Type::kPtr, global_index, 0};
  }
  bool IsValid() const { return kind != Kind::kNone; }
};

struct Instruction {
  Opcode op;
  Type type = Type::kVoid;     // Result type (kVoid if no result).
  int32_t result = -1;         // Destination register, -1 if none.
  CmpPred pred = CmpPred::kEq;
  uint64_t imm = 0;            // Alloca size / gep scale.
  uint32_t callee = kInvalidIndex;  // Direct-call target function index.
  uint32_t succ_true = kInvalidIndex;   // Branch targets (block indices).
  uint32_t succ_false = kInvalidIndex;
  std::vector<Value> operands;

  bool IsTerminator() const {
    return op == Opcode::kBr || op == Opcode::kCondBr || op == Opcode::kRet ||
           op == Opcode::kUnreachable;
  }
};

// A program location: function, basic block, and instruction offset within
// the block. Used as the program counter, as goal identifiers, and in stack
// traces inside coredumps.
struct InstRef {
  uint32_t func = kInvalidIndex;
  uint32_t block = kInvalidIndex;
  uint32_t inst = 0;

  bool IsValid() const { return func != kInvalidIndex; }
  friend bool operator==(const InstRef&, const InstRef&) = default;
  friend auto operator<=>(const InstRef&, const InstRef&) = default;
};

struct InstRefHash {
  size_t operator()(const InstRef& r) const {
    return (size_t{r.func} << 40) ^ (size_t{r.block} << 16) ^ r.inst;
  }
};

}  // namespace esd::ir

#endif  // ESD_SRC_IR_INSTRUCTION_H_

// ESD IR: structural well-formedness checks.
#ifndef ESD_SRC_IR_VERIFIER_H_
#define ESD_SRC_IR_VERIFIER_H_

#include <string>
#include <vector>

#include "src/ir/module.h"

namespace esd::ir {

// Checks that every function in `module` is structurally valid:
//  - every block ends with exactly one terminator (and has no terminator
//    mid-block);
//  - branch targets are valid block indices;
//  - register indices are in range and operand/result types are consistent;
//  - direct-call arity and argument/return types match the callee signature;
//  - global and function references are in range;
//  - external functions have no body; defined functions have at least one
//    block.
// Returns a list of human-readable error strings; empty means valid.
std::vector<std::string> Verify(const Module& module);

}  // namespace esd::ir

#endif  // ESD_SRC_IR_VERIFIER_H_

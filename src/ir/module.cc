#include "src/ir/module.h"

#include <sstream>

namespace esd::ir {

std::string_view TypeName(Type t) {
  switch (t) {
    case Type::kVoid:
      return "void";
    case Type::kI1:
      return "i1";
    case Type::kI8:
      return "i8";
    case Type::kI16:
      return "i16";
    case Type::kI32:
      return "i32";
    case Type::kI64:
      return "i64";
    case Type::kPtr:
      return "ptr";
  }
  return "?";
}

bool ParseTypeName(std::string_view name, Type* out) {
  if (name == "void") {
    *out = Type::kVoid;
  } else if (name == "i1") {
    *out = Type::kI1;
  } else if (name == "i8") {
    *out = Type::kI8;
  } else if (name == "i16") {
    *out = Type::kI16;
  } else if (name == "i32") {
    *out = Type::kI32;
  } else if (name == "i64") {
    *out = Type::kI64;
  } else if (name == "ptr") {
    *out = Type::kPtr;
  } else {
    *out = Type::kVoid;
    return false;
  }
  return true;
}

std::string_view OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kAdd:
      return "add";
    case Opcode::kSub:
      return "sub";
    case Opcode::kMul:
      return "mul";
    case Opcode::kUDiv:
      return "udiv";
    case Opcode::kSDiv:
      return "sdiv";
    case Opcode::kURem:
      return "urem";
    case Opcode::kSRem:
      return "srem";
    case Opcode::kAnd:
      return "and";
    case Opcode::kOr:
      return "or";
    case Opcode::kXor:
      return "xor";
    case Opcode::kShl:
      return "shl";
    case Opcode::kLShr:
      return "lshr";
    case Opcode::kAShr:
      return "ashr";
    case Opcode::kICmp:
      return "icmp";
    case Opcode::kNot:
      return "not";
    case Opcode::kZExt:
      return "zext";
    case Opcode::kSExt:
      return "sext";
    case Opcode::kTrunc:
      return "trunc";
    case Opcode::kSelect:
      return "select";
    case Opcode::kAlloca:
      return "alloca";
    case Opcode::kLoad:
      return "load";
    case Opcode::kStore:
      return "store";
    case Opcode::kGep:
      return "gep";
    case Opcode::kBr:
      return "br";
    case Opcode::kCondBr:
      return "condbr";
    case Opcode::kCall:
      return "call";
    case Opcode::kRet:
      return "ret";
    case Opcode::kUnreachable:
      return "unreachable";
  }
  return "?";
}

std::string_view CmpPredName(CmpPred pred) {
  switch (pred) {
    case CmpPred::kEq:
      return "eq";
    case CmpPred::kNe:
      return "ne";
    case CmpPred::kUlt:
      return "ult";
    case CmpPred::kUle:
      return "ule";
    case CmpPred::kUgt:
      return "ugt";
    case CmpPred::kUge:
      return "uge";
    case CmpPred::kSlt:
      return "slt";
    case CmpPred::kSle:
      return "sle";
    case CmpPred::kSgt:
      return "sgt";
    case CmpPred::kSge:
      return "sge";
  }
  return "?";
}

std::optional<uint32_t> Function::FindBlock(std::string_view label) const {
  for (uint32_t i = 0; i < blocks.size(); ++i) {
    if (blocks[i].label == label) {
      return i;
    }
  }
  return std::nullopt;
}

uint32_t Module::AddFunction(Function f) {
  uint32_t index = static_cast<uint32_t>(functions_.size());
  function_index_.emplace(f.name, index);
  functions_.push_back(std::move(f));
  return index;
}

uint32_t Module::AddGlobal(Global g) {
  uint32_t index = static_cast<uint32_t>(globals_.size());
  global_index_.emplace(g.name, index);
  globals_.push_back(std::move(g));
  return index;
}

std::optional<uint32_t> Module::FindFunction(std::string_view name) const {
  auto it = function_index_.find(name);
  if (it == function_index_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::optional<uint32_t> Module::FindGlobal(std::string_view name) const {
  auto it = global_index_.find(name);
  if (it == global_index_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::string Module::Describe(const InstRef& ref) const {
  std::ostringstream os;
  if (ref.func >= functions_.size()) {
    os << "<invalid:" << ref.func << ">";
    return os.str();
  }
  const Function& f = functions_[ref.func];
  os << f.name;
  if (ref.block < f.blocks.size()) {
    os << ":" << f.blocks[ref.block].label << ":" << ref.inst;
  }
  return os.str();
}

size_t Module::TotalInstructions() const {
  size_t n = 0;
  for (const Function& f : functions_) {
    for (const BasicBlock& b : f.blocks) {
      n += b.insts.size();
    }
  }
  return n;
}

}  // namespace esd::ir

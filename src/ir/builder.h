// ESD IR: fluent construction API.
//
// Typical use:
//   ir::Module module;
//   ir::ModuleBuilder mb(&module);
//   mb.DeclareExternal("getchar", ir::Type::kI32, {});
//   ir::FunctionBuilder fb = mb.BeginFunction("main", ir::Type::kI32, {});
//   ir::Value c = fb.Call("getchar", {});
//   ...
//   fb.Ret(fb.ConstI32(0));
//   fb.Finish();
//
// Forward references are allowed: calling a function that has not been built
// yet creates a placeholder that a later BeginFunction() with the same name
// fills in.
#ifndef ESD_SRC_IR_BUILDER_H_
#define ESD_SRC_IR_BUILDER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/ir/module.h"

namespace esd::ir {

class ModuleBuilder;

// Builds one function. Blocks are created up front (or on demand) and
// instructions are appended to the "current" block. The builder assigns
// virtual registers; parameters occupy registers [0, params.size()).
class FunctionBuilder {
 public:
  // Creates (or returns) the index of the block with the given label.
  uint32_t Block(std::string_view label);
  // Renames the entry block (created as "entry" by BeginFunction).
  void RenameEntry(std::string_view label);
  // Makes `block` the insertion point.
  void SetBlock(uint32_t block);
  uint32_t CurrentBlock() const { return current_block_; }

  Value Param(uint32_t i) const;

  // Constants.
  static Value ConstI1(bool v) { return Value::Const(Type::kI1, v ? 1 : 0); }
  static Value ConstI8(uint8_t v) { return Value::Const(Type::kI8, v); }
  static Value ConstI32(uint32_t v) { return Value::Const(Type::kI32, v); }
  static Value ConstI64(uint64_t v) { return Value::Const(Type::kI64, v); }
  static Value NullPtr() { return Value::Const(Type::kPtr, 0); }

  // Arithmetic / bitwise.
  Value Binary(Opcode op, Value lhs, Value rhs);
  Value Add(Value a, Value b) { return Binary(Opcode::kAdd, a, b); }
  Value Sub(Value a, Value b) { return Binary(Opcode::kSub, a, b); }
  Value Mul(Value a, Value b) { return Binary(Opcode::kMul, a, b); }
  Value UDiv(Value a, Value b) { return Binary(Opcode::kUDiv, a, b); }
  Value SDiv(Value a, Value b) { return Binary(Opcode::kSDiv, a, b); }
  Value URem(Value a, Value b) { return Binary(Opcode::kURem, a, b); }
  Value SRem(Value a, Value b) { return Binary(Opcode::kSRem, a, b); }
  Value And(Value a, Value b) { return Binary(Opcode::kAnd, a, b); }
  Value Or(Value a, Value b) { return Binary(Opcode::kOr, a, b); }
  Value Xor(Value a, Value b) { return Binary(Opcode::kXor, a, b); }
  Value Shl(Value a, Value b) { return Binary(Opcode::kShl, a, b); }
  Value LShr(Value a, Value b) { return Binary(Opcode::kLShr, a, b); }
  Value AShr(Value a, Value b) { return Binary(Opcode::kAShr, a, b); }

  Value ICmp(CmpPred pred, Value lhs, Value rhs);
  Value Not(Value v);
  Value ZExt(Value v, Type to);
  Value SExt(Value v, Type to);
  Value Trunc(Value v, Type to);
  Value Select(Value cond, Value if_true, Value if_false);

  // Memory.
  Value Alloca(uint32_t bytes);
  Value Load(Type type, Value ptr);
  void Store(Value value, Value ptr);
  Value Gep(Value ptr, Value index, uint32_t scale);
  Value GepConst(Value ptr, uint64_t byte_offset);

  // Control flow.
  void Br(uint32_t target);
  void CondBr(Value cond, uint32_t if_true, uint32_t if_false);
  void Ret();
  void Ret(Value v);
  void Unreachable();

  // Calls. Direct calls resolve by name (forward references allowed).
  Value Call(std::string_view callee, std::vector<Value> args);
  Value CallIndirect(Type ret_type, Value fn_ptr, std::vector<Value> args);

  Value FuncAddr(std::string_view name);
  Value GlobalAddr(std::string_view name);

  // Seals the function into the module. Must be called exactly once.
  void Finish();

 private:
  friend class ModuleBuilder;

  FunctionBuilder(ModuleBuilder* parent, uint32_t func_index, Function fn);

  Value NewReg(Type type);
  Instruction& Append(Instruction inst);

  ModuleBuilder* parent_;
  uint32_t func_index_;
  Function fn_;
  uint32_t current_block_ = 0;
  bool finished_ = false;
};

class ModuleBuilder {
 public:
  explicit ModuleBuilder(Module* module) : module_(module) {}

  // Declares an external function handled by the VM externals registry.
  void DeclareExternal(std::string_view name, Type ret_type, std::vector<Type> params);

  // Adds a global of `size` bytes, optionally initialized with `init`.
  uint32_t AddGlobal(std::string_view name, uint32_t size, std::vector<uint8_t> init = {});
  // Adds a NUL-terminated string global; returns the global index.
  uint32_t AddStringGlobal(std::string_view name, std::string_view text);

  FunctionBuilder BeginFunction(std::string_view name, Type ret_type,
                                std::vector<Type> params);

  // Returns the index of `name`, creating an empty placeholder if needed.
  uint32_t EnsureFunction(std::string_view name);

  // Forward-declares a defined-later function with its signature, so calls
  // built before the body exists get the right return type.
  uint32_t DeclareFunction(std::string_view name, Type ret_type,
                           std::vector<Type> params);

  Module* module() { return module_; }

 private:
  friend class FunctionBuilder;
  Module* module_;
};

}  // namespace esd::ir

#endif  // ESD_SRC_IR_BUILDER_H_

#include "src/ir/printer.h"

#include <cstdio>
#include <sstream>

namespace esd::ir {
namespace {

void PrintValue(std::ostream& os, const Module& module, const Value& v) {
  switch (v.kind) {
    case Value::Kind::kNone:
      os << "<none>";
      break;
    case Value::Kind::kReg:
      os << "%r" << v.index;
      break;
    case Value::Kind::kConst:
      if (v.type == Type::kPtr && v.imm == 0) {
        os << "null";
      } else {
        os << TypeName(v.type) << " " << v.imm;
      }
      break;
    case Value::Kind::kFuncRef:
      os << "@" << module.Func(v.index).name;
      break;
    case Value::Kind::kGlobalRef:
      os << "$" << module.GlobalAt(v.index).name;
      break;
  }
}

void PrintOperandList(std::ostream& os, const Module& module, const Instruction& inst,
                      size_t first) {
  for (size_t i = first; i < inst.operands.size(); ++i) {
    if (i != first) {
      os << ", ";
    }
    PrintValue(os, module, inst.operands[i]);
  }
}

}  // namespace

std::string PrintInstruction(const Module& module, const Function& fn,
                             const Instruction& inst) {
  std::ostringstream os;
  if (inst.result >= 0) {
    os << "%r" << inst.result << " = ";
  }
  switch (inst.op) {
    case Opcode::kICmp:
      os << "icmp " << CmpPredName(inst.pred) << " ";
      PrintOperandList(os, module, inst, 0);
      break;
    case Opcode::kZExt:
    case Opcode::kSExt:
    case Opcode::kTrunc:
      os << OpcodeName(inst.op) << " " << TypeName(inst.type) << ", ";
      PrintOperandList(os, module, inst, 0);
      break;
    case Opcode::kAlloca:
      os << "alloca " << inst.imm;
      break;
    case Opcode::kLoad:
      os << "load " << TypeName(inst.type) << ", ";
      PrintOperandList(os, module, inst, 0);
      break;
    case Opcode::kGep:
      os << "gep ";
      PrintOperandList(os, module, inst, 0);
      os << ", " << inst.imm;
      break;
    case Opcode::kBr:
      os << "br " << fn.blocks[inst.succ_true].label;
      break;
    case Opcode::kCondBr:
      os << "condbr ";
      PrintOperandList(os, module, inst, 0);
      os << ", " << fn.blocks[inst.succ_true].label << ", "
         << fn.blocks[inst.succ_false].label;
      break;
    case Opcode::kCall:
      if (inst.callee != kInvalidIndex) {
        os << "call @" << module.Func(inst.callee).name << "(";
        PrintOperandList(os, module, inst, 0);
        os << ")";
      } else {
        os << "calli " << TypeName(inst.type) << " ";
        PrintValue(os, module, inst.operands[0]);
        os << "(";
        PrintOperandList(os, module, inst, 1);
        os << ")";
      }
      break;
    default:
      os << OpcodeName(inst.op);
      if (!inst.operands.empty()) {
        os << " ";
        PrintOperandList(os, module, inst, 0);
      }
      break;
  }
  return os.str();
}

std::string PrintFunction(const Module& module, uint32_t func_index) {
  const Function& fn = module.Func(func_index);
  std::ostringstream os;
  if (fn.is_external) {
    os << "extern @" << fn.name << "(";
    for (size_t i = 0; i < fn.params.size(); ++i) {
      if (i) {
        os << ", ";
      }
      os << TypeName(fn.params[i]);
    }
    os << ") : " << TypeName(fn.ret_type) << "\n";
    return os.str();
  }
  os << "func @" << fn.name << "(";
  for (size_t i = 0; i < fn.params.size(); ++i) {
    if (i) {
      os << ", ";
    }
    os << "%r" << i << ": " << TypeName(fn.params[i]);
  }
  os << ") : " << TypeName(fn.ret_type) << " {\n";
  for (const BasicBlock& bb : fn.blocks) {
    os << bb.label << ":\n";
    for (const Instruction& inst : bb.insts) {
      os << "  " << PrintInstruction(module, fn, inst) << "\n";
    }
  }
  os << "}\n";
  return os.str();
}

std::string PrintModule(const Module& module) {
  std::ostringstream os;
  for (uint32_t g = 0; g < module.NumGlobals(); ++g) {
    const Global& gl = module.GlobalAt(g);
    bool printable = !gl.init.empty();
    for (size_t i = 0; printable && i + 1 < gl.init.size(); ++i) {
      if (gl.init[i] < 0x20 || gl.init[i] > 0x7e || gl.init[i] == '"' ||
          gl.init[i] == '\\') {
        printable = false;
      }
    }
    if (printable && !gl.init.empty() && gl.init.back() == 0 &&
        gl.init.size() == gl.size) {
      os << "global $" << gl.name << " = str \"";
      os.write(reinterpret_cast<const char*>(gl.init.data()),
               static_cast<std::streamsize>(gl.init.size() - 1));
      os << "\"\n";
    } else if (gl.init.empty()) {
      os << "global $" << gl.name << " = zero " << gl.size << "\n";
    } else {
      os << "global $" << gl.name << " = bytes " << gl.size << " [";
      for (size_t i = 0; i < gl.init.size(); ++i) {
        if (i) {
          os << " ";
        }
        os << static_cast<unsigned>(gl.init[i]);
      }
      os << "]\n";
    }
  }
  for (uint32_t f = 0; f < module.NumFunctions(); ++f) {
    os << PrintFunction(module, f);
  }
  return os.str();
}

uint64_t ModuleDigest(const Module& module) {
  std::string text = PrintModule(module);
  uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : text) {
    h = (h ^ c) * 0x100000001b3ull;
  }
  return h;
}

std::string ModuleDigestHex(const Module& module) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(ModuleDigest(module)));
  return buf;
}

}  // namespace esd::ir

#include "src/ir/parser.h"

#include <cctype>
#include <cstdlib>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "src/ir/builder.h"

namespace esd::ir {
namespace {

struct Line {
  int number;
  std::string text;
};

// Splits `text` into trimmed, comment-stripped, non-empty lines.
std::vector<Line> SplitLines(std::string_view text) {
  std::vector<Line> lines;
  int number = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) {
      end = text.size();
    }
    ++number;
    std::string_view line = text.substr(pos, end - pos);
    if (size_t comment = line.find(';'); comment != std::string_view::npos) {
      line = line.substr(0, comment);
    }
    while (!line.empty() && std::isspace(static_cast<unsigned char>(line.front()))) {
      line.remove_prefix(1);
    }
    while (!line.empty() && std::isspace(static_cast<unsigned char>(line.back()))) {
      line.remove_suffix(1);
    }
    if (!line.empty()) {
      lines.push_back(Line{number, std::string(line)});
    }
    pos = end + 1;
    if (end == text.size()) {
      break;
    }
  }
  return lines;
}

// A cursor over one line's characters with small parsing helpers.
class Cursor {
 public:
  explicit Cursor(std::string_view s) : s_(s) {}

  void SkipSpace() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= s_.size();
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    SkipSpace();
    if (s_.substr(pos_, word.size()) == word) {
      size_t after = pos_ + word.size();
      if (after == s_.size() || !IsIdentChar(s_[after])) {
        pos_ = after;
        return true;
      }
    }
    return false;
  }

  // Reads an identifier ([A-Za-z0-9_.]+).
  std::optional<std::string> Ident() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < s_.size() && IsIdentChar(s_[pos_])) {
      ++pos_;
    }
    if (pos_ == start) {
      return std::nullopt;
    }
    return std::string(s_.substr(start, pos_ - start));
  }

  std::optional<int64_t> Int() {
    SkipSpace();
    size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) {
      ++pos_;
    }
    size_t digits = pos_;
    while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
    if (pos_ == digits) {
      pos_ = start;
      return std::nullopt;
    }
    // Parse the magnitude unsigned: the printer emits 64-bit immediates as
    // unsigned decimal, so values >= 2^63 must round-trip instead of
    // saturating at INT64_MAX (strtoll's behavior on overflow).
    uint64_t magnitude = std::strtoull(s_.data() + digits, nullptr, 10);
    if (s_[start] == '-') {
      magnitude = ~magnitude + 1;
    }
    return static_cast<int64_t>(magnitude);
  }

  std::optional<std::string> QuotedString() {
    SkipSpace();
    if (pos_ >= s_.size() || s_[pos_] != '"') {
      return std::nullopt;
    }
    ++pos_;
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\' && pos_ < s_.size()) {
        char e = s_[pos_++];
        switch (e) {
          case 'n':
            out.push_back('\n');
            break;
          case 't':
            out.push_back('\t');
            break;
          case '0':
            out.push_back('\0');
            break;
          default:
            out.push_back(e);
            break;
        }
      } else {
        out.push_back(c);
      }
    }
    if (pos_ >= s_.size()) {
      return std::nullopt;
    }
    ++pos_;  // closing quote
    return out;
  }

  std::string_view Rest() const { return s_.substr(pos_); }

 private:
  static bool IsIdentChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
  }

  std::string_view s_;
  size_t pos_ = 0;
};

class Parser {
 public:
  Parser(std::string_view text, Module* module)
      : lines_(SplitLines(text)), module_(module), builder_(module) {}

  ParseResult Run() {
    while (index_ < lines_.size()) {
      const Line& line = lines_[index_];
      Cursor c(line.text);
      if (c.ConsumeWord("global")) {
        if (!ParseGlobal(c)) {
          return Fail(line.number);
        }
        ++index_;
      } else if (c.ConsumeWord("extern")) {
        if (!ParseExtern(c)) {
          return Fail(line.number);
        }
        ++index_;
      } else if (c.ConsumeWord("func")) {
        if (!ParseFunction(c)) {
          return Fail(lines_[index_].number);
        }
      } else {
        error_ = "expected 'global', 'extern', or 'func'";
        return Fail(line.number);
      }
    }
    return ParseResult{true, ""};
  }

 private:
  ParseResult Fail(int line_number) {
    std::ostringstream os;
    os << "line " << line_number << ": " << error_;
    return ParseResult{false, os.str()};
  }

  bool ParseType(Cursor& c, Type* out) {
    auto word = c.Ident();
    if (!word || !ParseTypeName(*word, out)) {
      error_ = "expected a type";
      return false;
    }
    return true;
  }

  bool ParseGlobal(Cursor& c) {
    if (!c.Consume('$')) {
      error_ = "expected '$name' after 'global'";
      return false;
    }
    auto name = c.Ident();
    if (!name || !c.Consume('=')) {
      error_ = "malformed global";
      return false;
    }
    if (c.ConsumeWord("zero")) {
      auto size = c.Int();
      if (!size || *size <= 0) {
        error_ = "bad global size";
        return false;
      }
      builder_.AddGlobal(*name, static_cast<uint32_t>(*size));
      return true;
    }
    if (c.ConsumeWord("str")) {
      auto text = c.QuotedString();
      if (!text) {
        error_ = "bad string literal";
        return false;
      }
      builder_.AddStringGlobal(*name, *text);
      return true;
    }
    if (c.ConsumeWord("bytes")) {
      auto size = c.Int();
      if (!size || *size <= 0 || !c.Consume('[')) {
        error_ = "bad bytes global";
        return false;
      }
      std::vector<uint8_t> init;
      while (!c.Consume(']')) {
        auto b = c.Int();
        if (!b || *b < 0 || *b > 255) {
          error_ = "bad byte value";
          return false;
        }
        init.push_back(static_cast<uint8_t>(*b));
      }
      builder_.AddGlobal(*name, static_cast<uint32_t>(*size), std::move(init));
      return true;
    }
    error_ = "expected 'zero', 'str', or 'bytes'";
    return false;
  }

  bool ParseExtern(Cursor& c) {
    if (!c.Consume('@')) {
      error_ = "expected '@name' after 'extern'";
      return false;
    }
    auto name = c.Ident();
    if (!name || !c.Consume('(')) {
      error_ = "malformed extern";
      return false;
    }
    std::vector<Type> params;
    if (!c.Consume(')')) {
      do {
        Type t;
        if (!ParseType(c, &t)) {
          return false;
        }
        params.push_back(t);
      } while (c.Consume(','));
      if (!c.Consume(')')) {
        error_ = "expected ')'";
        return false;
      }
    }
    Type ret = Type::kVoid;
    if (c.Consume(':')) {
      if (!ParseType(c, &ret)) {
        return false;
      }
    }
    builder_.DeclareExternal(*name, ret, std::move(params));
    return true;
  }

  bool ParseFunction(Cursor& header) {
    if (!header.Consume('@')) {
      error_ = "expected '@name' after 'func'";
      return false;
    }
    auto name = header.Ident();
    if (!name || !header.Consume('(')) {
      error_ = "malformed func header";
      return false;
    }
    std::vector<Type> params;
    std::vector<std::string> param_names;
    if (!header.Consume(')')) {
      do {
        if (!header.Consume('%')) {
          error_ = "expected '%param'";
          return false;
        }
        auto pname = header.Ident();
        if (!pname || !header.Consume(':')) {
          error_ = "malformed parameter";
          return false;
        }
        Type t;
        if (!ParseType(header, &t)) {
          return false;
        }
        params.push_back(t);
        param_names.push_back(*pname);
      } while (header.Consume(','));
      if (!header.Consume(')')) {
        error_ = "expected ')'";
        return false;
      }
    }
    Type ret = Type::kVoid;
    if (header.Consume(':')) {
      if (!ParseType(header, &ret)) {
        return false;
      }
    }
    if (!header.Consume('{')) {
      error_ = "expected '{'";
      return false;
    }

    // Find the body extent (up to the matching lone '}').
    size_t body_start = index_ + 1;
    size_t body_end = body_start;
    while (body_end < lines_.size() && lines_[body_end].text != "}") {
      ++body_end;
    }
    if (body_end >= lines_.size()) {
      error_ = "missing '}'";
      return false;
    }

    FunctionBuilder fb = builder_.BeginFunction(*name, ret, params);
    regs_.clear();
    for (size_t i = 0; i < param_names.size(); ++i) {
      regs_[param_names[i]] = fb.Param(static_cast<uint32_t>(i));
    }

    // First pass: create blocks in order so forward branches resolve. If the
    // body begins with a label, that label names the entry block.
    bool first_label = true;
    bool inst_before_label = false;
    for (size_t i = body_start; i < body_end; ++i) {
      const std::string& t = lines_[i].text;
      if (t.back() == ':') {
        std::string label = t.substr(0, t.size() - 1);
        if (first_label && !inst_before_label) {
          fb.RenameEntry(label);
        } else {
          fb.Block(label);
        }
        first_label = false;
      } else if (first_label) {
        inst_before_label = true;
      }
    }
    // Second pass: parse instructions into their blocks.
    for (size_t i = body_start; i < body_end; ++i) {
      const Line& line = lines_[i];
      Cursor c(line.text);
      if (line.text.back() == ':') {
        std::string label = line.text.substr(0, line.text.size() - 1);
        fb.SetBlock(fb.Block(label));
        continue;
      }
      if (!ParseInstruction(c, fb)) {
        index_ = i;
        return false;
      }
    }
    fb.Finish();
    index_ = body_end + 1;
    return true;
  }

  // Parses one operand. Returns nullopt and sets error_ on failure.
  std::optional<Value> ParseOperand(Cursor& c, FunctionBuilder& fb) {
    if (c.Consume('%')) {
      auto name = c.Ident();
      if (!name) {
        error_ = "expected register name";
        return std::nullopt;
      }
      auto it = regs_.find(*name);
      if (it == regs_.end()) {
        error_ = "use of undefined register %" + *name;
        return std::nullopt;
      }
      return it->second;
    }
    if (c.Consume('@')) {
      auto name = c.Ident();
      if (!name) {
        error_ = "expected function name";
        return std::nullopt;
      }
      return fb.FuncAddr(*name);
    }
    if (c.Consume('$')) {
      auto name = c.Ident();
      if (!name) {
        error_ = "expected global name";
        return std::nullopt;
      }
      if (!module_->FindGlobal(*name)) {
        error_ = "use of undeclared global $" + *name;
        return std::nullopt;
      }
      return fb.GlobalAddr(*name);
    }
    if (c.ConsumeWord("null")) {
      return Value::Const(Type::kPtr, 0);
    }
    Type t;
    Cursor save = c;
    auto word = c.Ident();
    if (word && ParseTypeName(*word, &t) && t != Type::kVoid) {
      auto v = c.Int();
      if (!v) {
        error_ = "expected integer literal after type";
        return std::nullopt;
      }
      return Value::Const(t, static_cast<uint64_t>(*v));
    }
    c = save;
    error_ = "expected an operand";
    return std::nullopt;
  }

  bool ParseOperands(Cursor& c, FunctionBuilder& fb, std::vector<Value>* out,
                     char terminator) {
    if (c.Consume(terminator)) {
      return true;
    }
    do {
      auto v = ParseOperand(c, fb);
      if (!v) {
        return false;
      }
      out->push_back(*v);
    } while (c.Consume(','));
    if (!c.Consume(terminator)) {
      error_ = std::string("expected '") + terminator + "'";
      return false;
    }
    return true;
  }

  bool DefineReg(const std::string& name, Value v) {
    regs_[name] = v;
    return true;
  }

  bool ParseInstruction(Cursor& c, FunctionBuilder& fb) {
    std::string result_name;
    bool has_result = false;
    Cursor save = c;
    if (c.Consume('%')) {
      auto name = c.Ident();
      if (name && c.Consume('=')) {
        result_name = *name;
        has_result = true;
      } else {
        c = save;
      }
    }

    auto op_word = c.Ident();
    if (!op_word) {
      error_ = "expected an opcode";
      return false;
    }
    const std::string& op = *op_word;

    static const std::map<std::string, Opcode> kBinary = {
        {"add", Opcode::kAdd},   {"sub", Opcode::kSub},   {"mul", Opcode::kMul},
        {"udiv", Opcode::kUDiv}, {"sdiv", Opcode::kSDiv}, {"urem", Opcode::kURem},
        {"srem", Opcode::kSRem}, {"and", Opcode::kAnd},   {"or", Opcode::kOr},
        {"xor", Opcode::kXor},   {"shl", Opcode::kShl},   {"lshr", Opcode::kLShr},
        {"ashr", Opcode::kAShr},
    };
    if (auto it = kBinary.find(op); it != kBinary.end()) {
      auto a = ParseOperand(c, fb);
      if (!a || !c.Consume(',')) {
        return false;
      }
      auto b = ParseOperand(c, fb);
      if (!b) {
        return false;
      }
      if (a->type != b->type) {
        error_ = "binary operand type mismatch";
        return false;
      }
      return DefineReg(result_name, fb.Binary(it->second, *a, *b));
    }
    if (op == "icmp") {
      static const std::map<std::string, CmpPred> kPreds = {
          {"eq", CmpPred::kEq},   {"ne", CmpPred::kNe},   {"ult", CmpPred::kUlt},
          {"ule", CmpPred::kUle}, {"ugt", CmpPred::kUgt}, {"uge", CmpPred::kUge},
          {"slt", CmpPred::kSlt}, {"sle", CmpPred::kSle}, {"sgt", CmpPred::kSgt},
          {"sge", CmpPred::kSge},
      };
      auto pred_word = c.Ident();
      if (!pred_word || kPreds.find(*pred_word) == kPreds.end()) {
        error_ = "bad icmp predicate";
        return false;
      }
      auto a = ParseOperand(c, fb);
      if (!a || !c.Consume(',')) {
        return false;
      }
      auto b = ParseOperand(c, fb);
      if (!b) {
        return false;
      }
      return DefineReg(result_name, fb.ICmp(kPreds.at(*pred_word), *a, *b));
    }
    if (op == "not") {
      auto a = ParseOperand(c, fb);
      if (!a) {
        return false;
      }
      return DefineReg(result_name, fb.Not(*a));
    }
    if (op == "zext" || op == "sext" || op == "trunc") {
      Type to;
      if (!ParseType(c, &to) || !c.Consume(',')) {
        return false;
      }
      auto a = ParseOperand(c, fb);
      if (!a) {
        return false;
      }
      Value v = op == "zext"   ? fb.ZExt(*a, to)
                : op == "sext" ? fb.SExt(*a, to)
                               : fb.Trunc(*a, to);
      return DefineReg(result_name, v);
    }
    if (op == "select") {
      auto cond = ParseOperand(c, fb);
      if (!cond || !c.Consume(',')) {
        return false;
      }
      auto a = ParseOperand(c, fb);
      if (!a || !c.Consume(',')) {
        return false;
      }
      auto b = ParseOperand(c, fb);
      if (!b) {
        return false;
      }
      return DefineReg(result_name, fb.Select(*cond, *a, *b));
    }
    if (op == "alloca") {
      auto size = c.Int();
      if (!size || *size <= 0) {
        error_ = "bad alloca size";
        return false;
      }
      return DefineReg(result_name, fb.Alloca(static_cast<uint32_t>(*size)));
    }
    if (op == "load") {
      Type t;
      if (!ParseType(c, &t) || !c.Consume(',')) {
        return false;
      }
      auto p = ParseOperand(c, fb);
      if (!p) {
        return false;
      }
      return DefineReg(result_name, fb.Load(t, *p));
    }
    if (op == "store") {
      auto v = ParseOperand(c, fb);
      if (!v || !c.Consume(',')) {
        return false;
      }
      auto p = ParseOperand(c, fb);
      if (!p) {
        return false;
      }
      fb.Store(*v, *p);
      return true;
    }
    if (op == "gep") {
      auto p = ParseOperand(c, fb);
      if (!p || !c.Consume(',')) {
        return false;
      }
      auto i = ParseOperand(c, fb);
      if (!i || !c.Consume(',')) {
        return false;
      }
      auto scale = c.Int();
      if (!scale || *scale <= 0) {
        error_ = "bad gep scale";
        return false;
      }
      return DefineReg(result_name, fb.Gep(*p, *i, static_cast<uint32_t>(*scale)));
    }
    if (op == "br") {
      auto label = c.Ident();
      if (!label) {
        error_ = "expected a label";
        return false;
      }
      fb.Br(fb.Block(*label));
      return true;
    }
    if (op == "condbr") {
      auto cond = ParseOperand(c, fb);
      if (!cond || !c.Consume(',')) {
        return false;
      }
      auto l1 = c.Ident();
      if (!l1 || !c.Consume(',')) {
        error_ = "expected labels";
        return false;
      }
      auto l2 = c.Ident();
      if (!l2) {
        error_ = "expected a label";
        return false;
      }
      fb.CondBr(*cond, fb.Block(*l1), fb.Block(*l2));
      return true;
    }
    if (op == "call") {
      if (!c.Consume('@')) {
        error_ = "expected '@callee'";
        return false;
      }
      auto callee = c.Ident();
      if (!callee || !c.Consume('(')) {
        error_ = "malformed call";
        return false;
      }
      std::vector<Value> args;
      if (!ParseOperands(c, fb, &args, ')')) {
        return false;
      }
      Value v = fb.Call(*callee, std::move(args));
      if (has_result) {
        if (!v.IsValid()) {
          error_ = "void call cannot define a register";
          return false;
        }
        return DefineReg(result_name, v);
      }
      return true;
    }
    if (op == "calli") {
      Type ret;
      if (!ParseType(c, &ret)) {
        return false;
      }
      auto fp = ParseOperand(c, fb);
      if (!fp || !c.Consume('(')) {
        error_ = "malformed indirect call";
        return false;
      }
      std::vector<Value> args;
      if (!ParseOperands(c, fb, &args, ')')) {
        return false;
      }
      Value v = fb.CallIndirect(ret, *fp, std::move(args));
      if (has_result) {
        if (!v.IsValid()) {
          error_ = "void call cannot define a register";
          return false;
        }
        return DefineReg(result_name, v);
      }
      return true;
    }
    if (op == "ret") {
      if (c.AtEnd()) {
        fb.Ret();
      } else {
        auto v = ParseOperand(c, fb);
        if (!v) {
          return false;
        }
        fb.Ret(*v);
      }
      return true;
    }
    if (op == "unreachable") {
      fb.Unreachable();
      return true;
    }
    error_ = "unknown opcode '" + op + "'";
    return false;
  }

  std::vector<Line> lines_;
  size_t index_ = 0;
  Module* module_;
  ModuleBuilder builder_;
  std::map<std::string, Value> regs_;
  std::string error_;
};

}  // namespace

ParseResult ParseModule(std::string_view text, Module* module) {
  return Parser(text, module).Run();
}

}  // namespace esd::ir

// ESD IR: textual assembly parser.
//
// Grammar (line oriented; ';' starts a comment):
//
//   global $name = zero <size>
//   global $name = str "text"            // NUL-terminated
//   global $name = bytes <size> [b0 b1 ...]
//   extern @name(i32, ptr) : i32
//   func @name(%a: i32, %p: ptr) : i32 {
//   label:
//     %x = add %a, i32 1
//     %c = icmp eq %x, i32 5
//     condbr %c, then, else
//     ...
//   }
//
// Operands: %reg, typed literals ("i32 42", negative allowed), "null"
// (ptr 0), @function (function address), $global (global address).
#ifndef ESD_SRC_IR_PARSER_H_
#define ESD_SRC_IR_PARSER_H_

#include <string>
#include <string_view>

#include "src/ir/module.h"

namespace esd::ir {

struct ParseResult {
  bool ok = false;
  std::string error;  // "line N: message" when !ok.
};

// Parses `text` into `module` (which should be empty). On failure the module
// contents are unspecified.
ParseResult ParseModule(std::string_view text, Module* module);

}  // namespace esd::ir

#endif  // ESD_SRC_IR_PARSER_H_

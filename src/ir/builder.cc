#include "src/ir/builder.h"

#include <cassert>
#include <utility>

namespace esd::ir {

FunctionBuilder::FunctionBuilder(ModuleBuilder* parent, uint32_t func_index, Function fn)
    : parent_(parent), func_index_(func_index), fn_(std::move(fn)) {
  Block("entry");
}

void FunctionBuilder::RenameEntry(std::string_view label) {
  fn_.blocks[0].label = std::string(label);
}

uint32_t FunctionBuilder::Block(std::string_view label) {
  if (auto existing = fn_.FindBlock(label)) {
    return *existing;
  }
  fn_.blocks.push_back(BasicBlock{std::string(label), {}});
  return static_cast<uint32_t>(fn_.blocks.size() - 1);
}

void FunctionBuilder::SetBlock(uint32_t block) {
  assert(block < fn_.blocks.size());
  current_block_ = block;
}

Value FunctionBuilder::Param(uint32_t i) const {
  assert(i < fn_.params.size());
  return Value::Reg(i, fn_.params[i]);
}

Value FunctionBuilder::NewReg(Type type) {
  return Value::Reg(fn_.num_regs++, type);
}

Instruction& FunctionBuilder::Append(Instruction inst) {
  assert(!finished_);
  BasicBlock& bb = fn_.blocks[current_block_];
  assert((bb.insts.empty() || !bb.insts.back().IsTerminator()) &&
         "appending after a terminator");
  bb.insts.push_back(std::move(inst));
  return bb.insts.back();
}

Value FunctionBuilder::Binary(Opcode op, Value lhs, Value rhs) {
  assert(lhs.type == rhs.type);
  Value dst = NewReg(lhs.type);
  Instruction inst;
  inst.op = op;
  inst.type = lhs.type;
  inst.result = static_cast<int32_t>(dst.index);
  inst.operands = {lhs, rhs};
  Append(std::move(inst));
  return dst;
}

Value FunctionBuilder::ICmp(CmpPred pred, Value lhs, Value rhs) {
  assert(lhs.type == rhs.type);
  Value dst = NewReg(Type::kI1);
  Instruction inst;
  inst.op = Opcode::kICmp;
  inst.type = Type::kI1;
  inst.pred = pred;
  inst.result = static_cast<int32_t>(dst.index);
  inst.operands = {lhs, rhs};
  Append(std::move(inst));
  return dst;
}

Value FunctionBuilder::Not(Value v) {
  Value dst = NewReg(v.type);
  Instruction inst;
  inst.op = Opcode::kNot;
  inst.type = v.type;
  inst.result = static_cast<int32_t>(dst.index);
  inst.operands = {v};
  Append(std::move(inst));
  return dst;
}

Value FunctionBuilder::ZExt(Value v, Type to) {
  assert(BitWidth(to) >= BitWidth(v.type));
  Value dst = NewReg(to);
  Instruction inst;
  inst.op = Opcode::kZExt;
  inst.type = to;
  inst.result = static_cast<int32_t>(dst.index);
  inst.operands = {v};
  Append(std::move(inst));
  return dst;
}

Value FunctionBuilder::SExt(Value v, Type to) {
  assert(BitWidth(to) >= BitWidth(v.type));
  Value dst = NewReg(to);
  Instruction inst;
  inst.op = Opcode::kSExt;
  inst.type = to;
  inst.result = static_cast<int32_t>(dst.index);
  inst.operands = {v};
  Append(std::move(inst));
  return dst;
}

Value FunctionBuilder::Trunc(Value v, Type to) {
  assert(BitWidth(to) <= BitWidth(v.type));
  Value dst = NewReg(to);
  Instruction inst;
  inst.op = Opcode::kTrunc;
  inst.type = to;
  inst.result = static_cast<int32_t>(dst.index);
  inst.operands = {v};
  Append(std::move(inst));
  return dst;
}

Value FunctionBuilder::Select(Value cond, Value if_true, Value if_false) {
  assert(cond.type == Type::kI1);
  assert(if_true.type == if_false.type);
  Value dst = NewReg(if_true.type);
  Instruction inst;
  inst.op = Opcode::kSelect;
  inst.type = if_true.type;
  inst.result = static_cast<int32_t>(dst.index);
  inst.operands = {cond, if_true, if_false};
  Append(std::move(inst));
  return dst;
}

Value FunctionBuilder::Alloca(uint32_t bytes) {
  Value dst = NewReg(Type::kPtr);
  Instruction inst;
  inst.op = Opcode::kAlloca;
  inst.type = Type::kPtr;
  inst.imm = bytes;
  inst.result = static_cast<int32_t>(dst.index);
  Append(std::move(inst));
  return dst;
}

Value FunctionBuilder::Load(Type type, Value ptr) {
  assert(ptr.type == Type::kPtr);
  Value dst = NewReg(type);
  Instruction inst;
  inst.op = Opcode::kLoad;
  inst.type = type;
  inst.result = static_cast<int32_t>(dst.index);
  inst.operands = {ptr};
  Append(std::move(inst));
  return dst;
}

void FunctionBuilder::Store(Value value, Value ptr) {
  assert(ptr.type == Type::kPtr);
  Instruction inst;
  inst.op = Opcode::kStore;
  inst.operands = {value, ptr};
  Append(std::move(inst));
}

Value FunctionBuilder::Gep(Value ptr, Value index, uint32_t scale) {
  assert(ptr.type == Type::kPtr);
  Value dst = NewReg(Type::kPtr);
  Instruction inst;
  inst.op = Opcode::kGep;
  inst.type = Type::kPtr;
  inst.imm = scale;
  inst.result = static_cast<int32_t>(dst.index);
  inst.operands = {ptr, index};
  Append(std::move(inst));
  return dst;
}

Value FunctionBuilder::GepConst(Value ptr, uint64_t byte_offset) {
  return Gep(ptr, ConstI64(byte_offset), 1);
}

void FunctionBuilder::Br(uint32_t target) {
  Instruction inst;
  inst.op = Opcode::kBr;
  inst.succ_true = target;
  Append(std::move(inst));
}

void FunctionBuilder::CondBr(Value cond, uint32_t if_true, uint32_t if_false) {
  assert(cond.type == Type::kI1);
  Instruction inst;
  inst.op = Opcode::kCondBr;
  inst.succ_true = if_true;
  inst.succ_false = if_false;
  inst.operands = {cond};
  Append(std::move(inst));
}

void FunctionBuilder::Ret() {
  Instruction inst;
  inst.op = Opcode::kRet;
  Append(std::move(inst));
}

void FunctionBuilder::Ret(Value v) {
  Instruction inst;
  inst.op = Opcode::kRet;
  inst.operands = {v};
  Append(std::move(inst));
}

void FunctionBuilder::Unreachable() {
  Instruction inst;
  inst.op = Opcode::kUnreachable;
  Append(std::move(inst));
}

Value FunctionBuilder::Call(std::string_view callee, std::vector<Value> args) {
  uint32_t callee_index = parent_->EnsureFunction(callee);
  Type ret_type = parent_->module()->Func(callee_index).ret_type;
  Instruction inst;
  inst.op = Opcode::kCall;
  inst.callee = callee_index;
  inst.type = ret_type;
  inst.operands = std::move(args);
  Value dst{};
  if (ret_type != Type::kVoid) {
    dst = NewReg(ret_type);
    inst.result = static_cast<int32_t>(dst.index);
  }
  Append(std::move(inst));
  return dst;
}

Value FunctionBuilder::CallIndirect(Type ret_type, Value fn_ptr, std::vector<Value> args) {
  assert(fn_ptr.type == Type::kPtr);
  Instruction inst;
  inst.op = Opcode::kCall;
  inst.type = ret_type;
  inst.operands.push_back(fn_ptr);
  for (Value& a : args) {
    inst.operands.push_back(a);
  }
  Value dst{};
  if (ret_type != Type::kVoid) {
    dst = NewReg(ret_type);
    inst.result = static_cast<int32_t>(dst.index);
  }
  Append(std::move(inst));
  return dst;
}

Value FunctionBuilder::FuncAddr(std::string_view name) {
  return Value::FuncRef(parent_->EnsureFunction(name));
}

Value FunctionBuilder::GlobalAddr(std::string_view name) {
  auto index = parent_->module()->FindGlobal(name);
  assert(index.has_value() && "global must be declared before use");
  return Value::GlobalRef(*index);
}

void FunctionBuilder::Finish() {
  assert(!finished_);
  finished_ = true;
  parent_->module()->Func(func_index_) = std::move(fn_);
}

void ModuleBuilder::DeclareExternal(std::string_view name, Type ret_type,
                                    std::vector<Type> params) {
  if (module_->FindFunction(name).has_value()) {
    return;
  }
  Function f;
  f.name = std::string(name);
  f.ret_type = ret_type;
  f.params = std::move(params);
  f.is_external = true;
  module_->AddFunction(std::move(f));
}

uint32_t ModuleBuilder::AddGlobal(std::string_view name, uint32_t size,
                                  std::vector<uint8_t> init) {
  Global g;
  g.name = std::string(name);
  g.size = size;
  g.init = std::move(init);
  return module_->AddGlobal(std::move(g));
}

uint32_t ModuleBuilder::AddStringGlobal(std::string_view name, std::string_view text) {
  std::vector<uint8_t> bytes(text.begin(), text.end());
  bytes.push_back(0);
  uint32_t size = static_cast<uint32_t>(bytes.size());  // Read before moving.
  return AddGlobal(name, size, std::move(bytes));
}

uint32_t ModuleBuilder::DeclareFunction(std::string_view name, Type ret_type,
                                        std::vector<Type> params) {
  uint32_t index = EnsureFunction(name);
  Function& fn = module_->Func(index);
  fn.ret_type = ret_type;
  fn.params = std::move(params);
  return index;
}

uint32_t ModuleBuilder::EnsureFunction(std::string_view name) {
  if (auto existing = module_->FindFunction(name)) {
    return *existing;
  }
  Function placeholder;
  placeholder.name = std::string(name);
  return module_->AddFunction(std::move(placeholder));
}

FunctionBuilder ModuleBuilder::BeginFunction(std::string_view name, Type ret_type,
                                             std::vector<Type> params) {
  uint32_t index = EnsureFunction(name);
  Function fn;
  fn.name = std::string(name);
  fn.ret_type = ret_type;
  fn.params = std::move(params);
  fn.num_regs = static_cast<uint32_t>(fn.params.size());
  // Publish the signature on the module placeholder immediately so recursive
  // calls built before Finish() resolve the right return type.
  module_->Func(index).ret_type = ret_type;
  module_->Func(index).params = fn.params;
  return FunctionBuilder(this, index, std::move(fn));
}

}  // namespace esd::ir

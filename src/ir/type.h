// ESD intermediate representation: scalar types.
//
// The IR is deliberately LLVM-like (see DESIGN.md): a small family of integer
// types plus an opaque pointer type. Pointers are 64 bits wide at runtime and
// encode (object id, offset) pairs; see vm/memory.h.
#ifndef ESD_SRC_IR_TYPE_H_
#define ESD_SRC_IR_TYPE_H_

#include <cstdint>
#include <string_view>

namespace esd::ir {

enum class Type : uint8_t {
  kVoid,
  kI1,
  kI8,
  kI16,
  kI32,
  kI64,
  kPtr,
};

// Returns the width of `t` in bits. kVoid has width 0; kPtr is 64.
constexpr unsigned BitWidth(Type t) {
  switch (t) {
    case Type::kVoid:
      return 0;
    case Type::kI1:
      return 1;
    case Type::kI8:
      return 8;
    case Type::kI16:
      return 16;
    case Type::kI32:
      return 32;
    case Type::kI64:
      return 64;
    case Type::kPtr:
      return 64;
  }
  return 0;
}

constexpr bool IsInteger(Type t) {
  return t == Type::kI1 || t == Type::kI8 || t == Type::kI16 || t == Type::kI32 ||
         t == Type::kI64;
}

// Name as spelled in the textual assembly format ("i32", "ptr", ...).
std::string_view TypeName(Type t);

// Parses a type name; returns kVoid for unrecognized names alongside false.
bool ParseTypeName(std::string_view name, Type* out);

// Truncates `value` to the width of `t` (no-op for i64/ptr).
constexpr uint64_t TruncateToType(Type t, uint64_t value) {
  unsigned w = BitWidth(t);
  if (w == 0 || w >= 64) {
    return value;
  }
  return value & ((uint64_t{1} << w) - 1);
}

}  // namespace esd::ir

#endif  // ESD_SRC_IR_TYPE_H_

// ESD IR: basic blocks, functions, globals, and modules.
#ifndef ESD_SRC_IR_MODULE_H_
#define ESD_SRC_IR_MODULE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/ir/instruction.h"
#include "src/ir/type.h"

namespace esd::ir {

struct BasicBlock {
  std::string label;
  std::vector<Instruction> insts;
};

// A function. Parameters occupy registers [0, params.size()). `is_external`
// marks declarations handled by the VM's externals registry (no body).
struct Function {
  std::string name;
  Type ret_type = Type::kVoid;
  std::vector<Type> params;
  std::vector<BasicBlock> blocks;  // blocks[0] is the entry block.
  uint32_t num_regs = 0;           // Total virtual registers used.
  bool is_external = false;

  const Instruction* InstAt(uint32_t block, uint32_t inst) const {
    if (block >= blocks.size() || inst >= blocks[block].insts.size()) {
      return nullptr;
    }
    return &blocks[block].insts[inst];
  }
  std::optional<uint32_t> FindBlock(std::string_view label) const;
};

// A global memory object. `init` provides the initial bytes; the object is
// zero-filled beyond the initializer up to `size`.
struct Global {
  std::string name;
  uint32_t size = 0;
  std::vector<uint8_t> init;
};

class Module {
 public:
  uint32_t AddFunction(Function f);
  uint32_t AddGlobal(Global g);

  const Function& Func(uint32_t index) const { return functions_[index]; }
  Function& Func(uint32_t index) { return functions_[index]; }
  const Global& GlobalAt(uint32_t index) const { return globals_[index]; }

  std::optional<uint32_t> FindFunction(std::string_view name) const;
  std::optional<uint32_t> FindGlobal(std::string_view name) const;

  size_t NumFunctions() const { return functions_.size(); }
  size_t NumGlobals() const { return globals_.size(); }

  const Instruction* InstAt(const InstRef& ref) const {
    if (ref.func >= functions_.size()) {
      return nullptr;
    }
    return functions_[ref.func].InstAt(ref.block, ref.inst);
  }

  // Human-readable "func:block:inst" locator for diagnostics and coredumps.
  std::string Describe(const InstRef& ref) const;

  // Total number of non-external instructions (used for KLOC estimates).
  size_t TotalInstructions() const;

 private:
  std::vector<Function> functions_;
  std::vector<Global> globals_;
  std::map<std::string, uint32_t, std::less<>> function_index_;
  std::map<std::string, uint32_t, std::less<>> global_index_;
};

}  // namespace esd::ir

#endif  // ESD_SRC_IR_MODULE_H_

#include "src/serve/persistent_cache.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace esd::serve {
namespace fs = std::filesystem;

namespace {

std::string Hex16(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

std::optional<std::string> ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return std::nullopt;
  }
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

}  // namespace

CacheStore::CacheStore(const std::string& dir) : dir_(dir) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec || !fs::is_directory(dir_, ec)) {
    error_ = "cannot create cache directory " + dir_ +
             (ec ? ": " + ec.message() : "");
    return;
  }
  ok_ = true;
  LoadIndex();
}

std::string CacheStore::PathFor(uint64_t digest, const char* kind) const {
  return dir_ + "/" + Hex16(digest) + "." + kind + ".esdc";
}

void CacheStore::Quarantine(const std::string& path, const std::string& why) {
  std::error_code ec;
  fs::rename(path, path + ".quarantined", ec);
  if (ec) {
    fs::remove(path, ec);  // Rename failed (cross-device?): drop it instead.
  }
  load_errors_.push_back(path + ": " + why + " — quarantined, will regenerate");
}

std::optional<std::string> CacheStore::ReadOrQuarantine(const std::string& path,
                                                        bool* present) {
  std::error_code ec;
  *present = fs::exists(path, ec);
  if (!*present) {
    return std::nullopt;
  }
  auto text = ReadWholeFile(path);
  if (!text.has_value()) {
    Quarantine(path, "unreadable");
  }
  return text;
}

std::optional<SolverCacheImage> CacheStore::LoadSolverCache(
    uint64_t module_digest) {
  if (!ok_) return std::nullopt;
  const std::string path = PathFor(module_digest, "solver");
  bool present = false;
  auto text = ReadOrQuarantine(path, &present);
  if (!text.has_value()) return std::nullopt;
  std::string error;
  auto image = ParseSolverCache(*text, module_digest, &error);
  if (!image.has_value()) {
    Quarantine(path, error);
    return std::nullopt;
  }
  return image;
}

std::optional<analysis::DistanceCalculator::Snapshot>
CacheStore::LoadDistanceCache(uint64_t search_digest) {
  if (!ok_) return std::nullopt;
  const std::string path = PathFor(search_digest, "dist");
  bool present = false;
  auto text = ReadOrQuarantine(path, &present);
  if (!text.has_value()) return std::nullopt;
  std::string error;
  auto snap = ParseDistanceCache(*text, search_digest, &error);
  if (!snap.has_value()) {
    Quarantine(path, error);
    return std::nullopt;
  }
  return snap;
}

std::optional<FingerprintImage> CacheStore::LoadFingerprintCorpus(
    uint64_t module_digest) {
  if (!ok_) return std::nullopt;
  const std::string path = PathFor(module_digest, "fps");
  bool present = false;
  auto text = ReadOrQuarantine(path, &present);
  if (!text.has_value()) return std::nullopt;
  std::string error;
  auto image = ParseFingerprintCorpus(*text, module_digest, &error);
  if (!image.has_value()) {
    Quarantine(path, error);
    return std::nullopt;
  }
  return image;
}

bool CacheStore::AtomicWrite(const std::string& path, const std::string& text) {
  if (!ok_) return false;
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return false;
    }
    out << text;
    out.flush();
    if (!out) {
      return false;
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  return true;
}

bool CacheStore::StoreSolverCache(const SolverCacheImage& image) {
  return AtomicWrite(PathFor(image.module_digest, "solver"),
                     SolverCacheToText(image));
}

bool CacheStore::StoreDistanceCache(
    const analysis::DistanceCalculator::Snapshot& snap) {
  return AtomicWrite(PathFor(snap.module_digest, "dist"),
                     DistanceCacheToText(snap));
}

bool CacheStore::StoreFingerprintCorpus(const FingerprintImage& image) {
  return AtomicWrite(PathFor(image.module_digest, "fps"),
                     FingerprintCorpusToText(image));
}

// results.index line format (strict, whitespace-separated):
//   result <report-16hex> <module-16hex> <0|1> <fingerprint|-> <exec|->
void CacheStore::LoadIndex() {
  const std::string path = dir_ + "/results.index";
  bool present = false;
  auto text = ReadOrQuarantine(path, &present);
  if (!text.has_value()) return;
  std::istringstream is(*text);
  std::string line;
  std::map<uint64_t, ResultRecord> parsed;
  size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    std::istringstream ls(line);
    std::string word, report_hex, module_hex, fingerprint, exec_file;
    int reproduced = 0;
    ls >> word >> report_hex >> module_hex >> reproduced >> fingerprint >>
        exec_file;
    ResultRecord rec;
    std::istringstream rs(report_hex), ms(module_hex);
    std::string extra;
    if (word != "result" || !(rs >> std::hex >> rec.report_digest) ||
        !(ms >> std::hex >> rec.module_digest) || fingerprint.empty() ||
        exec_file.empty() || (ls >> extra)) {
      Quarantine(path, "malformed index line " + std::to_string(line_no));
      return;  // All-or-nothing: a torn index is regenerated from scratch.
    }
    rec.reproduced = reproduced != 0;
    if (fingerprint != "-") rec.fingerprint = fingerprint;
    if (exec_file != "-") rec.exec_file = exec_file;
    parsed[rec.report_digest] = std::move(rec);
  }
  results_ = std::move(parsed);
}

bool CacheStore::WriteIndex() {
  std::ostringstream os;
  for (const auto& [digest, rec] : results_) {
    os << "result " << Hex16(rec.report_digest) << " "
       << Hex16(rec.module_digest) << " " << (rec.reproduced ? 1 : 0) << " "
       << (rec.fingerprint.empty() ? "-" : rec.fingerprint) << " "
       << (rec.exec_file.empty() ? "-" : rec.exec_file) << "\n";
  }
  return AtomicWrite(dir_ + "/results.index", os.str());
}

bool CacheStore::StoreResult(ResultRecord record, const std::string& exec_text) {
  if (!ok_) return false;
  if (!exec_text.empty()) {
    record.exec_file = Hex16(record.report_digest) + ".exec";
    if (!AtomicWrite(dir_ + "/" + record.exec_file, exec_text)) {
      return false;
    }
  }
  results_[record.report_digest] = std::move(record);
  return WriteIndex();
}

const ResultRecord* CacheStore::FindResult(uint64_t report_digest) const {
  auto it = results_.find(report_digest);
  return it == results_.end() ? nullptr : &it->second;
}

std::optional<std::string> CacheStore::LoadExecFile(
    const ResultRecord& record) const {
  if (record.exec_file.empty()) {
    return std::nullopt;
  }
  return ReadWholeFile(dir_ + "/" + record.exec_file);
}

}  // namespace esd::serve

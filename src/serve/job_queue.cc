#include "src/serve/job_queue.h"

namespace esd::serve {

JobQueue::JobQueue(size_t shards) : shards_(shards == 0 ? 1 : shards) {}

bool JobQueue::Push(Job job, uint64_t module_digest) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) {
      return false;
    }
    shards_[module_digest % shards_.size()].jobs.push_back(std::move(job));
    ++stats_.pushed;
  }
  cv_.notify_one();
  return true;
}

std::optional<Job> JobQueue::Pop(size_t worker) {
  std::unique_lock<std::mutex> lock(mu_);
  const size_t home = worker % shards_.size();
  for (;;) {
    if (!shards_[home].jobs.empty()) {
      Job job = std::move(shards_[home].jobs.front());
      shards_[home].jobs.pop_front();
      ++stats_.popped;
      return job;
    }
    // Steal from the fullest other shard: draining the deepest backlog
    // first keeps the queue balanced without per-job rebalancing.
    size_t victim = shards_.size();
    size_t victim_depth = 0;
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (s != home && shards_[s].jobs.size() > victim_depth) {
        victim = s;
        victim_depth = shards_[s].jobs.size();
      }
    }
    if (victim < shards_.size()) {
      Job job = std::move(shards_[victim].jobs.front());
      shards_[victim].jobs.pop_front();
      ++stats_.popped;
      ++stats_.stolen;
      return job;
    }
    if (closed_) {
      return std::nullopt;
    }
    cv_.wait(lock);
  }
}

void JobQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

JobQueue::Stats JobQueue::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace esd::serve

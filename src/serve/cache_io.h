// ESD serve: on-disk serialization of the cross-run synthesis caches.
//
// The esdserved daemon persists three caches across jobs and restarts (see
// docs/CACHE_FORMAT.md for the formats in full):
//   - the shared solver query/counterexample cache (solver pipeline stage 3),
//   - the DistanceCalculator tables (costs, goal tables, entry distances),
//   - the execution-fingerprint corpus used for duplicate-bug triage (§8).
//
// Every format is versioned, line-oriented text:
//
//   esdcache <kind> v1          header: kind is solver | dist | fps
//   module <16-hex>             content digest of the module the data was
//                               computed over (ir::ModuleDigest)
//   ...records...
//   end <count>                 trailer; <count> must equal the number of
//                               primary records, so truncation is detected
//
// The parsers are strict in the execution-file tradition: wrong header,
// unknown version, unknown directive, malformed record, trailing garbage,
// a count mismatch at `end`, bytes after `end`, or a module digest other
// than the expected one each fail with a one-line error. A failed parse
// never half-populates a cache — the caller quarantines the file and
// regenerates. Serialization is canonical (sorted keys), so
// serialize -> parse -> serialize is byte-identical.
#ifndef ESD_SRC_SERVE_CACHE_IO_H_
#define ESD_SRC_SERVE_CACHE_IO_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/analysis/distance.h"
#include "src/solver/query_cache.h"

namespace esd::serve {

// Accept any module digest (used when enumerating cache files whose name
// already keyed the digest, and by the round-trip tests).
inline constexpr uint64_t kAnyDigest = 0;

// ---- Solver query cache -----------------------------------------------------

struct SolverCacheImage {
  uint64_t module_digest = 0;
  std::vector<solver::SharedSolverCache::SnapshotEntry> entries;
};

std::string SolverCacheToText(const SolverCacheImage& image);
// `expected_digest` (unless kAnyDigest) must match the file's module line.
std::optional<SolverCacheImage> ParseSolverCache(const std::string& text,
                                                 uint64_t expected_digest,
                                                 std::string* error);

// ---- Distance tables --------------------------------------------------------

std::string DistanceCacheToText(const analysis::DistanceCalculator::Snapshot& snap);
std::optional<analysis::DistanceCalculator::Snapshot> ParseDistanceCache(
    const std::string& text, uint64_t expected_digest, std::string* error);

// ---- Fingerprint corpus -----------------------------------------------------

struct FingerprintImage {
  uint64_t module_digest = 0;
  std::vector<uint64_t> fingerprints;  // Sorted.
};

std::string FingerprintCorpusToText(const FingerprintImage& image);
std::optional<FingerprintImage> ParseFingerprintCorpus(const std::string& text,
                                                       uint64_t expected_digest,
                                                       std::string* error);

}  // namespace esd::serve

#endif  // ESD_SRC_SERVE_CACHE_IO_H_

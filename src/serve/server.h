// ESD serve: the synthesis service behind the esdserved daemon.
//
// One long-lived process accepts a stream of synthesis jobs (module + bug
// report) and answers each with a verdict, keeping three caches warm across
// jobs on the same module and — through the CacheStore — across restarts:
//
//   - the shared solver query/counterexample cache (SynthesisOptions::
//     shared_solver_cache): component answers solved for job N short-circuit
//     the SAT calls of job N+1 on the same module;
//   - the DistanceCalculator tables, exported after every search and
//     restored (digest-checked) before the next one on the same search
//     module, so the static phase of a warm job is a table load;
//   - the execution-fingerprint corpus: every synthesized execution's
//     replay::Fingerprint, the duplicate-bug triage set of §8 ("is this
//     new report the same bug we already synthesized?").
//
// Incremental re-synthesis: when a report we already solved arrives with a
// *patched* module, the stored execution file seeds the new search
// (SynthesisOptions::seed_schedule) — the daemon automation of the manual
// patch_validation_test workflow. An identical (report, module) pair
// short-circuits to the recorded verdict without searching at all.
#ifndef ESD_SRC_SERVE_SERVER_H_
#define ESD_SRC_SERVE_SERVER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/core/synthesizer.h"
#include "src/serve/job_queue.h"
#include "src/serve/persistent_cache.h"
#include "src/solver/query_cache.h"
#include "src/vm/fingerprint.h"

namespace esd::serve {

struct ServerOptions {
  // Cache directory ("" = in-memory only: caches survive across jobs but
  // not restarts).
  std::string cache_dir;
  // Baseline synthesis options for every job; the server overlays its
  // service hooks (shared_solver_cache, seed_schedule, on_distances_*).
  core::SynthesisOptions synthesis;
  // Byte budget for each per-module solver cache.
  size_t solver_cache_bytes = solver::SharedSolverCache::kDefaultMaxBytes;
  // Short-circuit exact (report, module) duplicates to the stored verdict.
  bool reuse_results = true;
};

// The daemon's answer to one job.
struct JobResult {
  uint64_t job_id = 0;
  bool ok = false;            // Inputs parsed and a search ran (or was reused).
  std::string error;          // Parse/load error when !ok.
  bool reproduced = false;    // Bug manifested; execution file synthesized.
  std::string failure_reason;
  std::string fingerprint;    // replay::Fingerprint hex of the execution.
  bool duplicate_bug = false; // Fingerprint already in the corpus.
  // How the verdict was produced: "cold" (fresh search), "warm" (fresh
  // search with restored distance tables or solver entries), "incremental"
  // (search seeded by a prior execution's schedule), "cache" (stored
  // verdict returned without searching).
  std::string source = "cold";
  std::string exec_text;      // Execution file text (empty if !reproduced).
  uint64_t module_digest = 0;
  uint64_t report_digest = 0;
  // Reuse accounting (from SynthesisResult and the caches).
  uint64_t seed_switches = 0;
  uint64_t seed_best_prefix = 0;
  uint64_t distance_tables_restored = 0;
  uint64_t solver_shared_hits = 0;
  double seconds = 0.0;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();  // Flushes caches.

  // Runs one job to completion. Thread-safe: the daemon calls this from
  // every queue worker concurrently.
  JobResult Process(const Job& job);

  // Writes every in-memory cache through the CacheStore (no-op without a
  // cache_dir). Called on shutdown and SIGINT; safe to call repeatedly.
  void FlushAll();

  struct Stats {
    uint64_t jobs = 0;
    uint64_t reproduced = 0;
    uint64_t verdict_cache_hits = 0;  // Jobs answered from results.index.
    uint64_t incremental = 0;         // Searches seeded by a stored execution.
    uint64_t duplicate_bugs = 0;      // Fingerprint already in the corpus.
    uint64_t solver_shared_hits = 0;  // Summed across jobs.
    uint64_t distance_tables_restored = 0;
    uint64_t solver_entries_preloaded = 0;  // Loaded from disk at module birth.
    uint64_t corpus_preloaded = 0;
  };
  Stats stats() const;

  // Cache-load problems observed so far (quarantined files). The daemon
  // prints them; the corrupted-file tests assert the daemon survives.
  std::vector<std::string> TakeLoadErrors();

  const ServerOptions& options() const { return options_; }

 private:
  // Everything the daemon keeps warm for one module (by content digest).
  struct ModuleState {
    explicit ModuleState(size_t solver_bytes) : solver_cache(solver_bytes) {}
    solver::SharedSolverCache solver_cache;
    vm::FingerprintTable corpus;
    std::mutex mu;  // Guards dist_snapshots.
    // Keyed by the *search* module digest (ir-opt searches an optimized
    // copy, which digests differently from the module itself).
    std::map<uint64_t, analysis::DistanceCalculator::Snapshot> dist_snapshots;
    uint64_t module_digest = 0;
  };

  ModuleState& GetModuleState(uint64_t module_digest);

  ServerOptions options_;
  std::unique_ptr<CacheStore> store_;  // Null when cache_dir is empty.
  mutable std::mutex store_mu_;        // CacheStore is not thread-safe.
  mutable std::mutex modules_mu_;
  std::map<uint64_t, std::unique_ptr<ModuleState>> modules_;
  mutable std::mutex stats_mu_;
  Stats stats_;
  std::vector<std::string> load_errors_;
  size_t store_errors_drained_ = 0;  // Guarded by store_mu_.
};

}  // namespace esd::serve

#endif  // ESD_SRC_SERVE_SERVER_H_

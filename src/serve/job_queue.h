// ESD serve: sharded job queue feeding the daemon's synthesis workers.
//
// Jobs are routed to a home shard by module-digest affinity, so jobs on the
// same module land on the same worker back-to-back and its warm caches
// (solver entries, distance tables) get maximal reuse. An idle worker steals
// from the busiest other shard rather than sleeping while work exists —
// affinity is a preference, not a partition (the same discipline as the
// vm::SharedFrontier the portfolio workers use).
#ifndef ESD_SRC_SERVE_JOB_QUEUE_H_
#define ESD_SRC_SERVE_JOB_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace esd::serve {

// One synthesis request: a module, a bug report, and where the verdict goes.
struct Job {
  uint64_t id = 0;
  std::string module_text;
  std::string report_text;
  std::string module_path;  // Diagnostics only.
  std::string report_path;
  std::string out_path;  // Execution-file destination ("" = don't write).
};

class JobQueue {
 public:
  explicit JobQueue(size_t shards);

  // Enqueues onto the shard owning `module_digest`. Returns false after
  // Close().
  bool Push(Job job, uint64_t module_digest);

  // Blocks until a job is available (own shard first, then steal) or the
  // queue is closed and drained. nullopt = shut down, no work left.
  std::optional<Job> Pop(size_t worker);

  // No more pushes; Pop returns nullopt once the shards drain.
  void Close();

  struct Stats {
    uint64_t pushed = 0;
    uint64_t popped = 0;
    uint64_t stolen = 0;  // Pops served from a non-home shard.
  };
  Stats stats() const;
  size_t shards() const { return shards_.size(); }

 private:
  struct Shard {
    std::deque<Job> jobs;
  };

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Shard> shards_;
  bool closed_ = false;
  Stats stats_;
};

}  // namespace esd::serve

#endif  // ESD_SRC_SERVE_JOB_QUEUE_H_

#include "src/serve/cache_io.h"

#include <cstdio>
#include <set>
#include <sstream>

namespace esd::serve {
namespace {

std::string Hex16(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

// Input names inside solver models may contain whitespace; escape exactly
// like the execution-file format so the record stays one line and the
// round trip stays byte-identical.
std::string EscapeName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (unsigned char c : name) {
    if (c == '%' || c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02x", c);
      out += buf;
    } else {
      out += static_cast<char>(c);
    }
  }
  return out;
}

std::string UnescapeName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (size_t i = 0; i < name.size(); ++i) {
    if (name[i] == '%' && i + 2 < name.size()) {
      auto hex = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        return -1;
      };
      int hi = hex(name[i + 1]), lo = hex(name[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out += static_cast<char>(hi * 16 + lo);
        i += 2;
        continue;
      }
    }
    out += name[i];
  }
  return out;
}

// Shared strict-parse scaffolding: header + module line up front, one-line
// error reporting with line numbers, and the no-bytes-after-`end` check.
class LineReader {
 public:
  LineReader(const std::string& text, std::string* error)
      : is_(text), error_(error) {}

  bool Next(std::string* line) {
    if (!std::getline(is_, *line)) {
      return false;
    }
    ++line_no_;
    return true;
  }

  bool Fail(const std::string& msg) {
    if (error_ != nullptr) {
      *error_ = msg + " (line " + std::to_string(line_no_) + ")";
    }
    return false;
  }

  // Consumes the `esdcache <kind> v1` header and `module <hex>` line.
  bool Header(const std::string& kind, uint64_t expected_digest,
              uint64_t* digest) {
    std::string line;
    if (!Next(&line)) {
      return Fail("empty cache file");
    }
    std::istringstream ls(line);
    std::string magic, got_kind, version;
    ls >> magic >> got_kind >> version;
    if (magic != "esdcache" || got_kind != kind) {
      return Fail("missing 'esdcache " + kind + "' header");
    }
    if (version != "v1") {
      return Fail("unsupported " + kind + " cache version '" + version + "'");
    }
    std::string extra;
    if (ls >> extra) {
      return Fail("trailing garbage after header");
    }
    if (!Next(&line)) {
      return Fail("missing module digest line");
    }
    std::istringstream ms(line);
    std::string word;
    ms >> word;
    if (word != "module" || !(ms >> std::hex >> *digest)) {
      return Fail("malformed module digest line");
    }
    if (ms >> extra) {
      return Fail("trailing garbage after module digest");
    }
    if (expected_digest != kAnyDigest && *digest != expected_digest) {
      return Fail("module digest mismatch: cache has " + Hex16(*digest) +
                  ", module is " + Hex16(expected_digest));
    }
    return true;
  }

  // After `end`: any further line (even blank) is trailing garbage.
  bool Epilogue() {
    std::string line;
    if (Next(&line)) {
      return Fail("trailing garbage after end trailer");
    }
    return true;
  }

 private:
  std::istringstream is_;
  std::string* error_;
  size_t line_no_ = 0;
};

bool ReadU64List(std::istringstream& ls, std::vector<uint64_t>* out) {
  uint64_t n = 0;
  if (!(ls >> n)) {
    return false;
  }
  out->clear();
  out->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t v;
    if (!(ls >> v)) {
      return false;
    }
    out->push_back(v);
  }
  return true;
}

void WriteU64List(std::ostringstream& os, const std::vector<uint64_t>& v) {
  os << " " << v.size();
  for (uint64_t x : v) {
    os << " " << x;
  }
}

bool Trailing(std::istringstream& ls) {
  std::string extra;
  return static_cast<bool>(ls >> extra);
}

}  // namespace

// ---- Solver query cache -----------------------------------------------------

std::string SolverCacheToText(const SolverCacheImage& image) {
  std::ostringstream os;
  os << "esdcache solver v1\n";
  os << "module " << Hex16(image.module_digest) << "\n";
  for (const auto& e : image.entries) {
    os << "q " << Hex16(e.key) << " "
       << (e.sat ? (e.has_model ? "sat-model" : "sat") : "unsat") << "\n";
    if (e.has_model) {
      for (const auto& [id, value] : e.values) {
        os << "v " << id << " " << value << "\n";
      }
      for (const auto& [id, name] : e.names) {
        os << "n " << id << " " << EscapeName(name) << "\n";
      }
    }
  }
  os << "end " << image.entries.size() << "\n";
  return os.str();
}

std::optional<SolverCacheImage> ParseSolverCache(const std::string& text,
                                                 uint64_t expected_digest,
                                                 std::string* error) {
  LineReader reader(text, error);
  SolverCacheImage image;
  if (!reader.Header("solver", expected_digest, &image.module_digest)) {
    return std::nullopt;
  }
  std::string line;
  bool saw_end = false;
  while (reader.Next(&line)) {
    std::istringstream ls(line);
    std::string word;
    ls >> word;
    if (word == "q") {
      solver::SharedSolverCache::SnapshotEntry entry;
      std::string key_hex, verdict;
      if (!(ls >> key_hex >> verdict)) {
        reader.Fail("truncated q record");
        return std::nullopt;
      }
      std::istringstream ks(key_hex);
      if (!(ks >> std::hex >> entry.key) || Trailing(ks)) {
        reader.Fail("malformed q key '" + key_hex + "'");
        return std::nullopt;
      }
      if (verdict == "sat-model") {
        entry.sat = true;
        entry.has_model = true;
      } else if (verdict == "sat") {
        entry.sat = true;
      } else if (verdict != "unsat") {
        reader.Fail("bad q verdict '" + verdict + "'");
        return std::nullopt;
      }
      if (Trailing(ls)) {
        reader.Fail("trailing garbage after q record");
        return std::nullopt;
      }
      // Keys must be strictly increasing: canonical order doubles as a
      // duplicate check.
      if (!image.entries.empty() && entry.key <= image.entries.back().key) {
        reader.Fail("q keys out of order");
        return std::nullopt;
      }
      image.entries.push_back(std::move(entry));
    } else if (word == "v" || word == "n") {
      if (image.entries.empty() || !image.entries.back().has_model) {
        reader.Fail("'" + word + "' record outside a sat-model entry");
        return std::nullopt;
      }
      auto& entry = image.entries.back();
      uint64_t id;
      if (word == "v") {
        uint64_t value;
        if (!(ls >> id >> value) || Trailing(ls)) {
          reader.Fail("malformed v record");
          return std::nullopt;
        }
        if (!entry.names.empty()) {
          reader.Fail("v record after n records");
          return std::nullopt;
        }
        if (!entry.values.empty() && id <= entry.values.back().first) {
          reader.Fail("v ids out of order");
          return std::nullopt;
        }
        entry.values.emplace_back(id, value);
      } else {
        std::string name;
        if (!(ls >> id >> name) || Trailing(ls)) {
          reader.Fail("malformed n record");
          return std::nullopt;
        }
        if (!entry.names.empty() && id <= entry.names.back().first) {
          reader.Fail("n ids out of order");
          return std::nullopt;
        }
        entry.names.emplace_back(id, UnescapeName(name));
      }
    } else if (word == "end") {
      uint64_t count;
      if (!(ls >> count) || Trailing(ls)) {
        reader.Fail("malformed end trailer");
        return std::nullopt;
      }
      if (count != image.entries.size()) {
        reader.Fail("end count " + std::to_string(count) + " != " +
                    std::to_string(image.entries.size()) + " records (truncated?)");
        return std::nullopt;
      }
      saw_end = true;
      break;
    } else {
      reader.Fail("unknown directive '" + word + "'");
      return std::nullopt;
    }
  }
  if (!saw_end) {
    reader.Fail("missing end trailer (truncated file)");
    return std::nullopt;
  }
  if (!reader.Epilogue()) {
    return std::nullopt;
  }
  return image;
}

// ---- Distance tables --------------------------------------------------------

std::string DistanceCacheToText(
    const analysis::DistanceCalculator::Snapshot& snap) {
  std::ostringstream os;
  os << "esdcache dist v1\n";
  os << "module " << Hex16(snap.module_digest) << "\n";
  for (const auto& [func, fc] : snap.costs) {
    auto it = snap.function_cost.find(func);
    os << "func " << func << " "
       << (it == snap.function_cost.end() ? analysis::kInfDistance : it->second)
       << "\n";
    os << "ic";
    WriteU64List(os, fc.inst_cost);
    os << "\nip";
    WriteU64List(os, fc.inst_prefix);
    os << "\nbc";
    WriteU64List(os, fc.block_cost);
    os << "\nbs";
    WriteU64List(os, fc.block_start);
    os << "\ned";
    WriteU64List(os, fc.exit_dist);
    os << "\n";
  }
  // Union of the goal-keyed maps, in InstRef order (both are std::map).
  std::set<ir::InstRef> goals;
  for (const auto& [goal, tables] : snap.goal_tables) {
    goals.insert(goal);
  }
  for (const auto& [goal, dists] : snap.entry_dists) {
    goals.insert(goal);
  }
  for (const ir::InstRef& goal : goals) {
    os << "goal " << goal.func << " " << goal.block << " " << goal.inst << "\n";
    os << "entry";
    auto ed = snap.entry_dists.find(goal);
    if (ed == snap.entry_dists.end()) {
      os << " 0";
    } else {
      os << " " << ed->second.size();
      for (const auto& [func, dist] : ed->second) {
        os << " " << func << " " << dist;
      }
    }
    os << "\n";
    auto gt = snap.goal_tables.find(goal);
    if (gt != snap.goal_tables.end()) {
      for (const auto& [func, table] : gt->second) {
        os << "table " << func;
        WriteU64List(os, table.goal_dist);
        WriteU64List(os, table.inst_dist);
        os << "\n";
      }
    }
  }
  os << "end " << snap.costs.size() << " " << goals.size() << "\n";
  return os.str();
}

std::optional<analysis::DistanceCalculator::Snapshot> ParseDistanceCache(
    const std::string& text, uint64_t expected_digest, std::string* error) {
  LineReader reader(text, error);
  analysis::DistanceCalculator::Snapshot snap;
  if (!reader.Header("dist", expected_digest, &snap.module_digest)) {
    return std::nullopt;
  }
  std::string line;
  bool saw_end = false;
  // Section cursors: `ic/ip/bc/bs/ed` attach to the last `func`, `entry` and
  // `table` to the last `goal`. The five cost rows must arrive in order.
  analysis::DistanceCalculator::FuncCosts* cur_costs = nullptr;
  int cost_rows = 0;
  std::optional<ir::InstRef> cur_goal;
  size_t goal_count = 0;
  while (reader.Next(&line)) {
    std::istringstream ls(line);
    std::string word;
    ls >> word;
    if (word == "func") {
      if (cur_costs != nullptr && cost_rows != 5) {
        reader.Fail("func section truncated (expected 5 cost rows)");
        return std::nullopt;
      }
      uint32_t func;
      uint64_t fcost;
      if (!(ls >> func >> fcost) || Trailing(ls)) {
        reader.Fail("malformed func record");
        return std::nullopt;
      }
      if (cur_goal.has_value()) {
        reader.Fail("func record after goal sections");
        return std::nullopt;
      }
      auto [it, inserted] = snap.costs.try_emplace(func);
      if (!inserted) {
        reader.Fail("duplicate func " + std::to_string(func));
        return std::nullopt;
      }
      snap.function_cost[func] = fcost;
      cur_costs = &it->second;
      cost_rows = 0;
    } else if (word == "ic" || word == "ip" || word == "bc" || word == "bs" ||
               word == "ed") {
      if (cur_costs == nullptr) {
        reader.Fail("'" + word + "' record outside a func section");
        return std::nullopt;
      }
      static const char* kOrder[5] = {"ic", "ip", "bc", "bs", "ed"};
      if (cost_rows >= 5 || word != kOrder[cost_rows]) {
        reader.Fail("cost rows out of order at '" + word + "'");
        return std::nullopt;
      }
      std::vector<uint64_t>* dst = nullptr;
      switch (cost_rows) {
        case 0: dst = &cur_costs->inst_cost; break;
        case 1: dst = &cur_costs->inst_prefix; break;
        case 2: dst = &cur_costs->block_cost; break;
        case 3: dst = &cur_costs->block_start; break;
        case 4: dst = &cur_costs->exit_dist; break;
      }
      if (!ReadU64List(ls, dst) || Trailing(ls)) {
        reader.Fail("malformed '" + word + "' row");
        return std::nullopt;
      }
      ++cost_rows;
    } else if (word == "goal") {
      if (cur_costs != nullptr && cost_rows != 5) {
        reader.Fail("func section truncated (expected 5 cost rows)");
        return std::nullopt;
      }
      cur_costs = nullptr;
      ir::InstRef goal;
      if (!(ls >> goal.func >> goal.block >> goal.inst) || Trailing(ls)) {
        reader.Fail("malformed goal record");
        return std::nullopt;
      }
      if (cur_goal.has_value() && !(*cur_goal < goal)) {
        reader.Fail("goal sections out of order");
        return std::nullopt;
      }
      cur_goal = goal;
      ++goal_count;
    } else if (word == "entry") {
      if (!cur_goal.has_value()) {
        reader.Fail("entry record outside a goal section");
        return std::nullopt;
      }
      uint64_t n;
      if (!(ls >> n)) {
        reader.Fail("malformed entry record");
        return std::nullopt;
      }
      auto& dists = snap.entry_dists[*cur_goal];
      for (uint64_t i = 0; i < n; ++i) {
        uint32_t func;
        uint64_t dist;
        if (!(ls >> func >> dist)) {
          reader.Fail("truncated entry record");
          return std::nullopt;
        }
        dists[func] = dist;
      }
      if (Trailing(ls)) {
        reader.Fail("trailing garbage after entry record");
        return std::nullopt;
      }
    } else if (word == "table") {
      if (!cur_goal.has_value()) {
        reader.Fail("table record outside a goal section");
        return std::nullopt;
      }
      uint32_t func;
      if (!(ls >> func)) {
        reader.Fail("malformed table record");
        return std::nullopt;
      }
      analysis::DistanceCalculator::GoalTable table;
      if (!ReadU64List(ls, &table.goal_dist) ||
          !ReadU64List(ls, &table.inst_dist) || Trailing(ls)) {
        reader.Fail("malformed table lists");
        return std::nullopt;
      }
      auto& per_goal = snap.goal_tables[*cur_goal];
      if (!per_goal.emplace(func, std::move(table)).second) {
        reader.Fail("duplicate table for func " + std::to_string(func));
        return std::nullopt;
      }
    } else if (word == "end") {
      if (cur_costs != nullptr && cost_rows != 5) {
        reader.Fail("func section truncated (expected 5 cost rows)");
        return std::nullopt;
      }
      uint64_t nfunc, ngoal;
      if (!(ls >> nfunc >> ngoal) || Trailing(ls)) {
        reader.Fail("malformed end trailer");
        return std::nullopt;
      }
      if (nfunc != snap.costs.size() || ngoal != goal_count) {
        reader.Fail("end counts do not match records (truncated?)");
        return std::nullopt;
      }
      saw_end = true;
      break;
    } else {
      reader.Fail("unknown directive '" + word + "'");
      return std::nullopt;
    }
  }
  if (!saw_end) {
    reader.Fail("missing end trailer (truncated file)");
    return std::nullopt;
  }
  if (!reader.Epilogue()) {
    return std::nullopt;
  }
  return snap;
}

// ---- Fingerprint corpus -----------------------------------------------------

std::string FingerprintCorpusToText(const FingerprintImage& image) {
  std::ostringstream os;
  os << "esdcache fps v1\n";
  os << "module " << Hex16(image.module_digest) << "\n";
  for (uint64_t fp : image.fingerprints) {
    os << "fp " << Hex16(fp) << "\n";
  }
  os << "end " << image.fingerprints.size() << "\n";
  return os.str();
}

std::optional<FingerprintImage> ParseFingerprintCorpus(const std::string& text,
                                                       uint64_t expected_digest,
                                                       std::string* error) {
  LineReader reader(text, error);
  FingerprintImage image;
  if (!reader.Header("fps", expected_digest, &image.module_digest)) {
    return std::nullopt;
  }
  std::string line;
  bool saw_end = false;
  while (reader.Next(&line)) {
    std::istringstream ls(line);
    std::string word;
    ls >> word;
    if (word == "fp") {
      std::string hex;
      uint64_t fp;
      if (!(ls >> hex) || Trailing(ls)) {
        reader.Fail("malformed fp record");
        return std::nullopt;
      }
      std::istringstream hs(hex);
      if (!(hs >> std::hex >> fp) || Trailing(hs)) {
        reader.Fail("malformed fp value '" + hex + "'");
        return std::nullopt;
      }
      if (!image.fingerprints.empty() && fp <= image.fingerprints.back()) {
        reader.Fail("fp records out of order");
        return std::nullopt;
      }
      image.fingerprints.push_back(fp);
    } else if (word == "end") {
      uint64_t count;
      if (!(ls >> count) || Trailing(ls)) {
        reader.Fail("malformed end trailer");
        return std::nullopt;
      }
      if (count != image.fingerprints.size()) {
        reader.Fail("end count " + std::to_string(count) + " != " +
                    std::to_string(image.fingerprints.size()) +
                    " records (truncated?)");
        return std::nullopt;
      }
      saw_end = true;
      break;
    } else {
      reader.Fail("unknown directive '" + word + "'");
      return std::nullopt;
    }
  }
  if (!saw_end) {
    reader.Fail("missing end trailer (truncated file)");
    return std::nullopt;
  }
  if (!reader.Epilogue()) {
    return std::nullopt;
  }
  return image;
}

}  // namespace esd::serve

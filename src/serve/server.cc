#include "src/serve/server.h"

#include <cstdlib>

#include "src/ir/parser.h"
#include "src/ir/printer.h"
#include "src/ir/verifier.h"
#include "src/replay/execution_file.h"
#include "src/report/coredump.h"
#include "src/workloads/workloads.h"

namespace esd::serve {
namespace {

// FNV-1a over arbitrary text: the report-identity key for results.index.
// (ir::ModuleDigest is the same construction over the canonical module
// print, so the two digest spaces behave identically.)
uint64_t TextDigest(const std::string& text) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : text) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

Server::Server(ServerOptions options) : options_(std::move(options)) {
  if (!options_.cache_dir.empty()) {
    store_ = std::make_unique<CacheStore>(options_.cache_dir);
    if (!store_->ok()) {
      load_errors_.push_back(store_->error());
      store_.reset();
    }
  }
}

Server::~Server() { FlushAll(); }

Server::ModuleState& Server::GetModuleState(uint64_t module_digest) {
  {
    std::lock_guard<std::mutex> lock(modules_mu_);
    auto it = modules_.find(module_digest);
    if (it != modules_.end()) {
      return *it->second;
    }
  }
  // First job on this module: build the state and warm it from disk. Done
  // outside modules_mu_ so a slow disk load does not block jobs on other
  // modules; a racing builder for the same digest loses below and is freed.
  auto state = std::make_unique<ModuleState>(options_.solver_cache_bytes);
  state->module_digest = module_digest;
  if (store_ != nullptr) {
    std::lock_guard<std::mutex> lock(store_mu_);
    if (auto image = store_->LoadSolverCache(module_digest)) {
      state->solver_cache.Preload(image->entries);
    }
    if (auto corpus = store_->LoadFingerprintCorpus(module_digest)) {
      state->corpus.Preload(corpus->fingerprints);
    }
  }
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    stats_.solver_entries_preloaded += state->solver_cache.stats().preloaded;
    stats_.corpus_preloaded += state->corpus.Size();
  }
  std::lock_guard<std::mutex> lock(modules_mu_);
  auto [it, inserted] = modules_.try_emplace(module_digest, std::move(state));
  return *it->second;
}

JobResult Server::Process(const Job& job) {
  JobResult out;
  out.job_id = job.id;

  // Parse + verify the module, exactly like the one-shot tools do.
  std::string source = job.module_text;
  if (source.find("extern @getchar") == std::string::npos) {
    source = std::string(workloads::ExternsPreamble()) + source;
  }
  auto module = std::make_shared<ir::Module>();
  ir::ParseResult pr = ir::ParseModule(source, module.get());
  if (!pr.ok) {
    out.error = job.module_path + ": " + pr.error;
    return out;
  }
  auto verify_errors = ir::Verify(*module);
  if (!verify_errors.empty()) {
    out.error = job.module_path + ": " + verify_errors[0];
    return out;
  }
  out.module_digest = ir::ModuleDigest(*module);
  out.report_digest = TextDigest(job.report_text);

  ModuleState& ms = GetModuleState(out.module_digest);

  // Exact (report, module) duplicate: answer from the stored verdict.
  // (Copied out: the record pointer is only stable under store_mu_.)
  std::optional<ResultRecord> prior;
  if (store_ != nullptr) {
    std::lock_guard<std::mutex> lock(store_mu_);
    if (const ResultRecord* found = store_->FindResult(out.report_digest)) {
      prior = *found;
    }
    if (prior.has_value() && options_.reuse_results &&
        prior->module_digest == out.module_digest) {
      out.ok = true;
      out.reproduced = prior->reproduced;
      out.fingerprint = prior->fingerprint;
      out.source = "cache";
      if (prior->reproduced) {
        if (auto text = store_->LoadExecFile(*prior)) {
          out.exec_text = *text;
        }
        out.duplicate_bug = true;  // By definition: we synthesized it before.
      }
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      ++stats_.jobs;
      ++stats_.verdict_cache_hits;
      if (out.reproduced) ++stats_.reproduced;
      return out;
    }
  }

  std::string parse_error;
  auto dump = report::ParseCoreDump(*module, job.report_text, &parse_error);
  if (!dump.has_value()) {
    out.error = job.report_path + ": " + parse_error;
    return out;
  }

  // Same report, different (patched) module: seed the search from the
  // execution we synthesized last time.
  std::optional<replay::ExecutionFile> seed;
  if (prior.has_value() && prior->reproduced &&
      prior->module_digest != out.module_digest) {
    std::optional<std::string> seed_text;
    {
      std::lock_guard<std::mutex> lock(store_mu_);
      seed_text = store_->LoadExecFile(*prior);
    }
    if (seed_text.has_value()) {
      std::string seed_error;
      seed = replay::ParseExecutionFile(*seed_text, &seed_error);
    }
  }

  core::SynthesisOptions sopts = options_.synthesis;
  sopts.shared_solver_cache = &ms.solver_cache;
  sopts.seed_schedule = seed.has_value() ? &*seed : nullptr;
  bool restored_any = false;
  sopts.on_distances_ready = [this, &ms,
                              &restored_any](analysis::DistanceCalculator& dc) {
    const uint64_t key = dc.module_digest();
    {
      std::lock_guard<std::mutex> lock(ms.mu);
      auto it = ms.dist_snapshots.find(key);
      if (it != ms.dist_snapshots.end()) {
        restored_any = dc.Restore(it->second) || restored_any;
        return;
      }
    }
    if (store_ != nullptr) {
      std::optional<analysis::DistanceCalculator::Snapshot> snap;
      {
        std::lock_guard<std::mutex> lock(store_mu_);
        snap = store_->LoadDistanceCache(key);
      }
      if (snap.has_value()) {
        restored_any = dc.Restore(*snap) || restored_any;
        std::lock_guard<std::mutex> lock(ms.mu);
        ms.dist_snapshots.emplace(key, std::move(*snap));
      }
    }
  };
  sopts.on_distances_done = [&ms](analysis::DistanceCalculator& dc) {
    auto snap = dc.Export();
    std::lock_guard<std::mutex> lock(ms.mu);
    ms.dist_snapshots[snap.module_digest] = std::move(snap);
  };

  core::Synthesizer synthesizer(module.get(), sopts);
  core::SynthesisResult result = synthesizer.Synthesize(*dump);

  out.ok = true;
  out.reproduced = result.success;
  out.failure_reason = result.failure_reason;
  out.seconds = result.seconds;
  out.seed_switches = result.seed_switches;
  out.seed_best_prefix = result.seed_best_prefix;
  out.distance_tables_restored = result.distance_tables_restored;
  out.solver_shared_hits = result.solver.shared_hits;
  if (seed.has_value()) {
    out.source = "incremental";
  } else if (restored_any || result.solver.shared_hits > 0) {
    out.source = "warm";
  }

  ResultRecord record;
  record.report_digest = out.report_digest;
  record.module_digest = out.module_digest;
  record.reproduced = result.success;
  if (result.success) {
    out.exec_text = replay::ExecutionFileToText(result.file);
    out.fingerprint = replay::Fingerprint(result.file);
    record.fingerprint = out.fingerprint;
    // Corpus triage: identical executions mean the same bug (§8).
    const uint64_t fp = std::strtoull(out.fingerprint.c_str(), nullptr, 16);
    out.duplicate_bug = !ms.corpus.InsertIfAbsent(fp);
  }
  if (store_ != nullptr) {
    std::lock_guard<std::mutex> lock(store_mu_);
    store_->StoreResult(std::move(record), out.exec_text);
  }

  std::lock_guard<std::mutex> stats_lock(stats_mu_);
  ++stats_.jobs;
  if (out.reproduced) ++stats_.reproduced;
  if (out.source == "incremental") ++stats_.incremental;
  if (out.duplicate_bug) ++stats_.duplicate_bugs;
  stats_.solver_shared_hits += out.solver_shared_hits;
  stats_.distance_tables_restored += out.distance_tables_restored;
  return out;
}

void Server::FlushAll() {
  if (store_ == nullptr) {
    return;
  }
  std::lock_guard<std::mutex> modules_lock(modules_mu_);
  std::lock_guard<std::mutex> store_lock(store_mu_);
  for (auto& [digest, ms] : modules_) {
    SolverCacheImage solver_image;
    solver_image.module_digest = digest;
    solver_image.entries = ms->solver_cache.Snapshot();
    store_->StoreSolverCache(solver_image);

    FingerprintImage corpus_image;
    corpus_image.module_digest = digest;
    corpus_image.fingerprints = ms->corpus.Snapshot();
    store_->StoreFingerprintCorpus(corpus_image);

    std::lock_guard<std::mutex> ms_lock(ms->mu);
    for (const auto& [search_digest, snap] : ms->dist_snapshots) {
      store_->StoreDistanceCache(snap);
    }
  }
}

Server::Stats Server::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

std::vector<std::string> Server::TakeLoadErrors() {
  std::vector<std::string> errors;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    errors = std::move(load_errors_);
    load_errors_.clear();
  }
  if (store_ != nullptr) {
    std::lock_guard<std::mutex> lock(store_mu_);
    const auto& store_errors = store_->load_errors();
    for (; store_errors_drained_ < store_errors.size();
         ++store_errors_drained_) {
      errors.push_back(store_errors[store_errors_drained_]);
    }
  }
  return errors;
}

}  // namespace esd::serve

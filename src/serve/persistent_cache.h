// ESD serve: crash-safe on-disk cache store for the esdserved daemon.
//
// One directory holds every persisted artifact, named by module digest:
//
//   <digest>.solver.esdc   solver query/counterexample cache (cache_io.h)
//   <digest>.dist.esdc     distance tables for the *search* module digest
//   <digest>.fps.esdc      execution-fingerprint corpus (duplicate-bug triage)
//   results.index          one line per solved job: report digest ->
//                          module digest, verdict, fingerprint, exec file
//   <report-digest>.exec   execution file of a solved job (the seed for
//                          incremental re-synthesis after a patch)
//
// Crash safety: every write goes to a `.tmp` sibling first and is renamed
// into place, so a crash mid-write leaves either the old file or the new
// one, never a torn file. A file that fails its strict parse (truncated,
// corrupted, version bump, digest mismatch) is moved aside to
// `<name>.quarantined` and treated as absent — the daemon logs one line,
// keeps running, and regenerates the cache.
#ifndef ESD_SRC_SERVE_PERSISTENT_CACHE_H_
#define ESD_SRC_SERVE_PERSISTENT_CACHE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/serve/cache_io.h"

namespace esd::serve {

// One line of results.index: everything needed to short-circuit a duplicate
// job or seed an incremental one.
struct ResultRecord {
  uint64_t report_digest = 0;  // FNV over the coredump text.
  uint64_t module_digest = 0;  // Module the verdict was computed against.
  bool reproduced = false;
  std::string fingerprint;     // replay::Fingerprint hex (empty if none).
  std::string exec_file;       // Relative path of the stored .exec (or "").
};

class CacheStore {
 public:
  // Creates `dir` if missing. A load error (unusable directory) is reported
  // through ok()/error(); the store then behaves as empty and read-only.
  explicit CacheStore(const std::string& dir);

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }

  // ---- Cache files (each keyed by a module digest) ----
  // Loads return nullopt when the file is absent OR failed its strict parse;
  // a failed parse quarantines the file and appends to load_errors().
  std::optional<SolverCacheImage> LoadSolverCache(uint64_t module_digest);
  std::optional<analysis::DistanceCalculator::Snapshot> LoadDistanceCache(
      uint64_t search_digest);
  std::optional<FingerprintImage> LoadFingerprintCorpus(uint64_t module_digest);

  bool StoreSolverCache(const SolverCacheImage& image);
  bool StoreDistanceCache(const analysis::DistanceCalculator::Snapshot& snap);
  bool StoreFingerprintCorpus(const FingerprintImage& image);

  // ---- Execution files + results index ----
  // Stores `text` as <report-digest>.exec and records `record` (its
  // exec_file field is filled in). Rewrites results.index atomically.
  bool StoreResult(ResultRecord record, const std::string& exec_text);
  const ResultRecord* FindResult(uint64_t report_digest) const;
  // Reads the execution-file text a ResultRecord points at.
  std::optional<std::string> LoadExecFile(const ResultRecord& record) const;
  size_t result_count() const { return results_.size(); }

  // One line per quarantined/rejected file since construction (includes the
  // parse error). The daemon prints these; tests assert on them.
  const std::vector<std::string>& load_errors() const { return load_errors_; }

  const std::string& dir() const { return dir_; }

 private:
  std::string PathFor(uint64_t digest, const char* kind) const;
  std::optional<std::string> ReadOrQuarantine(const std::string& path,
                                              bool* present);
  void Quarantine(const std::string& path, const std::string& why);
  bool AtomicWrite(const std::string& path, const std::string& text);
  void LoadIndex();
  bool WriteIndex();

  std::string dir_;
  bool ok_ = false;
  std::string error_;
  std::map<uint64_t, ResultRecord> results_;  // By report digest.
  std::vector<std::string> load_errors_;
};

}  // namespace esd::serve

#endif  // ESD_SRC_SERVE_PERSISTENT_CACHE_H_

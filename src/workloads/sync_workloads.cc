// Sync-surface workloads: planted bugs for the rwlock / semaphore /
// barrier / trylock primitives, mirroring the bug families the paper's
// Table 1 suite covers for mutexes and condvars:
//
//   rwupgrade - hang: two cache refreshers read-lock, find the cache stale,
//               and upgrade in place; with both read holds live neither
//               writer can proceed (the classic rwlock upgrade deadlock).
//               An input selects the buggy in-place-upgrade mode.
//   semdrop   - hang: a producer hands a token through a semaphore with
//               sem_trywait on its fast path; when the trywait lands while
//               the token is briefly borrowed, the failure path forgets to
//               signal the consumer — a lost signal, the consumer waits
//               forever.
//   barrier3  - hang: a configuration branch initializes the phase barrier
//               for 3 parties ("coordinator counts itself") but the
//               coordinator never arrives; the 2 workers park forever — a
//               barrier count mismatch.
//   trybank   - crash: a "quick audit" asserts that mutex_trylock on the
//               ledger always succeeds; it fails exactly when a teller
//               holds the ledger lock at that instant.
#include "src/workloads/workloads_internal.h"

namespace esd::workloads {

Workload BuildRwUpgrade() {
  Workload w;
  w.name = "rwupgrade";
  w.manifestation = "hang";
  w.expected_kind = vm::BugInfo::Kind::kDeadlock;
  w.module = ParseWorkload(R"(
global $rw = zero 8
global $cache = zero 4
global $modename = str "refresh_mode"
global $mode_cache = zero 4

func @refresher(%arg: ptr) : void {
entry:
  call @rwlock_rdlock($rw)
  %v = load i32, $cache
  %stale = icmp eq %v, i32 0
  condbr %stale, refresh, fresh
refresh:
  %mode = load i32, $mode_cache
  %inplace = icmp eq %mode, i32 117   ; 'u': upgrade without releasing
  condbr %inplace, upgrade, safe
upgrade:
  call @rwlock_wrlock($rw)            ; BUG: both readers upgrading -> cycle
  store i32 1, $cache
  call @rwlock_unlock($rw)
  ret
safe:
  call @rwlock_unlock($rw)            ; drop the read hold first
  call @rwlock_wrlock($rw)
  store i32 1, $cache
  call @rwlock_unlock($rw)
  ret
fresh:
  call @rwlock_unlock($rw)
  ret
}

func @main() : i32 {
entry:
  %mode = call @esd_input_i32($modename)
  store %mode, $mode_cache
  call @rwlock_init($rw)
  %t1 = call @thread_create(@refresher, null)
  %t2 = call @thread_create(@refresher, null)
  call @thread_join(%t1)
  call @thread_join(%t2)
  ret i32 0
}
)");
  w.trigger.inputs = {{"refresh_mode", 'u'}};
  // Both refreshers take the read lock before either upgrades: T1 rdlocks
  // (1 sync event) and is preempted; T2 rdlocks and tries to upgrade
  // (blocks on T1's read hold); T1 then upgrades too -> circular wait.
  w.trigger.schedule = {{1, 1, 2}, {2, 1, 1}};
  return w;
}

Workload BuildSemDrop() {
  Workload w;
  w.name = "semdrop";
  w.manifestation = "hang";
  w.expected_kind = vm::BugInfo::Kind::kDeadlock;
  w.module = ParseWorkload(R"(
global $ready = zero 8
global $done = zero 8
global $handoffname = str "handoff_mode"
global $mode_cache = zero 4

func @consumer(%arg: ptr) : void {
entry:
  call @sem_wait($ready)              ; borrow the handoff token...
  call @sem_post($ready)              ; ...and return it
  call @sem_wait($done)               ; then wait for the producer's signal
  ret
}

func @producer(%arg: ptr) : void {
entry:
  %mode = load i32, $mode_cache
  %fast = icmp eq %mode, i32 116      ; 't': trywait fast path
  condbr %fast, fast, safe
fast:
  %r = call @sem_trywait($ready)
  %got = icmp eq %r, i32 1
  condbr %got, forward, out           ; BUG: a failed trywait drops the signal
forward:
  call @sem_post($ready)
  call @sem_post($done)
  br out
safe:
  call @sem_wait($ready)              ; waits for the token instead
  call @sem_post($ready)
  call @sem_post($done)
  br out
out:
  ret
}

func @main() : i32 {
entry:
  %mode = call @esd_input_i32($handoffname)
  store %mode, $mode_cache
  call @sem_init($ready, i32 1)
  call @sem_init($done, i32 0)
  %t1 = call @thread_create(@consumer, null)
  %t2 = call @thread_create(@producer, null)
  call @thread_join(%t1)
  call @thread_join(%t2)
  ret i32 0
}
)");
  w.trigger.inputs = {{"handoff_mode", 't'}};
  // The producer's trywait must land inside the consumer's borrow window:
  // right after the consumer's sem_wait (its 1st counted sync event), run
  // the producer (tid 2).
  w.trigger.schedule = {{1, 1, 2}};
  return w;
}

Workload BuildBarrier3() {
  Workload w;
  w.name = "barrier3";
  w.manifestation = "hang";
  w.expected_kind = vm::BugInfo::Kind::kDeadlock;
  w.module = ParseWorkload(R"(
global $b = zero 8
global $stage = zero 4
global $cfgname = str "parties"

func @stageworker(%arg: ptr) : void {
entry:
  %v = load i32, $stage
  %n = add %v, i32 1
  store %n, $stage
  call @barrier_wait($b)
  ret
}

func @main() : i32 {
entry:
  %p = call @esd_input_i32($cfgname)
  %coord = icmp eq %p, i32 3          ; "coordinator counts itself" config
  condbr %coord, initboth, initworkers
initboth:
  call @barrier_init($b, i32 3)       ; BUG: main never calls barrier_wait
  br spawn
initworkers:
  call @barrier_init($b, i32 2)
  br spawn
spawn:
  %t1 = call @thread_create(@stageworker, null)
  %t2 = call @thread_create(@stageworker, null)
  call @thread_join(%t1)
  call @thread_join(%t2)
  ret i32 0
}
)");
  w.trigger.inputs = {{"parties", 3}};
  w.trigger.schedule = {};  // Any schedule hangs once the config is armed.
  return w;
}

Workload BuildTryBank() {
  Workload w;
  w.name = "trybank";
  w.manifestation = "crash";
  w.expected_kind = vm::BugInfo::Kind::kAssertFail;
  w.module = ParseWorkload(R"(
global $m = zero 8
global $balance = zero 4
global $pathname = str "audit_mode"
global $mode_cache = zero 4

func @auditor(%arg: ptr) : void {
entry:
  %mode = load i32, $mode_cache
  %lockfree = icmp eq %mode, i32 113  ; 'q': quick audit via trylock
  condbr %lockfree, quick, careful
quick:
  %r = call @mutex_trylock($m)
  %got = icmp eq %r, i32 1
  call @esd_assert(%got)              ; BUG: the ledger can be busy
  %v = load i32, $balance
  store %v, $balance
  call @mutex_unlock($m)
  ret
careful:
  call @mutex_lock($m)
  %w = load i32, $balance
  store %w, $balance
  call @mutex_unlock($m)
  ret
}

func @teller(%arg: ptr) : void {
entry:
  call @mutex_lock($m)
  %v = load i32, $balance
  %n = add %v, i32 10
  store %n, $balance
  call @mutex_unlock($m)
  ret
}

func @main() : i32 {
entry:
  %mode = call @esd_input_i32($pathname)
  store %mode, $mode_cache
  %t1 = call @thread_create(@teller, null)
  %t2 = call @thread_create(@auditor, null)
  call @thread_join(%t1)
  call @thread_join(%t2)
  ret i32 0
}
)");
  w.trigger.inputs = {{"audit_mode", 'q'}};
  // The teller takes the ledger lock (1 sync event) and is preempted; the
  // auditor's trylock then fails and the assert fires.
  w.trigger.schedule = {{1, 1, 2}};
  return w;
}

}  // namespace esd::workloads

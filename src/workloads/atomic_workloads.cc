// C11-atomics workloads: planted lock-free bugs for the store-buffer
// (TSO) atomics model, mirroring the bug families the fixed suite covers
// for blocking primitives:
//
//   treiber  - crash: the classic Treiber-stack ABA pop. The victim reads
//              the top node id and that node's next pointer, then CASes
//              top without re-validating; the attacker pops two nodes and
//              pushes the first back, so the victim's CAS succeeds against
//              a recycled top and installs the already-popped node. An
//              input arms the attacker's recycling path.
//   spscring - crash: a single-producer/single-consumer handoff whose
//              flag store is relaxed where it must be release. Both the
//              payload and the flag sit in the producer's store buffer,
//              and a flush interleaving can publish the flag first — the
//              consumer's acquire load then observes flag == 1 while the
//              payload slot still reads 0. An input selects the buggy
//              fast path; with the release store (or --no-store-buffer)
//              the bug is unreachable.
//
// Both are detected by main's esd_assert after the joins (the §3.1
// detection-site shape), so their field report is the assert-site coredump
// (assert_site_report): for spscring no concrete trigger run can manifest
// the bug at all, since only symbolic drain forks express the flush
// interleaving.
#include "src/workloads/workloads_internal.h"

namespace esd::workloads {

Workload BuildTreiber() {
  Workload w;
  w.name = "treiber";
  w.manifestation = "crash";
  w.expected_kind = vm::BugInfo::Kind::kAssertFail;
  w.assert_site_report = true;
  w.module = ParseWorkload(R"(
global $top = zero 4
global $nxt = zero 8
global $adone = zero 4
global $modename = str "pop_mode"
global $mode_cache = zero 4

func @victim(%arg: ptr) : void {
entry:
  %t = call @atomic_load($top, i32 5)
  %empty = icmp eq %t, i32 0
  condbr %empty, out, pop
pop:
  %i = sub %t, i32 1
  %w = zext i64, %i
  %p = gep $nxt, %w, 4
  %n = call @atomic_load(%p, i32 0)
  %old = call @atomic_cas($top, %t, %n, i32 5)   ; BUG: no ABA re-validation
  br out
out:
  ret
}

func @attacker(%arg: ptr) : void {
entry:
  %mode = load i32, $mode_cache
  %armed = icmp eq %mode, i32 97    ; 'a': run the recycling path
  condbr %armed, recycle, out
recycle:
  %a = call @atomic_cas($top, i32 1, i32 2, i32 5)   ; pop node 1
  %b = call @atomic_cas($top, i32 2, i32 0, i32 5)   ; pop node 2
  store i32 0, $nxt                                  ; relink node 1...
  %c = call @atomic_cas($top, i32 0, i32 1, i32 5)   ; ...and push it back
  store i32 1, $adone
  br out
out:
  ret
}

func @main() : i32 {
entry:
  %mode = call @esd_input_i32($modename)
  store %mode, $mode_cache
  store i32 1, $top   ; stack: top -> 1 -> 2 -> empty
  store i32 2, $nxt
  %t1 = call @thread_create(@victim, null)
  %t2 = call @thread_create(@attacker, null)
  call @thread_join(%t1)
  call @thread_join(%t2)
  ; After the attacker's recycle, node 2 was popped and never pushed back:
  ; every interleaving leaves top in {0, 1} — except the ABA CAS, which
  ; re-installs the dangling node 2. (Without the recycle, top == 2 is just
  ; the victim's legal pop, so the assert requires both.)
  %ad = load i32, $adone
  %v = load i32, $top
  %hit = icmp eq %ad, i32 1
  %dangling = icmp eq %v, i32 2
  %bad = and %hit, %dangling
  %ok = not %bad
  call @esd_assert(%ok)
  ret i32 0
}
)");
  w.trigger.inputs = {{"pop_mode", 97}};
  // The victim loads top and node 1's next pointer (2 sync events), then
  // the attacker runs its full pop-pop-push (3 CASes); the victim's stale
  // CAS then installs the recycled node.
  w.trigger.schedule = {{1, 2, 2}, {2, 3, 1}};
  return w;
}

Workload BuildSpscRing() {
  Workload w;
  w.name = "spscring";
  w.manifestation = "crash";
  w.expected_kind = vm::BugInfo::Kind::kAssertFail;
  w.assert_site_report = true;
  w.module = ParseWorkload(R"(
global $data = zero 4
global $flag = zero 4
global $shut = zero 4
global $got = zero 4
global $seen = zero 4
global $modename = str "fence_mode"
global $mode_cache = zero 4

func @producer(%arg: ptr) : void {
entry:
  call @atomic_store($data, i32 41, i32 0)
  %mode = load i32, $mode_cache
  %fast = icmp eq %mode, i32 102    ; 'f': skip the release ordering
  condbr %fast, fastpath, fenced
fastpath:
  call @atomic_store($flag, i32 1, i32 0)   ; BUG: relaxed publish
  br done
fenced:
  call @atomic_store($flag, i32 1, i32 3)   ; release: drains the buffer
  br done
done:
  ; The shutdown marker keeps the thread at an atomic operation while both
  ; entries are buffered — exiting would drain the buffer in program order
  ; and close the stale-read window.
  call @atomic_store($shut, i32 1, i32 0)
  ret
}

func @consumer(%arg: ptr) : void {
entry:
  %f = call @atomic_load($flag, i32 2)
  %ready = icmp eq %f, i32 1
  condbr %ready, read, out
read:
  %d = call @atomic_load($data, i32 0)
  store %d, $got
  store i32 1, $seen
  br out
out:
  ret
}

func @main() : i32 {
entry:
  %mode = call @esd_input_i32($modename)
  store %mode, $mode_cache
  %t1 = call @thread_create(@producer, null)
  %t2 = call @thread_create(@consumer, null)
  call @thread_join(%t1)
  call @thread_join(%t2)
  %seen = load i32, $seen
  %got = load i32, $got
  %ns = icmp eq %seen, i32 0
  %okv = icmp eq %got, i32 41
  %ok = or %ns, %okv
  call @esd_assert(%ok)
  ret i32 0
}
)");
  w.trigger.inputs = {{"fence_mode", 102}};
  // No schedule: the buggy interleaving is a store-buffer flush order, not
  // a sync-event order — no concrete SyncSwitch script reaches it.
  return w;
}

}  // namespace esd::workloads

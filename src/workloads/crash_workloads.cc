// Crash workloads: the ghttpd log-buffer overflow, the paste invalid free,
// and the coreutils error-path segfaults (mknod, mkdir, mkfifo, tac).
#include "src/workloads/busy.h"
#include "src/workloads/workloads_internal.h"

namespace esd::workloads {

// ---------------------------------------------------------------------------
// ghttpd: the Log() function copies the GET-request URL into a fixed buffer
// with no bounds check (the vsprintf overflow of [16]). The overflow only
// happens for well-formed GET requests with a long URL.
// ---------------------------------------------------------------------------
Workload BuildGhttpd() {
  Workload w;
  w.name = "ghttpd";
  w.manifestation = "crash";
  w.expected_kind = vm::BugInfo::Kind::kOutOfBounds;
  w.module = ParseWorkload(BusyFunctionText("other_methods", 8, 4) + R"(
global $ghttpd_cfg = str "ghttpd_cfg"
global $reqname = str "request"
global $hits = zero 4

func @serve_log(%url: ptr) : void {
entry:
  %logbuf = alloca 16
  %i = alloca 8
  store i64 0, %i
  br loop
loop:
  %iv = load i64, %i
  %src = gep %url, %iv, 1
  %c = load i8, %src
  %isend = icmp eq %c, i8 0
  condbr %isend, done, copy
copy:
  %dst = gep %logbuf, %iv, 1
  store %c, %dst                   ; vsprintf-style copy: no bounds check
  %next = add %iv, i64 1
  store %next, %i
  br loop
done:
  ret
}

func @handle_request() : void {
entry:
  %req = alloca 64
  call @esd_input_bytes(%req, i64 40, $reqname)
  %c0 = load i8, %req
  %g = icmp eq %c0, i8 71          ; 'G'
  condbr %g, m1, reject
m1:
  %p1 = gep %req, i64 1, 1
  %c1 = load i8, %p1
  %e = icmp eq %c1, i8 69          ; 'E'
  condbr %e, m2, reject
m2:
  %p2 = gep %req, i64 2, 1
  %c2 = load i8, %p2
  %t = icmp eq %c2, i8 84          ; 'T'
  condbr %t, m3, reject
m3:
  %p3 = gep %req, i64 3, 1
  %c3 = load i8, %p3
  %sp = icmp eq %c3, i8 32         ; ' '
  condbr %sp, serve, reject
serve:
  %h = load i32, $hits
  %nh = add %h, i32 1
  store %nh, $hits
  %url = gep %req, i64 4, 1
  call @serve_log(%url)
  ret
reject:
  call @other_methods()          ; POST/HEAD/... handling: huge path space
  ret
}

func @main() : i32 {
entry:
)" + GuardChainText("ghttpd_cfg", "srvroot=/var/www", "accept", "reject") + R"(
accept:
  call @handle_request()
  ret i32 0
reject:
  call @other_methods()
  ret i32 1
}
)");
  w.trigger.inputs = {{"request[0]", 'G'}, {"request[1]", 'E'},
                      {"request[2]", 'T'}, {"request[3]", ' '}};
  // The config/argument bytes that gate the buggy mode:
  w.trigger.inputs["ghttpd_cfg[0]"] = 's';
  w.trigger.inputs["ghttpd_cfg[1]"] = 'r';
  w.trigger.inputs["ghttpd_cfg[2]"] = 'v';
  w.trigger.inputs["ghttpd_cfg[3]"] = 'r';
  w.trigger.inputs["ghttpd_cfg[4]"] = 'o';
  w.trigger.inputs["ghttpd_cfg[5]"] = 'o';
  w.trigger.inputs["ghttpd_cfg[6]"] = 't';
  w.trigger.inputs["ghttpd_cfg[7]"] = '=';
  w.trigger.inputs["ghttpd_cfg[8]"] = '/';
  w.trigger.inputs["ghttpd_cfg[9]"] = 'v';
  w.trigger.inputs["ghttpd_cfg[10]"] = 'a';
  w.trigger.inputs["ghttpd_cfg[11]"] = 'r';
  w.trigger.inputs["ghttpd_cfg[12]"] = '/';
  w.trigger.inputs["ghttpd_cfg[13]"] = 'w';
  w.trigger.inputs["ghttpd_cfg[14]"] = 'w';
  w.trigger.inputs["ghttpd_cfg[15]"] = 'w';

  // A long URL: 20 non-NUL bytes after the method overflow the 16-byte log
  // buffer.
  for (int i = 4; i < 26; ++i) {
    w.trigger.inputs["request[" + std::to_string(i) + "]"] = 'A';
  }
  return w;
}

// ---------------------------------------------------------------------------
// paste: delimiter parsing returns an interior pointer when the argument
// begins with '-'; freeing it faults in the allocator.
// ---------------------------------------------------------------------------
Workload BuildPaste() {
  Workload w;
  w.name = "paste";
  w.manifestation = "crash";
  w.expected_kind = vm::BugInfo::Kind::kInvalidFree;
  w.module = ParseWorkload(BusyFunctionText("serial_merge", 8, 4) + R"(
global $paste_cfg = str "paste_cfg"
global $argname = str "arg"
global $stats = zero 4

func @parse_delims(%arg: ptr) : ptr {
entry:
  %c = load i8, %arg
  %dash = icmp eq %c, i8 45        ; leading '-': strip it
  condbr %dash, skip, keep
skip:
  %p = gep %arg, i64 1, 1          ; interior pointer escapes
  ret %p
keep:
  ret %arg
}

func @count_delims(%d: ptr) : i32 {
entry:
  %n = alloca 4
  store i32 0, %n
  %i = alloca 8
  store i64 0, %i
  br loop
loop:
  %iv = load i64, %i
  %stop = icmp uge %iv, i64 4
  condbr %stop, done, body
body:
  %p = gep %d, %iv, 1
  %c = load i8, %p
  %is = icmp eq %c, i8 44          ; ','
  condbr %is, bump, next
bump:
  %nv = load i32, %n
  %nn = add %nv, i32 1
  store %nn, %n
  br next
next:
  %ni = add %iv, i64 1
  store %ni, %i
  br loop
done:
  %r = load i32, %n
  ret %r
}

func @main() : i32 {
entry:
)" + GuardChainText("paste_cfg", "delims=,;:|/-_=+", "accept", "reject") + R"(
accept:
  %buf = call @malloc(i64 16)
  call @esd_input_bytes(%buf, i64 8, $argname)
  %d = call @parse_delims(%buf)
  %n = call @count_delims(%d)
  store %n, $stats
  %many = icmp ugt %n, i32 3
  condbr %many, usage, dofree
usage:
  call @serial_merge()             ; the serial-merge mode: big path space
  ret i32 1
dofree:
  call @free(%d)                   ; invalid free when arg began with '-'
  ret i32 0
reject:
  call @serial_merge()
  ret i32 1
}
)");
  w.trigger.inputs = {{"arg[0]", '-'}, {"arg[1]", 'd'}};
  // The config/argument bytes that gate the buggy mode:
  w.trigger.inputs["paste_cfg[0]"] = 'd';
  w.trigger.inputs["paste_cfg[1]"] = 'e';
  w.trigger.inputs["paste_cfg[2]"] = 'l';
  w.trigger.inputs["paste_cfg[3]"] = 'i';
  w.trigger.inputs["paste_cfg[4]"] = 'm';
  w.trigger.inputs["paste_cfg[5]"] = 's';
  w.trigger.inputs["paste_cfg[6]"] = '=';
  w.trigger.inputs["paste_cfg[7]"] = ',';
  w.trigger.inputs["paste_cfg[8]"] = ';';
  w.trigger.inputs["paste_cfg[9]"] = ':';
  w.trigger.inputs["paste_cfg[10]"] = '|';
  w.trigger.inputs["paste_cfg[11]"] = '/';
  w.trigger.inputs["paste_cfg[12]"] = '-';
  w.trigger.inputs["paste_cfg[13]"] = '_';
  w.trigger.inputs["paste_cfg[14]"] = '=';
  w.trigger.inputs["paste_cfg[15]"] = '+';

  return w;
}

// ---------------------------------------------------------------------------
// mknod: the mode parser returns NULL for out-of-range modes; the caller
// dereferences the result on the error path without checking.
// ---------------------------------------------------------------------------
Workload BuildMknod() {
  Workload w;
  w.name = "mknod";
  w.manifestation = "crash";
  w.expected_kind = vm::BugInfo::Kind::kNullDeref;
  w.module = ParseWorkload(BusyFunctionText("report_usage", 8, 4) + R"(
global $mknod_cfg = str "mknod_cfg"
global $modearg = str "mode_arg"
global $devarg = str "dev_type"

func @parse_mode(%m: i32) : ptr {
entry:
  %valid = icmp ult %m, i32 512
  condbr %valid, ok, bad
ok:
  %p = call @malloc(i64 8)
  store %m, %p
  ret %p
bad:
  ret null                          ; error path: invalid mode
}

func @main() : i32 {
entry:
)" + GuardChainText("mknod_cfg", "mode=01777,dev=b", "accept", "reject") + R"(
accept:
  %m = call @esd_input_i32($modearg)
  %d = call @esd_input_i32($devarg)
  %ctx = call @parse_mode(%m)
  %isb = icmp eq %d, i32 98         ; 'b': block device needs major/minor
  condbr %isb, blockdev, chardev
blockdev:
  %mv = load i32, %ctx              ; null deref when mode was invalid
  %set = or %mv, i32 24576
  store %set, %ctx
  ret i32 0
chardev:
  %ok = icmp ne %m, i32 0
  condbr %ok, fine, usage
fine:
  ret i32 0
usage:
  call @report_usage()             ; localized usage/diagnostics machinery
  ret i32 1
reject:
  call @report_usage()
  ret i32 1
}
)");
  w.trigger.inputs = {{"mode_arg", 4095}, {"dev_type", 'b'}};
  // The config/argument bytes that gate the buggy mode:
  w.trigger.inputs["mknod_cfg[0]"] = 'm';
  w.trigger.inputs["mknod_cfg[1]"] = 'o';
  w.trigger.inputs["mknod_cfg[2]"] = 'd';
  w.trigger.inputs["mknod_cfg[3]"] = 'e';
  w.trigger.inputs["mknod_cfg[4]"] = '=';
  w.trigger.inputs["mknod_cfg[5]"] = '0';
  w.trigger.inputs["mknod_cfg[6]"] = '1';
  w.trigger.inputs["mknod_cfg[7]"] = '7';
  w.trigger.inputs["mknod_cfg[8]"] = '7';
  w.trigger.inputs["mknod_cfg[9]"] = '7';
  w.trigger.inputs["mknod_cfg[10]"] = ',';
  w.trigger.inputs["mknod_cfg[11]"] = 'd';
  w.trigger.inputs["mknod_cfg[12]"] = 'e';
  w.trigger.inputs["mknod_cfg[13]"] = 'v';
  w.trigger.inputs["mknod_cfg[14]"] = '=';
  w.trigger.inputs["mknod_cfg[15]"] = 'b';

  return w;
}

// ---------------------------------------------------------------------------
// mkdir: a NULL parent-directory context is dereferenced when reporting a
// "verbose" success for an absolute path.
// ---------------------------------------------------------------------------
Workload BuildMkdir() {
  Workload w;
  w.name = "mkdir";
  w.manifestation = "crash";
  w.expected_kind = vm::BugInfo::Kind::kNullDeref;
  w.module = ParseWorkload(BusyFunctionText("apply_selinux_context", 8, 4) + R"(
global $mkdir_cfg = str "mkdir_cfg"
global $patharg = str "path"
global $flagarg = str "verbose_flag"

func @lookup_parent(%path: ptr) : ptr {
entry:
  %c0 = load i8, %path
  %abs = icmp eq %c0, i8 47         ; '/': absolute path
  condbr %abs, absolute, relative
absolute:
  ret null                          ; error path: no parent context
relative:
  %p = call @malloc(i64 8)
  ret %p
}

func @announce(%parent: ptr) : void {
entry:
  %v = load i32, %parent            ; null deref for absolute paths
  call @print_i64(i64 1)
  ret
}

func @main() : i32 {
entry:
)" + GuardChainText("mkdir_cfg", "parents=on,mode=7", "accept", "reject") + R"(
accept:
  %path = alloca 16
  call @esd_input_bytes(%path, i64 8, $patharg)
  %v = call @esd_input_i32($flagarg)
  %parent = call @lookup_parent(%path)
  %verbose = icmp eq %v, i32 118    ; 'v'
  condbr %verbose, talk, quiet
talk:
  call @announce(%parent)
  ret i32 0
quiet:
  call @apply_selinux_context()    ; the non-verbose path does real work
  ret i32 0
reject:
  call @apply_selinux_context()
  ret i32 1
}
)");
  w.trigger.inputs = {{"path[0]", '/'}, {"verbose_flag", 'v'}};
  // The config/argument bytes that gate the buggy mode:
  w.trigger.inputs["mkdir_cfg[0]"] = 'p';
  w.trigger.inputs["mkdir_cfg[1]"] = 'a';
  w.trigger.inputs["mkdir_cfg[2]"] = 'r';
  w.trigger.inputs["mkdir_cfg[3]"] = 'e';
  w.trigger.inputs["mkdir_cfg[4]"] = 'n';
  w.trigger.inputs["mkdir_cfg[5]"] = 't';
  w.trigger.inputs["mkdir_cfg[6]"] = 's';
  w.trigger.inputs["mkdir_cfg[7]"] = '=';
  w.trigger.inputs["mkdir_cfg[8]"] = 'o';
  w.trigger.inputs["mkdir_cfg[9]"] = 'n';
  w.trigger.inputs["mkdir_cfg[10]"] = ',';
  w.trigger.inputs["mkdir_cfg[11]"] = 'm';
  w.trigger.inputs["mkdir_cfg[12]"] = 'o';
  w.trigger.inputs["mkdir_cfg[13]"] = 'd';
  w.trigger.inputs["mkdir_cfg[14]"] = 'e';
  w.trigger.inputs["mkdir_cfg[15]"] = '=';
  w.trigger.inputs["mkdir_cfg[16]"] = '7';

  return w;
}

// ---------------------------------------------------------------------------
// mkfifo: a zero umask-override argument takes the error path that loses
// the fifo context.
// ---------------------------------------------------------------------------
Workload BuildMkfifo() {
  Workload w;
  w.name = "mkfifo";
  w.manifestation = "crash";
  w.expected_kind = vm::BugInfo::Kind::kNullDeref;
  w.module = ParseWorkload(BusyFunctionText("parse_symbolic_mode", 8, 4) + R"(
global $mkfifo_cfg = str "mkfifo_cfg"
global $umaskarg = str "umask_arg"
global $nodes = zero 8

func @make_node(%mask: i32) : ptr {
entry:
  %z = icmp eq %mask, i32 0
  condbr %z, bad, good
bad:
  ret null                          ; error path: zero umask rejected
good:
  %p = call @malloc(i64 16)
  store %mask, %p
  ret %p
}

func @register_node(%n: ptr) : void {
entry:
  %v = load i32, %n                 ; null deref on the error path
  %w = zext i64, %v
  store %w, $nodes
  ret
}

func @main() : i32 {
entry:
)" + GuardChainText("mkfifo_cfg", "fifo_umask=00644", "accept", "reject") + R"(
accept:
  %mask = call @esd_input_i32($umaskarg)
  %small = icmp ult %mask, i32 8
  condbr %small, narrow, usage
narrow:
  %n = call @make_node(%mask)
  call @register_node(%n)
  ret i32 0
usage:
  call @parse_symbolic_mode()      ; "u+rwx"-style mode parsing: big space
  ret i32 1
reject:
  call @parse_symbolic_mode()
  ret i32 1
}
)");
  w.trigger.inputs = {{"umask_arg", 0}};
  // The config/argument bytes that gate the buggy mode:
  w.trigger.inputs["mkfifo_cfg[0]"] = 'f';
  w.trigger.inputs["mkfifo_cfg[1]"] = 'i';
  w.trigger.inputs["mkfifo_cfg[2]"] = 'f';
  w.trigger.inputs["mkfifo_cfg[3]"] = 'o';
  w.trigger.inputs["mkfifo_cfg[4]"] = '_';
  w.trigger.inputs["mkfifo_cfg[5]"] = 'u';
  w.trigger.inputs["mkfifo_cfg[6]"] = 'm';
  w.trigger.inputs["mkfifo_cfg[7]"] = 'a';
  w.trigger.inputs["mkfifo_cfg[8]"] = 's';
  w.trigger.inputs["mkfifo_cfg[9]"] = 'k';
  w.trigger.inputs["mkfifo_cfg[10]"] = '=';
  w.trigger.inputs["mkfifo_cfg[11]"] = '0';
  w.trigger.inputs["mkfifo_cfg[12]"] = '0';
  w.trigger.inputs["mkfifo_cfg[13]"] = '6';
  w.trigger.inputs["mkfifo_cfg[14]"] = '4';
  w.trigger.inputs["mkfifo_cfg[15]"] = '4';

  return w;
}

// ---------------------------------------------------------------------------
// tac: a file with no trailing newline and an empty first record makes
// find_last() return NULL, which the record printer dereferences.
// ---------------------------------------------------------------------------
Workload BuildTac() {
  Workload w;
  w.name = "tac";
  w.manifestation = "crash";
  w.expected_kind = vm::BugInfo::Kind::kNullDeref;
  w.module = ParseWorkload(BusyFunctionText("reverse_records", 8, 4) + R"(
global $tac_cfg = str "tac_cfg"
global $inname = str "tac_in"

func @count_newlines(%buf: ptr) : i32 {
entry:
  %n = alloca 4
  store i32 0, %n
  %i = alloca 8
  store i64 0, %i
  br loop
loop:
  %iv = load i64, %i
  %stop = icmp uge %iv, i64 6
  condbr %stop, done, body
body:
  %p = gep %buf, %iv, 1
  %c = load i8, %p
  %is = icmp eq %c, i8 10
  condbr %is, bump, next
bump:
  %nv = load i32, %n
  %nn = add %nv, i32 1
  store %nn, %n
  br next
next:
  %ni = add %iv, i64 1
  store %ni, %i
  br loop
done:
  %r = load i32, %n
  ret %r
}

func @find_last(%buf: ptr) : ptr {
entry:
  %c0 = load i8, %buf
  %empty = icmp eq %c0, i8 0
  condbr %empty, none, some
none:
  ret null                          ; empty input: no last record
some:
  ret %buf
}

func @main() : i32 {
entry:
)" + GuardChainText("tac_cfg", "separator=regex.$", "accept", "reject") + R"(
accept:
  %buf = alloca 16
  call @esd_input_bytes(%buf, i64 6, $inname)
  %n = call @count_newlines(%buf)
  %nonl = icmp eq %n, i32 0
  condbr %nonl, edge, normal
edge:
  %last = call @find_last(%buf)
  %c = load i8, %last               ; null deref: empty file, no newline
  %wide = zext i64, %c
  call @print_i64(%wide)
  ret i32 0
normal:
  call @reverse_records()          ; the regular record-reversal machinery
  ret i32 0
reject:
  call @reverse_records()
  ret i32 1
}
)");
  w.trigger.inputs = {};
  // The config/argument bytes that gate the buggy mode:
  w.trigger.inputs["tac_cfg[0]"] = 's';
  w.trigger.inputs["tac_cfg[1]"] = 'e';
  w.trigger.inputs["tac_cfg[2]"] = 'p';
  w.trigger.inputs["tac_cfg[3]"] = 'a';
  w.trigger.inputs["tac_cfg[4]"] = 'r';
  w.trigger.inputs["tac_cfg[5]"] = 'a';
  w.trigger.inputs["tac_cfg[6]"] = 't';
  w.trigger.inputs["tac_cfg[7]"] = 'o';
  w.trigger.inputs["tac_cfg[8]"] = 'r';
  w.trigger.inputs["tac_cfg[9]"] = '=';
  w.trigger.inputs["tac_cfg[10]"] = 'r';
  w.trigger.inputs["tac_cfg[11]"] = 'e';
  w.trigger.inputs["tac_cfg[12]"] = 'g';
  w.trigger.inputs["tac_cfg[13]"] = 'e';
  w.trigger.inputs["tac_cfg[14]"] = 'x';
  w.trigger.inputs["tac_cfg[15]"] = '.';
  w.trigger.inputs["tac_cfg[16]"] = '$';
  // All-zero input: no newlines and an empty record.
  return w;
}

}  // namespace esd::workloads

// ESD workloads: miniatures of the paper's evaluated bugs (Table 1, §7.1).
//
// Each workload is a program in ESD IR that preserves the *bug class* and
// the *shape of the search problem* of the corresponding real-world bug:
// the same kind of input-dependent guards in front of the bug, the same
// synchronization structure for the interleaving, and a coredump with the
// same content a user's failing run would produce. See DESIGN.md's
// substitution table.
//
//   listing1 - the paper's running example (Listing 1 deadlock)
//   sqlite   - hang: lock-order inversion between the recursive-lock master
//              mutex and the db mutex (bug #1672 shape), WAL-mode guarded
//   hawknl   - hang: nlClose()/nlShutdown() AB-BA on socket + global mutexes
//   ghttpd   - crash: GET-request log buffer overflow (vsprintf shape)
//   paste    - crash: invalid free of an interior pointer for '-' args
//   mknod    - crash: null deref on an error-handling path
//   mkdir    - crash: null deref on an error-handling path
//   mkfifo   - crash: null deref on an error-handling path
//   tac      - crash: null deref for a separator-edge-case input
//   ls1..ls4 - the four planted null derefs used for Figure 2's baseline
//   rwupgrade - hang: rwlock upgrade deadlock (two readers upgrade in place)
//   semdrop  - hang: semaphore lost-signal (trywait fast path drops the post)
//   barrier3 - hang: barrier count mismatch (3 parties configured, 2 arrive)
//   trybank  - crash: mutex_trylock TOCTOU (assert that the lock is free)
//
// Beyond the fixed suite, "fuzz:<kind>:<seed>" names (kind in
// deadlock|race|crash) materialize esdfuzz generated scenarios
// (src/fuzz/generator.h) as workloads, giving registry consumers access
// to the unbounded generated family. Race scenarios carry inputs but no
// sync-event schedule (their buggy window has no sync events), so
// CaptureDump does not apply to them; build their report with
// fuzz::MakeReport (the assert-site dump) instead.
#ifndef ESD_SRC_WORKLOADS_WORKLOADS_H_
#define ESD_SRC_WORKLOADS_WORKLOADS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/ir/module.h"
#include "src/vm/interpreter.h"
#include "src/workloads/trigger.h"

namespace esd::workloads {

struct Workload {
  std::string name;
  std::string manifestation;  // "hang" or "crash" (Table 1 column).
  std::shared_ptr<ir::Module> module;
  Trigger trigger;
  vm::BugInfo::Kind expected_kind = vm::BugInfo::Kind::kNone;
  // The field report is the assert-site coredump (AssertSiteDump), not a
  // concrete trigger run: set for the race-style and lock-free workloads
  // whose bug is detected at main's esd_assert — for spscring no concrete
  // run can manifest the bug at all (it needs a store-buffer flush
  // interleaving only symbolic search expresses).
  bool assert_site_report = false;
};

// All Table 1 workloads, in the paper's order.
std::vector<std::string> Table1Names();
// The Figure 2 additions (ls1..ls4).
std::vector<std::string> LsNames();
// The sync-surface additions: rwlock upgrade deadlock (rwupgrade),
// semaphore lost-signal (semdrop), barrier count mismatch (barrier3), and
// the mutex_trylock TOCTOU assert (trybank).
std::vector<std::string> SyncNames();
// The C11-atomics additions: the Treiber-stack ABA pop (treiber) and the
// SPSC handoff with a missing release fence (spscring). Both are detected
// by main's esd_assert and report via AssertSiteDump (assert_site_report).
std::vector<std::string> AtomicNames();

// Builds a workload by name; aborts on unknown names.
Workload MakeWorkload(const std::string& name);

// The shared externs preamble used by all textual workloads.
const char* ExternsPreamble();

// The §4.2 lost-update data race shared by tests and benches: two threads
// increment a global without a lock; the bug report is the failed
// esd_assert in main, not the racy access itself ("B is where the
// inconsistency was detected — not where the race occurred", §3.1).
std::shared_ptr<ir::Module> RacyCounterModule();

// The handmade coredump such a report embodies: a kAssertFail at the
// esd_assert call site in @main, faulting thread 0. Works for any module
// whose main calls esd_assert exactly once.
report::CoreDump AssertSiteDump(const ir::Module& module);

// Parses preamble + body, verifying the result (aborts on errors — workload
// sources are compiled into the binary and must be valid).
std::shared_ptr<ir::Module> ParseWorkload(const std::string& body);

}  // namespace esd::workloads

#endif  // ESD_SRC_WORKLOADS_WORKLOADS_H_

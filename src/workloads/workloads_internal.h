// Internal builder declarations for the workload registry.
#ifndef ESD_SRC_WORKLOADS_WORKLOADS_INTERNAL_H_
#define ESD_SRC_WORKLOADS_WORKLOADS_INTERNAL_H_

#include "src/workloads/workloads.h"

namespace esd::workloads {

Workload BuildListing1();
Workload BuildSqlite();
Workload BuildHawknl();
Workload BuildGhttpd();
Workload BuildPaste();
Workload BuildMknod();
Workload BuildMkdir();
Workload BuildMkfifo();
Workload BuildTac();
Workload BuildLs(int bug_index);  // 1..4
Workload BuildRwUpgrade();
Workload BuildSemDrop();
Workload BuildBarrier3();
Workload BuildTryBank();
Workload BuildTreiber();
Workload BuildSpscRing();

}  // namespace esd::workloads

#endif  // ESD_SRC_WORKLOADS_WORKLOADS_INTERNAL_H_

#include "src/workloads/busy.h"

#include <sstream>

namespace esd::workloads {

std::string BusyFunctionText(std::string_view name, int bytes, int ways) {
  std::ostringstream os;
  os << "global $" << name << "_in = str \"" << name << "\"\n";
  os << "func @" << name << "() : void {\n";
  os << "entry:\n";
  os << "  %buf = alloca " << bytes << "\n";
  os << "  %acc = alloca 4\n";
  os << "  store i32 1, %acc\n";
  os << "  call @esd_input_bytes(%buf, i64 " << bytes << ", $" << name << "_in)\n";
  os << "  br b0_load\n";
  for (int b = 0; b < bytes; ++b) {
    std::string done = b + 1 == bytes ? "fin" : "b" + std::to_string(b + 1) + "_load";
    os << "b" << b << "_load:\n";
    os << "  %p" << b << " = gep %buf, i64 " << b << ", 1\n";
    os << "  %c" << b << " = load i8, %p" << b << "\n";
    os << "  %w" << b << " = zext i32, %c" << b << "\n";
    os << "  br b" << b << "_t0\n";
    // (ways-1) chained range tests dispatch into `ways` handlers.
    for (int k = 0; k < ways - 1; ++k) {
      int threshold = (k + 1) * 256 / ways;
      std::string handler = "b" + std::to_string(b) + "_h" + std::to_string(k);
      std::string miss = k + 2 == ways
                             ? "b" + std::to_string(b) + "_h" + std::to_string(k + 1)
                             : "b" + std::to_string(b) + "_t" + std::to_string(k + 1);
      os << "b" << b << "_t" << k << ":\n";
      os << "  %d" << b << "_" << k << " = icmp ult %w" << b << ", i32 " << threshold
         << "\n";
      os << "  condbr %d" << b << "_" << k << ", " << handler << ", " << miss << "\n";
    }
    // Handlers: distinct mixing arithmetic, then on to the next byte.
    for (int k = 0; k < ways; ++k) {
      os << "b" << b << "_h" << k << ":\n";
      os << "  %a" << b << "_" << k << " = load i32, %acc\n";
      os << "  %m" << b << "_" << k << " = mul %a" << b << "_" << k << ", i32 "
         << (2 * k + 3) << "\n";
      os << "  %x" << b << "_" << k << " = xor %m" << b << "_" << k << ", i32 "
         << (17 * (b + 1) + k) << "\n";
      os << "  store %x" << b << "_" << k << ", %acc\n";
      os << "  br " << done << "\n";
    }
  }
  os << "fin:\n";
  os << "  %final = load i32, %acc\n";
  os << "  %wide = zext i64, %final\n";
  os << "  %sink = and %wide, i64 65535\n";
  os << "  %junk = add %sink, i64 1\n";
  os << "  ret\n";
  os << "}\n";
  return os.str();
}

std::string GuardChainText(std::string_view cfg_name, std::string_view expect,
                           std::string_view pass_label,
                           std::string_view reject_label) {
  std::ostringstream os;
  size_t n = expect.size();
  os << "  %cfg = alloca " << n << "\n";
  os << "  call @esd_input_bytes(%cfg, i64 " << n << ", $" << cfg_name << ")\n";
  os << "  br guard0\n";
  for (size_t k = 0; k < n; ++k) {
    std::string next =
        k + 1 == n ? std::string(pass_label) : "guard" + std::to_string(k + 1);
    os << "guard" << k << ":\n";
    os << "  %gp" << k << " = gep %cfg, i64 " << k << ", 1\n";
    os << "  %gc" << k << " = load i8, %gp" << k << "\n";
    os << "  %gk" << k << " = icmp eq %gc" << k << ", i8 "
       << static_cast<int>(static_cast<unsigned char>(expect[k])) << "\n";
    os << "  condbr %gk" << k << ", " << next << ", " << reject_label << "\n";
  }
  return os.str();
}

}  // namespace esd::workloads

#include "src/workloads/workloads.h"

#include <cstdio>
#include <cstdlib>

#include "src/fuzz/generator.h"
#include "src/ir/parser.h"
#include "src/ir/verifier.h"
#include "src/workloads/workloads_internal.h"

namespace esd::workloads {

const char* ExternsPreamble() {
  return R"(
extern @getchar() : i32
extern @getenv(ptr) : ptr
extern @esd_input_i32(ptr) : i32
extern @esd_input_i64(ptr) : i64
extern @esd_input_bytes(ptr, i64, ptr)
extern @malloc(i64) : ptr
extern @free(ptr)
extern @memset(ptr, i32, i64)
extern @memcpy(ptr, ptr, i64)
extern @strlen(ptr) : i64
extern @print_str(ptr)
extern @print_i64(i64)
extern @exit(i32)
extern @abort()
extern @esd_assert(i1)
extern @thread_create(ptr, ptr) : i32
extern @thread_join(i32)
extern @mutex_init(ptr)
extern @mutex_lock(ptr)
extern @mutex_unlock(ptr)
extern @cond_init(ptr)
extern @cond_wait(ptr, ptr)
extern @cond_signal(ptr)
extern @cond_broadcast(ptr)
extern @mutex_trylock(ptr) : i32
extern @rwlock_init(ptr)
extern @rwlock_rdlock(ptr)
extern @rwlock_tryrdlock(ptr) : i32
extern @rwlock_wrlock(ptr)
extern @rwlock_trywrlock(ptr) : i32
extern @rwlock_unlock(ptr)
extern @sem_init(ptr, i32)
extern @sem_wait(ptr)
extern @sem_trywait(ptr) : i32
extern @sem_post(ptr)
extern @barrier_init(ptr, i32)
extern @barrier_wait(ptr)
extern @yield()
extern @atomic_load(ptr, i32) : i32
extern @atomic_store(ptr, i32, i32)
extern @atomic_exchange(ptr, i32, i32) : i32
extern @atomic_fetch_add(ptr, i32, i32) : i32
extern @atomic_cas(ptr, i32, i32, i32) : i32
extern @atomic_fence(i32)
)";
}

std::shared_ptr<ir::Module> ParseWorkload(const std::string& body) {
  auto module = std::make_shared<ir::Module>();
  ir::ParseResult r = ir::ParseModule(std::string(ExternsPreamble()) + body,
                                      module.get());
  if (!r.ok) {
    std::fprintf(stderr, "workload parse error: %s\n", r.error.c_str());
    std::abort();
  }
  auto errors = ir::Verify(*module);
  if (!errors.empty()) {
    std::fprintf(stderr, "workload verify error: %s\n", errors[0].c_str());
    std::abort();
  }
  return module;
}

std::vector<std::string> Table1Names() {
  return {"sqlite", "hawknl", "ghttpd", "paste", "mknod", "mkdir", "mkfifo", "tac"};
}

std::vector<std::string> LsNames() { return {"ls1", "ls2", "ls3", "ls4"}; }

std::vector<std::string> SyncNames() {
  return {"rwupgrade", "semdrop", "barrier3", "trybank"};
}

std::vector<std::string> AtomicNames() { return {"treiber", "spscring"}; }

// Generated-scenario adapters: "fuzz:<kind>:<seed>" materializes an
// esdfuzz scenario as a regular workload, so every tool and test that
// consumes the registry can run against the unbounded generated family.
// Note race scenarios' triggers carry inputs but no schedule (the racy
// window has no sync events), so CaptureDump does not apply to them; use
// fuzz::MakeReport for the report instead.
static std::optional<Workload> MakeFuzzWorkload(const std::string& name) {
  if (name.rfind("fuzz:", 0) != 0) {
    return std::nullopt;
  }
  size_t colon = name.find(':', 5);
  if (colon == std::string::npos) {
    return std::nullopt;
  }
  auto kind = fuzz::ParseBugKindName(name.substr(5, colon - 5));
  if (!kind.has_value()) {
    return std::nullopt;
  }
  char* end = nullptr;
  uint64_t seed = std::strtoull(name.c_str() + colon + 1, &end, 10);
  if (end == name.c_str() + colon + 1 || *end != '\0') {
    return std::nullopt;
  }
  fuzz::GeneratorParams params;
  params.kind = *kind;
  params.seed = seed;
  fuzz::GeneratedProgram program = fuzz::Generate(params);
  Workload w;
  w.name = name;
  w.manifestation = program.expected_kind == vm::BugInfo::Kind::kDeadlock
                        ? "hang"
                        : "crash";
  w.module = program.module;
  w.trigger = program.trigger;
  w.expected_kind = program.expected_kind;
  w.assert_site_report = *kind == fuzz::BugKind::kRace ||
                         *kind == fuzz::BugKind::kTreiberAba ||
                         *kind == fuzz::BugKind::kSpscFence;
  return w;
}

Workload MakeWorkload(const std::string& name) {
  if (auto fuzzed = MakeFuzzWorkload(name); fuzzed.has_value()) {
    return *fuzzed;
  }
  if (name == "listing1") {
    return BuildListing1();
  }
  if (name == "sqlite") {
    return BuildSqlite();
  }
  if (name == "hawknl") {
    return BuildHawknl();
  }
  if (name == "ghttpd") {
    return BuildGhttpd();
  }
  if (name == "paste") {
    return BuildPaste();
  }
  if (name == "mknod") {
    return BuildMknod();
  }
  if (name == "mkdir") {
    return BuildMkdir();
  }
  if (name == "mkfifo") {
    return BuildMkfifo();
  }
  if (name == "tac") {
    return BuildTac();
  }
  if (name == "ls1") {
    return BuildLs(1);
  }
  if (name == "ls2") {
    return BuildLs(2);
  }
  if (name == "ls3") {
    return BuildLs(3);
  }
  if (name == "ls4") {
    return BuildLs(4);
  }
  if (name == "rwupgrade") {
    return BuildRwUpgrade();
  }
  if (name == "semdrop") {
    return BuildSemDrop();
  }
  if (name == "barrier3") {
    return BuildBarrier3();
  }
  if (name == "trybank") {
    return BuildTryBank();
  }
  if (name == "treiber") {
    return BuildTreiber();
  }
  if (name == "spscring") {
    return BuildSpscRing();
  }
  std::fprintf(stderr, "unknown workload '%s'\n", name.c_str());
  std::abort();
}

}  // namespace esd::workloads

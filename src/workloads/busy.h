// ESD workloads: "busy" path-space generators.
//
// Real systems surround a bug with large amounts of input-dependent code
// that has nothing to do with the failure (option parsing, error reporting,
// alternative protocol handlers). This is what makes unguided search
// hopeless in the paper's evaluation while ESD's pruning skips it outright.
// BusyFunctionText emits a function that consumes `bytes` fresh symbolic
// input bytes and dispatches `ways`-way on each — a path space of
// ways^bytes that never reaches any bug.
#ifndef ESD_SRC_WORKLOADS_BUSY_H_
#define ESD_SRC_WORKLOADS_BUSY_H_

#include <string>
#include <string_view>

namespace esd::workloads {

// Emits the textual IR for `func @<name>() : void` plus the string global
// `$<name>_in` it reads its input bytes through.
std::string BusyFunctionText(std::string_view name, int bytes, int ways);

// Emits a guard chain to paste into a function body: reads
// strlen(expect) input bytes through global `$<cfg_name>` (which the caller
// must declare with AddStringGlobal-style text) and compares them one by one
// against `expect`. Control falls through to `pass_label` only when every
// byte matches; any mismatch branches to `reject_label`. This is the shape
// of real argument/config validation: a long chain of input-dependent
// critical edges in front of the interesting code.
std::string GuardChainText(std::string_view cfg_name, std::string_view expect,
                           std::string_view pass_label,
                           std::string_view reject_label);

}  // namespace esd::workloads

#endif  // ESD_SRC_WORKLOADS_BUSY_H_

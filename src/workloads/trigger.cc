#include "src/workloads/trigger.h"

#include "src/solver/solver.h"

namespace esd::workloads {

uint64_t PrefixInputProvider::GetValue(const std::string& name, uint32_t /*width*/) {
  // Exact name first, then longest matching prefix.
  auto it = values_.find(name);
  if (it != values_.end()) {
    return it->second;
  }
  size_t best_len = 0;
  uint64_t best = 0;
  for (const auto& [prefix, v] : values_) {
    if (name.rfind(prefix, 0) == 0 && prefix.size() > best_len) {
      best_len = prefix.size();
      best = v;
    }
  }
  return best;
}

uint64_t RandomInputProvider::GetValue(const std::string& /*name*/, uint32_t width) {
  return rng_() & solver::WidthMask(width);
}

uint64_t ScriptedSyncPolicy::SyncEventCount(const vm::ExecutionState& state,
                                            uint32_t tid) {
  uint64_t n = 0;
  for (const vm::SchedEvent& ev : state.sched_trace) {
    switch (ev.kind) {
      case vm::SchedEvent::Kind::kMutexLock:
      case vm::SchedEvent::Kind::kMutexUnlock:
      case vm::SchedEvent::Kind::kCondWait:
      case vm::SchedEvent::Kind::kCondWake:
      case vm::SchedEvent::Kind::kRwRdLock:
      case vm::SchedEvent::Kind::kRwWrLock:
      case vm::SchedEvent::Kind::kRwUnlock:
      case vm::SchedEvent::Kind::kSemWait:
      case vm::SchedEvent::Kind::kSemPost:
      case vm::SchedEvent::Kind::kBarrierWait:
      case vm::SchedEvent::Kind::kTryFail:
      case vm::SchedEvent::Kind::kAtomicLoad:
      case vm::SchedEvent::Kind::kAtomicStore:
      case vm::SchedEvent::Kind::kAtomicRmw:
      case vm::SchedEvent::Kind::kAtomicFence:
        // kAtomicFlush is excluded: flushes are a side effect of buffer
        // drains, not program-order sync operations a script can count on.
        n += ev.tid == tid ? 1 : 0;
        break;
      default:
        break;
    }
  }
  return n;
}

std::optional<uint32_t> ScriptedSyncPolicy::ForceSwitch(
    const vm::ExecutionState& state) {
  // Find the last directive whose condition is satisfied; that directive's
  // target thread should be running.
  std::optional<uint32_t> pick;
  for (const SyncSwitch& sw : script_) {
    if (SyncEventCount(state, sw.after_tid) >= sw.count) {
      pick = sw.to_tid;
    } else {
      break;
    }
  }
  return pick;
}

std::optional<report::CoreDump> CaptureDump(const ir::Module& module,
                                            const Trigger& trigger,
                                            uint64_t max_instructions) {
  solver::ConstraintSolver solver;
  PrefixInputProvider inputs(trigger.inputs);
  ScriptedSyncPolicy policy(trigger.schedule);
  vm::Interpreter::Options options;
  options.input_provider = &inputs;
  options.policy = &policy;
  vm::Interpreter interpreter(&module, &solver, options);
  auto main_fn = module.FindFunction("main");
  if (!main_fn.has_value()) {
    return std::nullopt;
  }
  vm::StatePtr state = interpreter.MakeInitialState(*main_fn, 0);
  vm::SingleRunResult run = vm::RunToCompletion(interpreter, *state, max_instructions);
  if (!run.completed || !run.bug.IsBug()) {
    return std::nullopt;
  }
  return report::CaptureCoreDump(*state, run.bug);
}

std::optional<uint32_t> RandomSchedulePolicy::PickNextThread(
    const vm::ExecutionState& state) {
  std::vector<uint32_t> runnable;
  for (const vm::Thread& t : state.threads) {
    if (t.status == vm::ThreadStatus::kRunnable) {
      runnable.push_back(t.id);
    }
  }
  if (runnable.empty()) {
    return std::nullopt;
  }
  return runnable[rng_() % runnable.size()];
}

std::optional<uint32_t> RandomSchedulePolicy::ForceSwitch(
    const vm::ExecutionState& state) {
  // Preempt with small probability at every instruction, approximating an
  // OS scheduler's timer interrupts.
  if (rng_() % 97 != 0) {
    return std::nullopt;
  }
  return PickNextThread(state);
}

vm::BugInfo StressRun(const ir::Module& module, uint64_t seed,
                      uint64_t max_instructions) {
  solver::ConstraintSolver solver;
  RandomInputProvider inputs(seed * 2654435761u + 1);
  RandomSchedulePolicy policy(seed);
  vm::Interpreter::Options options;
  options.input_provider = &inputs;
  options.policy = &policy;
  vm::Interpreter interpreter(&module, &solver, options);
  auto main_fn = module.FindFunction("main");
  if (!main_fn.has_value()) {
    return {};
  }
  vm::StatePtr state = interpreter.MakeInitialState(*main_fn, 0);
  vm::SingleRunResult run = vm::RunToCompletion(interpreter, *state, max_instructions);
  return run.bug;
}

}  // namespace esd::workloads

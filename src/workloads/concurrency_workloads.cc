// Concurrency (hang) workloads: the paper's Listing 1 running example, the
// SQLite #1672-shaped recursive-lock deadlock, and the HawkNL
// nlClose/nlShutdown deadlock.
#include "src/workloads/busy.h"
#include "src/workloads/workloads_internal.h"

namespace esd::workloads {

// ---------------------------------------------------------------------------
// Listing 1: two threads run CriticalSection(); if mode==MOD_Y && idx==1,
// the first thread releases M1 and reacquires it, opening a window in which
// a second thread can take M1 and block on M2 -> circular wait.
// ---------------------------------------------------------------------------
Workload BuildListing1() {
  Workload w;
  w.name = "listing1";
  w.manifestation = "hang";
  w.expected_kind = vm::BugInfo::Kind::kDeadlock;
  w.module = ParseWorkload(R"(
global $mode = zero 4
global $idx = zero 4
global $m1 = zero 8
global $m2 = zero 8
global $env_mode = str "mode"

func @critical_section() : void {
entry:
  call @mutex_lock($m1)            ; line 8
  call @mutex_lock($m2)            ; line 9
  %mv = load i32, $mode
  %is_y = icmp eq %mv, i32 1
  %iv = load i32, $idx
  %is_one = icmp eq %iv, i32 1
  %both = and %is_y, %is_one
  condbr %both, swap, done         ; line 10
swap:
  call @mutex_unlock($m1)          ; line 11
  call @mutex_lock($m1)            ; line 12 (deadlock inner lock)
  br done
done:
  call @mutex_unlock($m2)
  call @mutex_unlock($m1)
  ret
}

func @worker(%arg: ptr) : void {
entry:
  call @critical_section()
  ret
}

func @main() : i32 {
entry:
  %c = call @getchar()             ; line 1
  %is_m = icmp eq %c, i32 109
  condbr %is_m, inc, checkenv
inc:
  %old = load i32, $idx
  %new = add %old, i32 1
  store %new, $idx                 ; line 2: idx++
  br checkenv
checkenv:
  %env = call @getenv($env_mode)   ; line 3
  %e0 = load i8, %env
  %is_y = icmp eq %e0, i8 89
  condbr %is_y, mod_y, mod_z
mod_y:
  store i32 1, $mode               ; line 4: mode = MOD_Y
  br spawn
mod_z:
  store i32 2, $mode               ; line 6: mode = MOD_Z
  br spawn
spawn:
  %t1 = call @thread_create(@worker, null)
  %t2 = call @thread_create(@worker, null)
  call @thread_join(%t1)
  call @thread_join(%t2)
  ret i32 0
}
)");
  w.trigger.inputs = {{"getchar", 109}, {"env:mode[0]", 'Y'}};
  // T1 runs through unlock(M1) (3 sync events), then T2 takes M1 and blocks
  // on M2, then T1 blocks reacquiring M1 -> circular wait.
  w.trigger.schedule = {{1, 3, 2}, {2, 1, 1}};
  return w;
}

// ---------------------------------------------------------------------------
// SQLite (bug #1672 shape): the custom recursive-lock slow path takes the
// lock-subsystem master mutex and then the database mutex; the WAL
// checkpoint path takes them in the opposite order. The inversion only
// exists when the database runs in WAL journal mode (environment-driven).
// ---------------------------------------------------------------------------
Workload BuildSqlite() {
  Workload w;
  w.name = "sqlite";
  w.manifestation = "hang";
  w.expected_kind = vm::BugInfo::Kind::kDeadlock;
  w.module = ParseWorkload(BusyFunctionText("passive_checkpoint", 8, 4) + R"(
global $sqlite_cfg = str "sqlite_cfg"
global $master = zero 8
global $db = zero 8
global $journal_mode = zero 4
global $page_count = zero 4
global $env_jm = str "journal"

func @sqlite_lock_enter() : void {
entry:
  call @mutex_lock($master)
  call @mutex_lock($db)            ; inner lock of the writer thread
  ret
}

func @sqlite_lock_leave() : void {
entry:
  call @mutex_unlock($db)
  call @mutex_unlock($master)
  ret
}

func @wal_checkpoint() : void {
entry:
  %jm = load i32, $journal_mode
  %is_wal = icmp eq %jm, i32 2
  condbr %is_wal, wal, passive
passive:
  call @passive_checkpoint()       ; rollback-journal checkpoint: big space
  br done
wal:
  call @mutex_lock($db)
  call @mutex_lock($master)        ; inner lock of the checkpointer
  %pc = load i32, $page_count
  %npc = add %pc, i32 1
  store %npc, $page_count
  call @mutex_unlock($master)
  call @mutex_unlock($db)
  br done
done:
  ret
}

func @db_writer(%arg: ptr) : void {
entry:
  call @sqlite_lock_enter()
  %pc = load i32, $page_count
  %npc = add %pc, i32 4
  store %npc, $page_count
  call @sqlite_lock_leave()
  ret
}

func @checkpointer(%arg: ptr) : void {
entry:
  call @wal_checkpoint()
  ret
}

func @main() : i32 {
entry:
)" + GuardChainText("sqlite_cfg", "journal_mode=wal", "accept", "reject") + R"(
accept:
  %env = call @getenv($env_jm)
  %b = load i8, %env
  %is_w = icmp eq %b, i8 119       ; 'w' selects WAL journal mode
  condbr %is_w, wal, rollback
wal:
  store i32 2, $journal_mode
  br run
rollback:
  store i32 1, $journal_mode
  br run
run:
  %t1 = call @thread_create(@db_writer, null)
  %t2 = call @thread_create(@checkpointer, null)
  call @thread_join(%t1)
  call @thread_join(%t2)
  ret i32 0
reject:
  call @passive_checkpoint()
  ret i32 1
}
)");
  w.trigger.inputs = {{"env:journal[0]", 'w'}};
  // The config/argument bytes that gate the buggy mode:
  w.trigger.inputs["sqlite_cfg[0]"] = 'j';
  w.trigger.inputs["sqlite_cfg[1]"] = 'o';
  w.trigger.inputs["sqlite_cfg[2]"] = 'u';
  w.trigger.inputs["sqlite_cfg[3]"] = 'r';
  w.trigger.inputs["sqlite_cfg[4]"] = 'n';
  w.trigger.inputs["sqlite_cfg[5]"] = 'a';
  w.trigger.inputs["sqlite_cfg[6]"] = 'l';
  w.trigger.inputs["sqlite_cfg[7]"] = '_';
  w.trigger.inputs["sqlite_cfg[8]"] = 'm';
  w.trigger.inputs["sqlite_cfg[9]"] = 'o';
  w.trigger.inputs["sqlite_cfg[10]"] = 'd';
  w.trigger.inputs["sqlite_cfg[11]"] = 'e';
  w.trigger.inputs["sqlite_cfg[12]"] = '=';
  w.trigger.inputs["sqlite_cfg[13]"] = 'w';
  w.trigger.inputs["sqlite_cfg[14]"] = 'a';
  w.trigger.inputs["sqlite_cfg[15]"] = 'l';

  // T1 takes master (1 event), then T2 takes db and blocks on master, then
  // T1 blocks on db.
  w.trigger.schedule = {{1, 1, 2}, {2, 1, 1}};
  return w;
}

// ---------------------------------------------------------------------------
// HawkNL 1.6b3: nlClose() locks the per-socket mutex then the library
// mutex; nlShutdown() locks the library mutex then the per-socket mutex.
// Two threads calling them on the same socket deadlock.
// ---------------------------------------------------------------------------
Workload BuildHawknl() {
  Workload w;
  w.name = "hawknl";
  w.manifestation = "hang";
  w.expected_kind = vm::BugInfo::Kind::kDeadlock;
  w.module = ParseWorkload(BusyFunctionText("report_socket_error", 8, 4) + R"(
global $hawknl_cfg = str "hawknl_cfg"
global $nl_global = zero 8
global $sock_mutex = zero 8
global $sock_open = zero 4
global $nl_ok = zero 4
global $in_init = str "nl_init"

func @nl_close() : void {
entry:
  call @mutex_lock($sock_mutex)
  %open = load i32, $sock_open
  %is = icmp eq %open, i32 1
  condbr %is, doclose, notopen
notopen:
  call @report_socket_error()      ; error formatting: big path space
  br out
doclose:
  call @mutex_lock($nl_global)     ; inner lock of the closing thread
  store i32 0, $sock_open
  call @mutex_unlock($nl_global)
  br out
out:
  call @mutex_unlock($sock_mutex)
  ret
}

func @nl_shutdown() : void {
entry:
  call @mutex_lock($nl_global)
  call @mutex_lock($sock_mutex)    ; inner lock of the shutdown thread
  store i32 0, $nl_ok
  store i32 0, $sock_open
  call @mutex_unlock($sock_mutex)
  call @mutex_unlock($nl_global)
  ret
}

func @closer(%arg: ptr) : void {
entry:
  call @nl_close()
  ret
}

func @shutdowner(%arg: ptr) : void {
entry:
  call @nl_shutdown()
  ret
}

func @main() : i32 {
entry:
)" + GuardChainText("hawknl_cfg", "NL_REUSE_ADDRESS", "accept", "reject") + R"(
accept:
  %init = call @esd_input_i32($in_init)
  %ok = icmp ne %init, i32 0
  condbr %ok, opened, fail
opened:
  store i32 1, $sock_open
  store i32 1, $nl_ok
  %t1 = call @thread_create(@closer, null)
  %t2 = call @thread_create(@shutdowner, null)
  call @thread_join(%t1)
  call @thread_join(%t2)
  ret i32 0
fail:
  ret i32 1
reject:
  call @report_socket_error()
  ret i32 1
}
)");
  w.trigger.inputs = {{"nl_init", 1}};
  // The config/argument bytes that gate the buggy mode:
  w.trigger.inputs["hawknl_cfg[0]"] = 'N';
  w.trigger.inputs["hawknl_cfg[1]"] = 'L';
  w.trigger.inputs["hawknl_cfg[2]"] = '_';
  w.trigger.inputs["hawknl_cfg[3]"] = 'R';
  w.trigger.inputs["hawknl_cfg[4]"] = 'E';
  w.trigger.inputs["hawknl_cfg[5]"] = 'U';
  w.trigger.inputs["hawknl_cfg[6]"] = 'S';
  w.trigger.inputs["hawknl_cfg[7]"] = 'E';
  w.trigger.inputs["hawknl_cfg[8]"] = '_';
  w.trigger.inputs["hawknl_cfg[9]"] = 'A';
  w.trigger.inputs["hawknl_cfg[10]"] = 'D';
  w.trigger.inputs["hawknl_cfg[11]"] = 'D';
  w.trigger.inputs["hawknl_cfg[12]"] = 'R';
  w.trigger.inputs["hawknl_cfg[13]"] = 'E';
  w.trigger.inputs["hawknl_cfg[14]"] = 'S';
  w.trigger.inputs["hawknl_cfg[15]"] = 'S';

  // T1 takes sock_mutex (1 event), T2 takes nl_global and blocks on
  // sock_mutex, T1 blocks on nl_global.
  w.trigger.schedule = {{1, 1, 2}, {2, 1, 1}};
  return w;
}

// ---------------------------------------------------------------------------
// Racy counter: the §4.2 lost-update window. Two threads load/add/store the
// same global without a lock; the interleaving that overlaps the two
// read-modify-write bodies loses one increment and fails the assert.
// ---------------------------------------------------------------------------
std::shared_ptr<ir::Module> RacyCounterModule() {
  return ParseWorkload(R"(
global $counter = zero 4
global $iters_name = str "iters"

func @bump(%arg: ptr) : void {
entry:
  %v = load i32, $counter        ; racy read
  %n = add %v, i32 1
  %pad = mul %n, i32 1
  store %n, $counter             ; racy write (lost-update window above)
  ret
}

func @main() : i32 {
entry:
  %iters = call @esd_input_i32($iters_name)
  %go = icmp eq %iters, i32 2
  condbr %go, run, skip
run:
  %t1 = call @thread_create(@bump, null)
  %t2 = call @thread_create(@bump, null)
  call @thread_join(%t1)
  call @thread_join(%t2)
  %v = load i32, $counter
  %ok = icmp eq %v, i32 2
  call @esd_assert(%ok)          ; fails iff an increment was lost
  ret i32 0
skip:
  ret i32 0
}
)");
}

report::CoreDump AssertSiteDump(const ir::Module& module) {
  report::CoreDump dump;
  dump.kind = vm::BugInfo::Kind::kAssertFail;
  uint32_t main_fn = *module.FindFunction("main");
  const ir::Function& fn = module.Func(main_fn);
  for (uint32_t b = 0; b < fn.blocks.size(); ++b) {
    for (uint32_t i = 0; i < fn.blocks[b].insts.size(); ++i) {
      const ir::Instruction& inst = fn.blocks[b].insts[i];
      if (inst.op == ir::Opcode::kCall && inst.callee != ir::kInvalidIndex &&
          module.Func(inst.callee).name == "esd_assert") {
        dump.fault_pc = ir::InstRef{main_fn, b, i};
      }
    }
  }
  dump.fault_tid = 0;
  report::ThreadDump td;
  td.tid = 0;
  td.stack = {dump.fault_pc};
  dump.threads.push_back(td);
  return dump;
}

}  // namespace esd::workloads

// ESD workloads: failure triggers.
//
// The paper's bugs were reported from the field; our stand-in is a one-off
// concrete run that manifests each workload's bug so a coredump can be
// captured. A trigger is (a) fixed input values and (b) for concurrency
// bugs, a scripted schedule expressed as "once thread X has performed N
// synchronization events, run thread Y" directives — the minimal interleaving
// knowledge a user's failing run embodies. Triggers are used only for
// coredump capture and for the stress-testing baseline; ESD itself never
// sees them.
#ifndef ESD_SRC_WORKLOADS_TRIGGER_H_
#define ESD_SRC_WORKLOADS_TRIGGER_H_

#include <cstdint>
#include <map>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "src/report/coredump.h"
#include "src/vm/engine.h"
#include "src/vm/schedule_policy.h"

namespace esd::workloads {

// Serves fixed input values by name prefix (input names carry "#<id>"
// suffixes; triggers address them by their stable prefix).
class PrefixInputProvider : public vm::InputProvider {
 public:
  explicit PrefixInputProvider(std::map<std::string, uint64_t> values)
      : values_(std::move(values)) {}
  uint64_t GetValue(const std::string& name, uint32_t width) override;

 private:
  std::map<std::string, uint64_t> values_;
};

// Serves uniformly random inputs (stress testing, §7.2).
class RandomInputProvider : public vm::InputProvider {
 public:
  explicit RandomInputProvider(uint64_t seed) : rng_(seed) {}
  uint64_t GetValue(const std::string& name, uint32_t width) override;

 private:
  std::mt19937_64 rng_;
};

// "Once thread `after_tid` has recorded `count` sync events, run `to_tid`."
struct SyncSwitch {
  uint32_t after_tid = 0;
  uint64_t count = 0;
  uint32_t to_tid = 0;
};

// Enforces a list of SyncSwitch directives in order.
class ScriptedSyncPolicy : public vm::SchedulePolicy {
 public:
  explicit ScriptedSyncPolicy(std::vector<SyncSwitch> script)
      : script_(std::move(script)) {}
  std::optional<uint32_t> ForceSwitch(const vm::ExecutionState& state) override;

 private:
  static uint64_t SyncEventCount(const vm::ExecutionState& state, uint32_t tid);
  std::vector<SyncSwitch> script_;
};

struct Trigger {
  std::map<std::string, uint64_t> inputs;
  std::vector<SyncSwitch> schedule;
};

// Runs `module` concretely under the trigger and captures the coredump of
// the failure (nullopt if the trigger fails to manifest a bug).
std::optional<report::CoreDump> CaptureDump(const ir::Module& module,
                                            const Trigger& trigger,
                                            uint64_t max_instructions = 1'000'000);

// One random-schedule, random-input stress run (§7.2 baseline). Returns the
// bug it hit, if any.
vm::BugInfo StressRun(const ir::Module& module, uint64_t seed,
                      uint64_t max_instructions = 200'000);

// A policy that inserts random thread switches at sync operations.
class RandomSchedulePolicy : public vm::SchedulePolicy {
 public:
  explicit RandomSchedulePolicy(uint64_t seed) : rng_(seed) {}
  std::optional<uint32_t> PickNextThread(const vm::ExecutionState& state) override;
  std::optional<uint32_t> ForceSwitch(const vm::ExecutionState& state) override;

 private:
  std::mt19937_64 rng_;
};

}  // namespace esd::workloads

#endif  // ESD_SRC_WORKLOADS_TRIGGER_H_

// The ls workload with four planted null-pointer dereferences (§7.2): the
// paper adds these because KC (Klee+Chess) finds them within the one-hour
// cap, giving Figure 2 a baseline that is not all timeouts. The bugs sit at
// increasing guard depths behind the flag-parsing logic.
#include "src/workloads/workloads_internal.h"

namespace esd::workloads {

namespace {

constexpr char kLsProgram[] = R"(
global $flagsname = str "flags"
global $countname = str "entry_count"
global $width = zero 4

; Bug 1 (depth 1): the -a handler loses the hidden-entries list.
func @hidden_entries() : ptr {
entry:
  ret null
}

; Bug 2 (depth 2): long+recursive listing drops the link context.
func @link_context(%depth: i32) : ptr {
entry:
  %deep = icmp ugt %depth, i32 0
  condbr %deep, has, none
has:
  %p = call @malloc(i64 8)
  ret %p
none:
  ret null
}

; Bug 3 (depth 3): time-sort + reverse + size tie-break hits an empty
; comparator table.
func @comparator_table(%key: i32) : ptr {
entry:
  %known = icmp ult %key, i32 3
  condbr %known, known_key, unknown
known_key:
  %p = call @malloc(i64 8)
  store %key, %p
  ret %p
unknown:
  ret null
}

; Bug 4 (depth 2 + data): column layout divides by a width derived from an
; empty entry list.
func @column_width(%count: i32) : ptr {
entry:
  %any = icmp ne %count, i32 0
  condbr %any, some, empty
some:
  %p = call @malloc(i64 4)
  store %count, %p
  ret %p
empty:
  ret null
}

func @main() : i32 {
entry:
  %flags = alloca 8
  call @esd_input_bytes(%flags, i64 4, $flagsname)
  %count = call @esd_input_i32($countname)
  %f0 = load i8, %flags
  %is_a = icmp eq %f0, i8 97        ; 'a'
  condbr %is_a, bug1, check2
bug1:
  %h = call @hidden_entries()
  %hv = load i32, %h                ; ls1: null deref
  call @print_i64(i64 1)
  ret %hv
check2:
  %is_l = icmp eq %f0, i8 108       ; 'l'
  condbr %is_l, l_mode, check3
l_mode:
  %p1 = gep %flags, i64 1, 1
  %f1 = load i8, %p1
  %is_r = icmp eq %f1, i8 82        ; 'R'
  condbr %is_r, bug2, check3
bug2:
  %lc = call @link_context(i32 0)
  %lv = load i32, %lc               ; ls2: null deref
  ret %lv
check3:
  %is_t = icmp eq %f0, i8 116       ; 't'
  condbr %is_t, t_mode, check4
t_mode:
  %p1b = gep %flags, i64 1, 1
  %f1b = load i8, %p1b
  %is_rev = icmp eq %f1b, i8 114    ; 'r'
  condbr %is_rev, tr_mode, check4
tr_mode:
  %p2 = gep %flags, i64 2, 1
  %f2 = load i8, %p2
  %is_s = icmp eq %f2, i8 83        ; 'S'
  condbr %is_s, bug3, check4
bug3:
  %cmp = call @comparator_table(i32 9)
  %cv = load i32, %cmp              ; ls3: null deref
  ret %cv
check4:
  %is_c = icmp eq %f0, i8 67        ; 'C'
  condbr %is_c, c_mode, plain
c_mode:
  %cw = call @column_width(%count)
  %wv = load i32, %cw               ; ls4: null deref when no entries
  store %wv, $width
  ret i32 0
plain:
  ret i32 0
}
)";

}  // namespace

Workload BuildLs(int bug_index) {
  Workload w;
  w.name = "ls" + std::to_string(bug_index);
  w.manifestation = "crash";
  w.expected_kind = vm::BugInfo::Kind::kNullDeref;
  w.module = ParseWorkload(kLsProgram);
  switch (bug_index) {
    case 1:
      w.trigger.inputs = {{"flags[0]", 'a'}};
      break;
    case 2:
      w.trigger.inputs = {{"flags[0]", 'l'}, {"flags[1]", 'R'}};
      break;
    case 3:
      w.trigger.inputs = {{"flags[0]", 't'}, {"flags[1]", 'r'}, {"flags[2]", 'S'}};
      break;
    case 4:
      w.trigger.inputs = {{"flags[0]", 'C'}, {"entry_count", 0}};
      break;
    default:
      break;
  }
  return w;
}

}  // namespace esd::workloads

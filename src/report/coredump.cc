#include "src/report/coredump.h"

#include <sstream>

namespace esd::report {
namespace {

std::string_view StatusName(vm::ThreadStatus s) {
  switch (s) {
    case vm::ThreadStatus::kRunnable:
      return "runnable";
    case vm::ThreadStatus::kBlockedMutex:
      return "blocked-mutex";
    case vm::ThreadStatus::kBlockedCond:
      return "blocked-cond";
    case vm::ThreadStatus::kBlockedJoin:
      return "blocked-join";
    case vm::ThreadStatus::kBlockedRwRead:
      return "blocked-rw-read";
    case vm::ThreadStatus::kBlockedRwWrite:
      return "blocked-rw-write";
    case vm::ThreadStatus::kBlockedSem:
      return "blocked-sem";
    case vm::ThreadStatus::kBlockedBarrier:
      return "blocked-barrier";
    case vm::ThreadStatus::kExited:
      return "exited";
  }
  return "?";
}

std::optional<vm::ThreadStatus> ParseStatus(std::string_view s) {
  if (s == "runnable") {
    return vm::ThreadStatus::kRunnable;
  }
  if (s == "blocked-mutex") {
    return vm::ThreadStatus::kBlockedMutex;
  }
  if (s == "blocked-cond") {
    return vm::ThreadStatus::kBlockedCond;
  }
  if (s == "blocked-join") {
    return vm::ThreadStatus::kBlockedJoin;
  }
  if (s == "blocked-rw-read") {
    return vm::ThreadStatus::kBlockedRwRead;
  }
  if (s == "blocked-rw-write") {
    return vm::ThreadStatus::kBlockedRwWrite;
  }
  if (s == "blocked-sem") {
    return vm::ThreadStatus::kBlockedSem;
  }
  if (s == "blocked-barrier") {
    return vm::ThreadStatus::kBlockedBarrier;
  }
  if (s == "exited") {
    return vm::ThreadStatus::kExited;
  }
  return std::nullopt;
}

std::optional<vm::BugInfo::Kind> ParseBugKind(std::string_view s) {
  for (int k = 0; k <= static_cast<int>(vm::BugInfo::Kind::kInternalError); ++k) {
    auto kind = static_cast<vm::BugInfo::Kind>(k);
    if (vm::BugKindName(kind) == s) {
      return kind;
    }
  }
  return std::nullopt;
}

// Serializes an InstRef as "func:block_label:inst".
std::string RefToText(const ir::Module& module, ir::InstRef ref) {
  return module.Describe(ref);
}

std::optional<ir::InstRef> RefFromText(const ir::Module& module,
                                       const std::string& text) {
  size_t c1 = text.find(':');
  size_t c2 = text.rfind(':');
  if (c1 == std::string::npos || c2 == c1) {
    return std::nullopt;
  }
  std::string func_name = text.substr(0, c1);
  std::string label = text.substr(c1 + 1, c2 - c1 - 1);
  uint32_t inst = static_cast<uint32_t>(std::strtoul(text.c_str() + c2 + 1, nullptr, 10));
  auto f = module.FindFunction(func_name);
  if (!f.has_value()) {
    return std::nullopt;
  }
  auto b = module.Func(*f).FindBlock(label);
  if (!b.has_value()) {
    return std::nullopt;
  }
  return ir::InstRef{*f, *b, inst};
}

}  // namespace

CoreDump CaptureCoreDump(const vm::ExecutionState& state, const vm::BugInfo& bug) {
  CoreDump dump;
  dump.kind = bug.kind;
  dump.fault_pc = bug.pc;
  dump.fault_tid = bug.tid;
  dump.fault_addr = bug.fault_addr;
  dump.message = bug.message;
  for (const vm::Thread& t : state.threads) {
    ThreadDump td;
    td.tid = t.id;
    td.status = t.status;
    // The contended object's address: the mutex for mutex waits, else the
    // rwlock/semaphore/barrier the thread is parked on.
    td.wait_mutex = t.wait_mutex != 0 ? t.wait_mutex : t.wait_sync;
    for (const vm::StackFrame& f : t.frames) {
      td.stack.push_back(ir::InstRef{f.func, f.block, f.inst});
    }
    dump.threads.push_back(std::move(td));
  }
  return dump;
}

std::string CoreDumpToText(const ir::Module& module, const CoreDump& dump) {
  std::ostringstream os;
  os << "coredump v1\n";
  os << "kind " << vm::BugKindName(dump.kind) << "\n";
  os << "fault " << RefToText(module, dump.fault_pc) << " tid " << dump.fault_tid
     << " addr " << dump.fault_addr << "\n";
  os << "message " << dump.message << "\n";
  for (const ThreadDump& t : dump.threads) {
    os << "thread " << t.tid << " " << StatusName(t.status) << " wait "
       << t.wait_mutex << "\n";
    for (const ir::InstRef& ref : t.stack) {
      os << "  frame " << RefToText(module, ref) << "\n";
    }
  }
  return os.str();
}

std::optional<CoreDump> ParseCoreDump(const ir::Module& module, const std::string& text,
                                      std::string* error) {
  auto fail = [&](const std::string& msg) -> std::optional<CoreDump> {
    if (error != nullptr) {
      *error = msg;
    }
    return std::nullopt;
  };
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line != "coredump v1") {
    return fail("missing 'coredump v1' header");
  }
  CoreDump dump;
  while (std::getline(is, line)) {
    std::istringstream ls(line);
    std::string word;
    ls >> word;
    if (word.empty()) {
      continue;
    }
    if (word == "kind") {
      std::string k;
      ls >> k;
      auto kind = ParseBugKind(k);
      if (!kind.has_value()) {
        return fail("bad bug kind '" + k + "'");
      }
      dump.kind = *kind;
    } else if (word == "fault") {
      std::string ref, tid_word, addr_word;
      uint32_t tid;
      uint64_t addr;
      ls >> ref >> tid_word >> tid >> addr_word >> addr;
      auto r = RefFromText(module, ref);
      if (!r.has_value()) {
        return fail("bad fault location '" + ref + "'");
      }
      dump.fault_pc = *r;
      dump.fault_tid = tid;
      dump.fault_addr = addr;
    } else if (word == "message") {
      std::string rest;
      std::getline(ls, rest);
      if (!rest.empty() && rest[0] == ' ') {
        rest.erase(0, 1);
      }
      dump.message = rest;
    } else if (word == "thread") {
      ThreadDump td;
      std::string status_word, wait_word;
      ls >> td.tid >> status_word >> wait_word >> td.wait_mutex;
      auto status = ParseStatus(status_word);
      if (!status.has_value()) {
        return fail("bad thread status '" + status_word + "'");
      }
      td.status = *status;
      dump.threads.push_back(std::move(td));
    } else if (word == "frame") {
      if (dump.threads.empty()) {
        return fail("frame before thread");
      }
      std::string ref;
      ls >> ref;
      auto r = RefFromText(module, ref);
      if (!r.has_value()) {
        return fail("bad frame location '" + ref + "'");
      }
      dump.threads.back().stack.push_back(*r);
    } else {
      return fail("unknown directive '" + word + "'");
    }
  }
  return dump;
}

}  // namespace esd::report

// ESD reports: coredump capture and parsing.
//
// A coredump is all ESD gets from the field (§2): the per-thread call
// stacks, the kind of failure, and the faulting values — no inputs, no
// schedule. CaptureCoreDump produces one from a failing concrete run (our
// stand-in for the end user's crash); the text form round-trips so the
// esdsynth CLI can consume dumps from disk. Stack entries serialize by
// function name and block label, like a symbolized backtrace.
#ifndef ESD_SRC_REPORT_COREDUMP_H_
#define ESD_SRC_REPORT_COREDUMP_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/ir/module.h"
#include "src/vm/interpreter.h"
#include "src/vm/state.h"

namespace esd::report {

struct ThreadDump {
  uint32_t tid = 0;
  // Call stack, outermost frame first; back() is where the thread crashed
  // or blocked.
  std::vector<ir::InstRef> stack;
  vm::ThreadStatus status = vm::ThreadStatus::kRunnable;
  uint64_t wait_mutex = 0;
};

struct CoreDump {
  vm::BugInfo::Kind kind = vm::BugInfo::Kind::kNone;
  std::vector<ThreadDump> threads;
  ir::InstRef fault_pc;     // Where the failure was detected.
  uint32_t fault_tid = 0;
  uint64_t fault_addr = 0;  // E.g., the null pointer value (condition C).
  std::string message;
};

// Builds a coredump from the state in which `bug` manifested.
CoreDump CaptureCoreDump(const vm::ExecutionState& state, const vm::BugInfo& bug);

// Text serialization (round-trips through ParseCoreDump given the module the
// dump refers to).
std::string CoreDumpToText(const ir::Module& module, const CoreDump& dump);
std::optional<CoreDump> ParseCoreDump(const ir::Module& module, const std::string& text,
                                      std::string* error);

}  // namespace esd::report

#endif  // ESD_SRC_REPORT_COREDUMP_H_

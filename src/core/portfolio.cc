#include "src/core/portfolio.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "src/core/search_setup.h"
#include "src/core/seed_schedule.h"
#include "src/replay/execution_file.h"
#include "src/solver/query_cache.h"
#include "src/vm/engine.h"
#include "src/vm/work_queue.h"

namespace esd::core {
namespace {

// Everything one worker produces; written only by its own thread.
struct WorkerOutcome {
  WorkerReport report;
  vm::Engine::Result::Status status = vm::Engine::Result::Status::kExhausted;
  bool solved = false;  // Winner only: constraints solved, file built.
  replay::ExecutionFile file;
  vm::BugInfo bug;
  std::vector<std::string> other_bugs;
  solver::ConstraintSolver::Stats solver_stats;
  uint64_t seed_best_prefix = 0;
};

}  // namespace

SynthesisResult RunPortfolio(
    const ir::Module* module, const Goal& goal,
    analysis::DistanceCalculator* distances,
    const std::vector<ProximitySearcher::SearchGoal>& search_goals,
    const SynthesisOptions& options) {
  SynthesisResult result;
  const size_t jobs = options.jobs;
  // Cooperative mode: one logical work-stealing frontier drained by all
  // workers, instead of `jobs` racing frontiers (see synthesizer.h).
  const bool coop = options.cooperative && jobs > 1;
  auto start_time = std::chrono::steady_clock::now();

  auto main_fn = module->FindFunction("main");
  if (!main_fn.has_value()) {
    result.failure_reason = "program has no main function";
    return result;
  }

  // Make every lazy table any worker can touch hot, so the shared
  // DistanceCalculator is read-only from here on (see distance.h). Charged
  // to the reported wall clock (start_time is already running) but outside
  // the engine time cap: on modules large enough for prewarming all
  // (function, goal) tables to rival the cap, prefer `jobs 1`, which fills
  // them lazily, capped, for only the pairs the search touches.
  distances->Prewarm(GoalTargets(search_goals));

  // The prototype initial state. Workers fork it copy-on-write; keeping the
  // prototype alive for the whole run pins shared MemoryObjects at
  // use_count >= 2, so no worker can mutate a shared object in place.
  solver::ConstraintSolver proto_solver;
  vm::Interpreter proto_interp(module, &proto_solver, {});
  vm::StatePtr prototype = proto_interp.MakeInitialState(*main_fn, 0);

  std::atomic<bool> cancel{false};
  std::atomic<int> winner{-1};
  std::atomic<uint64_t> shared_instructions{0};
  std::atomic<uint64_t> shared_states{0};
  // Visited-fingerprint table for state dedup: one table shared by every
  // worker (sharded mutexes; a duplicate found by any worker prunes it for
  // all) or one private table per worker (no cross-worker synchronization).
  // bench_pruning measures both configurations.
  vm::FingerprintTable shared_visited;
  std::vector<std::unique_ptr<vm::FingerprintTable>> private_visited(jobs);
  if (options.dedup && !options.dedup_shared && !coop) {
    for (auto& table : private_visited) {
      table = std::make_unique<vm::FingerprintTable>();
    }
  }
  // Cooperative frontier: per-worker deques behind one routing/stealing
  // protocol. Unused (but cheap) when racing.
  vm::SharedFrontier frontier(jobs, options.seed);
  // Solver pipeline stage 3 (shared): one query/counterexample cache shared
  // by every worker's ConstraintSolver. Workers chase the same goal through
  // the same program, so one worker's solve short-circuits the others'
  // identical component queries (--solver-cache-private opts out; each
  // solver still keeps its private caches either way). A daemon-owned
  // external cache (options.shared_solver_cache) replaces the run-local
  // one, so answers also persist across jobs.
  solver::SharedSolverCache local_solver_cache;
  solver::SharedSolverCache* shared_cache_ptr = nullptr;
  if (options.solver_cache_shared) {
    shared_cache_ptr = options.shared_solver_cache != nullptr
                           ? options.shared_solver_cache
                           : &local_solver_cache;
  }

  std::vector<WorkerOutcome> outcomes(jobs);
  auto worker_body = [&](size_t w) {
    WorkerOutcome& out = outcomes[w];
    out.report.seed = WorkerSeed(options, w);
    // Every hot-path CountEvent on this thread lands in the worker's own
    // report — no shared state, no locks (see event_counters.h).
    ScopedEventCounters counter_scope(&out.report.counters);

    solver::ConstraintSolver solver(MakeSolverOptions(options, shared_cache_ptr));
    vm::RaceDetector race_detector;
    bool want_races = false;
    std::unique_ptr<vm::SchedulePolicy> policy =
        MakeSchedulePolicy(goal, options.enable_race_detection, &race_detector,
                           &want_races, options.sleep_sets);

    vm::Interpreter::Options iopts;
    iopts.policy = policy.get();
    iopts.race_detector = want_races ? &race_detector : nullptr;
    iopts.rewrite_constraints = options.solver_rewrite;
    iopts.store_buffer = options.store_buffer;
    if (options.use_critical_edges) {
      iopts.branch_filter = MakeCriticalEdgeFilter(&goal, distances);
    }
    vm::Interpreter interpreter(module, &solver, iopts);
    if (coop) {
      // Worker w allocates state ids w+1, w+1+jobs, ... so ids stay unique
      // across workers even when states migrate between frontiers.
      interpreter.ConfigureStateIds(w + 1, jobs);
    }

    std::unique_ptr<vm::Searcher> searcher = MakeWorkerSearcher(
        w, jobs, coop, options, distances, search_goals, &out.report.strategy);
    // Incremental re-synthesis: every worker biases toward the prior
    // execution's schedule (see seed_schedule.h); frontier partitioning
    // still diversifies what each one explores beyond the seed.
    SeedScheduleSearcher* seed_searcher = nullptr;
    if (options.seed_schedule != nullptr &&
        !options.seed_schedule->strict.empty()) {
      auto wrapped = std::make_unique<SeedScheduleSearcher>(
          std::move(searcher), options.seed_schedule);
      seed_searcher = wrapped.get();
      searcher = std::move(wrapped);
    }

    vm::Engine::Options eopts;
    eopts.time_cap_seconds = options.time_cap_seconds;
    eopts.max_instructions = options.max_instructions;
    eopts.max_states = options.max_states;
    eopts.cancel = &cancel;
    eopts.shared_instructions = &shared_instructions;
    eopts.shared_max_instructions = options.max_instructions;
    eopts.shared_states = &shared_states;
    eopts.shared_max_states = options.max_states;
    if (options.dedup) {
      // Cooperative runs always share the table: ownership routing assumes
      // one table records each interleaving class exactly once.
      eopts.visited = (options.dedup_shared || coop) ? &shared_visited
                                                     : private_visited[w].get();
    }
    if (coop) {
      eopts.frontier = &frontier;
      eopts.worker = w;
      eopts.workers = jobs;
    }

    vm::Engine engine(&interpreter, searcher.get(), eopts);
    engine.set_unexpected_bug_callback(
        [&out](const vm::ExecutionState&, const vm::BugInfo& bug) {
          out.other_bugs.push_back(std::string(vm::BugKindName(bug.kind)) + ": " +
                                   bug.message);
        });
    engine.Start(prototype->Fork(interpreter.AllocStateId()));

    vm::Engine::Result run = engine.Run(
        [&goal](const vm::ExecutionState& state, const vm::BugInfo& bug) {
          return GoalMatches(goal, state, bug);
        });
    out.status = run.status;
    out.report.seconds = run.seconds;
    out.report.instructions = run.instructions;
    out.report.states_created = run.states_created;
    out.report.states_deduped = run.states_deduped;
    out.report.sleep_set_skips =
        policy != nullptr ? policy->sleep_set_skips() : 0;

    if (run.status == vm::Engine::Result::Status::kGoalFound) {
      int expected = -1;
      if (winner.compare_exchange_strong(expected, static_cast<int>(w))) {
        // This worker won the race: stop the others, then finish its
        // pipeline — solve the path constraints and build the file (§5.1).
        cancel.store(true, std::memory_order_relaxed);
        out.report.winner = true;
        out.report.status = "goal";
        solver::Model model;
        if (solver.IsSatisfiable(run.goal_state->constraints, &model)) {
          out.solved = true;
          out.bug = run.bug;
          out.file =
              replay::BuildExecutionFile(*module, *run.goal_state, run.bug, model);
        } else {
          out.report.status = "error";
        }
      } else {
        out.report.status = "goal(lost)";  // Another worker claimed first.
      }
    } else if (run.status == vm::Engine::Result::Status::kCancelled) {
      out.report.status = "cancelled";
    } else if (run.status == vm::Engine::Result::Status::kLimitReached) {
      out.report.status = "limit";
    } else {
      out.report.status = "exhausted";
    }
    out.report.solver_queries = solver.stats().queries;
    out.report.solver_shared_hits = solver.stats().shared_hits;
    out.report.sat_conflicts = solver.stats().sat_conflicts;
    out.solver_stats = solver.stats();
    if (seed_searcher != nullptr) {
      out.seed_best_prefix = seed_searcher->best_prefix();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(jobs);
  for (size_t w = 0; w < jobs; ++w) {
    threads.emplace_back(worker_body, w);
  }
  for (std::thread& t : threads) {
    t.join();
  }
  result.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                 start_time)
                       .count();

  // Merge portfolio-wide accounting.
  bool any_limit = false;
  for (size_t w = 0; w < jobs; ++w) {
    WorkerOutcome& out = outcomes[w];
    result.instructions += out.report.instructions;
    result.states_created += out.report.states_created;
    result.states_deduped += out.report.states_deduped;
    result.sleep_set_skips += out.report.sleep_set_skips;
    result.counters.Add(out.report.counters);
    result.solver.Accumulate(out.solver_stats);
    for (std::string& bug : out.other_bugs) {
      result.other_bugs.push_back(std::move(bug));
    }
    any_limit |= out.status == vm::Engine::Result::Status::kLimitReached;
    result.seed_best_prefix = std::max(result.seed_best_prefix, out.seed_best_prefix);
    result.workers.push_back(std::move(out.report));
  }
  result.solver_queries = result.solver.queries;  // Legacy scalar view.
  if (options.seed_schedule != nullptr) {
    result.seed_switches = options.seed_schedule->strict.size();
  }

  int win = winner.load();
  if (win < 0) {
    result.failure_reason = any_limit
                                ? "search budget exhausted before reaching the goal"
                                : "search space exhausted without manifesting the goal";
    return result;
  }
  result.winning_worker = win;
  WorkerOutcome& best = outcomes[static_cast<size_t>(win)];
  if (!best.solved) {
    result.failure_reason = "goal state constraints unexpectedly unsatisfiable";
    return result;
  }
  result.success = true;
  result.bug = best.bug;
  result.file = std::move(best.file);
  return result;
}

}  // namespace esd::core

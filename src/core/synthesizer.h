// ESD core: the execution synthesizer.
//
// The top of the pipeline (the esdsynth usage model of §8): given a program
// and a coredump, extract the goal, run the static analyses, configure the
// guided search and the bug-class schedule strategy, explore until a state
// manifests the reported bug, then solve the path constraints into concrete
// inputs and emit the execution file for playback.
//
// The options toggles exist for the ablation study (bench_ablation): each
// disables one of the three §3.3 focusing techniques.
#ifndef ESD_SRC_CORE_SYNTHESIZER_H_
#define ESD_SRC_CORE_SYNTHESIZER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/event_counters.h"
#include "src/core/goal.h"
#include "src/ir/passes/passes.h"
#include "src/replay/execution_file.h"
#include "src/report/coredump.h"
#include "src/solver/solver.h"

namespace esd::analysis {
class DistanceCalculator;  // distance.h
}

namespace esd::core {

struct SynthesisOptions {
  double time_cap_seconds = 180.0;
  uint64_t max_instructions = 50'000'000;
  size_t max_states = 200'000;
  uint64_t seed = 1;
  // Parallel portfolio width (§6 scalability). 1 = the classic
  // single-threaded engine, byte-identical to the pre-portfolio behavior.
  // N > 1 races N worker threads — each with its own engine, searcher
  // variant, and solver over a copy-on-write fork of the initial state —
  // until the first one manifests the goal; the instruction/state budgets
  // above are then shared portfolio-wide.
  size_t jobs = 1;
  // jobs > 1 only: cooperative exploration (the default). All workers drain
  // one logical work-stealing frontier (src/vm/work_queue.h): schedule forks
  // are routed to a home worker by fingerprint ownership hashing, idle
  // workers steal from busy peers, and the run only reports exhaustion once
  // the shared frontier drains with nothing in flight. false
  // (--race-portfolio) restores the racing portfolio: each worker explores
  // its own full frontier with a diversified strategy until the first one
  // wins. Cooperative runs always share the fingerprint table when dedup is
  // on (dedup_shared is ignored): ownership routing assumes one table
  // records each interleaving class exactly once.
  bool cooperative = true;
  // §3.3 focusing techniques (ablation switches):
  bool use_proximity = true;           // Proximity-guided state selection.
  bool use_intermediate_goals = true;  // Static anchor points (§3.2).
  bool use_critical_edges = true;      // Path abandonment / edge pruning.
  // §4.2: run the lockset detector even for non-race bugs.
  bool enable_race_detection = false;
  // TSO store-buffer modeling for C11 atomics: relaxed atomic stores sit in
  // a per-thread buffer and each possible flush point becomes a schedule
  // fork, making stale-read interleavings reachable. --no-store-buffer
  // restores sequentially consistent atomics (every store writes through).
  bool store_buffer = true;
  // ---- Redundant-interleaving pruning ----
  // State deduplication: drop schedule forks / prune states whose 64-bit
  // fingerprint (pcs + registers + memory + sync objects + constraints) was
  // already explored. Counted in SynthesisResult::states_deduped.
  bool dedup = true;
  // With jobs > 1: one fingerprint table shared by all workers (behind
  // sharded mutexes) instead of a private table per worker. Shared finds
  // more duplicates (cross-worker); private avoids all synchronization.
  // bench_pruning measures both.
  bool dedup_shared = true;
  // Sleep sets: a schedule fork's child records the preempted (thread, op)
  // pair and skips re-forking it until a dependent operation wakes it.
  bool sleep_sets = true;
  // ---- Incremental constraint-solving pipeline (see src/solver/solver.h) --
  // Stage 1: canonicalizing expression rewriter, applied both at
  // ExecutionState::AddConstraint and before bit-blasting.
  bool solver_rewrite = true;
  // Stage 2: partition each query into independent components over shared
  // variables; solve and cache per component.
  bool solver_slice = true;
  // Stage 4: assumption-based incremental SAT (persistent session keeping
  // learned clauses and bit-blasted circuits across queries).
  bool solver_incremental = true;
  // Stage 3, jobs > 1: one query/counterexample cache shared by all workers
  // (sharded mutexes) instead of per-worker caches only. Mirrors the
  // --dedup shared/private split; cross-worker hits are counted per worker.
  bool solver_cache_shared = true;
  // Stage 0: interval value-range discharge of guard constraints before
  // bit-blasting (src/solver/range.h).
  bool solver_range = true;
  // ---- Pre-synthesis IR optimization (src/ir/passes) ----
  // Copy the module, run the trace-preserving pass pipeline on the copy,
  // and search on the optimized copy. Emitted execution files stay valid
  // against the original module (coordinate stability). --no-ir-opt.
  bool ir_opt = true;
  // Surface the per-pass log in SynthesisResult::pass_log (--print-passes).
  bool print_passes = false;
  // ---- Synthesis-service hooks (src/serve, the esdserved daemon) ----
  // External shared solver cache (not owned; may be null). When set, the
  // jobs == 1 path uses it too and the portfolio uses it instead of its
  // run-local cache — which is what lets solver answers persist across
  // jobs and daemon restarts. solver_cache_shared still gates it.
  solver::SharedSolverCache* shared_solver_cache = nullptr;
  // Incremental re-synthesis: a previously synthesized execution file for
  // this bug (possibly against a pre-patch module). The search seeds from
  // its schedule — states whose switch history matches the longest prefix
  // of the seed's thread sequence are selected first (seed_schedule.h);
  // deviating states fall back to the configured strategy, so a stale seed
  // degrades to a cold search instead of misleading it.
  const replay::ExecutionFile* seed_schedule = nullptr;
  // Called right after the DistanceCalculator over the search module is
  // built, before any query: the service restores persisted tables here
  // (rejected internally on module-digest mismatch).
  std::function<void(analysis::DistanceCalculator&)> on_distances_ready;
  // Called when the search is done, before the calculator is destroyed:
  // the service exports the (now warm) tables for persistence.
  std::function<void(analysis::DistanceCalculator&)> on_distances_done;
};

// Per-worker accounting for a portfolio run (`jobs` > 1).
struct WorkerReport {
  std::string strategy;  // e.g. "proximity(seed=3,w=1e+07)" or "random-path".
  uint64_t seed = 0;
  bool winner = false;
  // "goal" (winner), "goal(lost)" (reached the goal but another worker
  // claimed the win first), "cancelled", "limit", "exhausted", or "error".
  std::string status;
  double seconds = 0.0;
  uint64_t instructions = 0;
  uint64_t states_created = 0;
  uint64_t states_deduped = 0;
  uint64_t sleep_set_skips = 0;
  uint64_t solver_queries = 0;
  // Shared-solver-cache hits answered by another worker's solve.
  uint64_t solver_shared_hits = 0;
  uint64_t sat_conflicts = 0;
  // Hot-path event counters collected by this worker's thread-local sink
  // (state forks, COW page copies, frontier traffic, ...).
  EventCounters counters;
};

struct SynthesisResult {
  bool success = false;
  replay::ExecutionFile file;
  vm::BugInfo bug;
  std::string failure_reason;
  // Bugs encountered that did not match the goal ("ESD has discovered a
  // different bug": recorded and search resumed).
  std::vector<std::string> other_bugs;

  double seconds = 0.0;
  uint64_t instructions = 0;    // Summed across workers when jobs > 1.
  uint64_t states_created = 0;  // Summed across workers when jobs > 1.
  // Pruning accounting (both summed across workers when jobs > 1): states
  // dropped as already-visited duplicates, and schedule forks skipped
  // because the target operation was sleeping.
  uint64_t states_deduped = 0;
  uint64_t sleep_set_skips = 0;
  size_t intermediate_goals = 0;
  uint64_t solver_queries = 0;  // Summed across workers when jobs > 1.
  // Full solver-pipeline accounting (cache layers, rewrites, components,
  // and the underlying SAT effort), summed across workers when jobs > 1.
  // esdsynth prints this so bench regressions are diagnosable from tool
  // output.
  solver::ConstraintSolver::Stats solver;
  // Hot-path event counters, summed across workers when jobs > 1. Printed
  // by `esdsynth --counters` and embedded in the BENCH_*.json emitters.
  EventCounters counters;

  // Pre-synthesis IR pipeline accounting: rewrite counts per category and,
  // when SynthesisOptions::print_passes is set, the per-pass log.
  ir::passes::PassStats pass_stats;
  std::string pass_log;

  // Portfolio accounting (empty / -1 for jobs == 1).
  std::vector<WorkerReport> workers;
  int winning_worker = -1;

  // Incremental re-synthesis accounting (seed_schedule runs only): switch
  // points in the seed schedule, the longest prefix of it any live state
  // replayed, and the distance tables Restore() seeded before the search.
  uint64_t seed_switches = 0;
  uint64_t seed_best_prefix = 0;
  uint64_t distance_tables_restored = 0;
};

class Synthesizer {
 public:
  Synthesizer(const ir::Module* module, SynthesisOptions options)
      : module_(module), options_(options) {}

  // Synthesizes an execution manifesting the bug in `dump`.
  SynthesisResult Synthesize(const report::CoreDump& dump);

  // Synthesizes directly from a goal (no coredump): the entry point for
  // validating static-analysis warnings, which arrive as goal sites without
  // thread identities (§8).
  SynthesisResult SynthesizeGoal(const Goal& goal);

 private:
  const ir::Module* module_;
  SynthesisOptions options_;
};

}  // namespace esd::core

#endif  // ESD_SRC_CORE_SYNTHESIZER_H_

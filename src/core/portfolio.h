// ESD core: the parallel portfolio synthesis engine.
//
// §6 credits copy-on-write state sharing for ESD's scalability; this module
// turns that into wall-clock speedup on multicore hardware. N worker
// threads race to the goal, each running a private Engine + Interpreter +
// ConstraintSolver over its own copy-on-write fork of the initial state.
// The workers differ only in search strategy — a portfolio:
//
//   worker 0       proximity search, exactly the `jobs == 1` configuration
//                  (same seed, same schedule weight);
//   workers 1..N-2 proximity search with decorrelated RNG seeds and varied
//                  schedule_weight biases (§4.1's knob);
//   worker N-1     a RandomPath baseline (§7.2), insurance against goals
//                  the distance heuristic misleads.
//
// Shared across workers, read-only: the ir::Module, the extracted Goal, the
// search-goal list, and one DistanceCalculator whose lazy caches are
// prewarmed (DistanceCalculator::Prewarm) before the first worker starts.
// Shared and mutable: one std::atomic cancellation flag (first worker to
// manifest the goal wins and stops the rest) and atomic instruction/state
// budgets so the portfolio as a whole respects SynthesisOptions limits.
//
// Memory safety of the state sharing: forks of the initial state share
// MemoryObjects through shared_ptr (atomic refcounts). A worker clones an
// object before writing whenever use_count > 1; the prototype state keeps
// one reference alive for the whole run, so an object visible to two
// workers can never appear uniquely owned, and in-place mutation only ever
// happens on worker-private objects.
#ifndef ESD_SRC_CORE_PORTFOLIO_H_
#define ESD_SRC_CORE_PORTFOLIO_H_

#include "src/analysis/distance.h"
#include "src/core/goal.h"
#include "src/core/proximity_searcher.h"
#include "src/core/synthesizer.h"

namespace esd::core {

// Races `options.jobs` workers to `goal`. `distances` must already be
// constructed for `module`; RunPortfolio prewarms it for `search_goals`.
// Returns the winning worker's result with merged portfolio-wide stats
// (instructions / states / solver queries summed, `workers` filled,
// `winning_worker` set). `result.intermediate_goals` is left untouched —
// the caller counts those while building `search_goals`.
SynthesisResult RunPortfolio(const ir::Module* module, const Goal& goal,
                             analysis::DistanceCalculator* distances,
                             const std::vector<ProximitySearcher::SearchGoal>& search_goals,
                             const SynthesisOptions& options);

}  // namespace esd::core

#endif  // ESD_SRC_CORE_PORTFOLIO_H_

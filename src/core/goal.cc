#include "src/core/goal.h"

#include <algorithm>

namespace esd::core {

Goal ExtractGoal(const ir::Module& /*module*/, const report::CoreDump& dump) {
  Goal goal;
  goal.kind = dump.kind;
  goal.description = dump.message;
  goal.fault_addr = dump.fault_addr;
  if (dump.kind == vm::BugInfo::Kind::kDeadlock) {
    // Every thread blocked on a synchronization object — a mutex, an
    // rwlock, a semaphore, a barrier, or a condition-variable wait that
    // will never be signaled (§4.1's "no thread can make any progress"
    // case) — participates; its inner lock / wait is the call at the top
    // of its reported stack. Join waits are excluded: the joined thread's
    // own blockage is the actionable goal.
    for (const report::ThreadDump& t : dump.threads) {
      if (t.status == vm::ThreadStatus::kRunnable ||
          t.status == vm::ThreadStatus::kExited ||
          t.status == vm::ThreadStatus::kBlockedJoin || t.stack.empty()) {
        continue;
      }
      ThreadGoal tg;
      tg.tid = t.tid;
      tg.target = t.stack.back();
      tg.stack = t.stack;
      tg.blocked_on_sync = t.status != vm::ThreadStatus::kBlockedMutex;
      goal.threads.push_back(std::move(tg));
    }
    return goal;
  }
  // Crash-class bugs: the faulting thread's pc is the goal block B; the
  // faulting value is condition C.
  ThreadGoal tg;
  tg.tid = dump.fault_tid;
  tg.target = dump.fault_pc;
  for (const report::ThreadDump& t : dump.threads) {
    if (t.tid == dump.fault_tid) {
      tg.stack = t.stack;
      break;
    }
  }
  goal.threads.push_back(std::move(tg));
  return goal;
}

bool GoalMatches(const Goal& goal, const vm::ExecutionState& state,
                 const vm::BugInfo& bug) {
  if (bug.kind != goal.kind) {
    return false;
  }
  if (goal.kind == vm::BugInfo::Kind::kDeadlock) {
    // Every reported deadlocked thread must be blocked at its inner-lock
    // site. (The synthesized deadlock may involve additional threads; the
    // paper requires only that the reported circular wait is reproduced.)
    // Wildcard goals (static-analysis warnings) may be filled by any thread,
    // each by a distinct one.
    std::vector<uint32_t> used;
    for (const ThreadGoal& tg : goal.threads) {
      bool found = false;
      for (const vm::Thread& t : state.threads) {
        if (tg.tid != kAnyTid && t.id != tg.tid) {
          continue;
        }
        if (std::find(used.begin(), used.end(), t.id) != used.end()) {
          continue;
        }
        if (vm::IsBlockedStatus(t.status) &&
            t.status != vm::ThreadStatus::kBlockedJoin && t.Pc() == tg.target) {
          used.push_back(t.id);
          found = true;
          break;
        }
      }
      if (!found) {
        return false;
      }
    }
    return true;
  }
  // Crash-class: same pc; for pointer faults, the same fault class
  // (null vs non-null), which is condition C extracted from the dump.
  if (goal.threads.empty() || bug.pc != goal.threads[0].target) {
    return false;
  }
  bool goal_null = vm::PointerObject(goal.fault_addr) == 0;
  bool bug_null = vm::PointerObject(bug.fault_addr) == 0;
  switch (bug.kind) {
    case vm::BugInfo::Kind::kNullDeref:
      return goal_null == bug_null;
    default:
      return true;
  }
}

}  // namespace esd::core

// Pooled small-object arena for the state-engine hot path.
//
// Fork-heavy synthesis churns three allocation shapes at enormous rates:
// ExecutionState clones, Expr nodes, and COW memory pages. All are small,
// fixed-shape, and die in bursts, which makes the general-purpose allocator
// (with its size-class search, locking, and thread cache maintenance) the
// dominant cost of fork/destroy. This arena replaces it for those types:
//
//   - blocks are rounded to 16-byte size classes up to 1 KiB; larger
//     requests fall through to ::operator new;
//   - each thread keeps a magazine of per-class free lists, so alloc/free
//     on the hot path is a pointer pop/push with no locking;
//   - magazines refill from (and overflow to) a central, mutex-protected
//     pool that carves blocks out of slabs that are never returned to the
//     OS — a leaky singleton, so frees that arrive during static
//     destruction or after a portfolio worker thread has exited remain
//     safe (they take the locked central path).
//
// Cross-thread contract (the cooperative portfolio moves states between
// worker threads, so thread B routinely frees blocks thread A allocated):
// a free always lands in the *freeing* thread's magazine — blocks carry no
// owner, and a magazine is just a cache of interchangeable same-class
// blocks. Imbalance is self-correcting: a magazine that accumulates past
// the flush threshold recirculates a batch to the central pool, where
// allocation-heavy threads refill. ArenaCentralReturns() observes that
// recirculation; tests/memory_cow_test.cc exercises the
// allocate-on-A/free-on-B pattern under ASan.
//
// ArenaAllocator<T> adapts the arena to the standard allocator interface
// so shared_ptr-managed objects can live in it via std::allocate_shared
// (the control block and payload share one pooled allocation).
#ifndef ESD_SRC_CORE_ARENA_H_
#define ESD_SRC_CORE_ARENA_H_

#include <cstddef>
#include <new>

namespace esd::core {

// Allocates a block of at least `size` bytes (16-byte aligned).
void* ArenaAlloc(std::size_t size);
// Returns a block obtained from ArenaAlloc(size). `size` must match.
void ArenaFree(void* p, std::size_t size) noexcept;

// Arena occupancy, for tests: total bytes carved into slabs on this
// process so far (monotone; the arena never shrinks).
std::size_t ArenaSlabBytes();

// Magazine-to-central return operations so far (monotone): kFlushAt
// overflows, frees on threads past magazine teardown, and magazine
// destructor flushes. Observability for cross-thread free imbalance — a
// thread that mostly frees blocks other threads allocated shows up here.
std::size_t ArenaCentralReturns();

template <typename T>
struct ArenaAllocator {
  using value_type = T;

  ArenaAllocator() noexcept = default;
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    if (n == 1) {
      return static_cast<T*>(ArenaAlloc(sizeof(T)));
    }
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    if (n == 1) {
      ArenaFree(p, sizeof(T));
      return;
    }
    ::operator delete(p);
  }

  template <typename U>
  bool operator==(const ArenaAllocator<U>&) const noexcept {
    return true;
  }
};

}  // namespace esd::core

#endif  // ESD_SRC_CORE_ARENA_H_

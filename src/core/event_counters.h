// Lightweight always-on event counters for the hot state-engine paths.
//
// Modeled on Rir's code-event-counter scheme: a plain struct of uint64_t
// fields, one thread-local installation pointer, and an inline increment
// that compiles to a single predictable branch plus an add when a sink is
// installed and to nothing observable when none is. Hot paths (COW page
// clones, fingerprint probes, frontier push/pop, solver calls) call
// CountEvent unconditionally; the portfolio installs one sink per worker
// thread and sums them into SynthesisResult::counters, so `esdsynth
// --counters` and the BENCH_*.json emitters can expose the numbers without
// any locked shared state on the fast path.
#ifndef ESD_SRC_CORE_EVENT_COUNTERS_H_
#define ESD_SRC_CORE_EVENT_COUNTERS_H_

#include <cstdint>
#include <functional>
#include <string_view>

namespace esd {

struct EventCounters {
  uint64_t state_forks = 0;         // ExecutionState::Fork calls.
  uint64_t pages_copied = 0;        // COW page materializations + clones.
  uint64_t bytes_hashed = 0;        // Byte hash contributions recomputed.
  uint64_t frontier_pushes = 0;     // Searcher/frontier insertions.
  uint64_t frontier_pops = 0;       // Searcher/frontier selections.
  uint64_t fingerprint_probes = 0;  // FingerprintTable InsertIfAbsent calls.
  uint64_t sync_fold_reuses = 0;    // Fingerprint reused the memoized sync fold.
  uint64_t sync_fold_recomputes = 0;  // Fingerprint rebuilt the sync fold.
  uint64_t solver_calls = 0;        // ConstraintSolver entry points.
  uint64_t expr_allocs = 0;         // Expr nodes constructed.
  uint64_t dataflow_iterations = 0;  // DataflowEngine block applications.
  uint64_t ir_passes_run = 0;        // IR optimization pass invocations.
  // ---- Cooperative work-stealing frontier (src/vm/work_queue.h) ----
  uint64_t steals = 0;            // States taken from another worker's deque.
  uint64_t steal_failures = 0;    // Steal attempts that found nothing.
  uint64_t states_handed_off = 0;  // Forks routed to another worker's deque.
  // Deepest state registered into a frontier (max, not a sum: Add and the
  // portfolio merge keep the maximum across workers).
  uint64_t frontier_max_depth = 0;

  void Add(const EventCounters& other);

  // Field iteration in a fixed order, for printing and serialization.
  static void ForEachField(
      const std::function<void(std::string_view name,
                               uint64_t EventCounters::*field)>& fn);
};

namespace internal {
extern thread_local EventCounters* g_event_counters;
}  // namespace internal

// Counter sink installed on the current thread, or nullptr.
inline EventCounters* InstalledEventCounters() {
  return internal::g_event_counters;
}

// Adds `n` to `field` of the installed sink; no-op when none is installed.
inline void CountEvent(uint64_t EventCounters::*field, uint64_t n = 1) {
  if (EventCounters* c = internal::g_event_counters; c != nullptr) {
    c->*field += n;
  }
}

// Raises `field` of the installed sink to at least `v` (for high-water-mark
// counters like frontier_max_depth); no-op when none is installed.
inline void CountEventMax(uint64_t EventCounters::*field, uint64_t v) {
  if (EventCounters* c = internal::g_event_counters; c != nullptr && v > c->*field) {
    c->*field = v;
  }
}

// Installs `sink` as the current thread's counter sink for the enclosing
// scope, restoring the previous sink on destruction (scopes nest).
class ScopedEventCounters {
 public:
  explicit ScopedEventCounters(EventCounters* sink)
      : previous_(internal::g_event_counters) {
    internal::g_event_counters = sink;
  }
  ~ScopedEventCounters() { internal::g_event_counters = previous_; }
  ScopedEventCounters(const ScopedEventCounters&) = delete;
  ScopedEventCounters& operator=(const ScopedEventCounters&) = delete;

 private:
  EventCounters* previous_;
};

}  // namespace esd

#endif  // ESD_SRC_CORE_EVENT_COUNTERS_H_

// ESD core: shared search-configuration helpers.
//
// The pieces of the synthesis pipeline that are identical for the
// single-threaded engine (synthesizer.cc) and every parallel portfolio
// worker (portfolio.cc): deriving the search-goal list from the extracted
// goal, the critical-edge branch filter (§3.3 path abandonment), and the
// per-bug-class schedule policy (§4). Keeping them in one place guarantees
// `--jobs 1` and each portfolio worker explore under the same rules.
#ifndef ESD_SRC_CORE_SEARCH_SETUP_H_
#define ESD_SRC_CORE_SEARCH_SETUP_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/analysis/distance.h"
#include "src/core/goal.h"
#include "src/core/proximity_searcher.h"
#include "src/core/synthesizer.h"
#include "src/vm/interpreter.h"
#include "src/vm/race_detector.h"
#include "src/vm/schedule_policy.h"
#include "src/vm/searcher.h"

namespace esd::core {

// Portfolio worker `worker`'s RNG seed: worker 0 keeps the user's seed (so
// its configuration matches `jobs == 1`); the rest are decorrelated.
uint64_t WorkerSeed(const SynthesisOptions& options, size_t worker);

// Builds portfolio worker `worker`'s searcher and writes a description of it
// to `*strategy`. Racing portfolios (cooperative == false) diversify: the
// last slot runs random-path as insurance, the rest sweep schedule weights
// with decorrelated seeds. Cooperative portfolios keep every worker on the
// `jobs == 1` configuration — coverage diversity comes from frontier
// partitioning, not strategy — with per-worker seeds so stolen states are
// re-scored deterministically on arrival.
std::unique_ptr<vm::Searcher> MakeWorkerSearcher(
    size_t worker, size_t jobs, bool cooperative, const SynthesisOptions& options,
    analysis::DistanceCalculator* distances,
    const std::vector<ProximitySearcher::SearchGoal>& search_goals,
    std::string* strategy);

// Maps the SynthesisOptions solver toggles onto solver::SolverOptions.
// `shared_cache` (may be null) is the portfolio-wide cache for jobs > 1.
solver::SolverOptions MakeSolverOptions(const SynthesisOptions& options,
                                        solver::SharedSolverCache* shared_cache);

// Builds the per-thread final goals plus (optionally) the §3.2 intermediate
// goals derived by static analysis. `intermediate_count`, when non-null,
// receives the number of intermediate goals appended.
std::vector<ProximitySearcher::SearchGoal> BuildSearchGoals(
    const ir::Module& module, analysis::DistanceCalculator& distances,
    const Goal& goal, bool use_intermediate_goals, size_t* intermediate_count);

// The distance targets a search over `search_goals` can query: used to
// prewarm the shared DistanceCalculator before portfolio workers start.
std::vector<ir::InstRef> GoalTargets(
    const std::vector<ProximitySearcher::SearchGoal>& search_goals);

// The §3.3 critical-edge branch filter: returns false for branch edges from
// which the current thread's goal is unreachable. `goal` and `distances`
// must outlive the returned function. Thread-safe once `distances` has been
// prewarmed for every goal target.
std::function<bool(const vm::ExecutionState&, ir::InstRef, uint32_t)>
MakeCriticalEdgeFilter(const Goal* goal, analysis::DistanceCalculator* distances);

// The §4 schedule strategy for the goal's bug class (deadlock or race), or
// null when no strategy applies. `detector` must outlive the policy.
// `want_races` receives whether the lockset detector should run.
// `sleep_sets` enables sleep-set pruning of redundant schedule forks.
std::unique_ptr<vm::SchedulePolicy> MakeSchedulePolicy(const Goal& goal,
                                                       bool enable_race_detection,
                                                       vm::RaceDetector* detector,
                                                       bool* want_races,
                                                       bool sleep_sets = false);

}  // namespace esd::core

#endif  // ESD_SRC_CORE_SEARCH_SETUP_H_

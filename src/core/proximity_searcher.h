// ESD core: the proximity-guided searcher (§3.4).
//
// Maintains n "virtual" priority queues, one per goal: the intermediate
// goals inferred by static analysis plus the final goal of each reported
// thread. At every step a queue is chosen uniformly at random and the state
// with the smallest estimated distance to that queue's goal is executed
// next. Priorities are a weighted average of the path-distance estimate
// (Algorithm 1) and the schedule distance, heavily biased toward schedule
// distance so near-deadlock states win (§4.1).
//
// Queues are lazy heaps: entries carry a version stamp and are dropped at
// pop time when stale, which keeps per-step cost logarithmic even though
// the stepped state's distances change every instruction (§6.2).
#ifndef ESD_SRC_CORE_PROXIMITY_SEARCHER_H_
#define ESD_SRC_CORE_PROXIMITY_SEARCHER_H_

#include <cstdint>
#include <memory>
#include <queue>
#include <random>
#include <unordered_map>
#include <vector>

#include "src/analysis/distance.h"
#include "src/core/goal.h"
#include "src/vm/searcher.h"

namespace esd::core {

class ProximitySearcher : public vm::Searcher {
 public:
  struct Options {
    // Weight multiplying the schedule distance (heavy bias, §4.1).
    double schedule_weight = 1e7;
    uint64_t seed = 1;
  };

  // Path distances saturate here, strictly below schedule_weight, so the
  // schedule-distance bias always dominates.
  static constexpr uint64_t kPathDistanceCap = 1'000'000;

  // Subtracted from the priority when *every* goal thread is blocked at
  // its target (the deadlock has fully manifested; only the remaining
  // threads need driving to blockage). Strictly larger than the
  // path-distance cap so such states always outrank the exploration
  // frontier — without this they tie with it and starve (a frontier of
  // tens of thousands of equal-priority states advances each lineage once
  // per frontier-size selections). Kept below schedule_weight so the §4.1
  // schedule-distance bias still dominates.
  static constexpr double kBlockedGoalBonus = 2'000'000.0;

  // Priorities below this are in a "drive to completion" stratum (some
  // goal thread blocked at its target, or schedule-near): see the Entry
  // comparator. Matches the default schedule weight — states on the plain
  // far frontier sit at schedule_weight + path and stay above it. Only tie
  // *order* depends on this constant, never correctness, so a
  // non-default Options::schedule_weight merely shifts which ties are
  // driven.
  static constexpr double kDriveTieThreshold = 1e7;

  // `goals`: the final per-thread goals (goal.threads) plus any intermediate
  // goals; each entry is (target instruction, thread id or kAnyThread).
  struct SearchGoal {
    ir::InstRef target;
    uint32_t tid = kAnyThread;  // Distance uses this thread's stack.
    static constexpr uint32_t kAnyThread = 0xffffffffu;
  };

  ProximitySearcher(analysis::DistanceCalculator* distances,
                    std::vector<SearchGoal> goals, Options options);

  void Add(vm::StatePtr state) override;
  void Remove(const vm::StatePtr& state) override;
  vm::StatePtr Select() override;
  void Update(const vm::StatePtr& state) override;
  bool Empty() const override { return live_.empty(); }
  size_t Size() const override { return live_.size(); }

 private:
  struct Entry {
    double priority;
    uint64_t stamp;
    std::weak_ptr<vm::ExecutionState> state;
    // Tie policy. Below kDriveTieThreshold — the schedule-near and
    // blocked-goal strata, where part of the reported deadlock has already
    // manifested — ties break LIFO (largest stamp pops first): the engine
    // restamps a state after every step, so the state just stepped keeps
    // running and the almost-manifest lineage drives to completion instead
    // of round-robining over the whole tied stratum. At or above the
    // threshold (the plain exploration frontier) ties stay unordered:
    // heap-mixed exploration is what escapes the self-replicating
    // schedule-fork families that pruning-off ablations produce, where a
    // strict LIFO would dive into ever-newer clones forever. The flag is a
    // pure function of the priority, so the ordering remains a strict weak
    // order.
    bool operator>(const Entry& other) const {
      if (priority != other.priority) {
        return priority > other.priority;
      }
      return priority < kDriveTieThreshold && stamp < other.stamp;
    }
  };
  using Heap = std::priority_queue<Entry, std::vector<Entry>, std::greater<>>;

  double Priority(const vm::ExecutionState& state, const SearchGoal& goal,
                  double bonus);
  // The kBlockedGoalBonus term: goal-independent, hoisted out of the
  // per-goal Priority loop.
  double BlockedGoalBonus(const vm::ExecutionState& state) const;
  void PushAll(const vm::StatePtr& state);
  // Fills stack_scratch_ with the thread's call-stack InstRefs (outermost
  // first); reused across calls so the per-step Priority loop is
  // allocation-free.
  const std::vector<ir::InstRef>& StackOf(const vm::Thread& thread);

  analysis::DistanceCalculator* distances_;
  std::vector<SearchGoal> goals_;
  Options options_;
  std::vector<Heap> queues_;  // One per goal.
  std::vector<ir::InstRef> stack_scratch_;
  // Hashed by state pointer: probed on every push (stamp read) and every
  // pop (stamp validation), so lookup cost matters more than order; the
  // only full iteration is the rare all-stale rebuild in Select.
  std::unordered_map<const vm::ExecutionState*, std::pair<vm::StatePtr, uint64_t>>
      live_;
  std::mt19937_64 rng_;
  uint64_t next_stamp_ = 1;
};

}  // namespace esd::core

#endif  // ESD_SRC_CORE_PROXIMITY_SEARCHER_H_

#include "src/core/synthesizer.h"

#include "src/analysis/distance.h"
#include "src/core/portfolio.h"
#include "src/core/proximity_searcher.h"
#include "src/core/search_setup.h"
#include "src/core/seed_schedule.h"
#include "src/vm/engine.h"

namespace esd::core {

SynthesisResult Synthesizer::Synthesize(const report::CoreDump& dump) {
  // 1. Goal extraction (§3.1).
  Goal goal = ExtractGoal(*module_, dump);
  return SynthesizeGoal(goal);
}

SynthesisResult Synthesizer::SynthesizeGoal(const Goal& goal) {
  SynthesisResult result;
  if (goal.threads.empty()) {
    result.failure_reason = "no actionable thread goals";
    return result;
  }

  // 1b. Pre-synthesis IR optimization: copy the module, run the
  // trace-preserving pass pipeline on the copy, and search on it. Goal
  // coordinates need no remapping (coordinate stability) and the emitted
  // execution file replays against the original module. A verifier or
  // coordinate-check failure falls back to the unoptimized module.
  std::optional<ir::Module> optimized;
  const ir::Module* search_module = module_;
  // Setup-phase event sink: the pass pipeline and the static analyses run
  // before the per-worker sinks exist, so their events (ir_passes_run,
  // the Prewarm share of dataflow_iterations) are captured here and merged
  // into result.counters on both the portfolio and single-worker paths.
  EventCounters setup_counters;
  std::optional<ScopedEventCounters> setup_scope;
  setup_scope.emplace(&setup_counters);
  if (options_.ir_opt) {
    ir::passes::ProtectedSites prot;
    for (const ThreadGoal& tg : goal.threads) {
      if (tg.target.IsValid()) {
        prot.funcs.insert(tg.target.func);
        prot.sites.insert(tg.target);
      }
      for (const ir::InstRef& frame : tg.stack) {
        if (frame.IsValid()) {
          prot.funcs.insert(frame.func);
          prot.sites.insert(frame);
        }
      }
    }
    optimized = *module_;
    ir::passes::PassManager pm;
    if (pm.Run(&*optimized, prot, &result.pass_stats)) {
      search_module = &*optimized;
    } else {
      optimized.reset();  // Pipeline aborted: search the original.
    }
    if (options_.print_passes) {
      result.pass_log = pm.log();
    }
  }

  // 2. Static phase (§3.2): distance tables, critical edges, intermediate
  // goals. Computed once over the search module; read-only during the
  // search (shared by every worker when jobs > 1).
  analysis::DistanceCalculator distances(search_module);
  // Service hooks: restore persisted tables while the caches are still cold
  // (a digest mismatch restores nothing), and export them — on every exit
  // path — once the search is over.
  if (options_.on_distances_ready) {
    options_.on_distances_ready(distances);
  }
  result.distance_tables_restored = distances.restored_tables();
  struct DistancesDoneGuard {
    const SynthesisOptions* options;
    analysis::DistanceCalculator* distances;
    ~DistancesDoneGuard() {
      if (options->on_distances_done) {
        options->on_distances_done(*distances);
      }
    }
  } distances_done{&options_, &distances};
  std::vector<ProximitySearcher::SearchGoal> search_goals =
      BuildSearchGoals(*search_module, distances, goal,
                       options_.use_intermediate_goals,
                       &result.intermediate_goals);

  // Parallel portfolio (jobs > 1): N engines race under a shared budget;
  // see portfolio.h. The jobs == 1 path below stays byte-identical to the
  // classic single-threaded engine.
  setup_scope.reset();
  if (options_.jobs > 1) {
    size_t intermediate_goals = result.intermediate_goals;
    uint64_t tables_restored = result.distance_tables_restored;
    ir::passes::PassStats pass_stats = result.pass_stats;
    std::string pass_log = std::move(result.pass_log);
    result = RunPortfolio(search_module, goal, &distances, search_goals, options_);
    result.intermediate_goals = intermediate_goals;
    result.distance_tables_restored = tables_restored;
    result.pass_stats = pass_stats;
    result.pass_log = std::move(pass_log);
    result.counters.Add(setup_counters);
    return result;
  }

  result.counters.Add(setup_counters);
  // Hot-path event counters for the single-worker run: one sink on this
  // thread for the rest of the pipeline (jobs > 1 installs one per worker
  // inside the portfolio instead).
  ScopedEventCounters counter_scope(&result.counters);

  // 3. Search strategy (§3.3): proximity-guided selection over the virtual
  // queues, or plain BFS when the heuristic is disabled (ablation).
  std::unique_ptr<vm::Searcher> searcher;
  if (options_.use_proximity) {
    ProximitySearcher::Options popts;
    popts.seed = options_.seed;
    searcher = std::make_unique<ProximitySearcher>(&distances, search_goals, popts);
  } else {
    searcher = std::make_unique<vm::BfsSearcher>();
  }
  // Incremental re-synthesis: bias selection toward states replaying the
  // prior execution's schedule (see seed_schedule.h).
  SeedScheduleSearcher* seed_searcher = nullptr;
  if (options_.seed_schedule != nullptr &&
      !options_.seed_schedule->strict.empty()) {
    auto wrapped = std::make_unique<SeedScheduleSearcher>(
        std::move(searcher), options_.seed_schedule);
    seed_searcher = wrapped.get();
    searcher = std::move(wrapped);
    result.seed_switches = seed_searcher->seed_switches();
  }

  // 4. Schedule strategy by bug class (§4), with sleep-set pruning of
  // redundant schedule forks when enabled.
  vm::RaceDetector race_detector;
  bool want_races = false;
  std::unique_ptr<vm::SchedulePolicy> policy =
      MakeSchedulePolicy(goal, options_.enable_race_detection, &race_detector,
                         &want_races, options_.sleep_sets);

  // 5. Interpreter with critical-edge pruning: abandon branch edges from
  // which the current thread's goal is unreachable. The solver runs the
  // incremental pipeline per the solver_* toggles; with one worker the
  // only shared cache worth attaching is an external (cross-run) one.
  solver::ConstraintSolver solver(MakeSolverOptions(
      options_,
      options_.solver_cache_shared ? options_.shared_solver_cache : nullptr));
  vm::Interpreter::Options iopts;
  iopts.policy = policy.get();
  iopts.race_detector = want_races ? &race_detector : nullptr;
  iopts.rewrite_constraints = options_.solver_rewrite;
  iopts.store_buffer = options_.store_buffer;
  if (options_.use_critical_edges) {
    iopts.branch_filter = MakeCriticalEdgeFilter(&goal, &distances);
  }
  vm::Interpreter interpreter(search_module, &solver, iopts);

  auto main_fn = search_module->FindFunction("main");
  if (!main_fn.has_value()) {
    result.failure_reason = "program has no main function";
    return result;
  }

  vm::FingerprintTable visited;
  vm::Engine::Options eopts;
  eopts.time_cap_seconds = options_.time_cap_seconds;
  eopts.max_instructions = options_.max_instructions;
  eopts.max_states = options_.max_states;
  if (options_.dedup) {
    eopts.visited = &visited;
  }
  vm::Engine engine(&interpreter, searcher.get(), eopts);
  engine.set_unexpected_bug_callback(
      [&result](const vm::ExecutionState&, const vm::BugInfo& bug) {
        result.other_bugs.push_back(std::string(vm::BugKindName(bug.kind)) + ": " +
                                    bug.message);
      });
  engine.Start(interpreter.MakeInitialState(*main_fn, interpreter.AllocStateId()));

  // 6. Explore until the goal manifests.
  vm::Engine::Result run = engine.Run(
      [&goal](const vm::ExecutionState& state, const vm::BugInfo& bug) {
        return GoalMatches(goal, state, bug);
      });
  result.seconds = run.seconds;
  result.instructions = run.instructions;
  result.states_created = run.states_created;
  result.states_deduped = run.states_deduped;
  result.sleep_set_skips = policy != nullptr ? policy->sleep_set_skips() : 0;
  result.solver = solver.stats();
  result.solver_queries = result.solver.queries;  // Legacy scalar view.
  if (seed_searcher != nullptr) {
    result.seed_best_prefix = seed_searcher->best_prefix();
  }

  if (run.status != vm::Engine::Result::Status::kGoalFound) {
    result.failure_reason =
        run.status == vm::Engine::Result::Status::kLimitReached
            ? "search budget exhausted before reaching the goal"
            : "search space exhausted without manifesting the goal";
    return result;
  }

  // 7. Solve the path constraints into concrete inputs (§5.1) and emit the
  // execution file.
  solver::Model model;
  bool solved = solver.IsSatisfiable(run.goal_state->constraints, &model);
  result.solver = solver.stats();  // Include the final model solve.
  result.solver_queries = result.solver.queries;
  if (!solved) {
    result.failure_reason = "goal state constraints unexpectedly unsatisfiable";
    return result;
  }
  result.success = true;
  result.bug = run.bug;
  // Coordinate stability makes the file valid against the original module
  // as well as the optimized copy it was searched on.
  result.file =
      replay::BuildExecutionFile(*search_module, *run.goal_state, run.bug, model);
  return result;
}

}  // namespace esd::core

#include "src/core/synthesizer.h"

#include "src/analysis/distance.h"
#include "src/analysis/reaching_defs.h"
#include "src/core/deadlock_strategy.h"
#include "src/core/proximity_searcher.h"
#include "src/core/race_strategy.h"
#include "src/vm/engine.h"

namespace esd::core {

SynthesisResult Synthesizer::Synthesize(const report::CoreDump& dump) {
  // 1. Goal extraction (§3.1).
  Goal goal = ExtractGoal(*module_, dump);
  return SynthesizeGoal(goal);
}

SynthesisResult Synthesizer::SynthesizeGoal(const Goal& goal) {
  SynthesisResult result;
  if (goal.threads.empty()) {
    result.failure_reason = "no actionable thread goals";
    return result;
  }

  // 2. Static phase (§3.2): distance tables, critical edges, intermediate
  // goals.
  analysis::DistanceCalculator distances(module_);
  std::vector<ProximitySearcher::SearchGoal> search_goals;
  for (const ThreadGoal& tg : goal.threads) {
    search_goals.push_back(ProximitySearcher::SearchGoal{tg.target, tg.tid});
  }
  if (options_.use_intermediate_goals) {
    for (const ThreadGoal& tg : goal.threads) {
      auto sets = analysis::DeriveIntermediateGoals(*module_, distances, tg.target);
      for (const analysis::IntermediateGoalSet& set : sets) {
        // Each disjunctive set contributes one virtual queue per candidate
        // store; reaching any of them is progress toward the critical edge.
        for (const ir::InstRef& store : set.stores) {
          search_goals.push_back(ProximitySearcher::SearchGoal{
              store, ProximitySearcher::SearchGoal::kAnyThread});
          ++result.intermediate_goals;
        }
      }
    }
  }

  // 3. Search strategy (§3.3): proximity-guided selection over the virtual
  // queues, or plain BFS when the heuristic is disabled (ablation).
  std::unique_ptr<vm::Searcher> searcher;
  if (options_.use_proximity) {
    ProximitySearcher::Options popts;
    popts.seed = options_.seed;
    searcher = std::make_unique<ProximitySearcher>(&distances, search_goals, popts);
  } else {
    searcher = std::make_unique<vm::BfsSearcher>();
  }

  // 4. Schedule strategy by bug class (§4).
  vm::RaceDetector race_detector;
  std::unique_ptr<vm::SchedulePolicy> policy;
  bool want_races = options_.enable_race_detection ||
                    goal.kind == vm::BugInfo::Kind::kAssertFail;
  if (goal.kind == vm::BugInfo::Kind::kDeadlock) {
    policy = std::make_unique<DeadlockStrategy>(goal);
  } else if (want_races) {
    policy = std::make_unique<RaceStrategy>(goal, &race_detector);
  }

  // 5. Interpreter with critical-edge pruning: abandon branch edges from
  // which the current thread's goal is unreachable.
  solver::ConstraintSolver solver;
  vm::Interpreter::Options iopts;
  iopts.policy = policy.get();
  iopts.race_detector = want_races ? &race_detector : nullptr;
  if (options_.use_critical_edges) {
    const Goal* goal_ptr = &goal;
    analysis::DistanceCalculator* dc = &distances;
    iopts.branch_filter = [goal_ptr, dc](const vm::ExecutionState& state,
                                         ir::InstRef site, uint32_t target) {
      std::vector<ir::InstRef> stack;
      for (const vm::StackFrame& f : state.CurrentThread().frames) {
        stack.push_back(ir::InstRef{f.func, f.block, f.inst});
      }
      const ThreadGoal* tg = goal_ptr->ForThread(state.current_tid);
      if (tg != nullptr) {
        return dc->ThreadCanReachGoal(stack, target, tg->target);
      }
      if (goal_ptr->HasWildcardThreads()) {
        // Any thread may fill a wildcard role: the edge is useful if it can
        // still reach any wildcard target (or the thread can exit, letting
        // others fill the roles).
        for (const ThreadGoal& wildcard : goal_ptr->threads) {
          if (wildcard.tid == kAnyTid &&
              dc->ThreadCanReachGoal(stack, target, wildcard.target)) {
            return true;
          }
        }
        // Still fine if this thread merely finishes while others deadlock.
        return true;
      }
      // A thread outside the goal set: its own path matters only while some
      // goal thread has not been created yet — it must still be able to
      // reach the thread_create that spawns it (EntryTargets makes spawn
      // sites count as entries into the spawned function).
      for (const ThreadGoal& goal_thread : goal_ptr->threads) {
        bool exists = false;
        for (const vm::Thread& t : state.threads) {
          if (t.id == goal_thread.tid) {
            exists = true;
            break;
          }
        }
        if (!exists) {
          return dc->ThreadCanReachGoal(stack, target, goal_thread.target);
        }
      }
      return true;  // All goal threads already exist.
    };
  }
  vm::Interpreter interpreter(module_, &solver, iopts);

  auto main_fn = module_->FindFunction("main");
  if (!main_fn.has_value()) {
    result.failure_reason = "program has no main function";
    return result;
  }

  vm::Engine::Options eopts;
  eopts.time_cap_seconds = options_.time_cap_seconds;
  eopts.max_instructions = options_.max_instructions;
  eopts.max_states = options_.max_states;
  vm::Engine engine(&interpreter, searcher.get(), eopts);
  engine.set_unexpected_bug_callback(
      [&result](const vm::ExecutionState&, const vm::BugInfo& bug) {
        result.other_bugs.push_back(std::string(vm::BugKindName(bug.kind)) + ": " +
                                    bug.message);
      });
  engine.Start(interpreter.MakeInitialState(*main_fn, interpreter.AllocStateId()));

  // 6. Explore until the goal manifests.
  vm::Engine::Result run = engine.Run(
      [&goal](const vm::ExecutionState& state, const vm::BugInfo& bug) {
        return GoalMatches(goal, state, bug);
      });
  result.seconds = run.seconds;
  result.instructions = run.instructions;
  result.states_created = run.states_created;
  result.solver_queries = solver.stats().queries;

  if (run.status != vm::Engine::Result::Status::kGoalFound) {
    result.failure_reason =
        run.status == vm::Engine::Result::Status::kLimitReached
            ? "search budget exhausted before reaching the goal"
            : "search space exhausted without manifesting the goal";
    return result;
  }

  // 7. Solve the path constraints into concrete inputs (§5.1) and emit the
  // execution file.
  solver::Model model;
  if (!solver.IsSatisfiable(run.goal_state->constraints, &model)) {
    result.failure_reason = "goal state constraints unexpectedly unsatisfiable";
    return result;
  }
  result.success = true;
  result.bug = run.bug;
  result.file = replay::BuildExecutionFile(*module_, *run.goal_state, run.bug, model);
  return result;
}

}  // namespace esd::core

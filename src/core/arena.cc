#include "src/core/arena.h"

#include <atomic>
#include <cstdint>
#include <mutex>

namespace esd::core {
namespace {

constexpr std::size_t kGranule = 16;
constexpr std::size_t kMaxSmall = 1024;
constexpr std::size_t kNumClasses = kMaxSmall / kGranule;
constexpr std::size_t kSlabBytes = 16 * 1024;
// Magazine tuning: refill grabs kBatch blocks; a magazine that grows past
// kFlushAt returns kBatch blocks to the central pool.
constexpr std::size_t kBatch = 256;
constexpr std::size_t kFlushAt = 1024;

struct Node {
  Node* next;
};

constexpr std::size_t ClassIndex(std::size_t size) {
  return (size + kGranule - 1) / kGranule - 1;
}
constexpr std::size_t ClassSize(std::size_t cls) { return (cls + 1) * kGranule; }

std::atomic<std::size_t> g_slab_bytes{0};
// Magazine-to-central return operations (kFlushAt overflows, dead-thread
// frees, magazine teardown): the paths a cross-thread free pattern drives.
std::atomic<std::size_t> g_central_returns{0};

// Central pool: per-class free lists fed by slab carving. Leaky by design —
// slabs are never freed, so blocks stay valid for the process lifetime and
// the pool itself (a function-local `new`) survives static destruction.
class CentralPool {
 public:
  static CentralPool& Get() {
    static CentralPool* pool = new CentralPool();
    return *pool;
  }

  // Pops up to `want` blocks of class `cls` into a chain; carves a fresh
  // slab when the list is empty. Returns the chain head (never null) and
  // writes the chain length to `*got`, so callers need not re-walk it.
  Node* PopBatch(std::size_t cls, std::size_t want, std::size_t* got) {
    std::lock_guard<std::mutex> lock(mu_);
    if (lists_[cls] == nullptr) {
      CarveSlabLocked(cls);
    }
    Node* head = lists_[cls];
    Node* tail = head;
    std::size_t taken = 1;
    while (taken < want && tail->next != nullptr) {
      tail = tail->next;
      ++taken;
    }
    lists_[cls] = tail->next;
    tail->next = nullptr;
    *got = taken;
    return head;
  }

  // Pushes a chain of blocks back onto the class list.
  void PushChain(std::size_t cls, Node* head, Node* tail) {
    g_central_returns.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    tail->next = lists_[cls];
    lists_[cls] = head;
  }

  void PushOne(std::size_t cls, Node* node) { PushChain(cls, node, node); }

 private:
  void CarveSlabLocked(std::size_t cls) {
    std::size_t block = ClassSize(cls);
    std::size_t count = kSlabBytes / block;
    auto* base = static_cast<char*>(::operator new(kSlabBytes));
    g_slab_bytes.fetch_add(kSlabBytes, std::memory_order_relaxed);
    Node* head = nullptr;
    for (std::size_t i = count; i > 0; --i) {
      auto* node = reinterpret_cast<Node*>(base + (i - 1) * block);
      node->next = head;
      head = node;
    }
    lists_[cls] = head;
  }

  std::mutex mu_;
  Node* lists_[kNumClasses] = {};
};

// Per-thread magazine. The raw-pointer mirror (g_magazine) lets the hot
// path test liveness without touching the function-local thread_local
// after its destructor has run (worker-thread exit, process teardown);
// once dead, alloc/free fall through to the locked central pool.
struct Magazine {
  Node* head[kNumClasses] = {};
  std::uint32_t count[kNumClasses] = {};

  ~Magazine();
};

thread_local Magazine* g_magazine = nullptr;
thread_local bool g_magazine_dead = false;

Magazine* EnsureMagazine() {
  if (g_magazine_dead) {
    return nullptr;
  }
  static thread_local Magazine magazine;
  g_magazine = &magazine;
  return g_magazine;
}

Magazine::~Magazine() {
  CentralPool& central = CentralPool::Get();
  for (std::size_t cls = 0; cls < kNumClasses; ++cls) {
    if (head[cls] != nullptr) {
      Node* tail = head[cls];
      while (tail->next != nullptr) {
        tail = tail->next;
      }
      central.PushChain(cls, head[cls], tail);
      head[cls] = nullptr;
    }
  }
  g_magazine = nullptr;
  g_magazine_dead = true;
}

}  // namespace

void* ArenaAlloc(std::size_t size) {
  if (size == 0) {
    size = 1;
  }
  if (size > kMaxSmall) {
    return ::operator new(size);
  }
  std::size_t cls = ClassIndex(size);
  Magazine* m = g_magazine != nullptr ? g_magazine : EnsureMagazine();
  std::size_t got = 0;
  if (m == nullptr) {  // Thread is past magazine teardown.
    Node* node = CentralPool::Get().PopBatch(cls, 1, &got);
    return node;
  }
  Node* node = m->head[cls];
  if (node == nullptr) {
    node = CentralPool::Get().PopBatch(cls, kBatch, &got);
    m->count[cls] = static_cast<std::uint32_t>(got);
  }
  m->head[cls] = node->next;
  --m->count[cls];
  return node;
}

void ArenaFree(void* p, std::size_t size) noexcept {
  if (p == nullptr) {
    return;
  }
  if (size > kMaxSmall) {
    ::operator delete(p);
    return;
  }
  std::size_t cls = ClassIndex(size);
  auto* node = static_cast<Node*>(p);
  Magazine* m = g_magazine != nullptr ? g_magazine : EnsureMagazine();
  if (m == nullptr) {
    CentralPool::Get().PushOne(cls, node);
    return;
  }
  node->next = m->head[cls];
  m->head[cls] = node;
  if (++m->count[cls] >= kFlushAt) {
    Node* head = m->head[cls];
    Node* tail = head;
    for (std::size_t i = 1; i < kBatch; ++i) {
      tail = tail->next;
    }
    m->head[cls] = tail->next;
    m->count[cls] -= kBatch;
    CentralPool::Get().PushChain(cls, head, tail);
  }
}

std::size_t ArenaSlabBytes() {
  return g_slab_bytes.load(std::memory_order_relaxed);
}

std::size_t ArenaCentralReturns() {
  return g_central_returns.load(std::memory_order_relaxed);
}

}  // namespace esd::core

#include "src/core/proximity_searcher.h"

#include <algorithm>

#include "src/core/event_counters.h"

namespace esd::core {

const std::vector<ir::InstRef>& ProximitySearcher::StackOf(const vm::Thread& thread) {
  stack_scratch_.clear();
  stack_scratch_.reserve(thread.frames.size());
  for (const vm::StackFrame& f : thread.frames) {
    stack_scratch_.push_back(ir::InstRef{f.func, f.block, f.inst});
  }
  return stack_scratch_;
}

ProximitySearcher::ProximitySearcher(analysis::DistanceCalculator* distances,
                                     std::vector<SearchGoal> goals, Options options)
    : distances_(distances), goals_(std::move(goals)), options_(options),
      rng_(options.seed) {
  if (goals_.empty()) {
    goals_.push_back(SearchGoal{});  // Degenerate: behaves like FIFO by steps.
  }
  queues_.resize(goals_.size());
}

double ProximitySearcher::Priority(const vm::ExecutionState& state,
                                   const SearchGoal& goal, double bonus) {
  uint64_t dist = analysis::kInfDistance;
  if (!goal.target.IsValid()) {
    dist = state.steps;  // Degenerate goal: prefer least-stepped states.
  } else if (goal.tid != SearchGoal::kAnyThread) {
    bool thread_exists = false;
    for (const vm::Thread& t : state.threads) {
      if (t.id == goal.tid && !t.frames.empty() &&
          t.status != vm::ThreadStatus::kExited) {
        thread_exists = true;
        // A thread sitting (blocked) at its goal has arrived: distance 0,
        // even though no forward path to the goal remains.
        dist = t.Pc() == goal.target ? 0
                                     : distances_->ThreadDistance(StackOf(t),
                                                                  goal.target);
      }
    }
    if (!thread_exists) {
      // The goal thread has not been spawned yet: measure how far the
      // existing threads are from spawning it (thread_create sites count as
      // entries into the spawned function).
      for (const vm::Thread& t : state.threads) {
        if (t.frames.empty() || t.status == vm::ThreadStatus::kExited) {
          continue;
        }
        dist = std::min(dist, distances_->ThreadDistance(StackOf(t), goal.target));
      }
    }
  } else {
    for (const vm::Thread& t : state.threads) {
      if (t.frames.empty() || t.status == vm::ThreadStatus::kExited) {
        continue;
      }
      dist = std::min(dist, distances_->ThreadDistance(StackOf(t), goal.target));
    }
  }
  // Weighted average of schedule distance and path distance, biased heavily
  // toward schedule distance (§4.1): the path-distance term is clamped below
  // the schedule weight so a schedule-near state beats every schedule-far
  // state, no matter how lost its path distance looks (a thread that just
  // took its inner lock has "no remaining path" to it, yet is exactly the
  // state to run).
  double path = static_cast<double>(std::min<uint64_t>(dist, kPathDistanceCap));
  return state.schedule_distance * options_.schedule_weight + path - bonus;
}

double ProximitySearcher::BlockedGoalBonus(const vm::ExecutionState& state) const {
  // Full-manifestation drive: when *every* reported goal thread is parked
  // (blocked) at its target simultaneously, the deadlock is one scheduling
  // round from detection — drive such states to completion ahead of the
  // frontier (see kBlockedGoalBonus). The all-of-them condition matters: a
  // single parked goal thread is routinely transient (a barrier that will
  // release, a semaphore about to be posted), and rewarding it floods the
  // drive stratum with safe-path states. Only concrete per-thread goals
  // count; intermediate and wildcard goals carry no parked-thread notion.
  // Goal-independent, so PushAll computes it once per state instead of once
  // per (state, goal).
  size_t thread_goals = 0;
  size_t parked = 0;
  for (const SearchGoal& g : goals_) {
    if (!g.target.IsValid() || g.tid == SearchGoal::kAnyThread) {
      continue;
    }
    ++thread_goals;
    for (const vm::Thread& t : state.threads) {
      if (t.id == g.tid && vm::IsBlockedStatus(t.status) && !t.frames.empty() &&
          t.Pc() == g.target) {
        ++parked;
        break;
      }
    }
  }
  return thread_goals > 0 && parked == thread_goals ? kBlockedGoalBonus : 0.0;
}

void ProximitySearcher::PushAll(const vm::StatePtr& state) {
  uint64_t stamp = live_[state.get()].second;
  CountEvent(&EventCounters::frontier_pushes, goals_.size());
  double bonus = BlockedGoalBonus(*state);
  for (size_t q = 0; q < goals_.size(); ++q) {
    queues_[q].push(Entry{Priority(*state, goals_[q], bonus), stamp, state});
  }
}

void ProximitySearcher::Add(vm::StatePtr state) {
  live_[state.get()] = {state, next_stamp_++};
  PushAll(state);
}

void ProximitySearcher::Remove(const vm::StatePtr& state) {
  live_.erase(state.get());  // Heap entries expire lazily.
}

void ProximitySearcher::Update(const vm::StatePtr& state) {
  auto it = live_.find(state.get());
  if (it == live_.end()) {
    return;
  }
  it->second.second = next_stamp_++;
  PushAll(state);
}

vm::StatePtr ProximitySearcher::Select() {
  if (live_.empty()) {
    return nullptr;
  }
  // Uniformly random choice among the virtual queues (§3.4). Modulo draw
  // instead of std::uniform_int_distribution: the distribution's mapping is
  // implementation-defined, and `--jobs 1` synthesis must be
  // bit-reproducible across standard libraries for the same seed.
  size_t start = rng_() % queues_.size();
  for (size_t i = 0; i < queues_.size(); ++i) {
    Heap& heap = queues_[(start + i) % queues_.size()];
    while (!heap.empty()) {
      const Entry& top = heap.top();
      vm::StatePtr state = top.state.lock();
      if (state != nullptr) {
        auto it = live_.find(state.get());
        if (it != live_.end() && it->second.second == top.stamp) {
          CountEvent(&EventCounters::frontier_pops);
          return state;
        }
      }
      heap.pop();
    }
  }
  // All heaps were stale; rebuild from the live set.
  for (auto& [ptr, entry] : live_) {
    PushAll(entry.first);
  }
  Heap& heap = queues_[start];
  while (!heap.empty()) {
    vm::StatePtr state = heap.top().state.lock();
    if (state != nullptr && live_.count(state.get())) {
      return state;
    }
    heap.pop();
  }
  return live_.begin()->second.first;
}

}  // namespace esd::core

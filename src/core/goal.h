// ESD core: synthesis goals.
//
// The goal <B, C> of §3.1: the basic block / instruction where the failure
// was detected, plus the condition on program state that held when the bug
// manifested. For deadlocks the goal spans threads: each deadlocked thread
// has its own inner-lock target extracted from its reported call stack.
#ifndef ESD_SRC_CORE_GOAL_H_
#define ESD_SRC_CORE_GOAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/ir/module.h"
#include "src/report/coredump.h"
#include "src/vm/interpreter.h"

namespace esd::core {

// Thread id wildcard: the goal site must be reached by *some* thread. Used
// when the goal comes from a static-analysis warning rather than a coredump
// (§8's "Complementing Static Analysis Tools with ESD").
inline constexpr uint32_t kAnyTid = 0xffffffffu;

struct ThreadGoal {
  uint32_t tid = 0;  // Concrete reported tid, or kAnyTid.
  // The target instruction B: the blocked lock call (deadlock) or crash pc.
  ir::InstRef target;
  // The full reported call stack, outermost first (used for matching and
  // for the common-prefix heuristic of §4.2).
  std::vector<ir::InstRef> stack;
  // For hangs: the thread was reported blocked on something other than a
  // plain mutex acquisition (a condvar wait, an rwlock read/write wait, a
  // semaphore wait, or a barrier). Widens the schedule strategy's
  // preemption points beyond mutex lock/unlock to condvar,
  // rwlock/semaphore/barrier, and thread-lifecycle operations.
  bool blocked_on_sync = false;
};

struct Goal {
  vm::BugInfo::Kind kind = vm::BugInfo::Kind::kNone;
  // One entry per reported thread that participates in the bug. For crashes
  // this is just the faulting thread.
  std::vector<ThreadGoal> threads;
  // Condition C for crashes: the faulting address class (0 = null).
  uint64_t fault_addr = 0;
  std::string description;

  bool HasWildcardThreads() const {
    for (const ThreadGoal& t : threads) {
      if (t.tid == kAnyTid) {
        return true;
      }
    }
    return false;
  }

  const ThreadGoal* ForThread(uint32_t tid) const {
    for (const ThreadGoal& t : threads) {
      if (t.tid == tid) {
        return &t;
      }
    }
    return nullptr;
  }

  // Is `site` the inner-lock/crash target of thread `tid`? Wildcard goals
  // match any thread.
  bool IsGoalSite(uint32_t tid, ir::InstRef site) const {
    for (const ThreadGoal& t : threads) {
      if ((t.tid == tid || t.tid == kAnyTid) && t.target == site) {
        return true;
      }
    }
    return false;
  }
};

// The automated coredump analyzer (§3.1): extracts the goal from a dump.
// For deadlocks, the participating threads are those blocked on mutexes; for
// crashes, the faulting thread and pc.
Goal ExtractGoal(const ir::Module& module, const report::CoreDump& dump);

// Does `bug`, which terminated `state`, manifest `goal`? (crash: same kind,
// same pc, same fault class; deadlock: every goal thread is blocked at its
// reported inner-lock site).
bool GoalMatches(const Goal& goal, const vm::ExecutionState& state,
                 const vm::BugInfo& bug);

}  // namespace esd::core

#endif  // ESD_SRC_CORE_GOAL_H_

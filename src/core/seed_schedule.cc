#include "src/core/seed_schedule.h"

#include <algorithm>

namespace esd::core {

SeedScheduleSearcher::SeedScheduleSearcher(std::unique_ptr<vm::Searcher> inner,
                                           const replay::ExecutionFile* seed)
    : inner_(std::move(inner)) {
  seed_tids_.reserve(seed->strict.size());
  for (const replay::SwitchPoint& sp : seed->strict) {
    seed_tids_.push_back(sp.tid);
  }
}

uint64_t SeedScheduleSearcher::PrefixScore(const vm::ExecutionState& state,
                                           bool* on_seed) const {
  uint64_t matched = 0;
  *on_seed = true;
  for (const vm::SchedEvent& ev : state.sched_trace) {
    if (ev.kind != vm::SchedEvent::Kind::kSwitch) {
      continue;
    }
    if (matched >= seed_tids_.size()) {
      // Seed fully replayed; extra switches are exploration beyond it.
      break;
    }
    if (ev.tid != seed_tids_[matched]) {
      *on_seed = false;
      break;
    }
    ++matched;
  }
  return matched;
}

void SeedScheduleSearcher::Untrack(const vm::StatePtr& state) {
  for (size_t i = 0; i < on_seed_.size(); ++i) {
    if (on_seed_[i].state == state) {
      on_seed_[i] = std::move(on_seed_.back());
      on_seed_.pop_back();
      return;
    }
  }
}

void SeedScheduleSearcher::Add(vm::StatePtr state) {
  bool on_seed = false;
  uint64_t matched = PrefixScore(*state, &on_seed);
  best_prefix_ = std::max(best_prefix_, matched);
  if (on_seed) {
    on_seed_.push_back(Tracked{state, matched});
  }
  inner_->Add(std::move(state));
}

void SeedScheduleSearcher::Remove(const vm::StatePtr& state) {
  Untrack(state);
  inner_->Remove(state);
}

void SeedScheduleSearcher::Update(const vm::StatePtr& state) {
  for (Tracked& t : on_seed_) {
    if (t.state == state) {
      bool on_seed = false;
      t.matched = PrefixScore(*state, &on_seed);
      best_prefix_ = std::max(best_prefix_, t.matched);
      if (!on_seed) {
        Untrack(state);
      }
      break;
    }
  }
  inner_->Update(state);
}

vm::StatePtr SeedScheduleSearcher::Select() {
  // Prefer the state deepest along the seed schedule; deviated (or
  // never-matching) frontiers fall back to the inner strategy.
  const Tracked* best = nullptr;
  for (const Tracked& t : on_seed_) {
    if (best == nullptr || t.matched > best->matched) {
      best = &t;
    }
  }
  if (best != nullptr) {
    return best->state;
  }
  return inner_->Select();
}

}  // namespace esd::core

// ESD core: deadlock schedule synthesis (§4.1).
//
// Implements the paper's strategy for steering the scheduler toward a
// reported deadlock:
//   - at every acquisition of a free mutex, fork a snapshot state in which
//     the acquiring thread is preempted *before* taking the lock, and record
//     it in the state's K_S map keyed by the mutex;
//   - when a thread acquires its *inner lock* (the lock call at the top of
//     its reported stack), preempt it and mark the state schedule-near, so
//     another thread gets a chance to request the held mutex;
//   - when a thread blocks on a mutex that its holder acquired as the
//     holder's inner lock, "roll back": boost the K_S snapshots to
//     schedule-near and demote the current state to far, creating the
//     conditions for the blocked thread to grab its outer lock;
//   - deleting the snapshot whenever its mutex is unlocked (a free mutex
//     cannot participate in a deadlock).
#ifndef ESD_SRC_CORE_DEADLOCK_STRATEGY_H_
#define ESD_SRC_CORE_DEADLOCK_STRATEGY_H_

#include "src/core/goal.h"
#include "src/vm/schedule_policy.h"

namespace esd::core {

class DeadlockStrategy : public vm::SchedulePolicy {
 public:
  explicit DeadlockStrategy(Goal goal) : goal_(std::move(goal)) {}

  void BeforeSyncOp(vm::EngineServices& services, vm::ExecutionState& state,
                    const vm::SyncOp& op) override;
  void OnLockAcquired(vm::EngineServices& services, vm::ExecutionState& state,
                      uint64_t addr, ir::InstRef site) override;
  void OnLockBlocked(vm::EngineServices& services, vm::ExecutionState& state,
                     uint64_t addr, uint32_t holder) override;
  void OnUnlock(vm::EngineServices& services, vm::ExecutionState& state,
                uint64_t addr) override;

  struct Stats {
    uint64_t snapshots = 0;
    uint64_t inner_lock_preemptions = 0;
    uint64_t rollbacks = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  // Is `site` the reported inner-lock call of thread `tid`?
  bool IsInnerLock(uint32_t tid, ir::InstRef site) const;
  // Round-robin scan for the thread the current one would be preempted in
  // favor of (kInvalidIndex if none). With `respect_sleep`, threads whose
  // parked operation is asleep are skipped (fork gating); forced switches
  // pass false. The one selection policy for both fork and rollback paths.
  uint32_t PickPreemptTarget(const vm::ExecutionState& state, bool respect_sleep);
  // Switches `state`'s current thread away if another thread is runnable;
  // returns true if a switch happened.
  bool PreemptCurrent(vm::ExecutionState& state);

  Goal goal_;
  Stats stats_;
};

}  // namespace esd::core

#endif  // ESD_SRC_CORE_DEADLOCK_STRATEGY_H_

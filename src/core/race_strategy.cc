#include "src/core/race_strategy.h"

namespace esd::core {

RaceStrategy::RaceStrategy(Goal goal, vm::RaceDetector* detector,
                           uint32_t preemption_budget)
    : goal_(std::move(goal)), detector_(detector),
      preemption_budget_(preemption_budget) {
  // Longest common prefix of the reported threads' call stacks (§4.2); its
  // last frame's function gates fine-grain schedule forking.
  if (goal_.threads.size() >= 2) {
    size_t prefix_len = 0;
    const std::vector<ir::InstRef>& first = goal_.threads[0].stack;
    for (size_t i = 0; i < first.size(); ++i) {
      bool all_match = true;
      for (const ThreadGoal& tg : goal_.threads) {
        if (i >= tg.stack.size() || tg.stack[i].func != first[i].func) {
          all_match = false;
          break;
        }
      }
      if (!all_match) {
        break;
      }
      prefix_len = i + 1;
    }
    if (prefix_len > 0) {
      common_prefix_func_ = first[prefix_len - 1].func;
    }
  }
  // Single-thread reports (e.g. an assert in main observing racy state) give
  // no cross-thread prefix: leave the gate open so racy accesses anywhere
  // become preemption points.
}

bool RaceStrategy::StackContainsPrefix(const vm::Thread& thread) const {
  if (common_prefix_func_ == ir::kInvalidIndex) {
    return true;
  }
  for (const vm::StackFrame& f : thread.frames) {
    if (f.func == common_prefix_func_) {
      return true;
    }
  }
  return false;
}

bool RaceStrategy::IsPreemptionAccess(const vm::ExecutionState& state,
                                      ir::InstRef site) {
  if (detector_ == nullptr || detector_->FlaggedSites().count(site) == 0) {
    return false;
  }
  return StackContainsPrefix(state.CurrentThread());
}

void RaceStrategy::BeforeSyncOp(vm::EngineServices& services,
                                vm::ExecutionState& state, const vm::SyncOp& op) {
  // The operation is about to execute; wake sleeping operations it
  // interferes with before the gates below consult the sleep set.
  WakeSleepers(state, op);
  // Fork fine-grain schedule variants at racy accesses and at sync ops once
  // the common-prefix gate opens: one variant per other runnable thread,
  // bounded by the per-lineage preemption budget.
  if (state.preemptions >= preemption_budget_ ||
      !StackContainsPrefix(state.CurrentThread())) {
    return;
  }
  for (const vm::Thread& t : state.threads) {
    if (t.id == state.current_tid || t.status != vm::ThreadStatus::kRunnable ||
        ShouldSkipFork(state, t.id)) {
      continue;
    }
    vm::StatePtr variant = services.ForkState(state);
    variant->current_tid = t.id;
    ++variant->preemptions;
    variant->RecordEvent(vm::SchedEvent::Kind::kSwitch, t.id, 0, t.Pc());
    variant->is_schedule_snapshot = true;
    RecordPreempted(*variant, state.current_tid, op);
    if (!services.AddState(variant)) {
      continue;  // Deduped: an identical variant is already explored.
    }
    ++state.depth;  // The continuing state also descends in the fork tree.
    ++stats_.schedule_forks;
  }
}

}  // namespace esd::core

#include "src/core/deadlock_strategy.h"

namespace esd::core {

bool DeadlockStrategy::IsInnerLock(uint32_t tid, ir::InstRef site) const {
  return goal_.IsGoalSite(tid, site);
}

uint32_t DeadlockStrategy::PickPreemptTarget(const vm::ExecutionState& state,
                                             bool respect_sleep) {
  size_t n = state.threads.size();
  for (size_t i = 1; i <= n; ++i) {
    const vm::Thread& t = state.threads[(state.current_tid + i) % n];
    if (t.id != state.current_tid && t.status == vm::ThreadStatus::kRunnable &&
        !(respect_sleep && ShouldSkipFork(state, t.id))) {
      return t.id;
    }
  }
  return ir::kInvalidIndex;
}

bool DeadlockStrategy::PreemptCurrent(vm::ExecutionState& state) {
  uint32_t target = PickPreemptTarget(state, /*respect_sleep=*/false);
  if (target == ir::kInvalidIndex) {
    return false;
  }
  state.current_tid = target;
  state.RecordEvent(vm::SchedEvent::Kind::kSwitch, target, 0,
                    state.CurrentThread().Pc());
  return true;
}

void DeadlockStrategy::BeforeSyncOp(vm::EngineServices& services,
                                    vm::ExecutionState& state, const vm::SyncOp& op) {
  // The operation is about to execute: sleeping operations it interferes
  // with must be woken before any fork-gating below consults the sleep set.
  WakeSleepers(state, op);
  // When the reported hang involves a wait beyond a plain mutex (condvar,
  // rwlock, semaphore, barrier), the ordering of those operations and of
  // thread lifecycle matters too (a signal or post that fires before the
  // wait is lost; a reader that arrives before the upgrade closes the
  // window; a thread spawned later may need to run first). Fork one
  // variant per other runnable thread, preempting the current one before
  // the operation. Mutex-only deadlocks keep the paper's §4.1 preemption
  // points ("solely the calls to synchronization primitives, like mutex
  // lock and unlock").
  bool sync_goal = false;
  for (const ThreadGoal& tg : goal_.threads) {
    sync_goal = sync_goal || tg.blocked_on_sync;
  }
  if (sync_goal && (op.kind == vm::SyncOp::Kind::kCondWait ||
                    op.kind == vm::SyncOp::Kind::kCondSignal ||
                    op.kind == vm::SyncOp::Kind::kCondBroadcast ||
                    op.kind == vm::SyncOp::Kind::kThreadCreate ||
                    op.kind == vm::SyncOp::Kind::kThreadJoin ||
                    op.kind == vm::SyncOp::Kind::kRwRdLock ||
                    op.kind == vm::SyncOp::Kind::kRwWrLock ||
                    op.kind == vm::SyncOp::Kind::kRwUnlock ||
                    op.kind == vm::SyncOp::Kind::kSemWait ||
                    op.kind == vm::SyncOp::Kind::kSemPost ||
                    op.kind == vm::SyncOp::Kind::kBarrierWait)) {
    for (const vm::Thread& t : state.threads) {
      if (t.id == state.current_tid || t.status != vm::ThreadStatus::kRunnable ||
          ShouldSkipFork(state, t.id)) {
        continue;
      }
      vm::StatePtr variant = services.ForkState(state);
      variant->current_tid = t.id;
      variant->RecordEvent(vm::SchedEvent::Kind::kSwitch, t.id, 0, t.Pc());
      variant->is_schedule_snapshot = true;
      variant->schedule_distance = vm::kScheduleFar;
      RecordPreempted(*variant, state.current_tid, op);
      if (!services.AddState(variant)) {
        continue;  // Deduped: an identical variant is already explored.
      }
      ++state.depth;
      ++stats_.snapshots;
    }
    return;
  }
  // Acquire-like operations get the K_S snapshot treatment: mutex lock
  // (incl. trylock), rwlock read/write acquisition, and semaphore wait.
  bool acquire_like = op.kind == vm::SyncOp::Kind::kMutexLock ||
                      op.kind == vm::SyncOp::Kind::kRwRdLock ||
                      op.kind == vm::SyncOp::Kind::kRwWrLock ||
                      op.kind == vm::SyncOp::Kind::kSemWait;
  if (!acquire_like || op.addr == 0) {
    return;
  }
  if (op.kind == vm::SyncOp::Kind::kMutexLock) {
    auto it = state.mutexes().find(op.addr);
    if (it != state.mutexes().end() && it->second.locked) {
      return;  // Held: handled by OnLockBlocked after the op executes.
    }
  }
  // The mutex is free and the current thread is about to acquire it. Fork
  // the alternative in which the thread is preempted just before the
  // acquisition (paper: "forks off an execution state in which the current
  // thread is preempted"), and remember it in K_S. Pick the preemption
  // target first so sleeping threads (whose wake-up is covered by an earlier
  // sibling) never cost a fork.
  uint32_t target = PickPreemptTarget(state, /*respect_sleep=*/true);
  if (target == ir::kInvalidIndex) {
    return;  // No eligible thread; the snapshot would be identical/redundant.
  }
  vm::StatePtr snapshot = services.ForkState(state);
  snapshot->current_tid = target;
  snapshot->RecordEvent(vm::SchedEvent::Kind::kSwitch, target, 0,
                        snapshot->CurrentThread().Pc());
  RecordPreempted(*snapshot, state.current_tid, op);
  snapshot->is_schedule_snapshot = true;
  // Snapshots start schedule-far; rollbacks promote them to near (§4.1).
  snapshot->schedule_distance = vm::kScheduleFar;
  if (!services.AddState(snapshot)) {
    // Deduped: an identical state is already being explored. Do not record
    // it in K_S — a rollback boost of a state the searcher does not hold
    // would be a silent no-op.
    return;
  }
  state.lock_snapshots[op.addr] = snapshot;
  ++state.depth;  // The continuing state also descends in the fork tree.
  ++stats_.snapshots;
}

void DeadlockStrategy::OnLockAcquired(vm::EngineServices& services,
                                      vm::ExecutionState& state, uint64_t /*addr*/,
                                      ir::InstRef site) {
  if (!IsInnerLock(state.current_tid, site)) {
    return;  // Not the inner lock: let the thread run unimpeded (§4.1).
  }
  // The thread just acquired its inner lock: preempt it, keeping the lock
  // held, so some other thread can come ask for it.
  ++stats_.inner_lock_preemptions;
  PreemptCurrent(state);
  state.schedule_distance = vm::kScheduleNear;
  if (vm::StatePtr self = services.SharedRef(state)) {
    services.Reprioritize(self);
  }
}

void DeadlockStrategy::OnLockBlocked(vm::EngineServices& services,
                                     vm::ExecutionState& state, uint64_t addr,
                                     uint32_t holder) {
  auto it = state.mutexes().find(addr);
  if (it == state.mutexes().end()) {
    return;
  }
  if (!IsInnerLock(holder, it->second.acquired_at)) {
    return;  // M is not the holder's inner lock: let the requester wait.
  }
  // M could be the requester's *outer* lock. Roll back: favor the K_S
  // snapshots (in which the holder had not yet acquired M) and demote this
  // state, giving the requester a chance to take M first.
  ++stats_.rollbacks;
  for (auto& [mutex_addr, snapshot] : state.lock_snapshots) {
    if (snapshot != nullptr) {
      snapshot->schedule_distance = vm::kScheduleNear;
      services.Reprioritize(snapshot);
    }
  }
  state.schedule_distance = vm::kScheduleFar;
  if (vm::StatePtr self = services.SharedRef(state)) {
    services.Reprioritize(self);
  }
}

void DeadlockStrategy::OnUnlock(vm::EngineServices& /*services*/,
                                vm::ExecutionState& state, uint64_t addr) {
  // A free mutex cannot be part of a deadlock: drop its snapshot (§4.1).
  state.lock_snapshots.erase(addr);
}

}  // namespace esd::core

#include "src/core/event_counters.h"

#include <algorithm>

namespace esd {

namespace internal {
thread_local EventCounters* g_event_counters = nullptr;
}  // namespace internal

void EventCounters::Add(const EventCounters& other) {
  ForEachField([&](std::string_view, uint64_t EventCounters::*field) {
    // High-water marks merge by maximum; event counts merge by sum.
    if (field == &EventCounters::frontier_max_depth) {
      this->*field = std::max(this->*field, other.*field);
    } else {
      this->*field += other.*field;
    }
  });
}

void EventCounters::ForEachField(
    const std::function<void(std::string_view, uint64_t EventCounters::*)>& fn) {
  fn("state_forks", &EventCounters::state_forks);
  fn("pages_copied", &EventCounters::pages_copied);
  fn("bytes_hashed", &EventCounters::bytes_hashed);
  fn("frontier_pushes", &EventCounters::frontier_pushes);
  fn("frontier_pops", &EventCounters::frontier_pops);
  fn("fingerprint_probes", &EventCounters::fingerprint_probes);
  fn("sync_fold_reuses", &EventCounters::sync_fold_reuses);
  fn("sync_fold_recomputes", &EventCounters::sync_fold_recomputes);
  fn("solver_calls", &EventCounters::solver_calls);
  fn("expr_allocs", &EventCounters::expr_allocs);
  fn("dataflow_iterations", &EventCounters::dataflow_iterations);
  fn("ir_passes_run", &EventCounters::ir_passes_run);
  fn("steals", &EventCounters::steals);
  fn("steal_failures", &EventCounters::steal_failures);
  fn("states_handed_off", &EventCounters::states_handed_off);
  fn("frontier_max_depth", &EventCounters::frontier_max_depth);
}

}  // namespace esd

#include "src/core/event_counters.h"

namespace esd {

namespace internal {
thread_local EventCounters* g_event_counters = nullptr;
}  // namespace internal

void EventCounters::Add(const EventCounters& other) {
  ForEachField([&](std::string_view, uint64_t EventCounters::*field) {
    this->*field += other.*field;
  });
}

void EventCounters::ForEachField(
    const std::function<void(std::string_view, uint64_t EventCounters::*)>& fn) {
  fn("state_forks", &EventCounters::state_forks);
  fn("pages_copied", &EventCounters::pages_copied);
  fn("bytes_hashed", &EventCounters::bytes_hashed);
  fn("frontier_pushes", &EventCounters::frontier_pushes);
  fn("frontier_pops", &EventCounters::frontier_pops);
  fn("fingerprint_probes", &EventCounters::fingerprint_probes);
  fn("sync_fold_reuses", &EventCounters::sync_fold_reuses);
  fn("sync_fold_recomputes", &EventCounters::sync_fold_recomputes);
  fn("solver_calls", &EventCounters::solver_calls);
  fn("expr_allocs", &EventCounters::expr_allocs);
  fn("dataflow_iterations", &EventCounters::dataflow_iterations);
  fn("ir_passes_run", &EventCounters::ir_passes_run);
}

}  // namespace esd

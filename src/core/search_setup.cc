#include "src/core/search_setup.h"

#include <cstdio>

#include "src/analysis/reaching_defs.h"
#include "src/core/deadlock_strategy.h"
#include "src/core/race_strategy.h"

namespace esd::core {
namespace {

// Schedule-weight variants for a racing portfolio's non-baseline workers
// (§4.1's bias knob). Worker 0 keeps the default 1e7 so its configuration
// matches `jobs == 1`; later workers sweep stronger and weaker biases.
constexpr double kScheduleWeights[] = {1e7, 1e5, 1e9, 1e3};

}  // namespace

uint64_t WorkerSeed(const SynthesisOptions& options, size_t worker) {
  // Worker 0 keeps the user's seed; the rest are decorrelated from it.
  return worker == 0 ? options.seed
                     : options.seed + worker * 0x9e3779b97f4a7c15ull;
}

std::unique_ptr<vm::Searcher> MakeWorkerSearcher(
    size_t worker, size_t jobs, bool cooperative, const SynthesisOptions& options,
    analysis::DistanceCalculator* distances,
    const std::vector<ProximitySearcher::SearchGoal>& search_goals,
    std::string* strategy) {
  uint64_t seed = WorkerSeed(options, worker);
  char buf[64];
  if (cooperative) {
    // One logical frontier, partitioned by fingerprint: every worker runs
    // the jobs == 1 strategy over its share of the interleaving classes.
    // Racing-style diversification would only skew which partition's states
    // get explored first without adding coverage.
    if (!options.use_proximity) {
      *strategy = "coop-bfs";
      return std::make_unique<vm::BfsSearcher>();
    }
    ProximitySearcher::Options popts;
    popts.seed = seed;
    std::snprintf(buf, sizeof(buf), "coop-proximity(seed=%llu)",
                  static_cast<unsigned long long>(seed));
    *strategy = buf;
    return std::make_unique<ProximitySearcher>(distances, search_goals, popts);
  }
  if (jobs > 1 && worker == jobs - 1) {
    // The racing portfolio's baseline slot: quasi-random path coverage
    // (§7.2), insurance against goals the distance heuristic misleads.
    std::snprintf(buf, sizeof(buf), "random-path(seed=%llu)",
                  static_cast<unsigned long long>(seed));
    *strategy = buf;
    return std::make_unique<vm::RandomPathSearcher>(seed);
  }
  if (!options.use_proximity) {
    // Ablation portfolio: worker 0 keeps the jobs==1 configuration (BFS);
    // duplicating the deterministic BFS across further workers would add
    // zero coverage while draining the shared budget, so the rest run
    // uniform-random state selection with decorrelated seeds.
    if (worker == 0) {
      *strategy = "bfs";
      return std::make_unique<vm::BfsSearcher>();
    }
    std::snprintf(buf, sizeof(buf), "random-state(seed=%llu)",
                  static_cast<unsigned long long>(seed));
    *strategy = buf;
    return std::make_unique<vm::RandomStateSearcher>(seed);
  }
  ProximitySearcher::Options popts;
  popts.seed = seed;
  popts.schedule_weight =
      kScheduleWeights[worker % (sizeof(kScheduleWeights) / sizeof(double))];
  std::snprintf(buf, sizeof(buf), "proximity(seed=%llu,w=%.0e)",
                static_cast<unsigned long long>(seed), popts.schedule_weight);
  *strategy = buf;
  return std::make_unique<ProximitySearcher>(distances, search_goals, popts);
}

solver::SolverOptions MakeSolverOptions(const SynthesisOptions& options,
                                        solver::SharedSolverCache* shared_cache) {
  solver::SolverOptions sopts;
  sopts.rewrite = options.solver_rewrite;
  sopts.slice = options.solver_slice;
  sopts.range = options.solver_range;
  sopts.incremental = options.solver_incremental;
  sopts.shared_cache = shared_cache;
  return sopts;
}

std::vector<ProximitySearcher::SearchGoal> BuildSearchGoals(
    const ir::Module& module, analysis::DistanceCalculator& distances,
    const Goal& goal, bool use_intermediate_goals, size_t* intermediate_count) {
  std::vector<ProximitySearcher::SearchGoal> search_goals;
  for (const ThreadGoal& tg : goal.threads) {
    search_goals.push_back(ProximitySearcher::SearchGoal{tg.target, tg.tid});
  }
  if (use_intermediate_goals) {
    for (const ThreadGoal& tg : goal.threads) {
      auto sets = analysis::DeriveIntermediateGoals(module, distances, tg.target);
      for (const analysis::IntermediateGoalSet& set : sets) {
        // Each disjunctive set contributes one virtual queue per candidate
        // store; reaching any of them is progress toward the critical edge.
        for (const ir::InstRef& store : set.stores) {
          search_goals.push_back(ProximitySearcher::SearchGoal{
              store, ProximitySearcher::SearchGoal::kAnyThread});
          if (intermediate_count != nullptr) {
            ++*intermediate_count;
          }
        }
      }
    }
  }
  return search_goals;
}

std::vector<ir::InstRef> GoalTargets(
    const std::vector<ProximitySearcher::SearchGoal>& search_goals) {
  std::vector<ir::InstRef> targets;
  targets.reserve(search_goals.size());
  for (const ProximitySearcher::SearchGoal& g : search_goals) {
    targets.push_back(g.target);
  }
  return targets;
}

std::function<bool(const vm::ExecutionState&, ir::InstRef, uint32_t)>
MakeCriticalEdgeFilter(const Goal* goal, analysis::DistanceCalculator* distances) {
  return [goal, distances](const vm::ExecutionState& state, ir::InstRef /*site*/,
                           uint32_t target) {
    std::vector<ir::InstRef> stack;
    for (const vm::StackFrame& f : state.CurrentThread().frames) {
      stack.push_back(ir::InstRef{f.func, f.block, f.inst});
    }
    const ThreadGoal* tg = goal->ForThread(state.current_tid);
    if (tg != nullptr) {
      return distances->ThreadCanReachGoal(stack, target, tg->target);
    }
    if (goal->HasWildcardThreads()) {
      // Any thread may fill a wildcard role: the edge is useful if it can
      // still reach any wildcard target (or the thread can exit, letting
      // others fill the roles).
      for (const ThreadGoal& wildcard : goal->threads) {
        if (wildcard.tid == kAnyTid &&
            distances->ThreadCanReachGoal(stack, target, wildcard.target)) {
          return true;
        }
      }
      // Still fine if this thread merely finishes while others deadlock.
      return true;
    }
    // A thread outside the goal set: its own path matters only while some
    // goal thread has not been created yet — it must still be able to
    // reach the thread_create that spawns it (EntryTargets makes spawn
    // sites count as entries into the spawned function).
    for (const ThreadGoal& goal_thread : goal->threads) {
      bool exists = false;
      for (const vm::Thread& t : state.threads) {
        if (t.id == goal_thread.tid) {
          exists = true;
          break;
        }
      }
      if (!exists) {
        return distances->ThreadCanReachGoal(stack, target, goal_thread.target);
      }
    }
    return true;  // All goal threads already exist.
  };
}

std::unique_ptr<vm::SchedulePolicy> MakeSchedulePolicy(const Goal& goal,
                                                       bool enable_race_detection,
                                                       vm::RaceDetector* detector,
                                                       bool* want_races,
                                                       bool sleep_sets) {
  bool races = enable_race_detection || goal.kind == vm::BugInfo::Kind::kAssertFail;
  if (want_races != nullptr) {
    *want_races = races;
  }
  std::unique_ptr<vm::SchedulePolicy> policy;
  if (goal.kind == vm::BugInfo::Kind::kDeadlock) {
    policy = std::make_unique<DeadlockStrategy>(goal);
  } else if (races) {
    policy = std::make_unique<RaceStrategy>(goal, detector);
  }
  if (policy != nullptr) {
    policy->set_sleep_sets(sleep_sets);
  }
  return policy;
}

}  // namespace esd::core

#include "src/core/search_setup.h"

#include "src/analysis/reaching_defs.h"
#include "src/core/deadlock_strategy.h"
#include "src/core/race_strategy.h"

namespace esd::core {

solver::SolverOptions MakeSolverOptions(const SynthesisOptions& options,
                                        solver::SharedSolverCache* shared_cache) {
  solver::SolverOptions sopts;
  sopts.rewrite = options.solver_rewrite;
  sopts.slice = options.solver_slice;
  sopts.range = options.solver_range;
  sopts.incremental = options.solver_incremental;
  sopts.shared_cache = shared_cache;
  return sopts;
}

std::vector<ProximitySearcher::SearchGoal> BuildSearchGoals(
    const ir::Module& module, analysis::DistanceCalculator& distances,
    const Goal& goal, bool use_intermediate_goals, size_t* intermediate_count) {
  std::vector<ProximitySearcher::SearchGoal> search_goals;
  for (const ThreadGoal& tg : goal.threads) {
    search_goals.push_back(ProximitySearcher::SearchGoal{tg.target, tg.tid});
  }
  if (use_intermediate_goals) {
    for (const ThreadGoal& tg : goal.threads) {
      auto sets = analysis::DeriveIntermediateGoals(module, distances, tg.target);
      for (const analysis::IntermediateGoalSet& set : sets) {
        // Each disjunctive set contributes one virtual queue per candidate
        // store; reaching any of them is progress toward the critical edge.
        for (const ir::InstRef& store : set.stores) {
          search_goals.push_back(ProximitySearcher::SearchGoal{
              store, ProximitySearcher::SearchGoal::kAnyThread});
          if (intermediate_count != nullptr) {
            ++*intermediate_count;
          }
        }
      }
    }
  }
  return search_goals;
}

std::vector<ir::InstRef> GoalTargets(
    const std::vector<ProximitySearcher::SearchGoal>& search_goals) {
  std::vector<ir::InstRef> targets;
  targets.reserve(search_goals.size());
  for (const ProximitySearcher::SearchGoal& g : search_goals) {
    targets.push_back(g.target);
  }
  return targets;
}

std::function<bool(const vm::ExecutionState&, ir::InstRef, uint32_t)>
MakeCriticalEdgeFilter(const Goal* goal, analysis::DistanceCalculator* distances) {
  return [goal, distances](const vm::ExecutionState& state, ir::InstRef /*site*/,
                           uint32_t target) {
    std::vector<ir::InstRef> stack;
    for (const vm::StackFrame& f : state.CurrentThread().frames) {
      stack.push_back(ir::InstRef{f.func, f.block, f.inst});
    }
    const ThreadGoal* tg = goal->ForThread(state.current_tid);
    if (tg != nullptr) {
      return distances->ThreadCanReachGoal(stack, target, tg->target);
    }
    if (goal->HasWildcardThreads()) {
      // Any thread may fill a wildcard role: the edge is useful if it can
      // still reach any wildcard target (or the thread can exit, letting
      // others fill the roles).
      for (const ThreadGoal& wildcard : goal->threads) {
        if (wildcard.tid == kAnyTid &&
            distances->ThreadCanReachGoal(stack, target, wildcard.target)) {
          return true;
        }
      }
      // Still fine if this thread merely finishes while others deadlock.
      return true;
    }
    // A thread outside the goal set: its own path matters only while some
    // goal thread has not been created yet — it must still be able to
    // reach the thread_create that spawns it (EntryTargets makes spawn
    // sites count as entries into the spawned function).
    for (const ThreadGoal& goal_thread : goal->threads) {
      bool exists = false;
      for (const vm::Thread& t : state.threads) {
        if (t.id == goal_thread.tid) {
          exists = true;
          break;
        }
      }
      if (!exists) {
        return distances->ThreadCanReachGoal(stack, target, goal_thread.target);
      }
    }
    return true;  // All goal threads already exist.
  };
}

std::unique_ptr<vm::SchedulePolicy> MakeSchedulePolicy(const Goal& goal,
                                                       bool enable_race_detection,
                                                       vm::RaceDetector* detector,
                                                       bool* want_races,
                                                       bool sleep_sets) {
  bool races = enable_race_detection || goal.kind == vm::BugInfo::Kind::kAssertFail;
  if (want_races != nullptr) {
    *want_races = races;
  }
  std::unique_ptr<vm::SchedulePolicy> policy;
  if (goal.kind == vm::BugInfo::Kind::kDeadlock) {
    policy = std::make_unique<DeadlockStrategy>(goal);
  } else if (races) {
    policy = std::make_unique<RaceStrategy>(goal, detector);
  }
  if (policy != nullptr) {
    policy->set_sleep_sets(sleep_sets);
  }
  return policy;
}

}  // namespace esd::core

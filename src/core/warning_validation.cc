#include "src/core/warning_validation.h"

namespace esd::core {

Goal GoalFromWarning(const analysis::LockOrderWarning& warning) {
  Goal goal;
  goal.kind = vm::BugInfo::Kind::kDeadlock;
  goal.description = "static lock-order warning";
  ThreadGoal a;
  a.tid = kAnyTid;
  a.target = warning.ab.acquire_site;
  ThreadGoal b;
  b.tid = kAnyTid;
  b.target = warning.ba.acquire_site;
  goal.threads.push_back(std::move(a));
  goal.threads.push_back(std::move(b));
  return goal;
}

std::vector<ValidatedWarning> ValidateLockOrderWarnings(
    const ir::Module& module, const SynthesisOptions& options) {
  std::vector<ValidatedWarning> results;
  for (const analysis::LockOrderWarning& warning :
       analysis::FindLockOrderWarnings(module)) {
    ValidatedWarning v;
    v.warning = warning;
    Synthesizer synthesizer(&module, options);
    v.synthesis = synthesizer.SynthesizeGoal(GoalFromWarning(warning));
    v.confirmed = v.synthesis.success;
    results.push_back(std::move(v));
  }
  return results;
}

}  // namespace esd::core

// ESD core: data-race schedule synthesis (§4.2).
//
// Preemption points are inserted before loads/stores flagged as potential
// (harmful) races by the Eraser-style lockset detector, in addition to the
// synchronization operations. To avoid useless schedule forks early in the
// run, the common-prefix heuristic gates fine-grain forking: the longest
// common prefix of the reported threads' call stacks names a procedure p,
// and forking starts only once a thread's call stack contains p.
#ifndef ESD_SRC_CORE_RACE_STRATEGY_H_
#define ESD_SRC_CORE_RACE_STRATEGY_H_

#include "src/core/goal.h"
#include "src/vm/race_detector.h"
#include "src/vm/schedule_policy.h"

namespace esd::core {

class RaceStrategy : public vm::SchedulePolicy {
 public:
  // `preemption_budget` bounds forced preemptions per state lineage, like
  // Chess's iterative context bounding — without it the fine-grain forks
  // at every sync op swamp the search.
  RaceStrategy(Goal goal, vm::RaceDetector* detector, uint32_t preemption_budget = 4);

  bool IsPreemptionAccess(const vm::ExecutionState& state,
                          ir::InstRef site) override;
  void BeforeSyncOp(vm::EngineServices& services, vm::ExecutionState& state,
                    const vm::SyncOp& op) override;

  // The function index of the last common frame of the reported stacks
  // (ir::kInvalidIndex if there is none).
  uint32_t common_prefix_func() const { return common_prefix_func_; }

  struct Stats {
    uint64_t schedule_forks = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  bool StackContainsPrefix(const vm::Thread& thread) const;

  Goal goal_;
  vm::RaceDetector* detector_;
  uint32_t preemption_budget_;
  uint32_t common_prefix_func_ = ir::kInvalidIndex;
  Stats stats_;
};

}  // namespace esd::core

#endif  // ESD_SRC_CORE_RACE_STRATEGY_H_

// ESD core: seed-schedule search bias for incremental re-synthesis.
//
// The synthesis service sees the same bug twice: once on the original
// module, and again when a patched module arrives for validation (§8's
// patch-validation workflow, exercised manually by
// tests/patch_validation_test.cc). The second search need not start cold —
// the first run's execution file records the thread schedule that reached
// the bug, and on the patched module the same *interleaving* usually still
// leads to the interesting neighborhood even where instruction step counts
// shifted.
//
// SeedScheduleSearcher wraps the configured searcher and prefers live
// states whose switch history matches the longest prefix of the seed
// schedule's thread sequence. Matching is by tid sequence, not step count —
// a patch changes step counts but rarely the qualitative interleaving. A
// state that deviates from the seed is handed back to the inner searcher's
// ordering (proximity guidance), so the wrapper is a bias, never a filter:
// if the seed schedule no longer reaches the bug, the search degrades to
// the normal cold search.
#ifndef ESD_SRC_CORE_SEED_SCHEDULE_H_
#define ESD_SRC_CORE_SEED_SCHEDULE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/replay/execution_file.h"
#include "src/vm/searcher.h"

namespace esd::core {

class SeedScheduleSearcher : public vm::Searcher {
 public:
  // `seed` must outlive the searcher. Only the strict schedule's thread
  // sequence is used.
  SeedScheduleSearcher(std::unique_ptr<vm::Searcher> inner,
                       const replay::ExecutionFile* seed);

  void Add(vm::StatePtr state) override;
  void Remove(const vm::StatePtr& state) override;
  vm::StatePtr Select() override;
  bool Empty() const override { return inner_->Empty(); }
  void Update(const vm::StatePtr& state) override;
  size_t Size() const override { return inner_->Size(); }

  // Longest seed-schedule prefix any state has matched (reuse reporting).
  uint64_t best_prefix() const { return best_prefix_; }
  uint64_t seed_switches() const { return seed_tids_.size(); }

 private:
  struct Tracked {
    vm::StatePtr state;
    uint64_t matched = 0;  // Seed prefix length this state has replayed.
  };

  // Longest prefix of seed_tids_ matched by `state`'s switch history;
  // `on_seed` reports whether every switch so far matched (deviated states
  // are dropped from tracking — the inner searcher owns them).
  uint64_t PrefixScore(const vm::ExecutionState& state, bool* on_seed) const;
  void Untrack(const vm::StatePtr& state);

  std::unique_ptr<vm::Searcher> inner_;
  std::vector<uint32_t> seed_tids_;
  // Live states still on the seed schedule. Stays small (the frontier
  // along one schedule), so the scans below are cheap; every state is in
  // the inner searcher too.
  std::vector<Tracked> on_seed_;
  uint64_t best_prefix_ = 0;
};

}  // namespace esd::core

#endif  // ESD_SRC_CORE_SEED_SCHEDULE_H_

#include "src/fuzz/generator.h"

#include <algorithm>
#include <random>
#include <sstream>

#include "src/ir/parser.h"
#include "src/ir/verifier.h"
#include "src/workloads/workloads.h"

namespace esd::fuzz {
namespace {

// Where a noise statement lands relative to the planted-bug skeleton.
enum class Slot { kPre, kMid, kPost };

// Deterministic slot assignment: spread noise around the skeleton. Lock
// noise inside a bug thread must never precede the planted sync ops (it
// would shift the trigger's sync-event counts), so it is forced to kPost.
Slot SlotFor(const NoiseStmt& stmt, size_t index, bool bug_thread) {
  if (bug_thread && stmt.op == NoiseStmt::Op::kLockNoise) {
    return Slot::kPost;
  }
  switch (index % 3) {
    case 0:
      return Slot::kPre;
    case 1:
      return Slot::kMid;
    default:
      return Slot::kPost;
  }
}

// Emits worker bodies. Register and block names are generated from a
// per-function counter, so statements can be dropped or reordered by the
// shrinker without ever colliding.
class Emitter {
 public:
  explicit Emitter(const ScenarioSpec& spec) : spec_(spec) {}

  std::string Run() {
    EmitGlobals();
    if (spec_.kind == BugKind::kCrash && spec_.crash_null_deref) {
      os_ << "func @fz_lost_buffer() : ptr {\n"
          << "entry:\n"
          << "  ret null\n"
          << "}\n\n";
    }
    for (uint32_t t = 0; t < spec_.threads.size(); ++t) {
      EmitWorker(t);
    }
    EmitMain();
    return os_.str();
  }

 private:
  void EmitGlobals() {
    for (uint32_t i = 0; i < spec_.num_inputs; ++i) {
      os_ << "global $fzin" << i << " = zero 4\n";
      os_ << "global $fzin" << i << "_name = str \"fz_in" << i << "\"\n";
    }
    for (uint32_t l = 0; l < spec_.num_locks; ++l) {
      os_ << "global $fzl" << l << " = zero 8\n";
    }
    for (uint32_t t = 0; t < spec_.threads.size(); ++t) {
      os_ << "global $fznl" << t << " = zero 8\n";
      os_ << "global $fzscr" << t << " = zero 4\n";
    }
    if (spec_.kind == BugKind::kDeadlock || spec_.kind == BugKind::kRwUpgrade) {
      os_ << "global $fzshared = zero 4\n";
    }
    if (spec_.kind == BugKind::kRace) {
      os_ << "global $fzrace = zero 4\n";
    }
    if (spec_.kind == BugKind::kCrash) {
      os_ << "global $fzcrk = zero 4\n";
      os_ << "global $fzcr_name = str \"fz_crash\"\n";
    }
    if (spec_.kind == BugKind::kRwUpgrade) {
      os_ << "global $fzrw = zero 8\n";
    }
    if (spec_.kind == BugKind::kSemLostSignal) {
      os_ << "global $fzready = zero 8\n";
      os_ << "global $fzdone = zero 8\n";
    }
    if (spec_.kind == BugKind::kBarrierMismatch) {
      os_ << "global $fzb = zero 8\n";
    }
    if (spec_.kind == BugKind::kTreiberAba) {
      // The two-node stack: $fztop holds the top node id (0 = empty),
      // $fznxt the next-pointer array indexed by node id - 1.
      os_ << "global $fztop = zero 4\n";
      os_ << "global $fznxt = zero 8\n";
    }
    if (spec_.kind == BugKind::kSpscFence) {
      os_ << "global $fzsd = zero 4\n";    // Payload slot.
      os_ << "global $fzsf = zero 4\n";    // Ready flag.
      os_ << "global $fzsq = zero 4\n";    // Producer's shutdown marker.
      os_ << "global $fzgot = zero 4\n";   // What the consumer read.
      os_ << "global $fzseen = zero 4\n";  // Whether the consumer saw the flag.
    }
    os_ << "\n";
  }

  std::string Tmp() { return "%v" + std::to_string(tmp_++); }
  std::string Blk() { return "b" + std::to_string(blk_++); }

  void EmitNoise(const NoiseStmt& n, uint32_t t) {
    switch (n.op) {
      case NoiseStmt::Op::kArith: {
        std::string a = Tmp(), b = Tmp(), c = Tmp();
        os_ << "  " << a << " = load i32, %acc\n";
        os_ << "  " << b << " = mul " << a << ", i32 " << (n.a | 1u) << "\n";
        os_ << "  " << c << " = add " << b << ", i32 " << n.b << "\n";
        os_ << "  store " << c << ", %acc\n";
        break;
      }
      case NoiseStmt::Op::kTouch: {
        std::string a = Tmp(), b = Tmp();
        os_ << "  " << a << " = load i32, $fzscr" << t << "\n";
        os_ << "  " << b << " = add " << a << ", i32 " << n.a << "\n";
        os_ << "  store " << b << ", $fzscr" << t << "\n";
        break;
      }
      case NoiseStmt::Op::kInputMix: {
        std::string a = Tmp(), b = Tmp(), c = Tmp(), d = Tmp();
        os_ << "  " << a << " = load i32, $fzin" << n.input << "\n";
        os_ << "  " << b << " = mul " << a << ", i32 " << (n.a | 1u) << "\n";
        os_ << "  " << c << " = load i32, %acc\n";
        os_ << "  " << d << " = xor " << c << ", " << b << "\n";
        os_ << "  store " << d << ", %acc\n";
        break;
      }
      case NoiseStmt::Op::kBranch: {
        std::string v = Tmp(), c = Tmp(), h1 = Tmp(), h2 = Tmp();
        std::string taken = Blk(), join = Blk();
        os_ << "  " << v << " = load i32, $fzin" << n.input << "\n";
        os_ << "  " << c << " = icmp ugt " << v << ", i32 " << n.a << "\n";
        os_ << "  condbr " << c << ", " << taken << ", " << join << "\n";
        os_ << taken << ":\n";
        os_ << "  " << h1 << " = load i32, %acc\n";
        os_ << "  " << h2 << " = add " << h1 << ", i32 " << (n.b + 1u) << "\n";
        os_ << "  store " << h2 << ", %acc\n";
        os_ << "  br " << join << "\n";
        os_ << join << ":\n";
        break;
      }
      case NoiseStmt::Op::kLockNoise: {
        std::string a = Tmp(), b = Tmp();
        os_ << "  call @mutex_lock($fznl" << t << ")\n";
        os_ << "  " << a << " = load i32, $fzscr" << t << "\n";
        os_ << "  " << b << " = add " << a << ", i32 " << (n.a + 1u) << "\n";
        os_ << "  store " << b << ", $fzscr" << t << "\n";
        os_ << "  call @mutex_unlock($fznl" << t << ")\n";
        break;
      }
    }
  }

  void EmitSlot(uint32_t t, Slot slot) {
    const ThreadSpec& ts = spec_.threads[t];
    bool bug_thread = t < spec_.BugThreads();
    for (size_t i = 0; i < ts.noise.size(); ++i) {
      if (SlotFor(ts.noise[i], i, bug_thread) == slot) {
        EmitNoise(ts.noise[i], t);
      }
    }
  }

  void EmitWorker(uint32_t t) {
    tmp_ = 0;
    blk_ = 0;
    os_ << "func @fzworker" << t << "(%arg: ptr) : void {\n";
    os_ << "entry:\n";
    os_ << "  %acc = alloca 4\n";
    os_ << "  store i32 1, %acc\n";
    EmitSlot(t, Slot::kPre);
    bool bug_thread = t < spec_.BugThreads();
    if (bug_thread) {
      switch (spec_.kind) {
        case BugKind::kDeadlock:
          EmitDeadlockSkeleton(t);
          break;
        case BugKind::kRace:
          EmitRaceSkeleton(t);
          break;
        case BugKind::kCrash:
          EmitCrashSkeleton();
          break;
        case BugKind::kRwUpgrade:
          EmitRwUpgradeSkeleton(t);
          break;
        case BugKind::kSemLostSignal:
          EmitSemLostSignalSkeleton(t);
          break;
        case BugKind::kBarrierMismatch:
          EmitBarrierSkeleton(t);
          break;
        case BugKind::kTreiberAba:
          EmitTreiberSkeleton(t);
          break;
        case BugKind::kSpscFence:
          EmitSpscSkeleton(t);
          break;
      }
    } else {
      EmitSlot(t, Slot::kMid);
    }
    EmitSlot(t, Slot::kPost);
    os_ << "  ret\n";
    os_ << "}\n\n";
  }

  // Thread 0 takes lock_a then lock_b; thread 1 inverts: the lock-order
  // cycle. The mid-slot noise sits inside the outer lock, widening the
  // preemption window without adding sync events.
  void EmitDeadlockSkeleton(uint32_t t) {
    uint32_t outer = t == 0 ? spec_.lock_a : spec_.lock_b;
    uint32_t inner = t == 0 ? spec_.lock_b : spec_.lock_a;
    std::string a = Tmp(), b = Tmp();
    os_ << "  call @mutex_lock($fzl" << outer << ")\n";
    EmitSlot(t, Slot::kMid);
    os_ << "  call @mutex_lock($fzl" << inner << ")\n";
    os_ << "  " << a << " = load i32, $fzshared\n";
    os_ << "  " << b << " = add " << a << ", i32 1\n";
    os_ << "  store " << b << ", $fzshared\n";
    os_ << "  call @mutex_unlock($fzl" << inner << ")\n";
    os_ << "  call @mutex_unlock($fzl" << outer << ")\n";
  }

  // The unsynchronized window on $fzrace. Lost-update: load/add/store with
  // the window held open by mid-slot noise. Write/write: a plain store,
  // whose ordering against the sibling thread's store decides the final
  // value main asserts on.
  void EmitRaceSkeleton(uint32_t t) {
    uint32_t delta = t == 0 ? spec_.race_delta_a : spec_.race_delta_b;
    if (spec_.race_write_write) {
      EmitSlot(t, Slot::kMid);
      os_ << "  store i32 " << delta << ", $fzrace\n";
      return;
    }
    std::string a = Tmp(), b = Tmp();
    os_ << "  " << a << " = load i32, $fzrace\n";
    os_ << "  " << b << " = add " << a << ", i32 " << delta << "\n";
    EmitSlot(t, Slot::kMid);
    os_ << "  store " << b << ", $fzrace\n";
  }

  // The input-guarded failure: main routes the fz_crash input into $fzcrk;
  // the worker re-derives the magic through an odd multiplication (unique
  // solution mod 2^32) and either fails an esd_assert or chases a null
  // buffer on the armed path.
  void EmitCrashSkeleton() {
    uint32_t magic = spec_.crash_mul * spec_.crash_secret;
    std::string k = Tmp(), m = Tmp();
    os_ << "  " << k << " = load i32, $fzcrk\n";
    os_ << "  " << m << " = mul " << k << ", i32 " << spec_.crash_mul << "\n";
    EmitSlot(0, Slot::kMid);
    if (spec_.crash_null_deref) {
      std::string c = Tmp(), p = Tmp(), x = Tmp();
      std::string boom = Blk(), done = Blk();
      os_ << "  " << c << " = icmp eq " << m << ", i32 " << magic << "\n";
      os_ << "  condbr " << c << ", " << boom << ", " << done << "\n";
      os_ << boom << ":\n";
      os_ << "  " << p << " = call @fz_lost_buffer()\n";
      os_ << "  " << x << " = load i32, " << p << "\n";
      os_ << "  store " << x << ", %acc\n";
      os_ << "  br " << done << "\n";
      os_ << done << ":\n";
    } else {
      std::string bad = Tmp();
      os_ << "  " << bad << " = icmp ne " << m << ", i32 " << magic << "\n";
      os_ << "  call @esd_assert(" << bad << ")\n";
    }
  }

  // Both upgrade in place: rdlock, read, (mid noise widens the window),
  // wrlock — each blocks on the other's read hold once both rdlocked.
  void EmitRwUpgradeSkeleton(uint32_t t) {
    std::string a = Tmp(), b = Tmp();
    os_ << "  call @rwlock_rdlock($fzrw)\n";
    os_ << "  " << a << " = load i32, $fzshared\n";
    EmitSlot(t, Slot::kMid);
    os_ << "  call @rwlock_wrlock($fzrw)\n";
    os_ << "  " << b << " = add " << a << ", i32 1\n";
    os_ << "  store " << b << ", $fzshared\n";
    os_ << "  call @rwlock_unlock($fzrw)\n";
  }

  // Thread 0 consumes: it briefly borrows the handoff token (mid noise
  // widens the borrow window), returns it, then waits for the producer's
  // signal. Thread 1 produces through a trywait fast path that drops the
  // signal whenever its trywait lands inside the borrow window.
  void EmitSemLostSignalSkeleton(uint32_t t) {
    if (t == 0) {
      os_ << "  call @sem_wait($fzready)\n";
      EmitSlot(t, Slot::kMid);
      os_ << "  call @sem_post($fzready)\n";
      os_ << "  call @sem_wait($fzdone)\n";
      return;
    }
    EmitSlot(t, Slot::kMid);
    std::string r = Tmp(), got = Tmp();
    std::string fwd = Blk(), out = Blk();
    os_ << "  " << r << " = call @sem_trywait($fzready)\n";
    os_ << "  " << got << " = icmp eq " << r << ", i32 1\n";
    os_ << "  condbr " << got << ", " << fwd << ", " << out << "\n";
    os_ << fwd << ":\n";
    os_ << "  call @sem_post($fzready)\n";
    os_ << "  call @sem_post($fzdone)\n";
    os_ << "  br " << out << "\n";
    os_ << out << ":\n";
  }

  // Both workers arrive at a barrier initialized for three parties; the
  // third party never comes.
  void EmitBarrierSkeleton(uint32_t t) {
    EmitSlot(t, Slot::kMid);
    os_ << "  call @barrier_wait($fzb)\n";
  }

  // The classic ABA pop. Thread 0 is the victim: it reads the top node id
  // and that node's next pointer, then CASes top without a retry loop.
  // Thread 1 is the attacker: pop node 1, pop node 2, push node 1 back —
  // top is 1 again but node 1's next pointer changed, so the victim's CAS
  // succeeds and installs the already-popped node 2. Main asserts top != 2
  // after the joins. The next pointers are atomic loads too, so the scripted
  // trigger can count a sync event between the victim's next-read and its
  // CAS (the preemption window).
  void EmitTreiberSkeleton(uint32_t t) {
    if (t == 0) {
      std::string top = Tmp(), empty = Tmp();
      std::string pop = Blk(), join = Blk();
      os_ << "  " << top << " = call @atomic_load($fztop, i32 5)\n";
      os_ << "  " << empty << " = icmp eq " << top << ", i32 0\n";
      os_ << "  condbr " << empty << ", " << join << ", " << pop << "\n";
      os_ << pop << ":\n";
      std::string idx = Tmp(), widx = Tmp(), p = Tmp(), nxt = Tmp(), old = Tmp();
      os_ << "  " << idx << " = sub " << top << ", i32 1\n";
      os_ << "  " << widx << " = zext i64, " << idx << "\n";
      os_ << "  " << p << " = gep $fznxt, " << widx << ", 4\n";
      os_ << "  " << nxt << " = call @atomic_load(" << p << ", i32 0)\n";
      EmitSlot(t, Slot::kMid);
      os_ << "  " << old << " = call @atomic_cas($fztop, " << top << ", " << nxt
          << ", i32 5)\n";
      os_ << "  br " << join << "\n";
      os_ << join << ":\n";
      return;
    }
    // Attacker: each CAS uses the value the previous one installed, so the
    // whole sequence is a no-op unless it lands inside the victim's window.
    EmitSlot(t, Slot::kMid);
    std::string a = Tmp(), b = Tmp(), c = Tmp();
    os_ << "  " << a << " = call @atomic_cas($fztop, i32 1, i32 2, i32 5)\n";
    os_ << "  " << b << " = call @atomic_cas($fztop, i32 2, i32 0, i32 5)\n";
    os_ << "  store i32 0, $fznxt\n";  // Push node 1 with a new next pointer.
    os_ << "  " << c << " = call @atomic_cas($fztop, i32 0, i32 1, i32 5)\n";
  }

  // The handoff with the missing release fence: the producer publishes the
  // payload, then the ready flag — both relaxed, so both sit in its store
  // buffer and the flag may flush first. The trailing shutdown store keeps
  // the thread at an atomic operation while both entries are buffered
  // (exiting would drain the buffer in program order and close the window).
  // The consumer's acquire load of the flag can then observe flag == 1
  // while the payload slot still reads 0.
  void EmitSpscSkeleton(uint32_t t) {
    if (t == 0) {
      os_ << "  call @atomic_store($fzsd, i32 " << spec_.spsc_payload
          << ", i32 0)\n";
      os_ << "  call @atomic_store($fzsf, i32 1, i32 0)\n";
      EmitSlot(t, Slot::kMid);
      os_ << "  call @atomic_store($fzsq, i32 1, i32 0)\n";
      return;
    }
    EmitSlot(t, Slot::kMid);
    std::string f = Tmp(), ready = Tmp(), d = Tmp();
    std::string read = Blk(), join = Blk();
    os_ << "  " << f << " = call @atomic_load($fzsf, i32 2)\n";
    os_ << "  " << ready << " = icmp eq " << f << ", i32 1\n";
    os_ << "  condbr " << ready << ", " << read << ", " << join << "\n";
    os_ << read << ":\n";
    os_ << "  " << d << " = call @atomic_load($fzsd, i32 0)\n";
    os_ << "  store " << d << ", $fzgot\n";
    os_ << "  store i32 1, $fzseen\n";
    os_ << "  br " << join << "\n";
    os_ << join << ":\n";
  }

  void EmitMain() {
    tmp_ = 0;
    blk_ = 0;
    os_ << "func @main() : i32 {\n";
    os_ << "entry:\n";
    for (uint32_t i = 0; i < spec_.num_inputs; ++i) {
      os_ << "  %in" << i << " = call @esd_input_i32($fzin" << i << "_name)\n";
      os_ << "  store %in" << i << ", $fzin" << i << "\n";
    }
    std::string next = spec_.guards.empty() ? "arm" : "guard0";
    os_ << "  br " << next << "\n";
    for (size_t g = 0; g < spec_.guards.size(); ++g) {
      const Guard& guard = spec_.guards[g];
      uint32_t magic = guard.mul * guard.secret + guard.add;
      std::string m = Tmp(), a = Tmp(), c = Tmp();
      std::string pass =
          g + 1 == spec_.guards.size() ? "arm" : "guard" + std::to_string(g + 1);
      os_ << "guard" << g << ":\n";
      os_ << "  " << m << " = mul %in" << guard.input << ", i32 " << guard.mul
          << "\n";
      os_ << "  " << a << " = add " << m << ", i32 " << guard.add << "\n";
      os_ << "  " << c << " = icmp eq " << a << ", i32 " << magic << "\n";
      os_ << "  condbr " << c << ", " << pass << ", reject\n";
    }
    os_ << "arm:\n";
    if (spec_.kind == BugKind::kCrash) {
      os_ << "  %crk = call @esd_input_i32($fzcr_name)\n";
      os_ << "  store %crk, $fzcrk\n";
    }
    if (spec_.kind == BugKind::kRwUpgrade) {
      os_ << "  call @rwlock_init($fzrw)\n";
    }
    if (spec_.kind == BugKind::kSemLostSignal) {
      os_ << "  call @sem_init($fzready, i32 1)\n";
      os_ << "  call @sem_init($fzdone, i32 0)\n";
    }
    if (spec_.kind == BugKind::kBarrierMismatch) {
      // One party more than will ever arrive: the planted count mismatch.
      os_ << "  call @barrier_init($fzb, i32 3)\n";
    }
    if (spec_.kind == BugKind::kTreiberAba) {
      // Stack of two nodes: top -> 1 -> 2 -> empty. Plain stores are fine
      // before the workers exist.
      os_ << "  store i32 1, $fztop\n";
      os_ << "  store i32 2, $fznxt\n";
    }
    for (uint32_t t = 0; t < spec_.threads.size(); ++t) {
      os_ << "  %t" << t << " = call @thread_create(@fzworker" << t
          << ", null)\n";
    }
    for (uint32_t t = 0; t < spec_.threads.size(); ++t) {
      os_ << "  call @thread_join(%t" << t << ")\n";
    }
    if (spec_.kind == BugKind::kRace) {
      // The detection site (§3.1): the assert fails iff the schedule lost
      // an update (read/write) or flipped the store order (write/write).
      uint32_t expected = spec_.race_write_write
                              ? spec_.race_delta_b
                              : spec_.race_delta_a + spec_.race_delta_b;
      std::string v = Tmp(), ok = Tmp();
      os_ << "  " << v << " = load i32, $fzrace\n";
      os_ << "  " << ok << " = icmp eq " << v << ", i32 " << expected << "\n";
      os_ << "  call @esd_assert(" << ok << ")\n";
    }
    if (spec_.kind == BugKind::kTreiberAba) {
      // Every non-ABA interleaving leaves top in {0, 1}; top == 2 means the
      // victim's CAS installed the recycled node's stale next pointer.
      std::string v = Tmp(), ok = Tmp();
      os_ << "  " << v << " = load i32, $fztop\n";
      os_ << "  " << ok << " = icmp ne " << v << ", i32 2\n";
      os_ << "  call @esd_assert(" << ok << ")\n";
    }
    if (spec_.kind == BugKind::kSpscFence) {
      // If the consumer saw the flag, it must have seen the payload too —
      // unless the flag store overtook the data store in the buffer.
      std::string seen = Tmp(), got = Tmp(), ns = Tmp(), okv = Tmp(), ok = Tmp();
      os_ << "  " << seen << " = load i32, $fzseen\n";
      os_ << "  " << got << " = load i32, $fzgot\n";
      os_ << "  " << ns << " = icmp eq " << seen << ", i32 0\n";
      os_ << "  " << okv << " = icmp eq " << got << ", i32 " << spec_.spsc_payload
          << "\n";
      os_ << "  " << ok << " = or " << ns << ", " << okv << "\n";
      os_ << "  call @esd_assert(" << ok << ")\n";
    }
    os_ << "  ret i32 0\n";
    if (!spec_.guards.empty()) {
      os_ << "reject:\n";
      os_ << "  ret i32 1\n";
    }
    os_ << "}\n";
  }

  const ScenarioSpec& spec_;
  std::ostringstream os_;
  int tmp_ = 0;
  int blk_ = 0;
};

}  // namespace

std::string_view BugKindName(BugKind kind) {
  switch (kind) {
    case BugKind::kDeadlock:
      return "deadlock";
    case BugKind::kRace:
      return "race";
    case BugKind::kCrash:
      return "crash";
    case BugKind::kRwUpgrade:
      return "rwlock-upgrade";
    case BugKind::kSemLostSignal:
      return "sem-lost-signal";
    case BugKind::kBarrierMismatch:
      return "barrier-mismatch";
    case BugKind::kTreiberAba:
      return "treiber-aba";
    case BugKind::kSpscFence:
      return "spsc-fence";
  }
  return "?";
}

std::optional<BugKind> ParseBugKindName(std::string_view name) {
  for (uint32_t k = 0; k < kNumBugKinds; ++k) {
    auto kind = static_cast<BugKind>(k);
    if (BugKindName(kind) == name) {
      return kind;
    }
  }
  return std::nullopt;
}

uint32_t ScenarioSpec::BugThreads() const {
  return kind == BugKind::kCrash ? 1 : 2;
}

size_t ScenarioSpec::StatementCount() const {
  size_t count = guards.size();
  for (const ThreadSpec& t : threads) {
    count += t.noise.size();
  }
  return count;
}

GeneratedProgram Generate(const GeneratorParams& params) {
  std::mt19937_64 rng(params.seed * 0x9e3779b97f4a7c15ull + 1);
  ScenarioSpec spec;
  spec.kind = params.kind;
  spec.seed = params.seed;

  uint32_t bug_threads = spec.BugThreads();
  uint32_t threads = params.num_threads != 0
                         ? std::max(params.num_threads, bug_threads)
                         : bug_threads + static_cast<uint32_t>(rng() % 2);
  uint32_t locks = params.num_locks != 0 ? std::max(params.num_locks, 2u)
                                         : 2 + static_cast<uint32_t>(rng() % 2);
  uint32_t guard_depth = params.guard_depth != 0
                             ? params.guard_depth
                             : 1 + static_cast<uint32_t>(rng() % 3);
  uint32_t noise = params.noise_per_thread != 0
                       ? params.noise_per_thread
                       : 1 + static_cast<uint32_t>(rng() % 4);

  spec.num_locks = locks;
  spec.num_inputs = guard_depth + 1 + static_cast<uint32_t>(rng() % 2);
  for (uint32_t g = 0; g < guard_depth; ++g) {
    Guard guard;
    guard.input = g;  // Distinct per guard: the conjunction stays satisfiable.
    guard.mul = (3 + 2 * static_cast<uint32_t>(rng() % 23)) | 1u;
    guard.add = static_cast<uint32_t>(rng() % 97);
    guard.secret = 2 + static_cast<uint32_t>(rng() % 450);
    spec.guards.push_back(guard);
  }

  if (spec.kind == BugKind::kDeadlock) {
    spec.lock_a = static_cast<uint32_t>(rng() % locks);
    spec.lock_b = (spec.lock_a + 1 + static_cast<uint32_t>(rng() % (locks - 1))) %
                  locks;
  }
  if (spec.kind == BugKind::kRace) {
    spec.race_write_write = rng() % 2 == 0;
    spec.race_delta_a = 1 + static_cast<uint32_t>(rng() % 9);
    spec.race_delta_b = 1 + static_cast<uint32_t>(rng() % 9);
    if (spec.race_write_write && spec.race_delta_a == spec.race_delta_b) {
      spec.race_delta_b += 1;  // Distinct stores, or no order violation.
    }
  }
  if (spec.kind == BugKind::kCrash) {
    spec.crash_null_deref = rng() % 2 == 0;
    spec.crash_secret = 2 + static_cast<uint32_t>(rng() % 450);
    spec.crash_mul = (3 + 2 * static_cast<uint32_t>(rng() % 23)) | 1u;
  }
  if (spec.kind == BugKind::kSpscFence) {
    spec.spsc_payload = 1 + static_cast<uint32_t>(rng() % 100);
  }

  for (uint32_t t = 0; t < threads; ++t) {
    ThreadSpec ts;
    for (uint32_t s = 0; s < noise; ++s) {
      NoiseStmt n;
      uint32_t pick = static_cast<uint32_t>(rng() % 6);
      switch (pick) {
        case 0:
          n.op = NoiseStmt::Op::kArith;
          break;
        case 1:
          n.op = NoiseStmt::Op::kTouch;
          break;
        case 2:
          n.op = NoiseStmt::Op::kInputMix;
          break;
        case 3:
        case 4:
          n.op = NoiseStmt::Op::kBranch;
          break;
        default:
          n.op = NoiseStmt::Op::kLockNoise;
          break;
      }
      n.input = static_cast<uint32_t>(rng() % spec.num_inputs);
      n.a = 1 + static_cast<uint32_t>(rng() % 200);
      n.b = static_cast<uint32_t>(rng() % 100);
      ts.noise.push_back(n);
    }
    spec.threads.push_back(std::move(ts));
  }

  return Materialize(spec);
}

GeneratedProgram Materialize(const ScenarioSpec& spec) {
  GeneratedProgram program;
  program.spec = spec;
  program.source = Emitter(spec).Run();
  program.module = workloads::ParseWorkload(program.source);

  for (uint32_t i = 0; i < spec.num_inputs; ++i) {
    uint64_t filler = (i * 13 + 5) % 200;
    program.trigger.inputs["fz_in" + std::to_string(i)] = filler;
  }
  for (const Guard& guard : spec.guards) {
    program.trigger.inputs["fz_in" + std::to_string(guard.input)] = guard.secret;
  }
  switch (spec.kind) {
    case BugKind::kDeadlock:
      program.expected_kind = vm::BugInfo::Kind::kDeadlock;
      // Worker 0 (tid 1) acquires its outer lock (1 sync event), then
      // worker 1 (tid 2) acquires the inverse outer lock and blocks; worker
      // 0 then blocks on its inner lock: circular wait.
      program.trigger.schedule = {{1, 1, 2}, {2, 1, 1}};
      break;
    case BugKind::kRace:
      // The racy window has no sync events, so no SyncSwitch script can
      // express the interleaving; the oracle reports the race via the
      // assert-site coredump instead (workloads::AssertSiteDump).
      program.expected_kind = vm::BugInfo::Kind::kAssertFail;
      break;
    case BugKind::kCrash:
      program.trigger.inputs["fz_crash"] = spec.crash_secret;
      program.expected_kind = spec.crash_null_deref
                                  ? vm::BugInfo::Kind::kNullDeref
                                  : vm::BugInfo::Kind::kAssertFail;
      break;
    case BugKind::kRwUpgrade:
      program.expected_kind = vm::BugInfo::Kind::kDeadlock;
      // Worker 0 (tid 1) read-locks (1 sync event) and is preempted;
      // worker 1 (tid 2) read-locks and blocks upgrading; worker 0 then
      // blocks upgrading too: circular wait on the read holds.
      program.trigger.schedule = {{1, 1, 2}, {2, 1, 1}};
      break;
    case BugKind::kSemLostSignal:
      program.expected_kind = vm::BugInfo::Kind::kDeadlock;
      // Right after the consumer's sem_wait (its first counted sync event)
      // run the producer (tid 2): its trywait lands inside the borrow
      // window, fails, and the consumer's wakeup is dropped.
      program.trigger.schedule = {{1, 1, 2}};
      break;
    case BugKind::kBarrierMismatch:
      program.expected_kind = vm::BugInfo::Kind::kDeadlock;
      // Any schedule hangs once the guards are solved; the trigger only
      // needs the inputs.
      break;
    case BugKind::kTreiberAba:
      program.expected_kind = vm::BugInfo::Kind::kAssertFail;
      // The victim (tid 1) loads top and node 1's next pointer (2 sync
      // events), then the attacker (tid 2) runs its full pop-pop-push (3
      // CASes); the victim's stale CAS then succeeds against the recycled
      // top. Detected at main's assert, like the race kind.
      program.trigger.schedule = {{1, 2, 2}, {2, 3, 1}};
      break;
    case BugKind::kSpscFence:
      program.expected_kind = vm::BugInfo::Kind::kAssertFail;
      // No schedule: the bug needs a store-buffer flush interleaving, which
      // only the drain forks of symbolic search can express — no concrete
      // SyncSwitch script reaches it (the oracle skips the trigger stage
      // and reports via the assert-site coredump).
      break;
  }
  return program;
}

std::string ReproText(const GeneratedProgram& program) {
  const ScenarioSpec& spec = program.spec;
  std::ostringstream os;
  os << "; esdfuzz repro: kind=" << BugKindName(spec.kind)
     << " seed=" << spec.seed << " threads=" << spec.threads.size()
     << " locks=" << spec.num_locks << " guards=" << spec.guards.size()
     << " stmts=" << spec.StatementCount() << "\n";
  os << "; expected bug: " << vm::BugKindName(program.expected_kind) << "\n";
  for (const auto& [name, value] : program.trigger.inputs) {
    os << "; trigger input " << name << " = " << value << "\n";
  }
  for (const workloads::SyncSwitch& sw : program.trigger.schedule) {
    os << "; trigger schedule: after T" << sw.after_tid << " has " << sw.count
       << " sync events, run T" << sw.to_tid << "\n";
  }
  os << "; regenerate: esdfuzz --kind " << BugKindName(spec.kind)
     << " --seed-base " << spec.seed << " --seeds 1\n";
  os << "\n" << program.source;
  return os.str();
}

}  // namespace esd::fuzz

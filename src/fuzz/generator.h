// ESD fuzz: the randomized concurrent-program generator (esdfuzz).
//
// Turns the fixed Table-1 workload suite into a scenario family of
// unbounded size: every 64-bit seed deterministically expands into a
// well-formed multithreaded IR program with one *planted* bug whose
// trigger (inputs + interleaving) the generator knows exactly. Three bug
// kinds cover the paper's bug classes:
//
//   deadlock  two worker threads acquire a chosen lock pair in opposite
//             orders (a lock-order cycle); remaining threads and
//             statements are schedule noise.
//   race      two workers hit a chosen shared variable unsynchronized —
//             either a read/write lost-update window (both run a
//             load/add/store body) or a write/write order violation (both
//             store different constants); main detects the inconsistency
//             with a single esd_assert after the joins, so the report
//             points at the detection site, not the race (§3.1).
//   crash     an input-guarded failure inside a worker: an esd_assert
//             over arithmetic of a program input, or a null-pointer
//             dereference behind a guarded helper that loses a buffer.
//
// In every kind, main gates the buggy region behind a chain of arithmetic
// guards (input * odd-constant + constant == magic), so synthesis cannot
// reach the planted bug without the solver pipeline inverting the
// arithmetic. Thread count, lock count, guard-chain depth and
// noise-statement density all derive from the seed (or can be pinned via
// GeneratorParams).
//
// Generation is two-staged: the seed first expands into a structured
// ScenarioSpec (guards, per-thread statement lists, planted-bug shape),
// and Materialize() lowers the spec to IR text + module + trigger. The
// Shrinker edits the spec and re-materializes, which keeps every shrink
// candidate well-formed by construction.
#ifndef ESD_SRC_FUZZ_GENERATOR_H_
#define ESD_SRC_FUZZ_GENERATOR_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/ir/module.h"
#include "src/vm/interpreter.h"
#include "src/workloads/trigger.h"

namespace esd::fuzz {

// The planted-bug families. Beyond the original three, the sync-surface
// kinds plant: a reader-writer upgrade deadlock (both bug threads read-lock
// then upgrade in place), a semaphore lost-signal (a trywait fast path
// drops the consumer's wakeup when the token is briefly borrowed), and a
// barrier count mismatch (one more party configured than ever arrives).
// All three manifest as deadlocks; their triggers differ in whether the
// interleaving (rwlock-upgrade, sem-lost-signal) or just the guarded
// inputs (barrier-mismatch) arm the hang.
// The lock-free kinds plant C11-atomics bugs (src/vm's store-buffer
// model): a Treiber-stack ABA pop (the victim's compare-and-swap succeeds
// against a recycled node id after the attacker popped twice and pushed the
// first node back), and a single-producer/single-consumer ring handoff
// whose flag store is relaxed where it must be release — the stale data
// read is only reachable when the store buffer may flush the flag before
// the payload. Both are detected by an esd_assert in main after the joins
// (the §3.1 detection-site shape), like the race kind.
enum class BugKind : uint8_t {
  kDeadlock,
  kRace,
  kCrash,
  kRwUpgrade,
  kSemLostSignal,
  kBarrierMismatch,
  kTreiberAba,
  kSpscFence,
};
inline constexpr uint32_t kNumBugKinds = 8;

std::string_view BugKindName(BugKind kind);
std::optional<BugKind> ParseBugKindName(std::string_view name);

struct GeneratorParams {
  BugKind kind = BugKind::kDeadlock;
  uint64_t seed = 1;
  // 0 = derive from the seed. Generate() records the effective values in
  // the returned spec.
  uint32_t num_threads = 0;  // Worker threads (>= bug threads for the kind).
  uint32_t num_locks = 0;    // Shared locks (>= 2 for deadlocks).
  uint32_t guard_depth = 0;  // Arithmetic input guards in front of the bug.
  uint32_t noise_per_thread = 0;  // Noise statements woven into each worker.
};

// One noise statement in a worker body. All noise is race-free by
// construction: it touches only the thread's private accumulator, the
// thread's private scratch global, or (read-only) the guard inputs.
struct NoiseStmt {
  enum class Op : uint8_t {
    kArith,     // acc = acc * a + b (private alloca).
    kTouch,     // scratch_t = scratch_t + a (private global).
    kInputMix,  // acc = acc ^ (input[i] * a): symbolic data, solver pressure.
    kBranch,    // input-dependent diamond over input[i] (CFG noise).
    kLockNoise, // lock/unlock of the thread's noise lock around an arith op
                // (sync noise; only emitted outside planted-bug windows).
  };
  Op op = Op::kArith;
  uint32_t input = 0;  // For kInputMix / kBranch.
  uint32_t a = 1;
  uint32_t b = 0;
};

// An arithmetic input guard in main: pass iff
//   input[index] * mul + add == mul * secret + add   (mul odd, so invertible)
// i.e. iff input[index] == secret, but phrased so the solver must crack the
// arithmetic rather than pattern-match a constant.
struct Guard {
  uint32_t input = 0;
  uint32_t mul = 1;  // Odd.
  uint32_t add = 0;
  uint32_t secret = 0;
};

struct ThreadSpec {
  std::vector<NoiseStmt> noise;  // Woven around the planted-bug skeleton.
};

struct ScenarioSpec {
  BugKind kind = BugKind::kDeadlock;
  uint64_t seed = 0;
  uint32_t num_inputs = 1;  // Guard-input globals ($fzin<i>).
  uint32_t num_locks = 2;
  std::vector<Guard> guards;
  std::vector<ThreadSpec> threads;

  // Planted-bug shape. Bug threads are always threads 0 (and 1 when the
  // kind needs a pair), so shrinking can only drop threads from the tail.
  uint32_t lock_a = 0;  // Deadlock: first thread's outer lock...
  uint32_t lock_b = 1;  // ...and inner lock (second thread inverts).
  bool race_write_write = false;
  uint32_t race_delta_a = 1;  // Lost-update increments / ww store values.
  uint32_t race_delta_b = 1;
  bool crash_null_deref = false;  // Otherwise: guarded esd_assert failure.
  uint32_t crash_secret = 0;      // Input value that arms the crash.
  uint32_t crash_mul = 1;         // Odd multiplier routing the crash guard.
  uint32_t spsc_payload = 1;      // kSpscFence: the value the producer hands off.

  // How many leading threads carry the planted bug (2, or 1 for crashes).
  uint32_t BugThreads() const;
  // Spec-level size: noise statements + guards (the shrinker's metric).
  size_t StatementCount() const;
};

// A materialized scenario: the spec plus everything the oracle needs.
struct GeneratedProgram {
  ScenarioSpec spec;
  std::string source;  // IR text (externs preamble not included).
  std::shared_ptr<ir::Module> module;
  workloads::Trigger trigger;  // Manifests the planted bug (see oracle.h).
  vm::BugInfo::Kind expected_kind = vm::BugInfo::Kind::kNone;
};

// Deterministically expands the seed into a scenario. Same params -> same
// spec, source, module text, and trigger, on every platform.
GeneratedProgram Generate(const GeneratorParams& params);

// Lowers a (possibly shrinker-edited) spec to IR + trigger. Aborts if the
// emitted program fails to parse or verify — the emitter is expected to be
// correct by construction, and a violation is a generator bug.
GeneratedProgram Materialize(const ScenarioSpec& spec);

// A self-contained textual repro: a comment header (seed, params, trigger)
// followed by the IR source. The result is a valid .esd program file:
// esdsynth/esdrun load it directly (the externs preamble is prepended by
// the tools).
std::string ReproText(const GeneratedProgram& program);

}  // namespace esd::fuzz

#endif  // ESD_SRC_FUZZ_GENERATOR_H_

// ESD fuzz: the differential synthesis oracle.
//
// Every generated scenario comes with a planted bug and a known trigger,
// which makes full-engine validation free: the oracle (1) manifests the
// bug concretely to capture the report a user's failing run would produce,
// (2) runs complete synthesis (portfolio, pruning, solver pipeline on)
// against that report, (3) strict- and happens-before-replays the
// synthesized execution file and re-checks determinism, and (4) re-runs
// synthesis with the pruning layer, with the solver pipeline, and with the
// pre-synthesis IR optimizer disabled: the ablations must agree with the
// full engine on feasibility. A verdict
// failing any stage is a real engine bug (or a generator bug), never fuzz
// noise — which is what lets the fuzz sweep gate CI.
#ifndef ESD_SRC_FUZZ_ORACLE_H_
#define ESD_SRC_FUZZ_ORACLE_H_

#include <optional>
#include <string>

#include "src/core/synthesizer.h"
#include "src/fuzz/generator.h"
#include "src/report/coredump.h"

namespace esd::fuzz {

struct OracleOptions {
  double time_cap_seconds = 30.0;
  uint64_t max_instructions = 20'000'000;
  size_t max_states = 100'000;
  size_t jobs = 1;
  // With jobs > 1: cooperative work-stealing portfolio (the synthesizer
  // default) vs. racing portfolio. The CI coop-ablation job sweeps the
  // corpus with `--jobs N --cooperative` and diffs per-seed verdicts
  // against the jobs=1 sweep.
  bool cooperative = true;
  // Pre-synthesis IR optimization for the primary run (and the pruning /
  // solver ablations, which inherit it). `esdfuzz --no-ir-opt` clears this
  // so the whole sweep exercises the unoptimized engine — the CI ablation
  // job runs the corpus both ways and diffs the verdicts.
  bool ir_opt = true;
  // TSO store-buffer modeling (SynthesisOptions::store_buffer) for the
  // primary run and the ablations. `esdfuzz --no-store-buffer` clears it:
  // under sequentially consistent atomics the spsc-fence kind's planted bug
  // becomes unreachable, so sweeps of that kind expect synthesis to fail.
  bool store_buffer = true;
  // Stage 4: re-run synthesis with pruning off, with the solver pipeline
  // off, and with the IR optimizer off, and require feasibility agreement.
  // The dominant cost of a verdict; sweeps can disable it for a subset of
  // seeds.
  bool check_ablations = true;
  // Separate budgets for the ablation runs (0 = inherit the primary
  // budgets). Pruning-off exploration can be far slower than the full
  // engine, so sweeps may want a larger ablation cap — or a small one to
  // bound the worst case, accepting that a too-tight cap reads as
  // divergence.
  double ablation_time_cap_seconds = 0;
  size_t ablation_max_states = 0;
  // Fault injection: pretend the planted bug has this kind instead of the
  // generator's. Makes every verdict fail at the kind check regardless of
  // scenario size — the knob the shrinker tests (and `esdfuzz
  // --inject-kind-mismatch`) use to exercise the failure path without a
  // real engine bug.
  std::optional<vm::BugInfo::Kind> expect_kind_override;
};

struct OracleVerdict {
  bool ok = true;
  // First stage that failed: "report", "synthesis", "kind", "replay",
  // "determinism", "ablation-pruning", "ablation-solver", "ablation-ir-opt".
  // Empty when ok.
  std::string stage;
  std::string failure;  // One-line diagnostic. Empty when ok.
  // The full-engine run (primary configuration), for stats/fingerprints.
  core::SynthesisResult result;
};

// Builds the bug report the scenario's planted bug would produce in the
// field: a concrete trigger run's coredump for deadlocks and crashes, the
// assert-site coredump for races (whose buggy interleaving is not
// expressible as a sync-event script; §3.1 — the report names the
// detection site, not the race). nullopt if the trigger fails to manifest
// the planted bug.
std::optional<report::CoreDump> MakeReport(const GeneratedProgram& program);

OracleVerdict CheckScenario(const GeneratedProgram& program,
                            const OracleOptions& options);

}  // namespace esd::fuzz

#endif  // ESD_SRC_FUZZ_ORACLE_H_

#include "src/fuzz/shrinker.h"

#include <algorithm>

namespace esd::fuzz {
namespace {

// Materializes `candidate` and accepts it (into `best`) if the failure
// survives. Returns true on acceptance.
bool TryAccept(const ScenarioSpec& candidate, const ShrinkPredicate& still_failing,
               GeneratedProgram* best, ShrinkStats* stats) {
  ++stats->attempts;
  GeneratedProgram program = Materialize(candidate);
  if (!still_failing(program)) {
    return false;
  }
  ++stats->accepted;
  *best = std::move(program);
  return true;
}

// Pass 1: drop noise threads from the tail (bug threads stay).
bool DropThreads(GeneratedProgram* best, const ShrinkPredicate& still_failing,
                 ShrinkStats* stats) {
  bool changed = false;
  while (best->spec.threads.size() > best->spec.BugThreads()) {
    ScenarioSpec candidate = best->spec;
    candidate.threads.pop_back();
    if (!TryAccept(candidate, still_failing, best, stats)) {
      break;
    }
    changed = true;
  }
  return changed;
}

// Pass 2: ddmin on each thread's noise list — drop chunks, halving the
// chunk size down to single statements.
bool DropStatements(GeneratedProgram* best, const ShrinkPredicate& still_failing,
                    ShrinkStats* stats) {
  bool changed = false;
  for (size_t t = 0; t < best->spec.threads.size(); ++t) {
    size_t chunk = std::max<size_t>(1, best->spec.threads[t].noise.size() / 2);
    while (chunk >= 1) {
      bool dropped_any = false;
      size_t at = 0;
      while (at < best->spec.threads[t].noise.size()) {
        ScenarioSpec candidate = best->spec;
        auto& noise = candidate.threads[t].noise;
        size_t len = std::min(chunk, noise.size() - at);
        noise.erase(noise.begin() + static_cast<ptrdiff_t>(at),
                    noise.begin() + static_cast<ptrdiff_t>(at + len));
        if (TryAccept(candidate, still_failing, best, stats)) {
          changed = dropped_any = true;
          // `at` now points at the statement after the dropped chunk.
        } else {
          at += chunk;
        }
      }
      if (chunk == 1 && !dropped_any) {
        break;
      }
      chunk = chunk == 1 ? 1 : chunk / 2;
      if (chunk == 1 && dropped_any) {
        continue;  // One more singleton sweep after a successful round.
      }
    }
  }
  return changed;
}

// Pass 3: drop guards one at a time (from the back, so remaining guard
// labels stay contiguous after re-materialization).
bool DropGuards(GeneratedProgram* best, const ShrinkPredicate& still_failing,
                ShrinkStats* stats) {
  bool changed = false;
  size_t g = best->spec.guards.size();
  while (g-- > 0) {
    if (g >= best->spec.guards.size()) {
      continue;
    }
    ScenarioSpec candidate = best->spec;
    candidate.guards.erase(candidate.guards.begin() + static_cast<ptrdiff_t>(g));
    if (TryAccept(candidate, still_failing, best, stats)) {
      changed = true;
    }
  }
  return changed;
}

// Pass 4: shrink the lock set to what the planted bug needs. Lock indices
// referenced by the deadlock pair are remapped onto {0, 1}.
bool ShrinkLocks(GeneratedProgram* best, const ShrinkPredicate& still_failing,
                 ShrinkStats* stats) {
  ScenarioSpec candidate = best->spec;
  uint32_t needed = candidate.kind == BugKind::kDeadlock ? 2 : 0;
  if (candidate.num_locks <= std::max(needed, 1u)) {
    return false;
  }
  candidate.num_locks = std::max(needed, 1u);
  if (candidate.kind == BugKind::kDeadlock) {
    candidate.lock_a = 0;
    candidate.lock_b = 1;
  }
  return TryAccept(candidate, still_failing, best, stats);
}

}  // namespace

GeneratedProgram Shrink(const GeneratedProgram& failing,
                        const ShrinkPredicate& still_failing, ShrinkStats* stats) {
  ShrinkStats local;
  if (stats == nullptr) {
    stats = &local;
  }
  stats->stmts_before = failing.spec.StatementCount();
  GeneratedProgram best = failing;
  bool changed = true;
  while (changed) {
    ++stats->rounds;
    changed = false;
    changed |= DropThreads(&best, still_failing, stats);
    changed |= DropStatements(&best, still_failing, stats);
    changed |= DropGuards(&best, still_failing, stats);
    changed |= ShrinkLocks(&best, still_failing, stats);
  }
  stats->stmts_after = best.spec.StatementCount();
  return best;
}

GeneratedProgram ShrinkFailingScenario(const GeneratedProgram& failing,
                                       const OracleOptions& options,
                                       ShrinkStats* stats) {
  OracleVerdict original = CheckScenario(failing, options);
  if (original.ok) {
    if (stats != nullptr) {
      stats->stmts_before = stats->stmts_after = failing.spec.StatementCount();
    }
    return failing;  // Nothing to shrink: the oracle accepts the scenario.
  }
  ShrinkPredicate same_stage = [&options,
                                stage = original.stage](const GeneratedProgram& p) {
    OracleVerdict v = CheckScenario(p, options);
    return !v.ok && v.stage == stage;
  };
  return Shrink(failing, same_stage, stats);
}

}  // namespace esd::fuzz

#include "src/fuzz/oracle.h"

#include <sstream>

#include "src/replay/replayer.h"
#include "src/workloads/workloads.h"

namespace esd::fuzz {
namespace {

core::SynthesisOptions BaseOptions(const OracleOptions& options) {
  core::SynthesisOptions synth;
  synth.time_cap_seconds = options.time_cap_seconds;
  synth.max_instructions = options.max_instructions;
  synth.max_states = options.max_states;
  synth.jobs = options.jobs;
  synth.cooperative = options.cooperative;
  synth.ir_opt = options.ir_opt;
  synth.store_buffer = options.store_buffer;
  return synth;
}

OracleVerdict Fail(OracleVerdict verdict, std::string stage, std::string failure) {
  verdict.ok = false;
  verdict.stage = std::move(stage);
  verdict.failure = std::move(failure);
  return verdict;
}

// Synthesizes under `synth` and verifies the outcome end to end. Returns
// an empty string on success, else the one-line reason.
std::string RunConfiguration(const GeneratedProgram& program,
                             const report::CoreDump& dump,
                             const core::SynthesisOptions& synth,
                             vm::BugInfo::Kind expected,
                             core::SynthesisResult* out) {
  core::Synthesizer synthesizer(program.module.get(), synth);
  core::SynthesisResult result = synthesizer.Synthesize(dump);
  if (out != nullptr) {
    *out = result;
  }
  if (!result.success) {
    return "synthesis failed: " + result.failure_reason;
  }
  if (result.bug.kind != expected) {
    return std::string("bug kind mismatch: synthesized '") +
           std::string(vm::BugKindName(result.bug.kind)) + "', planted '" +
           std::string(vm::BugKindName(expected)) + "'";
  }
  replay::ReplayResult strict =
      replay::Replay(*program.module, result.file, replay::ReplayMode::kStrict);
  if (!strict.bug_reproduced) {
    return "strict replay did not reproduce the bug (got '" +
           std::string(vm::BugKindName(strict.bug.kind)) + "')";
  }
  return "";
}

}  // namespace

std::optional<report::CoreDump> MakeReport(const GeneratedProgram& program) {
  // The race and lock-free kinds are detected at main's esd_assert, so the
  // field report is the assert-site coredump. For spsc-fence no concrete
  // trigger run can even manifest the bug (it needs a store-buffer flush
  // interleaving only symbolic drain forks express); treiber-aba could
  // manifest concretely, but its report shape is the same detection-site
  // dump.
  if (program.spec.kind == BugKind::kRace ||
      program.spec.kind == BugKind::kTreiberAba ||
      program.spec.kind == BugKind::kSpscFence) {
    return workloads::AssertSiteDump(*program.module);
  }
  auto dump = workloads::CaptureDump(*program.module, program.trigger);
  if (dump.has_value() && dump->kind != program.expected_kind) {
    return std::nullopt;
  }
  return dump;
}

OracleVerdict CheckScenario(const GeneratedProgram& program,
                            const OracleOptions& options) {
  OracleVerdict verdict;
  auto dump = MakeReport(program);
  if (!dump.has_value()) {
    return Fail(std::move(verdict), "report",
                "the generator's trigger did not manifest the planted bug");
  }
  vm::BugInfo::Kind expected =
      options.expect_kind_override.value_or(program.expected_kind);

  // Stage 1-3: the full engine, then kind / strict-replay checks.
  core::SynthesisOptions synth = BaseOptions(options);
  core::Synthesizer synthesizer(program.module.get(), synth);
  verdict.result = synthesizer.Synthesize(*dump);
  if (!verdict.result.success) {
    return Fail(std::move(verdict), "synthesis",
                "synthesis failed: " + verdict.result.failure_reason);
  }
  if (verdict.result.bug.kind != expected) {
    return Fail(std::move(verdict), "kind",
                std::string("bug kind mismatch: synthesized '") +
                    std::string(vm::BugKindName(verdict.result.bug.kind)) +
                    "', expected '" + std::string(vm::BugKindName(expected)) +
                    "'");
  }
  replay::ReplayResult strict = replay::Replay(
      *program.module, verdict.result.file, replay::ReplayMode::kStrict);
  if (!strict.bug_reproduced) {
    return Fail(std::move(verdict), "replay",
                "strict replay did not reproduce the bug (got '" +
                    std::string(vm::BugKindName(strict.bug.kind)) + "')");
  }
  // Happens-before playback enforces only sync-op order, so it pins down
  // deadlocks (sync-manifested) and crashes (input-deterministic) — but a
  // data race's buggy window is by definition unordered by sync events, and
  // only strict playback can reproduce it. Skip the HB check for races.
  if (program.spec.kind != BugKind::kRace) {
    replay::ReplayResult hb =
        replay::Replay(*program.module, verdict.result.file,
                       replay::ReplayMode::kHappensBefore);
    if (!hb.bug_reproduced) {
      return Fail(std::move(verdict), "replay",
                  "happens-before replay did not reproduce the bug (got '" +
                      std::string(vm::BugKindName(hb.bug.kind)) + "')");
    }
  }
  replay::ReplayResult again = replay::Replay(
      *program.module, verdict.result.file, replay::ReplayMode::kStrict);
  if (again.instructions != strict.instructions) {
    std::ostringstream os;
    os << "strict replay is not deterministic: " << strict.instructions
       << " vs " << again.instructions << " instructions";
    return Fail(std::move(verdict), "determinism", os.str());
  }

  // Stage 4: ablation agreement. The full engine found the bug, so the
  // engine with pruning off, with the solver pipeline off, and with the IR
  // optimizer off must find it too (they explore supersets of the pruned
  // space over an observationally identical module); a divergence means
  // pruning dropped a feasible interleaving, the pipeline changed
  // satisfiability, or an IR pass changed behavior.
  if (options.check_ablations) {
    core::SynthesisOptions ablation_base = BaseOptions(options);
    if (options.ablation_time_cap_seconds > 0) {
      ablation_base.time_cap_seconds = options.ablation_time_cap_seconds;
    }
    if (options.ablation_max_states > 0) {
      ablation_base.max_states = options.ablation_max_states;
    }
    core::SynthesisOptions no_pruning = ablation_base;
    no_pruning.dedup = false;
    no_pruning.sleep_sets = false;
    if (program.spec.kind == BugKind::kSemLostSignal) {
      // Dedup-off exploration of the sem scenarios is unbounded: the
      // deadlock strategy's broad schedule forking at semaphore operations
      // spawns families of trace-distinct but behavior-identical states
      // ("both threads parked before the same pair of sem ops") that only
      // the fingerprint table collapses — sleep sets cannot, because
      // same-semaphore operations are genuinely dependent and keep waking
      // each other. Weaken only the sleep-set layer for this kind; the
      // dedup layer is still cross-checked by the sleep-off run exploring
      // through it.
      no_pruning.dedup = true;
    }
    std::string reason =
        RunConfiguration(program, *dump, no_pruning, expected, nullptr);
    if (!reason.empty()) {
      return Fail(std::move(verdict), "ablation-pruning",
                  "pruning-off ablation diverged: " + reason);
    }
    core::SynthesisOptions no_solver = ablation_base;
    no_solver.solver_rewrite = false;
    no_solver.solver_slice = false;
    no_solver.solver_range = false;
    no_solver.solver_incremental = false;
    no_solver.solver_cache_shared = false;
    reason = RunConfiguration(program, *dump, no_solver, expected, nullptr);
    if (!reason.empty()) {
      return Fail(std::move(verdict), "ablation-solver",
                  "solver-pipeline-off ablation diverged: " + reason);
    }
    // The IR passes promise exact trace preservation, so searching the
    // original module must find the same bug and yield a file that still
    // replays. A divergence means a pass changed observable behavior (or
    // the optimizer was load-bearing for feasibility — equally a bug).
    if (options.ir_opt) {
      core::SynthesisOptions no_ir = ablation_base;
      no_ir.ir_opt = false;
      reason = RunConfiguration(program, *dump, no_ir, expected, nullptr);
      if (!reason.empty()) {
        return Fail(std::move(verdict), "ablation-ir-opt",
                    "ir-opt-off ablation diverged: " + reason);
      }
    }
  }
  return verdict;
}

}  // namespace esd::fuzz

// ESD fuzz: greedy delta-debugging of failing generated scenarios.
//
// When the oracle rejects a scenario, the raw program carries all the
// generator's noise; the shrinker minimizes it while the failure persists,
// so the repro a human (or CI artifact) sees is close to minimal. Classic
// greedy ddmin over the ScenarioSpec — never over raw IR text — so every
// candidate re-materializes into a well-formed program by construction:
//
//   1. drop whole noise threads (bug threads are never dropped),
//   2. drop noise statements, largest chunks first, halving down to
//      singletons,
//   3. drop arithmetic guards,
//   4. shrink the lock set to the locks the planted bug uses.
//
// Each accepted edit must keep the predicate (by default: "the oracle
// still fails at the same stage") true; rounds repeat until a fixpoint.
#ifndef ESD_SRC_FUZZ_SHRINKER_H_
#define ESD_SRC_FUZZ_SHRINKER_H_

#include <cstddef>
#include <functional>

#include "src/fuzz/generator.h"
#include "src/fuzz/oracle.h"

namespace esd::fuzz {

struct ShrinkStats {
  size_t rounds = 0;
  size_t attempts = 0;   // Candidate programs materialized and re-checked.
  size_t accepted = 0;   // Edits that kept the failure alive.
  size_t stmts_before = 0;
  size_t stmts_after = 0;
};

// Returns true if the candidate is still "interesting" (still failing).
using ShrinkPredicate = std::function<bool(const GeneratedProgram&)>;

// Minimizes `failing` under an arbitrary predicate.
GeneratedProgram Shrink(const GeneratedProgram& failing,
                        const ShrinkPredicate& still_failing,
                        ShrinkStats* stats = nullptr);

// Convenience wrapper: the predicate is "CheckScenario still fails at the
// stage the original failed at" (matching stages keeps the shrinker from
// wandering onto an unrelated failure). `options` should disable the
// checks that are irrelevant to the original failure only if the caller
// knows that; by default the full oracle re-runs per candidate.
GeneratedProgram ShrinkFailingScenario(const GeneratedProgram& failing,
                                       const OracleOptions& options,
                                       ShrinkStats* stats = nullptr);

}  // namespace esd::fuzz

#endif  // ESD_SRC_FUZZ_SHRINKER_H_

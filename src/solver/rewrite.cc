#include "src/solver/rewrite.h"

#include <cassert>

namespace esd::solver {
namespace {

// Rebuilds `e` with canonical kids through the simplifying factories, which
// fold constants, apply identities, and move constants right of commutative
// operators. kids.size() matches the node's arity by construction.
ExprRef Rebuild(const ExprRef& e, std::vector<ExprRef> kids) {
  switch (e->kind()) {
    case ExprKind::kConst:
    case ExprKind::kVar:
      return e;
    case ExprKind::kAdd:
      return MakeAdd(kids[0], kids[1]);
    case ExprKind::kSub:
      return MakeSub(kids[0], kids[1]);
    case ExprKind::kMul:
      return MakeMul(kids[0], kids[1]);
    case ExprKind::kUDiv:
      return MakeUDiv(kids[0], kids[1]);
    case ExprKind::kSDiv:
      return MakeSDiv(kids[0], kids[1]);
    case ExprKind::kURem:
      return MakeURem(kids[0], kids[1]);
    case ExprKind::kSRem:
      return MakeSRem(kids[0], kids[1]);
    case ExprKind::kAnd:
      return MakeAnd(kids[0], kids[1]);
    case ExprKind::kOr:
      return MakeOr(kids[0], kids[1]);
    case ExprKind::kXor:
      return MakeXor(kids[0], kids[1]);
    case ExprKind::kShl:
      return MakeShl(kids[0], kids[1]);
    case ExprKind::kLShr:
      return MakeLShr(kids[0], kids[1]);
    case ExprKind::kAShr:
      return MakeAShr(kids[0], kids[1]);
    case ExprKind::kNot:
      return MakeNot(kids[0]);
    case ExprKind::kEq:
      return MakeEq(kids[0], kids[1]);
    case ExprKind::kUlt:
      return MakeUlt(kids[0], kids[1]);
    case ExprKind::kUle:
      return MakeUle(kids[0], kids[1]);
    case ExprKind::kSlt:
      return MakeSlt(kids[0], kids[1]);
    case ExprKind::kSle:
      return MakeSle(kids[0], kids[1]);
    case ExprKind::kConcat:
      return MakeConcat(kids[0], kids[1]);
    case ExprKind::kExtract:
      return MakeExtract(kids[0], static_cast<uint32_t>(e->aux()), e->width());
    case ExprKind::kZExt:
      return MakeZExt(kids[0], e->width());
    case ExprKind::kSExt:
      return MakeSExt(kids[0], e->width());
    case ExprKind::kIte:
      return MakeIte(kids[0], kids[1], kids[2]);
  }
  assert(false && "unhandled expr kind");
  return e;
}

bool IsComplement(const ExprRef& a, const ExprRef& b) {
  if (a->kind() == ExprKind::kNot && Expr::Equal(a->kids()[0], b)) {
    return true;
  }
  return b->kind() == ExprKind::kNot && Expr::Equal(b->kids()[0], a);
}

// x & (x | y) == x and x | (x & y) == x (either operand order).
bool Absorbs(const ExprRef& compound, ExprKind inner_kind, const ExprRef& x) {
  return compound->kind() == inner_kind &&
         (Expr::Equal(compound->kids()[0], x) ||
          Expr::Equal(compound->kids()[1], x));
}

// One top-node rewrite step on a node whose kids are already canonical.
// Returns the input unchanged when no rule applies.
ExprRef TopRule(const ExprRef& e) {
  const auto& kids = e->kids();
  uint32_t w = e->width();
  uint64_t mask = WidthMask(w);
  switch (e->kind()) {
    case ExprKind::kSub:
      // x - c canonicalizes to x + (-c): sub/add spellings of the same
      // offset must hash equal, and the add reassociation below then folds
      // whole chains.
      if (kids[1]->IsConst()) {
        return MakeAdd(kids[0], MakeConst(w, 0 - kids[1]->aux()));
      }
      break;
    case ExprKind::kAdd:
    case ExprKind::kMul:
    case ExprKind::kAnd:
    case ExprKind::kOr:
    case ExprKind::kXor: {
      // Complement and absorption rules for the bitwise connectives.
      if (e->kind() == ExprKind::kAnd) {
        if (IsComplement(kids[0], kids[1])) {
          return MakeConst(w, 0);
        }
        if (Absorbs(kids[0], ExprKind::kOr, kids[1])) {
          return kids[1];
        }
        if (Absorbs(kids[1], ExprKind::kOr, kids[0])) {
          return kids[0];
        }
      }
      if (e->kind() == ExprKind::kOr) {
        if (IsComplement(kids[0], kids[1])) {
          return MakeConst(w, mask);
        }
        if (Absorbs(kids[0], ExprKind::kAnd, kids[1])) {
          return kids[1];
        }
        if (Absorbs(kids[1], ExprKind::kAnd, kids[0])) {
          return kids[0];
        }
      }
      if (e->kind() == ExprKind::kXor && IsComplement(kids[0], kids[1])) {
        return MakeConst(w, mask);
      }
      // Constant reassociation: (x op c1) op c2 -> x op (c1 op c2). The
      // factories keep constants on the right, so only that shape occurs.
      if (kids[1]->IsConst() && kids[0]->kind() == e->kind() &&
          kids[0]->kids()[1]->IsConst()) {
        uint64_t c1 = kids[0]->kids()[1]->aux();
        uint64_t c2 = kids[1]->aux();
        uint64_t c = 0;
        switch (e->kind()) {
          case ExprKind::kAdd: c = c1 + c2; break;
          case ExprKind::kMul: c = c1 * c2; break;
          case ExprKind::kAnd: c = c1 & c2; break;
          case ExprKind::kOr: c = c1 | c2; break;
          default: c = c1 ^ c2; break;
        }
        return Rebuild(e, {kids[0]->kids()[0], MakeConst(w, c)});
      }
      break;
    }
    case ExprKind::kNot:
      // Negated comparisons flip into their dual: the solver then sees one
      // canonical predicate per branch polarity.
      if (w == 1) {
        const ExprRef& c = kids[0];
        if (c->kind() == ExprKind::kUlt) {
          return MakeUle(c->kids()[1], c->kids()[0]);
        }
        if (c->kind() == ExprKind::kUle) {
          return MakeUlt(c->kids()[1], c->kids()[0]);
        }
        if (c->kind() == ExprKind::kSlt) {
          return MakeSle(c->kids()[1], c->kids()[0]);
        }
        if (c->kind() == ExprKind::kSle) {
          return MakeSlt(c->kids()[1], c->kids()[0]);
        }
      }
      break;
    case ExprKind::kEq: {
      // Shift invertible constant operations onto the constant side:
      // (x + c1) == c2  ->  x == c2 - c1, and likewise for xor and bitwise
      // not. Zero-extension strips when the constant fits.
      const ExprRef& a = kids[0];
      const ExprRef& b = kids[1];
      if (b->IsConst()) {
        uint32_t aw = a->width();
        if (a->kind() == ExprKind::kAdd && a->kids()[1]->IsConst()) {
          return MakeEq(a->kids()[0],
                        MakeConst(aw, b->aux() - a->kids()[1]->aux()));
        }
        if (a->kind() == ExprKind::kXor && a->kids()[1]->IsConst()) {
          return MakeEq(a->kids()[0],
                        MakeConst(aw, b->aux() ^ a->kids()[1]->aux()));
        }
        if (a->kind() == ExprKind::kNot) {
          return MakeEq(a->kids()[0], MakeConst(aw, ~b->aux()));
        }
        if (a->kind() == ExprKind::kZExt) {
          const ExprRef& inner = a->kids()[0];
          if ((b->aux() & WidthMask(inner->width())) != b->aux()) {
            return MakeFalse();  // Constant outside the zero-extended range.
          }
          return MakeEq(inner, MakeConst(inner->width(), b->aux()));
        }
      }
      break;
    }
    case ExprKind::kUlt: {
      const ExprRef& a = kids[0];
      const ExprRef& b = kids[1];
      uint32_t aw = a->width();
      uint64_t amask = WidthMask(aw);
      if (b->IsConst()) {
        if (b->aux() == 0) {
          return MakeFalse();
        }
        if (b->aux() == 1) {
          return MakeEq(a, MakeConst(aw, 0));
        }
        if (b->aux() == amask) {
          return MakeLogicalNot(MakeEq(a, MakeConst(aw, amask)));
        }
      }
      if (a->IsConst()) {
        if (a->aux() == amask) {
          return MakeFalse();
        }
        if (a->aux() == 0) {
          return MakeLogicalNot(MakeEq(b, MakeConst(aw, 0)));
        }
      }
      break;
    }
    case ExprKind::kUle: {
      const ExprRef& a = kids[0];
      const ExprRef& b = kids[1];
      uint32_t aw = a->width();
      uint64_t amask = WidthMask(aw);
      if (b->IsConst()) {
        if (b->aux() == amask) {
          return MakeTrue();
        }
        if (b->aux() == 0) {
          return MakeEq(a, MakeConst(aw, 0));
        }
      }
      if (a->IsConst()) {
        if (a->aux() == 0) {
          return MakeTrue();
        }
        if (a->aux() == amask) {
          return MakeEq(b, MakeConst(aw, amask));
        }
      }
      break;
    }
    case ExprKind::kSlt: {
      uint32_t aw = kids[0]->width();
      uint64_t smin = uint64_t{1} << (aw - 1);
      uint64_t smax = WidthMask(aw) >> 1;
      if (kids[1]->IsConstValue(smin) || kids[0]->IsConstValue(smax)) {
        return MakeFalse();  // Nothing is below SMIN / above SMAX.
      }
      break;
    }
    case ExprKind::kSle: {
      uint32_t aw = kids[0]->width();
      uint64_t smin = uint64_t{1} << (aw - 1);
      uint64_t smax = WidthMask(aw) >> 1;
      if (kids[1]->IsConstValue(smax) || kids[0]->IsConstValue(smin)) {
        return MakeTrue();  // Everything is at most SMAX / at least SMIN.
      }
      break;
    }
    case ExprKind::kIte:
      if (kids[0]->kind() == ExprKind::kNot) {
        return MakeIte(kids[0]->kids()[0], kids[2], kids[1]);
      }
      break;
    default:
      break;
  }
  return e;
}

}  // namespace

ExprRef Rewriter::RewriteCached(const ExprRef& e) {
  if (e->kids().empty()) {
    return e;  // Constants and variables are already canonical.
  }
  if (auto it = memo_.find(e.get()); it != memo_.end()) {
    return it->second;
  }
  std::vector<ExprRef> kids;
  kids.reserve(e->kids().size());
  for (const ExprRef& k : e->kids()) {
    kids.push_back(RewriteCached(k));
  }
  ExprRef out = Rebuild(e, std::move(kids));
  // Iterate the top rules to a fixpoint: one rule's output is often another
  // rule's input (e.g. sub->add normalization enabling add reassociation).
  // Each rule strictly shrinks or canonicalizes, so this terminates fast;
  // the bound is sheer paranoia.
  for (int i = 0; i < 8; ++i) {
    ExprRef next = TopRule(out);
    if (next.get() == out.get()) {
      break;
    }
    out = std::move(next);
  }
  if (memo_.size() >= kMemoCap) {
    memo_.clear();
    pinned_.clear();
  }
  memo_.emplace(e.get(), out);
  pinned_.push_back(e);
  return out;
}

ExprRef Rewriter::Rewrite(const ExprRef& e) {
  ExprRef out = RewriteCached(e);
  if (out.get() != e.get() && !Expr::Equal(out, e)) {
    ++rewritten_;
  }
  return out;
}

ExprRef RewriteExpr(const ExprRef& e) {
  Rewriter rewriter;
  return rewriter.Rewrite(e);
}

}  // namespace esd::solver

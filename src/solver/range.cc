#include "src/solver/range.h"

#include <optional>
#include <unordered_map>

#include "src/analysis/interval.h"

namespace esd::solver {
namespace {

using analysis::FullInterval;
using analysis::Interval;
using analysis::IntervalIntersect;
using analysis::IntervalMask;
using analysis::PointInterval;

using RangeEnv = std::map<uint64_t, Interval>;

// Step 1: narrow variable ranges from directly-refining constraint shapes.
// Returns false when a narrowing is contradictory (component UNSAT).
bool RefineEnv(const std::vector<ExprRef>& constraints, RangeEnv* env) {
  for (const ExprRef& c : constraints) {
    ExprKind k = c->kind();
    if (k != ExprKind::kEq && k != ExprKind::kUlt && k != ExprKind::kUle) {
      continue;
    }
    const ExprRef& lhs = c->kids()[0];
    const ExprRef& rhs = c->kids()[1];
    const Expr* var = nullptr;
    uint64_t bound = 0;
    bool var_on_left = false;
    if (lhs->kind() == ExprKind::kVar && rhs->IsConst()) {
      var = lhs.get();
      bound = rhs->aux();
      var_on_left = true;
    } else if (rhs->kind() == ExprKind::kVar && lhs->IsConst()) {
      var = rhs.get();
      bound = lhs->aux();
    } else {
      continue;
    }
    uint32_t width = var->width();
    uint64_t mask = IntervalMask(width);
    Interval refine = FullInterval(width);
    if (k == ExprKind::kEq) {
      refine = PointInterval(bound, width);
    } else if (k == ExprKind::kUlt) {
      if (var_on_left) {
        if (bound == 0) {
          return false;  // v < 0: no unsigned value qualifies.
        }
        refine = Interval{0, bound - 1};
      } else {
        if (bound >= mask) {
          return false;  // mask < v: nothing above the top value.
        }
        refine = Interval{bound + 1, mask};
      }
    } else {  // kUle
      refine = var_on_left ? Interval{0, bound} : Interval{bound, mask};
    }
    auto [it, inserted] = env->emplace(var->aux(), refine);
    if (!inserted) {
      std::optional<Interval> meet = IntervalIntersect(it->second, refine);
      if (!meet.has_value()) {
        return false;  // Two conjuncts pin v to disjoint ranges.
      }
      it->second = *meet;
    }
  }
  return true;
}

// Step 2: bottom-up interval evaluation over the DAG, memoized by node
// pointer (the DAG shares subtrees heavily).
class IntervalEval {
 public:
  explicit IntervalEval(const RangeEnv& env) : env_(env) {}

  Interval Eval(const ExprRef& e) {
    auto it = memo_.find(e.get());
    if (it != memo_.end()) {
      return it->second;
    }
    Interval r = Compute(e);
    memo_.emplace(e.get(), r);
    return r;
  }

 private:
  Interval Compute(const ExprRef& e) {
    using namespace analysis;  // Interval transfer functions.
    uint32_t w = e->width();
    switch (e->kind()) {
      case ExprKind::kConst:
        return PointInterval(e->aux(), w);
      case ExprKind::kVar: {
        auto it = env_.find(e->aux());
        return it == env_.end() ? FullInterval(w) : it->second;
      }
      case ExprKind::kAdd:
        return IntervalAdd(Eval(e->kids()[0]), Eval(e->kids()[1]), w);
      case ExprKind::kSub:
        return IntervalSub(Eval(e->kids()[0]), Eval(e->kids()[1]), w);
      case ExprKind::kMul:
        return IntervalMul(Eval(e->kids()[0]), Eval(e->kids()[1]), w);
      case ExprKind::kUDiv:
        return IntervalUDiv(Eval(e->kids()[0]), Eval(e->kids()[1]), w);
      case ExprKind::kURem:
        return IntervalURem(Eval(e->kids()[0]), Eval(e->kids()[1]), w);
      case ExprKind::kAnd:
        return IntervalAnd(Eval(e->kids()[0]), Eval(e->kids()[1]), w);
      case ExprKind::kOr:
        return IntervalOr(Eval(e->kids()[0]), Eval(e->kids()[1]), w);
      case ExprKind::kXor:
        return IntervalXor(Eval(e->kids()[0]), Eval(e->kids()[1]), w);
      case ExprKind::kShl:
        return IntervalShl(Eval(e->kids()[0]), Eval(e->kids()[1]), w);
      case ExprKind::kLShr:
        return IntervalLShr(Eval(e->kids()[0]), Eval(e->kids()[1]), w);
      case ExprKind::kAShr:
        return IntervalAShr(Eval(e->kids()[0]), Eval(e->kids()[1]), w);
      case ExprKind::kNot:
        return IntervalNot(Eval(e->kids()[0]), w);
      case ExprKind::kEq:
        return IntervalEq(Eval(e->kids()[0]), Eval(e->kids()[1]));
      case ExprKind::kUlt:
        return IntervalUlt(Eval(e->kids()[0]), Eval(e->kids()[1]));
      case ExprKind::kUle:
        return IntervalUle(Eval(e->kids()[0]), Eval(e->kids()[1]));
      case ExprKind::kSlt:
        return IntervalSlt(Eval(e->kids()[0]), Eval(e->kids()[1]),
                           e->kids()[0]->width());
      case ExprKind::kSle:
        return IntervalSle(Eval(e->kids()[0]), Eval(e->kids()[1]),
                           e->kids()[0]->width());
      case ExprKind::kZExt:
        return IntervalZExt(Eval(e->kids()[0]), e->kids()[0]->width(), w);
      case ExprKind::kSExt:
        return IntervalSExt(Eval(e->kids()[0]), e->kids()[0]->width(), w);
      case ExprKind::kExtract:
        if (e->aux() == 0) {
          return IntervalTrunc(Eval(e->kids()[0]), w);
        }
        return FullInterval(w);
      case ExprKind::kConcat: {
        Interval hi = Eval(e->kids()[0]);
        Interval lo = Eval(e->kids()[1]);
        uint32_t low_w = e->kids()[1]->width();
        if (hi.IsPoint() && low_w < 64) {
          uint64_t base = hi.lo << low_w;
          if (base <= IntervalMask(w) - lo.hi) {
            return Interval{base + lo.lo, base + lo.hi};
          }
        }
        return FullInterval(w);
      }
      case ExprKind::kIte:
        return IntervalSelect(Eval(e->kids()[0]), Eval(e->kids()[1]),
                              Eval(e->kids()[2]));
      case ExprKind::kSDiv:
      case ExprKind::kSRem:
        return FullInterval(w);  // Signed division: not tracked.
    }
    return FullInterval(w);
  }

  const RangeEnv& env_;
  std::unordered_map<const Expr*, Interval> memo_;
};

// Inverse of an odd multiplier mod 2^64 (Newton: each step doubles the
// number of correct low bits, 5 steps from a 3-bit-correct seed).
uint64_t ModInverseOdd(uint64_t a) {
  uint64_t x = a;
  for (int i = 0; i < 5; ++i) {
    x *= 2 - a * x;
  }
  return x;
}

// Steers `e` to evaluate to `target` by descending through invertible
// operations until a variable absorbs the residue. Non-steered operands are
// pinned at their value under the current assignment (which is total — the
// caller seeds every variable first). A wrong or partial inversion is
// harmless: the caller re-checks the whole component with EvalExpr.
bool InvertOnto(const ExprRef& e, uint64_t target,
                std::map<uint64_t, uint64_t>* asg) {
  uint64_t mask = IntervalMask(e->width());
  target &= mask;
  switch (e->kind()) {
    case ExprKind::kVar:
      (*asg)[e->aux()] = target;
      return true;
    case ExprKind::kConst:
      return (e->aux() & mask) == target;
    case ExprKind::kAdd: {
      const ExprRef& a = e->kids()[0];
      const ExprRef& b = e->kids()[1];
      if (a->IsConst()) {
        return InvertOnto(b, target - a->aux(), asg);
      }
      return InvertOnto(a, target - EvalExpr(b, *asg), asg);
    }
    case ExprKind::kSub:
      return InvertOnto(e->kids()[0], target + EvalExpr(e->kids()[1], *asg),
                        asg);
    case ExprKind::kXor: {
      const ExprRef& a = e->kids()[0];
      const ExprRef& b = e->kids()[1];
      if (a->IsConst()) {
        return InvertOnto(b, target ^ a->aux(), asg);
      }
      return InvertOnto(a, target ^ EvalExpr(b, *asg), asg);
    }
    case ExprKind::kMul: {
      const ExprRef& a = e->kids()[0];
      const ExprRef& b = e->kids()[1];
      if (b->IsConst() && (b->aux() & 1) != 0) {
        return InvertOnto(a, target * ModInverseOdd(b->aux()), asg);
      }
      if (a->IsConst() && (a->aux() & 1) != 0) {
        return InvertOnto(b, target * ModInverseOdd(a->aux()), asg);
      }
      // x * y: park one factor at 1 and steer the other.
      if (b->kind() == ExprKind::kVar) {
        (*asg)[b->aux()] = 1;
        return InvertOnto(a, target, asg);
      }
      if (a->kind() == ExprKind::kVar) {
        (*asg)[a->aux()] = 1;
        return InvertOnto(b, target, asg);
      }
      return false;
    }
    case ExprKind::kZExt: {
      const ExprRef& a = e->kids()[0];
      return target <= IntervalMask(a->width()) && InvertOnto(a, target, asg);
    }
    default:
      return false;
  }
}

}  // namespace

RangeResult TryRangeDischarge(const std::vector<ExprRef>& constraints) {
  RangeResult result;
  RangeEnv env;
  if (!RefineEnv(constraints, &env)) {
    result.outcome = RangeResult::Outcome::kUnsat;
    return result;
  }

  IntervalEval eval(env);
  for (const ExprRef& c : constraints) {
    Interval r = eval.Eval(c);
    if (r.hi == 0) {  // Width-1 result pinned to 0: provably false.
      result.outcome = RangeResult::Outcome::kUnsat;
      return result;
    }
  }

  // Witness probes, each checked by exact evaluation so a wrong guess costs
  // nothing but this pass. First the point guesses (refined bounds, others
  // 0), then an equality-inversion pass: unsatisfied Eq conjuncts are
  // steered onto a variable through invertible operation chains (add, xor,
  // odd multipliers via the mod-2^64 inverse, var*var by parking one factor
  // at 1) — the shape of the symbolic guard chains the synthesis branch
  // feasibility checks keep re-asking.
  std::map<uint64_t, ExprRef> vars;
  for (const ExprRef& c : constraints) {
    CollectVars(c, &vars);
  }
  auto Satisfies = [&constraints](const std::map<uint64_t, uint64_t>& asg) {
    for (const ExprRef& c : constraints) {
      if (EvalExpr(c, asg) == 0) {
        return false;
      }
    }
    return true;
  };
  std::map<uint64_t, uint64_t> lo_probe;
  std::map<uint64_t, uint64_t> hi_probe;
  for (const auto& [id, var] : vars) {
    auto it = env.find(id);
    lo_probe[id] = it == env.end() ? 0 : it->second.lo;
    hi_probe[id] = it == env.end() ? 0 : it->second.hi;
  }
  for (auto* probe : {&lo_probe, &hi_probe}) {
    if (Satisfies(*probe)) {
      result.outcome = RangeResult::Outcome::kSat;
      result.witness = std::move(*probe);
      return result;
    }
  }
  std::map<uint64_t, uint64_t> steered = lo_probe;
  // Two passes: steering a later conjunct can invalidate an earlier one
  // once, but the chains share one pivot variable, so a second sweep
  // reconverges when it is going to converge at all.
  for (int sweep = 0; sweep < 2; ++sweep) {
    for (const ExprRef& c : constraints) {
      if (c->kind() != ExprKind::kEq || EvalExpr(c, steered) != 0) {
        continue;
      }
      if (!InvertOnto(c->kids()[0], EvalExpr(c->kids()[1], steered),
                      &steered)) {
        InvertOnto(c->kids()[1], EvalExpr(c->kids()[0], steered), &steered);
      }
    }
    if (Satisfies(steered)) {
      result.outcome = RangeResult::Outcome::kSat;
      result.witness = std::move(steered);
      return result;
    }
  }
  return result;  // kUnknown: every probe missed.
}

}  // namespace esd::solver

#include "src/solver/sat.h"

#include <algorithm>
#include <cassert>

namespace esd::solver {

SatSolver::SatSolver() = default;

uint32_t SatSolver::NewVar() {
  uint32_t v = static_cast<uint32_t>(assign_.size());
  assign_.push_back(kUndef);
  level_.push_back(0);
  reason_.push_back(kNoReason);
  activity_.push_back(0.0);
  seen_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  return v;
}

void SatSolver::AddClause(std::vector<Lit> lits) {
  if (unsat_) {
    return;
  }
  // Incremental use adds clauses between Solve() calls, which may have left
  // decision-level assignments on the trail; the top-level simplifications
  // below are only sound against level-0 (formula-implied) assignments.
  Backtrack(0);
  // Remove duplicate literals; detect tautologies.
  std::sort(lits.begin(), lits.end(),
            [](Lit a, Lit b) { return a.code < b.code; });
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
  for (size_t i = 0; i + 1 < lits.size(); ++i) {
    if (lits[i].var() == lits[i + 1].var()) {
      return;  // Contains both l and ~l: tautology.
    }
  }
  // Strip literals already false at level 0; drop clause if any is true.
  std::vector<Lit> kept;
  kept.reserve(lits.size());
  for (Lit l : lits) {
    int8_t v = assign_[l.var()];
    if (v != kUndef && level_[l.var()] == 0) {
      if (LitValue(l) == kTrue) {
        return;
      }
      continue;  // False at top level: skip.
    }
    kept.push_back(l);
  }
  if (kept.empty()) {
    unsat_ = true;
    return;
  }
  if (kept.size() == 1) {
    if (LitValue(kept[0]) == kUndef) {
      Enqueue(kept[0], kNoReason);
      if (Propagate() != kNoReason) {
        unsat_ = true;
      }
    } else if (LitValue(kept[0]) == kFalse) {
      unsat_ = true;
    }
    return;
  }
  clauses_.push_back(Clause{std::move(kept), false});
  AttachClause(static_cast<uint32_t>(clauses_.size() - 1));
}

void SatSolver::AttachClause(uint32_t ci) {
  const Clause& c = clauses_[ci];
  watches_[(~c.lits[0]).code].push_back(ci);
  watches_[(~c.lits[1]).code].push_back(ci);
}

void SatSolver::Enqueue(Lit l, uint32_t reason) {
  assert(LitValue(l) == kUndef);
  assign_[l.var()] = l.sign() ? kFalse : kTrue;
  level_[l.var()] = static_cast<uint32_t>(trail_lim_.size());
  reason_[l.var()] = reason;
  trail_.push_back(l);
}

uint32_t SatSolver::Propagate() {
  while (propagate_head_ < trail_.size()) {
    Lit p = trail_[propagate_head_++];
    ++stats_.propagations;
    // Clauses watching ~p must find a new watch or propagate/conflict.
    std::vector<uint32_t>& watch_list = watches_[p.code];
    size_t out = 0;
    for (size_t in = 0; in < watch_list.size(); ++in) {
      uint32_t ci = watch_list[in];
      Clause& c = clauses_[ci];
      // Normalize so that the false literal (~p) is at position 1.
      if (c.lits[0] == ~p) {
        std::swap(c.lits[0], c.lits[1]);
      }
      if (LitValue(c.lits[0]) == kTrue) {
        watch_list[out++] = ci;  // Clause satisfied; keep watch.
        continue;
      }
      // Find a new literal to watch.
      bool found = false;
      for (size_t k = 2; k < c.lits.size(); ++k) {
        if (LitValue(c.lits[k]) != kFalse) {
          std::swap(c.lits[1], c.lits[k]);
          watches_[(~c.lits[1]).code].push_back(ci);
          found = true;
          break;
        }
      }
      if (found) {
        continue;  // Watch moved; do not keep in this list.
      }
      // No new watch: clause is unit or conflicting.
      watch_list[out++] = ci;
      if (LitValue(c.lits[0]) == kFalse) {
        // Conflict: restore remaining watches and report.
        for (size_t k = in + 1; k < watch_list.size(); ++k) {
          watch_list[out++] = watch_list[k];
        }
        watch_list.resize(out);
        propagate_head_ = trail_.size();
        return ci;
      }
      Enqueue(c.lits[0], ci);
    }
    watch_list.resize(out);
  }
  return kNoReason;
}

void SatSolver::BumpVar(uint32_t var) {
  activity_[var] += activity_inc_;
  if (activity_[var] > 1e100) {
    for (double& a : activity_) {
      a *= 1e-100;
    }
    activity_inc_ *= 1e-100;
  }
}

void SatSolver::DecayActivities() { activity_inc_ *= 1.0 / 0.95; }

void SatSolver::Analyze(uint32_t conflict, std::vector<Lit>* learnt,
                        uint32_t* backtrack_level) {
  learnt->clear();
  learnt->push_back(Lit{0});  // Placeholder for the asserting literal.
  uint32_t counter = 0;
  Lit p{0};
  bool have_p = false;
  uint32_t index = static_cast<uint32_t>(trail_.size());
  uint32_t current_level = static_cast<uint32_t>(trail_lim_.size());

  uint32_t ci = conflict;
  do {
    const Clause& c = clauses_[ci];
    for (size_t i = have_p ? 1 : 0; i < c.lits.size(); ++i) {
      Lit q = c.lits[i];
      if (have_p && q == p) {
        continue;
      }
      uint32_t v = q.var();
      if (!seen_[v] && level_[v] > 0) {
        seen_[v] = 1;
        BumpVar(v);
        if (level_[v] >= current_level) {
          ++counter;
        } else {
          learnt->push_back(q);
        }
      }
    }
    // Pick the next literal on the trail to resolve on.
    while (!seen_[trail_[index - 1].var()]) {
      --index;
    }
    --index;
    p = trail_[index];
    have_p = true;
    seen_[p.var()] = 0;
    --counter;
    if (counter > 0) {
      // Propagated literals always sit at position 0 of their reason clause,
      // so resolution can skip index 0 on the next iteration.
      ci = reason_[p.var()];
      assert(ci != kNoReason);
      assert(clauses_[ci].lits[0] == p);
    }
  } while (counter > 0);
  (*learnt)[0] = ~p;

  // Compute the backtrack level (second-highest level in the clause).
  *backtrack_level = 0;
  if (learnt->size() > 1) {
    size_t max_i = 1;
    for (size_t i = 2; i < learnt->size(); ++i) {
      if (level_[(*learnt)[i].var()] > level_[(*learnt)[max_i].var()]) {
        max_i = i;
      }
    }
    std::swap((*learnt)[1], (*learnt)[max_i]);
    *backtrack_level = level_[(*learnt)[1].var()];
  }
  for (Lit l : *learnt) {
    seen_[l.var()] = 0;
  }
}

void SatSolver::Backtrack(uint32_t target_level) {
  if (trail_lim_.size() <= target_level) {
    return;
  }
  size_t keep = trail_lim_[target_level];
  for (size_t i = trail_.size(); i > keep; --i) {
    uint32_t v = trail_[i - 1].var();
    assign_[v] = kUndef;
    reason_[v] = kNoReason;
  }
  trail_.resize(keep);
  trail_lim_.resize(target_level);
  propagate_head_ = keep;
}

Lit SatSolver::PickBranchLit(const std::vector<uint32_t>* scope) {
  uint32_t n = scope != nullptr ? static_cast<uint32_t>(scope->size()) : NumVars();
  auto var_at = [this, scope](uint32_t i) {
    return scope != nullptr ? (*scope)[i] : i;
  };
  // Occasionally pick a random unassigned variable to escape heavy tails.
  rng_state_ = rng_state_ * 6364136223846793005ull + 1442695040888963407ull;
  if (n > 0 && (rng_state_ >> 33) % 100 < 2) {
    uint32_t start = static_cast<uint32_t>((rng_state_ >> 17) % n);
    for (uint32_t i = 0; i < n; ++i) {
      uint32_t v = var_at((start + i) % n);
      if (assign_[v] == kUndef) {
        return Lit::Neg(v);
      }
    }
  }
  // Highest-activity unassigned variable.
  double best = -1.0;
  uint32_t best_var = 0;
  bool found = false;
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t v = var_at(i);
    if (assign_[v] == kUndef && activity_[v] > best) {
      best = activity_[v];
      best_var = v;
      found = true;
    }
  }
  if (!found) {
    return Lit{0xffffffffu};
  }
  return Lit::Neg(best_var);  // Negative-first polarity, as in MiniSat.
}

uint64_t SatSolver::Luby(uint64_t i) {
  // luby(i) for i >= 1: if i == 2^k - 1 the value is 2^(k-1); otherwise
  // recurse on i - (2^(k-1) - 1) where 2^(k-1) - 1 < i < 2^k - 1.
  uint64_t x = i + 1;
  for (;;) {
    uint64_t k = 1;
    while ((uint64_t{1} << k) - 1 < x) {
      ++k;
    }
    if ((uint64_t{1} << k) - 1 == x) {
      return uint64_t{1} << (k - 1);
    }
    x -= (uint64_t{1} << (k - 1)) - 1;
  }
}

SatResult SatSolver::Solve(int64_t max_conflicts) {
  return SolveAssuming({}, {}, max_conflicts);
}

SatResult SatSolver::SolveAssuming(const std::vector<Lit>& assumptions,
                                   const std::vector<uint32_t>& decision_scope,
                                   int64_t max_conflicts) {
  const std::vector<uint32_t>* scope =
      decision_scope.empty() ? nullptr : &decision_scope;
  if (unsat_) {
    return SatResult::kUnsat;
  }
  Backtrack(0);
  if (Propagate() != kNoReason) {
    unsat_ = true;
    return SatResult::kUnsat;
  }

  uint64_t restart_count = 0;
  uint64_t conflicts_until_restart = 64 * Luby(restart_count);
  uint64_t conflicts_this_restart = 0;
  int64_t total_conflicts = 0;

  for (;;) {
    uint32_t conflict = Propagate();
    if (conflict != kNoReason) {
      ++stats_.conflicts;
      ++conflicts_this_restart;
      ++total_conflicts;
      if (trail_lim_.empty()) {
        unsat_ = true;  // Conflict at level 0: unsat regardless of assumptions.
        return SatResult::kUnsat;
      }
      std::vector<Lit> learnt;
      uint32_t backtrack_level = 0;
      Analyze(conflict, &learnt, &backtrack_level);
      Backtrack(backtrack_level);
      if (learnt.size() == 1) {
        Backtrack(0);
        if (LitValue(learnt[0]) == kFalse) {
          unsat_ = true;  // Learned unit contradicts the top level.
          return SatResult::kUnsat;
        }
        if (LitValue(learnt[0]) == kUndef) {
          Enqueue(learnt[0], kNoReason);
        }
      } else {
        clauses_.push_back(Clause{std::move(learnt), true});
        ++stats_.learned_clauses;
        uint32_t ci = static_cast<uint32_t>(clauses_.size() - 1);
        AttachClause(ci);
        if (LitValue(clauses_[ci].lits[0]) == kUndef) {
          Enqueue(clauses_[ci].lits[0], ci);
        }
      }
      DecayActivities();
      if (max_conflicts >= 0 && total_conflicts >= max_conflicts) {
        return SatResult::kUnknown;
      }
      if (conflicts_this_restart >= conflicts_until_restart) {
        ++stats_.restarts;
        ++restart_count;
        conflicts_this_restart = 0;
        conflicts_until_restart = 64 * Luby(restart_count);
        Backtrack(0);
      }
      continue;
    }

    // Establish assumption decisions first (restarts cancel them, so this
    // runs every iteration): an already-true assumption gets an empty
    // decision level as a placeholder, an already-false one means the
    // instance is unsat under these assumptions, an unassigned one becomes
    // the next decision.
    Lit next{0xffffffffu};
    while (trail_lim_.size() < assumptions.size()) {
      Lit a = assumptions[trail_lim_.size()];
      int8_t v = LitValue(a);
      if (v == kTrue) {
        trail_lim_.push_back(static_cast<uint32_t>(trail_.size()));
      } else if (v == kFalse) {
        return SatResult::kUnsat;  // Unsat under the assumptions only.
      } else {
        next = a;
        break;
      }
    }
    if (next.code == 0xffffffffu) {
      next = PickBranchLit(scope);
      if (next.code == 0xffffffffu) {
        return SatResult::kSat;  // Every (in-scope) variable assigned.
      }
      ++stats_.decisions;
    }
    trail_lim_.push_back(static_cast<uint32_t>(trail_.size()));
    Enqueue(next, kNoReason);
  }
}

}  // namespace esd::solver

// ESD solver stage 0: interval value-range discharge.
//
// Before a constraint component reaches the bit-blaster, try to decide it
// with interval reasoning over the expression DAG:
//
//   1. Refine: constraints of the shape eq(v, C), ult/ule(v, C) (either
//      operand order) narrow the range of variable v. A contradictory
//      narrowing (empty intersection) decides the component UNSAT.
//   2. Refute: every constraint is interval-evaluated bottom-up over the
//      DAG under the refined variable ranges. A constraint whose result
//      range is exactly [0,0] can never be true — the component is UNSAT.
//   3. Witness: the refined ranges suggest a concrete point (each refined
//      variable at its lower bound, unrefined variables at 0). If that
//      assignment concretely satisfies every constraint, the component is
//      SAT with the assignment as a complete model.
//
// The stage is sound in both directions (an interval result always contains
// the concrete result; a witness is checked by exact evaluation) and cheap:
// two linear passes over the DAG, no search. It targets the dominant guard
// shapes in ESD workloads — negated equality chains like
// not(eq(mul(x, y), K)), true at the zero point, and pinned re-queries
// eq(v, C) — which otherwise cost a SAT call each.
#ifndef ESD_SRC_SOLVER_RANGE_H_
#define ESD_SRC_SOLVER_RANGE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/solver/expr.h"

namespace esd::solver {

struct RangeResult {
  enum class Outcome {
    kUnknown,  // Intervals could not decide; fall through to SAT.
    kUnsat,    // Some constraint is provably always-false.
    kSat,      // `witness` concretely satisfies every constraint.
  };
  Outcome outcome = Outcome::kUnknown;
  // Complete model for the component's variables (only when kSat).
  std::map<uint64_t, uint64_t> witness;
};

// Attempts to decide the conjunction of `constraints` (one independence
// component) by the three interval steps above.
RangeResult TryRangeDischarge(const std::vector<ExprRef>& constraints);

}  // namespace esd::solver

#endif  // ESD_SRC_SOLVER_RANGE_H_

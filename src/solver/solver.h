// ESD solver: the facade used by the symbolic-execution engine.
//
// Answers satisfiability and implication queries over path constraints and
// produces concrete models (the program inputs ESD reports). Mirrors the
// role STP plays under KLEE in the paper's prototype.
//
// Queries run through a five-stage incremental pipeline (each stage
// individually gated by SolverOptions, all on by default):
//
//   0. range       — interval value-range discharge (range.h): per
//                    component, after the caches miss, refine variable
//                    ranges from eq/ult/ule-vs-constant conjuncts, refute
//                    constraints whose interval is provably false, and
//                    probe the refined point as a concrete witness. Guard
//                    chains decided here never reach bit-blasting.
//   1. rewrite     — canonicalization (rewrite.h): syntactic variants of
//                    the same predicate hash equal; trivially-true
//                    constraints vanish before any further work.
//   2. slice       — the constraint set is partitioned into connected
//                    components over shared symbolic variables (KLEE-style
//                    independence); each component is solved and cached on
//                    its own, so unrelated path constraints no longer
//                    perturb cache keys.
//   3. cache       — a counterexample cache (the last model, re-checked by
//                    cheap evaluation), a bounded per-solver query cache,
//                    and optionally a shared portfolio cache
//                    (query_cache.h) consulted by every `--jobs N` worker.
//   4. incremental — cache misses hit a persistent SatSolver + BitBlaster
//                    session: constraints become assumption literals
//                    (SatSolver::SolveAssuming), so learned clauses and
//                    variable activity survive across queries and shared
//                    subtrees are bit-blasted once per search, not once per
//                    query.
#ifndef ESD_SRC_SOLVER_SOLVER_H_
#define ESD_SRC_SOLVER_SOLVER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/solver/expr.h"
#include "src/solver/rewrite.h"
#include "src/solver/sat.h"

namespace esd::solver {

class SharedSolverCache;  // query_cache.h

// A satisfying assignment: symbolic-variable id -> concrete value. Variables
// absent from the map are unconstrained (any value works; use 0).
struct Model {
  std::map<uint64_t, uint64_t> values;
  // Names for reporting: id -> input name (filled from the vars seen).
  std::map<uint64_t, std::string> names;

  uint64_t ValueOf(uint64_t var_id) const {
    auto it = values.find(var_id);
    return it == values.end() ? 0 : it->second;
  }
};

// Gates for the pipeline stages above. The defaults are the fast path;
// the switches exist for the bench_solver ablation and esdsynth's
// --no-solver-* flags.
struct SolverOptions {
  bool rewrite = true;      // Stage 1: canonicalizing rewriter.
  bool slice = true;        // Stage 2: independence partitioning.
  bool range = true;        // Stage 0: interval value-range discharge.
  bool incremental = true;  // Stage 4: assumption-based SAT session.
  // Stage 3, portfolio only: cache shared across workers (not owned).
  SharedSolverCache* shared_cache = nullptr;
};

class ConstraintSolver {
 public:
  ConstraintSolver();
  explicit ConstraintSolver(const SolverOptions& options);
  ~ConstraintSolver();

  // Is the conjunction of `constraints` satisfiable? Fills `model` (may be
  // null) on success.
  bool IsSatisfiable(const std::vector<ExprRef>& constraints, Model* model = nullptr);

  // May `cond` be true/false given `constraints`?
  bool MayBeTrue(const std::vector<ExprRef>& constraints, const ExprRef& cond);
  bool MayBeFalse(const std::vector<ExprRef>& constraints, const ExprRef& cond);
  // Is `cond` implied by `constraints`?
  bool MustBeTrue(const std::vector<ExprRef>& constraints, const ExprRef& cond);

  // Upper bound on query-cache entries. A long search issues millions of
  // distinct queries; an unbounded cache grows monotonically for the whole
  // run (and, with one solver per portfolio worker, once per worker). At
  // the cap the oldest entry is evicted FIFO — recent queries are the ones
  // the counterexample cache misses and the search re-asks.
  static constexpr size_t kQueryCacheCap = 1 << 16;

  // Incremental-session bound: past this many accumulated clauses the
  // persistent SatSolver/BitBlaster session is discarded and rebuilt lazily
  // (learned clauses are an accelerator, not state the answers depend on).
  static constexpr size_t kSessionClauseCap = 1 << 20;

  struct Stats {
    uint64_t queries = 0;
    uint64_t cache_hits = 0;
    uint64_t cex_hits = 0;  // Counterexample-cache fast-path hits.
    uint64_t sat_calls = 0;
    uint64_t sliced_constraints = 0;  // Dropped by independence slicing.
    uint64_t cache_evictions = 0;     // FIFO evictions at kQueryCacheCap.
    // ---- Pipeline counters ----
    uint64_t rewrites = 0;         // Constraints changed by the rewriter.
    uint64_t components = 0;       // Independent components processed.
    // Range stage (0): components that reached it / decided by it. The
    // bench_passes gate asserts range_discharged / range_checked >= 0.30
    // on the guard-heavy arithmetic workloads.
    uint64_t range_checked = 0;     // Components interval-analyzed.
    uint64_t range_discharged = 0;  // Decided without a SAT call (either way).
    uint64_t range_unsat = 0;       // Of those, refuted as always-false.
    uint64_t shared_hits = 0;      // Cross-worker shared-cache hits.
    uint64_t session_resets = 0;   // Incremental sessions discarded at cap.
    // ---- Underlying SAT effort (accumulated across Solve calls) ----
    uint64_t sat_conflicts = 0;
    uint64_t sat_decisions = 0;
    uint64_t sat_propagations = 0;
    uint64_t sat_learned = 0;

    // Sums `other` into this (portfolio-wide merging).
    void Accumulate(const Stats& other);
  };
  const Stats& stats() const { return stats_; }

  // Current query-cache occupancy (always <= kQueryCacheCap).
  size_t query_cache_size() const { return query_cache_.size(); }

  // KLEE-style constraint independence: the subset of `constraints` that
  // transitively shares symbolic variables with `cond`. For branch
  // feasibility queries the other constraints are irrelevant — they are
  // satisfiable by path-consistency — so only the related slice is solved.
  static std::vector<ExprRef> IndependentSlice(const std::vector<ExprRef>& constraints,
                                               const ExprRef& cond);

  // Partitions `constraints` into connected components over shared symbolic
  // variables: two constraints land in one component iff they are linked by
  // a chain of common variables. Components are independently satisfiable,
  // so the conjunction is SAT iff every component is (stage 2 above).
  static std::vector<std::vector<ExprRef>> PartitionIndependent(
      const std::vector<ExprRef>& constraints);

 private:
  struct SatSession;  // Persistent SatSolver + BitBlaster (solver.cc).

  // Solves one independent component, appending its values to `model` when
  // non-null. Routes through the incremental session or a one-shot solver
  // per options_.incremental.
  bool SolveComponent(const std::vector<ExprRef>& constraints, Model* model);

  size_t HashQuery(const std::vector<ExprRef>& constraints) const;

  void CacheInsert(size_t key, bool sat);

  SolverOptions options_;
  std::unordered_map<size_t, bool> query_cache_;
  std::deque<size_t> query_order_;  // Insertion order, for FIFO eviction.
  std::optional<Model> last_model_;
  std::unique_ptr<SatSession> session_;
  Rewriter rewriter_;
  Stats stats_;
};

}  // namespace esd::solver

#endif  // ESD_SRC_SOLVER_SOLVER_H_

// ESD solver: the facade used by the symbolic-execution engine.
//
// Answers satisfiability and implication queries over path constraints and
// produces concrete models (the program inputs ESD reports). Mirrors the
// role STP plays under KLEE in the paper's prototype. Two layers keep the
// common path fast, as in KLEE:
//   1. a counterexample cache: the model from the last kSat answer for a
//      prefix set is re-checked by cheap evaluation before any SAT call;
//   2. a query cache keyed on the structural hash of the constraint set.
#ifndef ESD_SRC_SOLVER_SOLVER_H_
#define ESD_SRC_SOLVER_SOLVER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/solver/expr.h"

namespace esd::solver {

// A satisfying assignment: symbolic-variable id -> concrete value. Variables
// absent from the map are unconstrained (any value works; use 0).
struct Model {
  std::map<uint64_t, uint64_t> values;
  // Names for reporting: id -> input name (filled from the vars seen).
  std::map<uint64_t, std::string> names;

  uint64_t ValueOf(uint64_t var_id) const {
    auto it = values.find(var_id);
    return it == values.end() ? 0 : it->second;
  }
};

class ConstraintSolver {
 public:
  ConstraintSolver() = default;

  // Is the conjunction of `constraints` satisfiable? Fills `model` (may be
  // null) on success.
  bool IsSatisfiable(const std::vector<ExprRef>& constraints, Model* model = nullptr);

  // May `cond` be true/false given `constraints`?
  bool MayBeTrue(const std::vector<ExprRef>& constraints, const ExprRef& cond);
  bool MayBeFalse(const std::vector<ExprRef>& constraints, const ExprRef& cond);
  // Is `cond` implied by `constraints`?
  bool MustBeTrue(const std::vector<ExprRef>& constraints, const ExprRef& cond);

  // Upper bound on query-cache entries. A long search issues millions of
  // distinct queries; an unbounded cache grows monotonically for the whole
  // run (and, with one solver per portfolio worker, once per worker). At
  // the cap the oldest entry is evicted FIFO — recent queries are the ones
  // the counterexample cache misses and the search re-asks.
  static constexpr size_t kQueryCacheCap = 1 << 16;

  struct Stats {
    uint64_t queries = 0;
    uint64_t cache_hits = 0;
    uint64_t cex_hits = 0;  // Counterexample-cache fast-path hits.
    uint64_t sat_calls = 0;
    uint64_t sliced_constraints = 0;  // Dropped by independence slicing.
    uint64_t cache_evictions = 0;     // FIFO evictions at kQueryCacheCap.
  };
  const Stats& stats() const { return stats_; }

  // Current query-cache occupancy (always <= kQueryCacheCap).
  size_t query_cache_size() const { return query_cache_.size(); }

  // KLEE-style constraint independence: the subset of `constraints` that
  // transitively shares symbolic variables with `cond`. For branch
  // feasibility queries the other constraints are irrelevant — they are
  // satisfiable by path-consistency — so only the related slice is solved.
  static std::vector<ExprRef> IndependentSlice(const std::vector<ExprRef>& constraints,
                                               const ExprRef& cond);

 private:
  bool SolveUncached(const std::vector<ExprRef>& constraints, Model* model);

  size_t HashQuery(const std::vector<ExprRef>& constraints) const;

  void CacheInsert(size_t key, bool sat);

  std::unordered_map<size_t, bool> query_cache_;
  std::deque<size_t> query_order_;  // Insertion order, for FIFO eviction.
  std::optional<Model> last_model_;
  Stats stats_;
};

}  // namespace esd::solver

#endif  // ESD_SRC_SOLVER_SOLVER_H_

#include "src/solver/expr.h"

#include <array>
#include <cassert>
#include <functional>
#include <set>
#include <sstream>

#include "src/core/arena.h"
#include "src/core/event_counters.h"

namespace esd::solver {
namespace {

size_t HashCombine(size_t seed, size_t v) {
  return seed ^ (v + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2));
}

int64_t ToSigned(uint64_t v, uint32_t width) {
  if (width < 64 && (v >> (width - 1)) & 1) {
    return static_cast<int64_t>(v | ~WidthMask(width));
  }
  return static_cast<int64_t>(v);
}

uint64_t FoldBinary(ExprKind kind, uint32_t width, uint64_t a, uint64_t b) {
  uint64_t mask = WidthMask(width);
  switch (kind) {
    case ExprKind::kAdd:
      return (a + b) & mask;
    case ExprKind::kSub:
      return (a - b) & mask;
    case ExprKind::kMul:
      return (a * b) & mask;
    case ExprKind::kUDiv:
      return b == 0 ? mask : (a / b) & mask;
    case ExprKind::kURem:
      return b == 0 ? a : (a % b) & mask;
    case ExprKind::kSDiv: {
      if (b == 0) {
        return mask;
      }
      int64_t sa = ToSigned(a, width);
      int64_t sb = ToSigned(b, width);
      if (sb == -1 && sa == ToSigned(uint64_t{1} << (width - 1), width)) {
        return a;  // Overflow case: INT_MIN / -1 wraps.
      }
      return static_cast<uint64_t>(sa / sb) & mask;
    }
    case ExprKind::kSRem: {
      if (b == 0) {
        return a;
      }
      int64_t sa = ToSigned(a, width);
      int64_t sb = ToSigned(b, width);
      if (sb == -1) {
        return 0;
      }
      return static_cast<uint64_t>(sa % sb) & mask;
    }
    case ExprKind::kAnd:
      return a & b;
    case ExprKind::kOr:
      return a | b;
    case ExprKind::kXor:
      return a ^ b;
    case ExprKind::kShl:
      return b >= width ? 0 : (a << b) & mask;
    case ExprKind::kLShr:
      return b >= width ? 0 : (a >> b);
    case ExprKind::kAShr: {
      if (b >= width) {
        return (a >> (width - 1)) & 1 ? mask : 0;
      }
      int64_t sa = ToSigned(a, width);
      return static_cast<uint64_t>(sa >> b) & mask;
    }
    case ExprKind::kEq:
      return a == b;
    case ExprKind::kUlt:
      return a < b;
    case ExprKind::kUle:
      return a <= b;
    case ExprKind::kSlt:
      return ToSigned(a, width) < ToSigned(b, width);
    case ExprKind::kSle:
      return ToSigned(a, width) <= ToSigned(b, width);
    default:
      assert(false && "not a foldable binary kind");
      return 0;
  }
}

bool IsCommutative(ExprKind kind) {
  switch (kind) {
    case ExprKind::kAdd:
    case ExprKind::kMul:
    case ExprKind::kAnd:
    case ExprKind::kOr:
    case ExprKind::kXor:
    case ExprKind::kEq:
      return true;
    default:
      return false;
  }
}

ExprRef MakeNode(ExprKind kind, uint32_t width, uint64_t aux, std::vector<ExprRef> kids,
                 std::string name = {}) {
  CountEvent(&EventCounters::expr_allocs);
  return std::allocate_shared<Expr>(core::ArenaAllocator<Expr>(), kind, width, aux,
                                    std::move(kids), std::move(name));
}

// Generic simplifying binary constructor for arithmetic/bitwise kinds
// (result width = operand width). Comparisons handled separately.
ExprRef MakeBinary(ExprKind kind, ExprRef a, ExprRef b) {
  assert(a->width() == b->width());
  uint32_t w = a->width();
  if (a->IsConst() && b->IsConst()) {
    return MakeConst(kind == ExprKind::kEq || kind == ExprKind::kUlt ||
                             kind == ExprKind::kUle || kind == ExprKind::kSlt ||
                             kind == ExprKind::kSle
                         ? 1
                         : w,
                     FoldBinary(kind, w, a->aux(), b->aux()));
  }
  // Canonicalize: constants on the right for commutative operators.
  if (IsCommutative(kind) && a->IsConst()) {
    std::swap(a, b);
  }
  if (b->IsConst()) {
    uint64_t c = b->aux();
    uint64_t mask = WidthMask(w);
    switch (kind) {
      case ExprKind::kAdd:
      case ExprKind::kSub:
      case ExprKind::kXor:
      case ExprKind::kOr:
      case ExprKind::kShl:
      case ExprKind::kLShr:
      case ExprKind::kAShr:
        if (c == 0) {
          return a;
        }
        break;
      case ExprKind::kMul:
        if (c == 0) {
          return b;
        }
        if (c == 1) {
          return a;
        }
        break;
      case ExprKind::kAnd:
        if (c == 0) {
          return b;
        }
        if (c == mask) {
          return a;
        }
        break;
      case ExprKind::kUDiv:
        if (c == 1) {
          return a;
        }
        break;
      default:
        break;
    }
  }
  if (Expr::Equal(a, b)) {
    switch (kind) {
      case ExprKind::kSub:
      case ExprKind::kXor:
        return MakeConst(w, 0);
      case ExprKind::kAnd:
      case ExprKind::kOr:
        return a;
      case ExprKind::kEq:
      case ExprKind::kUle:
      case ExprKind::kSle:
        return MakeTrue();
      case ExprKind::kUlt:
      case ExprKind::kSlt:
        return MakeFalse();
      default:
        break;
    }
  }
  uint32_t result_width = w;
  switch (kind) {
    case ExprKind::kEq:
    case ExprKind::kUlt:
    case ExprKind::kUle:
    case ExprKind::kSlt:
    case ExprKind::kSle:
      result_width = 1;
      break;
    default:
      break;
  }
  return MakeNode(kind, result_width, 0, {std::move(a), std::move(b)});
}

}  // namespace

Expr::Expr(ExprKind kind, uint32_t width, uint64_t aux, std::vector<ExprRef> kids,
           std::string name)
    : kind_(kind), width_(width), aux_(aux), kids_(std::move(kids)),
      name_(std::move(name)) {
  assert(width_ >= 1 && width_ <= 64);
  size_t h = HashCombine(static_cast<size_t>(kind_), width_);
  h = HashCombine(h, static_cast<size_t>(aux_));
  for (const ExprRef& k : kids_) {
    h = HashCombine(h, k->hash());
  }
  hash_ = h;
}

bool Expr::Equal(const ExprRef& a, const ExprRef& b) {
  if (a.get() == b.get()) {
    return true;
  }
  if (a->hash_ != b->hash_ || a->kind_ != b->kind_ || a->width_ != b->width_ ||
      a->aux_ != b->aux_ || a->kids_.size() != b->kids_.size()) {
    return false;
  }
  for (size_t i = 0; i < a->kids_.size(); ++i) {
    if (!Equal(a->kids_[i], b->kids_[i])) {
      return false;
    }
  }
  return true;
}

ExprRef MakeConst(uint32_t width, uint64_t value) {
  value &= WidthMask(width);
  // Constant nodes of the common widths and small values dominate Expr
  // construction (loop counters, flags, zero/one results), so they come
  // from a shared immutable table built once per process. Structural
  // hashing makes the cached node bit-identical to a fresh one; sharing
  // only raises refcounts. The build suppresses event counting so the
  // expr_allocs counter stays identical across repeated runs in one
  // process (the table exists before the first run ends either way).
  static constexpr uint32_t kCachedWidths[] = {1, 8, 16, 32, 64};
  static constexpr uint64_t kCachedValues = 256;
  int row = -1;
  switch (width) {
    case 1: row = 0; break;
    case 8: row = 1; break;
    case 16: row = 2; break;
    case 32: row = 3; break;
    case 64: row = 4; break;
    default: break;
  }
  if (row >= 0 && value < kCachedValues) {
    static const auto& cache = *[] {
      ScopedEventCounters mute(nullptr);
      auto* table = new std::array<std::array<ExprRef, kCachedValues>, 5>();
      for (int r = 0; r < 5; ++r) {
        for (uint64_t v = 0; v < kCachedValues; ++v) {
          if (v <= WidthMask(kCachedWidths[r])) {
            (*table)[r][v] = std::make_shared<Expr>(
                ExprKind::kConst, kCachedWidths[r], v, std::vector<ExprRef>{},
                std::string{});
          }
        }
      }
      return table;
    }();
    const ExprRef& cached = cache[row][value];
    if (cached != nullptr) {
      return cached;
    }
  }
  return MakeNode(ExprKind::kConst, width, value, {});
}

ExprRef MakeTrue() { return MakeConst(1, 1); }
ExprRef MakeFalse() { return MakeConst(1, 0); }
ExprRef MakeBool(bool v) { return MakeConst(1, v ? 1 : 0); }

ExprRef MakeVar(uint64_t id, uint32_t width, std::string name) {
  return MakeNode(ExprKind::kVar, width, id, {}, std::move(name));
}

ExprRef MakeAdd(ExprRef a, ExprRef b) { return MakeBinary(ExprKind::kAdd, a, b); }
ExprRef MakeSub(ExprRef a, ExprRef b) { return MakeBinary(ExprKind::kSub, a, b); }
ExprRef MakeMul(ExprRef a, ExprRef b) { return MakeBinary(ExprKind::kMul, a, b); }
ExprRef MakeUDiv(ExprRef a, ExprRef b) { return MakeBinary(ExprKind::kUDiv, a, b); }
ExprRef MakeSDiv(ExprRef a, ExprRef b) { return MakeBinary(ExprKind::kSDiv, a, b); }
ExprRef MakeURem(ExprRef a, ExprRef b) { return MakeBinary(ExprKind::kURem, a, b); }
ExprRef MakeSRem(ExprRef a, ExprRef b) { return MakeBinary(ExprKind::kSRem, a, b); }
ExprRef MakeAnd(ExprRef a, ExprRef b) { return MakeBinary(ExprKind::kAnd, a, b); }
ExprRef MakeOr(ExprRef a, ExprRef b) { return MakeBinary(ExprKind::kOr, a, b); }
ExprRef MakeXor(ExprRef a, ExprRef b) { return MakeBinary(ExprKind::kXor, a, b); }
ExprRef MakeShl(ExprRef a, ExprRef b) { return MakeBinary(ExprKind::kShl, a, b); }
ExprRef MakeLShr(ExprRef a, ExprRef b) { return MakeBinary(ExprKind::kLShr, a, b); }
ExprRef MakeAShr(ExprRef a, ExprRef b) { return MakeBinary(ExprKind::kAShr, a, b); }

ExprRef MakeNot(ExprRef a) {
  if (a->IsConst()) {
    return MakeConst(a->width(), ~a->aux());
  }
  if (a->kind() == ExprKind::kNot) {
    return a->kids()[0];
  }
  uint32_t w = a->width();  // Read before moving: argument order is unspecified.
  return MakeNode(ExprKind::kNot, w, 0, {std::move(a)});
}

ExprRef MakeEq(ExprRef a, ExprRef b) {
  // Boolean-specialize: (x == true) -> x, (x == false) -> !x.
  if (a->width() == 1) {
    if (a->IsConst()) {
      std::swap(a, b);
    }
    if (b->IsConst()) {
      return b->aux() ? a : MakeLogicalNot(a);
    }
  }
  return MakeBinary(ExprKind::kEq, a, b);
}

ExprRef MakeNe(ExprRef a, ExprRef b) { return MakeLogicalNot(MakeEq(a, b)); }
ExprRef MakeUlt(ExprRef a, ExprRef b) { return MakeBinary(ExprKind::kUlt, a, b); }
ExprRef MakeUle(ExprRef a, ExprRef b) { return MakeBinary(ExprKind::kUle, a, b); }
ExprRef MakeSlt(ExprRef a, ExprRef b) { return MakeBinary(ExprKind::kSlt, a, b); }
ExprRef MakeSle(ExprRef a, ExprRef b) { return MakeBinary(ExprKind::kSle, a, b); }

ExprRef MakeLogicalAnd(ExprRef a, ExprRef b) {
  assert(a->width() == 1 && b->width() == 1);
  if (a->IsFalse() || b->IsFalse()) {
    return MakeFalse();
  }
  if (a->IsTrue()) {
    return b;
  }
  if (b->IsTrue()) {
    return a;
  }
  return MakeAnd(std::move(a), std::move(b));
}

ExprRef MakeLogicalOr(ExprRef a, ExprRef b) {
  assert(a->width() == 1 && b->width() == 1);
  if (a->IsTrue() || b->IsTrue()) {
    return MakeTrue();
  }
  if (a->IsFalse()) {
    return b;
  }
  if (b->IsFalse()) {
    return a;
  }
  return MakeOr(std::move(a), std::move(b));
}

ExprRef MakeLogicalNot(ExprRef a) {
  assert(a->width() == 1);
  return MakeNot(std::move(a));
}

ExprRef MakeConcat(ExprRef high, ExprRef low) {
  uint32_t w = high->width() + low->width();
  assert(w <= 64);
  if (high->IsConst() && low->IsConst()) {
    return MakeConst(w, (high->aux() << low->width()) | low->aux());
  }
  // concat(0, x) == zext(x).
  if (high->IsConstValue(0)) {
    return MakeZExt(low, w);
  }
  return MakeNode(ExprKind::kConcat, w, 0, {std::move(high), std::move(low)});
}

ExprRef MakeExtract(ExprRef a, uint32_t low_bit, uint32_t width) {
  assert(low_bit + width <= a->width());
  if (width == a->width()) {
    return a;
  }
  if (a->IsConst()) {
    return MakeConst(width, a->aux() >> low_bit);
  }
  // extract(extract(x)) composes.
  if (a->kind() == ExprKind::kExtract) {
    return MakeExtract(a->kids()[0], static_cast<uint32_t>(a->aux()) + low_bit, width);
  }
  // extract of a concat that falls entirely in one half.
  if (a->kind() == ExprKind::kConcat) {
    const ExprRef& high = a->kids()[0];
    const ExprRef& low = a->kids()[1];
    if (low_bit + width <= low->width()) {
      return MakeExtract(low, low_bit, width);
    }
    if (low_bit >= low->width()) {
      return MakeExtract(high, low_bit - low->width(), width);
    }
  }
  // extract of a zext that falls entirely in the original value or the zeros.
  if (a->kind() == ExprKind::kZExt) {
    const ExprRef& inner = a->kids()[0];
    if (low_bit + width <= inner->width()) {
      return MakeExtract(inner, low_bit, width);
    }
    if (low_bit >= inner->width()) {
      return MakeConst(width, 0);
    }
  }
  return MakeNode(ExprKind::kExtract, width, low_bit, {std::move(a)});
}

ExprRef MakeZExt(ExprRef a, uint32_t width) {
  assert(width >= a->width());
  if (width == a->width()) {
    return a;
  }
  if (a->IsConst()) {
    return MakeConst(width, a->aux());
  }
  if (a->kind() == ExprKind::kZExt) {
    return MakeZExt(a->kids()[0], width);
  }
  return MakeNode(ExprKind::kZExt, width, 0, {std::move(a)});
}

ExprRef MakeSExt(ExprRef a, uint32_t width) {
  assert(width >= a->width());
  if (width == a->width()) {
    return a;
  }
  if (a->IsConst()) {
    uint64_t v = a->aux();
    if ((v >> (a->width() - 1)) & 1) {
      v |= ~WidthMask(a->width());
    }
    return MakeConst(width, v);
  }
  return MakeNode(ExprKind::kSExt, width, 0, {std::move(a)});
}

ExprRef MakeIte(ExprRef cond, ExprRef then_e, ExprRef else_e) {
  assert(cond->width() == 1);
  assert(then_e->width() == else_e->width());
  if (cond->IsTrue()) {
    return then_e;
  }
  if (cond->IsFalse()) {
    return else_e;
  }
  if (Expr::Equal(then_e, else_e)) {
    return then_e;
  }
  // ite(c, 1, 0) on booleans is just c.
  if (then_e->width() == 1 && then_e->IsTrue() && else_e->IsFalse()) {
    return cond;
  }
  if (then_e->width() == 1 && then_e->IsFalse() && else_e->IsTrue()) {
    return MakeLogicalNot(cond);
  }
  uint32_t w = then_e->width();  // Read before moving.
  return MakeNode(ExprKind::kIte, w, 0,
                  {std::move(cond), std::move(then_e), std::move(else_e)});
}

uint64_t EvalExpr(const ExprRef& e, const std::map<uint64_t, uint64_t>& assignment) {
  switch (e->kind()) {
    case ExprKind::kConst:
      return e->aux();
    case ExprKind::kVar: {
      auto it = assignment.find(e->aux());
      uint64_t v = it == assignment.end() ? 0 : it->second;
      return v & WidthMask(e->width());
    }
    case ExprKind::kNot:
      return ~EvalExpr(e->kids()[0], assignment) & WidthMask(e->width());
    case ExprKind::kConcat: {
      uint64_t hi = EvalExpr(e->kids()[0], assignment);
      uint64_t lo = EvalExpr(e->kids()[1], assignment);
      return ((hi << e->kids()[1]->width()) | lo) & WidthMask(e->width());
    }
    case ExprKind::kExtract:
      return (EvalExpr(e->kids()[0], assignment) >> e->aux()) & WidthMask(e->width());
    case ExprKind::kZExt:
      return EvalExpr(e->kids()[0], assignment);
    case ExprKind::kSExt: {
      uint64_t v = EvalExpr(e->kids()[0], assignment);
      uint32_t iw = e->kids()[0]->width();
      if ((v >> (iw - 1)) & 1) {
        v |= ~WidthMask(iw);
      }
      return v & WidthMask(e->width());
    }
    case ExprKind::kIte:
      return EvalExpr(e->kids()[0], assignment)
                 ? EvalExpr(e->kids()[1], assignment)
                 : EvalExpr(e->kids()[2], assignment);
    default: {
      uint64_t a = EvalExpr(e->kids()[0], assignment);
      uint64_t b = EvalExpr(e->kids()[1], assignment);
      uint32_t w = e->kids()[0]->width();
      return FoldBinary(e->kind(), w, a, b);
    }
  }
}

namespace {

void CollectVarsWalk(const ExprRef& e, std::set<const Expr*>* seen,
                     std::map<uint64_t, ExprRef>* vars) {
  if (!seen->insert(e.get()).second) {
    return;  // Shared subtree: already walked once.
  }
  if (e->kind() == ExprKind::kVar) {
    vars->emplace(e->aux(), e);
    return;
  }
  for (const ExprRef& k : e->kids()) {
    CollectVarsWalk(k, seen, vars);
  }
}

}  // namespace

void CollectVars(const ExprRef& e, std::map<uint64_t, ExprRef>* vars) {
  // Walk each node once by identity: expressions are DAGs, and a path-count
  // traversal is exponential on heavily shared ones.
  std::set<const Expr*> seen;
  CollectVarsWalk(e, &seen, vars);
}

size_t ExprSize(const ExprRef& e) {
  std::set<const Expr*> seen;
  std::function<void(const ExprRef&)> walk = [&](const ExprRef& n) {
    if (!seen.insert(n.get()).second) {
      return;
    }
    for (const ExprRef& k : n->kids()) {
      walk(k);
    }
  };
  walk(e);
  return seen.size();
}

std::string ExprToString(const ExprRef& e) {
  static const char* kNames[] = {
      "const", "var",  "add",  "sub",  "mul",  "udiv",    "sdiv",    "urem",
      "srem",  "and",  "or",   "xor",  "shl",  "lshr",    "ashr",    "not",
      "eq",    "ult",  "ule",  "slt",  "sle",  "concat",  "extract", "zext",
      "sext",  "ite"};
  std::ostringstream os;
  switch (e->kind()) {
    case ExprKind::kConst:
      os << e->aux() << ":" << e->width();
      break;
    case ExprKind::kVar:
      os << (e->name().empty() ? "v" + std::to_string(e->aux()) : e->name()) << ":"
         << e->width();
      break;
    default:
      os << "(" << kNames[static_cast<int>(e->kind())];
      if (e->kind() == ExprKind::kExtract) {
        os << "@" << e->aux();
      }
      for (const ExprRef& k : e->kids()) {
        os << " " << ExprToString(k);
      }
      os << ")";
      break;
  }
  return os.str();
}

}  // namespace esd::solver

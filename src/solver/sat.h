// ESD solver: a CDCL SAT solver.
//
// A compact conflict-driven clause-learning solver in the MiniSat lineage:
// two-watched-literal propagation, VSIDS-style activity ordering, first-UIP
// conflict analysis, and Luby restarts. It decides the CNF produced by the
// bit-blaster (see bitblast.h).
//
// The solver is incremental: clauses may be added between Solve() calls,
// and SolveAssuming() decides the instance under a set of assumption
// literals without committing them — learned clauses and variable activity
// persist across calls, so repeated related queries (the constraint
// solver's workload) get cheaper over time instead of re-searching from
// scratch.
#ifndef ESD_SRC_SOLVER_SAT_H_
#define ESD_SRC_SOLVER_SAT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace esd::solver {

// A literal: variable index v (0-based) with sign. Encoded as 2*v (positive)
// or 2*v+1 (negated).
struct Lit {
  uint32_t code = 0;

  static Lit Pos(uint32_t var) { return Lit{var << 1}; }
  static Lit Neg(uint32_t var) { return Lit{(var << 1) | 1}; }
  uint32_t var() const { return code >> 1; }
  bool sign() const { return code & 1; }  // true = negated
  Lit operator~() const { return Lit{code ^ 1}; }
  friend bool operator==(const Lit&, const Lit&) = default;
};

enum class SatResult { kSat, kUnsat, kUnknown };

class SatSolver {
 public:
  SatSolver();

  // Allocates a fresh variable; returns its index.
  uint32_t NewVar();
  uint32_t NumVars() const { return static_cast<uint32_t>(assign_.size()); }

  // Adds a clause (disjunction of literals). An empty clause makes the
  // instance trivially unsatisfiable.
  void AddClause(std::vector<Lit> lits);
  void AddUnit(Lit a) { AddClause({a}); }
  void AddBinary(Lit a, Lit b) { AddClause({a, b}); }
  void AddTernary(Lit a, Lit b, Lit c) { AddClause({a, b, c}); }

  // Decides the instance. `max_conflicts` < 0 means no limit; on limit the
  // result is kUnknown.
  SatResult Solve(int64_t max_conflicts = -1);

  // Decides the instance under `assumptions` (each treated as a decision
  // before any free decision, MiniSat-style). kUnsat means "unsatisfiable
  // under these assumptions" — the clause database is untouched, and a
  // later call with different assumptions may well be kSat. Learned clauses
  // never resolve on decisions, so everything learned remains valid for
  // future calls. Duplicate assumptions are fine; contradictory ones yield
  // kUnsat.
  //
  // `decision_scope`, when non-empty, restricts free decisions to those
  // variables; the solver answers kSat as soon as every scope variable is
  // assigned and propagation is conflict-free. This is how an incremental
  // session avoids re-assigning the thousands of variables accumulated by
  // past queries: with the scope set to the *circuit input* variables of
  // the assumed constraints, every in-cone gate output is forced by unit
  // propagation once its inputs are assigned (Tseitin gate clauses are
  // propagation-complete under a full input assignment), and every
  // out-of-cone clause is definitional — a gate-consistent extension always
  // exists and satisfies all learned clauses, which are implied by the gate
  // clauses alone. An empty scope means "all variables" (classic behavior:
  // the model covers everything).
  SatResult SolveAssuming(const std::vector<Lit>& assumptions,
                          const std::vector<uint32_t>& decision_scope = {},
                          int64_t max_conflicts = -1);

  size_t NumClauses() const { return clauses_.size(); }

  // Valid after Solve() returned kSat.
  bool ValueOf(uint32_t var) const { return assign_[var] == kTrue; }

  struct Stats {
    uint64_t conflicts = 0;
    uint64_t decisions = 0;
    uint64_t propagations = 0;
    uint64_t restarts = 0;
    uint64_t learned_clauses = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  static constexpr int8_t kUndef = 0;
  static constexpr int8_t kTrue = 1;
  static constexpr int8_t kFalse = -1;
  static constexpr uint32_t kNoReason = 0xffffffffu;

  struct Clause {
    std::vector<Lit> lits;
    bool learned = false;
  };

  int8_t LitValue(Lit l) const {
    int8_t v = assign_[l.var()];
    return l.sign() ? static_cast<int8_t>(-v) : v;
  }

  void Enqueue(Lit l, uint32_t reason);
  // Returns the index of a conflicting clause, or kNoReason if none.
  uint32_t Propagate();
  void Analyze(uint32_t conflict, std::vector<Lit>* learnt, uint32_t* backtrack_level);
  void Backtrack(uint32_t level);
  void BumpVar(uint32_t var);
  void DecayActivities();
  // Picks the next decision variable; `scope` null means all variables.
  Lit PickBranchLit(const std::vector<uint32_t>* scope);
  void AttachClause(uint32_t ci);
  static uint64_t Luby(uint64_t i);

  std::vector<Clause> clauses_;
  std::vector<std::vector<uint32_t>> watches_;  // Indexed by literal code.
  std::vector<int8_t> assign_;                  // Per-var tri-state.
  std::vector<uint32_t> level_;                 // Decision level per var.
  std::vector<uint32_t> reason_;                // Clause index or kNoReason.
  std::vector<Lit> trail_;
  std::vector<uint32_t> trail_lim_;             // Trail index per decision level.
  size_t propagate_head_ = 0;
  std::vector<double> activity_;
  double activity_inc_ = 1.0;
  std::vector<uint8_t> seen_;  // Scratch for Analyze().
  bool unsat_ = false;
  uint64_t rng_state_ = 0x853c49e6748fea9bull;
  Stats stats_;
};

}  // namespace esd::solver

#endif  // ESD_SRC_SOLVER_SAT_H_

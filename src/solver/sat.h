// ESD solver: a CDCL SAT solver.
//
// A compact conflict-driven clause-learning solver in the MiniSat lineage:
// two-watched-literal propagation, VSIDS-style activity ordering, first-UIP
// conflict analysis, and Luby restarts. It decides the CNF produced by the
// bit-blaster (see bitblast.h).
#ifndef ESD_SRC_SOLVER_SAT_H_
#define ESD_SRC_SOLVER_SAT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace esd::solver {

// A literal: variable index v (0-based) with sign. Encoded as 2*v (positive)
// or 2*v+1 (negated).
struct Lit {
  uint32_t code = 0;

  static Lit Pos(uint32_t var) { return Lit{var << 1}; }
  static Lit Neg(uint32_t var) { return Lit{(var << 1) | 1}; }
  uint32_t var() const { return code >> 1; }
  bool sign() const { return code & 1; }  // true = negated
  Lit operator~() const { return Lit{code ^ 1}; }
  friend bool operator==(const Lit&, const Lit&) = default;
};

enum class SatResult { kSat, kUnsat, kUnknown };

class SatSolver {
 public:
  SatSolver();

  // Allocates a fresh variable; returns its index.
  uint32_t NewVar();
  uint32_t NumVars() const { return static_cast<uint32_t>(assign_.size()); }

  // Adds a clause (disjunction of literals). An empty clause makes the
  // instance trivially unsatisfiable.
  void AddClause(std::vector<Lit> lits);
  void AddUnit(Lit a) { AddClause({a}); }
  void AddBinary(Lit a, Lit b) { AddClause({a, b}); }
  void AddTernary(Lit a, Lit b, Lit c) { AddClause({a, b, c}); }

  // Decides the instance. `max_conflicts` < 0 means no limit; on limit the
  // result is kUnknown. Queries are one-shot: callers encode "assumptions"
  // as unit clauses on a fresh solver.
  SatResult Solve(int64_t max_conflicts = -1);

  // Valid after Solve() returned kSat.
  bool ValueOf(uint32_t var) const { return assign_[var] == kTrue; }

  struct Stats {
    uint64_t conflicts = 0;
    uint64_t decisions = 0;
    uint64_t propagations = 0;
    uint64_t restarts = 0;
    uint64_t learned_clauses = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  static constexpr int8_t kUndef = 0;
  static constexpr int8_t kTrue = 1;
  static constexpr int8_t kFalse = -1;
  static constexpr uint32_t kNoReason = 0xffffffffu;

  struct Clause {
    std::vector<Lit> lits;
    bool learned = false;
  };

  int8_t LitValue(Lit l) const {
    int8_t v = assign_[l.var()];
    return l.sign() ? static_cast<int8_t>(-v) : v;
  }

  void Enqueue(Lit l, uint32_t reason);
  // Returns the index of a conflicting clause, or kNoReason if none.
  uint32_t Propagate();
  void Analyze(uint32_t conflict, std::vector<Lit>* learnt, uint32_t* backtrack_level);
  void Backtrack(uint32_t level);
  void BumpVar(uint32_t var);
  void DecayActivities();
  Lit PickBranchLit();
  void AttachClause(uint32_t ci);
  static uint64_t Luby(uint64_t i);

  std::vector<Clause> clauses_;
  std::vector<std::vector<uint32_t>> watches_;  // Indexed by literal code.
  std::vector<int8_t> assign_;                  // Per-var tri-state.
  std::vector<uint32_t> level_;                 // Decision level per var.
  std::vector<uint32_t> reason_;                // Clause index or kNoReason.
  std::vector<Lit> trail_;
  std::vector<uint32_t> trail_lim_;             // Trail index per decision level.
  size_t propagate_head_ = 0;
  std::vector<double> activity_;
  double activity_inc_ = 1.0;
  std::vector<uint8_t> seen_;  // Scratch for Analyze().
  bool unsat_ = false;
  uint64_t rng_state_ = 0x853c49e6748fea9bull;
  Stats stats_;
};

}  // namespace esd::solver

#endif  // ESD_SRC_SOLVER_SAT_H_

#include "src/solver/bitblast.h"

#include <cassert>

namespace esd::solver {

Lit BitBlaster::TrueLit() {
  if (!have_true_lit_) {
    true_lit_ = NewLit();
    sat_->AddUnit(true_lit_);
    have_true_lit_ = true;
  }
  return true_lit_;
}

Lit BitBlaster::GateAnd(Lit a, Lit b) {
  if (a == TrueLit()) {
    return b;
  }
  if (b == TrueLit()) {
    return a;
  }
  if (a == FalseLit() || b == FalseLit()) {
    return FalseLit();
  }
  if (a == b) {
    return a;
  }
  if (a == ~b) {
    return FalseLit();
  }
  Lit out = NewLit();
  sat_->AddBinary(~out, a);
  sat_->AddBinary(~out, b);
  sat_->AddTernary(out, ~a, ~b);
  return out;
}

Lit BitBlaster::GateOr(Lit a, Lit b) { return ~GateAnd(~a, ~b); }

Lit BitBlaster::GateXor(Lit a, Lit b) {
  if (a == FalseLit()) {
    return b;
  }
  if (b == FalseLit()) {
    return a;
  }
  if (a == TrueLit()) {
    return ~b;
  }
  if (b == TrueLit()) {
    return ~a;
  }
  if (a == b) {
    return FalseLit();
  }
  if (a == ~b) {
    return TrueLit();
  }
  Lit out = NewLit();
  sat_->AddTernary(~out, a, b);
  sat_->AddTernary(~out, ~a, ~b);
  sat_->AddTernary(out, ~a, b);
  sat_->AddTernary(out, a, ~b);
  return out;
}

Lit BitBlaster::GateMux(Lit sel, Lit t, Lit f) {
  if (sel == TrueLit()) {
    return t;
  }
  if (sel == FalseLit()) {
    return f;
  }
  if (t == f) {
    return t;
  }
  Lit out = NewLit();
  sat_->AddTernary(~sel, ~t, out);
  sat_->AddTernary(~sel, t, ~out);
  sat_->AddTernary(sel, ~f, out);
  sat_->AddTernary(sel, f, ~out);
  return out;
}

Lit BitBlaster::GateAndN(const std::vector<Lit>& xs) {
  Lit acc = TrueLit();
  for (Lit x : xs) {
    acc = GateAnd(acc, x);
  }
  return acc;
}

std::vector<Lit> BitBlaster::ConstBits(uint32_t width, uint64_t value) {
  std::vector<Lit> bits(width);
  for (uint32_t i = 0; i < width; ++i) {
    bits[i] = (value >> i) & 1 ? TrueLit() : FalseLit();
  }
  return bits;
}

std::vector<Lit> BitBlaster::Adder(const std::vector<Lit>& a, const std::vector<Lit>& b,
                                   Lit carry_in) {
  assert(a.size() == b.size());
  std::vector<Lit> sum(a.size());
  Lit carry = carry_in;
  for (size_t i = 0; i < a.size(); ++i) {
    Lit axb = GateXor(a[i], b[i]);
    sum[i] = GateXor(axb, carry);
    // carry_out = (a & b) | (carry & (a ^ b))
    carry = GateOr(GateAnd(a[i], b[i]), GateAnd(carry, axb));
  }
  return sum;
}

std::vector<Lit> BitBlaster::Negate(const std::vector<Lit>& a) {
  std::vector<Lit> inv(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    inv[i] = ~a[i];
  }
  return Adder(inv, ConstBits(static_cast<uint32_t>(a.size()), 0), TrueLit());
}

std::vector<Lit> BitBlaster::Subtract(const std::vector<Lit>& a,
                                      const std::vector<Lit>& b) {
  std::vector<Lit> inv(b.size());
  for (size_t i = 0; i < b.size(); ++i) {
    inv[i] = ~b[i];
  }
  return Adder(a, inv, TrueLit());
}

std::vector<Lit> BitBlaster::Multiply(const std::vector<Lit>& a,
                                      const std::vector<Lit>& b) {
  uint32_t w = static_cast<uint32_t>(a.size());
  std::vector<Lit> acc = ConstBits(w, 0);
  for (uint32_t i = 0; i < w; ++i) {
    // Partial product: (a << i) masked by b[i].
    std::vector<Lit> pp(w, FalseLit());
    for (uint32_t j = i; j < w; ++j) {
      pp[j] = GateAnd(a[j - i], b[i]);
    }
    acc = Adder(acc, pp, FalseLit());
  }
  return acc;
}

Lit BitBlaster::IsZero(const std::vector<Lit>& a) {
  std::vector<Lit> inverted(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    inverted[i] = ~a[i];
  }
  return GateAndN(inverted);
}

Lit BitBlaster::UltLit(const std::vector<Lit>& a, const std::vector<Lit>& b) {
  assert(a.size() == b.size());
  // Ripple from LSB: lt = (~a_i & b_i) | (eq_i & lt_prev).
  Lit lt = FalseLit();
  for (size_t i = 0; i < a.size(); ++i) {
    Lit eq = ~GateXor(a[i], b[i]);
    lt = GateOr(GateAnd(~a[i], b[i]), GateAnd(eq, lt));
  }
  return lt;
}

Lit BitBlaster::SltLit(const std::vector<Lit>& a, const std::vector<Lit>& b) {
  // Flip sign bits and compare unsigned.
  std::vector<Lit> af = a;
  std::vector<Lit> bf = b;
  af.back() = ~af.back();
  bf.back() = ~bf.back();
  return UltLit(af, bf);
}

Lit BitBlaster::EqLit(const std::vector<Lit>& a, const std::vector<Lit>& b) {
  assert(a.size() == b.size());
  std::vector<Lit> eqs(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    eqs[i] = ~GateXor(a[i], b[i]);
  }
  return GateAndN(eqs);
}

std::vector<Lit> BitBlaster::Mux(Lit sel, const std::vector<Lit>& t,
                                 const std::vector<Lit>& f) {
  assert(t.size() == f.size());
  std::vector<Lit> out(t.size());
  for (size_t i = 0; i < t.size(); ++i) {
    out[i] = GateMux(sel, t[i], f[i]);
  }
  return out;
}

std::vector<Lit> BitBlaster::Shifter(const std::vector<Lit>& a,
                                     const std::vector<Lit>& amount, bool left,
                                     Lit fill) {
  uint32_t w = static_cast<uint32_t>(a.size());
  std::vector<Lit> cur = a;
  // Barrel shifter over the bits of `amount` that matter.
  uint32_t stages = 0;
  while ((uint32_t{1} << stages) < w) {
    ++stages;
  }
  for (uint32_t s = 0; s < stages && s < amount.size(); ++s) {
    uint32_t shift = uint32_t{1} << s;
    std::vector<Lit> shifted(w, fill);
    for (uint32_t i = 0; i < w; ++i) {
      if (left) {
        if (i >= shift) {
          shifted[i] = cur[i - shift];
        }
      } else {
        if (i + shift < w) {
          shifted[i] = cur[i + shift];
        }
      }
    }
    cur = Mux(amount[s], shifted, cur);
  }
  // If any amount bit >= stages is set, the result is all-fill.
  std::vector<Lit> high_bits;
  for (size_t s = stages; s < amount.size(); ++s) {
    high_bits.push_back(~amount[s]);
  }
  // Also handle amounts in [w, 2^stages).
  if ((uint32_t{1} << stages) > w && stages <= amount.size()) {
    // Compare amount < w.
    std::vector<Lit> wbits = ConstBits(static_cast<uint32_t>(amount.size()),
                                       static_cast<uint64_t>(w));
    high_bits.push_back(UltLit(amount, wbits));
  }
  if (!high_bits.empty()) {
    Lit in_range = GateAndN(high_bits);
    cur = Mux(in_range, cur, std::vector<Lit>(w, fill));
  }
  return cur;
}

void BitBlaster::Divide(const std::vector<Lit>& a, const std::vector<Lit>& b,
                        std::vector<Lit>* quotient, std::vector<Lit>* remainder) {
  uint32_t w = static_cast<uint32_t>(a.size());
  // Restoring division, MSB first.
  std::vector<Lit> rem = ConstBits(w, 0);
  std::vector<Lit> quo(w, FalseLit());
  for (int32_t i = static_cast<int32_t>(w) - 1; i >= 0; --i) {
    // rem = (rem << 1) | a[i]
    for (int32_t j = static_cast<int32_t>(w) - 1; j > 0; --j) {
      rem[j] = rem[j - 1];
    }
    rem[0] = a[i];
    // If rem >= b: rem -= b, quo[i] = 1.
    Lit ge = ~UltLit(rem, b);
    std::vector<Lit> diff = Subtract(rem, b);
    rem = Mux(ge, diff, rem);
    quo[i] = ge;
  }
  // Division by zero: quotient all ones, remainder = dividend.
  Lit bz = IsZero(b);
  *quotient = Mux(bz, ConstBits(w, ~uint64_t{0}), quo);
  *remainder = Mux(bz, a, rem);
}

const std::vector<Lit>& BitBlaster::Blast(const ExprRef& e) {
  auto it = cache_.find(e);
  if (it != cache_.end()) {
    return it->second;
  }
  std::vector<Lit> bits = BlastNode(e);
  assert(bits.size() == e->width());
  // References into an unordered_map stay valid across rehashes, so handing
  // out `pos->second` while recursive Blast() calls keep inserting is safe.
  auto [pos, inserted] = cache_.emplace(e, std::move(bits));
  return pos->second;
}

std::vector<Lit> BitBlaster::BlastNode(const ExprRef& e) {
  switch (e->kind()) {
    case ExprKind::kConst:
      return ConstBits(e->width(), e->aux());
    case ExprKind::kVar: {
      auto key = std::make_pair(e->aux(), e->width());
      auto it = var_bits_.find(key);
      if (it == var_bits_.end()) {
        std::vector<Lit> bits(e->width());
        for (uint32_t i = 0; i < e->width(); ++i) {
          bits[i] = NewLit();
        }
        it = var_bits_.emplace(key, std::move(bits)).first;
        vars_.emplace(e->aux(), e);
      }
      return it->second;
    }
    case ExprKind::kAdd:
      return Adder(Blast(e->kids()[0]), Blast(e->kids()[1]), FalseLit());
    case ExprKind::kSub:
      return Subtract(Blast(e->kids()[0]), Blast(e->kids()[1]));
    case ExprKind::kMul:
      return Multiply(Blast(e->kids()[0]), Blast(e->kids()[1]));
    case ExprKind::kUDiv: {
      std::vector<Lit> q, r;
      Divide(Blast(e->kids()[0]), Blast(e->kids()[1]), &q, &r);
      return q;
    }
    case ExprKind::kURem: {
      std::vector<Lit> q, r;
      Divide(Blast(e->kids()[0]), Blast(e->kids()[1]), &q, &r);
      return r;
    }
    case ExprKind::kSDiv:
    case ExprKind::kSRem: {
      const std::vector<Lit>& a = Blast(e->kids()[0]);
      const std::vector<Lit>& b = Blast(e->kids()[1]);
      Lit sa = a.back();
      Lit sb = b.back();
      std::vector<Lit> ua = Mux(sa, Negate(a), a);
      std::vector<Lit> ub = Mux(sb, Negate(b), b);
      std::vector<Lit> q, r;
      Divide(ua, ub, &q, &r);
      if (e->kind() == ExprKind::kSDiv) {
        Lit flip = GateXor(sa, sb);
        // Division by zero must still produce all-ones (EvalExpr semantics).
        Lit bz = IsZero(b);
        std::vector<Lit> sq = Mux(flip, Negate(q), q);
        return Mux(bz, ConstBits(e->width(), ~uint64_t{0}), sq);
      }
      // srem takes the sign of the dividend; rem-by-zero returns dividend.
      Lit bz = IsZero(b);
      std::vector<Lit> sr = Mux(sa, Negate(r), r);
      return Mux(bz, a, sr);
    }
    case ExprKind::kAnd:
    case ExprKind::kOr:
    case ExprKind::kXor: {
      const std::vector<Lit>& a = Blast(e->kids()[0]);
      const std::vector<Lit>& b = Blast(e->kids()[1]);
      std::vector<Lit> out(e->width());
      for (uint32_t i = 0; i < e->width(); ++i) {
        out[i] = e->kind() == ExprKind::kAnd  ? GateAnd(a[i], b[i])
                 : e->kind() == ExprKind::kOr ? GateOr(a[i], b[i])
                                              : GateXor(a[i], b[i]);
      }
      return out;
    }
    case ExprKind::kShl:
      return Shifter(Blast(e->kids()[0]), Blast(e->kids()[1]), /*left=*/true,
                     FalseLit());
    case ExprKind::kLShr:
      return Shifter(Blast(e->kids()[0]), Blast(e->kids()[1]), /*left=*/false,
                     FalseLit());
    case ExprKind::kAShr: {
      const std::vector<Lit>& a = Blast(e->kids()[0]);
      return Shifter(a, Blast(e->kids()[1]), /*left=*/false, a.back());
    }
    case ExprKind::kNot: {
      const std::vector<Lit>& a = Blast(e->kids()[0]);
      std::vector<Lit> out(a.size());
      for (size_t i = 0; i < a.size(); ++i) {
        out[i] = ~a[i];
      }
      return out;
    }
    case ExprKind::kEq:
      return {EqLit(Blast(e->kids()[0]), Blast(e->kids()[1]))};
    case ExprKind::kUlt:
      return {UltLit(Blast(e->kids()[0]), Blast(e->kids()[1]))};
    case ExprKind::kUle:
      return {~UltLit(Blast(e->kids()[1]), Blast(e->kids()[0]))};
    case ExprKind::kSlt:
      return {SltLit(Blast(e->kids()[0]), Blast(e->kids()[1]))};
    case ExprKind::kSle:
      return {~SltLit(Blast(e->kids()[1]), Blast(e->kids()[0]))};
    case ExprKind::kConcat: {
      const std::vector<Lit>& high = Blast(e->kids()[0]);
      const std::vector<Lit>& low = Blast(e->kids()[1]);
      std::vector<Lit> out = low;
      out.insert(out.end(), high.begin(), high.end());
      return out;
    }
    case ExprKind::kExtract: {
      const std::vector<Lit>& a = Blast(e->kids()[0]);
      uint32_t low_bit = static_cast<uint32_t>(e->aux());
      return std::vector<Lit>(a.begin() + low_bit, a.begin() + low_bit + e->width());
    }
    case ExprKind::kZExt: {
      std::vector<Lit> out = Blast(e->kids()[0]);
      out.resize(e->width(), FalseLit());
      return out;
    }
    case ExprKind::kSExt: {
      std::vector<Lit> out = Blast(e->kids()[0]);
      Lit sign = out.back();
      out.resize(e->width(), sign);
      return out;
    }
    case ExprKind::kIte: {
      Lit sel = Blast(e->kids()[0])[0];
      return Mux(sel, Blast(e->kids()[1]), Blast(e->kids()[2]));
    }
  }
  assert(false && "unhandled expr kind");
  return {};
}

void BitBlaster::AssertTrue(const ExprRef& e) {
  assert(e->width() == 1);
  sat_->AddUnit(Blast(e)[0]);
}

void BitBlaster::AppendVarScope(const ExprRef& var_expr,
                                std::vector<uint32_t>* scope) const {
  assert(var_expr->kind() == ExprKind::kVar);
  auto it = var_bits_.find(std::make_pair(var_expr->aux(), var_expr->width()));
  if (it == var_bits_.end()) {
    return;
  }
  for (Lit l : it->second) {
    scope->push_back(l.var());
  }
}

uint64_t BitBlaster::ModelValue(const ExprRef& var_expr) const {
  assert(var_expr->kind() == ExprKind::kVar);
  auto it = var_bits_.find(std::make_pair(var_expr->aux(), var_expr->width()));
  if (it == var_bits_.end()) {
    return 0;
  }
  uint64_t v = 0;
  for (size_t i = 0; i < it->second.size(); ++i) {
    Lit l = it->second[i];
    bool bit = sat_->ValueOf(l.var());
    if (l.sign()) {
      bit = !bit;
    }
    if (bit) {
      v |= uint64_t{1} << i;
    }
  }
  return v;
}

}  // namespace esd::solver

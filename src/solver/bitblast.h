// ESD solver: Tseitin bit-blasting of bitvector expressions to CNF.
//
// A BitBlaster translates Expr DAGs into circuits over SAT literals for the
// SatSolver it is bound to. Each structurally distinct expression is
// translated once and cached (keyed by structural hash + equality, not by
// node pointer), so shared subtrees cost one circuit — including across
// queries when the blaster is kept alive as a persistent per-solver session
// (the incremental pipeline in solver.cc): a subtree re-built by a later
// query re-uses the clauses already emitted for it.
//
// The emitted clauses are purely definitional (out <-> f(inputs)); nothing
// is asserted until AssertTrue. That is what makes session reuse sound: the
// accumulated circuits never constrain the inputs on their own.
#ifndef ESD_SRC_SOLVER_BITBLAST_H_
#define ESD_SRC_SOLVER_BITBLAST_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/solver/expr.h"
#include "src/solver/sat.h"

namespace esd::solver {

class BitBlaster {
 public:
  explicit BitBlaster(SatSolver* sat) : sat_(sat) {}

  // Asserts that the width-1 expression `e` is true.
  void AssertTrue(const ExprRef& e);

  // Returns the literal vector (LSB first) encoding `e`.
  const std::vector<Lit>& Blast(const ExprRef& e);

  // After a kSat result, extracts the value of variable `var_expr` from the
  // SAT model. The variable must have been blasted (directly or as part of a
  // larger expression); unconstrained bits read as 0.
  uint64_t ModelValue(const ExprRef& var_expr) const;

  // All symbolic variables encountered during blasting, id -> expr.
  const std::map<uint64_t, ExprRef>& vars() const { return vars_; }

  // The SAT variable indices backing `var_expr`'s bits, appended to
  // `scope`; no-op if the variable was never blasted. Used to build the
  // decision scope for SatSolver::SolveAssuming in session mode.
  void AppendVarScope(const ExprRef& var_expr, std::vector<uint32_t>* scope) const;

 private:
  Lit TrueLit();
  Lit FalseLit() { return ~TrueLit(); }
  Lit NewLit() { return Lit::Pos(sat_->NewVar()); }

  // Gate builders (return a fresh literal constrained to the gate output).
  Lit GateAnd(Lit a, Lit b);
  Lit GateOr(Lit a, Lit b);
  Lit GateXor(Lit a, Lit b);
  Lit GateMux(Lit sel, Lit t, Lit f);  // sel ? t : f
  // Builds a literal equal to the AND of all of `xs`.
  Lit GateAndN(const std::vector<Lit>& xs);

  std::vector<Lit> ConstBits(uint32_t width, uint64_t value);
  std::vector<Lit> Adder(const std::vector<Lit>& a, const std::vector<Lit>& b,
                         Lit carry_in);
  std::vector<Lit> Negate(const std::vector<Lit>& a);
  std::vector<Lit> Subtract(const std::vector<Lit>& a, const std::vector<Lit>& b);
  std::vector<Lit> Multiply(const std::vector<Lit>& a, const std::vector<Lit>& b);
  // Unsigned divide: fills quotient and remainder (division by zero yields
  // all-ones quotient and remainder == dividend, matching EvalExpr).
  void Divide(const std::vector<Lit>& a, const std::vector<Lit>& b,
              std::vector<Lit>* quotient, std::vector<Lit>* remainder);
  Lit IsZero(const std::vector<Lit>& a);
  Lit UltLit(const std::vector<Lit>& a, const std::vector<Lit>& b);
  Lit SltLit(const std::vector<Lit>& a, const std::vector<Lit>& b);
  Lit EqLit(const std::vector<Lit>& a, const std::vector<Lit>& b);
  std::vector<Lit> Shifter(const std::vector<Lit>& a, const std::vector<Lit>& amount,
                           bool left, Lit fill);
  std::vector<Lit> Mux(Lit sel, const std::vector<Lit>& t, const std::vector<Lit>& f);

  std::vector<Lit> BlastNode(const ExprRef& e);

  struct ExprRefHash {
    size_t operator()(const ExprRef& e) const { return e->hash(); }
  };
  struct ExprRefEq {
    bool operator()(const ExprRef& a, const ExprRef& b) const {
      return Expr::Equal(a, b);
    }
  };

  SatSolver* sat_;
  // Structural circuit cache; the keys keep the expressions alive.
  std::unordered_map<ExprRef, std::vector<Lit>, ExprRefHash, ExprRefEq> cache_;
  // Variable bits keyed by (id, width): across a long-lived session,
  // distinct execution states may mint different variables under one id
  // (per-state counters), and they must not alias a bit vector of the
  // wrong width. Two same-width variables sharing an id may share bits —
  // they never co-occur in one query, and the bits are unconstrained on
  // their own (assertions are assumption-gated).
  std::map<std::pair<uint64_t, uint32_t>, std::vector<Lit>> var_bits_;
  std::map<uint64_t, ExprRef> vars_;
  Lit true_lit_{0};
  bool have_true_lit_ = false;
};

}  // namespace esd::solver

#endif  // ESD_SRC_SOLVER_BITBLAST_H_

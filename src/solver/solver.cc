#include "src/solver/solver.h"

#include <set>

#include "src/core/event_counters.h"
#include "src/solver/bitblast.h"
#include "src/solver/query_cache.h"
#include "src/solver/range.h"
#include "src/solver/sat.h"

namespace esd::solver {
namespace {

bool ModelSatisfies(const Model& model, const std::vector<ExprRef>& constraints) {
  for (const ExprRef& c : constraints) {
    if (EvalExpr(c, model.values) == 0) {
      return false;
    }
  }
  return true;
}

void MergeModel(const Model& from, Model* into) {
  into->values.insert(from.values.begin(), from.values.end());
  into->names.insert(from.names.begin(), from.names.end());
}

// SplitMix64 finalizer: decorrelates structural hashes before combining.
uint64_t MixHash(uint64_t h) {
  h += 0x9e3779b97f4a7c15ull;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  return h ^ (h >> 31);
}

}  // namespace

// The persistent incremental session (pipeline stage 4): one SatSolver whose
// learned clauses and activities accumulate, and one BitBlaster whose
// structural circuit cache spans queries.
struct ConstraintSolver::SatSession {
  SatSolver sat;
  BitBlaster blaster{&sat};
};

ConstraintSolver::ConstraintSolver() = default;

ConstraintSolver::ConstraintSolver(const SolverOptions& options)
    : options_(options) {}

ConstraintSolver::~ConstraintSolver() = default;

void ConstraintSolver::Stats::Accumulate(const Stats& other) {
  queries += other.queries;
  cache_hits += other.cache_hits;
  cex_hits += other.cex_hits;
  sat_calls += other.sat_calls;
  sliced_constraints += other.sliced_constraints;
  cache_evictions += other.cache_evictions;
  rewrites += other.rewrites;
  components += other.components;
  range_checked += other.range_checked;
  range_discharged += other.range_discharged;
  range_unsat += other.range_unsat;
  shared_hits += other.shared_hits;
  session_resets += other.session_resets;
  sat_conflicts += other.sat_conflicts;
  sat_decisions += other.sat_decisions;
  sat_propagations += other.sat_propagations;
  sat_learned += other.sat_learned;
}

size_t ConstraintSolver::HashQuery(const std::vector<ExprRef>& constraints) const {
  uint64_t h = 0x51ed270b;
  for (const ExprRef& c : constraints) {
    // Commutative but duplicate-sensitive: a wrapping sum of mixed hashes,
    // so permuted constraint sets still hit while repeated constraints do
    // not cancel (an XOR combine would make {C, C} collide with {D, D} for
    // any C and D — and a cached unsat served for the wrong set is a wrong
    // answer, not a slow one).
    h += MixHash(c->hash());
  }
  return static_cast<size_t>(h);
}

bool ConstraintSolver::IsSatisfiable(const std::vector<ExprRef>& constraints,
                                     Model* model) {
  ++stats_.queries;
  CountEvent(&EventCounters::solver_calls);
  // Stage 1: canonicalize, fold, and drop trivially-true constraints (a
  // rewritten-to-false constraint decides the query outright).
  std::vector<ExprRef> live;
  live.reserve(constraints.size());
  for (const ExprRef& c : constraints) {
    ExprRef r = options_.rewrite ? rewriter_.Rewrite(c) : c;
    if (r->IsFalse()) {
      return false;
    }
    if (!r->IsTrue()) {
      live.push_back(std::move(r));
    }
  }
  stats_.rewrites = rewriter_.rewritten();
  if (live.empty()) {
    if (model) {
      *model = Model{};
    }
    return true;
  }
  // Counterexample cache: the previous model often still satisfies the
  // (usually grown-by-one) constraint set.
  if (last_model_ && ModelSatisfies(*last_model_, live)) {
    ++stats_.cex_hits;
    if (model) {
      *model = *last_model_;
    }
    return true;
  }

  // Stage 2: connected components over shared variables. Each component is
  // cached and solved on its own, so a query differing from a past one only
  // in unrelated constraints still hits per-component.
  std::vector<std::vector<ExprRef>> components =
      options_.slice ? PartitionIndependent(live)
                     : std::vector<std::vector<ExprRef>>{live};
  stats_.components += components.size();

  Model merged;
  bool complete = true;  // False when some component's values were skipped.
  for (const std::vector<ExprRef>& comp : components) {
    size_t key = HashQuery(comp);
    // Stage 3a: per-solver query cache. A cached unsat answer decides the
    // whole conjunction even when a model was requested (there is nothing
    // to model); a cached sat answer suffices only when no values are
    // needed — otherwise fall through to the shared cache or a solve.
    if (auto it = query_cache_.find(key); it != query_cache_.end()) {
      if (!it->second) {
        ++stats_.cache_hits;
        return false;
      }
      if (model == nullptr) {
        ++stats_.cache_hits;
        complete = false;
        continue;
      }
    }
    // Stage 3b: shared portfolio cache. Models are re-validated by
    // evaluation before use, so a stale or colliding entry can never
    // produce a wrong assignment.
    if (options_.shared_cache != nullptr) {
      if (auto hit = options_.shared_cache->Lookup(key, this)) {
        bool usable = !hit->sat || model == nullptr ||
                      (hit->has_model && ModelSatisfies(hit->model, comp));
        if (usable) {
          if (hit->cross_worker) {
            ++stats_.shared_hits;
          } else {
            ++stats_.cache_hits;
          }
          CacheInsert(key, hit->sat);
          if (!hit->sat) {
            return false;
          }
          if (hit->has_model) {
            MergeModel(hit->model, &merged);
          } else {
            complete = false;
          }
          continue;
        }
      }
    }
    // Stage 0: interval value-range discharge. Decides the guard-shaped
    // components (negated equality chains, pinned re-queries) without
    // touching the bit-blaster; its answers are exact (witnesses are
    // re-checked by evaluation), so they feed the caches like a solve.
    if (options_.range) {
      ++stats_.range_checked;
      RangeResult rr = TryRangeDischarge(comp);
      if (rr.outcome != RangeResult::Outcome::kUnknown) {
        ++stats_.range_discharged;
        bool range_sat = rr.outcome == RangeResult::Outcome::kSat;
        Model range_model;
        if (range_sat) {
          range_model.values = std::move(rr.witness);
          std::map<uint64_t, ExprRef> vars;
          for (const ExprRef& c : comp) {
            CollectVars(c, &vars);
          }
          for (const auto& [id, var] : vars) {
            range_model.names[id] = var->name();
          }
        } else {
          ++stats_.range_unsat;
        }
        CacheInsert(key, range_sat);
        if (options_.shared_cache != nullptr) {
          options_.shared_cache->Insert(key, range_sat,
                                        range_sat ? &range_model : nullptr,
                                        this);
        }
        if (!range_sat) {
          return false;
        }
        MergeModel(range_model, &merged);
        continue;
      }
    }
    // Stage 4: solve the component (incremental session or one-shot).
    Model comp_model;
    bool sat = SolveComponent(comp, &comp_model);
    CacheInsert(key, sat);
    if (options_.shared_cache != nullptr) {
      options_.shared_cache->Insert(key, sat, sat ? &comp_model : nullptr, this);
    }
    if (!sat) {
      return false;
    }
    MergeModel(comp_model, &merged);
  }
  if (complete) {
    last_model_ = merged;
  }
  if (model) {
    *model = std::move(merged);
  }
  return true;
}

void ConstraintSolver::CacheInsert(size_t key, bool sat) {
  auto [it, inserted] = query_cache_.emplace(key, sat);
  if (!inserted) {
    it->second = sat;
    return;
  }
  query_order_.push_back(key);
  if (query_cache_.size() > kQueryCacheCap) {
    query_cache_.erase(query_order_.front());
    query_order_.pop_front();
    ++stats_.cache_evictions;
  }
}

bool ConstraintSolver::SolveComponent(const std::vector<ExprRef>& constraints,
                                      Model* model) {
  ++stats_.sat_calls;
  if (options_.incremental) {
    if (session_ != nullptr && session_->sat.NumClauses() > kSessionClauseCap) {
      // Learned clauses are an accelerator, not state answers depend on:
      // discarding the session is always sound, only slower.
      session_.reset();
      ++stats_.session_resets;
    }
    if (session_ == nullptr) {
      session_ = std::make_unique<SatSession>();
    }
    std::vector<Lit> assumptions;
    assumptions.reserve(constraints.size());
    for (const ExprRef& c : constraints) {
      assumptions.push_back(session_->blaster.Blast(c)[0]);
    }
    // Decision scope: this query's circuit-input variables only. The
    // session has accumulated variables from every past query; deciding
    // them all again would make each query cost O(session size). With the
    // cone's inputs assigned, unit propagation forces every in-cone gate,
    // and out-of-cone circuits are definitional (see SolveAssuming's
    // contract in sat.h).
    std::map<uint64_t, ExprRef> vars;
    for (const ExprRef& c : constraints) {
      CollectVars(c, &vars);
    }
    std::vector<uint32_t> scope;
    for (const auto& [id, var] : vars) {
      session_->blaster.AppendVarScope(var, &scope);
    }
    // A variable-free live constraint cannot occur (the factories fold
    // constant DAGs), but if `scope` ever ends up empty, SolveAssuming
    // treats it as "all variables" — slower, still correct.
    SatSolver::Stats before = session_->sat.stats();
    SatResult result = session_->sat.SolveAssuming(assumptions, scope);
    const SatSolver::Stats& after = session_->sat.stats();
    stats_.sat_conflicts += after.conflicts - before.conflicts;
    stats_.sat_decisions += after.decisions - before.decisions;
    stats_.sat_propagations += after.propagations - before.propagations;
    stats_.sat_learned += after.learned_clauses - before.learned_clauses;
    if (result != SatResult::kSat) {
      return false;
    }
    if (model) {
      // Only this component's variables: variables from past queries are
      // unconstrained (and deliberately undecided) in this solution.
      for (const auto& [id, var] : vars) {
        model->values[id] = session_->blaster.ModelValue(var);
        model->names[id] = var->name();
      }
    }
    return true;
  }
  // One-shot path (--no-solver-incremental): fresh solver per query,
  // constraints asserted as unit clauses.
  SatSolver sat;
  BitBlaster blaster(&sat);
  for (const ExprRef& c : constraints) {
    blaster.AssertTrue(c);
  }
  SatResult result = sat.Solve();
  stats_.sat_conflicts += sat.stats().conflicts;
  stats_.sat_decisions += sat.stats().decisions;
  stats_.sat_propagations += sat.stats().propagations;
  stats_.sat_learned += sat.stats().learned_clauses;
  if (result != SatResult::kSat) {
    return false;
  }
  if (model) {
    for (const auto& [id, var] : blaster.vars()) {
      model->values[id] = blaster.ModelValue(var);
      model->names[id] = var->name();
    }
  }
  return true;
}

std::vector<ExprRef> ConstraintSolver::IndependentSlice(
    const std::vector<ExprRef>& constraints, const ExprRef& cond) {
  // Var sets per constraint, then fixed-point closure starting from cond's
  // variables.
  std::map<uint64_t, ExprRef> seed;
  CollectVars(cond, &seed);
  std::set<uint64_t> reached;
  for (const auto& [id, unused] : seed) {
    reached.insert(id);
  }
  std::vector<std::set<uint64_t>> vars_of(constraints.size());
  for (size_t i = 0; i < constraints.size(); ++i) {
    std::map<uint64_t, ExprRef> vs;
    CollectVars(constraints[i], &vs);
    for (const auto& [id, unused] : vs) {
      vars_of[i].insert(id);
    }
  }
  std::vector<bool> in_slice(constraints.size(), false);
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < constraints.size(); ++i) {
      if (in_slice[i]) {
        continue;
      }
      bool overlaps = false;
      for (uint64_t v : vars_of[i]) {
        if (reached.count(v)) {
          overlaps = true;
          break;
        }
      }
      if (overlaps) {
        in_slice[i] = true;
        changed = true;
        for (uint64_t v : vars_of[i]) {
          reached.insert(v);
        }
      }
    }
  }
  std::vector<ExprRef> slice;
  for (size_t i = 0; i < constraints.size(); ++i) {
    if (in_slice[i]) {
      slice.push_back(constraints[i]);
    }
  }
  return slice;
}

std::vector<std::vector<ExprRef>> ConstraintSolver::PartitionIndependent(
    const std::vector<ExprRef>& constraints) {
  // Union-find over constraint indices, linked through shared variable ids.
  std::vector<size_t> parent(constraints.size());
  for (size_t i = 0; i < parent.size(); ++i) {
    parent[i] = i;
  }
  auto find = [&parent](size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];  // Path halving.
      x = parent[x];
    }
    return x;
  };
  std::map<uint64_t, size_t> var_owner;  // var id -> first constraint index.
  for (size_t i = 0; i < constraints.size(); ++i) {
    std::map<uint64_t, ExprRef> vars;
    CollectVars(constraints[i], &vars);
    for (const auto& [id, unused] : vars) {
      auto [it, inserted] = var_owner.try_emplace(id, i);
      if (!inserted) {
        parent[find(i)] = find(it->second);
      }
    }
  }
  // Emit components ordered by first constraint occurrence (deterministic).
  std::map<size_t, size_t> root_to_index;
  std::vector<std::vector<ExprRef>> components;
  for (size_t i = 0; i < constraints.size(); ++i) {
    size_t root = find(i);
    auto [it, inserted] = root_to_index.try_emplace(root, components.size());
    if (inserted) {
      components.emplace_back();
    }
    components[it->second].push_back(constraints[i]);
  }
  return components;
}

bool ConstraintSolver::MayBeTrue(const std::vector<ExprRef>& constraints,
                                 const ExprRef& cond) {
  if (cond->IsTrue()) {
    // Reachability of the current path is the engine's invariant.
    return true;
  }
  if (cond->IsFalse()) {
    return false;
  }
  // Independence slicing: constraints over unrelated variables cannot
  // affect cond's feasibility (they are satisfiable by path-consistency).
  std::vector<ExprRef> with = IndependentSlice(constraints, cond);
  stats_.sliced_constraints += constraints.size() - with.size();
  with.push_back(cond);
  return IsSatisfiable(with);
}

bool ConstraintSolver::MayBeFalse(const std::vector<ExprRef>& constraints,
                                  const ExprRef& cond) {
  return MayBeTrue(constraints, MakeLogicalNot(cond));
}

bool ConstraintSolver::MustBeTrue(const std::vector<ExprRef>& constraints,
                                  const ExprRef& cond) {
  return !MayBeFalse(constraints, cond);
}

}  // namespace esd::solver

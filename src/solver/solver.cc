#include "src/solver/solver.h"

#include <set>

#include "src/solver/bitblast.h"
#include "src/solver/sat.h"

namespace esd::solver {
namespace {

bool ModelSatisfies(const Model& model, const std::vector<ExprRef>& constraints) {
  for (const ExprRef& c : constraints) {
    if (EvalExpr(c, model.values) == 0) {
      return false;
    }
  }
  return true;
}

}  // namespace

size_t ConstraintSolver::HashQuery(const std::vector<ExprRef>& constraints) const {
  size_t h = 0x51ed270b;
  for (const ExprRef& c : constraints) {
    // Order-independent combination so permuted constraint sets hit.
    h ^= c->hash() * 0x9e3779b97f4a7c15ull;
  }
  return h;
}

bool ConstraintSolver::IsSatisfiable(const std::vector<ExprRef>& constraints,
                                     Model* model) {
  ++stats_.queries;
  // Constant-level short circuit.
  std::vector<ExprRef> live;
  live.reserve(constraints.size());
  for (const ExprRef& c : constraints) {
    if (c->IsFalse()) {
      return false;
    }
    if (!c->IsTrue()) {
      live.push_back(c);
    }
  }
  if (live.empty()) {
    if (model) {
      *model = Model{};
    }
    return true;
  }
  // Counterexample cache: the previous model often still satisfies the
  // (usually grown-by-one) constraint set.
  if (last_model_ && ModelSatisfies(*last_model_, live)) {
    ++stats_.cex_hits;
    if (model) {
      *model = *last_model_;
    }
    return true;
  }
  size_t key = HashQuery(live);
  if (auto it = query_cache_.find(key); it != query_cache_.end() && !model) {
    // Cache answers only "is it satisfiable"; model requests must solve so
    // the caller gets a concrete assignment.
    if (!it->second) {
      ++stats_.cache_hits;
      return false;
    }
  }
  bool sat = SolveUncached(live, model);
  CacheInsert(key, sat);
  return sat;
}

void ConstraintSolver::CacheInsert(size_t key, bool sat) {
  auto [it, inserted] = query_cache_.emplace(key, sat);
  if (!inserted) {
    it->second = sat;
    return;
  }
  query_order_.push_back(key);
  if (query_cache_.size() > kQueryCacheCap) {
    query_cache_.erase(query_order_.front());
    query_order_.pop_front();
    ++stats_.cache_evictions;
  }
}

bool ConstraintSolver::SolveUncached(const std::vector<ExprRef>& constraints,
                                     Model* model) {
  ++stats_.sat_calls;
  SatSolver sat;
  BitBlaster blaster(&sat);
  for (const ExprRef& c : constraints) {
    blaster.AssertTrue(c);
  }
  SatResult result = sat.Solve();
  if (result != SatResult::kSat) {
    return false;
  }
  Model m;
  for (const auto& [id, var] : blaster.vars()) {
    m.values[id] = blaster.ModelValue(var);
    m.names[id] = var->name();
  }
  last_model_ = m;
  if (model) {
    *model = std::move(m);
  }
  return true;
}

std::vector<ExprRef> ConstraintSolver::IndependentSlice(
    const std::vector<ExprRef>& constraints, const ExprRef& cond) {
  // Var sets per constraint, then fixed-point closure starting from cond's
  // variables.
  std::map<uint64_t, ExprRef> seed;
  CollectVars(cond, &seed);
  std::set<uint64_t> reached;
  for (const auto& [id, unused] : seed) {
    reached.insert(id);
  }
  std::vector<std::set<uint64_t>> vars_of(constraints.size());
  for (size_t i = 0; i < constraints.size(); ++i) {
    std::map<uint64_t, ExprRef> vs;
    CollectVars(constraints[i], &vs);
    for (const auto& [id, unused] : vs) {
      vars_of[i].insert(id);
    }
  }
  std::vector<bool> in_slice(constraints.size(), false);
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < constraints.size(); ++i) {
      if (in_slice[i]) {
        continue;
      }
      bool overlaps = false;
      for (uint64_t v : vars_of[i]) {
        if (reached.count(v)) {
          overlaps = true;
          break;
        }
      }
      if (overlaps) {
        in_slice[i] = true;
        changed = true;
        for (uint64_t v : vars_of[i]) {
          reached.insert(v);
        }
      }
    }
  }
  std::vector<ExprRef> slice;
  for (size_t i = 0; i < constraints.size(); ++i) {
    if (in_slice[i]) {
      slice.push_back(constraints[i]);
    }
  }
  return slice;
}

bool ConstraintSolver::MayBeTrue(const std::vector<ExprRef>& constraints,
                                 const ExprRef& cond) {
  if (cond->IsTrue()) {
    // Reachability of the current path is the engine's invariant.
    return true;
  }
  if (cond->IsFalse()) {
    return false;
  }
  // Independence slicing: constraints over unrelated variables cannot
  // affect cond's feasibility (they are satisfiable by path-consistency).
  std::vector<ExprRef> with = IndependentSlice(constraints, cond);
  stats_.sliced_constraints += constraints.size() - with.size();
  with.push_back(cond);
  return IsSatisfiable(with);
}

bool ConstraintSolver::MayBeFalse(const std::vector<ExprRef>& constraints,
                                  const ExprRef& cond) {
  return MayBeTrue(constraints, MakeLogicalNot(cond));
}

bool ConstraintSolver::MustBeTrue(const std::vector<ExprRef>& constraints,
                                  const ExprRef& cond) {
  return !MayBeFalse(constraints, cond);
}

}  // namespace esd::solver

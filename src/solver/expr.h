// ESD solver: immutable bitvector expression DAG.
//
// Expressions are reference-counted immutable nodes of width 1..64 bits.
// Construction goes through the factory functions below, which constant-fold
// and apply algebraic simplifications (so downstream code can rely on, e.g.,
// a kConst node never having children). Boolean expressions are width-1
// bitvectors.
#ifndef ESD_SRC_SOLVER_EXPR_H_
#define ESD_SRC_SOLVER_EXPR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace esd::solver {

enum class ExprKind : uint8_t {
  kConst,    // aux = value
  kVar,      // aux = variable id; name() gives the symbolic-input name
  kAdd,
  kSub,
  kMul,
  kUDiv,
  kSDiv,
  kURem,
  kSRem,
  kAnd,
  kOr,
  kXor,
  kShl,
  kLShr,
  kAShr,
  kNot,
  kEq,       // width-1 result
  kUlt,      // width-1 result
  kUle,      // width-1 result
  kSlt,      // width-1 result
  kSle,      // width-1 result
  kConcat,   // kids[0] = high bits, kids[1] = low bits
  kExtract,  // aux = low bit index; width = extracted width
  kZExt,
  kSExt,
  kIte,      // kids: cond (width 1), then, else
};

class Expr;
using ExprRef = std::shared_ptr<const Expr>;

class Expr {
 public:
  Expr(ExprKind kind, uint32_t width, uint64_t aux, std::vector<ExprRef> kids,
       std::string name = {});

  ExprKind kind() const { return kind_; }
  uint32_t width() const { return width_; }
  uint64_t aux() const { return aux_; }
  const std::vector<ExprRef>& kids() const { return kids_; }
  const std::string& name() const { return name_; }
  size_t hash() const { return hash_; }

  bool IsConst() const { return kind_ == ExprKind::kConst; }
  bool IsConstValue(uint64_t v) const { return IsConst() && aux_ == v; }
  bool IsTrue() const { return width_ == 1 && IsConstValue(1); }
  bool IsFalse() const { return width_ == 1 && IsConstValue(0); }

  // Structural equality (uses the cached hash as a fast path).
  static bool Equal(const ExprRef& a, const ExprRef& b);

 private:
  ExprKind kind_;
  uint32_t width_;
  uint64_t aux_;
  std::vector<ExprRef> kids_;
  std::string name_;  // Only for kVar.
  size_t hash_;
};

// Mask of `width` one-bits (width in [1, 64]).
constexpr uint64_t WidthMask(uint32_t width) {
  return width >= 64 ? ~uint64_t{0} : ((uint64_t{1} << width) - 1);
}

// ---- Factory functions (simplifying constructors) ----

ExprRef MakeConst(uint32_t width, uint64_t value);
ExprRef MakeTrue();
ExprRef MakeFalse();
ExprRef MakeBool(bool v);
// Creates a fresh symbolic variable. `id` must be process-unique (the VM's
// SymbolTable hands these out); `name` is the human-readable input name.
ExprRef MakeVar(uint64_t id, uint32_t width, std::string name);

ExprRef MakeAdd(ExprRef a, ExprRef b);
ExprRef MakeSub(ExprRef a, ExprRef b);
ExprRef MakeMul(ExprRef a, ExprRef b);
ExprRef MakeUDiv(ExprRef a, ExprRef b);
ExprRef MakeSDiv(ExprRef a, ExprRef b);
ExprRef MakeURem(ExprRef a, ExprRef b);
ExprRef MakeSRem(ExprRef a, ExprRef b);
ExprRef MakeAnd(ExprRef a, ExprRef b);
ExprRef MakeOr(ExprRef a, ExprRef b);
ExprRef MakeXor(ExprRef a, ExprRef b);
ExprRef MakeShl(ExprRef a, ExprRef b);
ExprRef MakeLShr(ExprRef a, ExprRef b);
ExprRef MakeAShr(ExprRef a, ExprRef b);
ExprRef MakeNot(ExprRef a);

ExprRef MakeEq(ExprRef a, ExprRef b);
ExprRef MakeNe(ExprRef a, ExprRef b);
ExprRef MakeUlt(ExprRef a, ExprRef b);
ExprRef MakeUle(ExprRef a, ExprRef b);
ExprRef MakeSlt(ExprRef a, ExprRef b);
ExprRef MakeSle(ExprRef a, ExprRef b);

// Logical connectives on width-1 expressions.
ExprRef MakeLogicalAnd(ExprRef a, ExprRef b);
ExprRef MakeLogicalOr(ExprRef a, ExprRef b);
ExprRef MakeLogicalNot(ExprRef a);

ExprRef MakeConcat(ExprRef high, ExprRef low);
ExprRef MakeExtract(ExprRef a, uint32_t low_bit, uint32_t width);
ExprRef MakeZExt(ExprRef a, uint32_t width);
ExprRef MakeSExt(ExprRef a, uint32_t width);
ExprRef MakeIte(ExprRef cond, ExprRef then_e, ExprRef else_e);

// ---- Utilities ----

// Evaluates `e` under `assignment` (var id -> value). Unassigned variables
// evaluate to 0. Division by zero yields all-ones (matching the bit-blaster's
// encoding).
uint64_t EvalExpr(const ExprRef& e, const std::map<uint64_t, uint64_t>& assignment);

// Collects the distinct variables referenced by `e` into `vars` (id -> expr).
void CollectVars(const ExprRef& e, std::map<uint64_t, ExprRef>* vars);

// Number of nodes in the DAG rooted at `e` (distinct by pointer).
size_t ExprSize(const ExprRef& e);

// Human-readable rendering, e.g. "(add v0 (const 3))".
std::string ExprToString(const ExprRef& e);

}  // namespace esd::solver

#endif  // ESD_SRC_SOLVER_EXPR_H_

// ESD solver: the canonicalizing expression rewriter (pipeline stage 1).
//
// Rewrite() normalizes an expression DAG bottom-up so that structurally
// different spellings of the same predicate converge on one canonical form:
// constants are folded and pulled to the right of commutative operators (by
// rebuilding every node through the simplifying factories in expr.h), chains
// of constant operations are reassociated into a single constant, compare
// nodes against constant bounds collapse, negations distribute over
// comparisons, and equalities shift constant offsets onto the literal side.
//
// Every rule is a full semantic equivalence: for all assignments,
// EvalExpr(Rewrite(e)) == EvalExpr(e). The payoff is downstream — canonical
// queries hash equal, so the solver's query caches hit across syntactic
// variants, and trivially-true constraints fold to the constant 1 and never
// reach the SAT layer (tests/solver_property_test.cc checks both the
// equivalence and each directed rule).
#ifndef ESD_SRC_SOLVER_REWRITE_H_
#define ESD_SRC_SOLVER_REWRITE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/solver/expr.h"

namespace esd::solver {

// A memoizing rewriter. One instance per ConstraintSolver amortizes the
// DAG walk across queries that share subtrees (the common case: path
// constraints grow by one per branch).
class Rewriter {
 public:
  // Returns the canonical form of `e` (possibly `e` itself).
  ExprRef Rewrite(const ExprRef& e);

  // Number of Rewrite() calls whose result differed from the input.
  uint64_t rewritten() const { return rewritten_; }

  // Memo upper bound; beyond it the memo (and its pins) are dropped so a
  // long search cannot grow the table monotonically.
  static constexpr size_t kMemoCap = 1 << 16;

 private:
  ExprRef RewriteCached(const ExprRef& e);

  // Memo keyed by node identity. The keys pin their inputs alive via
  // pinned_, so pointer reuse cannot alias two distinct expressions.
  std::unordered_map<const Expr*, ExprRef> memo_;
  std::vector<ExprRef> pinned_;
  uint64_t rewritten_ = 0;
};

// One-shot convenience (fresh memo per call): used by
// vm::ExecutionState::AddConstraint to canonicalize at construction time.
ExprRef RewriteExpr(const ExprRef& e);

}  // namespace esd::solver

#endif  // ESD_SRC_SOLVER_REWRITE_H_

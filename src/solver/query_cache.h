// ESD solver: the shared portfolio query/counterexample cache (stage 4).
//
// Portfolio workers (`--jobs N`) explore the same program toward the same
// goal, so they keep asking the same component-level satisfiability
// questions. This cache lets an answer computed by one worker short-circuit
// the SAT call in every other worker, mirroring the `--dedup` shared
// fingerprint table: sharded, mutex-striped (one lock per shard, never held
// across a solve), bounded FIFO per shard.
//
// Entries record the inserting solver so a lookup can tell a *cross-worker*
// hit (the interesting, portfolio-only win) from a worker re-finding its own
// answer after local eviction. Satisfiable entries carry the model, which a
// consumer must re-validate by evaluation against its own constraint set
// before trusting — re-validation makes sharing safe even across the rare
// 64-bit key collision.
#ifndef ESD_SRC_SOLVER_QUERY_CACHE_H_
#define ESD_SRC_SOLVER_QUERY_CACHE_H_

#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "src/solver/solver.h"  // For Model; solver.h only forward-declares us.

namespace esd::solver {

class SharedSolverCache {
 public:
  struct Hit {
    bool sat = false;
    bool has_model = false;
    Model model;
    bool cross_worker = false;  // Inserted by a different solver than `self`.
  };

  // `self` identifies the asking solver (any stable pointer).
  std::optional<Hit> Lookup(size_t key, const void* self) const;

  // Records an answer. `model` may be null (unsat, or sat answers found
  // without materializing values). First writer wins; re-inserting an
  // existing key only upgrades a model-less sat entry with a model.
  void Insert(size_t key, bool sat, const Model* model, const void* self);

  size_t size() const;

  static constexpr size_t kShards = 16;
  // Per-shard FIFO bound: kShards * kShardCap entries total, matching the
  // order of magnitude of the per-worker query cache.
  static constexpr size_t kShardCap = 1 << 12;

 private:
  struct Entry {
    bool sat = false;
    bool has_model = false;
    Model model;
    const void* owner = nullptr;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<size_t, Entry> map;
    std::deque<size_t> order;  // Insertion order, for FIFO eviction.
  };

  Shard& ShardFor(size_t key) const { return shards_[key % kShards]; }

  mutable Shard shards_[kShards];
};

}  // namespace esd::solver

#endif  // ESD_SRC_SOLVER_QUERY_CACHE_H_

// ESD solver: the shared portfolio query/counterexample cache (stage 4).
//
// Portfolio workers (`--jobs N`) explore the same program toward the same
// goal, so they keep asking the same component-level satisfiability
// questions. This cache lets an answer computed by one worker short-circuit
// the SAT call in every other worker, mirroring the `--dedup` shared
// fingerprint table: sharded, mutex-striped (one lock per shard, never held
// across a solve), bounded FIFO per shard.
//
// Entries record the inserting solver so a lookup can tell a *cross-worker*
// hit (the interesting, portfolio-only win) from a worker re-finding its own
// answer after local eviction. Satisfiable entries carry the model, which a
// consumer must re-validate by evaluation against its own constraint set
// before trusting — re-validation makes sharing safe even across the rare
// 64-bit key collision.
//
// Eviction is byte-accounted, not entry-counted: a long-lived process (the
// esdserved daemon keeps one cache alive across thousands of jobs) retaining
// large models would otherwise grow without bound even while the entry count
// sat under the cap. Each shard tracks the footprint of its entries
// (EntryFootprint) and evicts FIFO until both the entry cap and its byte
// budget hold.
//
// The cache is also the first persisted cache of the synthesis service:
// Snapshot() exports every entry in deterministic (key-sorted) order and
// Preload() seeds a fresh cache from a parsed snapshot. Preloaded entries
// have no owning solver, so every hit on them counts as a cross-run hit.
#ifndef ESD_SRC_SOLVER_QUERY_CACHE_H_
#define ESD_SRC_SOLVER_QUERY_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/solver/solver.h"  // For Model; solver.h only forward-declares us.

namespace esd::solver {

class SharedSolverCache {
 public:
  struct Hit {
    bool sat = false;
    bool has_model = false;
    Model model;
    bool cross_worker = false;  // Inserted by a different solver than `self`.
  };

  // `max_bytes` bounds the summed EntryFootprint across all shards (split
  // evenly; the FIFO evicts per shard). The entry cap kShards * kShardCap
  // applies independently, whichever bites first.
  explicit SharedSolverCache(size_t max_bytes = kDefaultMaxBytes);

  // `self` identifies the asking solver (any stable pointer).
  std::optional<Hit> Lookup(size_t key, const void* self) const;

  // Records an answer. `model` may be null (unsat, or sat answers found
  // without materializing values). First writer wins; re-inserting an
  // existing key only upgrades a model-less sat entry with a model (byte
  // accounting follows the upgrade).
  void Insert(size_t key, bool sat, const Model* model, const void* self);

  size_t size() const;
  // Current summed EntryFootprint across shards (always <= max_bytes()).
  size_t bytes() const;
  size_t max_bytes() const { return max_bytes_; }

  struct Stats {
    uint64_t evictions = 0;       // FIFO evictions (entry cap or byte budget).
    uint64_t preloaded = 0;       // Entries seeded by Preload().
    uint64_t preloaded_hits = 0;  // Lookups answered by a preloaded entry.
  };
  Stats stats() const;

  // One persisted cache entry. `values`/`names` flatten the model maps in
  // key order, so a Snapshot of a given cache state is deterministic.
  struct SnapshotEntry {
    uint64_t key = 0;
    bool sat = false;
    bool has_model = false;
    std::vector<std::pair<uint64_t, uint64_t>> values;     // id -> value.
    std::vector<std::pair<uint64_t, std::string>> names;   // id -> name.
  };

  // Exports every entry, sorted by key (deterministic across shard layouts:
  // serialize -> Preload -> Snapshot is byte-stable).
  std::vector<SnapshotEntry> Snapshot() const;

  // Seeds the cache from a parsed snapshot. Entries carry a null owner, so
  // any solver's hit on them is a cross-worker (cross-run) hit. Respects
  // the entry cap and byte budget like Insert.
  void Preload(const std::vector<SnapshotEntry>& entries);

  // The deterministic footprint formula byte accounting uses: fixed entry
  // overhead plus the model payload (one slot per value pair, plus name
  // bytes). Deliberately a model of the cost, not malloc truth — it must be
  // identical across platforms so the byte-eviction regression tests and
  // the persisted snapshots behave the same everywhere.
  static size_t EntryFootprint(const Model& model, bool has_model);

  static constexpr size_t kShards = 16;
  // Per-shard FIFO bound: kShards * kShardCap entries total, matching the
  // order of magnitude of the per-worker query cache.
  static constexpr size_t kShardCap = 1 << 12;
  // Default byte budget: 64 MiB across shards. Generous for one run,
  // bounded for a daemon holding the cache across thousands.
  static constexpr size_t kDefaultMaxBytes = 64u << 20;
  // Fixed per-entry overhead EntryFootprint charges: key + FIFO slot +
  // entry header, rounded to a stable 64.
  static constexpr size_t kEntryOverhead = 64;

 private:
  struct Entry {
    bool sat = false;
    bool has_model = false;
    bool preloaded = false;
    Model model;
    const void* owner = nullptr;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<size_t, Entry> map;
    std::deque<size_t> order;  // Insertion order, for FIFO eviction.
    size_t bytes = 0;
    uint64_t evictions = 0;
    uint64_t preloaded = 0;
    uint64_t preloaded_hits = 0;
  };

  // Evicts FIFO until `shard` honors both the entry cap and the byte
  // budget. Caller holds the shard lock.
  void EvictToBudget(Shard& shard);

  Shard& ShardFor(size_t key) const { return shards_[key % kShards]; }

  size_t max_bytes_;
  size_t shard_budget_;  // max_bytes_ / kShards, at least one entry.
  mutable Shard shards_[kShards];
};

}  // namespace esd::solver

#endif  // ESD_SRC_SOLVER_QUERY_CACHE_H_

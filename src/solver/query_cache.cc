#include "src/solver/query_cache.h"

#include <algorithm>

namespace esd::solver {

SharedSolverCache::SharedSolverCache(size_t max_bytes)
    : max_bytes_(max_bytes) {
  // Every shard can hold at least one model-less entry, so Insert never
  // evicts the entry it just added (a budget below kEntryOverhead would).
  shard_budget_ = std::max(max_bytes_ / kShards, kEntryOverhead);
}

size_t SharedSolverCache::EntryFootprint(const Model& model, bool has_model) {
  size_t bytes = kEntryOverhead;
  if (!has_model) {
    return bytes;
  }
  // One fixed-size slot per value pair plus the name payload. 3 words per
  // map node is the stable stand-in for the node overhead.
  bytes += model.values.size() * 3 * sizeof(uint64_t);
  for (const auto& [id, name] : model.names) {
    bytes += 3 * sizeof(uint64_t) + name.size();
  }
  return bytes;
}

void SharedSolverCache::EvictToBudget(Shard& shard) {
  while (!shard.order.empty() &&
         (shard.map.size() > kShardCap || shard.bytes > shard_budget_)) {
    auto it = shard.map.find(shard.order.front());
    shard.order.pop_front();
    if (it == shard.map.end()) {
      continue;  // Already displaced (should not happen; be safe).
    }
    shard.bytes -= EntryFootprint(it->second.model, it->second.has_model);
    shard.map.erase(it);
    ++shard.evictions;
  }
}

std::optional<SharedSolverCache::Hit> SharedSolverCache::Lookup(
    size_t key, const void* self) const {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    return std::nullopt;
  }
  Hit hit;
  hit.sat = it->second.sat;
  hit.has_model = it->second.has_model;
  if (hit.has_model) {
    hit.model = it->second.model;  // Copied under the lock.
  }
  hit.cross_worker = it->second.owner != self;
  if (it->second.preloaded) {
    ++shard.preloaded_hits;
  }
  return hit;
}

void SharedSolverCache::Insert(size_t key, bool sat, const Model* model,
                               const void* self) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto [it, inserted] = shard.map.try_emplace(key);
  if (!inserted) {
    // First writer wins; only upgrade a model-less sat entry with values so
    // later model requests can be served cross-worker too.
    if (it->second.sat && !it->second.has_model && sat && model != nullptr) {
      shard.bytes -= EntryFootprint(it->second.model, false);
      it->second.model = *model;
      it->second.has_model = true;
      shard.bytes += EntryFootprint(it->second.model, true);
      EvictToBudget(shard);
    }
    return;
  }
  it->second.sat = sat;
  it->second.owner = self;
  if (model != nullptr) {
    // A model too large for the whole shard budget is stripped rather than
    // cycling the entire shard through eviction; the sat verdict alone is
    // still worth sharing.
    if (EntryFootprint(*model, true) <= shard_budget_) {
      it->second.model = *model;
      it->second.has_model = true;
    }
  }
  shard.bytes += EntryFootprint(it->second.model, it->second.has_model);
  shard.order.push_back(key);
  EvictToBudget(shard);
}

size_t SharedSolverCache::size() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.map.size();
  }
  return n;
}

size_t SharedSolverCache::bytes() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.bytes;
  }
  return n;
}

SharedSolverCache::Stats SharedSolverCache::stats() const {
  Stats stats;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    stats.evictions += shard.evictions;
    stats.preloaded += shard.preloaded;
    stats.preloaded_hits += shard.preloaded_hits;
  }
  return stats;
}

std::vector<SharedSolverCache::SnapshotEntry> SharedSolverCache::Snapshot()
    const {
  std::vector<SnapshotEntry> entries;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [key, entry] : shard.map) {
      SnapshotEntry se;
      se.key = key;
      se.sat = entry.sat;
      se.has_model = entry.has_model;
      if (entry.has_model) {
        se.values.assign(entry.model.values.begin(), entry.model.values.end());
        se.names.assign(entry.model.names.begin(), entry.model.names.end());
      }
      entries.push_back(std::move(se));
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const SnapshotEntry& a, const SnapshotEntry& b) {
              return a.key < b.key;
            });
  return entries;
}

void SharedSolverCache::Preload(const std::vector<SnapshotEntry>& entries) {
  for (const SnapshotEntry& se : entries) {
    Shard& shard = ShardFor(se.key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto [it, inserted] = shard.map.try_emplace(se.key);
    if (!inserted) {
      continue;  // Live entry wins over the snapshot.
    }
    it->second.sat = se.sat;
    it->second.owner = nullptr;  // No solver owns it: every hit is cross-run.
    it->second.preloaded = true;
    if (se.has_model) {
      Model model;
      model.values.insert(se.values.begin(), se.values.end());
      model.names.insert(se.names.begin(), se.names.end());
      if (EntryFootprint(model, true) <= shard_budget_) {
        it->second.model = std::move(model);
        it->second.has_model = true;
      }
    }
    shard.bytes += EntryFootprint(it->second.model, it->second.has_model);
    shard.order.push_back(se.key);
    ++shard.preloaded;
    EvictToBudget(shard);
  }
}

}  // namespace esd::solver

#include "src/solver/query_cache.h"

namespace esd::solver {

std::optional<SharedSolverCache::Hit> SharedSolverCache::Lookup(
    size_t key, const void* self) const {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    return std::nullopt;
  }
  Hit hit;
  hit.sat = it->second.sat;
  hit.has_model = it->second.has_model;
  if (hit.has_model) {
    hit.model = it->second.model;  // Copied under the lock.
  }
  hit.cross_worker = it->second.owner != self;
  return hit;
}

void SharedSolverCache::Insert(size_t key, bool sat, const Model* model,
                               const void* self) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto [it, inserted] = shard.map.try_emplace(key);
  if (!inserted) {
    // First writer wins; only upgrade a model-less sat entry with values so
    // later model requests can be served cross-worker too.
    if (it->second.sat && !it->second.has_model && sat && model != nullptr) {
      it->second.model = *model;
      it->second.has_model = true;
    }
    return;
  }
  it->second.sat = sat;
  it->second.owner = self;
  if (model != nullptr) {
    it->second.model = *model;
    it->second.has_model = true;
  }
  shard.order.push_back(key);
  if (shard.map.size() > kShardCap) {
    shard.map.erase(shard.order.front());
    shard.order.pop_front();
  }
}

size_t SharedSolverCache::size() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.map.size();
  }
  return n;
}

}  // namespace esd::solver

// Example: debugging a library deadlock — the SQLite-shaped lock-order
// inversion (§7.1, bug #1672 shape).
//
// Shows the synthesized schedule itself: the happens-before events ESD
// writes into the execution file, which are exactly the "causality chain"
// the paper says removes the guesswork from concurrency debugging.
#include <cstdio>

#include "src/core/synthesizer.h"
#include "src/replay/replayer.h"
#include "src/report/coredump.h"
#include "src/workloads/workloads.h"

using namespace esd;

int main() {
  std::printf("== ESD example: SQLite-shaped recursive-lock deadlock ==\n\n");
  workloads::Workload w = workloads::MakeWorkload("sqlite");

  auto dump = workloads::CaptureDump(*w.module, w.trigger);
  if (!dump.has_value()) {
    std::printf("trigger failed\n");
    return 1;
  }
  std::printf("[1] reported deadlock stacks:\n%s\n",
              report::CoreDumpToText(*w.module, *dump).c_str());

  core::Synthesizer synthesizer(w.module.get(), {});
  core::SynthesisResult result = synthesizer.Synthesize(*dump);
  if (!result.success) {
    std::printf("synthesis failed: %s\n", result.failure_reason.c_str());
    return 1;
  }
  std::printf("[2] synthesized in %.3fs; the causality chain:\n", result.seconds);
  for (const replay::HbEvent& ev : result.file.happens_before) {
    const char* kind = "";
    switch (ev.kind) {
      case vm::SchedEvent::Kind::kMutexLock:
        kind = "lock   ";
        break;
      case vm::SchedEvent::Kind::kMutexUnlock:
        kind = "unlock ";
        break;
      case vm::SchedEvent::Kind::kCondWait:
        kind = "wait   ";
        break;
      case vm::SchedEvent::Kind::kCondWake:
        kind = "wake   ";
        break;
      case vm::SchedEvent::Kind::kThreadCreate:
        kind = "create ";
        break;
      case vm::SchedEvent::Kind::kThreadExit:
        kind = "exit   ";
        break;
      default:
        kind = "?      ";
        break;
    }
    std::printf("    T%u %s %s\n", ev.tid, kind, ev.site.c_str());
  }

  std::printf("\n[3] environment ESD inferred (the WAL-mode byte):\n");
  for (const auto& [name, value] : result.file.inputs) {
    std::printf("    %-18s = %llu", name.c_str(), (unsigned long long)value);
    if (value >= 32 && value < 127) {
      std::printf("  ('%c')", static_cast<char>(value));
    }
    std::printf("\n");
  }

  replay::ReplayResult strict =
      replay::Replay(*w.module, result.file, replay::ReplayMode::kStrict);
  replay::ReplayResult hb =
      replay::Replay(*w.module, result.file, replay::ReplayMode::kHappensBefore);
  std::printf("\n[4] strict playback: %s; happens-before playback: %s\n",
              strict.bug_reproduced ? "deadlock reproduced" : "FAILED",
              hb.bug_reproduced ? "deadlock reproduced" : "FAILED");
  return strict.bug_reproduced && hb.bug_reproduced ? 0 : 1;
}

// Quickstart: the full ESD pipeline on the paper's Listing 1, built with the
// C++ IR builder API.
//
// The story (paper §2): a user hits a deadlock and files a bug report with
// the coredump. The developer feeds program + coredump to ESD, which infers
// the inputs (getchar() == 'm', getenv("mode")[0] == 'Y') and the thread
// schedule, then plays the deadlock back deterministically.
#include <cstdio>

#include "src/core/synthesizer.h"
#include "src/ir/builder.h"
#include "src/ir/verifier.h"
#include "src/replay/replayer.h"
#include "src/report/coredump.h"
#include "src/workloads/trigger.h"

using namespace esd;

namespace {

// Builds the Listing 1 program with the ir::ModuleBuilder API (the textual
// form of the same program lives in src/workloads/concurrency_workloads.cc).
void BuildListing1(ir::Module* module) {
  ir::ModuleBuilder mb(module);
  mb.DeclareExternal("getchar", ir::Type::kI32, {});
  mb.DeclareExternal("getenv", ir::Type::kPtr, {ir::Type::kPtr});
  mb.DeclareExternal("thread_create", ir::Type::kI32,
                     {ir::Type::kPtr, ir::Type::kPtr});
  mb.DeclareExternal("thread_join", ir::Type::kVoid, {ir::Type::kI32});
  mb.DeclareExternal("mutex_lock", ir::Type::kVoid, {ir::Type::kPtr});
  mb.DeclareExternal("mutex_unlock", ir::Type::kVoid, {ir::Type::kPtr});
  mb.AddGlobal("mode", 4);
  mb.AddGlobal("idx", 4);
  mb.AddGlobal("m1", 8);
  mb.AddGlobal("m2", 8);
  mb.AddStringGlobal("env_mode", "mode");

  {
    ir::FunctionBuilder fb = mb.BeginFunction("critical_section", ir::Type::kVoid, {});
    uint32_t swap = fb.Block("swap");
    uint32_t done = fb.Block("done");
    fb.Call("mutex_lock", {fb.GlobalAddr("m1")});
    fb.Call("mutex_lock", {fb.GlobalAddr("m2")});
    ir::Value mode = fb.Load(ir::Type::kI32, fb.GlobalAddr("mode"));
    ir::Value is_y = fb.ICmp(ir::CmpPred::kEq, mode, fb.ConstI32(1));
    ir::Value idx = fb.Load(ir::Type::kI32, fb.GlobalAddr("idx"));
    ir::Value is_one = fb.ICmp(ir::CmpPred::kEq, idx, fb.ConstI32(1));
    fb.CondBr(fb.And(is_y, is_one), swap, done);
    fb.SetBlock(swap);
    fb.Call("mutex_unlock", {fb.GlobalAddr("m1")});
    fb.Call("mutex_lock", {fb.GlobalAddr("m1")});  // Line 12: the inner lock.
    fb.Br(done);
    fb.SetBlock(done);
    fb.Call("mutex_unlock", {fb.GlobalAddr("m2")});
    fb.Call("mutex_unlock", {fb.GlobalAddr("m1")});
    fb.Ret();
    fb.Finish();
  }
  {
    ir::FunctionBuilder fb =
        mb.BeginFunction("worker", ir::Type::kVoid, {ir::Type::kPtr});
    fb.Call("critical_section", {});
    fb.Ret();
    fb.Finish();
  }
  {
    ir::FunctionBuilder fb = mb.BeginFunction("main", ir::Type::kI32, {});
    uint32_t inc = fb.Block("inc");
    uint32_t checkenv = fb.Block("checkenv");
    uint32_t mod_y = fb.Block("mod_y");
    uint32_t mod_z = fb.Block("mod_z");
    uint32_t spawn = fb.Block("spawn");
    ir::Value c = fb.Call("getchar", {});
    fb.CondBr(fb.ICmp(ir::CmpPred::kEq, c, fb.ConstI32('m')), inc, checkenv);
    fb.SetBlock(inc);
    ir::Value old_idx = fb.Load(ir::Type::kI32, fb.GlobalAddr("idx"));
    fb.Store(fb.Add(old_idx, fb.ConstI32(1)), fb.GlobalAddr("idx"));
    fb.Br(checkenv);
    fb.SetBlock(checkenv);
    ir::Value env = fb.Call("getenv", {fb.GlobalAddr("env_mode")});
    ir::Value e0 = fb.Load(ir::Type::kI8, env);
    fb.CondBr(fb.ICmp(ir::CmpPred::kEq, e0, fb.ConstI8('Y')), mod_y, mod_z);
    fb.SetBlock(mod_y);
    fb.Store(fb.ConstI32(1), fb.GlobalAddr("mode"));
    fb.Br(spawn);
    fb.SetBlock(mod_z);
    fb.Store(fb.ConstI32(2), fb.GlobalAddr("mode"));
    fb.Br(spawn);
    fb.SetBlock(spawn);
    ir::Value t1 = fb.Call("thread_create",
                           {fb.FuncAddr("worker"), ir::FunctionBuilder::NullPtr()});
    ir::Value t2 = fb.Call("thread_create",
                           {fb.FuncAddr("worker"), ir::FunctionBuilder::NullPtr()});
    fb.Call("thread_join", {t1});
    fb.Call("thread_join", {t2});
    fb.Ret(fb.ConstI32(0));
    fb.Finish();
  }
}

}  // namespace

int main() {
  std::printf("== ESD quickstart: the Listing 1 deadlock ==\n\n");

  ir::Module module;
  BuildListing1(&module);
  auto errors = ir::Verify(module);
  if (!errors.empty()) {
    std::printf("IR error: %s\n", errors[0].c_str());
    return 1;
  }
  std::printf("[1] built the program: %zu functions, %zu IR instructions\n",
              module.NumFunctions(), module.TotalInstructions());

  // The "user side": one unlucky run deadlocks; the crash handler captures
  // a coredump. No tracing, no instrumentation (§2).
  workloads::Trigger trigger;
  trigger.inputs = {{"getchar", 'm'}, {"env:mode[0]", 'Y'}};
  trigger.schedule = {{1, 3, 2}, {2, 1, 1}};
  auto dump = workloads::CaptureDump(module, trigger);
  if (!dump.has_value()) {
    std::printf("trigger failed to manifest the deadlock\n");
    return 1;
  }
  std::printf("[2] user's run deadlocked; coredump captured:\n%s\n",
              report::CoreDumpToText(module, *dump).c_str());

  // The "developer side": synthesize an execution from the coredump alone.
  core::Synthesizer synthesizer(&module, {});
  core::SynthesisResult result = synthesizer.Synthesize(*dump);
  if (!result.success) {
    std::printf("synthesis failed: %s\n", result.failure_reason.c_str());
    return 1;
  }
  std::printf("[3] ESD synthesized an execution in %.3fs "
              "(%llu instructions explored, %llu states)\n",
              result.seconds, (unsigned long long)result.instructions,
              (unsigned long long)result.states_created);
  std::printf("    inferred inputs:\n");
  for (const auto& [name, value] : result.file.inputs) {
    std::printf("      %-16s = %llu", name.c_str(), (unsigned long long)value);
    if (value >= 32 && value < 127) {
      std::printf("  ('%c')", static_cast<char>(value));
    }
    std::printf("\n");
  }

  // Play it back, twice, to show determinism.
  for (int round = 1; round <= 2; ++round) {
    replay::ReplayResult r =
        replay::Replay(module, result.file, replay::ReplayMode::kStrict);
    std::printf("[4.%d] playback: %s\n", round,
                r.bug_reproduced ? "deadlock reproduced deterministically"
                                 : "bug did NOT manifest");
    if (!r.bug_reproduced) {
      return 1;
    }
  }
  std::printf("\nDone: attach your debugger via `esdplay --trace` for the "
              "instruction-level view.\n");
  return 0;
}

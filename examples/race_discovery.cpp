// Example: data-race schedule synthesis (§4.2).
//
// Two threads increment a shared counter without holding a lock. The report
// is a failed assertion in main — not the race itself; the race happened
// earlier (§3.1: "B is where the inconsistency was detected — not where the
// race occurred"). ESD's Eraser-style detector flags the unprotected
// accesses during exploration, inserts preemption points there, and finds
// the lost-update interleaving that makes the assert fail.
#include <cstdio>

#include "src/core/synthesizer.h"
#include "src/ir/parser.h"
#include "src/replay/replayer.h"
#include "src/workloads/workloads.h"

using namespace esd;

namespace {

constexpr char kRacyCounter[] = R"(
global $counter = zero 4
global $iters_name = str "iters"

func @bump(%arg: ptr) : void {
entry:
  %v = load i32, $counter        ; racy read
  %n = add %v, i32 1
  %pad = mul %n, i32 1
  store %n, $counter             ; racy write (lost-update window above)
  ret
}

func @main() : i32 {
entry:
  %iters = call @esd_input_i32($iters_name)
  %go = icmp eq %iters, i32 2
  condbr %go, run, skip
run:
  %t1 = call @thread_create(@bump, null)
  %t2 = call @thread_create(@bump, null)
  call @thread_join(%t1)
  call @thread_join(%t2)
  %v = load i32, $counter
  %ok = icmp eq %v, i32 2
  call @esd_assert(%ok)          ; fails iff an increment was lost
  ret i32 0
skip:
  ret i32 0
}
)";

}  // namespace

int main() {
  std::printf("== ESD example: lost-update data race ==\n\n");
  auto module = workloads::ParseWorkload(kRacyCounter);

  // The bug report: "the assert in main fired once in production". We
  // construct the coredump by hand — ESD needs nothing else.
  report::CoreDump dump;
  dump.kind = vm::BugInfo::Kind::kAssertFail;
  uint32_t main_fn = *module->FindFunction("main");
  const ir::Function& fn = module->Func(main_fn);
  for (uint32_t b = 0; b < fn.blocks.size(); ++b) {
    for (uint32_t i = 0; i < fn.blocks[b].insts.size(); ++i) {
      const ir::Instruction& inst = fn.blocks[b].insts[i];
      if (inst.op == ir::Opcode::kCall && inst.callee != ir::kInvalidIndex &&
          module->Func(inst.callee).name == "esd_assert") {
        dump.fault_pc = ir::InstRef{main_fn, b, i};
      }
    }
  }
  dump.fault_tid = 0;
  report::ThreadDump td;
  td.tid = 0;
  td.stack = {dump.fault_pc};
  dump.threads.push_back(td);
  std::printf("[1] bug report: assert failed at %s\n\n",
              module->Describe(dump.fault_pc).c_str());

  core::SynthesisOptions options;
  options.enable_race_detection = true;
  core::Synthesizer synthesizer(module.get(), options);
  core::SynthesisResult result = synthesizer.Synthesize(dump);
  if (!result.success) {
    std::printf("synthesis failed: %s\n", result.failure_reason.c_str());
    return 1;
  }
  std::printf("[2] ESD found the racy interleaving in %.3fs "
              "(%llu states explored)\n",
              result.seconds, (unsigned long long)result.states_created);
  std::printf("    switch points in the synthesized schedule: %zu\n",
              result.file.strict.size());

  replay::ReplayResult r =
      replay::Replay(*module, result.file, replay::ReplayMode::kStrict);
  std::printf("[3] playback: %s (%s)\n",
              r.bug_reproduced ? "assert failure reproduced" : "no failure",
              r.bug.message.c_str());
  std::printf("\nThe schedule interleaves the two bump() bodies so one "
              "increment is lost: counter == 1 != 2.\n");
  return r.bug_reproduced ? 0 : 1;
}

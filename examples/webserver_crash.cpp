// Example: reproducing a remote-input crash — the ghttpd log-buffer
// overflow (§7.1, [16]).
//
// The crash depends entirely on what arrived over the network, which the
// coredump does not contain. ESD reconstructs a malicious request from the
// crash location alone: a well-formed "GET " method followed by a URL long
// enough to overflow the 16-byte log buffer.
#include <cstdio>

#include "src/core/synthesizer.h"
#include "src/replay/replayer.h"
#include "src/report/coredump.h"
#include "src/workloads/workloads.h"

using namespace esd;

int main() {
  std::printf("== ESD example: ghttpd GET-request buffer overflow ==\n\n");
  workloads::Workload w = workloads::MakeWorkload("ghttpd");

  auto dump = workloads::CaptureDump(*w.module, w.trigger);
  if (!dump.has_value()) {
    std::printf("trigger failed\n");
    return 1;
  }
  std::printf("[1] the server crashed on some request; the dump says only:\n");
  std::printf("    %s at %s\n\n", std::string(vm::BugKindName(dump->kind)).c_str(),
              w.module->Describe(dump->fault_pc).c_str());

  core::Synthesizer synthesizer(w.module.get(), {});
  core::SynthesisResult result = synthesizer.Synthesize(*dump);
  if (!result.success) {
    std::printf("synthesis failed: %s\n", result.failure_reason.c_str());
    return 1;
  }
  std::printf("[2] ESD synthesized a crashing request in %.3fs:\n", result.seconds);

  // Assemble the inferred request bytes in order.
  std::string request(40, '.');
  for (const auto& [name, value] : result.file.inputs) {
    if (name.rfind("request[", 0) == 0) {
      size_t index = std::strtoul(name.c_str() + 8, nullptr, 10);
      if (index < request.size()) {
        request[index] =
            value >= 32 && value < 127 ? static_cast<char>(value)
                                       : (value == 0 ? '0' : '?');
      }
    }
  }
  std::printf("    request = \"%s\"\n", request.c_str());
  std::printf("    (a \"GET \" method and a URL with enough non-NUL bytes to "
              "overflow the log buffer)\n\n");

  replay::ReplayResult r =
      replay::Replay(*w.module, result.file, replay::ReplayMode::kStrict);
  std::printf("[3] playback: %s (%s)\n",
              r.bug_reproduced ? "crash reproduced" : "no crash",
              r.bug.message.c_str());
  return r.bug_reproduced ? 0 : 1;
}

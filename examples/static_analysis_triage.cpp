// Example: weeding out static-analysis false positives with ESD (§8).
//
// The program below has two lock-order inversions a static checker flags:
//   - update() vs audit(): a real AB-BA deadlock two threads can hit;
//   - maintenance() vs update(): a FALSE positive — the inverted order in
//     maintenance() runs only before the worker threads exist, so no
//     execution can interleave them into a deadlock.
// The path-insensitive checker cannot tell the difference; ESD can: it
// synthesizes an execution for the first warning and exhausts the search
// space for the second.
#include <cstdio>

#include "src/analysis/lock_order.h"
#include "src/core/warning_validation.h"
#include "src/workloads/workloads.h"

using namespace esd;

namespace {

constexpr char kProgram[] = R"(
global $accounts = zero 8
global $ledger = zero 8

; Worker A: accounts, then ledger.
func @update(%arg: ptr) : void {
entry:
  call @mutex_lock($accounts)
  call @mutex_lock($ledger)
  call @mutex_unlock($ledger)
  call @mutex_unlock($accounts)
  ret
}

; Worker B: ledger, then accounts -- a real inversion against update().
func @audit(%arg: ptr) : void {
entry:
  call @mutex_lock($ledger)
  call @mutex_lock($accounts)
  call @mutex_unlock($accounts)
  call @mutex_unlock($ledger)
  ret
}

; Startup maintenance also takes ledger before accounts, but it runs in
; main BEFORE any worker thread exists: statically an inversion, dynamically
; harmless.
func @maintenance() : void {
entry:
  call @mutex_lock($ledger)
  call @mutex_lock($accounts)
  call @mutex_unlock($accounts)
  call @mutex_unlock($ledger)
  ret
}

func @main() : i32 {
entry:
  call @maintenance()
  %t1 = call @thread_create(@update, null)
  %t2 = call @thread_create(@audit, null)
  call @thread_join(%t1)
  call @thread_join(%t2)
  ret i32 0
}
)";

}  // namespace

int main() {
  std::printf("== ESD example: validating static deadlock warnings ==\n\n");
  auto module = workloads::ParseWorkload(kProgram);

  auto warnings = analysis::FindLockOrderWarnings(*module);
  std::printf("[1] static checker reports %zu potential inversions:\n",
              warnings.size());
  for (size_t i = 0; i < warnings.size(); ++i) {
    std::printf("    [%zu] %s  vs  %s\n", i,
                module->Describe(warnings[i].ab.acquire_site).c_str(),
                module->Describe(warnings[i].ba.acquire_site).c_str());
  }

  core::SynthesisOptions options;
  options.time_cap_seconds = 20.0;
  auto validated = core::ValidateLockOrderWarnings(*module, options);
  std::printf("\n[2] ESD validation:\n");
  int confirmed = 0;
  for (size_t i = 0; i < validated.size(); ++i) {
    if (validated[i].confirmed) {
      ++confirmed;
      std::printf("    [%zu] TRUE POSITIVE  (deadlock synthesized, "
                  "fingerprint %s)\n",
                  i, replay::Fingerprint(validated[i].synthesis.file).c_str());
    } else {
      std::printf("    [%zu] false positive (no execution reaches it: %s)\n", i,
                  validated[i].synthesis.failure_reason.c_str());
    }
  }
  std::printf("\n%d of %zu warnings are real; the rest would have wasted a "
              "developer's afternoon.\n",
              confirmed, validated.size());
  return 0;
}

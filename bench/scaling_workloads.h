// Strong-scaling synthesis workloads for bench_portfolio.
//
// The Table 1 miniatures manifest within a few dozen states — perfect for
// time-to-first-manifestation trajectories, useless for measuring how
// exploration throughput scales with workers: thread startup alone costs
// more than the whole search. These two workloads make the *pruned* search
// space large on purpose, with a construction the pruning layers provably
// cannot collapse:
//
// Two threads each apply 6 affine updates to one shared accumulator under
// one shared mutex — thread A computes acc = 3*acc + 1, thread B computes
// acc = 5*acc + 3. The maps do not commute ((3-1)*3 != (5-1)*1), so every
// distinct ordering of the critical sections produces a *distinct*
// accumulator value (verified exhaustively over all C(12,6) = 924 orders):
// state dedup cannot merge any two interleaving prefixes, and sleep sets
// cannot skip any fork, because every pair of updates conflicts on the
// same mutex and the same global. Each update also runs a short spin of
// pure arithmetic inside the critical section, so a state costs enough
// interpreter work that per-worker overhead (handoff, steal probes) stays
// a small fraction of a step.
//
// The planted bug is armed by one ordering with exactly 4 context
// switches — the race strategy's full preemption budget (Chess-style
// iterative context bounding), so the target sits in the last generation
// of the bounded search rather than on the first dive — and neither a
// straight run of one thread nor a simple alternation. The engine
// genuinely traverses the interleaving tree (thousands of states, hundreds
// of milliseconds at one worker), which is what makes aggregate states/sec
// at jobs=4 vs jobs=1 a real scaling signal.
#ifndef ESD_BENCH_SCALING_WORKLOADS_H_
#define ESD_BENCH_SCALING_WORKLOADS_H_

#include <memory>

#include "src/workloads/workloads.h"

namespace esd::bench {

// Lost-update shape: main asserts the accumulator did NOT take the value
// 6475774, which is produced exactly by the ordering ABAABBBBBAAA (and by
// no other). The report is the assert site (workloads::AssertSiteDump);
// the buggy interleaving is pure schedule, no inputs.
inline std::shared_ptr<ir::Module> RaceScalingModule() {
  return workloads::ParseWorkload(R"(
global $acc = zero 4
global $m = zero 8

func @mix_a(%arg: ptr) : void {
entry:
  %slot = alloca 4
  store i32 0, %slot
  br loop
loop:
  %i = load i32, %slot
  %more = icmp ult %i, i32 6
  condbr %more, body, done
body:
  call @mutex_lock($m)
  %v = load i32, $acc
  %t = mul %v, i32 3
  %n = add %t, i32 1
  store %n, $acc
  %spin = alloca 4
  store i32 0, %spin
  br grind
grind:
  %g = load i32, %spin
  %gm = icmp ult %g, i32 6
  condbr %gm, gbody, gdone
gbody:
  %x = mul %g, i32 2654435761
  %y = add %x, i32 40503
  %g2 = add %g, i32 1
  store %g2, %spin
  br grind
gdone:
  call @mutex_unlock($m)
  %i2 = add %i, i32 1
  store %i2, %slot
  br loop
done:
  ret
}

func @mix_b(%arg: ptr) : void {
entry:
  %slot = alloca 4
  store i32 0, %slot
  br loop
loop:
  %i = load i32, %slot
  %more = icmp ult %i, i32 6
  condbr %more, body, done
body:
  call @mutex_lock($m)
  %v = load i32, $acc
  %t = mul %v, i32 5
  %n = add %t, i32 3
  store %n, $acc
  %spin = alloca 4
  store i32 0, %spin
  br grind
grind:
  %g = load i32, %spin
  %gm = icmp ult %g, i32 6
  condbr %gm, gbody, gdone
gbody:
  %x = mul %g, i32 2654435761
  %y = add %x, i32 40503
  %g2 = add %g, i32 1
  store %g2, %spin
  br grind
gdone:
  call @mutex_unlock($m)
  %i2 = add %i, i32 1
  store %i2, %slot
  br loop
done:
  ret
}

func @main() : i32 {
entry:
  %t1 = call @thread_create(@mix_a, null)
  %t2 = call @thread_create(@mix_b, null)
  call @thread_join(%t1)
  call @thread_join(%t2)
  %v = load i32, $acc
  %ok = icmp ne %v, i32 6475774
  call @esd_assert(%ok)
  ret i32 0
}
)");
}

// Lock-order-inversion shape: thread B reads the accumulator after its own
// six updates and inverts its lock order only when it reads 245143 — the
// value produced exactly by the ordering ABBABBABB (B's six updates done,
// A's first three interleaved in between; unique among the 84 such
// prefixes). In that window B takes m2 before m1 while A, after its three
// remaining updates, takes m1 before m2: circular wait. Every other
// ordering keeps both threads on the m1->m2 order.
inline std::shared_ptr<ir::Module> DeadlockScalingModule() {
  return workloads::ParseWorkload(R"(
global $acc = zero 4
global $m = zero 8
global $m1 = zero 8
global $m2 = zero 8

func @grind_a(%arg: ptr) : void {
entry:
  %slot = alloca 4
  store i32 0, %slot
  br loop
loop:
  %i = load i32, %slot
  %more = icmp ult %i, i32 6
  condbr %more, body, locks
body:
  call @mutex_lock($m)
  %v = load i32, $acc
  %t = mul %v, i32 3
  %n = add %t, i32 1
  store %n, $acc
  %spin = alloca 4
  store i32 0, %spin
  br grind
grind:
  %g = load i32, %spin
  %gm = icmp ult %g, i32 6
  condbr %gm, gbody, gdone
gbody:
  %x = mul %g, i32 2654435761
  %y = add %x, i32 40503
  %g2 = add %g, i32 1
  store %g2, %spin
  br grind
gdone:
  call @mutex_unlock($m)
  %i2 = add %i, i32 1
  store %i2, %slot
  br loop
locks:
  call @mutex_lock($m1)
  call @mutex_lock($m2)
  call @mutex_unlock($m2)
  call @mutex_unlock($m1)
  ret
}

func @grind_b(%arg: ptr) : void {
entry:
  %slot = alloca 4
  store i32 0, %slot
  br loop
loop:
  %i = load i32, %slot
  %more = icmp ult %i, i32 6
  condbr %more, body, gate
body:
  call @mutex_lock($m)
  %v = load i32, $acc
  %t = mul %v, i32 5
  %n = add %t, i32 3
  store %n, $acc
  %spin = alloca 4
  store i32 0, %spin
  br grind
grind:
  %g = load i32, %spin
  %gm = icmp ult %g, i32 6
  condbr %gm, gbody, gdone
gbody:
  %x = mul %g, i32 2654435761
  %y = add %x, i32 40503
  %g2 = add %g, i32 1
  store %g2, %spin
  br grind
gdone:
  call @mutex_unlock($m)
  %i2 = add %i, i32 1
  store %i2, %slot
  br loop
gate:
  call @mutex_lock($m)
  %a = load i32, $acc
  call @mutex_unlock($m)
  %hit = icmp eq %a, i32 245143
  condbr %hit, inverted, safe
inverted:
  call @mutex_lock($m2)
  call @mutex_lock($m1)
  call @mutex_unlock($m1)
  call @mutex_unlock($m2)
  ret
safe:
  call @mutex_lock($m1)
  call @mutex_lock($m2)
  call @mutex_unlock($m2)
  call @mutex_unlock($m1)
  ret
}

func @main() : i32 {
entry:
  %t1 = call @thread_create(@grind_a, null)
  %t2 = call @thread_create(@grind_b, null)
  call @thread_join(%t1)
  call @thread_join(%t2)
  ret i32 0
}
)");
}

// The interleaving knowledge a failing run embodies, as sync-event-count
// switch directives (each lock or unlock is one event, two per update):
// A's update 1 (2 events), B's 1-2 (4), A's 2 (4), B's 3-4 (8), A's 3 (6),
// B's 5-6 + gate read + lock m2 (15), then A's 4-6 + lock m1 (13) — A then
// blocks on m2, B on m1.
inline workloads::Trigger DeadlockScalingTrigger() {
  workloads::Trigger trigger;
  trigger.schedule = {{1, 2, 2}, {2, 4, 1}, {1, 4, 2},
                      {2, 8, 1}, {1, 6, 2}, {2, 15, 1}};
  return trigger;
}

}  // namespace esd::bench

#endif  // ESD_BENCH_SCALING_WORKLOADS_H_

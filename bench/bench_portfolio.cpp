// Strong-scaling benchmark for the portfolio synthesis engine: aggregate
// exploration throughput (states/sec) and time-to-first-manifestation as
// the worker count sweeps jobs in {1, 2, 4, 8} (capped by ESD_BENCH_JOBS)
// over the deadlock and race workloads, in the default cooperative
// work-stealing mode (all workers drain one logical frontier; children are
// routed to fingerprint-hashed home workers; idle workers steal).
//
// Each (workload, jobs) cell repeats full synthesis and keeps the *best*
// per-run throughput (states_created / seconds) and the *fastest*
// time-to-first-manifestation: interference from background load only ever
// lowers throughput, so the max over repeats is the closest sample of the
// configuration's true speed — the multi-worker analogue of
// bench::MeasureTrajectory's fastest-run estimator, which is unusable here
// because cooperative runs are not state-for-state deterministic. Every
// run's execution file is verified by strict deterministic playback.
//
// Emits BENCH_portfolio.json with one record per cell ("listing1@j4"):
// states/sec, ttfm_seconds, the hot-path counters (including the new
// steals / steal_failures / states_handed_off / frontier_max_depth), and —
// on the jobs=4 records of the gated workloads, when the host actually has
// >= 4 cores — scale_ratio, the jobs=4 / jobs=1 throughput ratio that
// bench/check_perf_trajectory.py gates at >= 1.7x in CI.
//
// Environment knobs:
//   ESD_BENCH_JOBS    max worker count to sweep to (default 4, max 8).
//   ESD_BENCH_CAP_S   per-run time cap in seconds (default 10).
//   ESD_BENCH_SMOKE   1 = single repeat per cell, no in-binary scaling bar
//                     (CI emit step; the python gate still sees the JSON).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "bench/bench_common.h"
#include "bench/scaling_workloads.h"
#include "src/core/synthesizer.h"
#include "src/replay/replayer.h"

using namespace esd;

namespace {

struct BenchCase {
  std::string name;
  std::shared_ptr<ir::Module> module;
  report::CoreDump dump;
  // Gated workloads carry scale_ratio on their jobs=4 record and back the
  // in-binary >= 1.7x bar (ISSUE: one deadlock + one race workload).
  bool enforce_bar = false;
};

// One cell's estimators over the repeat loop.
struct CellSample {
  double states_per_sec = 0.0;  // max over repeats
  double ttfm_seconds = 0.0;    // min over repeats
  EventCounters counters;       // from the best-throughput repeat
  std::string winner;
  bool all_replayed = true;
};

int MaxJobs() {
  const char* env = std::getenv("ESD_BENCH_JOBS");
  int jobs = env != nullptr ? std::atoi(env) : 4;
  jobs = std::clamp(jobs, 1, 8);
  return jobs;
}

bool SmokeMode() {
  const char* env = std::getenv("ESD_BENCH_SMOKE");
  return env != nullptr && std::atoi(env) != 0;
}

// The scaling gate is only meaningful when the sweep can actually run its
// workers in parallel: a 2-core laptop or a 1-core container would read as
// an engine regression. Records from such hosts carry scale_ratio = 0 and
// the python gate skips the ratio check for them.
bool HostCanScaleTo(int jobs) {
  unsigned cores = std::thread::hardware_concurrency();
  return cores != 0 && static_cast<int>(cores) >= jobs;
}

CellSample MeasureCell(const BenchCase& c, int jobs, double cap, bool smoke,
                       std::vector<double>* calib_seconds) {
  CellSample cell;
  // Smoke mode still repeats three times: CI's emit step runs under
  // ESD_BENCH_SMOKE=1 and the jobs=4 scale_ratio it emits feeds the python
  // gate, so a single noisy run must not decide the ratio.
  const int min_runs = smoke ? 3 : 10;
  const double min_seconds = smoke ? 0.0 : 0.5;
  double total = 0.0;
  for (int i = 0; (i < min_runs || total < min_seconds) && i < 1000; ++i) {
    calib_seconds->push_back(bench::CalibBatchSeconds());
    core::SynthesisOptions options;
    options.time_cap_seconds = cap;
    options.jobs = static_cast<size_t>(jobs);
    core::Synthesizer synthesizer(c.module.get(), options);
    core::SynthesisResult result = synthesizer.Synthesize(c.dump);
    if (result.seconds <= 0.0) {
      break;
    }
    total += result.seconds;

    bool replayed = false;
    if (result.success) {
      replay::ReplayResult r =
          replay::Replay(*c.module, result.file, replay::ReplayMode::kStrict);
      replayed = r.completed && r.bug_reproduced;
    }
    cell.all_replayed &= replayed;

    double sps = static_cast<double>(result.states_created) / result.seconds;
    if (sps > cell.states_per_sec) {
      cell.states_per_sec = sps;
      cell.counters = result.counters;
      if (result.winning_worker >= 0) {
        cell.winner = result.workers[result.winning_worker].strategy;
      } else {
        cell.winner = "proximity (classic engine)";
      }
    }
    if (cell.ttfm_seconds == 0.0 || result.seconds < cell.ttfm_seconds) {
      cell.ttfm_seconds = result.seconds;
    }
  }
  return cell;
}

}  // namespace

int main() {
  double cap = bench::CapSeconds();
  int max_jobs = MaxJobs();
  bool smoke = SmokeMode();

  std::vector<BenchCase> cases;
  for (const char* name : {"listing1", "sqlite"}) {
    workloads::Workload w = workloads::MakeWorkload(name);
    auto dump = workloads::CaptureDump(*w.module, w.trigger);
    if (!dump.has_value()) {
      std::fprintf(stderr, "%s: trigger did not manifest the bug\n", name);
      return 1;
    }
    cases.push_back(BenchCase{w.name, w.module, *dump,
                              /*enforce_bar=*/false});
  }
  {
    // The §4.2 lost-update race: the report is the assert in main, the
    // race happened earlier.
    auto module = workloads::RacyCounterModule();
    cases.push_back(BenchCase{"racy-counter", module,
                              workloads::AssertSiteDump(*module),
                              /*enforce_bar=*/false});
  }
  // The gated strong-scaling pair (bench/scaling_workloads.h): search
  // spaces large enough (thousands of states, ~0.2-0.3s at one worker)
  // that aggregate throughput reflects parallel exploration, not thread
  // startup. The Table 1 miniatures above manifest within microseconds and
  // are reported for their time-to-first-manifestation trajectory only.
  {
    auto module = bench::DeadlockScalingModule();
    auto dump =
        workloads::CaptureDump(*module, bench::DeadlockScalingTrigger());
    if (!dump.has_value()) {
      std::fprintf(stderr,
                   "deadlock-scaling: trigger did not manifest the bug\n");
      return 1;
    }
    cases.push_back(
        BenchCase{"deadlock-scaling", module, *dump, /*enforce_bar=*/true});
  }
  {
    auto module = bench::RaceScalingModule();
    cases.push_back(BenchCase{"race-scaling", module,
                              workloads::AssertSiteDump(*module),
                              /*enforce_bar=*/true});
  }

  std::printf("Portfolio strong scaling: cooperative work-stealing frontier, "
              "jobs 1..%d (cap %.0fs per run%s)\n\n",
              max_jobs, cap, smoke ? ", smoke" : "");
  std::printf("%-13s | %-5s | %-11s | %-9s | %-7s | %-7s | %-7s | %s\n",
              "Workload", "jobs", "states/sec", "ttfm (s)", "scaling",
              "steals", "handoff", "winner strategy");
  std::printf("--------------+-------+-------------+-----------+---------+"
              "---------+---------+----------------\n");

  const int gate_jobs = 4;
  bool all_ok = true;
  bool bar_met = true;
  std::vector<bench::BenchRecord> trajectory;
  std::vector<double> calib_seconds;
  const std::string git_rev = bench::GitRev();
  for (const BenchCase& c : cases) {
    double base_sps = 0.0;
    for (int jobs = 1; jobs <= max_jobs; jobs *= 2) {
      CellSample cell = MeasureCell(c, jobs, cap, smoke, &calib_seconds);
      all_ok &= cell.all_replayed;
      if (jobs == 1) {
        base_sps = cell.states_per_sec;
      }
      double ratio =
          base_sps > 0.0 && jobs > 1 ? cell.states_per_sec / base_sps : 0.0;

      char scaling[16] = "-";
      if (jobs > 1) {
        std::snprintf(scaling, sizeof(scaling), "%.2fx", ratio);
      }
      std::printf("%-13s | %-5d | %-11.0f | %-9.5f | %-7s | %-7llu | %-7llu "
                  "| %s%s\n",
                  c.name.c_str(), jobs, cell.states_per_sec, cell.ttfm_seconds,
                  scaling,
                  static_cast<unsigned long long>(cell.counters.steals),
                  static_cast<unsigned long long>(
                      cell.counters.states_handed_off),
                  cell.winner.c_str(), cell.all_replayed ? "" : "  [FAILED]");

      bench::BenchRecord rec;
      rec.workload = c.name + "@j" + std::to_string(jobs);
      rec.states_per_sec = cell.states_per_sec;
      rec.ttfm_seconds = cell.ttfm_seconds;
      rec.counters = cell.counters;
      rec.git_rev = git_rev;
      if (jobs == gate_jobs && c.enforce_bar && HostCanScaleTo(gate_jobs)) {
        rec.scale_ratio = ratio;
        if (!smoke && ratio < 1.7) {
          bar_met = false;
        }
      }
      trajectory.push_back(std::move(rec));
    }
  }
  if (!calib_seconds.empty()) {
    double calib_best =
        *std::min_element(calib_seconds.begin(), calib_seconds.end());
    if (calib_best > 0.0) {
      for (bench::BenchRecord& rec : trajectory) {
        rec.calib_ops_per_sec = static_cast<double>(1 << 16) / calib_best;
      }
    }
  }
  if (auto path = bench::WriteBenchJson("portfolio", trajectory);
      path.has_value()) {
    std::printf("\nperf-trajectory records: %s\n", path->c_str());
  }

  std::printf("\n(states/sec = best aggregate throughput over repeats; "
              "ttfm = fastest wall clock to first\n manifestation; every "
              "run's execution file is verified by deterministic playback)\n");
  if (!HostCanScaleTo(gate_jobs)) {
    std::printf("note: host has %u cores (< %d); scaling bar not enforced "
                "and scale_ratio not recorded\n",
                std::thread::hardware_concurrency(), gate_jobs);
  } else if (!smoke && max_jobs >= gate_jobs && !bar_met) {
    std::printf("FAILED: jobs=%d aggregate states/sec below the 1.7x "
                "scaling bar on a gated workload\n", gate_jobs);
  }
  bool gate_ok = smoke || max_jobs < gate_jobs || !HostCanScaleTo(gate_jobs) ||
                 bar_met;
  return all_ok && gate_ok ? 0 : 1;
}

// Benchmarks the parallel portfolio synthesis engine: wall-clock time to
// synthesize the deadlock and race workloads with 1 worker (the classic
// single-threaded engine) versus N racing workers.
//
// The portfolio helps two ways: on multicore hardware the workers explore
// concurrently, and — independent of core count — strategy diversity means
// the luckiest (seed, schedule-weight, baseline) variant sets the finish
// time instead of the one configured strategy.
//
// Environment knobs:
//   ESD_BENCH_JOBS    comma-free max worker count to sweep to (default 4).
//   ESD_BENCH_CAP_S   per-run time cap in seconds (default 10).
#include <cstdio>
#include <cstdlib>

#include "bench/bench_common.h"
#include "src/core/synthesizer.h"
#include "src/replay/replayer.h"

using namespace esd;

namespace {

struct BenchCase {
  std::string name;
  std::shared_ptr<ir::Module> module;
  report::CoreDump dump;
};

int MaxJobs() {
  const char* env = std::getenv("ESD_BENCH_JOBS");
  int jobs = env != nullptr ? std::atoi(env) : 4;
  return jobs < 1 ? 1 : jobs;
}

}  // namespace

int main() {
  double cap = bench::CapSeconds();
  int max_jobs = MaxJobs();

  std::vector<BenchCase> cases;
  for (const char* name : {"listing1", "sqlite"}) {
    workloads::Workload w = workloads::MakeWorkload(name);
    auto dump = workloads::CaptureDump(*w.module, w.trigger);
    if (!dump.has_value()) {
      std::fprintf(stderr, "%s: trigger did not manifest the bug\n", name);
      return 1;
    }
    cases.push_back(BenchCase{w.name, w.module, *dump});
  }
  {
    // The §4.2 lost-update race: the report is the assert in main, the
    // race happened earlier.
    auto module = workloads::RacyCounterModule();
    cases.push_back(
        BenchCase{"racy-counter", module, workloads::AssertSiteDump(*module)});
  }

  std::printf("Portfolio synthesis: 1 worker vs N racing workers "
              "(cap %.0fs per run)\n\n", cap);
  std::printf("%-13s | %-5s | %-9s | %-12s | %-8s | %s\n", "Workload", "jobs",
              "wall (s)", "instructions", "speedup", "winner strategy");
  std::printf("--------------+-------+-----------+--------------+----------+"
              "----------------\n");

  bool all_ok = true;
  for (const BenchCase& c : cases) {
    double base_seconds = 0.0;
    for (int jobs = 1; jobs <= max_jobs; jobs *= 2) {
      core::SynthesisOptions options;
      options.time_cap_seconds = cap;
      options.jobs = static_cast<size_t>(jobs);
      core::Synthesizer synthesizer(c.module.get(), options);
      core::SynthesisResult result = synthesizer.Synthesize(c.dump);

      bool replayed = false;
      if (result.success) {
        replay::ReplayResult r =
            replay::Replay(*c.module, result.file, replay::ReplayMode::kStrict);
        replayed = r.completed && r.bug_reproduced;
      }
      all_ok &= replayed;

      std::string winner = "-";
      if (result.winning_worker >= 0) {
        winner = result.workers[result.winning_worker].strategy;
      } else if (jobs == 1) {
        winner = "proximity (classic engine)";
      }
      if (jobs == 1) {
        base_seconds = result.seconds;
      }
      char speedup[16];
      std::snprintf(speedup, sizeof(speedup), "%.2fx",
                    result.seconds > 0 ? base_seconds / result.seconds : 0.0);
      std::printf("%-13s | %-5d | %-9.3f | %-12llu | %-8s | %s%s\n",
                  c.name.c_str(), jobs, result.seconds,
                  static_cast<unsigned long long>(result.instructions),
                  jobs == 1 ? "1.00x" : speedup, winner.c_str(),
                  replayed ? "" : "  [FAILED]");
    }
  }
  std::printf("\n(speedup = 1-worker wall clock / N-worker wall clock; every "
              "row's execution file is\n verified by deterministic playback)\n");
  return all_ok ? 0 : 1;
}

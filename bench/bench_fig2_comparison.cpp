// Reproduces Figure 2 (§7.2): "Comparison of time to find a path to the
// bug: ESD vs. the two variants of KC. Bars that fade at the top indicate
// KC did not find a path by the end of the 1-hour experiment."
//
// Rows: ls1..ls4 (the four planted null derefs KC can find) followed by the
// Table 1 bugs (where KC times out). Columns: ESD, KC-DFS, KC-RandPath.
#include <cstdio>

#include "bench/bench_common.h"

using namespace esd;

int main() {
  double cap = bench::CapSeconds();
  std::printf("Figure 2: time to find a path to the bug (cap %.0fs; '*' = "
              "timeout, no path found)\n\n", cap);
  std::printf("%-10s | %-11s | %-11s | %-11s\n", "Bug", "ESD", "KC-DFS",
              "KC-RandPath");
  std::printf("-----------+-------------+-------------+-------------\n");

  std::vector<std::string> names = workloads::LsNames();
  for (const std::string& name : workloads::Table1Names()) {
    names.push_back(name);
  }

  bool shape_holds = true;
  for (const std::string& name : names) {
    workloads::Workload w = workloads::MakeWorkload(name);
    bench::ToolOutcome esd = bench::RunEsd(w, cap);
    bench::ToolOutcome dfs =
        bench::RunKcOn(w, baseline::KcOptions::Strategy::kDfs, cap);
    bench::ToolOutcome rnd =
        bench::RunKcOn(w, baseline::KcOptions::Strategy::kRandomPath, cap);
    std::printf("%-10s | %-11s | %-11s | %-11s\n", name.c_str(),
                bench::TimeCell(esd, cap).c_str(), bench::TimeCell(dfs, cap).c_str(),
                bench::TimeCell(rnd, cap).c_str());
    if (!esd.found) {
      shape_holds = false;  // ESD must solve every row.
    }
    bool is_ls = name.rfind("ls", 0) == 0;
    if (!is_ls && (dfs.found || rnd.found)) {
      // The paper's shape: KC fails on all real bugs. Finding one is not an
      // error of the build, but worth flagging.
      std::printf("           ^ note: KC found this real bug within the cap\n");
    }
  }
  std::printf("\nShape check vs the paper: ESD finds every bug; KC succeeds "
              "only on the shallow ls bugs.\n");
  return shape_holds ? 0 : 1;
}

// Reproduces Figure 4 (§7.3): "Synthesis time as a function of program
// size." — the Figure 3 sweep re-plotted against program size in KLOC
// (paper x-axis: 0.36 .. 40 KLOC). Only ESD appears, as in the paper.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/bpf/generator.h"

using namespace esd;

int main() {
  double cap = bench::CapSeconds();
  std::printf("Figure 4: ESD synthesis time vs program size (KLOC)\n\n");
  std::printf("%-10s | %-10s | %-11s\n", "KLOC", "Branches", "ESD");
  std::printf("-----------+------------+-------------\n");

  bool all = true;
  double prev_seconds = 0.0;
  for (uint32_t branches = 16; branches <= 2048; branches *= 2) {
    bpf::BpfParams params;
    params.num_branches = branches;
    params.input_dependent = branches;
    params.num_inputs = std::max<uint32_t>(4, branches / 16);
    bpf::BpfProgram program = bpf::Generate(params);

    workloads::Workload w;
    w.name = "bpf";
    w.module = program.module;
    w.trigger = program.trigger;
    w.expected_kind = vm::BugInfo::Kind::kDeadlock;

    bench::ToolOutcome esd = bench::RunEsd(w, cap);
    std::printf("%10.2f | %-10u | %-11s\n", program.kloc, branches,
                bench::TimeCell(esd, cap).c_str());
    all = all && esd.found;
    prev_seconds = esd.seconds;
  }
  (void)prev_seconds;
  std::printf("\nShape check vs the paper: time grows gently with program "
              "size and stays within the cap at every size.\n");
  return all ? 0 : 1;
}

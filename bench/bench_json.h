// BENCH_*.json: machine-readable perf-trajectory records.
//
// Every benchmark binary that measures end-to-end synthesis emits one
// `BENCH_<name>.json` next to its table output: a JSON array with one record
// per workload, carrying the states/sec throughput, the hot-path event
// counters (src/core/event_counters.h), and the git revision the numbers
// were measured at. CI uploads the files as artifacts and fails the
// perf-trajectory job when states/sec regresses by more than 10% against
// the committed baselines in bench/baselines/ (bench/check_perf_trajectory.py).
//
// The schema is deliberately flat so the checker stays a page of python:
//
//   [
//     {
//       "workload": "listing1",
//       "states_per_sec": 68493.2,
//       "counters": { "state_forks": 6599, "pages_copied": 1210, ... },
//       "git_rev": "7245d32"
//     },
//     ...
//   ]
//
// Environment knobs:
//   ESD_GIT_REV         revision stamp override (CI sets this; when absent,
//                       `git rev-parse --short HEAD` is asked, then "unknown")
//   ESD_BENCH_JSON_DIR  output directory for BENCH_*.json (default cwd)
#ifndef ESD_BENCH_BENCH_JSON_H_
#define ESD_BENCH_BENCH_JSON_H_

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "src/core/event_counters.h"

namespace esd::bench {

// One perf-trajectory sample: how fast one workload ran and what the hot
// paths did while it ran.
struct BenchRecord {
  std::string workload;
  double states_per_sec = 0.0;
  // Machine-speed calibration measured in the same load window as
  // states_per_sec: FingerprintMix64 throughput of a fixed scalar loop.
  // The CI gate divides states_per_sec by this, so a slow or loaded runner
  // does not read as an engine regression. 0 = not measured (the gate then
  // compares raw states/sec).
  double calib_ops_per_sec = 0.0;
  // Strong-scaling ratio (bench_portfolio): aggregate states/sec at the
  // swept jobs count divided by states/sec at jobs=1 on the same workload,
  // measured only when the host has at least that many cores. 0 = not
  // measured (single-core runner, or a bench that doesn't scale-sweep);
  // the CI gate then skips the ratio check for the record.
  double scale_ratio = 0.0;
  // Time-to-first-manifestation (bench_portfolio): fastest observed wall
  // seconds from search start to the first bug manifestation at this
  // record's jobs count. 0 = not measured.
  double ttfm_seconds = 0.0;
  EventCounters counters;
  std::string git_rev;
};

// Revision stamp for the records: ESD_GIT_REV when set (CI exports it from
// the checkout), else the working tree's `git rev-parse --short HEAD`, else
// "unknown" (the schema requires the key, not a live repository).
inline std::string GitRev() {
  if (const char* env = std::getenv("ESD_GIT_REV");
      env != nullptr && env[0] != '\0') {
    return env;
  }
  std::string rev;
  if (FILE* pipe = ::popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
    char buf[64];
    if (std::fgets(buf, sizeof(buf), pipe) != nullptr) {
      rev = buf;
      while (!rev.empty() && (rev.back() == '\n' || rev.back() == '\r')) {
        rev.pop_back();
      }
    }
    ::pclose(pipe);
  }
  return rev.empty() ? "unknown" : rev;
}

namespace json_detail {

inline void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

// %.17g: enough digits that the round-trip through ParseRecords is exact.
inline void AppendNumber(std::string* out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  *out += buf;
}

}  // namespace json_detail

// Serializes records as the JSON array documented in the header comment.
// Counter fields are emitted in EventCounters::ForEachField order.
inline std::string RecordsToJson(const std::vector<BenchRecord>& records) {
  std::string out = "[\n";
  for (size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    out += "  {\n    \"workload\": ";
    json_detail::AppendEscaped(&out, r.workload);
    out += ",\n    \"states_per_sec\": ";
    json_detail::AppendNumber(&out, r.states_per_sec);
    out += ",\n    \"calib_ops_per_sec\": ";
    json_detail::AppendNumber(&out, r.calib_ops_per_sec);
    out += ",\n    \"scale_ratio\": ";
    json_detail::AppendNumber(&out, r.scale_ratio);
    out += ",\n    \"ttfm_seconds\": ";
    json_detail::AppendNumber(&out, r.ttfm_seconds);
    out += ",\n    \"counters\": {";
    bool first = true;
    EventCounters::ForEachField(
        [&](std::string_view name, uint64_t EventCounters::*field) {
          out += first ? " " : ", ";
          first = false;
          out += '"';
          out += name;
          out += "\": ";
          out += std::to_string(r.counters.*field);
        });
    out += " },\n    \"git_rev\": ";
    json_detail::AppendEscaped(&out, r.git_rev);
    out += "\n  }";
    out += i + 1 < records.size() ? ",\n" : "\n";
  }
  out += "]\n";
  return out;
}

namespace json_detail {

// Minimal recursive-descent reader for exactly the BENCH_*.json subset:
// arrays, objects, strings with the escapes AppendEscaped emits, and
// numbers. Returns nullopt from ParseRecords on anything malformed or on a
// record missing a required key.
struct Reader {
  const char* p;
  const char* end;

  void SkipWs() {
    while (p < end && std::isspace(static_cast<unsigned char>(*p))) {
      ++p;
    }
  }
  bool Consume(char c) {
    SkipWs();
    if (p < end && *p == c) {
      ++p;
      return true;
    }
    return false;
  }
  bool ReadString(std::string* out) {
    SkipWs();
    if (p >= end || *p != '"') {
      return false;
    }
    ++p;
    out->clear();
    while (p < end && *p != '"') {
      if (*p == '\\') {
        if (++p >= end) {
          return false;
        }
        switch (*p) {
          case '"':
            out->push_back('"');
            break;
          case '\\':
            out->push_back('\\');
            break;
          case 'n':
            out->push_back('\n');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'u': {
            if (end - p < 5) {
              return false;
            }
            char hex[5] = {p[1], p[2], p[3], p[4], '\0'};
            out->push_back(static_cast<char>(std::strtoul(hex, nullptr, 16)));
            p += 4;
            break;
          }
          default:
            return false;
        }
        ++p;
      } else {
        out->push_back(*p++);
      }
    }
    return Consume('"');
  }
  bool ReadNumber(double* out) {
    SkipWs();
    char* after = nullptr;
    *out = std::strtod(p, &after);
    if (after == p) {
      return false;
    }
    p = after;
    return true;
  }
};

}  // namespace json_detail

// Parses text produced by RecordsToJson (or hand-edited baselines with the
// same shape) back into records. Unknown counter names are rejected; a
// record missing any of the four required keys is rejected.
inline std::optional<std::vector<BenchRecord>> ParseRecords(
    const std::string& text) {
  json_detail::Reader r{text.data(), text.data() + text.size()};
  if (!r.Consume('[')) {
    return std::nullopt;
  }
  std::vector<BenchRecord> records;
  if (r.Consume(']')) {
    return records;
  }
  do {
    if (!r.Consume('{')) {
      return std::nullopt;
    }
    BenchRecord rec;
    bool have_workload = false, have_sps = false, have_counters = false,
         have_rev = false;
    do {
      std::string key;
      if (!r.ReadString(&key) || !r.Consume(':')) {
        return std::nullopt;
      }
      if (key == "workload") {
        have_workload = r.ReadString(&rec.workload);
        if (!have_workload) {
          return std::nullopt;
        }
      } else if (key == "states_per_sec") {
        have_sps = r.ReadNumber(&rec.states_per_sec);
        if (!have_sps) {
          return std::nullopt;
        }
      } else if (key == "calib_ops_per_sec") {
        // Optional (absent in pre-calibration baselines): 0 when missing.
        if (!r.ReadNumber(&rec.calib_ops_per_sec)) {
          return std::nullopt;
        }
      } else if (key == "scale_ratio") {
        // Optional (absent in pre-scaling baselines): 0 when missing.
        if (!r.ReadNumber(&rec.scale_ratio)) {
          return std::nullopt;
        }
      } else if (key == "ttfm_seconds") {
        // Optional (bench_portfolio only): 0 when missing.
        if (!r.ReadNumber(&rec.ttfm_seconds)) {
          return std::nullopt;
        }
      } else if (key == "git_rev") {
        have_rev = r.ReadString(&rec.git_rev);
        if (!have_rev) {
          return std::nullopt;
        }
      } else if (key == "counters") {
        if (!r.Consume('{')) {
          return std::nullopt;
        }
        have_counters = true;
        if (!r.Consume('}')) {
          do {
            std::string field;
            double value = 0.0;
            if (!r.ReadString(&field) || !r.Consume(':') ||
                !r.ReadNumber(&value)) {
              return std::nullopt;
            }
            bool known = false;
            EventCounters::ForEachField(
                [&](std::string_view name, uint64_t EventCounters::*ptr) {
                  if (name == field) {
                    rec.counters.*ptr = static_cast<uint64_t>(value);
                    known = true;
                  }
                });
            if (!known) {
              return std::nullopt;
            }
          } while (r.Consume(','));
          if (!r.Consume('}')) {
            return std::nullopt;
          }
        }
      } else {
        return std::nullopt;
      }
    } while (r.Consume(','));
    if (!r.Consume('}') ||
        !(have_workload && have_sps && have_counters && have_rev)) {
      return std::nullopt;
    }
    records.push_back(std::move(rec));
  } while (r.Consume(','));
  if (!r.Consume(']')) {
    return std::nullopt;
  }
  r.SkipWs();
  if (r.p != r.end) {
    return std::nullopt;
  }
  return records;
}

// Writes BENCH_<name>.json into ESD_BENCH_JSON_DIR (default: cwd). Returns
// the path written, or nullopt on I/O failure.
inline std::optional<std::string> WriteBenchJson(
    const std::string& name, const std::vector<BenchRecord>& records) {
  std::string dir = ".";
  if (const char* env = std::getenv("ESD_BENCH_JSON_DIR");
      env != nullptr && env[0] != '\0') {
    dir = env;
  }
  std::string path = dir + "/BENCH_" + name + ".json";
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return std::nullopt;
  }
  std::string text = RecordsToJson(records);
  size_t written = std::fwrite(text.data(), 1, text.size(), f);
  bool ok = std::fclose(f) == 0 && written == text.size();
  if (!ok) {
    return std::nullopt;
  }
  return path;
}

}  // namespace esd::bench

#endif  // ESD_BENCH_BENCH_JSON_H_

#!/usr/bin/env python3
"""Perf-trajectory gate: compare freshly emitted BENCH_*.json against the
committed baselines in bench/baselines/.

Usage:
    check_perf_trajectory.py <baseline_dir> <current_dir> [--threshold PCT]

For every BENCH_<name>.json in <baseline_dir>, the same file must exist in
<current_dir>, and every baseline workload's states_per_sec must be within
PCT percent (default 10) below the baseline value. Improvements and new
workloads are always fine; a missing file, a missing workload, or a
regression beyond the threshold fails the gate.

When both records carry calib_ops_per_sec (the fixed FingerprintMix64
calibration loop measured in the same load window as the synthesis runs),
the gate compares *normalized* throughput — states_per_sec divided by
calib_ops_per_sec — so a slower or more loaded machine than the one that
produced the baseline does not read as an engine regression. Without
calibration on either side, raw states/sec is compared.

A current record carrying scale_ratio > 0 (bench_portfolio's jobs=4
records, emitted only when the host has enough cores to actually run the
sweep in parallel) is additionally gated at >= 1.7x: aggregate states/sec
at jobs=4 must be at least 1.7 times the jobs=1 throughput on the same
workload. Records without the field (single-core runners, non-scaling
benches, pre-scaling baselines) skip the check.

Counters are informational (printed on regression for diagnosis), not gated:
they shift legitimately whenever the engine's exploration changes, while
states/sec is the trajectory the ISSUE gates.
"""

SCALE_RATIO_BAR = 1.7

import argparse
import json
import pathlib
import sys


def load_records(path):
    with open(path) as f:
        data = json.load(f)
    if not isinstance(data, list):
        raise ValueError(f"{path}: expected a JSON array of records")
    records = {}
    for rec in data:
        for key in ("workload", "states_per_sec", "counters", "git_rev"):
            if key not in rec:
                raise ValueError(f"{path}: record missing required key '{key}'")
        records[rec["workload"]] = rec
    return records


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline_dir", type=pathlib.Path)
    parser.add_argument("current_dir", type=pathlib.Path)
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="max allowed states/sec regression, percent")
    args = parser.parse_args()

    baselines = sorted(args.baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"error: no BENCH_*.json baselines in {args.baseline_dir}",
              file=sys.stderr)
        return 1

    failed = False
    for baseline_path in baselines:
        current_path = args.current_dir / baseline_path.name
        if not current_path.exists():
            print(f"FAIL {baseline_path.name}: not emitted by the bench run")
            failed = True
            continue
        base = load_records(baseline_path)
        cur = load_records(current_path)
        for workload, base_rec in sorted(base.items()):
            if workload not in cur:
                print(f"FAIL {baseline_path.name}/{workload}: workload missing "
                      f"from the current run")
                failed = True
                continue
            cur_rec = cur[workload]
            base_sps = float(base_rec["states_per_sec"])
            cur_sps = float(cur_rec["states_per_sec"])
            base_calib = float(base_rec.get("calib_ops_per_sec", 0.0))
            cur_calib = float(cur_rec.get("calib_ops_per_sec", 0.0))
            if base_calib > 0 and cur_calib > 0:
                base_val, cur_val = base_sps / base_calib, cur_sps / cur_calib
                how = "states/calib-op"
            else:
                base_val, cur_val = base_sps, cur_sps
                how = "states/sec (uncalibrated)"
            delta = (100.0 * (cur_val - base_val) / base_val
                     if base_val > 0 else 0.0)
            verdict = "ok" if delta >= -args.threshold else "FAIL"
            print(f"{verdict:4} {baseline_path.name}/{workload}: "
                  f"{cur_sps:,.0f} states/sec vs baseline {base_sps:,.0f}, "
                  f"{how} {delta:+.1f}% (gate -{args.threshold:.0f}%) "
                  f"[baseline rev {base_rec['git_rev']}, "
                  f"current rev {cur_rec['git_rev']}]")
            if verdict == "FAIL":
                failed = True
                print(f"     baseline counters: {base_rec['counters']}")
                print(f"     current  counters: {cur[workload]['counters']}")
            ratio = float(cur_rec.get("scale_ratio", 0.0))
            if ratio > 0:
                scale_ok = ratio >= SCALE_RATIO_BAR
                print(f"{'ok' if scale_ok else 'FAIL':4} "
                      f"{baseline_path.name}/{workload}: strong-scaling "
                      f"ratio {ratio:.2f}x (gate >= {SCALE_RATIO_BAR}x)")
                if not scale_ok:
                    failed = True

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())

// Benchmarks the scenario-fuzzing subsystem: oracle throughput over the
// generated family, per bug kind. Every later performance PR is gated on
// this sweep staying green — a synthesis regression shows up here as
// either a throughput collapse or an outright verdict failure.
//
// For each kind the bench runs N seeded scenarios through the full oracle
// (synthesis + strict/hb replay + determinism + pruning/solver ablations)
// and reports scenarios/second plus aggregate search/solver effort. The
// process exits nonzero if any verdict fails, or (SMOKE off) if
// throughput drops below the floor of 5 scenarios/second — generous
// against the measured ~100/s, so only a catastrophic regression trips it.
//
// Environment knobs:
//   ESD_FUZZ_SEEDS   scenarios per kind (default 60).
//   ESD_BENCH_SMOKE  nonzero: run everything but skip the throughput gate.
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "src/fuzz/generator.h"
#include "src/fuzz/oracle.h"

using namespace esd;

int main() {
  const char* seeds_env = std::getenv("ESD_FUZZ_SEEDS");
  uint64_t seeds = seeds_env != nullptr ? std::strtoull(seeds_env, nullptr, 10) : 60;
  bool smoke = std::getenv("ESD_BENCH_SMOKE") != nullptr;

  std::printf("kind      seeds   pass   sec      scen/s   states     queries\n");
  bool all_ok = true;
  bool throughput_ok = true;
  for (fuzz::BugKind kind :
       {fuzz::BugKind::kDeadlock, fuzz::BugKind::kRace, fuzz::BugKind::kCrash,
        fuzz::BugKind::kRwUpgrade, fuzz::BugKind::kSemLostSignal,
        fuzz::BugKind::kBarrierMismatch}) {
    uint64_t pass = 0;
    uint64_t states = 0;
    uint64_t queries = 0;
    auto start = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < seeds; ++i) {
      fuzz::GeneratorParams params;
      params.kind = kind;
      params.seed = 10'000 + i;
      fuzz::GeneratedProgram program = fuzz::Generate(params);
      fuzz::OracleOptions options;
      fuzz::OracleVerdict verdict = fuzz::CheckScenario(program, options);
      if (verdict.ok) {
        ++pass;
        states += verdict.result.states_created;
        queries += verdict.result.solver.queries;
      } else {
        all_ok = false;
        std::fprintf(stderr, "FAIL: kind=%s seed=%llu stage=%s: %s\n",
                     std::string(fuzz::BugKindName(kind)).c_str(),
                     static_cast<unsigned long long>(10'000 + i),
                     verdict.stage.c_str(), verdict.failure.c_str());
      }
    }
    double sec = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                               start)
                     .count();
    double rate = sec > 0 ? static_cast<double>(seeds) / sec : 0.0;
    std::printf("%-9s %-7llu %-6llu %-8.3f %-8.1f %-10llu %llu\n",
                std::string(fuzz::BugKindName(kind)).c_str(),
                static_cast<unsigned long long>(seeds),
                static_cast<unsigned long long>(pass), sec, rate,
                static_cast<unsigned long long>(states),
                static_cast<unsigned long long>(queries));
    if (rate < 5.0) {
      throughput_ok = false;
    }
  }
  if (!all_ok) {
    std::fprintf(stderr, "bench_fuzz: FAILED (oracle verdict)\n");
    return 1;
  }
  if (!smoke && !throughput_ok) {
    std::fprintf(stderr, "bench_fuzz: FAILED (throughput below 5 scenarios/s)\n");
    return 1;
  }
  std::printf("bench_fuzz: OK%s\n", smoke ? " (smoke: gates skipped)" : "");
  return 0;
}

// Shared helpers for the paper-reproduction benchmark binaries.
//
// Environment knobs:
//   ESD_BENCH_CAP_S   per-tool time cap in seconds for the baseline runs
//                     (default 10; the paper used 3600). ESD itself is given
//                     the same cap.
//   ESD_BENCH_STRESS  number of stress-test runs per workload (default 20).
#ifndef ESD_BENCH_BENCH_COMMON_H_
#define ESD_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "src/baseline/kc.h"
#include "src/core/synthesizer.h"
#include "src/replay/replayer.h"
#include "src/vm/fingerprint.h"
#include "src/workloads/workloads.h"

namespace esd::bench {

inline double CapSeconds() {
  const char* env = std::getenv("ESD_BENCH_CAP_S");
  return env != nullptr ? std::atof(env) : 10.0;
}

inline int StressRuns() {
  const char* env = std::getenv("ESD_BENCH_STRESS");
  return env != nullptr ? std::atoi(env) : 20;
}

struct ToolOutcome {
  bool found = false;
  double seconds = 0.0;
};

// Runs full ESD synthesis (capture -> synthesize -> verify playback).
inline ToolOutcome RunEsd(const workloads::Workload& w, double cap,
                          core::SynthesisOptions options = {}) {
  ToolOutcome outcome;
  auto dump = workloads::CaptureDump(*w.module, w.trigger);
  if (!dump.has_value()) {
    return outcome;
  }
  options.time_cap_seconds = cap;
  core::Synthesizer synthesizer(w.module.get(), options);
  core::SynthesisResult result = synthesizer.Synthesize(*dump);
  outcome.seconds = result.seconds;
  if (!result.success) {
    return outcome;
  }
  replay::ReplayResult replayed =
      replay::Replay(*w.module, result.file, replay::ReplayMode::kStrict);
  outcome.found = replayed.bug_reproduced;
  return outcome;
}

inline ToolOutcome RunKcOn(const workloads::Workload& w,
                           baseline::KcOptions::Strategy strategy, double cap) {
  ToolOutcome outcome;
  auto dump = workloads::CaptureDump(*w.module, w.trigger);
  if (!dump.has_value()) {
    return outcome;
  }
  core::Goal goal = core::ExtractGoal(*w.module, *dump);
  baseline::KcOptions options;
  options.strategy = strategy;
  options.time_cap_seconds = cap;
  baseline::KcResult r = baseline::RunKc(*w.module, goal, options);
  outcome.found = r.found;
  outcome.seconds = r.seconds;
  return outcome;
}

// One machine-speed calibration batch: a fixed scalar FingerprintMix64
// loop, returning its wall-clock seconds. Interleaved with the synthesis
// runs in MeasureTrajectory so it samples the same load window; the CI gate
// divides states/sec by the derived ops/sec to cancel machine speed and
// background load out of the regression comparison.
inline double CalibBatchSeconds() {
  constexpr int kOps = 1 << 16;
  static volatile uint64_t sink;  // Keeps the loop from folding away.
  auto t0 = std::chrono::steady_clock::now();
  uint64_t h = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < kOps; ++i) {
    h = vm::FingerprintMix64(h + static_cast<uint64_t>(i));
  }
  sink = h;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Perf-trajectory sample for BENCH_*.json: repeats full synthesis until at
// least `min_runs` runs and `min_seconds` of accumulated engine time, then
// reports states/sec from the *fastest* run. A single run on these
// workloads finishes in hundreds of microseconds, where timer granularity,
// cache warmup, and scheduler preemption swing single-run throughput by
// ±20% — and background load can contaminate every statistic except the
// minimum, since interference only ever makes a run slower. Synthesis at
// jobs == 1 is deterministic (every repeat creates the same states and
// counters), so the fastest observed run is the closest sample of the
// machine's true speed; the CI gate divides it by calib_ops_per_sec
// (measured the same way, in the same load window) to compare across
// machines.
inline BenchRecord MeasureTrajectory(const std::string& workload,
                                     const ir::Module* module,
                                     const report::CoreDump& dump,
                                     core::SynthesisOptions options,
                                     const std::string& git_rev,
                                     int min_runs = 20,
                                     double min_seconds = 1.0) {
  BenchRecord rec;
  rec.workload = workload;
  rec.git_rev = git_rev;
  std::vector<double> run_seconds;
  std::vector<double> calib_seconds;
  double total_seconds = 0.0;
  uint64_t run_states = 0;
  for (int i = 0; (i < min_runs || total_seconds < min_seconds) && i < 10000;
       ++i) {
    calib_seconds.push_back(CalibBatchSeconds());
    core::Synthesizer synthesizer(module, options);
    core::SynthesisResult result = synthesizer.Synthesize(dump);
    if (result.seconds <= 0.0) {
      break;
    }
    total_seconds += result.seconds;
    run_seconds.push_back(result.seconds);
    if (run_seconds.size() == 1) {
      rec.counters = result.counters;
      run_states = result.states_created;
    }
  }
  if (!run_seconds.empty()) {
    double best = *std::min_element(run_seconds.begin(), run_seconds.end());
    rec.states_per_sec = static_cast<double>(run_states) / best;
    double calib_best =
        *std::min_element(calib_seconds.begin(), calib_seconds.end());
    if (calib_best > 0.0) {
      rec.calib_ops_per_sec = static_cast<double>(1 << 16) / calib_best;
    }
  }
  return rec;
}

// Formats "x.xx" or ">cap (timeout)".
inline std::string TimeCell(const ToolOutcome& outcome, double cap) {
  char buf[64];
  if (outcome.found) {
    std::snprintf(buf, sizeof(buf), "%8.2fs", outcome.seconds);
  } else {
    std::snprintf(buf, sizeof(buf), ">%6.0fs *", cap);
  }
  return buf;
}

}  // namespace esd::bench

#endif  // ESD_BENCH_BENCH_COMMON_H_

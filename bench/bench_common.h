// Shared helpers for the paper-reproduction benchmark binaries.
//
// Environment knobs:
//   ESD_BENCH_CAP_S   per-tool time cap in seconds for the baseline runs
//                     (default 10; the paper used 3600). ESD itself is given
//                     the same cap.
//   ESD_BENCH_STRESS  number of stress-test runs per workload (default 20).
#ifndef ESD_BENCH_BENCH_COMMON_H_
#define ESD_BENCH_BENCH_COMMON_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/baseline/kc.h"
#include "src/core/synthesizer.h"
#include "src/replay/replayer.h"
#include "src/workloads/workloads.h"

namespace esd::bench {

inline double CapSeconds() {
  const char* env = std::getenv("ESD_BENCH_CAP_S");
  return env != nullptr ? std::atof(env) : 10.0;
}

inline int StressRuns() {
  const char* env = std::getenv("ESD_BENCH_STRESS");
  return env != nullptr ? std::atoi(env) : 20;
}

struct ToolOutcome {
  bool found = false;
  double seconds = 0.0;
};

// Runs full ESD synthesis (capture -> synthesize -> verify playback).
inline ToolOutcome RunEsd(const workloads::Workload& w, double cap,
                          core::SynthesisOptions options = {}) {
  ToolOutcome outcome;
  auto dump = workloads::CaptureDump(*w.module, w.trigger);
  if (!dump.has_value()) {
    return outcome;
  }
  options.time_cap_seconds = cap;
  core::Synthesizer synthesizer(w.module.get(), options);
  core::SynthesisResult result = synthesizer.Synthesize(*dump);
  outcome.seconds = result.seconds;
  if (!result.success) {
    return outcome;
  }
  replay::ReplayResult replayed =
      replay::Replay(*w.module, result.file, replay::ReplayMode::kStrict);
  outcome.found = replayed.bug_reproduced;
  return outcome;
}

inline ToolOutcome RunKcOn(const workloads::Workload& w,
                           baseline::KcOptions::Strategy strategy, double cap) {
  ToolOutcome outcome;
  auto dump = workloads::CaptureDump(*w.module, w.trigger);
  if (!dump.has_value()) {
    return outcome;
  }
  core::Goal goal = core::ExtractGoal(*w.module, *dump);
  baseline::KcOptions options;
  options.strategy = strategy;
  options.time_cap_seconds = cap;
  baseline::KcResult r = baseline::RunKc(*w.module, goal, options);
  outcome.found = r.found;
  outcome.seconds = r.seconds;
  return outcome;
}

// Formats "x.xx" or ">cap (timeout)".
inline std::string TimeCell(const ToolOutcome& outcome, double cap) {
  char buf[64];
  if (outcome.found) {
    std::snprintf(buf, sizeof(buf), "%8.2fs", outcome.seconds);
  } else {
    std::snprintf(buf, sizeof(buf), ">%6.0fs *", cap);
  }
  return buf;
}

}  // namespace esd::bench

#endif  // ESD_BENCH_BENCH_COMMON_H_
